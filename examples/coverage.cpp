/**
 * @file
 * Branch and instruction coverage (paper Figure 7 and Table 4):
 * exercises a small classifier function with a growing set of test
 * inputs and shows how coverage converges — the test-quality
 * assessment workflow of the paper.
 */

#include <cstdio>

#include "analyses/branch_coverage.h"
#include "analyses/instruction_coverage.h"
#include "core/instrument.h"
#include "interp/interpreter.h"
#include "runtime/runtime.h"
#include "wasm/builder.h"

using namespace wasabi;

namespace {

/** classify(x): 0 if negative, 1 if zero, 2 if small, 3 otherwise. */
wasm::Module
classifier()
{
    wasm::ModuleBuilder mb;
    using wasm::Opcode;
    using wasm::ValType;
    mb.addFunction(
        wasm::FuncType({ValType::I32}, {ValType::I32}), "classify",
        [](wasm::FunctionBuilder &f) {
            f.localGet(0).i32Const(0).op(Opcode::I32LtS);
            f.if_(ValType::I32);
            f.i32Const(0);
            f.else_();
            f.localGet(0).op(Opcode::I32Eqz);
            f.if_(ValType::I32);
            f.i32Const(1);
            f.else_();
            f.localGet(0).i32Const(100).op(Opcode::I32LtS);
            f.if_(ValType::I32);
            f.i32Const(2);
            f.else_();
            f.i32Const(3);
            f.end();
            f.end();
            f.end();
        });
    return mb.build();
}

} // namespace

int
main()
{
    wasm::Module m = classifier();

    analyses::BranchCoverage branches;
    analyses::InstructionCoverage instrs;
    core::InstrumentResult r = core::instrument(
        m, runtime::WasabiRuntime::requiredHooks({&branches, &instrs}));
    runtime::WasabiRuntime rt(r.info);
    rt.addAnalysis(&branches);
    rt.addAnalysis(&instrs);
    auto inst = rt.instantiate(r.module);
    interp::Interpreter interp;

    std::printf("coverage of classify() as the test set grows:\n\n");
    const int32_t test_sets[][4] = {
        {5, 5, 5, 5},       // one path only
        {5, -3, 5, -3},     // two paths
        {5, -3, 0, 5},      // three paths
        {5, -3, 0, 1000},   // all four paths
    };
    for (const auto &tests : test_sets) {
        for (int32_t x : tests) {
            std::vector<wasm::Value> args{
                wasm::Value::makeI32(static_cast<uint32_t>(x))};
            interp.invokeExport(*inst, "classify", args);
        }
        std::printf("after inputs {%d, %d, %d, %d}: "
                    "%zu branch sites hit, %zu half-covered, "
                    "%.0f%% instruction coverage\n",
                    tests[0], tests[1], tests[2], tests[3],
                    branches.sites(),
                    branches.partiallyCoveredTwoWaySites(),
                    100.0 * instrs.ratio(m));
    }
    std::printf("\nper-site decisions:\n%s", branches.report().c_str());
    return 0;
}
