/**
 * @file
 * Quickstart: the end-to-end Wasabi workflow in ~40 lines.
 *
 *  1. Obtain a WebAssembly module (here: built with the builder DSL;
 *     decodeModule() works the same for binaries from disk).
 *  2. Write an analysis by overriding the hooks you need.
 *  3. instrument() the module for exactly those hooks.
 *  4. Run it on the engine with the WasabiRuntime attached.
 */

#include <cstdio>

#include "analyses/instruction_mix.h"
#include "core/instrument.h"
#include "interp/interpreter.h"
#include "runtime/runtime.h"
#include "wasm/builder.h"

using namespace wasabi;

int
main()
{
    // 1. A toy program: sum the squares of 1..100.
    wasm::ModuleBuilder mb;
    mb.addFunction(
        wasm::FuncType({}, {wasm::ValType::I64}), "sum_squares",
        [](wasm::FunctionBuilder &f) {
            uint32_t i = f.addLocal(wasm::ValType::I32);
            uint32_t acc = f.addLocal(wasm::ValType::I64);
            f.forLoop(i, 1, 101, [&] {
                f.localGet(acc);
                f.localGet(i).op(wasm::Opcode::I64ExtendI32U);
                f.localGet(i).op(wasm::Opcode::I64ExtendI32U);
                f.op(wasm::Opcode::I64Mul);
                f.op(wasm::Opcode::I64Add);
                f.localSet(acc);
            });
            f.localGet(acc);
        });
    wasm::Module module = mb.build();

    // 2. An off-the-shelf analysis (write your own by subclassing
    //    runtime::Analysis).
    analyses::InstructionMix mix;

    // 3. Selectively instrument for the hooks the analysis wants.
    core::InstrumentResult instrumented = core::instrument(
        module, runtime::WasabiRuntime::requiredHooks({&mix}));

    // 4. Instantiate with the runtime bound and execute.
    runtime::WasabiRuntime rt(instrumented.info);
    rt.addAnalysis(&mix);
    auto instance = rt.instantiate(instrumented.module);
    interp::Interpreter interp;
    auto results = interp.invokeExport(*instance, "sum_squares", {});

    std::printf("sum of squares 1..100 = %llu (expected 338350)\n\n",
                static_cast<unsigned long long>(results[0].i64()));
    std::printf("instruction mix observed by the analysis:\n%s",
                mix.report(12).c_str());
    return 0;
}
