/**
 * @file
 * Taint tracking with memory shadowing (paper §2.3 and Table 4): a
 * "password" read from a source function flows through arithmetic, a
 * scratch buffer in linear memory, and a helper function, and is then
 * caught when it reaches the "network send" sink. A control run that
 * sends a clean value raises no flow.
 */

#include <cstdio>

#include "analyses/taint.h"
#include "core/instrument.h"
#include "interp/interpreter.h"
#include "runtime/runtime.h"
#include "wasm/builder.h"

using namespace wasabi;

namespace {

struct App {
    wasm::Module module;
    uint32_t readPassword;
    uint32_t sendToNetwork;
};

App
buildApp()
{
    wasm::ModuleBuilder mb;
    using wasm::FuncType;
    using wasm::Opcode;
    using wasm::ValType;
    App app;
    mb.memory(1);
    // Host-like internal functions standing in for imports.
    app.readPassword = mb.addFunction(
        FuncType({}, {ValType::I32}), "read_password",
        [](wasm::FunctionBuilder &f) { f.i32Const(0x5EC2E7); });
    app.sendToNetwork = mb.addFunction(
        FuncType({ValType::I32}, {ValType::I32}), "send_to_network",
        [](wasm::FunctionBuilder &f) {
            f.localGet(0);
            f.i32Const(0xFFFF);
            f.op(Opcode::I32And);
        });
    // obfuscate(x) = (x ^ 0x1234) + 7
    uint32_t obfuscate = mb.addFunction(
        FuncType({ValType::I32}, {ValType::I32}), "",
        [](wasm::FunctionBuilder &f) {
            f.localGet(0).i32Const(0x1234).op(Opcode::I32Xor);
            f.i32Const(7).op(Opcode::I32Add);
        });
    // leak(): password -> obfuscate -> memory -> network.
    mb.addFunction(FuncType({}, {ValType::I32}), "leak",
                   [&](wasm::FunctionBuilder &f) {
                       f.i32Const(256);           // buffer address
                       f.call(app.readPassword);  // tainted source
                       f.call(obfuscate);         // arithmetic laundering
                       f.i32Store();              // hide it in memory
                       f.i32Const(256);
                       f.i32Load();               // fetch it back
                       f.call(app.sendToNetwork); // sink!
                   });
    // behave(): sends an innocent constant.
    mb.addFunction(FuncType({}, {ValType::I32}), "behave",
                   [&](wasm::FunctionBuilder &f) {
                       f.call(app.readPassword);
                       f.drop(); // password read but discarded
                       f.i32Const(200);
                       f.call(app.sendToNetwork);
                   });
    app.module = mb.build();
    return app;
}

void
runScenario(const App &app, const char *entry)
{
    analyses::TaintAnalysis taint;
    taint.addSource(app.readPassword);
    taint.addSink(app.sendToNetwork);
    core::InstrumentResult r = core::instrument(
        app.module, runtime::WasabiRuntime::requiredHooks({&taint}));
    runtime::WasabiRuntime rt(r.info);
    rt.addAnalysis(&taint);
    auto inst = rt.instantiate(r.module);
    interp::Interpreter interp;
    interp.invokeExport(*inst, entry, {});

    std::printf("%s(): %zu illegal flow(s)", entry, taint.flows().size());
    for (const auto &flow : taint.flows()) {
        std::printf("  [tainted arg %zu reached sink f%u at func %u "
                    "instr %u]",
                    flow.argIndex, flow.sinkFunc, flow.loc.func,
                    flow.loc.instr);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("Dynamic taint analysis with memory shadowing\n");
    std::printf("source: read_password(), sink: send_to_network()\n\n");
    App app = buildApp();
    runScenario(app, "leak");   // expect 1 flow
    runScenario(app, "behave"); // expect 0 flows
    return 0;
}
