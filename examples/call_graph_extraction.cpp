/**
 * @file
 * Dynamic call graph extraction (paper Table 4): runs a synthetic
 * application under the CallGraph analysis, prints the hottest edges,
 * the DOT rendering, and the dynamically dead functions — the
 * reverse-engineering workflow the paper motivates.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "analyses/call_graph.h"
#include "core/instrument.h"
#include "interp/interpreter.h"
#include "runtime/runtime.h"
#include "workloads/synthetic_app.h"

using namespace wasabi;

int
main()
{
    workloads::Workload app =
        workloads::syntheticApp(workloads::AppSize::Small);

    analyses::CallGraph graph;
    core::InstrumentResult r = core::instrument(
        app.module, runtime::WasabiRuntime::requiredHooks({&graph}));
    runtime::WasabiRuntime rt(r.info);
    rt.addAnalysis(&graph);
    auto inst = rt.instantiate(r.module);
    interp::Interpreter interp;
    interp.invokeExport(*inst, app.entry, app.args);

    std::printf("dynamic call graph of %s: %zu edges\n\n",
                app.name.c_str(), graph.numEdges());

    std::vector<std::pair<std::pair<uint32_t, uint32_t>, uint64_t>> edges(
        graph.edges().begin(), graph.edges().end());
    std::sort(edges.begin(), edges.end(), [](auto &a, auto &b) {
        return a.second > b.second;
    });
    std::printf("hottest edges:\n");
    for (size_t i = 0; i < edges.size() && i < 8; ++i) {
        std::printf("  f%u -> f%u  (%llu calls)%s\n",
                    edges[i].first.first, edges[i].first.second,
                    static_cast<unsigned long long>(edges[i].second),
                    graph.hasIndirectEdge(edges[i].first.first,
                                          edges[i].first.second)
                        ? "  [via table]"
                        : "");
    }

    uint32_t entry = *app.module.findFuncExport(app.entry);
    auto dead = graph.dynamicallyDead(app.module, entry);
    std::printf("\ndynamically dead functions (%zu):", dead.size());
    for (uint32_t f : dead)
        std::printf(" f%u", f);
    std::printf("\n\nDOT rendering:\n%s",
                graph.toDot(app.module).c_str());
    return 0;
}
