/**
 * @file
 * Memory access tracing (paper Table 4): compares row-major and
 * column-major matrix traversals under the MemoryTrace analysis and
 * reports the locality score — the "detect cache-unfriendly access
 * patterns" use case the paper names.
 */

#include <cstdio>

#include "analyses/memory_trace.h"
#include "core/instrument.h"
#include "interp/interpreter.h"
#include "runtime/runtime.h"
#include "wasm/builder.h"

using namespace wasabi;

namespace {

constexpr int kN = 48;

/** Walks an NxN f64 matrix summing elements, in either order. */
wasm::Module
traversal(bool row_major)
{
    wasm::ModuleBuilder mb;
    using wasm::Opcode;
    using wasm::ValType;
    mb.memory(1 + (kN * kN * 8) / wasm::kPageSize);
    mb.addFunction(
        wasm::FuncType({}, {ValType::F64}), "walk",
        [&](wasm::FunctionBuilder &f) {
            uint32_t i = f.addLocal(ValType::I32);
            uint32_t j = f.addLocal(ValType::I32);
            uint32_t acc = f.addLocal(ValType::F64);
            auto element = [&](uint32_t row, uint32_t col) {
                f.localGet(row).i32Const(kN).op(Opcode::I32Mul);
                f.localGet(col).op(Opcode::I32Add);
                f.i32Const(8).op(Opcode::I32Mul);
                f.f64Load();
            };
            f.forLoop(i, 0, kN, [&] {
                f.forLoop(j, 0, kN, [&] {
                    f.localGet(acc);
                    if (row_major)
                        element(i, j); // consecutive addresses
                    else
                        element(j, i); // stride N*8 between accesses
                    f.op(Opcode::F64Add);
                    f.localSet(acc);
                });
            });
            f.localGet(acc);
        });
    return mb.build();
}

double
traceWalk(bool row_major)
{
    analyses::MemoryTrace trace;
    core::InstrumentResult r = core::instrument(
        traversal(row_major),
        runtime::WasabiRuntime::requiredHooks({&trace}));
    runtime::WasabiRuntime rt(r.info);
    rt.addAnalysis(&trace);
    auto inst = rt.instantiate(r.module);
    interp::Interpreter interp;
    interp.invokeExport(*inst, "walk", {});
    std::printf("%-12s %6zu loads, locality score %.3f "
                "(fraction of consecutive accesses within a 64 B "
                "cache line)\n",
                row_major ? "row-major" : "column-major", trace.loads(),
                trace.localityScore());
    return trace.localityScore();
}

} // namespace

int
main()
{
    std::printf("memory access tracing: %dx%d f64 matrix traversal\n\n",
                kN, kN);
    double good = traceWalk(true);
    double bad = traceWalk(false);
    std::printf("\nrow-major is %.1fx more cache-line-local -> the "
                "column-major loop nest should be interchanged\n",
                bad > 0 ? good / bad : 999.0);
    return 0;
}
