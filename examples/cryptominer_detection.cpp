/**
 * @file
 * The paper's motivating example (Figure 1): detecting unauthorized
 * cryptomining by profiling binary instructions. A hash-mixing kernel
 * (standing in for CryptoNight-style mining loops) triggers the
 * signature; a PolyBench numeric kernel does not.
 */

#include <cstdio>

#include "analyses/cryptominer.h"
#include "core/instrument.h"
#include "interp/interpreter.h"
#include "runtime/runtime.h"
#include "wasm/builder.h"
#include "workloads/polybench.h"

using namespace wasabi;

namespace {

/** A xor/rotate/add mixing loop, the shape of mining hash kernels. */
wasm::Module
minerModule()
{
    wasm::ModuleBuilder mb;
    mb.addFunction(
        wasm::FuncType({wasm::ValType::I32}, {wasm::ValType::I32}),
        "hash", [](wasm::FunctionBuilder &f) {
            uint32_t i = f.addLocal(wasm::ValType::I32);
            uint32_t h = f.addLocal(wasm::ValType::I32);
            f.localGet(0).localSet(h);
            f.forLoop(i, 0, 4096, [&] {
                using wasm::Opcode;
                f.localGet(h).i32Const(5).op(Opcode::I32Rotl);
                f.localGet(h).op(Opcode::I32Xor).localSet(h);
                f.localGet(h).i32Const(0x9E3779B9).op(Opcode::I32Add);
                f.localSet(h);
                f.localGet(h).i32Const(11).op(Opcode::I32ShrU);
                f.localGet(h).op(Opcode::I32Xor).localSet(h);
                f.localGet(h).i32Const(0x85EBCA6B).op(Opcode::I32And);
                f.localGet(i).op(Opcode::I32Xor).localSet(h);
            });
            f.localGet(h);
        });
    return mb.build();
}

double
profile(const wasm::Module &m, const char *entry,
        std::vector<wasm::Value> args, const char *label)
{
    analyses::CryptominerDetector detector;
    core::InstrumentResult r = core::instrument(
        m, runtime::WasabiRuntime::requiredHooks({&detector}));
    runtime::WasabiRuntime rt(r.info);
    rt.addAnalysis(&detector);
    auto inst = rt.instantiate(r.module);
    interp::Interpreter interp;
    interp.invokeExport(*inst, entry, args);

    std::printf("%-12s binary ops: %8llu, signature ratio %.2f -> %s\n",
                label,
                static_cast<unsigned long long>(detector.totalBinaryOps()),
                detector.signatureRatio(),
                detector.suspicious() ? "SUSPICIOUS (miner-like)"
                                      : "benign");
    for (const auto &[op, count] : detector.signature()) {
        std::printf("    %-12s %llu\n", op.c_str(),
                    static_cast<unsigned long long>(count));
    }
    return detector.signatureRatio();
}

} // namespace

int
main()
{
    std::printf("Cryptominer detection via instruction signatures "
                "(paper Fig. 1 / SEISMIC)\n\n");
    profile(minerModule(), "hash", {wasm::Value::makeI32(42)}, "miner");
    std::printf("\n");
    workloads::Workload gemm = workloads::polybench("gemm", 16);
    profile(gemm.module, gemm.entry.c_str(), gemm.args, "gemm");
    return 0;
}
