/**
 * @file
 * Spec-suite-style semantic tests for structured control flow, written
 * in WAT (the repository's stand-in for the official WebAssembly spec
 * test suite, cf. RQ2). Each case pins a subtle corner of block/loop/
 * branch semantics, executed both uninstrumented and under full
 * instrumentation.
 */

#include <gtest/gtest.h>

#include "analyses/instruction_mix.h"
#include "core/instrument.h"
#include "interp/interpreter.h"
#include "runtime/runtime.h"
#include "wasm/validator.h"
#include "wasm/wat_parser.h"

namespace wasabi {
namespace {

using interp::Instance;
using interp::Interpreter;
using interp::Linker;
using wasm::Module;
using wasm::Value;

struct SpecCase {
    const char *name;
    const char *wat;        ///< module exporting f: [i32] -> [i32]
    int32_t input;
    int32_t expected;
};

class SpecControl : public ::testing::TestWithParam<SpecCase> {};

std::ostream &
operator<<(std::ostream &os, const SpecCase &c)
{
    return os << c.name << "(" << c.input << ") = " << c.expected;
}

TEST_P(SpecControl, UninstrumentedSemantics)
{
    const SpecCase &c = GetParam();
    Module m = wasm::parseWat(c.wat);
    ASSERT_EQ(validationError(m), std::nullopt);
    auto inst = Instance::instantiate(std::move(m), Linker());
    Interpreter interp;
    std::vector<Value> args{
        Value::makeI32(static_cast<uint32_t>(c.input))};
    EXPECT_EQ(interp.invokeExport(*inst, "f", args)[0].i32s(),
              c.expected);
}

TEST_P(SpecControl, FullyInstrumentedSemantics)
{
    const SpecCase &c = GetParam();
    Module m = wasm::parseWat(c.wat);
    analyses::InstructionMix mix;
    core::InstrumentResult r =
        core::instrument(m, core::HookSet::all());
    ASSERT_EQ(validationError(r.module), std::nullopt);
    runtime::WasabiRuntime rt(r.info);
    rt.addAnalysis(&mix);
    auto inst = rt.instantiate(r.module);
    Interpreter interp;
    std::vector<Value> args{
        Value::makeI32(static_cast<uint32_t>(c.input))};
    EXPECT_EQ(interp.invokeExport(*inst, "f", args)[0].i32s(),
              c.expected);
}

const SpecCase kCases[] = {
    {"block_result_via_fallthrough",
     R"((module (func (export "f") (param i32) (result i32)
         (block (result i32) (i32.add (local.get 0) (i32.const 1))))))",
     41, 42},

    {"br_carries_result_out_of_two_blocks",
     R"((module (func (export "f") (param i32) (result i32)
         block (result i32)
             block
                 local.get 0
                 br 1
             end
             i32.const -1
         end)))",
     7, 7},

    {"br_if_fallthrough_keeps_value",
     R"((module (func (export "f") (param i32) (result i32)
         block (result i32)
             i32.const 10
             local.get 0
             br_if 0
             drop
             i32.const 20
         end)))",
     0, 20},

    {"br_if_taken_keeps_value",
     R"((module (func (export "f") (param i32) (result i32)
         block (result i32)
             i32.const 10
             local.get 0
             br_if 0
             drop
             i32.const 20
         end)))",
     1, 10},

    {"loop_label_branches_backwards",
     R"((module (func (export "f") (param i32) (result i32)
         (local $acc i32)
         block $done
             loop $again
                 local.get 0
                 i32.eqz
                 br_if $done
                 local.get $acc
                 local.get 0
                 i32.add
                 local.set $acc
                 local.get 0
                 i32.const 1
                 i32.sub
                 local.set 0
                 br $again
             end
         end
         local.get $acc)))",
     5, 15},

    {"if_without_else_skips",
     R"((module (func (export "f") (param i32) (result i32)
         (local $r i32)
         i32.const 1
         local.set $r
         local.get 0
         if
             i32.const 2
             local.set $r
         end
         local.get $r)))",
     0, 1},

    {"nested_if_else_chain",
     R"((module (func (export "f") (param i32) (result i32)
         (if (result i32) (i32.eqz (local.get 0))
             (then (i32.const 100))
             (else (if (result i32)
                       (i32.eq (local.get 0) (i32.const 1))
                       (then (i32.const 200))
                       (else (i32.const 300))))))))",
     1, 200},

    {"br_table_inside_loop",
     R"((module (func (export "f") (param i32) (result i32)
         (local $acc i32)
         block $exit
             loop $top
                 ;; acc += n; dispatch on n
                 local.get $acc local.get 0 i32.add local.set $acc
                 local.get 0 i32.const 1 i32.sub local.set 0
                 block $case0
                     local.get 0
                     br_table $case0 $top $top $exit
                 end
                 ;; n == 0 falls out here
                 br $exit
             end
         end
         local.get $acc)))",
     3, 6},

    {"return_unwinds_everything",
     R"((module (func (export "f") (param i32) (result i32)
         block
             loop
                 block
                     local.get 0
                     return
                 end
             end
         end
         i32.const -1)))",
     9, 9},

    {"unreachable_behind_taken_branch_is_harmless",
     R"((module (func (export "f") (param i32) (result i32)
         block (result i32)
             local.get 0
             br 0
             unreachable
         end)))",
     13, 13},

    {"select_is_not_short_circuiting",
     R"((module
         (global $count (mut i32) (i32.const 0))
         (func $bump (result i32)
             global.get $count i32.const 1 i32.add global.set $count
             global.get $count)
         (func (export "f") (param i32) (result i32)
             (select (call $bump) (call $bump) (local.get 0))
             drop
             global.get $count)))",
     1, 2},

    {"loop_with_result_type",
     R"((module (func (export "f") (param i32) (result i32)
         (loop (result i32) (i32.mul (local.get 0) (i32.const 3))))))",
     4, 12},

    {"deeply_nested_blocks_branch_middle",
     R"((module (func (export "f") (param i32) (result i32)
         (local $r i32)
         block $a
           block $b
             block $c
               block $d
                 local.get 0
                 br_table $d $c $b $a
               end
               i32.const 1 local.set $r br $a
             end
             i32.const 2 local.set $r br $a
           end
           i32.const 3 local.set $r
         end
         local.get $r)))",
     2, 3},

    {"else_branch_with_branch_out",
     R"((module (func (export "f") (param i32) (result i32)
         block $out (result i32)
             (if (local.get 0)
                 (then nop)
                 (else i32.const 5 br $out))
             i32.const 6
         end)))",
     0, 5},

    {"call_inside_loop_accumulates",
     R"((module
         (func $sq (param i32) (result i32)
             local.get 0 local.get 0 i32.mul)
         (func (export "f") (param i32) (result i32)
             (local $acc i32)
             block $done
                 loop $top
                     local.get 0 i32.eqz br_if $done
                     local.get $acc
                     (call $sq (local.get 0))
                     i32.add local.set $acc
                     local.get 0 i32.const 1 i32.sub local.set 0
                     br $top
                 end
             end
             local.get $acc)))",
     3, 14},
};

INSTANTIATE_TEST_SUITE_P(
    Cases, SpecControl, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<SpecCase> &info) {
        return info.param.name;
    });

} // namespace
} // namespace wasabi
