/**
 * @file
 * Robustness property tests for the binary decoder: mutated and
 * truncated inputs must never crash, hang, or corrupt memory — every
 * malformed input is rejected with DecodeError (or decodes to a module
 * that then fails validation). Seeded and deterministic.
 */

#include <gtest/gtest.h>

#include "interp/interpreter.h"
#include "wasm/decoder.h"
#include "wasm/encoder.h"
#include "wasm/leb128.h"
#include "wasm/validator.h"
#include "workloads/random_program.h"

namespace wasabi::wasm {
namespace {

/** SplitMix64, independent of the generator's RNG. */
uint64_t
mix(uint64_t &state)
{
    uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

const workloads::Workload &
baseWorkload()
{
    static workloads::Workload w = [] {
        workloads::RandomProgramOptions opts;
        opts.seed = 99;
        return workloads::randomProgram(opts);
    }();
    return w;
}

std::vector<uint8_t>
baseModuleBytes()
{
    return encodeModule(baseWorkload().module);
}

/** Decode must either succeed or throw DecodeError — nothing else. */
void
decodeSafely(const std::vector<uint8_t> &bytes)
{
    try {
        Module m = decodeModule(bytes);
        // If it decoded, validation must also terminate cleanly.
        (void)validationError(m);
    } catch (const DecodeError &) {
        // expected for malformed inputs
    }
}

TEST(DecoderFuzz, SingleByteMutationsNeverCrash)
{
    std::vector<uint8_t> base = baseModuleBytes();
    uint64_t rng = 0xFEED;
    for (int i = 0; i < 2000; ++i) {
        std::vector<uint8_t> bytes = base;
        size_t pos = mix(rng) % bytes.size();
        bytes[pos] = static_cast<uint8_t>(mix(rng));
        decodeSafely(bytes);
    }
}

TEST(DecoderFuzz, MultiByteMutationsNeverCrash)
{
    std::vector<uint8_t> base = baseModuleBytes();
    uint64_t rng = 0xBEEF;
    for (int i = 0; i < 500; ++i) {
        std::vector<uint8_t> bytes = base;
        int edits = 2 + static_cast<int>(mix(rng) % 16);
        for (int e = 0; e < edits; ++e)
            bytes[mix(rng) % bytes.size()] =
                static_cast<uint8_t>(mix(rng));
        decodeSafely(bytes);
    }
}

TEST(DecoderFuzz, TruncationsNeverCrash)
{
    std::vector<uint8_t> base = baseModuleBytes();
    for (size_t len = 0; len < base.size(); len += 7) {
        std::vector<uint8_t> bytes(base.begin(), base.begin() + len);
        decodeSafely(bytes);
    }
}

TEST(DecoderFuzz, RandomGarbageNeverCrashes)
{
    uint64_t rng = 0xCAFE;
    for (int i = 0; i < 500; ++i) {
        std::vector<uint8_t> bytes(mix(rng) % 512);
        for (uint8_t &b : bytes)
            b = static_cast<uint8_t>(mix(rng));
        // Give half of them a correct preamble so section parsing runs.
        if (bytes.size() >= 8 && (i % 2) == 0) {
            const uint8_t preamble[8] = {0x00, 0x61, 0x73, 0x6D,
                                         0x01, 0x00, 0x00, 0x00};
            std::copy(preamble, preamble + 8, bytes.begin());
        }
        decodeSafely(bytes);
    }
}

/** Observable outcome of one bounded execution. */
struct FuzzOutcome {
    std::vector<Value> results;
    std::optional<interp::TrapKind> trap;
    std::vector<uint8_t> memory;
    uint64_t instructions = 0;
    std::optional<uint64_t> fuelLeft;

    bool operator==(const FuzzOutcome &other) const = default;
};

std::optional<FuzzOutcome>
runBounded(const Module &m, interp::EngineKind engine)
{
    FuzzOutcome out;
    std::unique_ptr<interp::Instance> inst;
    try {
        inst = interp::Instance::instantiate(m, interp::Linker());
    } catch (...) {
        // Mutations can break instantiation (segment bounds, start
        // traps); that path is engine-independent, skip the input.
        return std::nullopt;
    }
    // A mutated body may loop forever: bound the run with fuel.
    inst->setFuel(200000);
    interp::Interpreter interp;
    interp.engine = engine;
    const workloads::Workload &w = baseWorkload();
    try {
        out.results = interp.invokeExport(*inst, w.entry, w.args);
    } catch (const interp::Trap &t) {
        out.trap = t.kind();
    } catch (const std::invalid_argument &) {
        return std::nullopt; // mutated away the entry export
    }
    out.memory = inst->memory().raw();
    out.instructions = interp.stats().instructions;
    out.fuelLeft = inst->fuel();
    return out;
}

/**
 * Differential gate: every mutated module that still decodes and
 * validates must execute identically — results, trap kind, memory,
 * instruction count, fuel — on the legacy walker and the fast engine.
 */
TEST(DecoderFuzz, MutationSurvivorsExecuteIdenticallyOnBothEngines)
{
    std::vector<uint8_t> base = baseModuleBytes();
    uint64_t rng = 0xD1FF;
    int executed = 0;
    for (int i = 0; i < 400; ++i) {
        std::vector<uint8_t> bytes = base;
        bytes[mix(rng) % bytes.size()] = static_cast<uint8_t>(mix(rng));
        Module m;
        try {
            m = decodeModule(bytes);
        } catch (const DecodeError &) {
            continue;
        }
        if (validationError(m))
            continue;
        std::optional<FuzzOutcome> legacy =
            runBounded(m, interp::EngineKind::Legacy);
        std::optional<FuzzOutcome> fast =
            runBounded(m, interp::EngineKind::Fast);
        ASSERT_EQ(legacy.has_value(), fast.has_value()) << "iter " << i;
        if (!legacy)
            continue;
        EXPECT_EQ(legacy->results, fast->results) << "iter " << i;
        EXPECT_EQ(legacy->trap, fast->trap) << "iter " << i;
        EXPECT_EQ(legacy->memory == fast->memory, true) << "iter " << i;
        EXPECT_EQ(legacy->instructions, fast->instructions)
            << "iter " << i;
        EXPECT_EQ(legacy->fuelLeft, fast->fuelLeft) << "iter " << i;
        ++executed;
    }
    // The corpus must actually exercise the engines.
    EXPECT_GT(executed, 0);
}

TEST(DecoderFuzz, SectionSizeLiesAreRejected)
{
    // Hand-crafted: a type section that claims a huge size.
    std::vector<uint8_t> bytes{0x00, 0x61, 0x73, 0x6D, 0x01, 0x00,
                               0x00, 0x00, 0x01, 0xFF, 0xFF, 0xFF,
                               0xFF, 0x0F};
    EXPECT_THROW(decodeModule(bytes), DecodeError);
}

TEST(DecoderFuzz, HugeLocalCountIsRejected)
{
    // A code body declaring ~4 billion locals must not allocate.
    std::vector<uint8_t> bytes{
        0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00,
        0x01, 0x04, 0x01, 0x60, 0x00, 0x00, // type () -> ()
        0x03, 0x02, 0x01, 0x00,             // one function
        0x0A, 0x09, 0x01, 0x07,             // code, body size 7
        0x01, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F, // 1 run of 2^32-1 locals
        0x7F,                               // i32 (end missing anyway)
    };
    EXPECT_THROW(decodeModule(bytes), DecodeError);
}

} // namespace
} // namespace wasabi::wasm
