/**
 * @file
 * Robustness property tests for the binary decoder: mutated and
 * truncated inputs must never crash, hang, or corrupt memory — every
 * malformed input is rejected with DecodeError (or decodes to a module
 * that then fails validation). Seeded and deterministic.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "core/static_info.h"
#include "interp/engine/code.h"
#include "interp/interpreter.h"
#include "static/passes/range.h"
#include "static/rewrite/opt.h"
#include "static/rewrite/rewrite.h"
#include "wasm/builder.h"
#include "wasm/decoder.h"
#include "wasm/encoder.h"
#include "wasm/leb128.h"
#include "wasm/validator.h"
#include "workloads/random_program.h"

namespace wasabi::wasm {
namespace {

/** SplitMix64, independent of the generator's RNG. */
uint64_t
mix(uint64_t &state)
{
    uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

const workloads::Workload &
baseWorkload()
{
    static workloads::Workload w = [] {
        workloads::RandomProgramOptions opts;
        opts.seed = 99;
        return workloads::randomProgram(opts);
    }();
    return w;
}

std::vector<uint8_t>
baseModuleBytes()
{
    return encodeModule(baseWorkload().module);
}

/** Decode must either succeed or throw DecodeError — nothing else. */
void
decodeSafely(const std::vector<uint8_t> &bytes)
{
    try {
        Module m = decodeModule(bytes);
        // If it decoded, validation must also terminate cleanly.
        (void)validationError(m);
    } catch (const DecodeError &) {
        // expected for malformed inputs
    }
}

TEST(DecoderFuzz, SingleByteMutationsNeverCrash)
{
    std::vector<uint8_t> base = baseModuleBytes();
    uint64_t rng = 0xFEED;
    for (int i = 0; i < 2000; ++i) {
        std::vector<uint8_t> bytes = base;
        size_t pos = mix(rng) % bytes.size();
        bytes[pos] = static_cast<uint8_t>(mix(rng));
        decodeSafely(bytes);
    }
}

TEST(DecoderFuzz, MultiByteMutationsNeverCrash)
{
    std::vector<uint8_t> base = baseModuleBytes();
    uint64_t rng = 0xBEEF;
    for (int i = 0; i < 500; ++i) {
        std::vector<uint8_t> bytes = base;
        int edits = 2 + static_cast<int>(mix(rng) % 16);
        for (int e = 0; e < edits; ++e)
            bytes[mix(rng) % bytes.size()] =
                static_cast<uint8_t>(mix(rng));
        decodeSafely(bytes);
    }
}

TEST(DecoderFuzz, TruncationsNeverCrash)
{
    std::vector<uint8_t> base = baseModuleBytes();
    for (size_t len = 0; len < base.size(); len += 7) {
        std::vector<uint8_t> bytes(base.begin(), base.begin() + len);
        decodeSafely(bytes);
    }
}

TEST(DecoderFuzz, RandomGarbageNeverCrashes)
{
    uint64_t rng = 0xCAFE;
    for (int i = 0; i < 500; ++i) {
        std::vector<uint8_t> bytes(mix(rng) % 512);
        for (uint8_t &b : bytes)
            b = static_cast<uint8_t>(mix(rng));
        // Give half of them a correct preamble so section parsing runs.
        if (bytes.size() >= 8 && (i % 2) == 0) {
            const uint8_t preamble[8] = {0x00, 0x61, 0x73, 0x6D,
                                         0x01, 0x00, 0x00, 0x00};
            std::copy(preamble, preamble + 8, bytes.begin());
        }
        decodeSafely(bytes);
    }
}

/** Observable outcome of one bounded execution. */
struct FuzzOutcome {
    std::vector<Value> results;
    std::optional<interp::TrapKind> trap;
    std::vector<uint8_t> memory;
    uint64_t instructions = 0;
    std::optional<uint64_t> fuelLeft;

    bool operator==(const FuzzOutcome &other) const = default;
};

std::optional<FuzzOutcome>
runBounded(const Module &m, interp::EngineKind engine,
           bool elide = false)
{
    FuzzOutcome out;
    std::unique_ptr<interp::Instance> inst;
    try {
        inst = interp::Instance::instantiate(m, interp::Linker());
    } catch (...) {
        // Mutations can break instantiation (segment bounds, start
        // traps); that path is engine-independent, skip the input.
        return std::nullopt;
    }
    if (elide) {
        // License every provable bounds check of the mutated module,
        // exactly as `wasabi run --elide-bounds-checks` would.
        using namespace static_analysis::passes;
        RangeClaims claims = provableRangeClaims(moduleRanges(m, 1));
        std::unordered_set<uint64_t> locs;
        for (const RangeClaim &c : claims.claims)
            locs.insert(core::packLoc({c.func, c.instr}));
        inst->engineCode().setElisions(std::move(locs));
    }
    // A mutated body may loop forever: bound the run with fuel.
    inst->setFuel(200000);
    interp::Interpreter interp;
    interp.engine = engine;
    const workloads::Workload &w = baseWorkload();
    try {
        out.results = interp.invokeExport(*inst, w.entry, w.args);
    } catch (const interp::Trap &t) {
        out.trap = t.kind();
    } catch (const std::invalid_argument &) {
        return std::nullopt; // mutated away the entry export
    }
    out.memory = inst->memory().raw();
    out.instructions = interp.stats().instructions;
    out.fuelLeft = inst->fuel();
    return out;
}

/**
 * Differential gate: every mutated module that still decodes and
 * validates must execute identically — results, trap kind, memory,
 * instruction count, fuel — on the legacy walker and the fast engine.
 */
TEST(DecoderFuzz, MutationSurvivorsExecuteIdenticallyOnBothEngines)
{
    std::vector<uint8_t> base = baseModuleBytes();
    uint64_t rng = 0xD1FF;
    int executed = 0;
    for (int i = 0; i < 400; ++i) {
        std::vector<uint8_t> bytes = base;
        bytes[mix(rng) % bytes.size()] = static_cast<uint8_t>(mix(rng));
        Module m;
        try {
            m = decodeModule(bytes);
        } catch (const DecodeError &) {
            continue;
        }
        if (validationError(m))
            continue;
        std::optional<FuzzOutcome> legacy =
            runBounded(m, interp::EngineKind::Legacy);
        std::optional<FuzzOutcome> fast =
            runBounded(m, interp::EngineKind::Fast);
        ASSERT_EQ(legacy.has_value(), fast.has_value()) << "iter " << i;
        if (!legacy)
            continue;
        EXPECT_EQ(legacy->results, fast->results) << "iter " << i;
        EXPECT_EQ(legacy->trap, fast->trap) << "iter " << i;
        EXPECT_EQ(legacy->memory == fast->memory, true) << "iter " << i;
        EXPECT_EQ(legacy->instructions, fast->instructions)
            << "iter " << i;
        EXPECT_EQ(legacy->fuelLeft, fast->fuelLeft) << "iter " << i;
        ++executed;
    }
    // The corpus must actually exercise the engines.
    EXPECT_GT(executed, 0);
}

/**
 * Elision differential on the same mutation corpus: deriving range
 * claims from each surviving mutant and running it with those bounds
 * checks elided must not change any observable behavior. This is the
 * fuzz leg of the bounds-check-elision safety gate.
 */
TEST(DecoderFuzz, MutationSurvivorsExecuteIdenticallyWithElision)
{
    std::vector<uint8_t> base = baseModuleBytes();
    uint64_t rng = 0xE115; // different corpus than the plain gate
    int executed = 0;
    for (int i = 0; i < 400; ++i) {
        std::vector<uint8_t> bytes = base;
        bytes[mix(rng) % bytes.size()] = static_cast<uint8_t>(mix(rng));
        Module m;
        try {
            m = decodeModule(bytes);
        } catch (const DecodeError &) {
            continue;
        }
        if (validationError(m))
            continue;
        std::optional<FuzzOutcome> legacy =
            runBounded(m, interp::EngineKind::Legacy);
        std::optional<FuzzOutcome> elided =
            runBounded(m, interp::EngineKind::Fast, /*elide=*/true);
        ASSERT_EQ(legacy.has_value(), elided.has_value()) << "iter " << i;
        if (!legacy)
            continue;
        EXPECT_EQ(*legacy == *elided, true) << "iter " << i;
        ++executed;
    }
    EXPECT_GT(executed, 0);
}

/**
 * Optimizer gate on the mutation corpus: every surviving mutant must
 * run the full pass list (including ipo-const, inline, table-compact)
 * to a module that revalidates, whose claim manifest re-proves after
 * a serialization round trip, and that executes identically on both
 * engines — and identically to the unoptimized mutant whenever
 * neither run hits the fuel bound (the optimized module retires fewer
 * instructions, so fuel-exhaustion points legitimately differ).
 */
TEST(DecoderFuzz, MutationSurvivorsOptimizeProveAndMatchOnBothEngines)
{
    namespace rw = static_analysis::rewrite;
    std::vector<uint8_t> base = baseModuleBytes();
    uint64_t rng = 0x1B0;
    int proved = 0;
    for (int i = 0; i < 300; ++i) {
        std::vector<uint8_t> bytes = base;
        bytes[mix(rng) % bytes.size()] = static_cast<uint8_t>(mix(rng));
        Module m;
        try {
            m = decodeModule(bytes);
        } catch (const DecodeError &) {
            continue;
        }
        if (validationError(m))
            continue;

        rw::OptResult r = rw::optimize(m, rw::allOptPasses());
        ASSERT_EQ(validationError(r.module), std::nullopt) << "iter " << i;

        rw::OptClaims parsed;
        std::string error;
        ASSERT_TRUE(rw::claimsFromManifest(
            rw::claimsToManifest(r.claims), parsed, &error))
            << "iter " << i << ": " << error;
        static_analysis::Diagnostics ds = rw::checkOptimization(
            m, encodeModule(r.module), parsed);
        EXPECT_TRUE(ds.empty()) << "iter " << i << "\n" << toString(ds);

        std::optional<FuzzOutcome> ol =
            runBounded(m, interp::EngineKind::Legacy);
        std::optional<FuzzOutcome> pl =
            runBounded(r.module, interp::EngineKind::Legacy);
        std::optional<FuzzOutcome> pf =
            runBounded(r.module, interp::EngineKind::Fast);
        ASSERT_EQ(pl.has_value(), pf.has_value()) << "iter " << i;
        if (!pl)
            continue;
        EXPECT_EQ(*pl == *pf, true) << "iter " << i;
        if (ol && ol->trap != interp::TrapKind::FuelExhausted &&
            pl->trap != interp::TrapKind::FuelExhausted) {
            EXPECT_EQ(ol->results, pl->results) << "iter " << i;
            EXPECT_EQ(ol->trap, pl->trap) << "iter " << i;
            EXPECT_EQ(ol->memory == pl->memory, true) << "iter " << i;
        }
        ++proved;
    }
    EXPECT_GT(proved, 0);
}

// ---------------------------------------------------------------------
// Manifest-text tamper rejection, one case per IPO claim kind: edit
// the serialized manifest (not the in-memory struct), re-parse it,
// and require checkOptimization to reject with the kind's code. This
// is the path an attacker editing a manifest file on disk would take.

TEST(DecoderFuzz, TamperedManifestTextRejectedForIpoConstClaims)
{
    namespace rw = static_analysis::rewrite;
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::I32}), "main",
                   [](FunctionBuilder &f) { f.i32Const(7).call(1); });
    mb.addFunction(FuncType({ValType::I32}, {ValType::I32}), "",
                   [](FunctionBuilder &f) { f.localGet(0); });
    Module m = mb.build();
    rw::OptResult r = rw::optimize(m, {"ipo-const"});
    ASSERT_FALSE(r.claims.ipoConstArgs.empty());
    std::vector<uint8_t> bytes = encodeModule(r.module);

    const rw::IpoConstArgClaim &c = r.claims.ipoConstArgs[0];
    std::string tuple = "[" + std::to_string(c.func) + ", " +
        std::to_string(c.instr) + ", " + std::to_string(c.local) +
        ", " + std::to_string(c.value) + "]";
    std::string forged = "[" + std::to_string(c.func) + ", " +
        std::to_string(c.instr) + ", " + std::to_string(c.local) +
        ", " + std::to_string(c.value ^ 1) + "]";
    std::string manifest = rw::claimsToManifest(r.claims);
    size_t pos = manifest.find(tuple);
    ASSERT_NE(pos, std::string::npos);
    manifest.replace(pos, tuple.size(), forged);

    rw::OptClaims parsed;
    ASSERT_TRUE(rw::claimsFromManifest(manifest, parsed, nullptr));
    static_analysis::Diagnostics ds =
        rw::checkOptimization(m, bytes, parsed);
    EXPECT_TRUE(ds.hasCode("check.opt.bad-ipo-const-arg"))
        << toString(ds);
}

TEST(DecoderFuzz, TamperedManifestTextRejectedForInlineClaims)
{
    namespace rw = static_analysis::rewrite;
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::I32}), "main",
                   [](FunctionBuilder &f) {
                       f.i32Const(1).i32Const(2).call(1);
                   });
    mb.addFunction(
        FuncType({ValType::I32, ValType::I32}, {ValType::I32}), "",
        [](FunctionBuilder &f) {
            f.localGet(0).localGet(1).op(Opcode::I32Add);
        });
    Module m = mb.build();
    rw::OptResult r = rw::optimize(m, {"inline"});
    ASSERT_FALSE(r.claims.inlinedCalls.empty());
    std::vector<uint8_t> bytes = encodeModule(r.module);

    const rw::InlineClaim &c = r.claims.inlinedCalls[0];
    std::string tuple = "[" + std::to_string(c.func) + ", " +
        std::to_string(c.instr) + ", " + std::to_string(c.callee) + "]";
    std::string forged = "[" + std::to_string(c.func) + ", " +
        std::to_string(c.instr + 1) + ", " + std::to_string(c.callee) +
        "]";
    std::string manifest = rw::claimsToManifest(r.claims);
    size_t pos = manifest.find(tuple);
    ASSERT_NE(pos, std::string::npos);
    manifest.replace(pos, tuple.size(), forged);

    rw::OptClaims parsed;
    ASSERT_TRUE(rw::claimsFromManifest(manifest, parsed, nullptr));
    static_analysis::Diagnostics ds =
        rw::checkOptimization(m, bytes, parsed);
    EXPECT_TRUE(ds.hasCode("check.opt.bad-ipo-inline")) << toString(ds);
}

TEST(DecoderFuzz, TamperedManifestTextRejectedForTableCompactClaims)
{
    namespace rw = static_analysis::rewrite;
    ModuleBuilder mb;
    mb.table(4);
    uint32_t ty = mb.type(FuncType({}, {ValType::I32}));
    mb.addFunction(FuncType({}, {ValType::I32}), "main",
                   [&](FunctionBuilder &f) {
                       f.i32Const(2).callIndirect(ty);
                   });
    mb.addFunction(FuncType({}, {ValType::I32}), "",
                   [](FunctionBuilder &f) { f.i32Const(10); });
    mb.addFunction(FuncType({}, {ValType::I32}), "",
                   [](FunctionBuilder &f) { f.i32Const(20); });
    mb.addFunction(FuncType({}, {ValType::I32}), "",
                   [](FunctionBuilder &f) { f.i32Const(30); });
    mb.elem(0, {1, 2, 3});
    Module m = mb.build();
    rw::OptResult r = rw::optimize(m, {"table-compact"});
    ASSERT_FALSE(r.claims.tableSlots.empty());
    std::vector<uint8_t> bytes = encodeModule(r.module);

    const rw::TableSlotClaim &c = r.claims.tableSlots[0];
    std::string tuple = "[" + std::to_string(c.oldSlot) + ", " +
        std::to_string(c.funcIdx) + "]";
    std::string forged = "[" + std::to_string(c.oldSlot) + ", " +
        std::to_string(c.funcIdx == 1 ? 2 : 1) + "]";
    std::string manifest = rw::claimsToManifest(r.claims);
    size_t pos = manifest.find(tuple);
    ASSERT_NE(pos, std::string::npos);
    manifest.replace(pos, tuple.size(), forged);

    rw::OptClaims parsed;
    ASSERT_TRUE(rw::claimsFromManifest(manifest, parsed, nullptr));
    static_analysis::Diagnostics ds =
        rw::checkOptimization(m, bytes, parsed);
    EXPECT_TRUE(ds.hasCode("check.opt.bad-table-compact"))
        << toString(ds);
}

// ---------------------------------------------------------------------
// Rewriter edit-script fuzz: apply random *valid* edit scripts to the
// random-program corpus through ModuleRewriter. Every apply() must
// either succeed (then the module re-validates and executes
// identically on both engines) or fail with a structured
// RewriteError/RemapError — never silent corruption or a crash.

/** A body that satisfies @p type: one constant per result, then end. */
std::vector<Instr>
constantBody(const FuncType &type)
{
    std::vector<Instr> body;
    for (ValType vt : type.results) {
        switch (vt) {
        case ValType::I32: body.push_back(Instr::i32Const(7)); break;
        case ValType::I64: body.push_back(Instr::i64Const(7)); break;
        case ValType::F32: body.push_back(Instr::f32Const(7.0f)); break;
        case ValType::F64: body.push_back(Instr::f64Const(7.0)); break;
        }
    }
    body.push_back(Instr(Opcode::End));
    return body;
}

TEST(RewriterFuzz, RandomEditScriptsNeverCorrupt)
{
    namespace rw = static_analysis::rewrite;
    uint64_t rng = 0xED17;
    int survivors = 0, structured_failures = 0;
    for (int iter = 0; iter < 60; ++iter) {
        workloads::RandomProgramOptions opts;
        opts.seed = 1000 + iter;
        opts.indirectCallPct = 20;
        opts.constIndexIndirectPct = 50;
        workloads::Workload w = workloads::randomProgram(opts);
        Module &m = w.module;
        ASSERT_EQ(validationError(m), std::nullopt);

        rw::ModuleRewriter rewriter(m);
        int edits = 1 + static_cast<int>(mix(rng) % 5);
        for (int e = 0; e < edits; ++e) {
            uint32_t f =
                static_cast<uint32_t>(mix(rng) % m.functions.size());
            switch (mix(rng) % 4) {
            case 0: // replace a defined body with a constant one
                if (!m.functions[f].imported())
                    rewriter.replaceBody(f, constantBody(m.funcType(f)));
                break;
            case 1: { // add a function and call it from nowhere
                Function neu;
                neu.typeIdx = rewriter.addType(FuncType({}, {}));
                neu.body = {Instr(Opcode::End)};
                rewriter.addFunction(neu);
                break;
            }
            case 2: // delete an unexported function; later apply()
                    // may legitimately refuse with a structured error
                if (!m.functions[f].imported() &&
                    m.functions[f].exportNames.empty())
                    rewriter.deleteFunction(f);
                break;
            case 3: // clear the start function, if any
                rewriter.setStart(std::nullopt);
                break;
            }
        }

        rw::RewriteResult result;
        try {
            result = rewriter.apply();
        } catch (const rw::RewriteError &) {
            ++structured_failures;
            continue;
        } catch (const RemapError &) {
            ++structured_failures;
            continue;
        }
        // Survivors must re-validate and roundtrip...
        ASSERT_EQ(validationError(result.module), std::nullopt)
            << "iter " << iter;
        std::vector<uint8_t> bytes = encodeModule(result.module);
        EXPECT_EQ(encodeModule(decodeModule(bytes)), bytes)
            << "iter " << iter;
        // ...and execute identically on both engines.
        std::optional<FuzzOutcome> legacy =
            runBounded(result.module, interp::EngineKind::Legacy);
        std::optional<FuzzOutcome> fast =
            runBounded(result.module, interp::EngineKind::Fast);
        ASSERT_EQ(legacy.has_value(), fast.has_value()) << "iter " << iter;
        if (legacy)
            EXPECT_EQ(*legacy == *fast, true) << "iter " << iter;
        ++survivors;
    }
    // The script mix must exercise both outcomes.
    EXPECT_GT(survivors, 0);
    EXPECT_GT(structured_failures, 0);
}

TEST(DecoderFuzz, SectionSizeLiesAreRejected)
{
    // Hand-crafted: a type section that claims a huge size.
    std::vector<uint8_t> bytes{0x00, 0x61, 0x73, 0x6D, 0x01, 0x00,
                               0x00, 0x00, 0x01, 0xFF, 0xFF, 0xFF,
                               0xFF, 0x0F};
    EXPECT_THROW(decodeModule(bytes), DecodeError);
}

TEST(DecoderFuzz, HugeLocalCountIsRejected)
{
    // A code body declaring ~4 billion locals must not allocate.
    std::vector<uint8_t> bytes{
        0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00,
        0x01, 0x04, 0x01, 0x60, 0x00, 0x00, // type () -> ()
        0x03, 0x02, 0x01, 0x00,             // one function
        0x0A, 0x09, 0x01, 0x07,             // code, body size 7
        0x01, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F, // 1 run of 2^32-1 locals
        0x7F,                               // i32 (end missing anyway)
    };
    EXPECT_THROW(decodeModule(bytes), DecodeError);
}

} // namespace
} // namespace wasabi::wasm
