/**
 * @file
 * Tests for the "name" custom section: decoding, re-encoding, and
 * correctness of the rebuilt section across instrumentation (function
 * indices shift when hook imports are inserted).
 */

#include <gtest/gtest.h>

#include "core/instrument.h"
#include "wasm/builder.h"
#include "wasm/decoder.h"
#include "wasm/encoder.h"
#include "wasm/name_section.h"
#include "wasm/remap.h"

namespace wasabi::wasm {
namespace {

TEST(NameSection, RoundtripsThroughBinary)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "", [](FunctionBuilder &) {});
    mb.addFunction(FuncType({}, {}), "", [](FunctionBuilder &) {});
    Module m = mb.build();
    m.functions[0].debugName = "alpha";
    m.functions[1].debugName = "beta";
    buildNameSection(m);
    ASSERT_EQ(m.customs.size(), 1u);

    Module decoded = decodeModule(encodeModule(m));
    EXPECT_TRUE(decoded.functions[0].debugName.empty()); // not auto-applied
    EXPECT_EQ(applyNameSection(decoded), 2u);
    EXPECT_EQ(decoded.functions[0].debugName, "alpha");
    EXPECT_EQ(decoded.functions[1].debugName, "beta");
}

TEST(NameSection, BuildRemovesStaleSectionWhenNoNames)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "", [](FunctionBuilder &) {});
    Module m = mb.build();
    m.customs.push_back({"name", {0x01, 0x01, 0x00}});
    buildNameSection(m); // no debug names -> section dropped
    EXPECT_TRUE(m.customs.empty());
}

TEST(NameSection, MalformedPayloadIsIgnored)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "", [](FunctionBuilder &) {});
    Module m = mb.build();
    m.customs.push_back({"name", {0x01, 0xFF, 0xFF}}); // bogus size
    EXPECT_EQ(applyNameSection(m), 0u);
}

TEST(NameSection, UnknownSubsectionsAreSkipped)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "", [](FunctionBuilder &) {});
    Module m = mb.build();
    // Subsection 0 (module name "m"), then subsection 1 naming func 0.
    std::vector<uint8_t> payload{
        0x00, 0x02, 0x01, 'm',             // module name
        0x01, 0x04, 0x01, 0x00, 0x01, 'g', // function names
    };
    m.customs.push_back({"name", payload});
    EXPECT_EQ(applyNameSection(m), 1u);
    EXPECT_EQ(m.functions[0].debugName, "g");
}

TEST(NameSection, FunctionNameFallbacks)
{
    ModuleBuilder mb;
    mb.importFunction("env", "imp", FuncType({}, {}));
    mb.addFunction(FuncType({}, {}), "exported",
                   [](FunctionBuilder &) {});
    mb.addFunction(FuncType({}, {}), "", [](FunctionBuilder &) {});
    Module m = mb.build();
    m.functions[2].debugName = "internal_helper";
    EXPECT_EQ(functionName(m, 0), "env.imp");
    EXPECT_EQ(functionName(m, 1), "exported");
    EXPECT_EQ(functionName(m, 2), "internal_helper");
    EXPECT_EQ(functionName(m, 99), "f99");
}

TEST(NameSection, InstrumentationRebuildsNamesForShiftedIndices)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::I32}), "compute",
                   [](FunctionBuilder &f) { f.i32Const(1); });
    Module m = mb.build();
    m.functions[0].debugName = "compute_impl";
    buildNameSection(m);

    core::InstrumentResult r =
        core::instrument(m, core::HookSet::only(core::HookKind::Const));
    // Decode the instrumented module fresh and check the name refers
    // to the *shifted* function index.
    Module decoded = decodeModule(encodeModule(r.module));
    applyNameSection(decoded);
    uint32_t shifted = *decoded.findFuncExport("compute");
    EXPECT_GT(shifted, 0u); // hooks were inserted before it
    EXPECT_EQ(decoded.functions[shifted].debugName, "compute_impl");
    // Hook imports are named after their mangled hook name.
    EXPECT_EQ(decoded.functions[0].debugName, "i32.const");
}

TEST(NameSection, InstrumentationRemapsManyNamesAndImports)
{
    // A module with a pre-existing import, several named defined
    // functions (some unnamed in between), and calls between them:
    // after hook-import injection every custom name must still point
    // at the function that carried it, across an encode/decode
    // roundtrip of the instrumented binary.
    ModuleBuilder mb;
    mb.importFunction("env", "host_log", FuncType({ValType::I32}, {}));
    mb.addFunction(FuncType({}, {ValType::I32}), "first",
                   [](FunctionBuilder &f) { f.i32Const(11); });
    mb.addFunction(FuncType({}, {ValType::I32}), "",
                   [](FunctionBuilder &f) { f.i32Const(22); });
    mb.addFunction(FuncType({}, {ValType::I32}), "third",
                   [](FunctionBuilder &f) {
                       f.call(1);
                       f.drop();
                       f.i32Const(33);
                   });
    Module m = mb.build();
    m.functions[1].debugName = "named_first";
    // functions[2] deliberately unnamed.
    m.functions[3].debugName = "named_third";
    buildNameSection(m);

    core::InstrumentResult r = core::instrument(
        m, {core::HookKind::Const, core::HookKind::Call,
            core::HookKind::Drop});
    ASSERT_GE(r.info->hooks.size(), 3u);

    Module decoded = decodeModule(encodeModule(r.module));
    applyNameSection(decoded);

    // Original-module imports and defined functions shifted by the
    // number of injected hook imports; their names must have moved
    // with them (located via exports, which the encoder also remaps).
    uint32_t first = *decoded.findFuncExport("first");
    uint32_t third = *decoded.findFuncExport("third");
    EXPECT_EQ(decoded.functions[first].debugName, "named_first");
    EXPECT_EQ(decoded.functions[third].debugName, "named_third");
    // The non-hook import kept its import ref and gained no bogus name.
    bool found_host_import = false;
    for (const Function &f : decoded.functions) {
        if (f.imported() && f.import->module == "env") {
            EXPECT_EQ(f.import->name, "host_log");
            found_host_import = true;
        }
    }
    EXPECT_TRUE(found_host_import);
    // Every hook import is named after its mangled hook, so the name
    // count covers hooks + the two explicitly named functions.
    size_t named = 0;
    for (const Function &f : decoded.functions)
        named += !f.debugName.empty();
    EXPECT_EQ(named, r.info->hooks.size() + 2);
}

// ---------------------------------------------------------------------
// Structured NameSectionData: local/label subsections must survive
// parse -> set round trips and be remapped (not dropped) when function
// indices shift.

/** Two functions with module/function/local/label names on both. */
Module
moduleWithAllSubsections()
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({ValType::I32}, {ValType::I32}), "first",
                   [](FunctionBuilder &f) {
                       f.block();
                       f.end();
                       f.localGet(0);
                   });
    mb.addFunction(FuncType({}, {ValType::I32}), "second",
                   [](FunctionBuilder &f) {
                       uint32_t tmp = f.addLocal(ValType::I32);
                       f.i32Const(7);
                       f.localSet(tmp);
                       f.localGet(tmp);
                   });
    Module m = mb.build();
    NameSectionData data;
    data.moduleName = "demo";
    data.funcNames = {{0, "first_impl"}, {1, "second_impl"}};
    data.localNames = {{0, {{0, "arg"}}}, {1, {{0, "tmp"}}}};
    data.labelNames = {{0, {{0, "outer"}}}};
    setNameSection(m, data);
    return m;
}

TEST(NameSectionData, ParseSetRoundtripIsByteIdentical)
{
    Module m = moduleWithAllSubsections();
    ASSERT_EQ(m.customs.size(), 1u);
    std::vector<uint8_t> before = m.customs[0].bytes;

    NameSectionData data = parseNameSection(m);
    EXPECT_EQ(data.moduleName, "demo");
    ASSERT_EQ(data.funcNames.size(), 2u);
    ASSERT_EQ(data.localNames.size(), 2u);
    ASSERT_EQ(data.labelNames.size(), 1u);
    EXPECT_EQ(data.localNames[1].second,
              (NameMap{{0, "tmp"}}));

    setNameSection(m, data);
    ASSERT_EQ(m.customs.size(), 1u);
    EXPECT_EQ(m.customs[0].bytes, before);
    // And the whole module survives a binary roundtrip unchanged.
    EXPECT_EQ(encodeModule(decodeModule(encodeModule(m))),
              encodeModule(m));
}

TEST(NameSectionData, RemapDropsDeletedAndShiftsSurvivors)
{
    Module m = moduleWithAllSubsections();
    NameSectionData data = parseNameSection(m);
    // Delete function 0: its entries vanish from every subsection and
    // function 1's entries move to index 0.
    remapNameData(data, {kDeletedIndex, 0});
    EXPECT_EQ(data.moduleName, "demo");
    EXPECT_EQ(data.funcNames, (NameMap{{0, "second_impl"}}));
    ASSERT_EQ(data.localNames.size(), 1u);
    EXPECT_EQ(data.localNames[0].first, 0u);
    EXPECT_EQ(data.localNames[0].second, (NameMap{{0, "tmp"}}));
    EXPECT_TRUE(data.labelNames.empty()); // only func 0 had labels
}

TEST(NameSectionData, RemapReordersByNewIndex)
{
    NameSectionData data;
    data.funcNames = {{0, "a"}, {1, "b"}, {2, "c"}};
    data.localNames = {{0, {{0, "x"}}}, {2, {{1, "y"}}}};
    // Swap 0 and 2; entries must come back sorted by new index.
    remapNameData(data, {2, 1, 0});
    EXPECT_EQ(data.funcNames, (NameMap{{0, "c"}, {1, "b"}, {2, "a"}}));
    ASSERT_EQ(data.localNames.size(), 2u);
    EXPECT_EQ(data.localNames[0].first, 0u);
    EXPECT_EQ(data.localNames[0].second, (NameMap{{1, "y"}}));
    EXPECT_EQ(data.localNames[1].first, 2u);
    EXPECT_EQ(data.localNames[1].second, (NameMap{{0, "x"}}));
}

TEST(NameSectionData, InstrumentationPreservesLocalNames)
{
    // Regression: instrumentation used to rebuild the name section
    // from function debugNames alone, silently dropping the
    // local-name subsection. Locals keep their indices across
    // instrumentation (extra locals are appended), so local names must
    // survive, attached to the shifted function index.
    Module m = moduleWithAllSubsections();
    core::InstrumentResult r = core::instrument(
        m, core::HookSet::only(core::HookKind::Const));

    Module decoded = decodeModule(encodeModule(r.module));
    NameSectionData names = parseNameSection(decoded);
    EXPECT_EQ(names.moduleName, "demo");
    applyNameSection(decoded);
    uint32_t first = *decoded.findFuncExport("first");
    uint32_t second = *decoded.findFuncExport("second");
    EXPECT_GT(first, 0u); // hook imports shifted everything
    EXPECT_EQ(decoded.functions[first].debugName, "first_impl");
    EXPECT_EQ(decoded.functions[second].debugName, "second_impl");

    auto localsOf = [&](uint32_t f) -> const NameMap * {
        for (const auto &[idx, map] : names.localNames)
            if (idx == f)
                return &map;
        return nullptr;
    };
    const NameMap *first_locals = localsOf(first);
    const NameMap *second_locals = localsOf(second);
    ASSERT_NE(first_locals, nullptr);
    ASSERT_NE(second_locals, nullptr);
    EXPECT_EQ(*first_locals, (NameMap{{0, "arg"}}));
    EXPECT_EQ(*second_locals, (NameMap{{0, "tmp"}}));
    // Label names refer to body positions, which instrumentation
    // rewrites, so they are deliberately dropped.
    EXPECT_TRUE(names.labelNames.empty());
}

} // namespace
} // namespace wasabi::wasm
