/**
 * @file
 * Tests for the "name" custom section: decoding, re-encoding, and
 * correctness of the rebuilt section across instrumentation (function
 * indices shift when hook imports are inserted).
 */

#include <gtest/gtest.h>

#include "core/instrument.h"
#include "wasm/builder.h"
#include "wasm/decoder.h"
#include "wasm/encoder.h"
#include "wasm/name_section.h"

namespace wasabi::wasm {
namespace {

TEST(NameSection, RoundtripsThroughBinary)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "", [](FunctionBuilder &) {});
    mb.addFunction(FuncType({}, {}), "", [](FunctionBuilder &) {});
    Module m = mb.build();
    m.functions[0].debugName = "alpha";
    m.functions[1].debugName = "beta";
    buildNameSection(m);
    ASSERT_EQ(m.customs.size(), 1u);

    Module decoded = decodeModule(encodeModule(m));
    EXPECT_TRUE(decoded.functions[0].debugName.empty()); // not auto-applied
    EXPECT_EQ(applyNameSection(decoded), 2u);
    EXPECT_EQ(decoded.functions[0].debugName, "alpha");
    EXPECT_EQ(decoded.functions[1].debugName, "beta");
}

TEST(NameSection, BuildRemovesStaleSectionWhenNoNames)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "", [](FunctionBuilder &) {});
    Module m = mb.build();
    m.customs.push_back({"name", {0x01, 0x01, 0x00}});
    buildNameSection(m); // no debug names -> section dropped
    EXPECT_TRUE(m.customs.empty());
}

TEST(NameSection, MalformedPayloadIsIgnored)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "", [](FunctionBuilder &) {});
    Module m = mb.build();
    m.customs.push_back({"name", {0x01, 0xFF, 0xFF}}); // bogus size
    EXPECT_EQ(applyNameSection(m), 0u);
}

TEST(NameSection, UnknownSubsectionsAreSkipped)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "", [](FunctionBuilder &) {});
    Module m = mb.build();
    // Subsection 0 (module name "m"), then subsection 1 naming func 0.
    std::vector<uint8_t> payload{
        0x00, 0x02, 0x01, 'm',             // module name
        0x01, 0x04, 0x01, 0x00, 0x01, 'g', // function names
    };
    m.customs.push_back({"name", payload});
    EXPECT_EQ(applyNameSection(m), 1u);
    EXPECT_EQ(m.functions[0].debugName, "g");
}

TEST(NameSection, FunctionNameFallbacks)
{
    ModuleBuilder mb;
    mb.importFunction("env", "imp", FuncType({}, {}));
    mb.addFunction(FuncType({}, {}), "exported",
                   [](FunctionBuilder &) {});
    mb.addFunction(FuncType({}, {}), "", [](FunctionBuilder &) {});
    Module m = mb.build();
    m.functions[2].debugName = "internal_helper";
    EXPECT_EQ(functionName(m, 0), "env.imp");
    EXPECT_EQ(functionName(m, 1), "exported");
    EXPECT_EQ(functionName(m, 2), "internal_helper");
    EXPECT_EQ(functionName(m, 99), "f99");
}

TEST(NameSection, InstrumentationRebuildsNamesForShiftedIndices)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::I32}), "compute",
                   [](FunctionBuilder &f) { f.i32Const(1); });
    Module m = mb.build();
    m.functions[0].debugName = "compute_impl";
    buildNameSection(m);

    core::InstrumentResult r =
        core::instrument(m, core::HookSet::only(core::HookKind::Const));
    // Decode the instrumented module fresh and check the name refers
    // to the *shifted* function index.
    Module decoded = decodeModule(encodeModule(r.module));
    applyNameSection(decoded);
    uint32_t shifted = *decoded.findFuncExport("compute");
    EXPECT_GT(shifted, 0u); // hooks were inserted before it
    EXPECT_EQ(decoded.functions[shifted].debugName, "compute_impl");
    // Hook imports are named after their mangled hook name.
    EXPECT_EQ(decoded.functions[0].debugName, "i32.const");
}

} // namespace
} // namespace wasabi::wasm
