/**
 * @file
 * Tests for the "name" custom section: decoding, re-encoding, and
 * correctness of the rebuilt section across instrumentation (function
 * indices shift when hook imports are inserted).
 */

#include <gtest/gtest.h>

#include "core/instrument.h"
#include "wasm/builder.h"
#include "wasm/decoder.h"
#include "wasm/encoder.h"
#include "wasm/name_section.h"

namespace wasabi::wasm {
namespace {

TEST(NameSection, RoundtripsThroughBinary)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "", [](FunctionBuilder &) {});
    mb.addFunction(FuncType({}, {}), "", [](FunctionBuilder &) {});
    Module m = mb.build();
    m.functions[0].debugName = "alpha";
    m.functions[1].debugName = "beta";
    buildNameSection(m);
    ASSERT_EQ(m.customs.size(), 1u);

    Module decoded = decodeModule(encodeModule(m));
    EXPECT_TRUE(decoded.functions[0].debugName.empty()); // not auto-applied
    EXPECT_EQ(applyNameSection(decoded), 2u);
    EXPECT_EQ(decoded.functions[0].debugName, "alpha");
    EXPECT_EQ(decoded.functions[1].debugName, "beta");
}

TEST(NameSection, BuildRemovesStaleSectionWhenNoNames)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "", [](FunctionBuilder &) {});
    Module m = mb.build();
    m.customs.push_back({"name", {0x01, 0x01, 0x00}});
    buildNameSection(m); // no debug names -> section dropped
    EXPECT_TRUE(m.customs.empty());
}

TEST(NameSection, MalformedPayloadIsIgnored)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "", [](FunctionBuilder &) {});
    Module m = mb.build();
    m.customs.push_back({"name", {0x01, 0xFF, 0xFF}}); // bogus size
    EXPECT_EQ(applyNameSection(m), 0u);
}

TEST(NameSection, UnknownSubsectionsAreSkipped)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "", [](FunctionBuilder &) {});
    Module m = mb.build();
    // Subsection 0 (module name "m"), then subsection 1 naming func 0.
    std::vector<uint8_t> payload{
        0x00, 0x02, 0x01, 'm',             // module name
        0x01, 0x04, 0x01, 0x00, 0x01, 'g', // function names
    };
    m.customs.push_back({"name", payload});
    EXPECT_EQ(applyNameSection(m), 1u);
    EXPECT_EQ(m.functions[0].debugName, "g");
}

TEST(NameSection, FunctionNameFallbacks)
{
    ModuleBuilder mb;
    mb.importFunction("env", "imp", FuncType({}, {}));
    mb.addFunction(FuncType({}, {}), "exported",
                   [](FunctionBuilder &) {});
    mb.addFunction(FuncType({}, {}), "", [](FunctionBuilder &) {});
    Module m = mb.build();
    m.functions[2].debugName = "internal_helper";
    EXPECT_EQ(functionName(m, 0), "env.imp");
    EXPECT_EQ(functionName(m, 1), "exported");
    EXPECT_EQ(functionName(m, 2), "internal_helper");
    EXPECT_EQ(functionName(m, 99), "f99");
}

TEST(NameSection, InstrumentationRebuildsNamesForShiftedIndices)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::I32}), "compute",
                   [](FunctionBuilder &f) { f.i32Const(1); });
    Module m = mb.build();
    m.functions[0].debugName = "compute_impl";
    buildNameSection(m);

    core::InstrumentResult r =
        core::instrument(m, core::HookSet::only(core::HookKind::Const));
    // Decode the instrumented module fresh and check the name refers
    // to the *shifted* function index.
    Module decoded = decodeModule(encodeModule(r.module));
    applyNameSection(decoded);
    uint32_t shifted = *decoded.findFuncExport("compute");
    EXPECT_GT(shifted, 0u); // hooks were inserted before it
    EXPECT_EQ(decoded.functions[shifted].debugName, "compute_impl");
    // Hook imports are named after their mangled hook name.
    EXPECT_EQ(decoded.functions[0].debugName, "i32.const");
}

TEST(NameSection, InstrumentationRemapsManyNamesAndImports)
{
    // A module with a pre-existing import, several named defined
    // functions (some unnamed in between), and calls between them:
    // after hook-import injection every custom name must still point
    // at the function that carried it, across an encode/decode
    // roundtrip of the instrumented binary.
    ModuleBuilder mb;
    mb.importFunction("env", "host_log", FuncType({ValType::I32}, {}));
    mb.addFunction(FuncType({}, {ValType::I32}), "first",
                   [](FunctionBuilder &f) { f.i32Const(11); });
    mb.addFunction(FuncType({}, {ValType::I32}), "",
                   [](FunctionBuilder &f) { f.i32Const(22); });
    mb.addFunction(FuncType({}, {ValType::I32}), "third",
                   [](FunctionBuilder &f) {
                       f.call(1);
                       f.drop();
                       f.i32Const(33);
                   });
    Module m = mb.build();
    m.functions[1].debugName = "named_first";
    // functions[2] deliberately unnamed.
    m.functions[3].debugName = "named_third";
    buildNameSection(m);

    core::InstrumentResult r = core::instrument(
        m, {core::HookKind::Const, core::HookKind::Call,
            core::HookKind::Drop});
    ASSERT_GE(r.info->hooks.size(), 3u);

    Module decoded = decodeModule(encodeModule(r.module));
    applyNameSection(decoded);

    // Original-module imports and defined functions shifted by the
    // number of injected hook imports; their names must have moved
    // with them (located via exports, which the encoder also remaps).
    uint32_t first = *decoded.findFuncExport("first");
    uint32_t third = *decoded.findFuncExport("third");
    EXPECT_EQ(decoded.functions[first].debugName, "named_first");
    EXPECT_EQ(decoded.functions[third].debugName, "named_third");
    // The non-hook import kept its import ref and gained no bogus name.
    bool found_host_import = false;
    for (const Function &f : decoded.functions) {
        if (f.imported() && f.import->module == "env") {
            EXPECT_EQ(f.import->name, "host_log");
            found_host_import = true;
        }
    }
    EXPECT_TRUE(found_host_import);
    // Every hook import is named after its mangled hook, so the name
    // count covers hooks + the two explicitly named functions.
    size_t named = 0;
    for (const Function &f : decoded.functions)
        named += !f.debugName.empty();
    EXPECT_EQ(named, r.info->hooks.size() + 2);
}

} // namespace
} // namespace wasabi::wasm
