/**
 * @file
 * Unit tests for LEB128 encoding/decoding and the ByteReader.
 */

#include <gtest/gtest.h>

#include "wasm/leb128.h"

namespace wasabi::wasm {
namespace {

TEST(ULEB, EncodesSmallValuesAsSingleByte)
{
    std::vector<uint8_t> out;
    encodeULEB(out, 0);
    encodeULEB(out, 1);
    encodeULEB(out, 127);
    EXPECT_EQ(out, (std::vector<uint8_t>{0x00, 0x01, 0x7F}));
}

TEST(ULEB, EncodesMultiByteValues)
{
    std::vector<uint8_t> out;
    encodeULEB(out, 128);
    EXPECT_EQ(out, (std::vector<uint8_t>{0x80, 0x01}));
    out.clear();
    encodeULEB(out, 624485);
    EXPECT_EQ(out, (std::vector<uint8_t>{0xE5, 0x8E, 0x26}));
}

TEST(SLEB, EncodesNegativeValues)
{
    std::vector<uint8_t> out;
    encodeSLEB(out, -1);
    EXPECT_EQ(out, (std::vector<uint8_t>{0x7F}));
    out.clear();
    encodeSLEB(out, -123456);
    EXPECT_EQ(out, (std::vector<uint8_t>{0xC0, 0xBB, 0x78}));
}

TEST(SLEB, SignBitForcesExtraByte)
{
    // 64 has bit 6 set, so the single byte 0x40 would decode as -64.
    std::vector<uint8_t> out;
    encodeSLEB(out, 64);
    EXPECT_EQ(out, (std::vector<uint8_t>{0xC0, 0x00}));
}

class RoundtripU : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundtripU, ULEBRoundtrips)
{
    std::vector<uint8_t> out;
    encodeULEB(out, GetParam());
    ByteReader r(out);
    EXPECT_EQ(r.readULEB(64), GetParam());
    EXPECT_TRUE(r.done());
}

INSTANTIATE_TEST_SUITE_P(Values, RoundtripU,
                         ::testing::Values(0ull, 1ull, 127ull, 128ull,
                                           300ull, 16383ull, 16384ull,
                                           0xFFFFFFFFull,
                                           0xFFFFFFFFFFFFFFFFull));

class RoundtripS : public ::testing::TestWithParam<int64_t> {};

TEST_P(RoundtripS, SLEBRoundtrips)
{
    std::vector<uint8_t> out;
    encodeSLEB(out, GetParam());
    ByteReader r(out);
    EXPECT_EQ(r.readSLEB(64), GetParam());
    EXPECT_TRUE(r.done());
}

INSTANTIATE_TEST_SUITE_P(
    Values, RoundtripS,
    ::testing::Values(0ll, 1ll, -1ll, 63ll, 64ll, -64ll, -65ll, 8191ll,
                      -8192ll, 0x7FFFFFFFll, -0x80000000ll,
                      0x7FFFFFFFFFFFFFFFll,
                      -0x7FFFFFFFFFFFFFFFll - 1));

TEST(ByteReader, ThrowsOnTruncatedInput)
{
    std::vector<uint8_t> bytes{0x80}; // continuation bit but no next byte
    ByteReader r(bytes);
    EXPECT_THROW(r.readULEB(32), DecodeError);
}

TEST(ByteReader, ThrowsOnOverlongULEB)
{
    // Six continuation bytes exceed the 32-bit budget.
    std::vector<uint8_t> bytes{0x80, 0x80, 0x80, 0x80, 0x80, 0x01};
    ByteReader r(bytes);
    EXPECT_THROW(r.readULEB(32), DecodeError);
}

// --- spec boundary vectors ------------------------------------------
// The wasm spec caps an uN/sN LEB at ceil(N/7) bytes and constrains
// the final byte: for uN the spare bits must be zero, for sN the
// unused bits must equal the sign extension of the value's sign bit.

TEST(ByteReader, ULEBMaximalCanonicalFifthByteDecodes)
{
    // u32 max: 5th byte carries 4 significant bits (0x0F).
    std::vector<uint8_t> bytes{0xFF, 0xFF, 0xFF, 0xFF, 0x0F};
    ByteReader r(bytes);
    EXPECT_EQ(r.readULEB(32), 0xFFFFFFFFull);
}

TEST(ByteReader, ULEBSpareBitsInFifthByteThrow)
{
    // Same as above but with a spare bit (bit 4) smuggled into the
    // 5th byte: would need 33 value bits.
    std::vector<uint8_t> bytes{0xFF, 0xFF, 0xFF, 0xFF, 0x1F};
    ByteReader r(bytes);
    EXPECT_THROW(r.readULEB(32), DecodeError);
}

TEST(ByteReader, ULEBNonCanonicalZeroPaddingIsLegal)
{
    // 0x80 0x00 is a redundant-but-legal 2-byte encoding of 0; the
    // spec permits non-minimal encodings within the byte budget.
    std::vector<uint8_t> bytes{0x80, 0x00};
    ByteReader r(bytes);
    EXPECT_EQ(r.readULEB(32), 0u);
    EXPECT_TRUE(r.done());
}

TEST(ByteReader, SLEBOverlongThrows)
{
    // Six bytes exceed the s32 budget of ceil(32/7) = 5.
    std::vector<uint8_t> bytes{0x80, 0x80, 0x80, 0x80, 0x80, 0x7F};
    ByteReader r(bytes);
    EXPECT_THROW(r.readSLEB(32), DecodeError);
}

TEST(ByteReader, SLEBBoundaryFifthByteDecodes)
{
    // INT32_MIN: 5th byte 0x78 = sign bit plus matching extension.
    std::vector<uint8_t> min{0x80, 0x80, 0x80, 0x80, 0x78};
    EXPECT_EQ(ByteReader(min).readSLEB(32), -0x80000000ll);
    // INT32_MAX: 5th byte 0x07, extension bits all zero.
    std::vector<uint8_t> max{0xFF, 0xFF, 0xFF, 0xFF, 0x07};
    EXPECT_EQ(ByteReader(max).readSLEB(32), 0x7FFFFFFFll);
}

TEST(ByteReader, SLEBNonCanonicalExtensionBitsThrow)
{
    // 5th byte of an s32 has 4 value bits; bits above the sign bit
    // must all equal it. 0x0F has sign bit 0 but ones above -> the
    // encoding smuggles in magnitude beyond 32 bits.
    std::vector<uint8_t> positive{0xFF, 0xFF, 0xFF, 0xFF, 0x0F};
    EXPECT_THROW(ByteReader(positive).readSLEB(32), DecodeError);
    // 0x70 has sign bit 1 but a zero among the extension bits.
    std::vector<uint8_t> negative{0x80, 0x80, 0x80, 0x80, 0x70};
    EXPECT_THROW(ByteReader(negative).readSLEB(32), DecodeError);
    // Mixed extension bits (neither all-zero nor all-one).
    std::vector<uint8_t> mixed{0xFF, 0xFF, 0xFF, 0xFF, 0x4F};
    EXPECT_THROW(ByteReader(mixed).readSLEB(32), DecodeError);
}

TEST(ByteReader, SLEB33BoundaryVectors)
{
    // s33 (block types): 5th byte carries 5 value bits. 2^32 - 1 is
    // representable...
    std::vector<uint8_t> ok{0xFF, 0xFF, 0xFF, 0xFF, 0x0F};
    EXPECT_EQ(ByteReader(ok).readSLEB(33), 0xFFFFFFFFll);
    // ...but a spare bit above the s33 sign must still match it.
    std::vector<uint8_t> bad{0xFF, 0xFF, 0xFF, 0xFF, 0x2F};
    EXPECT_THROW(ByteReader(bad).readSLEB(33), DecodeError);
}

TEST(ByteReader, SLEB64FinalByteVectors)
{
    // s64: the 10th byte carries exactly 1 value bit, so its payload
    // must be 0x00 or 0x7F.
    std::vector<uint8_t> min{0x80, 0x80, 0x80, 0x80, 0x80,
                             0x80, 0x80, 0x80, 0x80, 0x7F};
    EXPECT_EQ(ByteReader(min).readSLEB(64),
              -0x7FFFFFFFFFFFFFFFll - 1);
    std::vector<uint8_t> max{0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                             0xFF, 0xFF, 0xFF, 0xFF, 0x00};
    EXPECT_EQ(ByteReader(max).readSLEB(64), 0x7FFFFFFFFFFFFFFFll);
    // Any other payload in the 10th byte is malformed.
    std::vector<uint8_t> bad{0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                             0xFF, 0xFF, 0xFF, 0xFF, 0x01};
    EXPECT_THROW(ByteReader(bad).readSLEB(64), DecodeError);
    std::vector<uint8_t> bad2{0x80, 0x80, 0x80, 0x80, 0x80,
                              0x80, 0x80, 0x80, 0x80, 0x3F};
    EXPECT_THROW(ByteReader(bad2).readSLEB(64), DecodeError);
}

TEST(ByteReader, ReadsFixedWidthLittleEndian)
{
    std::vector<uint8_t> bytes{0x78, 0x56, 0x34, 0x12,
                               0x01, 0x00, 0x00, 0x00,
                               0x00, 0x00, 0x00, 0x80};
    ByteReader r(bytes);
    EXPECT_EQ(r.readFixedU32(), 0x12345678u);
    EXPECT_EQ(r.readFixedU64(), 0x8000000000000001ull);
}

TEST(ByteReader, ReadsNames)
{
    std::vector<uint8_t> bytes{0x03, 'a', 'b', 'c'};
    ByteReader r(bytes);
    EXPECT_EQ(r.readName(), "abc");
}

TEST(ByteReader, NameLengthBeyondInputThrows)
{
    std::vector<uint8_t> bytes{0x05, 'a', 'b'};
    ByteReader r(bytes);
    EXPECT_THROW(r.readName(), DecodeError);
}

} // namespace
} // namespace wasabi::wasm
