/**
 * @file
 * Unit tests for LEB128 encoding/decoding and the ByteReader.
 */

#include <gtest/gtest.h>

#include "wasm/leb128.h"

namespace wasabi::wasm {
namespace {

TEST(ULEB, EncodesSmallValuesAsSingleByte)
{
    std::vector<uint8_t> out;
    encodeULEB(out, 0);
    encodeULEB(out, 1);
    encodeULEB(out, 127);
    EXPECT_EQ(out, (std::vector<uint8_t>{0x00, 0x01, 0x7F}));
}

TEST(ULEB, EncodesMultiByteValues)
{
    std::vector<uint8_t> out;
    encodeULEB(out, 128);
    EXPECT_EQ(out, (std::vector<uint8_t>{0x80, 0x01}));
    out.clear();
    encodeULEB(out, 624485);
    EXPECT_EQ(out, (std::vector<uint8_t>{0xE5, 0x8E, 0x26}));
}

TEST(SLEB, EncodesNegativeValues)
{
    std::vector<uint8_t> out;
    encodeSLEB(out, -1);
    EXPECT_EQ(out, (std::vector<uint8_t>{0x7F}));
    out.clear();
    encodeSLEB(out, -123456);
    EXPECT_EQ(out, (std::vector<uint8_t>{0xC0, 0xBB, 0x78}));
}

TEST(SLEB, SignBitForcesExtraByte)
{
    // 64 has bit 6 set, so the single byte 0x40 would decode as -64.
    std::vector<uint8_t> out;
    encodeSLEB(out, 64);
    EXPECT_EQ(out, (std::vector<uint8_t>{0xC0, 0x00}));
}

class RoundtripU : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundtripU, ULEBRoundtrips)
{
    std::vector<uint8_t> out;
    encodeULEB(out, GetParam());
    ByteReader r(out);
    EXPECT_EQ(r.readULEB(64), GetParam());
    EXPECT_TRUE(r.done());
}

INSTANTIATE_TEST_SUITE_P(Values, RoundtripU,
                         ::testing::Values(0ull, 1ull, 127ull, 128ull,
                                           300ull, 16383ull, 16384ull,
                                           0xFFFFFFFFull,
                                           0xFFFFFFFFFFFFFFFFull));

class RoundtripS : public ::testing::TestWithParam<int64_t> {};

TEST_P(RoundtripS, SLEBRoundtrips)
{
    std::vector<uint8_t> out;
    encodeSLEB(out, GetParam());
    ByteReader r(out);
    EXPECT_EQ(r.readSLEB(64), GetParam());
    EXPECT_TRUE(r.done());
}

INSTANTIATE_TEST_SUITE_P(
    Values, RoundtripS,
    ::testing::Values(0ll, 1ll, -1ll, 63ll, 64ll, -64ll, -65ll, 8191ll,
                      -8192ll, 0x7FFFFFFFll, -0x80000000ll,
                      0x7FFFFFFFFFFFFFFFll,
                      -0x7FFFFFFFFFFFFFFFll - 1));

TEST(ByteReader, ThrowsOnTruncatedInput)
{
    std::vector<uint8_t> bytes{0x80}; // continuation bit but no next byte
    ByteReader r(bytes);
    EXPECT_THROW(r.readULEB(32), DecodeError);
}

TEST(ByteReader, ThrowsOnOverlongULEB)
{
    // Six continuation bytes exceed the 32-bit budget.
    std::vector<uint8_t> bytes{0x80, 0x80, 0x80, 0x80, 0x80, 0x01};
    ByteReader r(bytes);
    EXPECT_THROW(r.readULEB(32), DecodeError);
}

TEST(ByteReader, ReadsFixedWidthLittleEndian)
{
    std::vector<uint8_t> bytes{0x78, 0x56, 0x34, 0x12,
                               0x01, 0x00, 0x00, 0x00,
                               0x00, 0x00, 0x00, 0x80};
    ByteReader r(bytes);
    EXPECT_EQ(r.readFixedU32(), 0x12345678u);
    EXPECT_EQ(r.readFixedU64(), 0x8000000000000001ull);
}

TEST(ByteReader, ReadsNames)
{
    std::vector<uint8_t> bytes{0x03, 'a', 'b', 'c'};
    ByteReader r(bytes);
    EXPECT_EQ(r.readName(), "abc");
}

TEST(ByteReader, NameLengthBeyondInputThrows)
{
    std::vector<uint8_t> bytes{0x05, 'a', 'b'};
    ByteReader r(bytes);
    EXPECT_THROW(r.readName(), DecodeError);
}

} // namespace
} // namespace wasabi::wasm
