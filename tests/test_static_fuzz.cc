/**
 * @file
 * Fuzz wiring for the instrumentation-invariant checker: random
 * programs, PolyBench kernels and the synthetic app are run through
 * the instrumenter under many hook subsets and the checker must come
 * back empty every time. This is the end-to-end guarantee behind
 * `wasabi check` — any instrumenter regression that breaks one of the
 * paper's invariants (selective instrumentation, constant locations,
 * i64 splitting, side tables) trips these tests before it can skew a
 * faithfulness experiment.
 */

#include <gtest/gtest.h>

#include "core/instrument.h"
#include "static/analyze.h"
#include "static/check.h"
#include "static/passes/pipeline.h"
#include "wasm/encoder.h"
#include "wasm/validator.h"
#include "workloads/polybench.h"
#include "workloads/random_program.h"
#include "workloads/synthetic_app.h"

namespace wasabi::static_analysis {
namespace {

using core::HookKind;
using core::HookSet;
using core::InstrumentResult;
using wasm::Module;

/** The hook subsets every fuzzed module is instrumented under. */
const std::vector<HookSet> &
hookSubsets()
{
    static const std::vector<HookSet> subsets = {
        HookSet::all(),
        {HookKind::Begin, HookKind::End},
        {HookKind::Call, HookKind::Return},
        {HookKind::Const, HookKind::Unary, HookKind::Binary},
        {HookKind::Load, HookKind::Store},
        {HookKind::Br, HookKind::BrIf, HookKind::BrTable},
        {HookKind::Local, HookKind::Global, HookKind::Drop,
         HookKind::Select, HookKind::If},
    };
    return subsets;
}

void
expectClean(const Module &orig, HookSet hooks, bool split_i64,
            const std::string &what)
{
    core::InstrumentOptions opts;
    opts.splitI64 = split_i64;
    InstrumentResult r = core::instrument(orig, hooks, opts);
    Diagnostics d = checkInstrumentation(*r.info, r.module);
    EXPECT_TRUE(d.empty())
        << what << " [hooks " << hooks.toString() << ", splitI64 "
        << split_i64 << "]:\n"
        << toString(d);
}

class RandomProgramCheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramCheck, InstrumenterOutputSatisfiesAllInvariants)
{
    workloads::RandomProgramOptions opts;
    opts.seed = GetParam();
    Module orig = workloads::randomProgram(opts).module;
    wasm::validateModule(orig);

    for (const HookSet &hooks : hookSubsets())
        expectClean(orig, hooks, true,
                    "random seed " + std::to_string(opts.seed));
    expectClean(orig, HookSet::all(), false,
                "random seed " + std::to_string(opts.seed));
}

TEST_P(RandomProgramCheck, TwoBinaryPathAgreesWithMetadataPath)
{
    workloads::RandomProgramOptions opts;
    opts.seed = GetParam();
    Module orig = workloads::randomProgram(opts).module;

    InstrumentResult r = core::instrument(orig, HookSet::all());
    Diagnostics d = checkInstrumentation(orig, r.module);
    EXPECT_TRUE(d.empty())
        << "two-binary check, seed " << opts.seed << ":\n" << toString(d);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramCheck,
                         ::testing::Range<uint64_t>(1, 11));

TEST_P(RandomProgramCheck, OptimizedInstrumentationChecksClean)
{
    // The analysis-guided optimizer must keep every invariant the
    // checker knows about: each omitted hook is licensed by the plan
    // embedded in the StaticInfo, and the checker re-proves each
    // claim before honoring it.
    workloads::RandomProgramOptions opts;
    opts.seed = GetParam();
    Module orig = workloads::randomProgram(opts).module;
    wasm::validateModule(orig);

    core::HookOptimizationPlan plan = passes::computePlan(orig);
    for (const HookSet &hooks : hookSubsets()) {
        core::InstrumentOptions iopts;
        iopts.plan = &plan;
        InstrumentResult r = core::instrument(orig, hooks, iopts);
        Diagnostics d = checkInstrumentation(*r.info, r.module);
        EXPECT_TRUE(d.empty())
            << "optimized, seed " << opts.seed << ", hooks "
            << hooks.toString() << ":\n"
            << toString(d);
    }
}

TEST_P(RandomProgramCheck, ManifestRoundTripTwoBinaryChecksClean)
{
    // The CLI flow: `instrument --optimize-hooks --manifest-out=` then
    // `check --manifest=`. The plan travels through its JSON manifest
    // and the two-binary checker must accept every licensed omission.
    workloads::RandomProgramOptions opts;
    opts.seed = GetParam();
    Module orig = workloads::randomProgram(opts).module;

    core::HookOptimizationPlan plan = passes::computePlan(orig);
    std::string error;
    std::optional<core::HookOptimizationPlan> parsed =
        passes::planFromManifest(passes::planToManifest(plan), &error);
    ASSERT_TRUE(parsed.has_value()) << error;

    core::InstrumentOptions iopts;
    iopts.plan = &*parsed;
    InstrumentResult r = core::instrument(orig, HookSet::all(), iopts);

    CheckOptions copts;
    copts.plan = *parsed;
    Diagnostics d = checkInstrumentation(orig, r.module, copts);
    EXPECT_TRUE(d.empty())
        << "manifest round trip, seed " << opts.seed << ":\n"
        << toString(d);
}

TEST_P(RandomProgramCheck, OptimizedInstrumentationNeverGrows)
{
    workloads::RandomProgramOptions opts;
    opts.seed = GetParam();
    Module orig = workloads::randomProgram(opts).module;

    core::HookOptimizationPlan plan = passes::computePlan(orig);
    const HookSet branch = {HookKind::If, HookKind::BrIf,
                            HookKind::BrTable, HookKind::Select};
    InstrumentResult plain = core::instrument(orig, branch);
    core::InstrumentOptions iopts;
    iopts.plan = &plan;
    InstrumentResult optimized = core::instrument(orig, branch, iopts);
    size_t plain_size = wasm::encodeModule(plain.module).size();
    size_t opt_size = wasm::encodeModule(optimized.module).size();
    // Under a branch-hook-only config every plan claim can only
    // remove code; a br_table -> br narrowing removes the index
    // plumbing, so it shrinks the binary strictly.
    EXPECT_LE(opt_size, plain_size) << "seed " << opts.seed;
    if (!plan.constBrTableIndex.empty()) {
        EXPECT_LT(opt_size, plain_size) << "seed " << opts.seed;
    }
}

/** Indirect-heavy generator config: extra call_indirect statements,
 * half of them with constant in-range indices — the shape the
 * interprocedural refinement narrows to direct-call hooks. */
workloads::RandomProgramOptions
indirectHeavyOptions(uint64_t seed)
{
    workloads::RandomProgramOptions opts;
    opts.seed = seed;
    opts.indirectCallPct = 30;
    opts.constIndexIndirectPct = 50;
    return opts;
}

class IndirectHeavyCheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndirectHeavyCheck, RefinedPlanChecksClean)
{
    // Plans over indirect-heavy modules include call_indirect ->
    // direct-call narrowing claims; the checker must re-prove each via
    // the refined call graph and accept the instrumenter's output.
    Module orig =
        workloads::randomProgram(indirectHeavyOptions(GetParam())).module;
    wasm::validateModule(orig);

    core::HookOptimizationPlan plan = passes::computePlan(orig);
    for (const HookSet &hooks : hookSubsets()) {
        core::InstrumentOptions iopts;
        iopts.plan = &plan;
        InstrumentResult r = core::instrument(orig, hooks, iopts);
        Diagnostics d = checkInstrumentation(*r.info, r.module);
        EXPECT_TRUE(d.empty())
            << "indirect-heavy, seed " << GetParam() << ", hooks "
            << hooks.toString() << ":\n"
            << toString(d);
    }
}

TEST_P(IndirectHeavyCheck, RefinedManifestRoundTripChecksClean)
{
    // The narrowing claims must survive the JSON manifest and be
    // re-proved by the two-binary checker (`check --manifest=`).
    Module orig =
        workloads::randomProgram(indirectHeavyOptions(GetParam())).module;

    core::HookOptimizationPlan plan = passes::computePlan(orig);
    std::string error;
    std::optional<core::HookOptimizationPlan> parsed =
        passes::planFromManifest(passes::planToManifest(plan), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->constCallTargets, plan.constCallTargets);

    core::InstrumentOptions iopts;
    iopts.plan = &*parsed;
    InstrumentResult r = core::instrument(orig, HookSet::all(), iopts);

    CheckOptions copts;
    copts.plan = *parsed;
    Diagnostics d = checkInstrumentation(orig, r.module, copts);
    EXPECT_TRUE(d.empty())
        << "indirect-heavy manifest round trip, seed " << GetParam()
        << ":\n"
        << toString(d);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndirectHeavyCheck,
                         ::testing::Range<uint64_t>(1, 11));

TEST(StaticFuzz, IndirectKnobsProduceNarrowableSites)
{
    // The knobs must actually exercise the narrowing path: across the
    // seed range at least one plan carries a constant-target claim
    // (otherwise the IndirectHeavy suites silently test nothing new).
    size_t claims = 0;
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        core::HookOptimizationPlan plan = passes::computePlan(
            workloads::randomProgram(indirectHeavyOptions(seed)).module);
        claims += plan.constCallTargets.size();
    }
    EXPECT_GT(claims, 0u);
}

TEST(StaticFuzz, PolybenchKernelsCheckClean)
{
    for (const std::string name : {"gemm", "jacobi-2d", "cholesky"}) {
        Module orig = workloads::polybench(name, 8).module;
        for (const HookSet &hooks : hookSubsets())
            expectClean(orig, hooks, true, "polybench " + name);
    }
}

TEST(StaticFuzz, SyntheticAppChecksClean)
{
    Module orig =
        workloads::syntheticApp(workloads::AppSize::Small).module;
    for (const HookSet &hooks : hookSubsets())
        expectClean(orig, hooks, true, "synthetic app");
    expectClean(orig, HookSet::all(), false, "synthetic app");
}

TEST(StaticFuzz, ParallelInstrumentationChecksClean)
{
    workloads::RandomProgramOptions opts;
    opts.seed = 42;
    Module orig = workloads::randomProgram(opts).module;

    core::InstrumentOptions iopts;
    iopts.numThreads = 4;
    InstrumentResult r =
        core::instrument(orig, HookSet::all(), iopts);
    Diagnostics d = checkInstrumentation(*r.info, r.module);
    EXPECT_TRUE(d.empty()) << toString(d);
}

TEST(StaticFuzz, AnalyzeRunsOnAllFuzzedModules)
{
    // The CFG/dataflow layer must handle whatever the generators emit.
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        workloads::RandomProgramOptions opts;
        opts.seed = seed;
        Module m = workloads::randomProgram(opts).module;
        ModuleReport r = analyzeModule(m);
        EXPECT_EQ(r.numFunctions, m.numFunctions());
        uint32_t blocks = 0;
        for (const FunctionStats &s : r.functions)
            blocks += s.numBlocks;
        EXPECT_GT(blocks, 0u);
    }
}

} // namespace
} // namespace wasabi::static_analysis
