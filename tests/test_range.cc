/**
 * @file
 * Tests of the value-range abstract interpretation (interval domain,
 * threshold widening, branch-condition edge refinement, interprocedural
 * argument seeding), the RangeClaim manifest round trip with tamper
 * rejection, the lint.range.* diagnostics, the deterministic JSON/DOT
 * views, and the engine bounds-check elision the claims license —
 * including the elided-vs-checked-vs-legacy differential gate and the
 * exact elided-access counters.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "core/static_info.h"
#include "interp/engine/code.h"
#include "interp/interpreter.h"
#include "static/analyze.h"
#include "static/check.h"
#include "static/passes/constprop.h"
#include "static/passes/pipeline.h"
#include "static/passes/range.h"
#include "wasm/builder.h"
#include "wasm/validator.h"
#include "workloads/polybench.h"
#include "workloads/synthetic_app.h"

namespace wasabi::static_analysis::passes {
namespace {

using core::packLoc;
using interp::EngineKind;
using interp::ExecStats;
using interp::Instance;
using interp::Interpreter;
using interp::Linker;
using interp::Trap;
using interp::TrapKind;
using wasm::FuncType;
using wasm::FunctionBuilder;
using wasm::Module;
using wasm::ModuleBuilder;
using wasm::Opcode;
using wasm::ValType;
using wasm::Value;
using workloads::Workload;

/** The FunctionRanges of the only defined function of @p m. */
FunctionRanges
soloRanges(const Module &m)
{
    ModuleRanges mr = moduleRanges(m, 1);
    for (const FunctionRanges &fr : mr.functions) {
        if (!fr.accesses.empty() || fr.analyzed)
            return fr;
    }
    return {};
}

// ----- interval arithmetic ------------------------------------------

TEST(Interval, HullAndPredicates)
{
    EXPECT_TRUE(Interval::top().isTop());
    EXPECT_TRUE(Interval::exact(7).isConst());
    Interval h = hull(Interval::exact(3), Interval::exact(9));
    EXPECT_EQ(h.lo, 3u);
    EXPECT_EQ(h.hi, 9u);
    EXPECT_EQ(hull(h, Interval::top()), Interval::top());
}

// ----- intra-procedural provability ---------------------------------

TEST(Range, CountedLoopStoreIsProven)
{
    // for (i = 0; i < 100; ++i) mem[i*4] = i  — peak address 396+4,
    // well inside the one declared page.
    ModuleBuilder mb;
    mb.memory(1);
    mb.addFunction(FuncType({}, {}), "f", [](FunctionBuilder &f) {
        uint32_t i = f.addLocal(ValType::I32);
        f.forLoop(i, 0, 100, [&] {
            f.localGet(i).i32Const(4).op(Opcode::I32Mul);
            f.localGet(i).i32Store();
        });
    });
    Module m = mb.build();
    ASSERT_EQ(validationError(m), std::nullopt);
    FunctionRanges fr = soloRanges(m);
    ASSERT_TRUE(fr.analyzed);
    ASSERT_EQ(fr.accesses.size(), 1u);
    EXPECT_TRUE(fr.accesses[0].isStore);
    EXPECT_TRUE(fr.accesses[0].proven);
    // Branch refinement: the loop guard (i >= 100 exits) bounds i to
    // [0, 99] on the fallthrough edge, so the address is [0, 396].
    EXPECT_EQ(fr.accesses[0].addr.lo, 0u);
    EXPECT_EQ(fr.accesses[0].addr.hi, 396u);
}

TEST(Range, DynamicBoundLoopTerminatesButCannotProve)
{
    // The loop bound is a parameter: widening must still terminate
    // (analyzed == true), but i*4 can wrap, so no claim.
    ModuleBuilder mb;
    mb.memory(1);
    mb.addFunction(
        FuncType({ValType::I32}, {}), "f", [](FunctionBuilder &f) {
            uint32_t i = f.addLocal(ValType::I32);
            f.i32Const(0).localSet(i);
            f.block();
            f.loop();
            f.localGet(i).localGet(0).op(Opcode::I32GeS);
            f.brIf(1);
            f.localGet(i).i32Const(4).op(Opcode::I32Mul);
            f.localGet(i).i32Store();
            f.localGet(i).i32Const(1).op(Opcode::I32Add).localSet(i);
            f.br(0);
            f.end();
            f.end();
        });
    Module m = mb.build();
    ASSERT_EQ(validationError(m), std::nullopt);
    FunctionRanges fr = soloRanges(m);
    ASSERT_TRUE(fr.analyzed);
    ASSERT_EQ(fr.accesses.size(), 1u);
    EXPECT_FALSE(fr.accesses[0].proven);
}

TEST(Range, WrapAroundAdditionIsNotProven)
{
    // base + 0xFFFFFF00 wraps for base >= 256: the sum interval must
    // degrade to top rather than pretend the address is small.
    ModuleBuilder mb;
    mb.memory(1);
    mb.addFunction(FuncType({}, {}), "f", [](FunctionBuilder &f) {
        uint32_t b = f.addLocal(ValType::I32);
        // b in [0, 65535] via a 16-bit load result.
        f.i32Const(0).load(Opcode::I32Load16U).localSet(b);
        f.localGet(b).i32Const(static_cast<int32_t>(0xFFFFFF00u));
        f.op(Opcode::I32Add);
        f.i32Const(1).i32Store();
    });
    Module m = mb.build();
    ASSERT_EQ(validationError(m), std::nullopt);
    FunctionRanges fr = soloRanges(m);
    ASSERT_TRUE(fr.analyzed);
    ASSERT_EQ(fr.accesses.size(), 2u); // the load + the store
    EXPECT_FALSE(fr.accesses[1].proven);
}

TEST(Range, UnsignedCompareRefinesLargeConstants)
{
    // u32 edge case: `if (x < 0x80000010)` is an UNSIGNED test; the
    // signed view of the bound is negative, but refinement must still
    // cap x.hi at 0x8000000F on the taken edge.
    ModuleBuilder mb;
    mb.memory(2);
    mb.addFunction(FuncType({}, {}), "f", [](FunctionBuilder &f) {
        uint32_t x = f.addLocal(ValType::I32);
        f.i32Const(0).i32Load().localSet(x);
        f.localGet(x).i32Const(static_cast<int32_t>(0x80000010u));
        f.op(Opcode::I32LtU);
        f.if_();
        f.localGet(x).i32Const(0).i32Store();
        f.end();
    });
    Module m = mb.build();
    ASSERT_EQ(validationError(m), std::nullopt);
    FunctionRanges fr = soloRanges(m);
    ASSERT_TRUE(fr.analyzed);
    // Access 0 is the i32.load at address 0; access 1 is the guarded
    // store: refined to [0, 0x8000000F], still far past memory, so
    // refinement happened but the claim must NOT be made.
    ASSERT_EQ(fr.accesses.size(), 2u);
    EXPECT_TRUE(fr.accesses[0].proven);
    EXPECT_EQ(fr.accesses[1].addr.hi, 0x8000000Fu);
    EXPECT_FALSE(fr.accesses[1].proven);
}

TEST(Range, NarrowLoadResultBoundsFollowOnAccess)
{
    // mem[mem8[0]] is proven: an 8-bit load yields [0, 255], and
    // 255 + 4 fits the declared page.
    ModuleBuilder mb;
    mb.memory(1);
    mb.addFunction(FuncType({}, {}), "f", [](FunctionBuilder &f) {
        f.i32Const(0).load(Opcode::I32Load8U);
        f.i32Const(7).i32Store();
    });
    Module m = mb.build();
    ASSERT_EQ(validationError(m), std::nullopt);
    FunctionRanges fr = soloRanges(m);
    ASSERT_EQ(fr.accesses.size(), 2u);
    EXPECT_TRUE(fr.accesses[0].proven);
    EXPECT_TRUE(fr.accesses[1].proven);
    EXPECT_EQ(fr.accesses[1].addr.hi, 255u);
}

TEST(Range, SpilledComparisonStillRefines)
{
    // The pattern instrumented code produces around every hook call:
    // the comparison result is spilled to a local, other code runs,
    // and the branch consumes a reload. The predicate must survive.
    ModuleBuilder mb;
    mb.memory(1);
    mb.addFunction(FuncType({}, {}), "f", [](FunctionBuilder &f) {
        uint32_t x = f.addLocal(ValType::I32);
        uint32_t c = f.addLocal(ValType::I32);
        f.i32Const(0).i32Load().localSet(x);
        f.localGet(x).i32Const(100).op(Opcode::I32LtU).localSet(c);
        f.i32Const(0).drop(); // unrelated work between spill + branch
        f.localGet(c);
        f.if_();
        f.localGet(x).i32Const(1).i32Store();
        f.end();
    });
    Module m = mb.build();
    ASSERT_EQ(validationError(m), std::nullopt);
    FunctionRanges fr = soloRanges(m);
    ASSERT_EQ(fr.accesses.size(), 2u);
    EXPECT_TRUE(fr.accesses[1].proven) << "refinement lost at spill";
    EXPECT_EQ(fr.accesses[1].addr.hi, 99u);
}

TEST(Range, ImmutableGlobalSeedsAddress)
{
    // Satellite: an immutable const-initialized global is a constant
    // for the interval domain (and for constprop).
    ModuleBuilder mb;
    mb.memory(1);
    uint32_t g =
        mb.global(ValType::I32, /*mut=*/false, Value::makeI32(1024));
    mb.addFunction(FuncType({}, {}), "f", [&](FunctionBuilder &f) {
        f.globalGet(g);
        f.i32Const(5).i32Store();
    });
    Module m = mb.build();
    ASSERT_EQ(validationError(m), std::nullopt);
    FunctionRanges fr = soloRanges(m);
    ASSERT_EQ(fr.accesses.size(), 1u);
    EXPECT_TRUE(fr.accesses[0].proven);
    EXPECT_EQ(fr.accesses[0].addr, Interval::exact(1024));

    EXPECT_EQ(immutableI32GlobalInit(m, g), 1024u);
}

TEST(ConstProp, MutableGlobalIsNotAConstant)
{
    ModuleBuilder mb;
    uint32_t g =
        mb.global(ValType::I32, /*mut=*/true, Value::makeI32(3));
    Module m = mb.build();
    EXPECT_EQ(immutableI32GlobalInit(m, g), std::nullopt);
    EXPECT_EQ(immutableI32GlobalInit(m, g + 17), std::nullopt);
}

// ----- interprocedural seeding --------------------------------------

TEST(Range, DirectCallArgumentsSeedCallee)
{
    // Internal g(base) stores at base; its only caller passes 2048,
    // so the callee's access is proven through the seed.
    ModuleBuilder mb;
    mb.memory(1);
    uint32_t gIdx = mb.addFunction( // internal: no export name
        FuncType({ValType::I32}, {}), "", [](FunctionBuilder &f) {
            f.localGet(0).i32Const(9).i32Store();
        });
    mb.addFunction(FuncType({}, {}), "f", [&](FunctionBuilder &f) {
        f.i32Const(2048).call(gIdx);
    });
    Module m = mb.build();
    ASSERT_EQ(validationError(m), std::nullopt);
    ModuleRanges mr = moduleRanges(m, 1);
    const FunctionRanges &g = mr.functions.at(gIdx);
    ASSERT_TRUE(g.analyzed);
    ASSERT_EQ(g.args.size(), 1u);
    EXPECT_EQ(g.args[0], Interval::exact(2048));
    ASSERT_EQ(g.accesses.size(), 1u);
    EXPECT_TRUE(g.accesses[0].proven);
}

TEST(Range, ExportedCalleeGetsTopArguments)
{
    // An exported function can be called from outside with anything:
    // its args must stay top even with a single provable internal
    // caller.
    ModuleBuilder mb;
    mb.memory(1);
    uint32_t gIdx = mb.addFunction(
        FuncType({ValType::I32}, {}), "g", [](FunctionBuilder &f) {
            f.localGet(0).i32Const(9).i32Store();
        });
    mb.addFunction(FuncType({}, {}), "f", [&](FunctionBuilder &f) {
        f.i32Const(8).call(gIdx);
    });
    Module m = mb.build();
    ASSERT_EQ(validationError(m), std::nullopt);
    ModuleRanges mr = moduleRanges(m, 1);
    const FunctionRanges &g = mr.functions.at(gIdx);
    ASSERT_TRUE(g.analyzed);
    EXPECT_TRUE(g.args.at(0).isTop());
    EXPECT_FALSE(g.accesses.at(0).proven);
}

/** Restores the default solver budget even when an assertion throws. */
struct SolverBudgetGuard {
    explicit SolverBudgetGuard(uint64_t b)
    {
        setRangeSolverBudgetForTest(b);
    }
    ~SolverBudgetGuard() { setRangeSolverBudgetForTest(0); }
};

TEST(Range, CapHitCallerDegradesCalleeSeedToTop)
{
    // When one caller's solver hits the iteration cap its call
    // arguments are unknown, so the callee's seed must degrade to
    // top. Seeding only from the surviving callers would silently
    // drop the failed caller's argument set and could prove claims
    // that its real arguments violate.
    ModuleBuilder mb;
    mb.memory(1);
    uint32_t gIdx = mb.addFunction( // internal: no export name
        FuncType({ValType::I32}, {}), "", [](FunctionBuilder &f) {
            f.localGet(0).i32Const(9).i32Store();
        });
    uint32_t aIdx =
        mb.addFunction(FuncType({}, {}), "a", [&](FunctionBuilder &f) {
            f.i32Const(2048).call(gIdx);
        });
    uint32_t bIdx =
        mb.addFunction(FuncType({}, {}), "b", [&](FunctionBuilder &f) {
            uint32_t i = f.addLocal(ValType::I32);
            f.forLoop(i, 0, 100, [&] { f.nop(); });
            f.i32Const(64).call(gIdx);
        });
    Module m = mb.build();
    ASSERT_EQ(validationError(m), std::nullopt);

    // With the default budget everything converges and the callee is
    // seeded with the join of both call sites.
    ModuleRanges full = moduleRanges(m, 1);
    ASSERT_TRUE(full.functions.at(bIdx).analyzed);
    EXPECT_EQ(full.functions.at(gIdx).args.at(0), (Interval{64, 2048}));
    EXPECT_TRUE(full.functions.at(gIdx).accesses.at(0).proven);

    // A tiny budget lets the straight-line caller (and the callee)
    // converge but trips the cap in the loop caller: the callee must
    // fall back to top, not to the surviving caller's exact(2048).
    SolverBudgetGuard guard(5);
    ModuleRanges capped = moduleRanges(m, 1);
    ASSERT_TRUE(capped.functions.at(aIdx).analyzed);
    ASSERT_FALSE(capped.functions.at(bIdx).analyzed);
    const FunctionRanges &g = capped.functions.at(gIdx);
    ASSERT_TRUE(g.analyzed);
    EXPECT_TRUE(g.args.at(0).isTop());
    ASSERT_EQ(g.accesses.size(), 1u);
    EXPECT_FALSE(g.accesses.at(0).proven);
}

TEST(Range, ManyConstantsKeepWideningSound)
{
    // >64 distinct i32 constants with a large negative share: the
    // threshold cap keeps the 62 smallest as u32 (negatives sort
    // large) and appends the sentinels, which used to leave the
    // vector unsorted — the widening binary search could then return
    // a "bound" below real runtime values and falsely prove the
    // store. The dynamic-bound loop below must never be proven.
    ModuleBuilder mb;
    mb.memory(1);
    mb.addFunction(
        FuncType({ValType::I32}, {}), "f", [](FunctionBuilder &f) {
            for (int32_t k = 0; k < 40; ++k)
                f.i32Const(3 + k).drop();
            for (int32_t k = 1; k <= 35; ++k)
                f.i32Const(-k).drop();
            // for (i = 0; i != n; i += 3) mem[i] = 1
            uint32_t i = f.addLocal(ValType::I32);
            f.block();
            f.loop();
            f.localGet(i).localGet(0).op(Opcode::I32Eq).brIf(1);
            f.localGet(i).i32Const(1).i32Store();
            f.localGet(i).i32Const(3).op(Opcode::I32Add).localSet(i);
            f.br(0);
            f.end();
            f.end();
        });
    Module m = mb.build();
    ASSERT_EQ(validationError(m), std::nullopt);
    FunctionRanges fr = soloRanges(m);
    ASSERT_TRUE(fr.analyzed);
    ASSERT_EQ(fr.accesses.size(), 1u);
    EXPECT_FALSE(fr.accesses[0].proven);
    // The widened address bound must cover the whole page, not stop
    // at an artifact of an unsorted threshold search.
    EXPECT_GE(fr.accesses[0].addr.hi, 65536u);
}

// ----- determinism ---------------------------------------------------

TEST(Range, JsonIsByteIdenticalAcrossThreadCounts)
{
    for (const std::string &name :
         {std::string("gemm"), std::string("atax"),
          std::string("jacobi-1d")}) {
        Workload w = workloads::polybench(name, 16);
        std::string one = static_analysis::rangesJson(w.module, 1);
        for (unsigned t : {2u, 4u, 8u}) {
            EXPECT_EQ(one, static_analysis::rangesJson(w.module, t))
                << name << " threads=" << t;
        }
    }
    Workload app = workloads::syntheticApp(workloads::AppSize::Small);
    EXPECT_EQ(static_analysis::rangesJson(app.module, 1),
              static_analysis::rangesJson(app.module, 8));
}

TEST(Range, PolybenchKernelsYieldClaims)
{
    // The paper-style payoff: counted-loop kernels must produce a
    // non-empty provable claim set.
    for (const std::string &name :
         {std::string("gemm"), std::string("atax"),
          std::string("mvt")}) {
        Workload w = workloads::polybench(name, 16);
        RangeClaims claims =
            provableRangeClaims(moduleRanges(w.module, 1));
        EXPECT_FALSE(claims.claims.empty()) << name;
    }
}

TEST(Range, DotViewRendersReachedBlocks)
{
    Workload w = workloads::polybench("gemm", 8);
    uint32_t kernel = 0;
    for (uint32_t i = 0; i < w.module.numFunctions(); ++i) {
        if (!w.module.functions[i].imported()) {
            kernel = i;
            break;
        }
    }
    std::string dot = static_analysis::rangesDot(w.module, kernel);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
}

// ----- claim manifest: round trip + tamper rejection -----------------

Module
provenStoreModule()
{
    ModuleBuilder mb;
    mb.memory(1);
    mb.addFunction(FuncType({}, {}), "f", [](FunctionBuilder &f) {
        uint32_t i = f.addLocal(ValType::I32);
        f.forLoop(i, 0, 64, [&] {
            f.localGet(i).i32Const(8).op(Opcode::I32Mul);
            f.localGet(i).i32Store();
        });
    });
    return mb.build();
}

TEST(RangeManifest, RoundTripsAndReproves)
{
    Module m = provenStoreModule();
    RangeClaims claims = provableRangeClaims(moduleRanges(m, 1));
    ASSERT_EQ(claims.claims.size(), 1u);
    std::string text = rangeClaimsToManifest(claims);
    EXPECT_TRUE(isRangeManifest(text));

    RangeClaims parsed;
    std::string error;
    ASSERT_TRUE(rangeClaimsFromManifest(text, &parsed, &error)) << error;
    EXPECT_EQ(parsed.minPages, claims.minPages);
    EXPECT_EQ(parsed.claims, claims.claims);

    EXPECT_TRUE(checkRangeClaims(m, parsed).empty());
    EXPECT_TRUE(checkRangeManifest(m, text).empty());
}

TEST(RangeManifest, SchemaSniffIsStructural)
{
    EXPECT_FALSE(isRangeManifest(""));
    EXPECT_FALSE(isRangeManifest("schema: wasabi-range-manifest"));
    // A file of another manifest kind that merely mentions the schema
    // string in a value must not be routed to the range checker.
    EXPECT_FALSE(isRangeManifest(
        "{\"schema\": \"wasabi-opt-manifest\", \"version\": 1, "
        "\"note\": \"wasabi-range-manifest\"}"));
    EXPECT_FALSE(isRangeManifest(
        "{\"claims\": [\"wasabi-range-manifest\"], \"version\": 1}"));
    EXPECT_FALSE(isRangeManifest("{}"));
    // The top-level schema field decides, wherever it appears.
    EXPECT_TRUE(isRangeManifest(
        "{\"version\": 1, \"minPages\": 1, \"claims\": [[0, 3]], "
        "\"schema\": \"wasabi-range-manifest\"}"));
    EXPECT_TRUE(
        isRangeManifest("{\"schema\": \"wasabi-range-manifest\"}"));
}

TEST(RangeManifest, UnprovableClaimIsRejected)
{
    Module m = provenStoreModule();
    RangeClaims claims = provableRangeClaims(moduleRanges(m, 1));
    // Forge a claim on an instruction that is a load/store boundary
    // violation candidate: shift the proven claim to the loop-guard
    // compare, which is not an access at all.
    RangeClaims forged = claims;
    forged.claims[0].instr -= 1;
    Diagnostics d = checkRangeClaims(m, forged);
    ASSERT_FALSE(d.empty());
    EXPECT_TRUE(d.hasCode("check.range.bad-location")) << toString(d);
}

TEST(RangeManifest, WrongMemoryIsRejected)
{
    Module m = provenStoreModule();
    RangeClaims claims = provableRangeClaims(moduleRanges(m, 1));
    claims.minPages += 1; // claims proved against a bigger memory
    Diagnostics d = checkRangeClaims(m, claims);
    ASSERT_FALSE(d.empty());
    EXPECT_TRUE(d.hasCode("check.range.bad-memory")) << toString(d);
}

TEST(RangeManifest, OutOfRangeFunctionIsRejected)
{
    Module m = provenStoreModule();
    RangeClaims claims = provableRangeClaims(moduleRanges(m, 1));
    claims.claims[0].func = 99;
    Diagnostics d = checkRangeClaims(m, claims);
    EXPECT_TRUE(d.hasCode("check.range.bad-location")) << toString(d);
}

TEST(RangeManifest, TamperedAccessIsUnprovable)
{
    // Claim a store the analysis cannot prove: same function shape but
    // with the memory shrunk after manifest generation is simulated by
    // hand-editing the claim onto a module whose accesses are dynamic.
    ModuleBuilder mb;
    mb.memory(1);
    mb.addFunction(
        FuncType({ValType::I32}, {}), "f", [](FunctionBuilder &f) {
            f.localGet(0).i32Const(3).i32Store(); // arg is top
        });
    Module m = mb.build();
    RangeClaims claims;
    claims.minPages = 1;
    claims.claims.push_back({0, 2}); // the i32.store, addr is top
    Diagnostics d = checkRangeClaims(m, claims);
    ASSERT_FALSE(d.empty());
    EXPECT_TRUE(d.hasCode("check.range.unprovable")) << toString(d);
}

TEST(RangeManifest, MalformedTextIsRejected)
{
    Module m = provenStoreModule();
    for (const char *bad :
         {"", "{", "{\"schema\": \"wasabi-range-manifest\"}",
          "{\"schema\": \"wasabi-range-manifest\", \"version\": 2, "
          "\"minPages\": 1, \"claims\": []}",
          "{\"schema\": \"wasabi-range-manifest\", \"version\": 1, "
          "\"minPages\": 1, \"claims\": [[0]]}"}) {
        Diagnostics d = checkRangeManifest(m, bad);
        EXPECT_TRUE(d.hasCode("check.range.bad-manifest"))
            << "input: " << bad << "\n"
            << toString(d);
    }
}

// ----- lint integration ---------------------------------------------

TEST(RangeLint, ProvablyOutOfBoundsAccessWarns)
{
    ModuleBuilder mb;
    mb.memory(1, 1); // max == min: growth impossible
    mb.addFunction(FuncType({}, {}), "f", [](FunctionBuilder &f) {
        f.i32Const(70000).i32Load().drop();
    });
    Module m = mb.build();
    Diagnostics d = lintModule(m);
    EXPECT_TRUE(d.hasCode(kLintRangeOob)) << toString(d);
}

TEST(RangeLint, GrowDependentAccessIsANote)
{
    ModuleBuilder mb;
    mb.memory(1); // no max: the access works iff memory has grown
    mb.addFunction(FuncType({}, {}), "f", [](FunctionBuilder &f) {
        f.i32Const(70000).i32Load().drop();
    });
    Module m = mb.build();
    Diagnostics d = lintModule(m);
    EXPECT_TRUE(d.hasCode(kLintRangeGrowDependent)) << toString(d);
    EXPECT_FALSE(d.hasCode(kLintRangeOob)) << toString(d);
}

TEST(RangeLint, ConstantZeroDivisorWarns)
{
    ModuleBuilder mb;
    mb.addFunction(
        FuncType({}, {ValType::I32}), "f", [](FunctionBuilder &f) {
            uint32_t z = f.addLocal(ValType::I32); // zero-initialized
            f.i32Const(7).localGet(z).op(Opcode::I32DivU);
        });
    Module m = mb.build();
    Diagnostics d = lintModule(m);
    EXPECT_TRUE(d.hasCode(kLintRangeDivByZero)) << toString(d);
}

TEST(RangeLint, IntervalOnlyDeadGuardIsReported)
{
    // (mem8[0] & 7) < 8 is always true. Constprop cannot see it (the
    // load is opaque to it), so this exercises the interval-only path
    // and the dedup against lint.branch.const-condition.
    ModuleBuilder mb;
    mb.memory(1);
    mb.addFunction(FuncType({}, {}), "f", [](FunctionBuilder &f) {
        f.i32Const(0).load(Opcode::I32Load8U);
        f.i32Const(7).op(Opcode::I32And);
        f.i32Const(8).op(Opcode::I32LtU);
        f.if_();
        f.nop();
        f.end();
    });
    Module m = mb.build();
    Diagnostics d = lintModule(m);
    EXPECT_TRUE(d.hasCode(kLintRangeDeadGuard)) << toString(d);
}

TEST(RangeLint, ConstpropFlaggedGuardIsNotDuplicated)
{
    // A guard constprop already reports must not also appear as
    // lint.range.dead-guard.
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "f", [](FunctionBuilder &f) {
        f.block();
        f.i32Const(1);
        f.brIf(0);
        f.end();
    });
    Module m = mb.build();
    Diagnostics d = lintModule(m);
    EXPECT_TRUE(d.hasCode(kLintConstCondition)) << toString(d);
    EXPECT_FALSE(d.hasCode(kLintRangeDeadGuard)) << toString(d);
}

// ----- engine elision -----------------------------------------------

/** Observable outcome of one run, engine + elision configurable. */
struct Outcome {
    std::vector<Value> results;
    std::optional<TrapKind> trap;
    std::vector<uint8_t> memory;
    uint64_t instructions = 0;
    uint64_t calls = 0;
    uint64_t memoryOps = 0;
    uint64_t memoryOpsElided = 0;

    /** Everything except the elided counter (which intentionally
     * differs between checked and elided runs). */
    bool
    agreesWith(const Outcome &o) const
    {
        return results == o.results && trap == o.trap &&
               memory == o.memory && instructions == o.instructions &&
               calls == o.calls && memoryOps == o.memoryOps;
    }
};

std::unordered_set<uint64_t>
elisionSet(const Module &m)
{
    RangeClaims claims = provableRangeClaims(moduleRanges(m, 1));
    std::unordered_set<uint64_t> locs;
    for (const RangeClaim &c : claims.claims)
        locs.insert(packLoc({c.func, c.instr}));
    return locs;
}

Outcome
runWorkload(const Workload &w, EngineKind engine, bool elide)
{
    Outcome out;
    auto inst = Instance::instantiate(w.module, Linker());
    if (elide)
        inst->engineCode().setElisions(elisionSet(w.module));
    Interpreter interp;
    interp.engine = engine;
    try {
        out.results = interp.invokeExport(*inst, w.entry, w.args);
    } catch (const Trap &t) {
        out.trap = t.kind();
    }
    out.memory = inst->memory().raw();
    const ExecStats &s = interp.stats();
    out.instructions = s.instructions;
    out.calls = s.calls;
    out.memoryOps = s.memoryOps;
    out.memoryOpsElided = s.memoryOpsElided;
    return out;
}

class ElisionDifferentialPolybench
    : public ::testing::TestWithParam<std::string> {};

/** Satellite 2, the safety gate: with every provable bounds check
 * elided, the fast engine must stay byte-equivalent to both checked
 * engines on every PolyBench kernel. */
TEST_P(ElisionDifferentialPolybench, ElidedRunMatchesBothEngines)
{
    Workload w = workloads::polybench(GetParam(), 8);
    Outcome legacy = runWorkload(w, EngineKind::Legacy, false);
    Outcome checked = runWorkload(w, EngineKind::Fast, false);
    Outcome elided = runWorkload(w, EngineKind::Fast, true);
    EXPECT_TRUE(legacy.agreesWith(checked)) << GetParam();
    EXPECT_TRUE(legacy.agreesWith(elided)) << GetParam();
    EXPECT_EQ(legacy.memoryOpsElided, 0u);
    EXPECT_EQ(checked.memoryOpsElided, 0u);
    EXPECT_LE(elided.memoryOpsElided, elided.memoryOps);
}

INSTANTIATE_TEST_SUITE_P(Kernels, ElisionDifferentialPolybench,
                         ::testing::ValuesIn(workloads::polybenchNames()));

TEST(ElisionDifferential, SyntheticAppsAgree)
{
    for (workloads::AppSize size :
         {workloads::AppSize::Small, workloads::AppSize::PdfkitLike}) {
        Workload w = workloads::syntheticApp(size);
        Outcome legacy = runWorkload(w, EngineKind::Legacy, false);
        Outcome elided = runWorkload(w, EngineKind::Fast, true);
        EXPECT_TRUE(legacy.agreesWith(elided));
    }
}

TEST(Elision, CountersAreExact)
{
    // 64 proven stores in a counted loop: the elided run must execute
    // exactly 64 unchecked accesses, and the checked run zero.
    ModuleBuilder mb;
    mb.memory(1);
    mb.addFunction(FuncType({}, {}), "f", [](FunctionBuilder &f) {
        uint32_t i = f.addLocal(ValType::I32);
        f.forLoop(i, 0, 64, [&] {
            f.localGet(i).i32Const(8).op(Opcode::I32Mul);
            f.localGet(i).i32Store();
        });
    });
    Workload w;
    w.module = mb.build();
    w.entry = "f";
    ASSERT_EQ(validationError(w.module), std::nullopt);
    ASSERT_EQ(elisionSet(w.module).size(), 1u);

    Outcome checked = runWorkload(w, EngineKind::Fast, false);
    Outcome elided = runWorkload(w, EngineKind::Fast, true);
    EXPECT_TRUE(checked.agreesWith(elided));
    EXPECT_EQ(checked.memoryOpsElided, 0u);
    EXPECT_EQ(elided.memoryOpsElided, 64u);
    EXPECT_EQ(elided.memoryOps, 64u);
}

TEST(Elision, UnclaimedAccessStillTraps)
{
    // A function mixing one proven store with one genuinely dynamic
    // (unproven) store: the latter keeps its bounds check and must
    // still trap out of bounds after elision licensing.
    ModuleBuilder mb;
    mb.memory(1);
    mb.addFunction(
        FuncType({ValType::I32}, {}), "f", [](FunctionBuilder &f) {
            f.i32Const(16).i32Const(1).i32Store(); // proven
            f.localGet(0).i32Const(2).i32Store();  // top: stays checked
        });
    Module m = mb.build();
    ASSERT_EQ(validationError(m), std::nullopt);
    std::unordered_set<uint64_t> locs = elisionSet(m);
    ASSERT_EQ(locs.size(), 1u);

    auto inst = Instance::instantiate(m, Linker());
    inst->engineCode().setElisions(locs);
    Interpreter interp;
    std::vector<Value> oob = {Value::makeI32(0xFFFFFFF0u)};
    try {
        interp.invokeExport(*inst, "f", oob);
        FAIL() << "expected MemoryOutOfBounds";
    } catch (const Trap &t) {
        EXPECT_EQ(t.kind(), TrapKind::MemoryOutOfBounds);
    }
    // In-bounds argument: both stores land, one of them unchecked.
    auto inst2 = Instance::instantiate(m, Linker());
    inst2->engineCode().setElisions(locs);
    Interpreter interp2;
    std::vector<Value> inBounds = {Value::makeI32(64)};
    interp2.invokeExport(*inst2, "f", inBounds);
    EXPECT_EQ(interp2.stats().memoryOpsElided, 1u);
    EXPECT_EQ(interp2.stats().memoryOps, 2u);
}

TEST(Elision, SetElisionsInvalidatesCompiledCode)
{
    // Licensing elisions after a function was already translated must
    // retranslate it — stale checked code may not linger, nor may
    // stale unchecked code survive clearing the set.
    Module m = provenStoreModule();
    auto inst = Instance::instantiate(m, Linker());
    Interpreter interp;
    interp.invokeExport(*inst, "f", {}); // translate checked
    EXPECT_EQ(interp.stats().memoryOpsElided, 0u);

    inst->engineCode().setElisions(elisionSet(m));
    Interpreter again;
    again.invokeExport(*inst, "f", {});
    EXPECT_EQ(again.stats().memoryOpsElided, 64u);

    inst->engineCode().setElisions({});
    Interpreter third;
    third.invokeExport(*inst, "f", {});
    EXPECT_EQ(third.stats().memoryOpsElided, 0u);
}

} // namespace
} // namespace wasabi::static_analysis::passes
