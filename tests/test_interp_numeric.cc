/**
 * @file
 * Interpreter tests for numeric instruction semantics: arithmetic,
 * comparisons, conversions, and their trapping behavior. Uses
 * parameterized sweeps over (op, inputs, expected) triples.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "interp/interpreter.h"
#include "interp/numerics.h"
#include "wasm/builder.h"

namespace wasabi::interp {
namespace {

using wasm::Opcode;
using wasm::Value;
using wasm::ValType;

// ---------------------------------------------------------------------
// Direct unit tests of evalUnary / evalBinary.

struct BinCase {
    Opcode op;
    Value lhs, rhs, expected;
};

std::ostream &
operator<<(std::ostream &os, const BinCase &c)
{
    return os << wasm::name(c.op) << "(" << toString(c.lhs) << ", "
              << toString(c.rhs) << ") = " << toString(c.expected);
}

class BinaryOps : public ::testing::TestWithParam<BinCase> {};

TEST_P(BinaryOps, Evaluates)
{
    const BinCase &c = GetParam();
    EXPECT_EQ(evalBinary(c.op, c.lhs, c.rhs), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    I32Arith, BinaryOps,
    ::testing::Values(
        BinCase{Opcode::I32Add, Value::makeI32(2), Value::makeI32(3),
                Value::makeI32(5)},
        BinCase{Opcode::I32Add, Value::makeI32(0xFFFFFFFF),
                Value::makeI32(1), Value::makeI32(0)},
        BinCase{Opcode::I32Sub, Value::makeI32(2), Value::makeI32(3),
                Value::makeI32(0xFFFFFFFF)},
        BinCase{Opcode::I32Mul, Value::makeI32(0x10000),
                Value::makeI32(0x10000), Value::makeI32(0)},
        BinCase{Opcode::I32DivS,
                Value::makeI32(static_cast<uint32_t>(-7)),
                Value::makeI32(2),
                Value::makeI32(static_cast<uint32_t>(-3))},
        BinCase{Opcode::I32DivU, Value::makeI32(0xFFFFFFFE),
                Value::makeI32(2), Value::makeI32(0x7FFFFFFF)},
        BinCase{Opcode::I32RemS,
                Value::makeI32(static_cast<uint32_t>(-7)),
                Value::makeI32(2),
                Value::makeI32(static_cast<uint32_t>(-1))},
        BinCase{Opcode::I32RemS, Value::makeI32(0x80000000),
                Value::makeI32(static_cast<uint32_t>(-1)),
                Value::makeI32(0)},
        BinCase{Opcode::I32RemU, Value::makeI32(7), Value::makeI32(4),
                Value::makeI32(3)},
        BinCase{Opcode::I32And, Value::makeI32(0b1100),
                Value::makeI32(0b1010), Value::makeI32(0b1000)},
        BinCase{Opcode::I32Or, Value::makeI32(0b1100),
                Value::makeI32(0b1010), Value::makeI32(0b1110)},
        BinCase{Opcode::I32Xor, Value::makeI32(0b1100),
                Value::makeI32(0b1010), Value::makeI32(0b0110)},
        BinCase{Opcode::I32Shl, Value::makeI32(1), Value::makeI32(33),
                Value::makeI32(2)}, // count masked to 1
        BinCase{Opcode::I32ShrS, Value::makeI32(0x80000000),
                Value::makeI32(31), Value::makeI32(0xFFFFFFFF)},
        BinCase{Opcode::I32ShrU, Value::makeI32(0x80000000),
                Value::makeI32(31), Value::makeI32(1)},
        BinCase{Opcode::I32Rotl, Value::makeI32(0x80000001),
                Value::makeI32(1), Value::makeI32(3)},
        BinCase{Opcode::I32Rotr, Value::makeI32(3), Value::makeI32(1),
                Value::makeI32(0x80000001)}));

INSTANTIATE_TEST_SUITE_P(
    I64Arith, BinaryOps,
    ::testing::Values(
        BinCase{Opcode::I64Add, Value::makeI64(0xFFFFFFFFFFFFFFFFull),
                Value::makeI64(1), Value::makeI64(0)},
        BinCase{Opcode::I64Mul, Value::makeI64(1ull << 33),
                Value::makeI64(1ull << 33), Value::makeI64(0)},
        BinCase{Opcode::I64DivS,
                Value::makeI64(static_cast<uint64_t>(-10)),
                Value::makeI64(3),
                Value::makeI64(static_cast<uint64_t>(-3))},
        BinCase{Opcode::I64Shl, Value::makeI64(1), Value::makeI64(65),
                Value::makeI64(2)},
        BinCase{Opcode::I64Rotr, Value::makeI64(1), Value::makeI64(1),
                Value::makeI64(1ull << 63)}));

INSTANTIATE_TEST_SUITE_P(
    Comparisons, BinaryOps,
    ::testing::Values(
        BinCase{Opcode::I32LtS, Value::makeI32(static_cast<uint32_t>(-1)),
                Value::makeI32(1), Value::makeI32(1)},
        BinCase{Opcode::I32LtU, Value::makeI32(static_cast<uint32_t>(-1)),
                Value::makeI32(1), Value::makeI32(0)},
        BinCase{Opcode::I64GeU, Value::makeI64(5), Value::makeI64(5),
                Value::makeI32(1)},
        BinCase{Opcode::F32Lt, Value::makeF32(1.0f), Value::makeF32(2.0f),
                Value::makeI32(1)},
        BinCase{Opcode::F64Ge, Value::makeF64(-0.0), Value::makeF64(0.0),
                Value::makeI32(1)},
        BinCase{Opcode::F64Eq, Value::makeF64(NAN), Value::makeF64(NAN),
                Value::makeI32(0)},
        BinCase{Opcode::F64Ne, Value::makeF64(NAN), Value::makeF64(NAN),
                Value::makeI32(1)}));

INSTANTIATE_TEST_SUITE_P(
    FloatArith, BinaryOps,
    ::testing::Values(
        BinCase{Opcode::F64Add, Value::makeF64(1.5), Value::makeF64(2.25),
                Value::makeF64(3.75)},
        BinCase{Opcode::F64Div, Value::makeF64(1.0), Value::makeF64(0.0),
                Value::makeF64(std::numeric_limits<double>::infinity())},
        BinCase{Opcode::F64Min, Value::makeF64(-0.0), Value::makeF64(0.0),
                Value::makeF64(-0.0)},
        BinCase{Opcode::F64Max, Value::makeF64(-0.0), Value::makeF64(0.0),
                Value::makeF64(0.0)},
        BinCase{Opcode::F32Copysign, Value::makeF32(3.0f),
                Value::makeF32(-1.0f), Value::makeF32(-3.0f)},
        BinCase{Opcode::F32Min, Value::makeF32(1.0f), Value::makeF32(2.0f),
                Value::makeF32(1.0f)}));

struct UnCase {
    Opcode op;
    Value input, expected;
};

std::ostream &
operator<<(std::ostream &os, const UnCase &c)
{
    return os << wasm::name(c.op) << "(" << toString(c.input)
              << ") = " << toString(c.expected);
}

class UnaryOps : public ::testing::TestWithParam<UnCase> {};

TEST_P(UnaryOps, Evaluates)
{
    const UnCase &c = GetParam();
    EXPECT_EQ(evalUnary(c.op, c.input), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    IntUnary, UnaryOps,
    ::testing::Values(
        UnCase{Opcode::I32Eqz, Value::makeI32(0), Value::makeI32(1)},
        UnCase{Opcode::I32Eqz, Value::makeI32(7), Value::makeI32(0)},
        UnCase{Opcode::I64Eqz, Value::makeI64(0), Value::makeI32(1)},
        UnCase{Opcode::I32Clz, Value::makeI32(1), Value::makeI32(31)},
        UnCase{Opcode::I32Clz, Value::makeI32(0), Value::makeI32(32)},
        UnCase{Opcode::I32Ctz, Value::makeI32(0x80000000),
               Value::makeI32(31)},
        UnCase{Opcode::I32Popcnt, Value::makeI32(0xF0F0),
               Value::makeI32(8)},
        UnCase{Opcode::I64Clz, Value::makeI64(1), Value::makeI64(63)},
        UnCase{Opcode::I64Popcnt, Value::makeI64(~0ull),
               Value::makeI64(64)}));

INSTANTIATE_TEST_SUITE_P(
    FloatUnary, UnaryOps,
    ::testing::Values(
        UnCase{Opcode::F64Abs, Value::makeF64(-2.5), Value::makeF64(2.5)},
        UnCase{Opcode::F64Neg, Value::makeF64(0.0), Value::makeF64(-0.0)},
        UnCase{Opcode::F64Ceil, Value::makeF64(1.2), Value::makeF64(2.0)},
        UnCase{Opcode::F64Floor, Value::makeF64(-1.2),
               Value::makeF64(-2.0)},
        UnCase{Opcode::F64Trunc, Value::makeF64(-1.7),
               Value::makeF64(-1.0)},
        UnCase{Opcode::F64Nearest, Value::makeF64(2.5),
               Value::makeF64(2.0)}, // ties to even
        UnCase{Opcode::F64Nearest, Value::makeF64(3.5),
               Value::makeF64(4.0)},
        UnCase{Opcode::F64Sqrt, Value::makeF64(9.0), Value::makeF64(3.0)},
        UnCase{Opcode::F32Sqrt, Value::makeF32(4.0f),
               Value::makeF32(2.0f)}));

INSTANTIATE_TEST_SUITE_P(
    Conversions, UnaryOps,
    ::testing::Values(
        UnCase{Opcode::I32WrapI64, Value::makeI64(0x1FFFFFFFFull),
               Value::makeI32(0xFFFFFFFF)},
        UnCase{Opcode::I64ExtendI32S,
               Value::makeI32(static_cast<uint32_t>(-5)),
               Value::makeI64(static_cast<uint64_t>(-5))},
        UnCase{Opcode::I64ExtendI32U,
               Value::makeI32(static_cast<uint32_t>(-5)),
               Value::makeI64(0xFFFFFFFBull)},
        UnCase{Opcode::I32TruncF64S, Value::makeF64(-3.99),
               Value::makeI32(static_cast<uint32_t>(-3))},
        UnCase{Opcode::I32TruncF64U, Value::makeF64(3.99),
               Value::makeI32(3)},
        UnCase{Opcode::I32TruncF64U, Value::makeF64(-0.5),
               Value::makeI32(0)},
        UnCase{Opcode::I64TruncF64S, Value::makeF64(1e15),
               Value::makeI64(1000000000000000ull)},
        UnCase{Opcode::F32ConvertI32U,
               Value::makeI32(static_cast<uint32_t>(-1)),
               Value::makeF32(4294967296.0f)},
        UnCase{Opcode::F64ConvertI64U, Value::makeI64(~0ull),
               Value::makeF64(18446744073709551616.0)},
        UnCase{Opcode::F64ConvertI32S,
               Value::makeI32(static_cast<uint32_t>(-7)),
               Value::makeF64(-7.0)},
        UnCase{Opcode::F64PromoteF32, Value::makeF32(1.5f),
               Value::makeF64(1.5)},
        UnCase{Opcode::F32DemoteF64, Value::makeF64(1.5),
               Value::makeF32(1.5f)},
        UnCase{Opcode::I32ReinterpretF32, Value::makeF32(1.0f),
               Value::makeI32(0x3F800000)},
        UnCase{Opcode::F64ReinterpretI64,
               Value::makeI64(0x3FF0000000000000ull),
               Value::makeF64(1.0)}));

// ---------------------------------------------------------------------
// Trapping behavior.

TEST(NumericTraps, DivisionByZero)
{
    EXPECT_THROW(evalBinary(Opcode::I32DivS, Value::makeI32(1),
                            Value::makeI32(0)),
                 Trap);
    EXPECT_THROW(evalBinary(Opcode::I64RemU, Value::makeI64(1),
                            Value::makeI64(0)),
                 Trap);
    try {
        evalBinary(Opcode::I32DivU, Value::makeI32(1), Value::makeI32(0));
        FAIL();
    } catch (const Trap &t) {
        EXPECT_EQ(t.kind(), TrapKind::DivByZero);
    }
}

TEST(NumericTraps, SignedDivisionOverflow)
{
    try {
        evalBinary(Opcode::I32DivS, Value::makeI32(0x80000000),
                   Value::makeI32(static_cast<uint32_t>(-1)));
        FAIL();
    } catch (const Trap &t) {
        EXPECT_EQ(t.kind(), TrapKind::IntegerOverflow);
    }
    EXPECT_THROW(evalBinary(Opcode::I64DivS,
                            Value::makeI64(0x8000000000000000ull),
                            Value::makeI64(~0ull)),
                 Trap);
}

TEST(NumericTraps, TruncOfNaN)
{
    try {
        evalUnary(Opcode::I32TruncF32S, Value::makeF32(NAN));
        FAIL();
    } catch (const Trap &t) {
        EXPECT_EQ(t.kind(), TrapKind::InvalidConversion);
    }
}

TEST(NumericTraps, TruncOutOfRange)
{
    EXPECT_THROW(evalUnary(Opcode::I32TruncF64S, Value::makeF64(3e9)),
                 Trap);
    EXPECT_THROW(evalUnary(Opcode::I32TruncF64S, Value::makeF64(-3e9)),
                 Trap);
    EXPECT_THROW(evalUnary(Opcode::I32TruncF64U, Value::makeF64(-1.0)),
                 Trap);
    EXPECT_THROW(evalUnary(Opcode::I32TruncF64U, Value::makeF64(4.3e9)),
                 Trap);
    EXPECT_THROW(evalUnary(Opcode::I64TruncF64S, Value::makeF64(1e19)),
                 Trap);
    // Boundary values that must NOT trap.
    EXPECT_EQ(evalUnary(Opcode::I32TruncF64S, Value::makeF64(-2147483648.0))
                  .i32s(),
              -2147483648);
    EXPECT_EQ(
        evalUnary(Opcode::I32TruncF64U, Value::makeF64(4294967295.0)).i32(),
        4294967295u);
}

TEST(NumericTraps, MinMaxPropagateNaN)
{
    Value r = evalBinary(Opcode::F64Min, Value::makeF64(NAN),
                         Value::makeF64(1.0));
    EXPECT_TRUE(std::isnan(r.f64()));
    r = evalBinary(Opcode::F32Max, Value::makeF32(1.0f),
                   Value::makeF32(NAN));
    EXPECT_TRUE(std::isnan(r.f32()));
}

// Float arithmetic must canonicalize NaN results: with two NaN
// operands x86 returns whichever one the compiler put in the
// destination register, so without canonicalization two compilations
// of the same expression (legacy walker vs fast engine) can legally
// return different payloads and break the engine-differential gate.
TEST(NumericTraps, ArithmeticCanonicalizesNaNPayloads)
{
    const Value nanA(wasm::ValType::F64, 0xFFFFFFFFD049ED70ull);
    const Value nanB(wasm::ValType::F64, 0x7FF8000000001234ull);
    const uint64_t canon64 = 0x7FF8000000000000ull;
    for (Opcode op : {Opcode::F64Add, Opcode::F64Sub, Opcode::F64Mul,
                      Opcode::F64Div})
        EXPECT_EQ(evalBinary(op, nanA, nanB).bits, canon64)
            << wasm::name(op);
    EXPECT_EQ(evalUnary(Opcode::F64Sqrt, nanA).bits, canon64);

    const Value nan32(wasm::ValType::F32, 0xFFA00001u);
    const uint64_t canon32 = 0x7FC00000u;
    EXPECT_EQ(evalBinary(Opcode::F32Mul, nan32, nan32).bits, canon32);
    EXPECT_EQ(evalUnary(Opcode::F32DemoteF64, nanA).bits, canon32);

    // Bit-preserving instructions must NOT canonicalize.
    EXPECT_EQ(evalUnary(Opcode::F64Abs, nanA).bits,
              0x7FFFFFFFD049ED70ull);
    EXPECT_EQ(evalUnary(Opcode::F64Neg, nanB).bits,
              0xFFF8000000001234ull);
    EXPECT_EQ(evalUnary(Opcode::I64ReinterpretF64, nanA).i64(),
              0xFFFFFFFFD049ED70ull);
}

// ---------------------------------------------------------------------
// End-to-end: numeric ops through the interpreter.

TEST(InterpNumeric, ComputesFactorialIteratively)
{
    wasm::ModuleBuilder mb;
    wasm::FunctionBuilder fb = mb.startFunction(
        wasm::FuncType({ValType::I64}, {ValType::I64}), "fact");
    uint32_t acc = fb.addLocal(ValType::I64);
    fb.i64Const(1).localSet(acc);
    fb.block();
    fb.loop();
    // if (n == 0) break
    fb.localGet(0).op(Opcode::I64Eqz).brIf(1);
    // acc *= n
    fb.localGet(acc).localGet(0).op(Opcode::I64Mul).localSet(acc);
    // n -= 1
    fb.localGet(0).i64Const(1).op(Opcode::I64Sub).localSet(0);
    fb.br(0);
    fb.end();
    fb.end();
    fb.localGet(acc);
    fb.finish();

    auto inst = Instance::instantiate(mb.build(), Linker());
    Interpreter interp;
    std::vector<Value> args{Value::makeI64(20)};
    auto results = interp.invokeExport(*inst, "fact", args);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].i64(), 2432902008176640000ull);
}

TEST(InterpNumeric, TrapPropagatesFromNestedCode)
{
    wasm::ModuleBuilder mb;
    mb.addFunction(wasm::FuncType({}, {ValType::I32}), "f",
                   [](wasm::FunctionBuilder &f) {
                       f.block(ValType::I32);
                       f.i32Const(1);
                       f.i32Const(0);
                       f.op(Opcode::I32DivU);
                       f.end();
                   });
    auto inst = Instance::instantiate(mb.build(), Linker());
    Interpreter interp;
    try {
        interp.invokeExport(*inst, "f", {});
        FAIL();
    } catch (const Trap &t) {
        EXPECT_EQ(t.kind(), TrapKind::DivByZero);
    }
}

} // namespace
} // namespace wasabi::interp
