/**
 * @file
 * Integration sweep over the entire numeric instruction set: for every
 * unary and binary opcode, a module is built, encoded, decoded,
 * validated and executed end-to-end, and the result must match the
 * direct semantic evaluation (evalUnary/evalBinary). This pins down
 * the full decode -> validate -> execute pipeline per opcode.
 */

#include <gtest/gtest.h>

#include "interp/interpreter.h"
#include "interp/numerics.h"
#include "wasm/builder.h"
#include "wasm/decoder.h"
#include "wasm/encoder.h"
#include "wasm/validator.h"

namespace wasabi::interp {
namespace {

using wasm::FuncType;
using wasm::Instr;
using wasm::ModuleBuilder;
using wasm::Opcode;
using wasm::OpClass;
using wasm::OpInfo;
using wasm::Value;
using wasm::ValType;

/** Deterministic, interesting sample inputs per type. */
std::vector<Value>
samples(ValType t)
{
    switch (t) {
      case ValType::I32:
        return {Value::makeI32(0), Value::makeI32(1),
                Value::makeI32(static_cast<uint32_t>(-1)),
                Value::makeI32(0x7FFFFFFF), Value::makeI32(0x80000000),
                Value::makeI32(42)};
      case ValType::I64:
        return {Value::makeI64(0), Value::makeI64(1),
                Value::makeI64(~0ull), Value::makeI64(1ull << 63),
                Value::makeI64(0x0123456789ABCDEFull)};
      case ValType::F32:
        return {Value::makeF32(0.0f), Value::makeF32(-0.0f),
                Value::makeF32(1.5f), Value::makeF32(-3.75f),
                Value::makeF32(100.0f)};
      case ValType::F64:
        return {Value::makeF64(0.0), Value::makeF64(-0.0),
                Value::makeF64(2.5), Value::makeF64(-1e10),
                Value::makeF64(0.015625)};
    }
    return {};
}

Instr
constOf(Value v)
{
    switch (v.type) {
      case ValType::I32: return Instr::i32Const(v.i32());
      case ValType::I64: return Instr::i64Const(v.i64());
      case ValType::F32: return Instr::f32Const(v.f32());
      case ValType::F64: return Instr::f64Const(v.f64());
    }
    return Instr();
}

/** Execute `op` applied to consts through the full pipeline. */
std::optional<Value>
runOp(Opcode op, const std::vector<Value> &inputs)
{
    const OpInfo &info = wasm::opInfo(op);
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {info.out}), "f",
                   [&](wasm::FunctionBuilder &f) {
                       for (const Value &v : inputs)
                           f.emit(constOf(v));
                       f.op(op);
                   });
    wasm::Module m = wasm::decodeModule(wasm::encodeModule(mb.build()));
    EXPECT_EQ(validationError(m), std::nullopt) << wasm::name(op);
    auto inst = Instance::instantiate(std::move(m), Linker());
    Interpreter interp;
    try {
        auto results = interp.invokeExport(*inst, "f", {});
        return results.at(0);
    } catch (const Trap &) {
        return std::nullopt;
    }
}

std::optional<Value>
evalDirect(Opcode op, const std::vector<Value> &inputs)
{
    try {
        if (inputs.size() == 1)
            return evalUnary(op, inputs[0]);
        return evalBinary(op, inputs[0], inputs[1]);
    } catch (const Trap &) {
        return std::nullopt;
    }
}

class NumericOpcodeSweep : public ::testing::TestWithParam<Opcode> {};

TEST_P(NumericOpcodeSweep, PipelineMatchesDirectSemantics)
{
    Opcode op = GetParam();
    const OpInfo &info = wasm::opInfo(op);
    if (info.cls == OpClass::Unary) {
        for (Value in : samples(info.in[0])) {
            auto expected = evalDirect(op, {in});
            auto actual = runOp(op, {in});
            EXPECT_EQ(expected, actual)
                << wasm::name(op) << "(" << toString(in) << ")";
        }
    } else {
        for (Value a : samples(info.in[0])) {
            for (Value b : samples(info.in[1])) {
                auto expected = evalDirect(op, {a, b});
                auto actual = runOp(op, {a, b});
                EXPECT_EQ(expected, actual)
                    << wasm::name(op) << "(" << toString(a) << ", "
                    << toString(b) << ")";
            }
        }
    }
}

std::vector<Opcode>
numericOpcodes()
{
    std::vector<Opcode> ops;
    for (Opcode op : wasm::allOpcodes()) {
        OpClass c = wasm::opInfo(op).cls;
        if (c == OpClass::Unary || c == OpClass::Binary)
            ops.push_back(op);
    }
    return ops;
}

INSTANTIATE_TEST_SUITE_P(
    All, NumericOpcodeSweep, ::testing::ValuesIn(numericOpcodes()),
    [](const ::testing::TestParamInfo<Opcode> &info) {
        std::string n = wasm::name(info.param);
        for (char &c : n) {
            if (c == '.' || c == '/')
                c = '_';
        }
        return n;
    });

/** Loads and stores of every width, swept over byte patterns. */
TEST(MemoryOpcodeSweep, AllLoadStoreWidths)
{
    struct Case {
        Opcode store, load;
        uint64_t pattern, expected;
        ValType t;
    };
    const Case cases[] = {
        {Opcode::I32Store8, Opcode::I32Load8U, 0x1FF, 0xFF, ValType::I32},
        {Opcode::I32Store8, Opcode::I32Load8S, 0x80, 0xFFFFFF80,
         ValType::I32},
        {Opcode::I32Store16, Opcode::I32Load16U, 0x18000, 0x8000,
         ValType::I32},
        {Opcode::I32Store16, Opcode::I32Load16S, 0x8000, 0xFFFF8000,
         ValType::I32},
        {Opcode::I32Store, Opcode::I32Load, 0xDEADBEEF, 0xDEADBEEF,
         ValType::I32},
        {Opcode::I64Store8, Opcode::I64Load8U, 0xAB, 0xAB, ValType::I64},
        {Opcode::I64Store16, Opcode::I64Load16S, 0xFFFF,
         0xFFFFFFFFFFFFFFFF, ValType::I64},
        {Opcode::I64Store32, Opcode::I64Load32U, 0xFFFFFFFF, 0xFFFFFFFF,
         ValType::I64},
        {Opcode::I64Store32, Opcode::I64Load32S, 0x80000000,
         0xFFFFFFFF80000000, ValType::I64},
        {Opcode::I64Store, Opcode::I64Load, 0x0123456789ABCDEF,
         0x0123456789ABCDEF, ValType::I64},
    };
    for (const Case &c : cases) {
        ModuleBuilder mb;
        mb.memory(1);
        mb.addFunction(
            FuncType({}, {c.t}), "f", [&](wasm::FunctionBuilder &f) {
                f.i32Const(32);
                if (c.t == ValType::I32)
                    f.i32Const(static_cast<uint32_t>(c.pattern));
                else
                    f.i64Const(c.pattern);
                f.store(c.store);
                f.i32Const(32);
                f.load(c.load);
            });
        auto inst = Instance::instantiate(mb.build(), Linker());
        Interpreter interp;
        Value got = interp.invokeExport(*inst, "f", {})[0];
        EXPECT_EQ(got.bits, c.expected)
            << wasm::name(c.store) << "/" << wasm::name(c.load);
    }
}

/** Float loads/stores roundtrip bit patterns including NaNs. */
TEST(MemoryOpcodeSweep, FloatRoundtripsPreserveBits)
{
    ModuleBuilder mb;
    mb.memory(1);
    mb.addFunction(FuncType({ValType::F64}, {ValType::F64}), "d",
                   [](wasm::FunctionBuilder &f) {
                       f.i32Const(0);
                       f.localGet(0);
                       f.f64Store();
                       f.i32Const(0);
                       f.f64Load();
                   });
    mb.addFunction(FuncType({ValType::F32}, {ValType::F32}), "s",
                   [](wasm::FunctionBuilder &f) {
                       f.i32Const(8);
                       f.localGet(0);
                       f.store(Opcode::F32Store);
                       f.i32Const(8);
                       f.load(Opcode::F32Load);
                   });
    auto inst = Instance::instantiate(mb.build(), Linker());
    Interpreter interp;
    Value nan64 = Value(ValType::F64, 0x7FF4000000000001ull);
    std::vector<Value> a{nan64};
    EXPECT_EQ(interp.invokeExport(*inst, "d", a)[0].bits, nan64.bits);
    Value nan32 = Value(ValType::F32, 0x7FA00001u);
    std::vector<Value> b{nan32};
    EXPECT_EQ(interp.invokeExport(*inst, "s", b)[0].bits, nan32.bits);
}

} // namespace
} // namespace wasabi::interp
