/**
 * @file
 * Tests that mirror the paper's own listings and figures directly:
 *
 *  - Figure 4: structured control flow and forward-branch resolution,
 *  - Figure 6: the abstract control stack at a branch,
 *  - Table 3: the per-row instrumentation transformations (inspected
 *    structurally on the instrumented body),
 *  - Figure 1: the cryptominer-detection analysis,
 *  - Figure 7: the branch-coverage analysis.
 *
 * Modules are authored in WAT using the paper's (pre-1.0) mnemonics,
 * which the parser accepts.
 */

#include <gtest/gtest.h>

#include "analyses/branch_coverage.h"
#include "analyses/cryptominer.h"
#include "core/control_stack.h"
#include "core/instrument.h"
#include "interp/interpreter.h"
#include "runtime/runtime.h"
#include "wasm/validator.h"
#include "wasm/wat_parser.h"

namespace wasabi {
namespace {

using core::AbstractState;
using core::BlockKind;
using core::HookKind;
using core::HookSet;
using core::instrument;
using core::InstrumentResult;
using interp::Interpreter;
using runtime::WasabiRuntime;
using wasm::Module;
using wasm::Opcode;
using wasm::Value;

// ---------------------------------------------------------------------
// Figure 4: "Structured control-flow in WebAssembly".
//
//   1 block <---------,
//   2   block         |
//   3     get_local 0 |
//   4     br_if 1 ---'   ;; block reference by label
//   5     ;; next instruction if local #0 == false
//   6   end
//   7 end                ;; matching end for first block
//   8 ;; next instruction if local #0 == true

TEST(PaperFigure4, BrIfLabelResolvesPastTheOuterEnd)
{
    Module m = wasm::parseWat(R"((module
        (func (export "f") (param i32) (result i32)
            block        ;; @0
                block    ;; @1
                    get_local 0   ;; @2
                    br_if 1       ;; @3
                    nop           ;; @4 ("if local #0 == false")
                end      ;; @5
            end          ;; @6
            i32.const 1  ;; @7 ("if local #0 == true")
        )))");
    ASSERT_EQ(validationError(m), std::nullopt);
    InstrumentResult r = instrument(m, HookSet::only(HookKind::BrIf));
    auto it = r.info->brTargets.find(core::packLoc({0, 3}));
    ASSERT_NE(it, r.info->brTargets.end());
    EXPECT_EQ(it->second.label, 1u);       // the "raw" relative label
    EXPECT_EQ(it->second.location.instr, 7u); // resolved: after end @6
}

// ---------------------------------------------------------------------
// Figure 6: abstract control stack at the br in Table 3 row 5,
// "assuming the example is preceded by four other instructions":
//
//   type      begin  end
//   loop        4     7
//   block       3     8
//   function   -1     n_instr

TEST(PaperFigure6, ControlStackHasFunctionBlockLoop)
{
    Module m = wasm::parseWat(R"((module
        (func (export "f")
            nop nop nop    ;; @0 @1 @2 (one replaced by block below)
            block          ;; @3
                loop       ;; @4
                    br 1   ;; @5
                end        ;; @6  (paper: 7; we have one fewer filler)
            end            ;; @7
        )))");
    // Instruction indices: nop@0,1,2 block@3 loop@4 br@5 end@6 end@7
    // function end @8.
    AbstractState state(m, 0);
    const auto &body = m.functions[0].body;
    for (uint32_t i = 0; i < 5; ++i)
        state.apply(body[i], i);
    // Now positioned at the br @5.
    const auto &frames = state.frames();
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames[0].kind, BlockKind::Function);
    EXPECT_EQ(frames[0].beginIdx, core::kFunctionEntry); // paper: -1
    EXPECT_EQ(frames[0].endIdx, 8u);                     // n_instr
    EXPECT_EQ(frames[1].kind, BlockKind::Block);
    EXPECT_EQ(frames[1].beginIdx, 3u);
    EXPECT_EQ(frames[1].endIdx, 7u);
    EXPECT_EQ(frames[2].kind, BlockKind::Loop);
    EXPECT_EQ(frames[2].beginIdx, 4u);
    EXPECT_EQ(frames[2].endIdx, 6u);
    // Branch traversal: the br 1 leaves loop then block (both incl.).
    auto traversed = state.traversedFrames(1);
    ASSERT_EQ(traversed.size(), 2u);
    EXPECT_EQ(traversed[0].kind, BlockKind::Loop);
    EXPECT_EQ(traversed[1].kind, BlockKind::Block);
}

// ---------------------------------------------------------------------
// Table 3 transformations, checked structurally on the instrumented
// body.

/** The instrumented body of the first defined function. */
const std::vector<wasm::Instr> &
instrumentedBody(const InstrumentResult &r)
{
    for (const wasm::Function &f : r.module.functions) {
        if (!f.imported())
            return f.body;
    }
    throw std::logic_error("no defined function");
}

TEST(PaperTable3Row1, ConstIsFollowedByLocAndDuplicateAndHookCall)
{
    Module m = wasm::parseWat(
        "(module (func (export \"f\") (result i32) i32.const 7))");
    InstrumentResult r = instrument(m, HookSet::only(HookKind::Const));
    const auto &body = instrumentedBody(r);
    // i32.const 7 ; i32.const <func> ; i32.const <instr> ;
    // i32.const 7 (duplicated value) ; call hook ; end
    ASSERT_GE(body.size(), 6u);
    EXPECT_EQ(body[0].op, Opcode::I32Const);
    EXPECT_EQ(body[0].imm.i32v, 7u);
    EXPECT_EQ(body[1].op, Opcode::I32Const); // loc.func
    EXPECT_EQ(body[2].op, Opcode::I32Const); // loc.instr
    EXPECT_EQ(body[3].op, Opcode::I32Const); // duplicated value
    EXPECT_EQ(body[3].imm.i32v, 7u);
    EXPECT_EQ(body[4].op, Opcode::Call);
    EXPECT_EQ(body[4].imm.idx, r.info->hookFuncIdx(0));
}

TEST(PaperTable3Row2, UnaryStoresInputAndResultInFreshLocals)
{
    Module m = wasm::parseWat(R"((module (func (export "f") (result f32)
        f32.const 2.0 f32.abs)))");
    InstrumentResult r = instrument(m, HookSet::only(HookKind::Unary));
    const auto &body = instrumentedBody(r);
    // const ; tee input-local ; f32.abs ; tee result-local ; loc ;
    // get input ; get result ; call hook ; end
    ASSERT_GE(body.size(), 9u);
    EXPECT_EQ(body[1].op, Opcode::LocalTee);
    EXPECT_EQ(body[2].op, Opcode::F32Abs);
    EXPECT_EQ(body[3].op, Opcode::LocalTee);
    EXPECT_EQ(body[6].op, Opcode::LocalGet);
    EXPECT_EQ(body[7].op, Opcode::LocalGet);
    EXPECT_EQ(body[8].op, Opcode::Call);
    // The two fresh locals were appended to the function.
    const wasm::Function &f = *std::find_if(
        r.module.functions.begin(), r.module.functions.end(),
        [](const wasm::Function &fn) { return !fn.imported(); });
    EXPECT_EQ(f.locals.size(), 2u);
}

TEST(PaperTable3Row3, CallIsSurroundedByPreAndPostHooks)
{
    Module m = wasm::parseWat(R"((module
        (func $callee (param i32) (result i32) get_local 0)
        (func (export "f") (result i32)
            i32.const 5 call $callee)))");
    InstrumentResult r = instrument(m, HookSet::only(HookKind::Call));
    // Two hooks: call_pre_i32 and call_post_i32.
    std::vector<std::string> names;
    for (const core::HookSpec &s : r.info->hooks)
        names.push_back(mangledName(s));
    std::sort(names.begin(), names.end());
    EXPECT_EQ(names,
              (std::vector<std::string>{"call_post_i32", "call_pre_i32"}));
    // In the caller: ... call hook_pre ... call callee ... call
    // hook_post, in that order.
    const wasm::Function &caller = r.module.functions.back();
    std::vector<uint32_t> call_targets;
    for (const wasm::Instr &i : caller.body) {
        if (i.op == Opcode::Call)
            call_targets.push_back(i.imm.idx);
    }
    ASSERT_EQ(call_targets.size(), 3u);
    uint32_t callee_idx = 2; // after 2 hook imports
    EXPECT_NE(call_targets[0], callee_idx); // pre hook
    EXPECT_EQ(call_targets[1], callee_idx); // original call (remapped)
    EXPECT_NE(call_targets[2], callee_idx); // post hook
}

TEST(PaperTable3Row4, DropHookConsumesValueInPlaceOfDrop)
{
    Module m = wasm::parseWat(R"((module (func (export "f")
        i32.const 1 drop)))");
    InstrumentResult r = instrument(m, HookSet::only(HookKind::Drop));
    const auto &body = instrumentedBody(r);
    // The drop instruction itself is gone; the hook call consumed the
    // value (via a local, since the location args go underneath).
    for (const wasm::Instr &i : body)
        EXPECT_NE(i.op, Opcode::Drop);
    EXPECT_EQ(mangledName(r.info->hooks.at(0)), "drop_i32");
}

TEST(PaperTable3Row5, BranchHookThenEndHooksThenBranch)
{
    Module m = wasm::parseWat(R"((module (func (export "f")
        block block br 1 end end)))");
    InstrumentResult r =
        instrument(m, HookSet{HookKind::Br, HookKind::End});
    const auto &body = instrumentedBody(r);
    // Find the br instruction; before it there must be 3 calls (the
    // br hook, then end hooks for the two traversed blocks), in the
    // order: br hook first (paper Table 3 row 5).
    size_t br_pos = 0;
    for (size_t i = 0; i < body.size(); ++i) {
        if (body[i].op == Opcode::Br)
            br_pos = i;
    }
    ASSERT_GT(br_pos, 0u);
    std::vector<uint32_t> calls_before;
    for (size_t i = 0; i < br_pos; ++i) {
        if (body[i].op == Opcode::Call)
            calls_before.push_back(body[i].imm.idx);
    }
    ASSERT_EQ(calls_before.size(), 3u);
    // Map hook function indices back to their mangled names.
    auto hook_name = [&](uint32_t func_idx) {
        return mangledName(
            r.info->hooks.at(func_idx - r.info->numOrigImports));
    };
    EXPECT_EQ(hook_name(calls_before[0]), "br");
    EXPECT_EQ(hook_name(calls_before[1]), "end_block");
    EXPECT_EQ(hook_name(calls_before[2]), "end_block");
}

TEST(PaperTable3Row6, I64ConstIsSplitIntoTwoI32Halves)
{
    Module m = wasm::parseWat(R"((module (func (export "f")
        i64.const 0x1122334455667788 drop)))");
    InstrumentResult r = instrument(m, HookSet::only(HookKind::Const));
    const auto &body = instrumentedBody(r);
    // i64.const ; loc x2 ; i32.const low ; i32.const high ; call ; ...
    ASSERT_GE(body.size(), 6u);
    EXPECT_EQ(body[0].op, Opcode::I64Const);
    EXPECT_EQ(body[3].op, Opcode::I32Const);
    EXPECT_EQ(body[3].imm.i32v, 0x55667788u); // low half
    EXPECT_EQ(body[4].op, Opcode::I32Const);
    EXPECT_EQ(body[4].imm.i32v, 0x11223344u); // high half
    EXPECT_EQ(body[5].op, Opcode::Call);
}

// ---------------------------------------------------------------------
// Figure 1: cryptominer detection (see also
// examples/cryptominer_detection.cpp). The signature counts exactly
// the operations the paper's listing switches on.

TEST(PaperFigure1, SignatureCountsTheListedBinaryOps)
{
    Module m = wasm::parseWat(R"((module (func (export "f") (result i32)
        i32.const 1 i32.const 2 i32.add     ;; counted
        i32.const 3 i32.and                 ;; counted
        i32.const 1 i32.shl                 ;; counted
        i32.const 1 i32.shr_u               ;; counted
        i32.const 5 i32.xor                 ;; counted
        i32.const 7 i32.mul                 ;; NOT in the signature
    )))");
    analyses::CryptominerDetector det;
    InstrumentResult r =
        instrument(m, WasabiRuntime::requiredHooks({&det}));
    WasabiRuntime rt(r.info);
    rt.addAnalysis(&det);
    auto inst = rt.instantiate(r.module);
    Interpreter interp;
    interp.invokeExport(*inst, "f", {});
    EXPECT_EQ(det.totalBinaryOps(), 6u);
    EXPECT_EQ(det.signature().size(), 5u);
    EXPECT_EQ(det.signature().count("i32.mul"), 0u);
}

// ---------------------------------------------------------------------
// Figure 7: branch coverage via the if/br_if/br_table/select hooks.

TEST(PaperFigure7, BranchCoverageTracksAllFourHookKinds)
{
    Module m = wasm::parseWat(R"((module
        (func (export "f") (param i32)
            ;; if @1
            (if (local.get 0) (then nop))
            ;; br_if inside a block
            block
                local.get 0
                br_if 0
            end
            ;; br_table
            block block
                local.get 0
                br_table 0 1
            end end
            ;; select
            i32.const 1 i32.const 2 local.get 0 select drop
        )))");
    analyses::BranchCoverage cov;
    InstrumentResult r =
        instrument(m, WasabiRuntime::requiredHooks({&cov}));
    WasabiRuntime rt(r.info);
    rt.addAnalysis(&cov);
    auto inst = rt.instantiate(r.module);
    Interpreter interp;
    std::vector<Value> zero{Value::makeI32(0)};
    std::vector<Value> one{Value::makeI32(1)};
    interp.invokeExport(*inst, "f", zero);
    EXPECT_EQ(cov.sites(), 4u);
    interp.invokeExport(*inst, "f", one);
    // All four sites now saw both decisions (br_table: indices 0/1).
    EXPECT_EQ(cov.partiallyCoveredTwoWaySites(), 0u);
}

} // namespace
} // namespace wasabi
