/**
 * @file
 * Encoder/decoder tests: known byte sequences and structural
 * encode -> decode roundtrips for representative modules.
 */

#include <gtest/gtest.h>

#include "wasm/builder.h"
#include "wasm/decoder.h"
#include "wasm/encoder.h"
#include "wasm/leb128.h"
#include "wasm/validator.h"
#include "workloads/polybench.h"
#include "workloads/random_program.h"
#include "workloads/synthetic_app.h"

namespace wasabi::wasm {
namespace {

/** Structural equality of two modules, element by element. */
void
expectModulesEqual(const Module &a, const Module &b)
{
    ASSERT_EQ(a.types.size(), b.types.size());
    for (size_t i = 0; i < a.types.size(); ++i)
        EXPECT_EQ(a.types[i], b.types[i]);
    ASSERT_EQ(a.functions.size(), b.functions.size());
    for (size_t i = 0; i < a.functions.size(); ++i) {
        const Function &fa = a.functions[i];
        const Function &fb = b.functions[i];
        EXPECT_EQ(fa.typeIdx, fb.typeIdx);
        EXPECT_EQ(fa.import, fb.import);
        EXPECT_EQ(fa.locals, fb.locals);
        EXPECT_EQ(fa.exportNames, fb.exportNames);
        ASSERT_EQ(fa.body.size(), fb.body.size()) << "function " << i;
        for (size_t j = 0; j < fa.body.size(); ++j) {
            EXPECT_TRUE(sameImm(fa.body[j], fb.body[j]))
                << "function " << i << " instr " << j;
        }
    }
    ASSERT_EQ(a.globals.size(), b.globals.size());
    ASSERT_EQ(a.tables.size(), b.tables.size());
    ASSERT_EQ(a.memories.size(), b.memories.size());
    for (size_t i = 0; i < a.memories.size(); ++i)
        EXPECT_EQ(a.memories[i].limits, b.memories[i].limits);
    ASSERT_EQ(a.elements.size(), b.elements.size());
    for (size_t i = 0; i < a.elements.size(); ++i)
        EXPECT_EQ(a.elements[i].funcIdxs, b.elements[i].funcIdxs);
    ASSERT_EQ(a.data.size(), b.data.size());
    for (size_t i = 0; i < a.data.size(); ++i)
        EXPECT_EQ(a.data[i].bytes, b.data[i].bytes);
    EXPECT_EQ(a.start, b.start);
}

void
expectRoundtrips(const Module &m)
{
    std::vector<uint8_t> bytes = encodeModule(m);
    Module decoded = decodeModule(bytes);
    expectModulesEqual(m, decoded);
    // Re-encoding the decoded module must be byte-identical (our
    // encoder is deterministic and uses canonical LEB128).
    EXPECT_EQ(encodeModule(decoded), bytes);
}

TEST(Roundtrip, EmptyModule)
{
    Module m;
    std::vector<uint8_t> bytes = encodeModule(m);
    // Just magic + version.
    EXPECT_EQ(bytes, (std::vector<uint8_t>{0x00, 0x61, 0x73, 0x6D, 0x01,
                                           0x00, 0x00, 0x00}));
    expectRoundtrips(m);
}

TEST(Roundtrip, MinimalFunction)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::I32}), "f",
                   [](FunctionBuilder &f) { f.i32Const(42); });
    expectRoundtrips(mb.build());
}

TEST(Roundtrip, KnownBinaryBytes)
{
    // (module (func (export "f") (result i32) i32.const 42))
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::I32}), "f",
                   [](FunctionBuilder &f) { f.i32Const(42); });
    std::vector<uint8_t> expected{
        0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00,
        // type section: 1 type, () -> (i32)
        0x01, 0x05, 0x01, 0x60, 0x00, 0x01, 0x7F,
        // function section
        0x03, 0x02, 0x01, 0x00,
        // export section: "f" func 0
        0x07, 0x05, 0x01, 0x01, 'f', 0x00, 0x00,
        // code section: 1 body, no locals, i32.const 42, end
        0x0A, 0x06, 0x01, 0x04, 0x00, 0x41, 0x2A, 0x0B,
    };
    EXPECT_EQ(encodeModule(mb.build()), expected);
}

TEST(Roundtrip, AllImmediateKinds)
{
    ModuleBuilder mb;
    mb.memory(1);
    mb.table(4, 8);
    uint32_t imp =
        mb.importFunction("env", "host", FuncType({ValType::I32}, {}));
    mb.global(ValType::I64, true, Value::makeI64(-7));
    FuncType t({ValType::I32}, {ValType::I32});
    uint32_t callee = mb.addFunction(t, "", [](FunctionBuilder &f) {
        f.localGet(0);
    });
    FunctionBuilder fb = mb.startFunction(t, "main");
    uint32_t tmp = fb.addLocal(ValType::F64);
    fb.block(ValType::I32);
    fb.i32Const(-123456);
    fb.end();
    fb.drop();
    fb.i64Const(0x123456789ALL);
    fb.globalSet(0);
    fb.f32Const(1.5f);
    fb.drop();
    fb.f64Const(-2.25);
    fb.localSet(tmp);
    fb.loop();
    fb.i32Const(0);
    fb.brIf(0);
    fb.end();
    fb.i32Const(10);
    fb.call(imp);
    fb.i32Const(3);
    fb.i32Load(4);
    fb.i32Const(8);
    fb.i32Store(0);
    fb.op(Opcode::MemorySize);
    fb.op(Opcode::MemoryGrow);
    fb.drop();
    fb.i32Const(5);
    fb.i32Const(0);
    fb.callIndirect(mb.type(t));
    fb.block();
    fb.block();
    fb.i32Const(1);
    fb.brTable({0, 1}, 0);
    fb.end();
    fb.end();
    fb.finish();
    mb.elem(0, {callee, callee});
    mb.data(0, {0xDE, 0xAD});
    Module m = mb.build();
    ASSERT_EQ(validationError(m), std::nullopt);
    expectRoundtrips(m);
}

TEST(Roundtrip, NanFloatBitsPreserved)
{
    ModuleBuilder mb;
    // A NaN with a nonstandard payload must survive roundtripping.
    float nan_f = std::bit_cast<float>(0x7FC00123u);
    double nan_d = std::bit_cast<double>(0x7FF8000000000456ull);
    mb.addFunction(FuncType({}, {ValType::F64}), "f",
                   [&](FunctionBuilder &f) {
                       f.f32Const(nan_f);
                       f.drop();
                       f.f64Const(nan_d);
                   });
    Module m = mb.build();
    std::vector<uint8_t> bytes = encodeModule(m);
    Module d = decodeModule(bytes);
    EXPECT_EQ(std::bit_cast<uint32_t>(d.functions[0].body[0].imm.f32v),
              0x7FC00123u);
    EXPECT_EQ(std::bit_cast<uint64_t>(d.functions[0].body[2].imm.f64v),
              0x7FF8000000000456ull);
}

TEST(Roundtrip, ImportsOfAllKinds)
{
    Module m;
    Function f;
    f.typeIdx = 0;
    f.import = ImportRef{"a", "f"};
    m.types.push_back(FuncType({}, {}));
    m.functions.push_back(f);
    Table t;
    t.import = ImportRef{"a", "t"};
    t.limits = {1, 2};
    m.tables.push_back(t);
    Memory mem;
    mem.import = ImportRef{"a", "m"};
    mem.limits = {1, std::nullopt};
    m.memories.push_back(mem);
    Global g;
    g.import = ImportRef{"a", "g"};
    g.type = ValType::F32;
    g.mut = false;
    m.globals.push_back(g);
    expectRoundtrips(m);
}

TEST(Roundtrip, CustomSectionsPreserved)
{
    Module m;
    m.customs.push_back({"name", {1, 2, 3}});
    std::vector<uint8_t> bytes = encodeModule(m);
    Module d = decodeModule(bytes);
    ASSERT_EQ(d.customs.size(), 1u);
    EXPECT_EQ(d.customs[0].name, "name");
    EXPECT_EQ(d.customs[0].bytes, (std::vector<uint8_t>{1, 2, 3}));
}

TEST(Roundtrip, StartSection)
{
    ModuleBuilder mb;
    uint32_t f = mb.addFunction(FuncType({}, {}), "",
                                [](FunctionBuilder &) {});
    mb.start(f);
    expectRoundtrips(mb.build());
}

// ---------------------------------------------------------------------
// Corpus byte-identity audit: decode -> encode with zero edits must be
// byte-identical for every module the toolkit itself can produce. Any
// LEB128 or section-size drift here would silently defeat the
// rewriter's zero-edit guarantee and the opt checker's byte compare.

void
expectByteIdentity(const Module &m, const std::string &what)
{
    std::vector<uint8_t> bytes = encodeModule(m);
    EXPECT_EQ(encodeModule(decodeModule(bytes)), bytes) << what;
}

class RoundtripPolybench : public ::testing::TestWithParam<std::string> {
};

TEST_P(RoundtripPolybench, ByteIdentity)
{
    expectByteIdentity(workloads::polybench(GetParam(), 6).module,
                       GetParam());
}

INSTANTIATE_TEST_SUITE_P(Kernels, RoundtripPolybench,
                         ::testing::ValuesIn(workloads::polybenchNames()));

TEST(RoundtripCorpus, SyntheticApps)
{
    for (workloads::AppSize size :
         {workloads::AppSize::Small, workloads::AppSize::PdfkitLike}) {
        expectByteIdentity(workloads::syntheticApp(size).module,
                           "synthetic app");
    }
}

TEST(RoundtripCorpus, RandomPrograms)
{
    for (uint64_t seed = 1; seed <= 24; ++seed) {
        workloads::RandomProgramOptions opts;
        opts.seed = seed;
        opts.indirectCallPct = 20;
        opts.constIndexIndirectPct = 40;
        expectByteIdentity(workloads::randomProgram(opts).module,
                           "random program seed " + std::to_string(seed));
    }
}

TEST(Decode, RejectsBadMagic)
{
    std::vector<uint8_t> bytes{0x00, 0x61, 0x73, 0x6E, 0x01, 0, 0, 0};
    EXPECT_THROW(decodeModule(bytes), DecodeError);
}

TEST(Decode, RejectsBadVersion)
{
    std::vector<uint8_t> bytes{0x00, 0x61, 0x73, 0x6D, 0x02, 0, 0, 0};
    EXPECT_THROW(decodeModule(bytes), DecodeError);
}

TEST(Decode, RejectsTruncatedSection)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "f", [](FunctionBuilder &) {});
    std::vector<uint8_t> bytes = encodeModule(mb.build());
    bytes.resize(bytes.size() - 2);
    EXPECT_THROW(decodeModule(bytes), DecodeError);
}

TEST(Decode, RejectsOutOfOrderSections)
{
    // code section (10) before type section (1)
    std::vector<uint8_t> bytes{0x00, 0x61, 0x73, 0x6D, 0x01, 0, 0, 0,
                               0x0A, 0x01, 0x00, 0x01, 0x01, 0x00};
    EXPECT_THROW(decodeModule(bytes), DecodeError);
}

TEST(Decode, RejectsInvalidOpcode)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "f", [](FunctionBuilder &f) {
        f.nop();
    });
    std::vector<uint8_t> bytes = encodeModule(mb.build());
    // Patch the nop (0x01) in the code body to an invalid byte 0x1C.
    bool patched = false;
    for (size_t i = bytes.size() - 4; i < bytes.size(); ++i) {
        if (bytes[i] == 0x01 && bytes[i + 1] == 0x0B) {
            bytes[i] = 0x1C;
            patched = true;
            break;
        }
    }
    ASSERT_TRUE(patched);
    EXPECT_THROW(decodeModule(bytes), DecodeError);
}

} // namespace
} // namespace wasabi::wasm
