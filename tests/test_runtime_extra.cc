/**
 * @file
 * Runtime tests for less-traveled hook paths: the start hook, i64
 * globals through the split ABI, memory.size/grow dynamics, nop and
 * unreachable hooks, and hook behavior across traps.
 */

#include <gtest/gtest.h>

#include "core/instrument.h"
#include "interp/interpreter.h"
#include "runtime/runtime.h"
#include "wasm/builder.h"
#include "wasm/validator.h"
#include "wasm/wat_parser.h"

namespace wasabi::runtime {
namespace {

using core::HookKind;
using core::HookSet;
using core::instrument;
using core::InstrumentResult;
using interp::Interpreter;
using interp::Trap;
using wasm::Module;
using wasm::Value;

/** Analysis recording a flat list of event strings. */
class Recorder final : public Analysis {
  public:
    explicit Recorder(HookSet set) : set_(set) {}
    HookSet hooks() const override { return set_; }

    std::vector<std::string> events;

    void
    onStart(Location loc) override
    {
        events.push_back("start f" + std::to_string(loc.func));
    }
    void onNop(Location) override { events.push_back("nop"); }
    void
    onUnreachable(Location) override
    {
        events.push_back("unreachable");
    }
    void
    onGlobal(Location, wasm::Opcode op, uint32_t idx,
             wasm::Value v) override
    {
        events.push_back(std::string(wasm::name(op)) + " g" +
                         std::to_string(idx) + "=" + toString(v));
    }
    void
    onMemorySize(Location, uint32_t pages) override
    {
        events.push_back("memory.size=" + std::to_string(pages));
    }
    void
    onMemoryGrow(Location, uint32_t delta, uint32_t prev) override
    {
        events.push_back("memory.grow delta=" + std::to_string(delta) +
                         " prev=" + std::to_string(prev));
    }

  private:
    HookSet set_;
};

std::unique_ptr<interp::Instance>
runWith(const Module &m, Analysis &a, WasabiRuntime &rt,
        const char *entry = nullptr)
{
    InstrumentResult r = instrument(m, a.hooks());
    EXPECT_EQ(validationError(r.module), std::nullopt);
    rt = WasabiRuntime(r.info);
    rt.addAnalysis(&a);
    auto inst = rt.instantiate(r.module);
    if (entry != nullptr) {
        Interpreter interp;
        interp.invokeExport(*inst, entry, {});
    }
    return inst;
}

TEST(RuntimeExtra, StartHookFiresDuringInstantiation)
{
    Module m = wasm::parseWat(R"((module
        (global $g (mut i32) (i32.const 0))
        (func $boot i32.const 7 global.set $g)
        (start $boot)))");
    Recorder rec(HookSet{HookKind::Start});
    WasabiRuntime rt(nullptr);
    auto inst = runWith(m, rec, rt);
    ASSERT_EQ(rec.events.size(), 1u);
    EXPECT_EQ(rec.events[0], "start f0");
    EXPECT_EQ(inst->globalGet(0).i32(), 7u);
}

TEST(RuntimeExtra, I64GlobalValueCrossesTheSplitAbi)
{
    Module m = wasm::parseWat(R"((module
        (global $g (mut i64) (i64.const 0))
        (func (export "f")
            i64.const 0x0123456789ABCDEF
            global.set $g
            global.get $g
            drop)))");
    Recorder rec(HookSet{HookKind::Global});
    WasabiRuntime rt(nullptr);
    runWith(m, rec, rt, "f");
    ASSERT_EQ(rec.events.size(), 2u);
    EXPECT_EQ(rec.events[0], "global.set g0=i64:81985529216486895");
    EXPECT_EQ(rec.events[1], "global.get g0=i64:81985529216486895");
}

TEST(RuntimeExtra, MemorySizeAndGrowDynamics)
{
    Module m = wasm::parseWat(R"((module
        (memory 1 4)
        (func (export "f")
            memory.size drop
            i32.const 2 memory.grow drop
            memory.size drop
            i32.const 99 memory.grow drop)))"); // fails -> prev = -1
    Recorder rec(HookSet{HookKind::MemorySize, HookKind::MemoryGrow});
    WasabiRuntime rt(nullptr);
    runWith(m, rec, rt, "f");
    ASSERT_EQ(rec.events.size(), 4u);
    EXPECT_EQ(rec.events[0], "memory.size=1");
    EXPECT_EQ(rec.events[1], "memory.grow delta=2 prev=1");
    EXPECT_EQ(rec.events[2], "memory.size=3");
    EXPECT_EQ(rec.events[3],
              "memory.grow delta=99 prev=4294967295"); // -1: failed
}

TEST(RuntimeExtra, NopAndUnreachableHooks)
{
    Module m = wasm::parseWat(R"((module
        (func (export "f") nop nop unreachable)))");
    Recorder rec(HookSet{HookKind::Nop, HookKind::Unreachable});
    InstrumentResult r = instrument(m, rec.hooks());
    WasabiRuntime rt(r.info);
    rt.addAnalysis(&rec);
    auto inst = rt.instantiate(r.module);
    Interpreter interp;
    EXPECT_THROW(interp.invokeExport(*inst, "f", {}), Trap);
    // The unreachable hook fires *before* the trap (paper Table 2
    // includes it exactly so analyses can observe the abort).
    ASSERT_EQ(rec.events.size(), 3u);
    EXPECT_EQ(rec.events[0], "nop");
    EXPECT_EQ(rec.events[1], "nop");
    EXPECT_EQ(rec.events[2], "unreachable");
}

TEST(RuntimeExtra, HooksBeforeTrappingInstructionStillFire)
{
    Module m = wasm::parseWat(R"((module
        (memory 1)
        (func (export "f") (result i32)
            i32.const 999999999 ;; way out of bounds
            i32.load)))");
    class Counter final : public Analysis {
      public:
        HookSet
        hooks() const override
        {
            return HookSet{HookKind::Load, HookKind::Const};
        }
        int loads = 0;
        int consts = 0;
        void
        onLoad(Location, wasm::Opcode, MemArg, wasm::Value) override
        {
            ++loads;
        }
        void
        onConst(Location, wasm::Opcode, wasm::Value) override
        {
            ++consts;
        }
    } counter;
    InstrumentResult r = instrument(m, counter.hooks());
    WasabiRuntime rt(r.info);
    rt.addAnalysis(&counter);
    auto inst = rt.instantiate(r.module);
    Interpreter interp;
    EXPECT_THROW(interp.invokeExport(*inst, "f", {}), Trap);
    // The const before the load was observed; the load hook was not
    // reached (it sits after the instruction, which trapped).
    EXPECT_EQ(counter.consts, 1);
    EXPECT_EQ(counter.loads, 0);
}

// --- hook-dispatch hardening ----------------------------------------
// Regression: a module whose hook import is mis-typed (fewer params
// than the runtime dispatches with) used to make dispatch() read past
// the caller's argument span. It must now fail loudly instead.

/** Instrument a one-const module so the StaticInfo carries exactly
 * the i32.const hook spec. */
InstrumentResult
constHookInfo()
{
    wasm::ModuleBuilder mb;
    mb.addFunction(wasm::FuncType({}, {wasm::ValType::I32}), "main",
                   [](wasm::FunctionBuilder &f) { f.i32Const(7); });
    return instrument(mb.build(), HookSet::only(HookKind::Const));
}

TEST(DispatchHardening, MistypedHookImportFailsAtLinkTime)
{
    InstrumentResult r = constHookInfo();
    // Tamper: retype the i32.const hook import to (i32) -> () — one
    // param instead of (func, instr, value).
    Module tampered = r.module;
    for (wasm::Function &f : tampered.functions) {
        if (f.imported() && f.import->module == "wasabi")
            f.typeIdx = tampered.addType(
                wasm::FuncType({wasm::ValType::I32}, {}));
    }
    Recorder rec(HookSet::only(HookKind::Const));
    WasabiRuntime rt(r.info);
    rt.addAnalysis(&rec);
    EXPECT_THROW(rt.instantiate(tampered), interp::LinkError);
    try {
        rt.instantiate(tampered);
        FAIL() << "expected LinkError";
    } catch (const interp::LinkError &e) {
        EXPECT_NE(std::string(e.what()).find("i32.const"),
                  std::string::npos);
    }
}

TEST(DispatchHardening, UnknownHookImportFailsAtLinkTime)
{
    InstrumentResult r = constHookInfo();
    Module tampered = r.module;
    for (wasm::Function &f : tampered.functions) {
        if (f.imported() && f.import->module == "wasabi")
            f.import->name = "no.such.hook";
    }
    Recorder rec(HookSet::only(HookKind::Const));
    WasabiRuntime rt(r.info);
    rt.addAnalysis(&rec);
    EXPECT_THROW(rt.instantiate(tampered), interp::LinkError);
}

TEST(DispatchHardening, ShortArgumentSpanTrapsInsteadOfOOBRead)
{
    // Bypass the link-time check by binding the hooks into a plain
    // Linker and instantiating a handcrafted module that imports the
    // i32.const hook with only ONE parameter and calls it: the raw
    // argument span at dispatch is shorter than (func, instr, value).
    InstrumentResult r = constHookInfo();
    wasm::ModuleBuilder mb;
    mb.importFunction("wasabi", "i32.const",
                      wasm::FuncType({wasm::ValType::I32}, {}));
    mb.addFunction(wasm::FuncType({}, {}), "main",
                   [](wasm::FunctionBuilder &f) {
                       f.i32Const(7);
                       f.call(0);
                   });
    Module caller = mb.build();
    ASSERT_EQ(validationError(caller), std::nullopt);

    Recorder rec(HookSet::only(HookKind::Const));
    WasabiRuntime rt(r.info);
    rt.addAnalysis(&rec);
    interp::Linker linker;
    rt.bindHooks(linker);
    auto inst = interp::Instance::instantiate(caller, linker);
    Interpreter interp;
    try {
        interp.invokeExport(*inst, "main", {});
        FAIL() << "expected a trap";
    } catch (const Trap &t) {
        EXPECT_EQ(t.kind(), interp::TrapKind::HostError);
        EXPECT_NE(std::string(t.what()).find("arity"),
                  std::string::npos);
    }
    EXPECT_TRUE(rec.events.empty());
    EXPECT_EQ(rt.hookInvocations(), 0u);
}

TEST(DispatchHardening, OversizedArgumentSpanTrapsToo)
{
    InstrumentResult r = constHookInfo();
    wasm::ModuleBuilder mb;
    mb.importFunction("wasabi", "i32.const",
                      wasm::FuncType({wasm::ValType::I32,
                                      wasm::ValType::I32,
                                      wasm::ValType::I32,
                                      wasm::ValType::I32},
                                     {}));
    mb.addFunction(wasm::FuncType({}, {}), "main",
                   [](wasm::FunctionBuilder &f) {
                       f.i32Const(0).i32Const(0).i32Const(7).i32Const(9);
                       f.call(0);
                   });
    Module caller = mb.build();
    ASSERT_EQ(validationError(caller), std::nullopt);

    Recorder rec(HookSet::only(HookKind::Const));
    WasabiRuntime rt(r.info);
    rt.addAnalysis(&rec);
    interp::Linker linker;
    rt.bindHooks(linker);
    auto inst = interp::Instance::instantiate(caller, linker);
    Interpreter interp;
    EXPECT_THROW(interp.invokeExport(*inst, "main", {}), Trap);
    EXPECT_EQ(rt.hookInvocations(), 0u);
}

} // namespace
} // namespace wasabi::runtime
