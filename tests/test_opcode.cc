/**
 * @file
 * Tests for the opcode metadata table: coverage, classification and
 * type signatures.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "wasm/opcode.h"

namespace wasabi::wasm {
namespace {

TEST(OpcodeTable, CoversFullMVPInstructionSet)
{
    // MVP: 11 control + call/call_indirect + 2 parametric + 5 variable
    // + 23 memory + memory.size/grow + 4 const + 123 numeric = 172.
    EXPECT_EQ(allOpcodes().size(), 172u);
}

TEST(OpcodeTable, NamesAreUniqueAndNonEmpty)
{
    std::set<std::string> names;
    for (Opcode op : allOpcodes()) {
        std::string n = name(op);
        EXPECT_FALSE(n.empty());
        EXPECT_TRUE(names.insert(n).second) << "duplicate name " << n;
    }
}

TEST(OpcodeTable, GapsAreInvalid)
{
    EXPECT_FALSE(opInfoByte(0x06).valid());
    EXPECT_FALSE(opInfoByte(0x12).valid());
    EXPECT_FALSE(opInfoByte(0x1C).valid());
    EXPECT_FALSE(opInfoByte(0x25).valid());
    EXPECT_FALSE(opInfoByte(0xC0).valid());
    EXPECT_FALSE(opInfoByte(0xFF).valid());
}

TEST(OpcodeTable, NumericOpcodeCount)
{
    // The paper notes "there are 123 numeric instructions alone".
    int numeric = 0;
    for (Opcode op : allOpcodes()) {
        OpClass c = opInfo(op).cls;
        if (c == OpClass::Unary || c == OpClass::Binary)
            ++numeric;
    }
    EXPECT_EQ(numeric, 123);
}

TEST(OpcodeTable, BinaryOpsHaveTwoInputsOneOutput)
{
    for (Opcode op : allOpcodes()) {
        const OpInfo &info = opInfo(op);
        if (info.cls == OpClass::Binary) {
            EXPECT_EQ(info.numIn, 2) << info.name;
            EXPECT_EQ(info.numOut, 1) << info.name;
            EXPECT_EQ(info.in[0], info.in[1]) << info.name;
        } else if (info.cls == OpClass::Unary) {
            EXPECT_EQ(info.numIn, 1) << info.name;
            EXPECT_EQ(info.numOut, 1) << info.name;
        }
    }
}

TEST(OpcodeTable, ComparisonOpsProduceI32)
{
    EXPECT_EQ(opInfo(Opcode::F64Lt).out, ValType::I32);
    EXPECT_EQ(opInfo(Opcode::I64Eq).out, ValType::I32);
    EXPECT_EQ(opInfo(Opcode::I64Eqz).out, ValType::I32);
    EXPECT_EQ(opInfo(Opcode::I64Eqz).in[0], ValType::I64);
}

TEST(OpcodeTable, ConversionSignatures)
{
    EXPECT_EQ(opInfo(Opcode::I32WrapI64).in[0], ValType::I64);
    EXPECT_EQ(opInfo(Opcode::I32WrapI64).out, ValType::I32);
    EXPECT_EQ(opInfo(Opcode::F64PromoteF32).in[0], ValType::F32);
    EXPECT_EQ(opInfo(Opcode::F64PromoteF32).out, ValType::F64);
    EXPECT_EQ(opInfo(Opcode::I64ReinterpretF64).in[0], ValType::F64);
    EXPECT_EQ(opInfo(Opcode::I64ReinterpretF64).out, ValType::I64);
}

TEST(OpcodeTable, LoadsAndStoresCarryMemImmediates)
{
    for (Opcode op : allOpcodes()) {
        const OpInfo &info = opInfo(op);
        if (info.cls == OpClass::Load || info.cls == OpClass::Store) {
            EXPECT_EQ(info.imm, ImmKind::Mem) << info.name;
        }
    }
    EXPECT_EQ(opInfo(Opcode::I64Load32U).out, ValType::I64);
    EXPECT_EQ(opInfo(Opcode::F32Store).in[1], ValType::F32);
}

TEST(OpcodeTable, WellKnownEncodings)
{
    EXPECT_EQ(static_cast<uint8_t>(Opcode::Unreachable), 0x00);
    EXPECT_EQ(static_cast<uint8_t>(Opcode::End), 0x0B);
    EXPECT_EQ(static_cast<uint8_t>(Opcode::I32Const), 0x41);
    EXPECT_EQ(static_cast<uint8_t>(Opcode::I32Add), 0x6A);
    EXPECT_EQ(static_cast<uint8_t>(Opcode::F64ReinterpretI64), 0xBF);
    EXPECT_STREQ(name(Opcode::I32ShrU), "i32.shr_u");
    EXPECT_STREQ(name(Opcode::F32ConvertI64U), "f32.convert_i64_u");
}

TEST(OpcodeTable, ClassificationHelpers)
{
    EXPECT_TRUE(isBlockStart(Opcode::If));
    EXPECT_FALSE(isBlockStart(Opcode::Else));
    EXPECT_TRUE(isBranch(Opcode::BrTable));
    EXPECT_FALSE(isBranch(Opcode::Return));
    EXPECT_TRUE(isNumeric(Opcode::F64Const));
    EXPECT_FALSE(isNumeric(Opcode::Drop));
}

} // namespace
} // namespace wasabi::wasm
