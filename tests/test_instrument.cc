/**
 * @file
 * Instrumenter tests: hook-import generation, index remapping,
 * validity of instrumented modules, faithful execution under no-op
 * hooks, and the values delivered to low-level hooks (including the
 * i64 split ABI and drop/select monomorphization).
 */

#include <gtest/gtest.h>

#include "core/instrument.h"
#include "interp/interpreter.h"
#include "wasm/builder.h"
#include "wasm/validator.h"

namespace wasabi::core {
namespace {

using interp::Instance;
using interp::Interpreter;
using interp::Linker;
using wasm::FuncType;
using wasm::FunctionBuilder;
using wasm::ModuleBuilder;
using wasm::Opcode;
using wasm::Value;
using wasm::ValType;

/** Linker that binds every hook import to a no-op host function. */
Linker
noopLinker(const StaticInfo &info)
{
    Linker linker;
    for (const HookSpec &spec : info.hooks) {
        linker.func(info.importModule, mangledName(spec),
                    [](Instance &, std::span<const Value>,
                       std::vector<Value> &) {});
    }
    return linker;
}

/** Record of one low-level hook invocation. */
struct HookCall {
    std::string name;
    std::vector<Value> args; // including the two location args
};

/** Linker that records every hook invocation. */
Linker
recordingLinker(const StaticInfo &info, std::vector<HookCall> &calls)
{
    Linker linker;
    for (const HookSpec &spec : info.hooks) {
        std::string name = mangledName(spec);
        linker.func(info.importModule, name,
                    [&calls, name](Instance &, std::span<const Value> args,
                                   std::vector<Value> &) {
                        calls.push_back(
                            {name, {args.begin(), args.end()}});
                    });
    }
    return linker;
}

/** A small module exercising many instruction classes. */
wasm::Module
sampleModule()
{
    ModuleBuilder mb;
    mb.memory(1);
    mb.table(2, 2);
    mb.global(ValType::I64, true, Value::makeI64(3));
    FuncType helper_t({ValType::I32}, {ValType::I32});
    uint32_t helper =
        mb.addFunction(helper_t, "", [](FunctionBuilder &f) {
            f.localGet(0).i32Const(1).op(Opcode::I32Add);
        });
    mb.elem(0, {helper, helper});
    FunctionBuilder fb =
        mb.startFunction(FuncType({ValType::I32}, {ValType::I32}), "main");
    uint32_t acc = fb.addLocal(ValType::I32);
    uint32_t i = fb.addLocal(ValType::I32);
    // Store the argument, load it back.
    fb.i32Const(8).localGet(0).i32Store();
    fb.i32Const(8).i32Load().localSet(acc);
    // Loop: acc = helper(acc) repeated 3 times (direct call).
    fb.forLoop(i, 0, 3, [&]() {
        fb.localGet(acc).call(helper).localSet(acc);
    });
    // Indirect call through the table.
    fb.localGet(acc).i32Const(1).callIndirect(mb.type(helper_t));
    fb.localSet(acc);
    // Global traffic with i64.
    fb.globalGet(0).i64Const(5).op(Opcode::I64Add).globalSet(0);
    // Some numeric/parametric mix.
    fb.f64Const(2.0).f64Const(3.0).op(Opcode::F64Mul).drop();
    fb.i32Const(10).i32Const(20).localGet(acc).i32Const(2);
    fb.op(Opcode::I32GeS).select().drop();
    // if/else on the accumulator.
    fb.localGet(acc).i32Const(100).op(Opcode::I32LtS);
    fb.if_(ValType::I32);
    fb.localGet(acc);
    fb.else_();
    fb.i32Const(-1);
    fb.end();
    fb.finish();
    return mb.build();
}

TEST(Instrument, EmptyHookSetLeavesBehaviorAndAddsNoImports)
{
    wasm::Module m = sampleModule();
    InstrumentResult r = instrument(m, HookSet::none());
    EXPECT_EQ(r.info->hooks.size(), 0u);
    EXPECT_EQ(r.module.numImportedFunctions(), 0u);
    EXPECT_EQ(validationError(r.module), std::nullopt);
}

TEST(Instrument, FullInstrumentationValidates)
{
    wasm::Module m = sampleModule();
    InstrumentResult r = instrument(m, HookSet::all());
    ASSERT_EQ(validationError(r.module), std::nullopt);
    EXPECT_GT(r.info->hooks.size(), 10u);
    // All hook imports precede everything and use the wasabi module.
    for (uint32_t h = 0; h < r.info->hooks.size(); ++h) {
        const wasm::Function &f =
            r.module.functions.at(r.info->hookFuncIdx(h));
        ASSERT_TRUE(f.imported());
        EXPECT_EQ(f.import->module, "wasabi");
    }
}

class SingleHookValidates
    : public ::testing::TestWithParam<HookKind> {};

TEST_P(SingleHookValidates, InstrumentedModuleIsValid)
{
    wasm::Module m = sampleModule();
    InstrumentResult r = instrument(m, HookSet::only(GetParam()));
    EXPECT_EQ(validationError(r.module), std::nullopt)
        << "hook: " << name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SingleHookValidates,
    ::testing::ValuesIn(figureOrderHookKinds()),
    [](const ::testing::TestParamInfo<HookKind> &info) {
        std::string n = name(info.param);
        for (char &c : n)
            if (c == '.')
                c = '_';
        return n;
    });

/** Run the sample module original vs. instrumented and compare. */
void
expectFaithful(HookSet hooks)
{
    wasm::Module m = sampleModule();
    auto orig_inst = Instance::instantiate(m, Linker());
    Interpreter interp1;
    std::vector<Value> args{Value::makeI32(7)};
    auto expected = interp1.invokeExport(*orig_inst, "main", args);

    InstrumentResult r = instrument(m, hooks);
    ASSERT_EQ(validationError(r.module), std::nullopt);
    auto inst = Instance::instantiate(r.module, noopLinker(*r.info));
    Interpreter interp2;
    auto actual = interp2.invokeExport(*inst, "main", args);
    EXPECT_EQ(expected, actual) << "hooks: " << hooks.toString();
}

TEST(Instrument, FaithfulUnderFullInstrumentation)
{
    expectFaithful(HookSet::all());
}

class SingleHookFaithful : public ::testing::TestWithParam<HookKind> {};

TEST_P(SingleHookFaithful, PreservesBehavior)
{
    expectFaithful(HookSet::only(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SingleHookFaithful,
    ::testing::ValuesIn(figureOrderHookKinds()),
    [](const ::testing::TestParamInfo<HookKind> &info) {
        return std::string(name(info.param));
    });

TEST(Instrument, ConstHookReceivesLocationAndValue)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::I32}), "f",
                   [](FunctionBuilder &f) { f.i32Const(42); });
    InstrumentResult r =
        instrument(mb.build(), HookSet::only(HookKind::Const));
    std::vector<HookCall> calls;
    auto inst =
        Instance::instantiate(r.module, recordingLinker(*r.info, calls));
    Interpreter interp;
    interp.invokeExport(*inst, "f", {});
    ASSERT_EQ(calls.size(), 1u);
    EXPECT_EQ(calls[0].name, "i32.const");
    ASSERT_EQ(calls[0].args.size(), 3u);
    EXPECT_EQ(calls[0].args[0].i32(), 0u); // function index
    EXPECT_EQ(calls[0].args[1].i32(), 0u); // instruction index
    EXPECT_EQ(calls[0].args[2].i32(), 42u);
}

TEST(Instrument, BinaryHookReceivesOperandsAndResult)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::I32}), "f",
                   [](FunctionBuilder &f) {
                       f.i32Const(30).i32Const(12).op(Opcode::I32Add);
                   });
    InstrumentResult r =
        instrument(mb.build(), HookSet::only(HookKind::Binary));
    std::vector<HookCall> calls;
    auto inst =
        Instance::instantiate(r.module, recordingLinker(*r.info, calls));
    Interpreter interp;
    auto res = interp.invokeExport(*inst, "f", {});
    EXPECT_EQ(res[0].i32(), 42u);
    ASSERT_EQ(calls.size(), 1u);
    EXPECT_EQ(calls[0].name, "i32.add");
    ASSERT_EQ(calls[0].args.size(), 5u);
    EXPECT_EQ(calls[0].args[2].i32(), 30u);
    EXPECT_EQ(calls[0].args[3].i32(), 12u);
    EXPECT_EQ(calls[0].args[4].i32(), 42u);
}

TEST(Instrument, I64ValuesAreSplitIntoTwoI32s)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "f", [](FunctionBuilder &f) {
        f.i64Const(static_cast<int64_t>(0x123456789ABCDEF0ull));
        f.drop();
    });
    InstrumentResult r =
        instrument(mb.build(), HookSet::only(HookKind::Drop));
    std::vector<HookCall> calls;
    auto inst =
        Instance::instantiate(r.module, recordingLinker(*r.info, calls));
    Interpreter interp;
    interp.invokeExport(*inst, "f", {});
    ASSERT_EQ(calls.size(), 1u);
    EXPECT_EQ(calls[0].name, "drop_i64");
    ASSERT_EQ(calls[0].args.size(), 4u); // loc + (low, high)
    EXPECT_EQ(calls[0].args[2].i32(), 0x9ABCDEF0u);
    EXPECT_EQ(calls[0].args[3].i32(), 0x12345678u);
}

TEST(Instrument, NativeI64AbiWhenSplitDisabled)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "f", [](FunctionBuilder &f) {
        f.i64Const(-1);
        f.drop();
    });
    InstrumentOptions opts;
    opts.splitI64 = false;
    InstrumentResult r =
        instrument(mb.build(), HookSet::only(HookKind::Drop), opts);
    ASSERT_EQ(validationError(r.module), std::nullopt);
    std::vector<HookCall> calls;
    auto inst =
        Instance::instantiate(r.module, recordingLinker(*r.info, calls));
    Interpreter interp;
    interp.invokeExport(*inst, "f", {});
    ASSERT_EQ(calls.size(), 1u);
    ASSERT_EQ(calls[0].args.size(), 3u);
    EXPECT_EQ(calls[0].args[2].i64(), 0xFFFFFFFFFFFFFFFFull);
}

TEST(Instrument, DropIsMonomorphizedByStackType)
{
    // Two drops with different incoming types must produce two
    // distinct monomorphic hooks (§2.4.3).
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "f", [](FunctionBuilder &f) {
        f.i32Const(1).drop();
        f.f64Const(1.0).drop();
    });
    InstrumentResult r =
        instrument(mb.build(), HookSet::only(HookKind::Drop));
    std::vector<std::string> names;
    for (const HookSpec &s : r.info->hooks)
        names.push_back(mangledName(s));
    std::sort(names.begin(), names.end());
    EXPECT_EQ(names, (std::vector<std::string>{"drop_f64", "drop_i32"}));
}

TEST(Instrument, SelectHookReceivesConditionAndBothValues)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({ValType::I32}, {ValType::F64}), "f",
                   [](FunctionBuilder &f) {
                       f.f64Const(1.5).f64Const(2.5).localGet(0).select();
                   });
    InstrumentResult r =
        instrument(mb.build(), HookSet::only(HookKind::Select));
    std::vector<HookCall> calls;
    auto inst =
        Instance::instantiate(r.module, recordingLinker(*r.info, calls));
    Interpreter interp;
    std::vector<Value> args{Value::makeI32(0)};
    auto res = interp.invokeExport(*inst, "f", args);
    EXPECT_EQ(res[0].f64(), 2.5);
    ASSERT_EQ(calls.size(), 1u);
    EXPECT_EQ(calls[0].name, "select_f64");
    ASSERT_EQ(calls[0].args.size(), 5u);
    EXPECT_EQ(calls[0].args[2].i32(), 0u);  // condition
    EXPECT_EQ(calls[0].args[3].f64(), 1.5); // first
    EXPECT_EQ(calls[0].args[4].f64(), 2.5); // second
}

TEST(Instrument, CallHooksFireAroundTheCall)
{
    ModuleBuilder mb;
    uint32_t callee = mb.addFunction(
        FuncType({ValType::I32}, {ValType::I32}), "",
        [](FunctionBuilder &f) {
            f.localGet(0).i32Const(2).op(Opcode::I32Mul);
        });
    mb.addFunction(FuncType({}, {ValType::I32}), "f",
                   [&](FunctionBuilder &f) {
                       f.i32Const(21).call(callee);
                   });
    InstrumentResult r =
        instrument(mb.build(), HookSet::only(HookKind::Call));
    std::vector<HookCall> calls;
    auto inst =
        Instance::instantiate(r.module, recordingLinker(*r.info, calls));
    Interpreter interp;
    auto res = interp.invokeExport(*inst, "f", {});
    EXPECT_EQ(res[0].i32(), 42u);
    ASSERT_EQ(calls.size(), 2u);
    EXPECT_EQ(calls[0].name, "call_pre_i32");
    EXPECT_EQ(calls[0].args[2].i32(), 21u);
    EXPECT_EQ(calls[1].name, "call_post_i32");
    EXPECT_EQ(calls[1].args[2].i32(), 42u);
}

TEST(Instrument, IndirectCallHookReceivesTableIndex)
{
    ModuleBuilder mb;
    mb.table(1, 1);
    FuncType t({}, {ValType::I32});
    uint32_t callee = mb.addFunction(t, "", [](FunctionBuilder &f) {
        f.i32Const(9);
    });
    mb.elem(0, {callee});
    mb.addFunction(FuncType({}, {ValType::I32}), "f",
                   [&](FunctionBuilder &f) {
                       f.i32Const(0);
                       f.callIndirect(mb.type(t));
                   });
    InstrumentResult r =
        instrument(mb.build(), HookSet::only(HookKind::Call));
    std::vector<HookCall> calls;
    auto inst =
        Instance::instantiate(r.module, recordingLinker(*r.info, calls));
    Interpreter interp;
    auto res = interp.invokeExport(*inst, "f", {});
    EXPECT_EQ(res[0].i32(), 9u);
    ASSERT_EQ(calls.size(), 2u);
    EXPECT_EQ(calls[0].name, "call_pre_indirect");
    EXPECT_EQ(calls[0].args[2].i32(), 0u); // runtime table index
}

TEST(Instrument, BranchTargetsAreResolvedStatically)
{
    ModuleBuilder mb;
    FunctionBuilder fb = mb.startFunction(FuncType({}, {}), "f");
    fb.block();       // @0
    fb.loop();        // @1
    fb.i32Const(0);   // @2
    fb.brIf(1);       // @3  -> forward, to after the block's end
    fb.br(0);         // @4  -> backward, to loop start
    fb.end();         // @5
    fb.end();         // @6
    fb.finish();      // @7 (function end)
    InstrumentResult r =
        instrument(mb.build(), HookSet::only(HookKind::Br));
    // br_if @3 targets label 1 = the block -> next instr after end @6.
    auto it = r.info->brTargets.find(packLoc({0, 3}));
    ASSERT_NE(it, r.info->brTargets.end());
    EXPECT_EQ(it->second.label, 1u);
    EXPECT_EQ(it->second.location.instr, 7u);
    // br @4 targets label 0 = the loop -> first instr inside loop @2.
    it = r.info->brTargets.find(packLoc({0, 4}));
    ASSERT_NE(it, r.info->brTargets.end());
    EXPECT_EQ(it->second.label, 0u);
    EXPECT_EQ(it->second.location.instr, 2u);
}

TEST(Instrument, EndHooksFireForBranchTraversedBlocks)
{
    // br 1 out of two nested blocks must fire end hooks for both.
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "f", [](FunctionBuilder &f) {
        f.block();
        f.block();
        f.br(1);
        f.end();
        f.end();
    });
    InstrumentResult r =
        instrument(mb.build(), HookSet{HookKind::End});
    std::vector<HookCall> calls;
    auto inst =
        Instance::instantiate(r.module, recordingLinker(*r.info, calls));
    Interpreter interp;
    interp.invokeExport(*inst, "f", {});
    // Two ends from the branch + the function end; the blocks' own
    // end hooks are skipped by the jump.
    ASSERT_EQ(calls.size(), 3u);
    EXPECT_EQ(calls[0].name, "end_block"); // inner
    EXPECT_EQ(calls[1].name, "end_block"); // outer
    EXPECT_EQ(calls[2].name, "end_function");
}

TEST(Instrument, BrIfEndHooksOnlyWhenTaken)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({ValType::I32}, {}), "f",
                   [](FunctionBuilder &f) {
                       f.block();
                       f.localGet(0);
                       f.brIf(0);
                       f.end();
                   });
    InstrumentResult r = instrument(mb.build(), HookSet{HookKind::End});
    std::vector<HookCall> calls;
    auto inst =
        Instance::instantiate(r.module, recordingLinker(*r.info, calls));
    Interpreter interp;

    std::vector<Value> taken{Value::makeI32(1)};
    interp.invokeExport(*inst, "f", taken);
    // Branch taken: block end (from branch) + function end.
    ASSERT_EQ(calls.size(), 2u);
    EXPECT_EQ(calls[0].name, "end_block");

    calls.clear();
    std::vector<Value> not_taken{Value::makeI32(0)};
    interp.invokeExport(*inst, "f", not_taken);
    // Not taken: block end fires at the end instruction instead.
    ASSERT_EQ(calls.size(), 2u);
    EXPECT_EQ(calls[0].name, "end_block");
}

TEST(Instrument, BeginHooksFirePerLoopIteration)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "f", [](FunctionBuilder &f) {
        uint32_t i = f.addLocal(ValType::I32);
        f.forLoop(i, 0, 3, []() {});
    });
    InstrumentResult r =
        instrument(mb.build(), HookSet{HookKind::Begin});
    std::vector<HookCall> calls;
    auto inst =
        Instance::instantiate(r.module, recordingLinker(*r.info, calls));
    Interpreter interp;
    interp.invokeExport(*inst, "f", {});
    int loop_begins = 0;
    int fn_begins = 0;
    for (const HookCall &c : calls) {
        if (c.name == "begin_loop")
            ++loop_begins;
        if (c.name == "begin_function")
            ++fn_begins;
    }
    // forLoop iterates 4 times through the loop header (3 body
    // iterations + the final check that exits).
    EXPECT_EQ(loop_begins, 4);
    EXPECT_EQ(fn_begins, 1);
}

TEST(Instrument, OriginalImportsKeepTheirIndices)
{
    ModuleBuilder mb;
    uint32_t imp = mb.importFunction("env", "ext", FuncType({}, {}));
    mb.addFunction(FuncType({}, {}), "f", [&](FunctionBuilder &f) {
        f.call(imp);
    });
    InstrumentResult r =
        instrument(mb.build(), HookSet::only(HookKind::Call));
    ASSERT_EQ(validationError(r.module), std::nullopt);
    // env.ext must still be function 0; hooks follow.
    EXPECT_EQ(r.module.functions[0].import->module, "env");
    // Run it: both hook imports and the original import resolve.
    std::vector<HookCall> calls;
    Linker linker = recordingLinker(*r.info, calls);
    int ext_calls = 0;
    linker.func("env", "ext",
                [&](Instance &, std::span<const Value>,
                    std::vector<Value> &) { ++ext_calls; });
    auto inst = Instance::instantiate(r.module, linker);
    Interpreter interp;
    interp.invokeExport(*inst, "f", {});
    EXPECT_EQ(ext_calls, 1);
    ASSERT_EQ(calls.size(), 2u); // pre + post
}

TEST(Instrument, StartFunctionIndexIsRemapped)
{
    ModuleBuilder mb;
    mb.global(ValType::I32, true, Value::makeI32(0));
    uint32_t s = mb.addFunction(FuncType({}, {}), "",
                                [](FunctionBuilder &f) {
                                    f.i32Const(1);
                                    f.globalSet(0);
                                });
    mb.start(s);
    InstrumentResult r = instrument(mb.build(), HookSet::all());
    ASSERT_EQ(validationError(r.module), std::nullopt);
    auto inst = Instance::instantiate(r.module, noopLinker(*r.info));
    EXPECT_EQ(inst->globalGet(0).i32(), 1u);
}

TEST(Instrument, BrTableSideTableIsRecorded)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({ValType::I32}, {}), "f",
                   [](FunctionBuilder &f) {
                       f.block(); // label 1
                       f.block(); // label 0
                       f.localGet(0);
                       f.brTable({0}, 1); // @3
                       f.end();
                       f.end();
                   });
    InstrumentResult r =
        instrument(mb.build(), HookSet::only(HookKind::BrTable));
    auto it = r.info->brTables.find(packLoc({0, 3}));
    ASSERT_NE(it, r.info->brTables.end());
    ASSERT_EQ(it->second.cases.size(), 1u);
    EXPECT_EQ(it->second.cases[0].target.label, 0u);
    EXPECT_EQ(it->second.cases[0].ended.size(), 1u);
    EXPECT_EQ(it->second.defaultCase.target.label, 1u);
    EXPECT_EQ(it->second.defaultCase.ended.size(), 2u);
}

TEST(Instrument, ParallelInstrumentationMatchesSequentialBehavior)
{
    wasm::Module m = sampleModule();
    InstrumentOptions par;
    par.numThreads = 4;
    InstrumentResult rp = instrument(m, HookSet::all(), par);
    InstrumentResult rs = instrument(m, HookSet::all());
    ASSERT_EQ(validationError(rp.module), std::nullopt);
    // The same set of hooks is generated (ids may differ by schedule).
    std::vector<std::string> np, ns;
    for (const HookSpec &s : rp.info->hooks)
        np.push_back(mangledName(s));
    for (const HookSpec &s : rs.info->hooks)
        ns.push_back(mangledName(s));
    std::sort(np.begin(), np.end());
    std::sort(ns.begin(), ns.end());
    EXPECT_EQ(np, ns);
    // And behavior matches the original.
    auto inst = Instance::instantiate(rp.module, noopLinker(*rp.info));
    Interpreter interp;
    std::vector<Value> args{Value::makeI32(7)};
    auto res = interp.invokeExport(*inst, "main", args);
    auto orig_inst = Instance::instantiate(m, Linker());
    Interpreter interp2;
    EXPECT_EQ(res, interp2.invokeExport(*orig_inst, "main", args));
}

TEST(Instrument, UnreachableCodeIsCopiedVerbatim)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::I32}), "f",
                   [](FunctionBuilder &f) {
                       f.i32Const(5);
                       f.ret();
                       f.drop(); // dead, polymorphic
                       f.i32Const(1);
                   });
    InstrumentResult r = instrument(mb.build(), HookSet::all());
    ASSERT_EQ(validationError(r.module), std::nullopt);
    auto inst = Instance::instantiate(r.module, noopLinker(*r.info));
    Interpreter interp;
    EXPECT_EQ(interp.invokeExport(*inst, "f", {})[0].i32(), 5u);
}

TEST(Instrument, ElseAfterDeadThenBranchStillBeginsElse)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({ValType::I32}, {ValType::I32}), "f",
                   [](FunctionBuilder &f) {
                       f.localGet(0);
                       f.if_(ValType::I32);
                       f.i32Const(1);
                       f.ret(); // then-branch ends dead
                       f.else_();
                       f.i32Const(2);
                       f.end();
                   });
    InstrumentResult r = instrument(mb.build(), HookSet::all());
    ASSERT_EQ(validationError(r.module), std::nullopt);
    std::vector<HookCall> calls;
    auto inst =
        Instance::instantiate(r.module, recordingLinker(*r.info, calls));
    Interpreter interp;
    std::vector<Value> zero{Value::makeI32(0)};
    EXPECT_EQ(interp.invokeExport(*inst, "f", zero)[0].i32(), 2u);
    bool saw_begin_else = false;
    for (const HookCall &c : calls)
        saw_begin_else |= c.name == "begin_else";
    EXPECT_TRUE(saw_begin_else);
}

TEST(Instrument, MemoryBehaviorIsUntouched)
{
    // The instrumented program's final memory must be byte-identical:
    // inserted code only uses fresh locals (paper §1, "preserves its
    // memory behavior").
    ModuleBuilder mb;
    mb.memory(1);
    mb.addFunction(FuncType({}, {}), "f", [](FunctionBuilder &f) {
        uint32_t i = f.addLocal(ValType::I32);
        f.forLoop(i, 0, 64, [&]() {
            f.localGet(i).i32Const(4).op(Opcode::I32Mul);
            f.localGet(i).localGet(i).op(Opcode::I32Mul);
            f.i32Store();
        });
    });
    wasm::Module m = mb.build();
    auto orig = Instance::instantiate(m, Linker());
    Interpreter i1;
    i1.invokeExport(*orig, "f", {});

    InstrumentResult r = instrument(m, HookSet::all());
    auto inst = Instance::instantiate(r.module, noopLinker(*r.info));
    Interpreter i2;
    i2.invokeExport(*inst, "f", {});

    EXPECT_EQ(orig->memory().raw(), inst->memory().raw());
}

} // namespace
} // namespace wasabi::core
