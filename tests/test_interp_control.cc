/**
 * @file
 * Interpreter tests for control flow: blocks, loops, if/else, br,
 * br_if, br_table, return, select, and function-level behavior.
 */

#include <gtest/gtest.h>

#include "interp/interpreter.h"
#include "wasm/builder.h"
#include "wasm/validator.h"

namespace wasabi::interp {
namespace {

using wasm::FuncType;
using wasm::FunctionBuilder;
using wasm::ModuleBuilder;
using wasm::Opcode;
using wasm::Value;
using wasm::ValType;

/** Build, validate, instantiate, and run a single exported function. */
std::vector<Value>
run(const FuncType &type, const std::function<void(FunctionBuilder &)> &fill,
    std::vector<Value> args = {})
{
    ModuleBuilder mb;
    mb.addFunction(type, "f", fill);
    wasm::Module m = mb.build();
    EXPECT_EQ(validationError(m), std::nullopt);
    auto inst = Instance::instantiate(std::move(m), Linker());
    Interpreter interp;
    return interp.invokeExport(*inst, "f", args);
}

uint32_t
runI32(const std::function<void(FunctionBuilder &)> &fill,
       std::vector<Value> args = {}, std::vector<ValType> params = {})
{
    auto results =
        run(FuncType(std::move(params), {ValType::I32}), fill, args);
    EXPECT_EQ(results.size(), 1u);
    return results[0].i32();
}

TEST(InterpControl, BlockFallthroughYieldsResult)
{
    EXPECT_EQ(runI32([](FunctionBuilder &f) {
                  f.block(ValType::I32);
                  f.i32Const(7);
                  f.end();
              }),
              7u);
}

TEST(InterpControl, BrSkipsRemainingCode)
{
    EXPECT_EQ(runI32([](FunctionBuilder &f) {
                  f.block(ValType::I32);
                  f.i32Const(1);
                  f.br(0);
                  f.drop();
                  f.i32Const(99);
                  f.end();
              }),
              1u);
}

TEST(InterpControl, BrOutOfNestedBlocks)
{
    // br 1 from the inner block jumps past both ends, carrying the
    // value it needs for the outer block's result.
    EXPECT_EQ(runI32([](FunctionBuilder &f) {
                  f.block(ValType::I32);
                  f.block();
                  f.i32Const(10);
                  f.br(1);
                  f.end();
                  f.i32Const(20);
                  f.end();
              }),
              10u);
}

TEST(InterpControl, BrIfTakenAndNotTaken)
{
    auto body = [](FunctionBuilder &f) {
        f.block(ValType::I32);
        f.i32Const(111);
        f.localGet(0);
        f.brIf(0);
        f.drop();
        f.i32Const(222);
        f.end();
    };
    EXPECT_EQ(runI32(body, {Value::makeI32(1)}, {ValType::I32}), 111u);
    EXPECT_EQ(runI32(body, {Value::makeI32(0)}, {ValType::I32}), 222u);
}

TEST(InterpControl, IfElseBothBranches)
{
    auto body = [](FunctionBuilder &f) {
        f.localGet(0);
        f.if_(ValType::I32);
        f.i32Const(1);
        f.else_();
        f.i32Const(2);
        f.end();
    };
    EXPECT_EQ(runI32(body, {Value::makeI32(5)}, {ValType::I32}), 1u);
    EXPECT_EQ(runI32(body, {Value::makeI32(0)}, {ValType::I32}), 2u);
}

TEST(InterpControl, IfWithoutElseSkipsWhenFalse)
{
    auto body = [](FunctionBuilder &f) {
        uint32_t r = f.addLocal(ValType::I32);
        f.i32Const(10).localSet(r);
        f.localGet(0);
        f.if_();
        f.i32Const(20).localSet(r);
        f.end();
        f.localGet(r);
    };
    EXPECT_EQ(runI32(body, {Value::makeI32(0)}, {ValType::I32}), 10u);
    EXPECT_EQ(runI32(body, {Value::makeI32(1)}, {ValType::I32}), 20u);
}

TEST(InterpControl, NestedIfInsideLoop)
{
    // Sum of even numbers below 10 = 20.
    EXPECT_EQ(runI32([](FunctionBuilder &f) {
                  uint32_t i = f.addLocal(ValType::I32);
                  uint32_t acc = f.addLocal(ValType::I32);
                  f.forLoop(i, 0, 10, [&]() {
                      f.localGet(i).i32Const(2).op(Opcode::I32RemU);
                      f.op(Opcode::I32Eqz);
                      f.if_();
                      f.localGet(acc).localGet(i).op(Opcode::I32Add);
                      f.localSet(acc);
                      f.end();
                  });
                  f.localGet(acc);
              }),
              20u);
}

TEST(InterpControl, BrTableSelectsTargets)
{
    // Returns 10/20/30 depending on selector (default 30).
    auto body = [](FunctionBuilder &f) {
        f.block(ValType::I32); // label 2 (outermost for result)
        f.block();             // label 1
        f.block();             // label 0
        f.localGet(0);
        f.brTable({0, 1}, 2);
        f.end();
        f.i32Const(10);
        f.br(1);
        f.end();
        f.i32Const(20);
        f.br(0);
        f.end();
    };
    // selector 0 -> br 0 -> "10"; 1 -> br 1 -> "20"; else -> br 2 ->
    // function result... but label 2 needs an i32. Give the default
    // branch one by routing through the outer block's result: br 2
    // carries a value, so push one before br_table? Simplify: use
    // selector clamped into the two labels and default to label 1.
    (void)body;

    auto body2 = [](FunctionBuilder &f) {
        f.block(ValType::I32); // label depends on position
        f.block();
        f.block();
        f.localGet(0);
        f.brTable({0, 1}, 1);
        f.end(); // label 0 target: fall here
        f.i32Const(10);
        f.br(1);
        f.end(); // label 1 target
        f.i32Const(20);
        f.end();
    };
    EXPECT_EQ(runI32(body2, {Value::makeI32(0)}, {ValType::I32}), 10u);
    EXPECT_EQ(runI32(body2, {Value::makeI32(1)}, {ValType::I32}), 20u);
    EXPECT_EQ(runI32(body2, {Value::makeI32(7)}, {ValType::I32}), 20u);
}

TEST(InterpControl, BrToLoopRestartsIt)
{
    // Counts down from 5; the loop branch is a back edge.
    EXPECT_EQ(runI32(
                  [](FunctionBuilder &f) {
                      uint32_t n = f.addLocal(ValType::I32);
                      uint32_t count = f.addLocal(ValType::I32);
                      f.i32Const(5).localSet(n);
                      f.block();
                      f.loop();
                      f.localGet(n).op(Opcode::I32Eqz).brIf(1);
                      f.localGet(count).i32Const(1).op(Opcode::I32Add);
                      f.localSet(count);
                      f.localGet(n).i32Const(1).op(Opcode::I32Sub);
                      f.localSet(n);
                      f.br(0);
                      f.end();
                      f.end();
                      f.localGet(count);
                  }),
              5u);
}

TEST(InterpControl, ReturnFromNestedBlocks)
{
    EXPECT_EQ(runI32([](FunctionBuilder &f) {
                  f.block();
                  f.block();
                  f.i32Const(42);
                  f.ret();
                  f.end();
                  f.end();
                  f.i32Const(7);
              }),
              42u);
}

TEST(InterpControl, SelectPicksByCondition)
{
    auto body = [](FunctionBuilder &f) {
        f.i32Const(100);
        f.i32Const(200);
        f.localGet(0);
        f.select();
    };
    EXPECT_EQ(runI32(body, {Value::makeI32(1)}, {ValType::I32}), 100u);
    EXPECT_EQ(runI32(body, {Value::makeI32(0)}, {ValType::I32}), 200u);
}

TEST(InterpControl, BrCarriesBlockResultValue)
{
    // The branch transports the top-of-stack value out of the block,
    // discarding intermediate values below it.
    EXPECT_EQ(runI32([](FunctionBuilder &f) {
                  f.block(ValType::I32);
                  f.i32Const(1); // clutter that must be discarded
                  f.i32Const(2);
                  f.i32Const(77); // carried value
                  f.br(0);
                  f.end();
              }),
              77u);
}

TEST(InterpControl, UnreachableTraps)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "f", [](FunctionBuilder &f) {
        f.unreachable();
    });
    auto inst = Instance::instantiate(mb.build(), Linker());
    Interpreter interp;
    try {
        interp.invokeExport(*inst, "f", {});
        FAIL();
    } catch (const Trap &t) {
        EXPECT_EQ(t.kind(), TrapKind::Unreachable);
    }
}

TEST(InterpControl, FuelLimitTrapsInfiniteLoop)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "spin", [](FunctionBuilder &f) {
        f.loop();
        f.br(0);
        f.end();
    });
    auto inst = Instance::instantiate(mb.build(), Linker());
    inst->setFuel(10000);
    Interpreter interp;
    try {
        interp.invokeExport(*inst, "spin", {});
        FAIL();
    } catch (const Trap &t) {
        EXPECT_EQ(t.kind(), TrapKind::FuelExhausted);
    }
}

TEST(InterpControl, DeepRecursionExhaustsCallStack)
{
    ModuleBuilder mb;
    FunctionBuilder fb = mb.startFunction(FuncType({}, {}), "rec");
    fb.call(0); // self-recursive, function index 0
    uint32_t idx = fb.finish();
    EXPECT_EQ(idx, 0u);
    auto inst = Instance::instantiate(mb.build(), Linker());
    Interpreter interp;
    try {
        interp.invokeExport(*inst, "rec", {});
        FAIL();
    } catch (const Trap &t) {
        EXPECT_EQ(t.kind(), TrapKind::CallStackExhausted);
    }
}

TEST(InterpControl, LoopWithResultValue)
{
    // A loop whose fallthrough produces a value.
    EXPECT_EQ(runI32([](FunctionBuilder &f) {
                  f.loop(ValType::I32);
                  f.i32Const(9);
                  f.end();
              }),
              9u);
}

TEST(InterpControl, InvokeRejectsMismatchedArguments)
{
    // Invoking with the wrong argument count or types used to make
    // both engines read below the value stack (garbage locals, heap
    // corruption at frame teardown); it must be a structured error
    // before either engine touches the stack.
    ModuleBuilder mb;
    mb.addFunction(FuncType({ValType::I32, ValType::I64}, {ValType::I32}),
                   "f", [](FunctionBuilder &f) { f.localGet(0); });
    wasm::Module m = mb.build();
    ASSERT_NO_THROW(wasm::validateModule(m));
    for (EngineKind engine : {EngineKind::Fast, EngineKind::Legacy}) {
        auto inst = Instance::instantiate(m, Linker());
        Interpreter interp;
        interp.engine = engine;
        const std::vector<Value> good = {Value::makeI32(1),
                                         Value::makeI64(2)};
        EXPECT_THROW(interp.invokeExport(*inst, "f", std::vector<Value>{}),
                     std::invalid_argument);
        EXPECT_THROW(interp.invokeExport(
                         *inst, "f", std::vector<Value>{Value::makeI32(1)}),
                     std::invalid_argument);
        EXPECT_THROW(
            interp.invokeExport(*inst, "f",
                                std::vector<Value>{Value::makeI32(1),
                                                   Value::makeF64(2.0)}),
            std::invalid_argument);
        EXPECT_EQ(interp.invokeExport(*inst, "f", good)[0].bits, 1u);
    }
}

} // namespace
} // namespace wasabi::interp
