/**
 * @file
 * Tests for the eight paper analyses (Table 4) against small programs
 * with known expected results.
 */

#include <gtest/gtest.h>

#include "analyses/basic_block_profile.h"
#include "analyses/branch_coverage.h"
#include "analyses/call_graph.h"
#include "analyses/cryptominer.h"
#include "analyses/instruction_coverage.h"
#include "analyses/instruction_mix.h"
#include "analyses/memory_trace.h"
#include "analyses/taint.h"
#include "core/instrument.h"
#include "runtime/runtime.h"
#include "wasm/builder.h"

namespace wasabi::analyses {
namespace {

using core::instrument;
using core::InstrumentResult;
using interp::Interpreter;
using runtime::WasabiRuntime;
using wasm::FuncType;
using wasm::FunctionBuilder;
using wasm::ModuleBuilder;
using wasm::Opcode;
using wasm::Value;
using wasm::ValType;

/** Instrument for the analysis, run entry, return results. */
std::vector<Value>
analyze(const wasm::Module &m, runtime::Analysis &analysis,
        const std::string &entry, std::vector<Value> args = {})
{
    InstrumentResult r =
        instrument(m, WasabiRuntime::requiredHooks({&analysis}));
    WasabiRuntime rt(r.info);
    rt.addAnalysis(&analysis);
    auto inst = rt.instantiate(r.module);
    Interpreter interp;
    return interp.invokeExport(*inst, entry, args);
}

TEST(InstructionMixTest, CountsPerMnemonic)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::I32}), "f",
                   [](FunctionBuilder &f) {
                       uint32_t i = f.addLocal(ValType::I32);
                       uint32_t acc = f.addLocal(ValType::I32);
                       f.forLoop(i, 0, 5, [&] {
                           f.localGet(acc)
                               .localGet(i)
                               .op(Opcode::I32Add)
                               .localSet(acc);
                       });
                       f.localGet(acc);
                   });
    InstructionMix mix;
    auto results = analyze(mb.build(), mix, "f");
    EXPECT_EQ(results[0].i32(), 10u);
    // Each of the 5 iterations executes one accumulator add and one
    // loop-increment add.
    EXPECT_EQ(mix.count("i32.add"), 10u);
    EXPECT_GT(mix.total(), 20u);
}

TEST(BasicBlockProfileTest, CountsLoopIterations)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "f", [](FunctionBuilder &f) {
        uint32_t i = f.addLocal(ValType::I32);
        f.forLoop(i, 0, 7, [] {});
    });
    BasicBlockProfile profile;
    analyze(mb.build(), profile, "f");
    // forLoop structure: block @2, loop @3. The loop header runs 8
    // times (7 iterations + exit check).
    EXPECT_EQ(profile.count({0, 3}, runtime::BlockKind::Loop), 8u);
    EXPECT_EQ(profile.count({0, 2}, runtime::BlockKind::Block), 1u);
    EXPECT_EQ(
        profile.count({0, core::kFunctionEntry},
                      runtime::BlockKind::Function),
        1u);
    EXPECT_FALSE(profile.report().empty());
}

TEST(InstructionCoverageTest, DetectsUnexecutedBranch)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({ValType::I32}, {ValType::I32}), "f",
                   [](FunctionBuilder &f) {
                       f.localGet(0); // @0
                       f.if_(ValType::I32); // @1
                       f.i32Const(1); // @2 (then)
                       f.else_();     // @3
                       f.i32Const(2); // @4 (else)
                       f.end();       // @5
                   });
    InstructionCoverage cov;
    std::vector<Value> one{Value::makeI32(1)};
    analyze(mb.build(), cov, "f", one);
    EXPECT_TRUE(cov.covered({0, 2}));  // then-branch const executed
    EXPECT_FALSE(cov.covered({0, 4})); // else-branch const not
    EXPECT_GT(cov.coveredCount(), 0u);
}

TEST(BranchCoverageTest, RecordsBothOutcomes)
{
    // Mirrors the paper's Figure 7 analysis.
    ModuleBuilder mb;
    mb.addFunction(FuncType({ValType::I32}, {ValType::I32}), "f",
                   [](FunctionBuilder &f) {
                       f.localGet(0);
                       f.if_(ValType::I32); // branch site @1
                       f.i32Const(1);
                       f.else_();
                       f.i32Const(2);
                       f.end();
                   });
    wasm::Module m = mb.build();
    BranchCoverage cov;
    InstrumentResult r =
        instrument(m, WasabiRuntime::requiredHooks({&cov}));
    WasabiRuntime rt(r.info);
    rt.addAnalysis(&cov);
    auto inst = rt.instantiate(r.module);
    Interpreter interp;
    std::vector<Value> t{Value::makeI32(1)};
    interp.invokeExport(*inst, "f", t);
    EXPECT_EQ(cov.branches({0, 1}), std::set<int>{1});
    EXPECT_EQ(cov.partiallyCoveredTwoWaySites(), 1u);
    std::vector<Value> fse{Value::makeI32(0)};
    interp.invokeExport(*inst, "f", fse);
    EXPECT_EQ(cov.branches({0, 1}), (std::set<int>{0, 1}));
    EXPECT_EQ(cov.partiallyCoveredTwoWaySites(), 0u);
}

TEST(CallGraphTest, RecordsDirectIndirectAndCounts)
{
    ModuleBuilder mb;
    mb.table(1, 1);
    FuncType t({}, {ValType::I32});
    uint32_t leaf = mb.addFunction(t, "", [](FunctionBuilder &f) {
        f.i32Const(1);
    });
    mb.elem(0, {leaf});
    uint32_t mid = mb.addFunction(t, "", [&](FunctionBuilder &f) {
        f.i32Const(0);
        f.callIndirect(mb.type(t)); // mid -> leaf (indirect)
    });
    uint32_t main_idx =
        mb.addFunction(FuncType({}, {ValType::I32}), "main",
                       [&](FunctionBuilder &f) {
                           f.call(mid);
                           f.call(leaf);
                           f.op(Opcode::I32Add);
                       });
    CallGraph graph;
    wasm::Module m = mb.build();
    analyze(m, graph, "main");
    EXPECT_EQ(graph.numEdges(), 3u);
    EXPECT_TRUE(graph.hasEdge(main_idx, mid));
    EXPECT_TRUE(graph.hasEdge(main_idx, leaf));
    EXPECT_TRUE(graph.hasEdge(mid, leaf));
    EXPECT_TRUE(graph.hasIndirectEdge(mid, leaf));
    EXPECT_FALSE(graph.hasIndirectEdge(main_idx, mid));
    EXPECT_EQ(graph.callCount(main_idx, mid), 1u);
    EXPECT_TRUE(graph.dynamicallyDead(m, main_idx).empty());
    EXPECT_NE(graph.toDot(m).find("digraph"), std::string::npos);
}

TEST(CallGraphTest, FindsDynamicallyDeadFunctions)
{
    ModuleBuilder mb;
    FuncType t({}, {ValType::I32});
    mb.addFunction(t, "", [](FunctionBuilder &f) {
        f.i32Const(1);
    }); // never called
    uint32_t main_idx = mb.addFunction(t, "main", [](FunctionBuilder &f) {
        f.i32Const(0);
    });
    CallGraph graph;
    wasm::Module m = mb.build();
    analyze(m, graph, "main");
    EXPECT_EQ(graph.dynamicallyDead(m, main_idx), std::set<uint32_t>{0});
}

TEST(CryptominerTest, FlagsHashLikeKernelNotPlainLoop)
{
    // A xor/shift/add-heavy mixing loop (miner-like).
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::I32}), "mine",
                   [](FunctionBuilder &f) {
                       uint32_t i = f.addLocal(ValType::I32);
                       uint32_t h = f.addLocal(ValType::I32);
                       f.i32Const(0x9E3779B9).localSet(h);
                       f.forLoop(i, 0, 600, [&] {
                           f.localGet(h).i32Const(13).op(Opcode::I32Shl);
                           f.localGet(h).op(Opcode::I32Xor).localSet(h);
                           f.localGet(h).i32Const(7).op(Opcode::I32ShrU);
                           f.localGet(h).op(Opcode::I32Xor).localSet(h);
                           f.localGet(h).localGet(i).op(Opcode::I32Add);
                           f.localGet(h).op(Opcode::I32Xor).localSet(h);
                           f.localGet(h).i32Const(0x45D9F3B);
                           f.op(Opcode::I32And).localSet(h);
                       });
                       f.localGet(h);
                   });
    CryptominerDetector miner;
    analyze(mb.build(), miner, "mine");
    EXPECT_TRUE(miner.suspicious());
    EXPECT_GT(miner.signatureRatio(), 0.8);

    // An f64 numeric loop (PolyBench-like) must not be flagged.
    ModuleBuilder mb2;
    mb2.addFunction(FuncType({}, {ValType::F64}), "compute",
                    [](FunctionBuilder &f) {
                        uint32_t i = f.addLocal(ValType::I32);
                        uint32_t x = f.addLocal(ValType::F64);
                        f.forLoop(i, 0, 600, [&] {
                            f.localGet(x).f64Const(1.000001);
                            f.op(Opcode::F64Mul).f64Const(0.5);
                            f.op(Opcode::F64Add).localSet(x);
                        });
                        f.localGet(x);
                    });
    CryptominerDetector benign;
    analyze(mb2.build(), benign, "compute");
    EXPECT_FALSE(benign.suspicious());
}

TEST(MemoryTraceTest, RecordsAccessesInOrder)
{
    ModuleBuilder mb;
    mb.memory(1);
    mb.addFunction(FuncType({}, {ValType::I32}), "f",
                   [](FunctionBuilder &f) {
                       f.i32Const(100);
                       f.i32Const(7);
                       f.i32Store(4);
                       f.i32Const(100);
                       f.i32Load(4);
                   });
    MemoryTrace trace;
    analyze(mb.build(), trace, "f");
    ASSERT_EQ(trace.trace().size(), 2u);
    EXPECT_TRUE(trace.trace()[0].isStore);
    EXPECT_EQ(trace.trace()[0].address, 104u);
    EXPECT_EQ(trace.trace()[0].value.i32(), 7u);
    EXPECT_FALSE(trace.trace()[1].isStore);
    EXPECT_EQ(trace.trace()[1].address, 104u);
    EXPECT_EQ(trace.loads(), 1u);
    EXPECT_EQ(trace.stores(), 1u);
}

TEST(MemoryTraceTest, LocalityScoreSeparatesPatterns)
{
    auto make = [](bool strided) {
        ModuleBuilder mb;
        mb.memory(1);
        mb.addFunction(FuncType({}, {}), "f", [&](FunctionBuilder &f) {
            uint32_t i = f.addLocal(ValType::I32);
            f.forLoop(i, 0, 64, [&] {
                f.localGet(i);
                f.i32Const(strided ? 997 : 8);
                f.op(Opcode::I32Mul);
                f.i32Const(0xFFF8);
                f.op(Opcode::I32And);
                f.i32Const(1);
                f.i32Store();
            });
        });
        return mb.build();
    };
    MemoryTrace seq;
    analyze(make(false), seq, "f");
    MemoryTrace rnd;
    analyze(make(true), rnd, "f");
    EXPECT_GT(seq.localityScore(), rnd.localityScore());
}

// ---------------------------------------------------------------------
// Taint analysis.

TEST(TaintTest, DirectFlowFromSourceToSink)
{
    ModuleBuilder mb;
    FuncType t({}, {ValType::I32});
    uint32_t source = mb.addFunction(t, "", [](FunctionBuilder &f) {
        f.i32Const(1234);
    });
    uint32_t sink = mb.addFunction(FuncType({ValType::I32}, {}), "",
                                   [](FunctionBuilder &f) {
                                       f.localGet(0);
                                       f.drop();
                                   });
    mb.addFunction(FuncType({}, {}), "main", [&](FunctionBuilder &f) {
        f.call(source);
        f.i32Const(10);
        f.op(Opcode::I32Add); // taint propagates through arithmetic
        f.call(sink);
    });
    TaintAnalysis taint;
    taint.addSource(source);
    taint.addSink(sink);
    analyze(mb.build(), taint, "main");
    ASSERT_EQ(taint.flows().size(), 1u);
    EXPECT_EQ(taint.flows()[0].sinkFunc, sink);
    EXPECT_EQ(taint.flows()[0].argIndex, 0u);
}

TEST(TaintTest, NoFlowWhenValueIsClean)
{
    ModuleBuilder mb;
    FuncType t({}, {ValType::I32});
    uint32_t source = mb.addFunction(t, "", [](FunctionBuilder &f) {
        f.i32Const(1234);
    });
    uint32_t sink = mb.addFunction(FuncType({ValType::I32}, {}), "",
                                   [](FunctionBuilder &f) {
                                       f.localGet(0);
                                       f.drop();
                                   });
    mb.addFunction(FuncType({}, {}), "main", [&](FunctionBuilder &f) {
        f.call(source);
        f.drop(); // tainted value dropped
        f.i32Const(10);
        f.call(sink); // clean constant reaches the sink
    });
    TaintAnalysis taint;
    taint.addSource(source);
    taint.addSink(sink);
    analyze(mb.build(), taint, "main");
    EXPECT_TRUE(taint.flows().empty());
}

TEST(TaintTest, FlowThroughMemoryShadowing)
{
    // Tainted value stored to memory, loaded back, then passed to the
    // sink — the memory-shadowing use case of §2.3.
    ModuleBuilder mb;
    mb.memory(1);
    FuncType t({}, {ValType::I32});
    uint32_t source = mb.addFunction(t, "", [](FunctionBuilder &f) {
        f.i32Const(42);
    });
    uint32_t sink = mb.addFunction(FuncType({ValType::I32}, {}), "",
                                   [](FunctionBuilder &f) {
                                       f.localGet(0);
                                       f.drop();
                                   });
    mb.addFunction(FuncType({}, {}), "main", [&](FunctionBuilder &f) {
        f.i32Const(64);
        f.call(source);
        f.i32Store(); // mem[64] = tainted
        f.i32Const(64);
        f.i32Load();
        f.call(sink);
    });
    TaintAnalysis taint;
    taint.addSource(source);
    taint.addSink(sink);
    analyze(mb.build(), taint, "main");
    ASSERT_EQ(taint.flows().size(), 1u);
    EXPECT_TRUE(taint.memoryTainted(64, 4));
}

TEST(TaintTest, OverwritingMemoryClearsTaint)
{
    ModuleBuilder mb;
    mb.memory(1);
    FuncType t({}, {ValType::I32});
    uint32_t source = mb.addFunction(t, "", [](FunctionBuilder &f) {
        f.i32Const(42);
    });
    uint32_t sink = mb.addFunction(FuncType({ValType::I32}, {}), "",
                                   [](FunctionBuilder &f) {
                                       f.localGet(0);
                                       f.drop();
                                   });
    mb.addFunction(FuncType({}, {}), "main", [&](FunctionBuilder &f) {
        f.i32Const(64);
        f.call(source);
        f.i32Store();
        f.i32Const(64);
        f.i32Const(0);
        f.i32Store(); // overwrite with a clean constant
        f.i32Const(64);
        f.i32Load();
        f.call(sink);
    });
    TaintAnalysis taint;
    taint.addSource(source);
    taint.addSink(sink);
    analyze(mb.build(), taint, "main");
    EXPECT_TRUE(taint.flows().empty());
    EXPECT_FALSE(taint.memoryTainted(64, 4));
}

TEST(TaintTest, FlowThroughLocalsGlobalsAndCalleeReturn)
{
    ModuleBuilder mb;
    mb.global(ValType::I32, true, Value::makeI32(0));
    FuncType t({}, {ValType::I32});
    uint32_t source = mb.addFunction(t, "", [](FunctionBuilder &f) {
        f.i32Const(7);
    });
    // passthrough(x) = x * 2 — taint flows through the callee.
    uint32_t passthrough = mb.addFunction(
        FuncType({ValType::I32}, {ValType::I32}), "",
        [](FunctionBuilder &f) {
            f.localGet(0);
            f.i32Const(2);
            f.op(Opcode::I32Mul);
        });
    uint32_t sink = mb.addFunction(FuncType({ValType::I32}, {}), "",
                                   [](FunctionBuilder &f) {
                                       f.localGet(0);
                                       f.drop();
                                   });
    mb.addFunction(FuncType({}, {}), "main", [&](FunctionBuilder &f) {
        uint32_t tmp = f.addLocal(ValType::I32);
        f.call(source);
        f.localSet(tmp);      // taint into a local
        f.localGet(tmp);
        f.globalSet(0);       // ... into a global
        f.globalGet(0);
        f.call(passthrough);  // ... through a callee
        f.call(sink);
    });
    TaintAnalysis taint;
    taint.addSource(source);
    taint.addSink(sink);
    analyze(mb.build(), taint, "main");
    ASSERT_EQ(taint.flows().size(), 1u);
    EXPECT_TRUE(taint.globalTainted(0));
}

TEST(TaintTest, SelectPropagatesFromEitherOperand)
{
    ModuleBuilder mb;
    FuncType t({}, {ValType::I32});
    uint32_t source = mb.addFunction(t, "", [](FunctionBuilder &f) {
        f.i32Const(3);
    });
    uint32_t sink = mb.addFunction(FuncType({ValType::I32}, {}), "",
                                   [](FunctionBuilder &f) {
                                       f.localGet(0);
                                       f.drop();
                                   });
    mb.addFunction(FuncType({}, {}), "main", [&](FunctionBuilder &f) {
        f.call(source);
        f.i32Const(5);
        f.i32Const(0); // condition false: picks the clean 5...
        f.select();
        f.call(sink); // ...but conservative taint still flags it
    });
    TaintAnalysis taint;
    taint.addSource(source);
    taint.addSink(sink);
    analyze(mb.build(), taint, "main");
    EXPECT_EQ(taint.flows().size(), 1u);
}

} // namespace
} // namespace wasabi::analyses
