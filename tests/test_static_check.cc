/**
 * @file
 * Tests of the instrumentation-invariant checker (`wasabi check`).
 * Every negative case starts from a genuine instrumenter output that
 * checks clean, applies one targeted tampering, and asserts that the
 * checker reports the specific diagnostic code at the right original
 * location — so each invariant is known to be actually enforced, not
 * vacuously true.
 */

#include <gtest/gtest.h>

#include "core/instrument.h"
#include "static/check.h"
#include "wasm/builder.h"
#include "wasm/validator.h"

namespace wasabi::static_analysis {
namespace {

using core::HookKind;
using core::HookSet;
using core::InstrumentResult;
using core::Location;
using core::packLoc;
using wasm::FuncType;
using wasm::FunctionBuilder;
using wasm::Instr;
using wasm::Module;
using wasm::ModuleBuilder;
using wasm::Opcode;
using wasm::ValType;

Module
singleFunction(const FuncType &type,
               const std::function<void(FunctionBuilder &)> &fill)
{
    ModuleBuilder mb;
    mb.addFunction(type, "f", fill);
    Module m = mb.build();
    wasm::validateModule(m);
    return m;
}

/** Function index of the hook import with the given mangled name. */
std::optional<uint32_t>
hookImport(const Module &m, const std::string &name)
{
    for (uint32_t i = 0; i < m.numFunctions(); ++i) {
        if (m.functions[i].imported() && m.functions[i].import->name == name)
            return i;
    }
    return std::nullopt;
}

/** Index of the first `call` to @p callee in @p body. */
std::optional<size_t>
findCall(const std::vector<Instr> &body, uint32_t callee)
{
    for (size_t i = 0; i < body.size(); ++i) {
        if (body[i].op == Opcode::Call && body[i].imm.idx == callee)
            return i;
    }
    return std::nullopt;
}

const Diagnostic *
findCode(const Diagnostics &ds, const std::string &code)
{
    for (const Diagnostic &d : ds.all()) {
        if (d.code == code)
            return &d;
    }
    return nullptr;
}

/** Instrument and require a clean bill of health on both check paths
 * (with metadata and two-binary); returns the result for tampering. */
InstrumentResult
instrumentClean(const Module &orig, HookSet hooks)
{
    InstrumentResult r = core::instrument(orig, hooks);
    Diagnostics with_info = checkInstrumentation(*r.info, r.module);
    EXPECT_TRUE(with_info.empty()) << toString(with_info);
    Diagnostics two_binary = checkInstrumentation(orig, r.module);
    EXPECT_TRUE(two_binary.empty()) << toString(two_binary);
    return r;
}

TEST(Check, MissingHookCallIsReported)
{
    Module orig = singleFunction(
        FuncType({}, {}), [](FunctionBuilder &f) { f.nop(); });
    InstrumentResult r = instrumentClean(orig, {HookKind::Nop});

    // Strip the hook call (two location consts + the call) from the
    // defined function, leaving the original [nop, end] body.
    std::vector<Instr> &body = r.module.functions.back().body;
    ASSERT_GE(body.size(), 5u);
    body.erase(body.begin(), body.begin() + 3);

    Diagnostics d = checkInstrumentation(*r.info, r.module);
    const Diagnostic *miss = findCode(d, "check.selective.missing-hook");
    ASSERT_NE(miss, nullptr) << toString(d);
    EXPECT_EQ(miss->func, std::optional<uint32_t>(0));
    EXPECT_EQ(miss->instr, std::optional<uint32_t>(0));
}

TEST(Check, TamperedLocationConstantIsKindMismatch)
{
    Module orig = singleFunction(
        FuncType({}, {}), [](FunctionBuilder &f) { f.nop(); });
    InstrumentResult r = instrumentClean(orig, {HookKind::Nop, HookKind::End});

    // Redirect the nop hook's instruction-index constant from the nop
    // (instr 0) to the function's final `end` (instr 1): the hook's
    // kind no longer matches the instruction class at its location.
    std::optional<uint32_t> h = hookImport(r.module, "nop");
    ASSERT_TRUE(h.has_value());
    std::vector<Instr> &body = r.module.functions.back().body;
    std::optional<size_t> call = findCall(body, *h);
    ASSERT_TRUE(call.has_value());
    ASSERT_EQ(body[*call - 1].op, Opcode::I32Const);
    body[*call - 1].imm.i32v = 1;

    Diagnostics d = checkInstrumentation(*r.info, r.module);
    const Diagnostic *mis = findCode(d, "check.selective.kind-mismatch");
    ASSERT_NE(mis, nullptr) << toString(d);
    EXPECT_EQ(mis->instr, std::optional<uint32_t>(1));
    // The nop at instr 0 lost its hook call, too.
    EXPECT_NE(findCode(d, "check.selective.missing-hook"), nullptr);
}

TEST(Check, TamperedEndHookBeginArgument)
{
    Module orig = singleFunction(FuncType({}, {}), [](FunctionBuilder &f) {
        f.block();
        f.nop();
        f.end();
    });
    InstrumentResult r =
        instrumentClean(orig, {HookKind::Begin, HookKind::End});

    // The end_block hook carries (func, instr, begin); point the begin
    // argument at the wrong instruction.
    std::optional<uint32_t> h = hookImport(r.module, "end_block");
    ASSERT_TRUE(h.has_value());
    std::vector<Instr> &body = r.module.functions.back().body;
    std::optional<size_t> call = findCall(body, *h);
    ASSERT_TRUE(call.has_value());
    ASSERT_EQ(body[*call - 1].op, Opcode::I32Const);
    ASSERT_EQ(body[*call - 1].imm.i32v, 0u); // block begins at instr 0
    body[*call - 1].imm.i32v = 1;

    Diagnostics d = checkInstrumentation(*r.info, r.module);
    const Diagnostic *wrong = findCode(d, "check.end.wrong-begin");
    ASSERT_NE(wrong, nullptr) << toString(d);
    EXPECT_EQ(wrong->func, std::optional<uint32_t>(0));
    EXPECT_EQ(wrong->instr, std::optional<uint32_t>(2));
}

TEST(Check, TamperedI64ConstHalves)
{
    Module orig = singleFunction(FuncType({}, {}), [](FunctionBuilder &f) {
        f.i64Const(5).drop();
    });
    InstrumentResult r = instrumentClean(orig, {HookKind::Const});

    // The i64.const hook receives the constant statically split into
    // (low, high) i32 halves; corrupt the high half.
    std::optional<uint32_t> h = hookImport(r.module, "i64.const");
    ASSERT_TRUE(h.has_value());
    std::vector<Instr> &body = r.module.functions.back().body;
    std::optional<size_t> call = findCall(body, *h);
    ASSERT_TRUE(call.has_value());
    ASSERT_EQ(body[*call - 1].op, Opcode::I32Const);
    body[*call - 1].imm.i32v = 7;

    Diagnostics d = checkInstrumentation(*r.info, r.module);
    const Diagnostic *halves = findCode(d, "check.i64.const-halves");
    ASSERT_NE(halves, nullptr) << toString(d);
    EXPECT_EQ(halves->instr, std::optional<uint32_t>(0));
}

TEST(Check, BrokenI64SplitSequence)
{
    Module orig = singleFunction(FuncType({}, {}), [](FunctionBuilder &f) {
        f.i64Const(5).drop();
    });
    InstrumentResult r = instrumentClean(orig, {HookKind::Drop});

    // The dropped i64 travels as local.get; i32.wrap_i64; local.get;
    // i64.const 32; i64.shr_u; i32.wrap_i64. Break the shift amount so
    // the high half is no longer derived from the same value.
    std::vector<Instr> &body = r.module.functions.back().body;
    bool tampered = false;
    for (Instr &in : body) {
        if (in.op == Opcode::I64Const && in.imm.i64v == 32) {
            in.imm.i64v = 16;
            tampered = true;
            break;
        }
    }
    ASSERT_TRUE(tampered);

    Diagnostics d = checkInstrumentation(*r.info, r.module);
    const Diagnostic *unsplit = findCode(d, "check.i64.unsplit");
    ASSERT_NE(unsplit, nullptr) << toString(d);
    EXPECT_EQ(unsplit->instr, std::optional<uint32_t>(1)); // the drop
}

TEST(Check, HookImportTypeMismatch)
{
    Module orig = singleFunction(
        FuncType({}, {}), [](FunctionBuilder &f) { f.nop(); });
    InstrumentResult r = instrumentClean(orig, {HookKind::Nop});

    std::optional<uint32_t> h = hookImport(r.module, "nop");
    ASSERT_TRUE(h.has_value());
    r.module.functions[*h].typeIdx =
        r.module.addType(FuncType({ValType::I32}, {}));

    Diagnostics d = checkInstrumentation(*r.info, r.module);
    EXPECT_TRUE(d.hasCode("check.hooks.bad-type")) << toString(d);
}

TEST(Check, UnknownAndDuplicateHookImports)
{
    Module orig = singleFunction(
        FuncType({}, {}), [](FunctionBuilder &f) { f.nop(); });
    InstrumentResult r = instrumentClean(orig, {HookKind::Nop, HookKind::End});

    Module bogus = r.module;
    std::optional<uint32_t> h = hookImport(bogus, "end_function");
    ASSERT_TRUE(h.has_value());
    bogus.functions[*h].import->name = "definitely_not_a_hook";
    Diagnostics d1 = checkInstrumentation(orig, bogus);
    EXPECT_TRUE(d1.hasCode("check.hooks.unknown-import")) << toString(d1);

    Module dup = r.module;
    dup.functions[*h].import->name = "nop"; // now imported twice
    Diagnostics d2 = checkInstrumentation(orig, dup);
    EXPECT_TRUE(d2.hasCode("check.hooks.duplicate")) << toString(d2);
}

TEST(Check, DisabledKindDetectedViaExplicitHookSet)
{
    Module orig = singleFunction(FuncType({}, {}), [](FunctionBuilder &f) {
        f.nop();
        f.i32Const(1).drop();
    });
    InstrumentResult r =
        instrumentClean(orig, {HookKind::Nop, HookKind::Const});

    // Claim only `nop` was enabled: the const hook import and its call
    // site both violate selective instrumentation.
    CheckOptions opts;
    opts.hooks = HookSet{HookKind::Nop};
    Diagnostics d = checkInstrumentation(orig, r.module, opts);
    EXPECT_TRUE(d.hasCode("check.selective.disabled-kind-import"))
        << toString(d);
    const Diagnostic *site =
        findCode(d, "check.selective.disabled-kind-site");
    ASSERT_NE(site, nullptr) << toString(d);
    EXPECT_EQ(site->instr, std::optional<uint32_t>(1)); // the i32.const
}

TEST(Check, StructuralTampering)
{
    Module orig = singleFunction(
        FuncType({}, {}), [](FunctionBuilder &f) { f.nop(); });
    InstrumentResult r = instrumentClean(orig, {HookKind::Nop});

    Module unexported = r.module;
    unexported.functions.back().exportNames.clear();
    Diagnostics d1 = checkInstrumentation(*r.info, unexported);
    const Diagnostic *exp = findCode(d1, "check.structure.exports");
    ASSERT_NE(exp, nullptr) << toString(d1);
    EXPECT_EQ(exp->func, std::optional<uint32_t>(0));

    Module truncated = r.module;
    truncated.functions.pop_back();
    Diagnostics d2 = checkInstrumentation(*r.info, truncated);
    EXPECT_TRUE(d2.hasCode("check.structure.function-count"))
        << toString(d2);
}

TEST(Check, MismatchedModulePairReportsInsteadOfCrashing)
{
    // An instrumented binary from a completely different (and larger)
    // original: every recovered site points into the wrong index
    // space; the checker must diagnose, not walk out of bounds.
    ModuleBuilder mb;
    for (int i = 0; i < 3; ++i) {
        mb.addFunction(FuncType({}, {}), i == 0 ? "main" : "",
                       [&](FunctionBuilder &f) {
                           f.i32Const(i).drop();
                           if (i < 2)
                               f.call(static_cast<uint32_t>(i) + 1);
                       });
    }
    Module other = mb.build();
    wasm::validateModule(other);
    InstrumentResult r = core::instrument(other, HookSet::all());

    Module orig = singleFunction(
        FuncType({}, {}), [](FunctionBuilder &f) { f.nop(); });
    Diagnostics d = checkInstrumentation(orig, r.module);
    EXPECT_FALSE(d.empty());
    EXPECT_TRUE(d.hasCode("check.structure.function-count")) << toString(d);
}

TEST(Check, InvalidOriginalIsRejected)
{
    Module bad;
    bad.types.push_back(FuncType({}, {}));
    wasm::Function f;
    f.typeIdx = 7; // out of range
    bad.functions.push_back(f);

    Diagnostics d = checkInstrumentation(bad, bad);
    EXPECT_TRUE(d.hasCode("check.input.invalid-original")) << toString(d);
}

TEST(Check, TamperedBrTargetMetadata)
{
    Module orig = singleFunction(FuncType({}, {}), [](FunctionBuilder &f) {
        f.block();
        f.br(0);
        f.end();
    });
    InstrumentResult r = instrumentClean(orig, {HookKind::Br});

    // Shift the recorded branch destination of the br at (0, 1).
    core::StaticInfo info = *r.info;
    auto it = info.brTargets.find(packLoc(Location{0, 1}));
    ASSERT_NE(it, info.brTargets.end());
    it->second.location.instr += 1;
    Diagnostics d1 = checkInstrumentation(info, r.module);
    const Diagnostic *bt = findCode(d1, "check.sidetable.br-target");
    ASSERT_NE(bt, nullptr) << toString(d1);
    EXPECT_EQ(bt->instr, std::optional<uint32_t>(1));

    // Dropping the record entirely is reported at the same location.
    info = *r.info;
    info.brTargets.erase(packLoc(Location{0, 1}));
    Diagnostics d2 = checkInstrumentation(info, r.module);
    EXPECT_TRUE(d2.hasCode("check.sidetable.br-target")) << toString(d2);
}

TEST(Check, TamperedBrTableSideTable)
{
    Module orig = singleFunction(
        FuncType({ValType::I32}, {}), [](FunctionBuilder &f) {
            f.block().block();
            f.localGet(0).brTable({0}, 1);
            f.end().end();
        });
    // Body: 0 block / 1 block / 2 get / 3 br_table / 4 end / 5 end / 6 end.
    InstrumentResult r = instrumentClean(orig, {HookKind::BrTable});
    const uint64_t key = packLoc(Location{0, 3});

    core::StaticInfo info = *r.info;
    auto it = info.brTables.find(key);
    ASSERT_NE(it, info.brTables.end());
    ASSERT_EQ(it->second.cases.size(), 1u);
    it->second.cases[0].target.location.instr += 1;
    Diagnostics d1 = checkInstrumentation(info, r.module);
    const Diagnostic *entry = findCode(d1, "check.sidetable.entry");
    ASSERT_NE(entry, nullptr) << toString(d1);
    EXPECT_EQ(entry->instr, std::optional<uint32_t>(3));

    info = *r.info;
    info.brTables.at(key).cases.clear();
    Diagnostics d2 = checkInstrumentation(info, r.module);
    EXPECT_TRUE(d2.hasCode("check.sidetable.case-count")) << toString(d2);

    info = *r.info;
    info.brTables.erase(key);
    Diagnostics d3 = checkInstrumentation(info, r.module);
    const Diagnostic *miss = findCode(d3, "check.sidetable.missing");
    ASSERT_NE(miss, nullptr) << toString(d3);
    EXPECT_EQ(miss->instr, std::optional<uint32_t>(3));

    info = *r.info;
    ASSERT_EQ(info.blockEnds.erase(packLoc(Location{0, 4})), 1u);
    Diagnostics d4 = checkInstrumentation(info, r.module);
    const Diagnostic *be = findCode(d4, "check.sidetable.block-end");
    ASSERT_NE(be, nullptr) << toString(d4);
    EXPECT_EQ(be->instr, std::optional<uint32_t>(4));
}

TEST(Check, CleanAcrossControlFlowShapes)
{
    // A function exercising if/else, loops, br_if, br_table, return
    // and i64 flows all at once, checked with every hook enabled.
    ModuleBuilder mb;
    FunctionBuilder f = mb.startFunction(
        FuncType({ValType::I32}, {ValType::I64}), "main");
    uint32_t acc = f.addLocal(ValType::I64);
    f.localGet(0).if_();
    f.i64Const(1).localSet(acc);
    f.else_();
    f.i64Const(2).localSet(acc);
    f.end();
    f.block().loop();
    f.localGet(0).i32Const(1).op(Opcode::I32Sub).localTee(0);
    f.brIf(0);
    f.localGet(0).brTable({0, 1}, 1);
    f.end().end();
    f.localGet(acc);
    f.finish();
    Module orig = mb.build();
    wasm::validateModule(orig);

    instrumentClean(orig, HookSet::all());
    instrumentClean(orig, {HookKind::Begin, HookKind::End});
    instrumentClean(orig, {HookKind::Br, HookKind::BrIf, HookKind::BrTable});
}

} // namespace
} // namespace wasabi::static_analysis
