/**
 * @file
 * Interpreter tests for linear memory, globals, locals, tables,
 * function calls (direct, indirect, host imports) and instantiation.
 */

#include <gtest/gtest.h>

#include "interp/interpreter.h"
#include "wasm/builder.h"
#include "wasm/validator.h"

namespace wasabi::interp {
namespace {

using wasm::FuncType;
using wasm::FunctionBuilder;
using wasm::ModuleBuilder;
using wasm::Opcode;
using wasm::Value;
using wasm::ValType;

TEST(InterpMemory, StoreThenLoadRoundtrips)
{
    ModuleBuilder mb;
    mb.memory(1);
    mb.addFunction(FuncType({}, {ValType::I32}), "f",
                   [](FunctionBuilder &f) {
                       f.i32Const(16);
                       f.i32Const(0xDEADBEEF);
                       f.i32Store();
                       f.i32Const(16);
                       f.i32Load();
                   });
    auto inst = Instance::instantiate(mb.build(), Linker());
    Interpreter interp;
    EXPECT_EQ(interp.invokeExport(*inst, "f", {})[0].i32(), 0xDEADBEEFu);
}

TEST(InterpMemory, NarrowLoadsSignAndZeroExtend)
{
    ModuleBuilder mb;
    mb.memory(1);
    // Store 0xFF at address 0, then read it back four ways.
    auto make = [&](const char *name, Opcode load_op) {
        mb.addFunction(FuncType({}, {ValType::I32}), name,
                       [&](FunctionBuilder &f) {
                           f.i32Const(0);
                           f.i32Const(0xFF);
                           f.store(Opcode::I32Store8);
                           f.i32Const(0);
                           f.load(load_op);
                       });
    };
    make("s8", Opcode::I32Load8S);
    make("u8", Opcode::I32Load8U);
    auto inst = Instance::instantiate(mb.build(), Linker());
    Interpreter interp;
    EXPECT_EQ(interp.invokeExport(*inst, "s8", {})[0].i32s(), -1);
    EXPECT_EQ(interp.invokeExport(*inst, "u8", {})[0].i32(), 0xFFu);
}

TEST(InterpMemory, I64NarrowAccesses)
{
    ModuleBuilder mb;
    mb.memory(1);
    mb.addFunction(FuncType({}, {ValType::I64}), "f",
                   [](FunctionBuilder &f) {
                       f.i32Const(8);
                       f.i64Const(-2); // 0xFFFF...FE
                       f.store(Opcode::I64Store32);
                       f.i32Const(8);
                       f.load(Opcode::I64Load32S);
                   });
    auto inst = Instance::instantiate(mb.build(), Linker());
    Interpreter interp;
    EXPECT_EQ(interp.invokeExport(*inst, "f", {})[0].i64s(), -2);
}

TEST(InterpMemory, LittleEndianLayout)
{
    ModuleBuilder mb;
    mb.memory(1);
    mb.addFunction(FuncType({}, {ValType::I32}), "f",
                   [](FunctionBuilder &f) {
                       f.i32Const(0);
                       f.i32Const(0x11223344);
                       f.i32Store();
                       f.i32Const(0);
                       f.load(Opcode::I32Load8U); // lowest byte first
                   });
    auto inst = Instance::instantiate(mb.build(), Linker());
    Interpreter interp;
    EXPECT_EQ(interp.invokeExport(*inst, "f", {})[0].i32(), 0x44u);
}

TEST(InterpMemory, OutOfBoundsTraps)
{
    ModuleBuilder mb;
    mb.memory(1); // 64 KiB
    mb.addFunction(FuncType({ValType::I32}, {ValType::I32}), "f",
                   [](FunctionBuilder &f) {
                       f.localGet(0);
                       f.i32Load();
                   });
    auto inst = Instance::instantiate(mb.build(), Linker());
    Interpreter interp;
    // Last valid 4-byte access is at 65532.
    std::vector<Value> ok{Value::makeI32(65532)};
    EXPECT_NO_THROW(interp.invokeExport(*inst, "f", ok));
    std::vector<Value> bad{Value::makeI32(65533)};
    try {
        interp.invokeExport(*inst, "f", bad);
        FAIL();
    } catch (const Trap &t) {
        EXPECT_EQ(t.kind(), TrapKind::MemoryOutOfBounds);
    }
}

TEST(InterpMemory, OffsetAdditionDoesNotWrap)
{
    ModuleBuilder mb;
    mb.memory(1);
    mb.addFunction(FuncType({}, {ValType::I32}), "f",
                   [](FunctionBuilder &f) {
                       f.i32Const(static_cast<int32_t>(0xFFFFFFFC));
                       f.i32Load(8); // 0xFFFFFFFC + 8 must not wrap
                   });
    auto inst = Instance::instantiate(mb.build(), Linker());
    Interpreter interp;
    EXPECT_THROW(interp.invokeExport(*inst, "f", {}), Trap);
}

TEST(InterpMemory, GrowReturnsPreviousSizeAndZeroFills)
{
    ModuleBuilder mb;
    mb.memory(1, 4);
    mb.addFunction(FuncType({ValType::I32}, {ValType::I32}), "grow",
                   [](FunctionBuilder &f) {
                       f.localGet(0);
                       f.op(Opcode::MemoryGrow);
                   });
    mb.addFunction(FuncType({}, {ValType::I32}), "size",
                   [](FunctionBuilder &f) { f.op(Opcode::MemorySize); });
    auto inst = Instance::instantiate(mb.build(), Linker());
    Interpreter interp;
    EXPECT_EQ(interp.invokeExport(*inst, "size", {})[0].i32(), 1u);
    std::vector<Value> one{Value::makeI32(2)};
    EXPECT_EQ(interp.invokeExport(*inst, "grow", one)[0].i32(), 1u);
    EXPECT_EQ(interp.invokeExport(*inst, "size", {})[0].i32(), 3u);
    // Growing beyond max fails with -1.
    std::vector<Value> too_much{Value::makeI32(5)};
    EXPECT_EQ(interp.invokeExport(*inst, "grow", too_much)[0].i32(),
              0xFFFFFFFFu);
}

TEST(InterpMemory, DataSegmentsInitializeMemory)
{
    ModuleBuilder mb;
    mb.memory(1);
    mb.data(10, {0x01, 0x02, 0x03, 0x04});
    mb.addFunction(FuncType({}, {ValType::I32}), "f",
                   [](FunctionBuilder &f) {
                       f.i32Const(10);
                       f.i32Load();
                   });
    auto inst = Instance::instantiate(mb.build(), Linker());
    Interpreter interp;
    EXPECT_EQ(interp.invokeExport(*inst, "f", {})[0].i32(), 0x04030201u);
}

TEST(InterpMemory, GlobalsReadAndWrite)
{
    ModuleBuilder mb;
    mb.global(ValType::I64, true, Value::makeI64(5));
    mb.addFunction(FuncType({}, {ValType::I64}), "bump",
                   [](FunctionBuilder &f) {
                       f.globalGet(0);
                       f.i64Const(1);
                       f.op(Opcode::I64Add);
                       f.globalSet(0);
                       f.globalGet(0);
                   });
    auto inst = Instance::instantiate(mb.build(), Linker());
    Interpreter interp;
    EXPECT_EQ(interp.invokeExport(*inst, "bump", {})[0].i64(), 6u);
    EXPECT_EQ(interp.invokeExport(*inst, "bump", {})[0].i64(), 7u);
}

TEST(InterpCalls, DirectCallPassesArgsAndResults)
{
    ModuleBuilder mb;
    uint32_t add = mb.addFunction(
        FuncType({ValType::I32, ValType::I32}, {ValType::I32}), "",
        [](FunctionBuilder &f) {
            f.localGet(0).localGet(1).op(Opcode::I32Add);
        });
    mb.addFunction(FuncType({}, {ValType::I32}), "f",
                   [&](FunctionBuilder &f) {
                       f.i32Const(30);
                       f.i32Const(12);
                       f.call(add);
                   });
    auto inst = Instance::instantiate(mb.build(), Linker());
    Interpreter interp;
    EXPECT_EQ(interp.invokeExport(*inst, "f", {})[0].i32(), 42u);
}

TEST(InterpCalls, RecursiveFibonacci)
{
    ModuleBuilder mb;
    FunctionBuilder fb =
        mb.startFunction(FuncType({ValType::I32}, {ValType::I32}), "fib");
    fb.localGet(0);
    fb.i32Const(2);
    fb.op(Opcode::I32LtU);
    fb.if_(ValType::I32);
    fb.localGet(0);
    fb.else_();
    fb.localGet(0).i32Const(1).op(Opcode::I32Sub).call(0);
    fb.localGet(0).i32Const(2).op(Opcode::I32Sub).call(0);
    fb.op(Opcode::I32Add);
    fb.end();
    fb.finish();
    auto inst = Instance::instantiate(mb.build(), Linker());
    Interpreter interp;
    std::vector<Value> args{Value::makeI32(15)};
    EXPECT_EQ(interp.invokeExport(*inst, "fib", args)[0].i32(), 610u);
}

TEST(InterpCalls, IndirectCallThroughTable)
{
    ModuleBuilder mb;
    mb.table(2, 2);
    FuncType unary({ValType::I32}, {ValType::I32});
    uint32_t dbl = mb.addFunction(unary, "", [](FunctionBuilder &f) {
        f.localGet(0).i32Const(2).op(Opcode::I32Mul);
    });
    uint32_t sqr = mb.addFunction(unary, "", [](FunctionBuilder &f) {
        f.localGet(0).localGet(0).op(Opcode::I32Mul);
    });
    mb.elem(0, {dbl, sqr});
    mb.addFunction(FuncType({ValType::I32, ValType::I32}, {ValType::I32}),
                   "dispatch", [&](FunctionBuilder &f) {
                       f.localGet(0); // argument
                       f.localGet(1); // table index
                       f.callIndirect(mb.type(unary));
                   });
    auto inst = Instance::instantiate(mb.build(), Linker());
    Interpreter interp;
    std::vector<Value> a{Value::makeI32(7), Value::makeI32(0)};
    EXPECT_EQ(interp.invokeExport(*inst, "dispatch", a)[0].i32(), 14u);
    std::vector<Value> b{Value::makeI32(7), Value::makeI32(1)};
    EXPECT_EQ(interp.invokeExport(*inst, "dispatch", b)[0].i32(), 49u);
}

TEST(InterpCalls, IndirectCallTypeMismatchTraps)
{
    ModuleBuilder mb;
    mb.table(1, 1);
    FuncType nullary({}, {});
    FuncType unary({ValType::I32}, {ValType::I32});
    uint32_t f0 =
        mb.addFunction(nullary, "", [](FunctionBuilder &) {});
    mb.elem(0, {f0});
    mb.addFunction(FuncType({}, {ValType::I32}), "f",
                   [&](FunctionBuilder &f) {
                       f.i32Const(1);
                       f.i32Const(0);
                       f.callIndirect(mb.type(unary));
                   });
    auto inst = Instance::instantiate(mb.build(), Linker());
    Interpreter interp;
    try {
        interp.invokeExport(*inst, "f", {});
        FAIL();
    } catch (const Trap &t) {
        EXPECT_EQ(t.kind(), TrapKind::IndirectCallTypeMismatch);
    }
}

TEST(InterpCalls, UninitializedTableEntryTraps)
{
    ModuleBuilder mb;
    mb.table(4, 4);
    FuncType nullary({}, {});
    mb.addFunction(nullary, "f", [&](FunctionBuilder &f) {
        f.i32Const(2); // never initialized
        f.callIndirect(mb.type(nullary));
    });
    auto inst = Instance::instantiate(mb.build(), Linker());
    Interpreter interp;
    try {
        interp.invokeExport(*inst, "f", {});
        FAIL();
    } catch (const Trap &t) {
        EXPECT_EQ(t.kind(), TrapKind::UninitializedTableElement);
    }
}

TEST(InterpCalls, TableIndexOutOfBoundsTraps)
{
    ModuleBuilder mb;
    mb.table(1, 1);
    FuncType nullary({}, {});
    mb.addFunction(nullary, "f", [&](FunctionBuilder &f) {
        f.i32Const(100);
        f.callIndirect(mb.type(nullary));
    });
    auto inst = Instance::instantiate(mb.build(), Linker());
    Interpreter interp;
    EXPECT_THROW(interp.invokeExport(*inst, "f", {}), Trap);
}

TEST(InterpCalls, HostFunctionReceivesArgsReturnsResults)
{
    ModuleBuilder mb;
    uint32_t host = mb.importFunction(
        "env", "add10", FuncType({ValType::I32}, {ValType::I32}));
    mb.addFunction(FuncType({}, {ValType::I32}), "f",
                   [&](FunctionBuilder &f) {
                       f.i32Const(32);
                       f.call(host);
                   });
    Linker linker;
    int call_count = 0;
    linker.func("env", "add10",
                [&](Instance &, std::span<const Value> args,
                    std::vector<Value> &results) {
                    ++call_count;
                    results.push_back(
                        Value::makeI32(args[0].i32() + 10));
                });
    auto inst = Instance::instantiate(mb.build(), linker);
    Interpreter interp;
    EXPECT_EQ(interp.invokeExport(*inst, "f", {})[0].i32(), 42u);
    EXPECT_EQ(call_count, 1);
}

TEST(InterpCalls, MissingImportFailsLink)
{
    ModuleBuilder mb;
    mb.importFunction("env", "missing", FuncType({}, {}));
    EXPECT_THROW(Instance::instantiate(mb.build(), Linker()), LinkError);
}

TEST(InterpCalls, StartFunctionRunsAtInstantiation)
{
    ModuleBuilder mb;
    mb.global(ValType::I32, true, Value::makeI32(0), "flag");
    uint32_t s = mb.addFunction(FuncType({}, {}), "",
                                [](FunctionBuilder &f) {
                                    f.i32Const(123);
                                    f.globalSet(0);
                                });
    mb.start(s);
    auto inst = Instance::instantiate(mb.build(), Linker());
    EXPECT_EQ(inst->globalGet(0).i32(), 123u);
}

TEST(InterpCalls, LocalsAreZeroInitialized)
{
    ModuleBuilder mb;
    FunctionBuilder fb =
        mb.startFunction(FuncType({}, {ValType::F64}), "f");
    uint32_t l = fb.addLocal(ValType::F64);
    fb.localGet(l);
    fb.finish();
    auto inst = Instance::instantiate(mb.build(), Linker());
    Interpreter interp;
    EXPECT_EQ(interp.invokeExport(*inst, "f", {})[0], Value::makeF64(0.0));
}

TEST(InterpMemory, DataSegmentOutOfBoundsTrapsAtInstantiation)
{
    ModuleBuilder mb;
    mb.memory(1);
    mb.data(wasm::kPageSize - 2, {1, 2, 3, 4});
    EXPECT_THROW(Instance::instantiate(mb.build(), Linker()), Trap);
}

} // namespace
} // namespace wasabi::interp
