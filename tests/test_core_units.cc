/**
 * @file
 * Unit tests for the core building blocks: HookSet, HookSpec mangling
 * and low-level types, the thread-safe on-demand monomorphization map
 * (including a concurrency stress test), block matching, and the
 * abstract control/type stack.
 */

#include <gtest/gtest.h>

#include <thread>

#include "core/control_stack.h"
#include "core/hook_map.h"
#include "core/static_info.h"
#include "wasm/builder.h"

namespace wasabi::core {
namespace {

using wasm::FuncType;
using wasm::FunctionBuilder;
using wasm::ModuleBuilder;
using wasm::Opcode;
using wasm::ValType;

// ---------------------------------------------------------------------
// HookSet.

TEST(HookSetTest, BasicSetOperations)
{
    HookSet s;
    EXPECT_TRUE(s.empty());
    s.add(HookKind::Binary);
    s.add(HookKind::Load);
    EXPECT_TRUE(s.has(HookKind::Binary));
    EXPECT_FALSE(s.has(HookKind::Store));
    EXPECT_EQ(s.count(), 2);
    s.remove(HookKind::Binary);
    EXPECT_FALSE(s.has(HookKind::Binary));
    EXPECT_EQ(HookSet::all().count(), kNumHookKinds);
    EXPECT_EQ((HookSet::only(HookKind::Br) | HookSet::only(HookKind::BrIf))
                  .count(),
              2);
}

TEST(HookSetTest, ToStringUsesFigureNames)
{
    HookSet s{HookKind::MemorySize, HookKind::BrTable};
    EXPECT_EQ(s.toString(), "memory_size,br_table");
}

TEST(HookSetTest, FigureOrderHas21Kinds)
{
    EXPECT_EQ(figureOrderHookKinds().size(), 21u);
    EXPECT_EQ(figureOrderHookKinds().front(), HookKind::Nop);
    EXPECT_EQ(figureOrderHookKinds().back(), HookKind::BrTable);
}

// ---------------------------------------------------------------------
// HookSpec mangling and low-level types.

TEST(HookSpecTest, MangledNamesAreDescriptive)
{
    EXPECT_EQ(mangledName({.kind = HookKind::Const, .op = Opcode::I32Const}),
              "i32.const");
    EXPECT_EQ(mangledName({.kind = HookKind::Drop,
                           .types = {ValType::F64}}),
              "drop_f64");
    EXPECT_EQ(mangledName({.kind = HookKind::Call,
                           .types = {ValType::I32, ValType::F64}}),
              "call_pre_i32_f64");
    EXPECT_EQ(mangledName({.kind = HookKind::Call,
                           .types = {ValType::I32, ValType::F64},
                           .indirect = true}),
              "call_pre_indirect_i32_f64");
    EXPECT_EQ(mangledName({.kind = HookKind::Call,
                           .types = {ValType::I64},
                           .post = true}),
              "call_post_i64");
    EXPECT_EQ(mangledName({.kind = HookKind::Local,
                           .op = Opcode::LocalGet,
                           .types = {ValType::F32}}),
              "local.get_f32");
    EXPECT_EQ(mangledName({.kind = HookKind::Begin,
                           .block = BlockKind::Loop}),
              "begin_loop");
    EXPECT_EQ(mangledName({.kind = HookKind::End,
                           .block = BlockKind::Else}),
              "end_else");
}

TEST(HookSpecTest, LowLevelTypesStartWithLocation)
{
    FuncType t = lowLevelType({.kind = HookKind::Nop}, true);
    ASSERT_EQ(t.params.size(), 2u);
    EXPECT_EQ(t.params[0], ValType::I32);
    EXPECT_EQ(t.params[1], ValType::I32);
    EXPECT_TRUE(t.results.empty());
}

TEST(HookSpecTest, I64SplitDoublesParameters)
{
    HookSpec spec{.kind = HookKind::Binary, .op = Opcode::I64Add};
    FuncType split = lowLevelType(spec, true);
    // loc(2) + 3 i64 values as (lo, hi) pairs.
    EXPECT_EQ(split.params.size(), 2u + 3u * 2u);
    for (ValType p : split.params)
        EXPECT_EQ(p, ValType::I32);
    FuncType native = lowLevelType(spec, false);
    EXPECT_EQ(native.params.size(), 2u + 3u);
    EXPECT_EQ(native.params[2], ValType::I64);
}

TEST(HookSpecTest, EndHookCarriesBeginParameter)
{
    FuncType t = lowLevelType(
        {.kind = HookKind::End, .block = BlockKind::Block}, true);
    EXPECT_EQ(t.params.size(), 3u); // loc + begin index
}

TEST(HookSpecTest, SelectAndStoreTypes)
{
    FuncType sel = lowLevelType(
        {.kind = HookKind::Select, .types = {ValType::F32}}, true);
    ASSERT_EQ(sel.params.size(), 5u);
    EXPECT_EQ(sel.params[2], ValType::I32); // condition
    EXPECT_EQ(sel.params[3], ValType::F32);
    EXPECT_EQ(sel.params[4], ValType::F32);

    FuncType st = lowLevelType(
        {.kind = HookKind::Store, .op = Opcode::F64Store}, true);
    ASSERT_EQ(st.params.size(), 4u);
    EXPECT_EQ(st.params[2], ValType::I32); // address
    EXPECT_EQ(st.params[3], ValType::F64); // value
}

// ---------------------------------------------------------------------
// HookMap.

TEST(HookMapTest, DeduplicatesByMangledName)
{
    HookMap map;
    uint32_t a = map.getOrAdd({.kind = HookKind::Drop,
                               .types = {ValType::I32}});
    uint32_t b = map.getOrAdd({.kind = HookKind::Drop,
                               .types = {ValType::F64}});
    uint32_t c = map.getOrAdd({.kind = HookKind::Drop,
                               .types = {ValType::I32}});
    EXPECT_EQ(a, c);
    EXPECT_NE(a, b);
    EXPECT_EQ(map.size(), 2u);
}

TEST(HookMapTest, ConcurrentGetOrAddIsConsistent)
{
    HookMap map;
    constexpr int kThreads = 8;
    constexpr int kSpecs = 64;
    std::vector<std::vector<uint32_t>> ids(kThreads,
                                           std::vector<uint32_t>(kSpecs));
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&map, &ids, t]() {
            for (int s = 0; s < kSpecs; ++s) {
                HookSpec spec{.kind = HookKind::Call,
                              .types = std::vector<ValType>(
                                  s % 5, static_cast<ValType>(s % 4)),
                              .post = (s % 2) == 0};
                ids[t][s] = map.getOrAdd(spec);
            }
        });
    }
    for (auto &th : threads)
        th.join();
    // Every thread must have observed the same id for the same spec.
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(ids[t], ids[0]);
    // And ids are dense.
    EXPECT_LE(map.size(), static_cast<uint32_t>(kSpecs));
    for (uint32_t id : ids[0])
        EXPECT_LT(id, map.size());
}

// ---------------------------------------------------------------------
// Block matching and the abstract state.

TEST(MatchBlocksTest, FindsEndsAndElses)
{
    ModuleBuilder mb;
    FunctionBuilder fb = mb.startFunction(FuncType({ValType::I32}, {}));
    fb.block();        // @0
    fb.localGet(0);    // @1
    fb.if_();          // @2
    fb.nop();          // @3
    fb.else_();        // @4
    fb.nop();          // @5
    fb.end();          // @6 (if)
    fb.end();          // @7 (block)
    fb.finish();       // @8 (function end)
    const auto &body = mb.module().functions[0].body;
    auto matches = matchBlocks(body);
    EXPECT_EQ(matches[0].endIdx, 7u);
    EXPECT_FALSE(matches[0].elseIdx.has_value());
    EXPECT_EQ(matches[2].endIdx, 6u);
    ASSERT_TRUE(matches[2].elseIdx.has_value());
    EXPECT_EQ(*matches[2].elseIdx, 4u);
}

TEST(AbstractStateTest, TracksTypesThroughInstructions)
{
    ModuleBuilder mb2;
    FunctionBuilder fb2 = mb2.startFunction(FuncType({}, {ValType::I32}));
    fb2.f64Const(1.0); // @0
    fb2.drop();        // @1
    fb2.i32Const(3);   // @2
    fb2.finish();
    wasm::Module m = mb2.build();
    AbstractState state(m, 0);
    const auto &body = m.functions[0].body;
    state.apply(body[0], 0);
    EXPECT_EQ(state.top(0), ValType::F64);
    state.apply(body[1], 1);
    state.apply(body[2], 2);
    EXPECT_EQ(state.top(0), ValType::I32);
}

TEST(AbstractStateTest, ResolvesLabelsForBlocksAndLoops)
{
    ModuleBuilder mb;
    FunctionBuilder fb = mb.startFunction(FuncType({}, {}));
    fb.block(); // @0, end @4
    fb.loop();  // @1, end @3
    fb.nop();   // @2
    fb.end();   // @3
    fb.end();   // @4
    fb.finish(); // @5
    wasm::Module m = mb.build();
    AbstractState state(m, 0);
    const auto &body = m.functions[0].body;
    state.apply(body[0], 0);
    state.apply(body[1], 1);
    // Now inside the loop (frames: function, block, loop).
    EXPECT_EQ(state.frames().size(), 3u);
    EXPECT_EQ(state.resolveLabel(0), 2u); // loop -> first body instr
    EXPECT_EQ(state.resolveLabel(1), 5u); // block -> after its end
    EXPECT_EQ(state.resolveLabel(2), 6u); // function -> after final end
    auto traversed = state.traversedFrames(1);
    ASSERT_EQ(traversed.size(), 2u);
    EXPECT_EQ(traversed[0].kind, BlockKind::Loop);
    EXPECT_EQ(traversed[1].kind, BlockKind::Block);
}

TEST(AbstractStateTest, UnreachableCodeReportsUnknownTypes)
{
    ModuleBuilder mb;
    FunctionBuilder fb = mb.startFunction(FuncType({}, {}));
    fb.ret();   // @0
    fb.drop();  // @1 dead
    fb.finish();
    wasm::Module m = mb.build();
    AbstractState state(m, 0);
    state.apply(m.functions[0].body[0], 0);
    EXPECT_FALSE(state.reachable());
    EXPECT_EQ(state.top(0), std::nullopt);
}

// ---------------------------------------------------------------------
// StaticInfo helpers.

TEST(StaticInfoTest, LocationPackingAndUnmap)
{
    Location loc{3, 17};
    EXPECT_EQ(packLoc(loc), (uint64_t(3) << 32) | 17);

    StaticInfo info;
    info.numOrigImports = 2;
    info.hooks.resize(5); // 5 hook imports
    EXPECT_EQ(info.hookFuncIdx(0), 2u);
    EXPECT_EQ(info.hookFuncIdx(4), 6u);
    EXPECT_EQ(info.unmapFuncIdx(1), 1u);  // original import
    EXPECT_EQ(info.unmapFuncIdx(7), 2u);  // first defined function
    EXPECT_EQ(info.unmapFuncIdx(10), 5u);
}

} // namespace
} // namespace wasabi::core
