/**
 * @file
 * Serve-daemon tests (DESIGN.md §14): content-hash module cache
 * hit/miss pins, warmed-instance pooling with zero re-translation,
 * per-request fuel/memory quotas that never kill the daemon,
 * snapshot/restore exactness after grow + global-write + trap, the
 * Unix-socket transport, and the checked-I/O regression tests for the
 * silent-write-failure and bogus-WAT-diagnostic bugs.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <thread>

#include "obs/profile.h"
#include "serve/instance_pool.h"
#include "serve/module_cache.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/socket.h"
#include "support/file_io.h"
#include "support/module_io.h"
#include "wasm/encoder.h"
#include "wasm/wat_parser.h"

namespace wasabi::serve {
namespace {

/** Write @p content under a unique name in the test temp dir. */
std::string
writeTemp(const std::string &name, const std::string &content)
{
    const std::string path = testing::TempDir() + "serve_" + name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    EXPECT_TRUE(out.good());
    return path;
}

/** A module whose main does a little arithmetic through a global. */
const char *const kAddWat = R"((module
  (memory 1)
  (global $g (mut i32) (i32.const 0))
  (func (export "main") (result i32)
    (global.set $g (i32.add (global.get $g) (i32.const 1)))
    (i32.const 2) (i32.const 3) i32.add)))";

/** Grows memory, writes a global and the grown page, then traps. */
const char *const kDirtyTrapWat = R"((module
  (memory 1 4)
  (global $g (mut i32) (i32.const 7))
  (func (export "main") (result i32)
    (drop (memory.grow (i32.const 1)))
    (global.set $g (i32.const 99))
    (i32.store (i32.const 65536) (i32.const 0xdead))
    unreachable)))";

/** True when @p response contains the `"key": value` JSON fragment. */
bool
hasField(const std::string &response, const std::string &key,
         const std::string &value)
{
    return response.find("\"" + key + "\": " + value) !=
           std::string::npos;
}

std::string
runRequest(const std::string &path, const std::string &extra = "")
{
    return "{\"op\": \"run\", \"module\": \"" + path + "\"" + extra +
           "}";
}

TEST(ServeCache, SecondIdenticalRequestHitsAndSkipsTranslation)
{
    Server server;
    const std::string path = writeTemp("add.wat", kAddWat);

    auto first =
        server.handle(runRequest(path, ", \"verbose\": true"));
    ASSERT_TRUE(hasField(first.response, "ok", "true"))
        << first.response;
    EXPECT_TRUE(hasField(first.response, "cacheHit", "false"));
    EXPECT_TRUE(hasField(first.response, "warm", "false"));
    EXPECT_TRUE(hasField(first.response, "results", "[\"i32:5\"]"));
    EXPECT_EQ(server.cache().misses(), 1u);
    EXPECT_EQ(server.cache().hits(), 0u);
    const uint64_t cold_translations = server.translations();
    EXPECT_GT(cold_translations, 0u);

    auto second =
        server.handle(runRequest(path, ", \"verbose\": true"));
    ASSERT_TRUE(hasField(second.response, "ok", "true"))
        << second.response;
    EXPECT_TRUE(hasField(second.response, "cacheHit", "true"));
    EXPECT_TRUE(hasField(second.response, "warm", "true"));
    // The warm pin: a pooled re-run translates nothing.
    EXPECT_TRUE(hasField(second.response, "translations", "0"));
    EXPECT_EQ(server.translations(), cold_translations);
    EXPECT_EQ(server.cache().hits(), 1u);
    EXPECT_EQ(server.pool().hits(), 1u);
    EXPECT_EQ(server.pool().misses(), 1u);

    // Determinism: the snapshot-restored instance reproduces the cold
    // result exactly (the mutated global was rewound).
    EXPECT_TRUE(hasField(second.response, "results", "[\"i32:5\"]"));
}

TEST(ServeCache, ContentKeyedNotPathKeyed)
{
    ModuleCache cache;
    auto bytes = [](const char *wat) {
        const std::string s(wat);
        return std::vector<uint8_t>(s.begin(), s.end());
    };

    bool hit = true;
    auto a = cache.acquire(bytes(kAddWat), "a.wat", &hit);
    EXPECT_FALSE(hit);
    auto b = cache.acquire(bytes(kAddWat), "b.wat", &hit);
    EXPECT_TRUE(hit);
    // Same bytes under a different path share one decoded module.
    EXPECT_EQ(a->module().get(), b->module().get());
    EXPECT_EQ(cache.size(), 1u);

    auto c = cache.acquire(bytes(kDirtyTrapWat), "a.wat", &hit);
    EXPECT_FALSE(hit);
    EXPECT_NE(a->module().get(), c->module().get());
    EXPECT_EQ(cache.size(), 2u);

    // Per-hook-set static facts are built once and shared.
    auto i1 = a->intrinsicInfo(core::HookSet::all());
    auto i2 = a->intrinsicInfo(core::HookSet::all());
    EXPECT_EQ(i1.get(), i2.get());
    EXPECT_EQ(a->infoCount(), 1u);
}

TEST(ServeCache, UndecodableBytesThrowIoModule)
{
    ModuleCache cache;
    const std::vector<uint8_t> empty;
    try {
        cache.acquire(empty, "upload-3");
        FAIL() << "empty bytes must not decode";
    } catch (const support::IoError &e) {
        EXPECT_EQ(e.code(), "io.module");
        EXPECT_NE(std::string(e.what()).find("empty file"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_EQ(cache.size(), 0u);
}

TEST(ServeQuota, FuelExhaustionIsStructuredAndNonFatal)
{
    Server server;
    const std::string path = writeTemp("fuel.wat", kAddWat);

    auto denied = server.handle(runRequest(path, ", \"fuel\": 3"));
    EXPECT_TRUE(hasField(denied.response, "ok", "false"));
    EXPECT_TRUE(hasField(denied.response, "code",
                         "\"serve.quota-exceeded\""));
    EXPECT_TRUE(hasField(denied.response, "resource", "\"fuel\""));
    EXPECT_EQ(server.quotaTrips(), 1u);

    // The daemon (and the pooled instance) survive the trip: the same
    // module runs fine with enough fuel, warm from the pool.
    auto ok = server.handle(
        runRequest(path, ", \"fuel\": 1000, \"verbose\": true"));
    EXPECT_TRUE(hasField(ok.response, "ok", "true")) << ok.response;
    EXPECT_TRUE(hasField(ok.response, "warm", "true"));
    EXPECT_TRUE(hasField(ok.response, "results", "[\"i32:5\"]"));
}

TEST(ServeQuota, MemoryQuotaDeniesGrowAndAttributesTrap)
{
    Server server;
    // Grows by 1 page then stores into the grown page: under a 1-page
    // quota the grow is denied (spec-conformant -1) and the store
    // traps out of bounds — attributed to the quota.
    const std::string path = writeTemp("grow_use.wat", R"((module
  (memory 1 4)
  (func (export "main") (result i32)
    (drop (memory.grow (i32.const 1)))
    (i32.store (i32.const 65536) (i32.const 1))
    (i32.const 0))))");

    auto denied =
        server.handle(runRequest(path, ", \"memoryPages\": 1"));
    EXPECT_TRUE(hasField(denied.response, "ok", "false"));
    EXPECT_TRUE(hasField(denied.response, "code",
                         "\"serve.quota-exceeded\""));
    EXPECT_TRUE(hasField(denied.response, "resource", "\"memory\""));
    EXPECT_EQ(server.quotaTrips(), 1u);

    // Without a quota the same program grows and runs to completion.
    auto ok = server.handle(runRequest(path));
    EXPECT_TRUE(hasField(ok.response, "ok", "true")) << ok.response;
}

TEST(ServeQuota, PostStartMemoryAlreadyOverQuota)
{
    Server server;
    const std::string path = writeTemp("prequota.wat", kAddWat);
    auto r = server.handle(runRequest(path, ", \"memoryPages\": 0"));
    EXPECT_TRUE(hasField(r.response, "ok", "false"));
    EXPECT_TRUE(
        hasField(r.response, "code", "\"serve.quota-exceeded\""));
    EXPECT_TRUE(hasField(r.response, "resource", "\"memory\""));
    EXPECT_NE(r.response.find("post-start"), std::string::npos)
        << r.response;
}

TEST(ServeErrors, MalformedAndUnknownRequestsNeverKillTheDaemon)
{
    Server server;
    const std::string path = writeTemp("alive.wat", kAddWat);

    auto bad = server.handle("this is not json");
    EXPECT_TRUE(hasField(bad.response, "ok", "false"));
    EXPECT_TRUE(
        hasField(bad.response, "code", "\"serve.bad-request\""));
    EXPECT_FALSE(bad.shutdown);

    auto unknown = server.handle("{\"op\": \"frobnicate\"}");
    EXPECT_TRUE(
        hasField(unknown.response, "code", "\"serve.bad-request\""));

    auto trap = server.handle(
        runRequest(writeTemp("trap.wat",
                             "(module (func (export \"main\") "
                             "unreachable))")));
    EXPECT_TRUE(hasField(trap.response, "ok", "false"));
    EXPECT_TRUE(hasField(trap.response, "code", "\"serve.trap\""));
    EXPECT_TRUE(
        hasField(trap.response, "trap", "\"unreachable executed\""));

    // After all of that, a normal request still succeeds.
    auto ok = server.handle(runRequest(path));
    EXPECT_TRUE(hasField(ok.response, "ok", "true")) << ok.response;
}

TEST(ServeErrors, ModuleDiagnosticsArePrecise)
{
    Server server;

    // A directory is not "WAT that fails to parse" — it is named as a
    // directory (the pre-fix behavior surfaced a WAT parse error).
    auto dir = server.handle(runRequest(testing::TempDir()));
    EXPECT_TRUE(
        hasField(dir.response, "code", "\"serve.module-error\""));
    EXPECT_NE(dir.response.find("is a directory"), std::string::npos)
        << dir.response;

    // A truncated binary names the truncation, not a WAT error.
    const std::string trunc =
        writeTemp("trunc.wasm", std::string("\0as", 3));
    auto t = server.handle(runRequest(trunc));
    EXPECT_TRUE(
        hasField(t.response, "code", "\"serve.module-error\""));
    EXPECT_NE(t.response.find("magic"), std::string::npos)
        << t.response;

    const std::string empty = writeTemp("empty.wasm", "");
    auto e = server.handle(runRequest(empty));
    EXPECT_NE(e.response.find("empty file"), std::string::npos)
        << e.response;

    auto missing = server.handle(runRequest("/nonexistent/x.wasm"));
    EXPECT_TRUE(
        hasField(missing.response, "code", "\"serve.module-error\""));
}

TEST(ServeMetrics, ValidatesAgainstProfileSchemaAndCountsEndpoints)
{
    Server server;
    const std::string path = writeTemp("metrics.wat", kAddWat);
    server.handle(runRequest(path));
    server.handle(runRequest(path));
    server.handle("garbage");

    std::string err;
    ASSERT_TRUE(obs::validateProfileJson(server.metricsJson(), &err))
        << err << "\n"
        << server.metricsJson();

    auto m = server.handle("{\"op\": \"metrics\"}");
    EXPECT_TRUE(hasField(m.response, "ok", "true"));
    EXPECT_TRUE(hasField(m.response, "cacheHits", "1"));
    EXPECT_TRUE(hasField(m.response, "cacheMisses", "1"));
    EXPECT_TRUE(hasField(m.response, "poolHits", "1"));
    EXPECT_NE(m.response.find("\"op\": \"run\", \"requests\": 2, "
                              "\"errors\": 0"),
              std::string::npos)
        << m.response;
}

TEST(ServePool, SnapshotRestoreIsExactAfterGrowWriteAndTrap)
{
    Server server;
    const std::string path = writeTemp("dirty.wat", kDirtyTrapWat);

    // Run once: grows memory, dirties a global and the grown page,
    // then traps mid-execution. The lease is restored and re-parked.
    auto trapped = server.handle(runRequest(path));
    EXPECT_TRUE(hasField(trapped.response, "code", "\"serve.trap\""))
        << trapped.response;

    const auto bytes = support::readBinaryFile(path);
    auto entry = server.cache().acquire(bytes, path);
    ASSERT_EQ(server.pool().parkedCount(entry->hash()), 1u);

    // Lease the restored instance and instantiate a pristine one.
    InstanceLease warm = server.pool().acquire(*entry);
    EXPECT_TRUE(warm.warm);
    auto fresh = interp::Instance::instantiate(entry->module(),
                                               interp::Linker());

    // Byte-identical post-start state: memory shrunk back to 1 page,
    // global rewound to 7, table equal.
    const interp::InstanceSnapshot a = warm.instance->snapshot();
    const interp::InstanceSnapshot b = fresh->snapshot();
    EXPECT_EQ(a.memory, b.memory);
    ASSERT_EQ(a.globals.size(), b.globals.size());
    for (size_t i = 0; i < a.globals.size(); ++i)
        EXPECT_EQ(toString(a.globals[i]), toString(b.globals[i]))
            << "global " << i;
    EXPECT_EQ(a.table, b.table);

    // Per-request execution state was cleared, not leaked.
    EXPECT_FALSE(warm.instance->fuel().has_value());
    EXPECT_FALSE(warm.instance->memory().pageQuota().has_value());
    EXPECT_EQ(warm.instance->memory().quotaDenials(), 0u);

    server.pool().release(std::move(warm));
}

TEST(ServePool, DroppedLeaseIsDiscardedNotPooled)
{
    ModuleCache cache;
    const std::string s(kAddWat);
    auto entry = cache.acquire(
        std::vector<uint8_t>(s.begin(), s.end()), "drop.wat");

    InstancePool pool;
    {
        InstanceLease lease = pool.acquire(*entry);
        EXPECT_FALSE(lease.warm);
        // Dropped without release(): unknown state, never pooled.
    }
    EXPECT_EQ(pool.parkedCount(entry->hash()), 0u);
    InstanceLease again = pool.acquire(*entry);
    EXPECT_FALSE(again.warm);
    EXPECT_EQ(pool.misses(), 2u);
}

TEST(ServeOps, InstrumentWritesModuleAndAnalyzeReports)
{
    Server server;
    const std::string path = writeTemp("inst_src.wat", kAddWat);
    const std::string out = testing::TempDir() + "serve_inst_out.wasm";

    auto inst = server.handle("{\"op\": \"instrument\", \"module\": \"" +
                              path + "\", \"out\": \"" + out + "\"}");
    ASSERT_TRUE(hasField(inst.response, "ok", "true"))
        << inst.response;
    // The written file is a loadable binary with hook imports.
    auto m = support::loadModuleFromFile(out);
    size_t imported = 0;
    for (const auto &f : m.functions)
        imported += f.imported() ? 1 : 0;
    EXPECT_GT(imported, 0u);

    auto an = server.handle("{\"op\": \"analyze\", \"module\": \"" +
                            path + "\"}");
    EXPECT_TRUE(hasField(an.response, "ok", "true")) << an.response;
    EXPECT_TRUE(hasField(an.response, "functions", "1"));
    EXPECT_NE(an.response.find("\"hash\""), std::string::npos);
}

TEST(ServeOps, InstrumentToUnwritablePathIsIoErrorNotDeath)
{
    std::ofstream probe("/dev/full");
    if (!probe.is_open())
        GTEST_SKIP() << "/dev/full not available";
    probe.close();

    Server server;
    const std::string path = writeTemp("io_src.wat", kAddWat);
    auto r = server.handle("{\"op\": \"instrument\", \"module\": \"" +
                           path +
                           "\", \"out\": \"/dev/full\"}");
    EXPECT_TRUE(hasField(r.response, "ok", "false"));
    EXPECT_TRUE(hasField(r.response, "code", "\"serve.io-error\""))
        << r.response;

    auto ok = server.handle(runRequest(path));
    EXPECT_TRUE(hasField(ok.response, "ok", "true"));
}

TEST(ServeSocket, EndToEndOverUnixSocket)
{
    Server server;
    const std::string sock_path = testing::TempDir() + "serve_e2e.sock";
    const std::string wat_path = writeTemp("sock.wat", kAddWat);

    std::thread daemon(
        [&] { serveUnixSocket(server, sock_path); });

    // Wait for the listener to come up, then connect.
    int fd = -1;
    for (int attempt = 0; attempt < 200; ++attempt) {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                      sock_path.c_str());
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0)
            break;
        ::close(fd);
        fd = -1;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_GE(fd, 0) << "could not connect to " << sock_path;

    const std::string payload = runRequest(wat_path) +
                                "\n{\"op\": \"shutdown\"}\n";
    ASSERT_EQ(::send(fd, payload.data(), payload.size(), 0),
              static_cast<ssize_t>(payload.size()));

    std::string replies;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        replies.append(buf, static_cast<size_t>(n));
    ::close(fd);
    daemon.join();

    EXPECT_NE(replies.find("\"results\": [\"i32:5\"]"),
              std::string::npos)
        << replies;
    EXPECT_NE(replies.find("\"op\": \"shutdown\""), std::string::npos);
}

TEST(ServeProtocol, ParseRequestAndArgSpecs)
{
    Request r = parseRequest(
        "{\"op\": \"run\", \"module\": \"m.wasm\", \"entry\": \"f\", "
        "\"args\": [\"i32:5\", \"i64:-1\", \"f64:1.5\"], "
        "\"fuel\": 10, \"memoryPages\": 2}");
    EXPECT_EQ(r.op, "run");
    EXPECT_EQ(r.entry, "f");
    ASSERT_EQ(r.args.size(), 3u);
    EXPECT_EQ(toString(r.args[0]), "i32:5");
    // toString renders i64 bits unsigned; -1 parsed to all-ones.
    EXPECT_EQ(toString(r.args[1]), "i64:18446744073709551615");
    EXPECT_EQ(toString(r.args[2]), "f64:1.5");
    ASSERT_TRUE(r.fuel.has_value());
    EXPECT_EQ(*r.fuel, 10u);
    ASSERT_TRUE(r.memoryPages.has_value());
    EXPECT_EQ(*r.memoryPages, 2u);

    EXPECT_THROW(parseRequest("{\"op\": \"run\"}"), BadRequest);
    EXPECT_THROW(parseRequest("{\"id\": \"x\"}"), BadRequest);
    EXPECT_THROW(parseRequest("[1, 2]"), BadRequest);
    EXPECT_THROW(parseArgSpec("i16:5"), BadRequest);
    EXPECT_THROW(parseArgSpec("i32:notanumber"), BadRequest);
    EXPECT_THROW(parseRequest("{\"op\": \"run\", \"module\": \"m\", "
                              "\"memoryPages\": 100000}"),
                 BadRequest);
}

// ---------------------------------------------------------------------
// Checked file I/O (the bugfix satellites).
// ---------------------------------------------------------------------

TEST(CheckedIo, ShortWriteToFullDeviceThrows)
{
    std::ofstream probe("/dev/full");
    if (!probe.is_open())
        GTEST_SKIP() << "/dev/full not available";
    probe.close();

    // The pre-fix writeFile wrote via an unchecked ofstream and
    // reported success; the checked writers must throw io.short-write.
    try {
        support::writeTextFile("/dev/full",
                               std::string(1 << 16, 'x'));
        FAIL() << "write to /dev/full must not succeed";
    } catch (const support::IoError &e) {
        EXPECT_EQ(e.code(), "io.short-write");
        EXPECT_NE(std::string(e.what()).find("/dev/full"),
                  std::string::npos);
    }
    EXPECT_THROW(support::writeBinaryFile(
                     "/dev/full", std::vector<uint8_t>(1 << 16, 7)),
                 support::IoError);
}

TEST(CheckedIo, WriteToUnwritableDirectoryThrows)
{
    EXPECT_THROW(
        support::writeTextFile("/nonexistent-dir/out.txt", "x"),
        support::IoError);
    try {
        support::writeBinaryFile(testing::TempDir(), {1, 2, 3});
        FAIL() << "writing to a directory path must fail";
    } catch (const support::IoError &e) {
        EXPECT_NE(std::string(e.what()).find(testing::TempDir()),
                  std::string::npos);
    }
}

TEST(CheckedIo, RoundTripSucceeds)
{
    const std::string path = testing::TempDir() + "serve_rt.bin";
    const std::vector<uint8_t> data = {0, 1, 2, 254, 255};
    support::writeBinaryFile(path, data);
    EXPECT_EQ(support::readBinaryFile(path), data);
    support::writeTextFile(path, "hello\n");
    const auto text = support::readBinaryFile(path);
    EXPECT_EQ(std::string(text.begin(), text.end()), "hello\n");
}

TEST(CheckedIo, ReadDiagnosticsNamePathAndCause)
{
    try {
        support::readBinaryFile(testing::TempDir());
        FAIL() << "reading a directory must fail";
    } catch (const support::IoError &e) {
        EXPECT_EQ(e.code(), "io.read");
        EXPECT_NE(std::string(e.what()).find("is a directory"),
                  std::string::npos)
            << e.what();
    }
    try {
        support::readBinaryFile("/no/such/file.wasm");
        FAIL() << "missing file must fail";
    } catch (const support::IoError &e) {
        EXPECT_NE(std::string(e.what()).find("/no/such/file.wasm"),
                  std::string::npos);
    }
}

TEST(CheckedIo, ModuleBytesClassifierIsPrecise)
{
    using support::classifyModuleBytes;
    using support::IoError;
    using support::ModuleBytesKind;

    auto diagOf = [](std::string s) -> std::string {
        try {
            classifyModuleBytes(
                std::vector<uint8_t>(s.begin(), s.end()), "input");
        } catch (const IoError &e) {
            EXPECT_EQ(e.code(), "io.module");
            return e.what();
        }
        return "";
    };

    EXPECT_NE(diagOf("").find("empty file"), std::string::npos);
    // Truncated inside the magic: named as such, never "WAT".
    EXPECT_NE(diagOf(std::string("\0as", 3)).find("magic"),
              std::string::npos);
    // Magic but no version word.
    EXPECT_NE(diagOf(std::string("\0asm", 4)).find("version"),
              std::string::npos);
    // NUL-leading garbage is neither binary nor plausibly WAT.
    EXPECT_NE(diagOf(std::string("\0gar bage", 9)).find("bad magic"),
              std::string::npos);

    EXPECT_EQ(classifyModuleBytes({0x00, 0x61, 0x73, 0x6D, 1, 0, 0, 0},
                                  "ok.wasm"),
              ModuleBytesKind::WasmBinary);
    const std::string wat = "(module)";
    EXPECT_EQ(classifyModuleBytes(
                  std::vector<uint8_t>(wat.begin(), wat.end()),
                  "ok.wat"),
              ModuleBytesKind::WatText);
}

TEST(CheckedIo, LoadModuleFromBytesRejectsTruncatedBinary)
{
    const std::string trunc("\0asm\x01", 5);
    try {
        support::loadModuleFromBytes(
            std::vector<uint8_t>(trunc.begin(), trunc.end()),
            "trunc.wasm");
        FAIL() << "truncated binary must not load";
    } catch (const support::IoError &e) {
        EXPECT_EQ(e.code(), "io.module");
        EXPECT_NE(std::string(e.what()).find("trunc.wasm"),
                  std::string::npos);
        // The message must not be a baffling WAT parse error.
        EXPECT_EQ(std::string(e.what()).find("expected"),
                  std::string::npos)
            << e.what();
    }
}

} // namespace
} // namespace wasabi::serve
