/**
 * @file
 * Tests for the rewriting toolkit: ModuleRewriter index fixup (delete /
 * add / replace with automatic remapping of calls, element segments,
 * exports, start, and name subsections), the applied optimization
 * passes, the claim-manifest round trip, the manifest checker's
 * accept/reject behavior, and the differential-execution guarantee of
 * `wasabi opt` (original and optimized modules are observationally
 * identical on both engines, instrumented and uninstrumented).
 */

#include <gtest/gtest.h>

#include "analyses/instruction_mix.h"
#include "core/instrument.h"
#include "interp/interpreter.h"
#include "runtime/runtime.h"
#include "static/rewrite/opt.h"
#include "static/rewrite/rewrite.h"
#include "wasm/builder.h"
#include "wasm/decoder.h"
#include "wasm/encoder.h"
#include "wasm/name_section.h"
#include "wasm/validator.h"
#include "workloads/polybench.h"
#include "workloads/random_program.h"
#include "workloads/synthetic_app.h"

namespace wasabi::static_analysis::rewrite {
namespace {

using wasm::FuncType;
using wasm::Function;
using wasm::FunctionBuilder;
using wasm::Instr;
using wasm::Module;
using wasm::ModuleBuilder;
using wasm::Opcode;
using wasm::ValType;
using wasm::Value;

/** Three defined functions f0 -> f1 -> f2 (chained calls), f0
 * exported as "main", all carrying debug names. */
Module
chainModule()
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::I32}), "main",
                   [](FunctionBuilder &f) { f.call(1); });
    mb.addFunction(FuncType({}, {ValType::I32}), "",
                   [](FunctionBuilder &f) { f.call(2); });
    mb.addFunction(FuncType({}, {ValType::I32}), "",
                   [](FunctionBuilder &f) { f.i32Const(42); });
    Module m = mb.build();
    m.functions[0].debugName = "entry";
    m.functions[1].debugName = "middle";
    m.functions[2].debugName = "leaf";
    wasm::buildNameSection(m);
    return m;
}

/** Invoke exported @p entry with no arguments on @p engine and return
 * (results, trap). */
std::pair<std::vector<Value>, std::optional<interp::TrapKind>>
run(const Module &m, const std::string &entry, interp::EngineKind engine)
{
    auto inst = interp::Instance::instantiate(m, interp::Linker());
    interp::Interpreter interp;
    interp.engine = engine;
    std::pair<std::vector<Value>, std::optional<interp::TrapKind>> out;
    try {
        out.first = interp.invokeExport(*inst, entry, {});
    } catch (const interp::Trap &t) {
        out.second = t.kind();
    }
    return out;
}

// ---------------------------------------------------------------------
// ModuleRewriter: zero-edit byte identity.

TEST(Rewriter, ZeroEditsAreByteIdentical)
{
    Module m = chainModule();
    ModuleRewriter rw(m);
    EXPECT_FALSE(rw.hasEdits());
    RewriteResult r = rw.apply();
    EXPECT_TRUE(r.remap.identity());
    EXPECT_EQ(wasm::encodeModule(r.module), wasm::encodeModule(m));
}

TEST(Rewriter, ZeroEditsOnEmptyModule)
{
    Module m;
    RewriteResult r = ModuleRewriter(m).apply();
    EXPECT_EQ(wasm::encodeModule(r.module), wasm::encodeModule(m));
}

// ---------------------------------------------------------------------
// Deletion: calls, exports, names, start, and element fixup.

TEST(Rewriter, DeleteRemapsCallsExportsAndNames)
{
    // Rebuild f0 to call f2 directly so f1 becomes deletable.
    Module m = chainModule();
    ModuleRewriter rw(m);
    rw.replaceBody(0, {Instr::call(2), Instr(Opcode::End)});
    rw.deleteFunction(1);
    RewriteResult r = rw.apply();

    ASSERT_EQ(r.module.functions.size(), 2u);
    EXPECT_EQ(r.remap.func(0), 0u);
    EXPECT_EQ(r.remap.func(1), wasm::kDeletedIndex);
    EXPECT_EQ(r.remap.func(2), 1u);
    // The rebuilt call now targets the compacted index of f2.
    EXPECT_EQ(r.module.functions[0].body[0].imm.idx, 1u);
    EXPECT_EQ(wasm::validationError(r.module), std::nullopt);

    // Export survives at its new position and still runs; the name
    // subsections followed the surviving functions.
    Module decoded = wasm::decodeModule(wasm::encodeModule(r.module));
    ASSERT_TRUE(decoded.findFuncExport("main").has_value());
    wasm::applyNameSection(decoded);
    EXPECT_EQ(decoded.functions[0].debugName, "entry");
    EXPECT_EQ(decoded.functions[1].debugName, "leaf");
    auto [results, trap] =
        run(decoded, "main", interp::EngineKind::Fast);
    ASSERT_FALSE(trap.has_value());
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].i32(), 42);
}

TEST(Rewriter, CallToDeletedFunctionIsStructuredError)
{
    Module m = chainModule();
    ModuleRewriter rw(m);
    rw.deleteFunction(2); // f1 still calls it
    try {
        rw.apply();
        FAIL() << "expected RemapError";
    } catch (const wasm::RemapError &e) {
        EXPECT_EQ(e.code(), "remap.call-deleted-function");
    }
}

TEST(Rewriter, DeleteExportedFunctionIsRefused)
{
    Module m = chainModule();
    ModuleRewriter rw(m);
    rw.deleteFunction(0);
    try {
        rw.apply();
        FAIL() << "expected RewriteError";
    } catch (const RewriteError &e) {
        EXPECT_EQ(e.code(), "rewrite.delete-exported");
    }
}

TEST(Rewriter, StartSectionIsRetargeted)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::I32}), "keep",
                   [](FunctionBuilder &f) { f.i32Const(1); });
    mb.addFunction(FuncType({}, {}), "", [](FunctionBuilder &) {});
    mb.addFunction(FuncType({}, {}), "", [](FunctionBuilder &) {});
    mb.start(2);
    Module m = mb.build();

    ModuleRewriter rw(m);
    rw.deleteFunction(1);
    RewriteResult r = rw.apply();
    EXPECT_EQ(r.module.start, std::optional<uint32_t>(1));
    EXPECT_EQ(wasm::validationError(r.module), std::nullopt);
}

TEST(Rewriter, DeletingTheStartFunctionIsStructuredError)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "", [](FunctionBuilder &) {});
    mb.start(0);
    Module m = mb.build();
    ModuleRewriter rw(m);
    rw.deleteFunction(0);
    try {
        rw.apply();
        FAIL() << "expected RemapError";
    } catch (const wasm::RemapError &e) {
        EXPECT_EQ(e.code(), "remap.start-deleted-function");
    }
}

TEST(Rewriter, ElementReferencingDeletedFunctionIsStructuredError)
{
    ModuleBuilder mb;
    mb.table(2, 2);
    mb.addFunction(FuncType({}, {ValType::I32}), "main",
                   [](FunctionBuilder &f) { f.i32Const(0); });
    uint32_t victim = mb.addFunction(FuncType({}, {ValType::I32}), "",
                                     [](FunctionBuilder &f) {
                                         f.i32Const(9);
                                     });
    mb.elem(0, {victim});
    Module m = mb.build();

    ModuleRewriter rw(m);
    rw.deleteFunction(victim);
    try {
        rw.apply();
        FAIL() << "expected RemapError";
    } catch (const wasm::RemapError &e) {
        EXPECT_EQ(e.code(), "remap.element-deleted-function");
    }

    // Replacing the element list first makes the same deletion legal.
    ModuleRewriter rw2(m);
    rw2.setElementFuncs(0, {0});
    rw2.deleteFunction(victim);
    RewriteResult r = rw2.apply();
    EXPECT_EQ(r.module.elements[0].funcIdxs,
              (std::vector<uint32_t>{0}));
    EXPECT_EQ(wasm::validationError(r.module), std::nullopt);
}

// ---------------------------------------------------------------------
// Additions: handles in calls, elements, and start.

TEST(Rewriter, AddedFunctionsResolveHandles)
{
    ModuleBuilder mb;
    mb.table(2, 2);
    mb.addFunction(FuncType({}, {ValType::I32}), "main",
                   [](FunctionBuilder &f) { f.i32Const(0); });
    mb.elem(0, {0});
    Module m = mb.build();

    ModuleRewriter rw(m);
    Function neu;
    neu.typeIdx = rw.addType(FuncType({}, {ValType::I32}));
    neu.body = {Instr::i32Const(77), Instr(Opcode::End)};
    uint32_t handle = rw.addFunction(neu);
    EXPECT_GE(handle, kNewFuncHandle);
    // Reference the new function from a replaced body, the element
    // section, and the start-style index surface all at once.
    rw.replaceBody(0, {Instr::call(handle), Instr(Opcode::End)});
    rw.setElementFuncs(0, {0, handle});
    RewriteResult r = rw.apply();

    ASSERT_EQ(r.newFunctionIndices.size(), 1u);
    uint32_t idx = r.newFunctionIndices[0];
    EXPECT_EQ(idx, 1u);
    EXPECT_EQ(r.module.functions[0].body[0].imm.idx, idx);
    EXPECT_EQ(r.module.elements[0].funcIdxs,
              (std::vector<uint32_t>{0, idx}));
    EXPECT_EQ(wasm::validationError(r.module), std::nullopt);
    auto [results, trap] =
        run(r.module, "main", interp::EngineKind::Fast);
    ASSERT_FALSE(trap.has_value());
    EXPECT_EQ(results[0].i32(), 77);
}

TEST(Rewriter, UnknownHandleIsStructuredError)
{
    Module m = chainModule();
    ModuleRewriter rw(m);
    rw.replaceBody(0, {Instr::call(kNewFuncHandle + 5),
                       Instr(Opcode::End)});
    try {
        rw.apply();
        FAIL() << "expected RewriteError";
    } catch (const RewriteError &e) {
        EXPECT_EQ(e.code(), "rewrite.bad-handle");
    }
}

TEST(Rewriter, EmptyModuleGrowsFromNothing)
{
    Module m;
    ModuleRewriter rw(m);
    Function f;
    f.typeIdx = rw.addType(FuncType({}, {ValType::I32}));
    f.body = {Instr::i32Const(5), Instr(Opcode::End)};
    rw.addFunction(f);
    RewriteResult r = rw.apply();
    ASSERT_EQ(r.module.functions.size(), 1u);
    ASSERT_EQ(r.module.types.size(), 1u);
    EXPECT_EQ(wasm::validationError(r.module), std::nullopt);
}

TEST(Rewriter, GlobalEditsAndTypeDedup)
{
    ModuleBuilder mb;
    mb.global(ValType::I32, true, Value::makeI32(3));
    mb.addFunction(FuncType({}, {ValType::I32}),
                   "main", [](FunctionBuilder &f) { f.globalGet(0); });
    Module m = mb.build();

    ModuleRewriter rw(m);
    // addType of an existing signature reuses the existing index.
    EXPECT_EQ(rw.addType(FuncType({}, {ValType::I32})), 0u);
    wasm::Global g;
    g.type = ValType::I64;
    g.mut = false;
    g.init = {Instr::i64Const(8), Instr(Opcode::End)};
    EXPECT_EQ(rw.addGlobal(g), 1u);
    rw.setGlobalInit(0, {Instr::i32Const(11), Instr(Opcode::End)});
    RewriteResult r = rw.apply();
    ASSERT_EQ(r.module.globals.size(), 2u);
    EXPECT_EQ(r.module.globals[0].init[0].imm.i32v, 11);
    EXPECT_EQ(wasm::validationError(r.module), std::nullopt);
    auto [results, trap] =
        run(r.module, "main", interp::EngineKind::Fast);
    ASSERT_FALSE(trap.has_value());
    EXPECT_EQ(results[0].i32(), 11);
}

TEST(Rewriter, BadIndicesAreRefusedUpFront)
{
    Module m = chainModule();
    ModuleRewriter rw(m);
    EXPECT_THROW(rw.deleteFunction(99), RewriteError);
    EXPECT_THROW(rw.replaceBody(99, {Instr(Opcode::End)}), RewriteError);
    EXPECT_THROW(rw.setElementFuncs(0, {}), RewriteError);
    EXPECT_THROW(rw.setGlobalInit(0, {Instr(Opcode::End)}), RewriteError);
    Function imported;
    imported.typeIdx = 0;
    imported.import = wasm::ImportRef{"env", "f"};
    EXPECT_THROW(rw.addFunction(imported), RewriteError);
}

// ---------------------------------------------------------------------
// Optimization passes.

TEST(Opt, DeadFunctionStripping)
{
    Module m = chainModule(); // all three reachable: nothing to strip
    OptResult r0 = optimize(m, {"dead-functions"});
    EXPECT_TRUE(r0.claims.strippedFunctions.empty());

    // Orphan f1 by short-circuiting f0 past it.
    m.functions[0].body = {Instr::call(2), Instr(Opcode::End)};
    OptResult r = optimize(m, {"dead-functions"});
    EXPECT_EQ(r.claims.strippedFunctions,
              (std::vector<uint32_t>{1}));
    ASSERT_EQ(r.module.functions.size(), 2u);
    EXPECT_EQ(wasm::validationError(r.module), std::nullopt);
    auto [results, trap] = run(r.module, "main", interp::EngineKind::Fast);
    ASSERT_FALSE(trap.has_value());
    EXPECT_EQ(results[0].i32(), 42);

    Diagnostics ds = checkOptimization(
        m, wasm::encodeModule(r.module), r.claims);
    EXPECT_TRUE(ds.empty()) << toString(ds);
}

TEST(Opt, CallIndirectWithConstantIndexBecomesDirectCall)
{
    ModuleBuilder mb;
    mb.table(1, 1);
    FuncType t({}, {ValType::I32});
    uint32_t callee = mb.addFunction(t, "", [](FunctionBuilder &f) {
        f.i32Const(31);
    });
    FunctionBuilder fb = mb.startFunction(t, "main");
    fb.i32Const(0); // constant table index
    fb.callIndirect(mb.type(t));
    fb.finish();
    mb.elem(0, {callee});
    Module m = mb.build();
    ASSERT_EQ(wasm::validationError(m), std::nullopt);

    OptResult r = optimize(m, {"call-indirect"});
    ASSERT_EQ(r.claims.directCalls.size(), 1u);
    EXPECT_EQ(r.claims.directCalls[0].target, callee);
    // The site is now drop + direct call, and behaves identically.
    uint32_t site = r.claims.directCalls[0].instr;
    const std::vector<Instr> &body =
        r.module.functions[r.claims.directCalls[0].func].body;
    EXPECT_EQ(body[site].op, Opcode::Drop);
    EXPECT_EQ(body[site + 1].op, Opcode::Call);
    EXPECT_EQ(body[site + 1].imm.idx, callee);
    auto [o, ot] = run(m, "main", interp::EngineKind::Fast);
    auto [p, pt] = run(r.module, "main", interp::EngineKind::Fast);
    EXPECT_EQ(o, p);
    EXPECT_EQ(ot, pt);

    Diagnostics ds = checkOptimization(
        m, wasm::encodeModule(r.module), r.claims);
    EXPECT_TRUE(ds.empty()) << toString(ds);
}

TEST(Opt, ConstFoldCollapsesAdjacentConstants)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::I32}), "main",
                   [](FunctionBuilder &f) {
                       f.i32Const(2);
                       f.i32Const(3);
                       f.op(Opcode::I32Add);
                       f.i32Const(10);
                       f.op(Opcode::I32Mul);
                   });
    Module m = mb.build();

    OptResult r = optimize(m, {"const-fold"});
    // (2+3)*10 collapses all the way to one constant: the first fold's
    // result constant re-combines with the following multiply.
    ASSERT_GE(r.claims.constFolds.size(), 2u);
    ASSERT_EQ(r.module.functions[0].body.size(), 2u);
    EXPECT_EQ(r.module.functions[0].body[0].imm.i32v, 50);
    auto [results, trap] = run(r.module, "main", interp::EngineKind::Fast);
    ASSERT_FALSE(trap.has_value());
    EXPECT_EQ(results[0].i32(), 50);

    Diagnostics ds = checkOptimization(
        m, wasm::encodeModule(r.module), r.claims);
    EXPECT_TRUE(ds.empty()) << toString(ds);
}

TEST(Opt, ConstFoldNeverFoldsTrappingDivision)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::I32}), "main",
                   [](FunctionBuilder &f) {
                       f.i32Const(1);
                       f.i32Const(0);
                       f.op(Opcode::I32DivU); // traps: must be kept
                   });
    Module m = mb.build();
    OptResult r = optimize(m, {"const-fold"});
    EXPECT_TRUE(r.claims.constFolds.empty());
    auto [o, ot] = run(m, "main", interp::EngineKind::Fast);
    auto [p, pt] = run(r.module, "main", interp::EngineKind::Fast);
    EXPECT_EQ(ot, pt);
    EXPECT_TRUE(pt.has_value()); // still traps
}

TEST(Opt, DeadStoresBecomeDrops)
{
    ModuleBuilder mb;
    FunctionBuilder fb =
        mb.startFunction(FuncType({}, {ValType::I32}), "main");
    uint32_t tmp = fb.addLocal(ValType::I32);
    fb.i32Const(5);
    fb.localSet(tmp); // never read again
    fb.i32Const(1);
    fb.finish();
    Module m = mb.build();

    OptResult r = optimize(m, {"dead-stores"});
    ASSERT_EQ(r.claims.deadStores.size(), 1u);
    EXPECT_EQ(
        r.module.functions[0].body[r.claims.deadStores[0].instr].op,
        Opcode::Drop);
    auto [results, trap] = run(r.module, "main", interp::EngineKind::Fast);
    ASSERT_FALSE(trap.has_value());
    EXPECT_EQ(results[0].i32(), 1);

    Diagnostics ds = checkOptimization(
        m, wasm::encodeModule(r.module), r.claims);
    EXPECT_TRUE(ds.empty()) << toString(ds);
}

TEST(Opt, EmptyBlocksAreDeleted)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::I32}), "main",
                   [](FunctionBuilder &f) {
                       f.block();
                       f.end();
                       f.loop();
                       f.end();
                       f.i32Const(4);
                   });
    Module m = mb.build();

    OptResult r = optimize(m, {"empty-blocks"});
    EXPECT_EQ(r.claims.emptyBlocks.size(), 2u);
    ASSERT_EQ(r.module.functions[0].body.size(), 2u); // const + end
    auto [results, trap] = run(r.module, "main", interp::EngineKind::Fast);
    ASSERT_FALSE(trap.has_value());
    EXPECT_EQ(results[0].i32(), 4);

    Diagnostics ds = checkOptimization(
        m, wasm::encodeModule(r.module), r.claims);
    EXPECT_TRUE(ds.empty()) << toString(ds);
}

TEST(Opt, UnknownPassIsRefused)
{
    Module m = chainModule();
    EXPECT_THROW(optimize(m, {"inline-everything"}), RewriteError);
    EXPECT_TRUE(isOptPass("dead-functions"));
    EXPECT_FALSE(isOptPass("inline-everything"));
    EXPECT_EQ(allOptPasses().size(), 8u);
}

// ---------------------------------------------------------------------
// Manifest round trip and checker accept/reject.

TEST(OptManifest, RoundTripsAllClaimKinds)
{
    OptClaims claims;
    claims.passes = allOptPasses();
    claims.strippedFunctions = {3, 7};
    claims.directCalls = {{1, 2, 3, 4}};
    claims.constFolds = {{0, 5, 3, 0xFFFFFFFFu}};
    claims.deadStores = {{2, 9, 1}};
    claims.emptyBlocks = {{4, 0}};

    std::string text = claimsToManifest(claims);
    EXPECT_TRUE(isOptManifest(text));
    OptClaims parsed;
    std::string error;
    ASSERT_TRUE(claimsFromManifest(text, parsed, &error)) << error;
    EXPECT_EQ(parsed.passes, claims.passes);
    EXPECT_EQ(parsed.strippedFunctions, claims.strippedFunctions);
    ASSERT_EQ(parsed.directCalls.size(), 1u);
    EXPECT_EQ(parsed.directCalls[0].target, 4u);
    ASSERT_EQ(parsed.constFolds.size(), 1u);
    EXPECT_EQ(parsed.constFolds[0].value, 0xFFFFFFFFu);
    ASSERT_EQ(parsed.deadStores.size(), 1u);
    EXPECT_EQ(parsed.deadStores[0].local, 1u);
    ASSERT_EQ(parsed.emptyBlocks.size(), 1u);
    EXPECT_EQ(parsed.totalClaims(), claims.totalClaims());
}

TEST(OptManifest, MalformedInputIsRejected)
{
    OptClaims claims;
    std::string error;
    EXPECT_FALSE(claimsFromManifest("not json", claims, &error));
    EXPECT_FALSE(claimsFromManifest(
        "{\"schema\": \"wasabi-opt-manifest\", \"version\": 2}", claims,
        &error));
    EXPECT_FALSE(isOptManifest("{\"schema\": \"wasabi-hook-plan\"}"));
}

TEST(OptCheck, RejectsTamperedBinary)
{
    Module m = chainModule();
    m.functions[0].body = {Instr::call(2), Instr(Opcode::End)};
    OptResult r = optimize(m, allOptPasses());
    std::vector<uint8_t> bytes = wasm::encodeModule(r.module);
    ASSERT_TRUE(checkOptimization(m, bytes, r.claims).empty());

    // Flip the constant in the surviving leaf body: the claims no
    // longer describe this binary.
    std::vector<uint8_t> tampered = bytes;
    bool flipped = false;
    for (size_t i = tampered.size(); i-- > 0;) {
        if (tampered[i] == 42) {
            tampered[i] = 43;
            flipped = true;
            break;
        }
    }
    ASSERT_TRUE(flipped);
    Diagnostics ds = checkOptimization(m, tampered, r.claims);
    ASSERT_FALSE(ds.empty());
    EXPECT_TRUE(ds.hasCode("check.opt.output-mismatch")) << toString(ds);
}

TEST(OptCheck, RejectsForgedClaims)
{
    Module m = chainModule();
    m.functions[0].body = {Instr::call(2), Instr(Opcode::End)};
    OptResult r = optimize(m, allOptPasses());
    std::vector<uint8_t> bytes = wasm::encodeModule(r.module);

    {
        // A dead-store claim the liveness pass does not prove.
        OptClaims forged = r.claims;
        forged.deadStores.push_back({0, 0, 0});
        Diagnostics ds = checkOptimization(m, bytes, forged);
        ASSERT_FALSE(ds.empty());
        EXPECT_TRUE(ds.hasCode("check.opt.bad-dead-store"))
            << toString(ds);
    }
    {
        // Stripping a function reachability proves live.
        OptClaims forged = r.claims;
        forged.strippedFunctions.push_back(0);
        Diagnostics ds = checkOptimization(m, bytes, forged);
        ASSERT_FALSE(ds.empty());
        EXPECT_TRUE(ds.hasCode("check.opt.bad-dead-function"))
            << toString(ds);
    }
    {
        // A claim for a pass the manifest does not list.
        OptClaims forged = r.claims;
        forged.passes = {"dead-functions"};
        forged.directCalls.push_back({0, 0, 0, 0});
        Diagnostics ds = checkOptimization(m, bytes, forged);
        ASSERT_FALSE(ds.empty());
        EXPECT_TRUE(ds.hasCode("check.opt.orphan-claims"))
            << toString(ds);
    }
    {
        // An unknown pass name.
        OptClaims forged = r.claims;
        forged.passes.push_back("inline-everything");
        Diagnostics ds = checkOptimization(m, bytes, forged);
        ASSERT_FALSE(ds.empty());
        EXPECT_TRUE(ds.hasCode("check.opt.unknown-pass"))
            << toString(ds);
    }
}

// ---------------------------------------------------------------------
// End-to-end over generated corpora: optimize with all passes, check
// the manifest, and differentially execute original vs optimized on
// both engines — uninstrumented and instrumented.

struct Outcome {
    std::vector<Value> results;
    std::optional<interp::TrapKind> trap;
    std::vector<uint8_t> memory;

    bool operator==(const Outcome &other) const = default;
};

Outcome
runWorkload(const Module &m, const workloads::Workload &w,
            interp::EngineKind engine)
{
    Outcome out;
    auto inst = interp::Instance::instantiate(m, interp::Linker());
    interp::Interpreter interp;
    interp.engine = engine;
    try {
        out.results = interp.invokeExport(*inst, w.entry, w.args);
    } catch (const interp::Trap &t) {
        out.trap = t.kind();
    }
    out.memory = inst->memory().raw();
    return out;
}

/** Optimize with every pass, verify the claim manifest, and require
 * observational equivalence in all four engine/module combinations,
 * plus hook-stream agreement when instrumenting the optimized module. */
void
expectOptimizationFaithful(const workloads::Workload &w)
{
    ASSERT_EQ(wasm::validationError(w.module), std::nullopt) << w.name;
    OptResult r = optimize(w.module, allOptPasses());
    ASSERT_EQ(wasm::validationError(r.module), std::nullopt) << w.name;

    // Manifest survives serialization and re-proves.
    OptClaims parsed;
    std::string error;
    ASSERT_TRUE(
        claimsFromManifest(claimsToManifest(r.claims), parsed, &error))
        << w.name << ": " << error;
    Diagnostics ds = checkOptimization(
        w.module, wasm::encodeModule(r.module), parsed);
    EXPECT_TRUE(ds.empty()) << w.name << "\n" << toString(ds);

    // 4-way differential: original/optimized x legacy/fast.
    Outcome ol = runWorkload(w.module, w, interp::EngineKind::Legacy);
    Outcome of = runWorkload(w.module, w, interp::EngineKind::Fast);
    Outcome pl = runWorkload(r.module, w, interp::EngineKind::Legacy);
    Outcome pf = runWorkload(r.module, w, interp::EngineKind::Fast);
    EXPECT_TRUE(ol == of) << w.name << ": engines disagree (original)";
    EXPECT_TRUE(ol == pl) << w.name << ": optimization changed behavior";
    EXPECT_TRUE(ol == pf) << w.name << ": optimization changed behavior";

    // Instrumenting *after* optimization must still agree between
    // engines, including the number of dispatched hooks.
    core::InstrumentResult ir =
        core::instrument(r.module, core::HookSet::all());
    uint64_t hooks[2];
    Outcome outs[2];
    for (int e = 0; e < 2; ++e) {
        runtime::WasabiRuntime rt(ir.info);
        analyses::InstructionMix mix;
        rt.addAnalysis(&mix);
        auto inst = rt.instantiate(ir.module);
        interp::Interpreter interp;
        interp.engine = e == 0 ? interp::EngineKind::Legacy
                               : interp::EngineKind::Fast;
        try {
            outs[e].results = interp.invokeExport(*inst, w.entry, w.args);
        } catch (const interp::Trap &t) {
            outs[e].trap = t.kind();
        }
        outs[e].memory = inst->memory().raw();
        hooks[e] = rt.hookInvocations();
    }
    EXPECT_TRUE(outs[0] == outs[1])
        << w.name << ": instrumented engines disagree";
    EXPECT_EQ(hooks[0], hooks[1]) << w.name;
    EXPECT_GT(hooks[0], 0u) << w.name;
}

TEST(OptDifferential, PolybenchKernels)
{
    for (const std::string &name :
         {"gemm", "atax", "cholesky", "floyd-warshall", "jacobi-2d"}) {
        expectOptimizationFaithful(workloads::polybench(name, 6));
    }
}

TEST(OptDifferential, RandomProgramsWithIndirectCalls)
{
    for (uint64_t seed = 100; seed < 112; ++seed) {
        workloads::RandomProgramOptions opts;
        opts.seed = seed;
        opts.numFunctions = 10;
        opts.stmtsPerFunction = 14;
        opts.indirectCallPct = 30;
        opts.constIndexIndirectPct = 60;
        expectOptimizationFaithful(workloads::randomProgram(opts));
    }
}

TEST(OptDifferential, SyntheticAppShrinks)
{
    workloads::Workload w =
        workloads::syntheticApp(workloads::AppSize::Small);
    OptResult r = optimize(w.module, allOptPasses());
    EXPECT_GT(r.claims.totalClaims(), 0u);
    EXPECT_LT(wasm::encodeModule(r.module).size(),
              wasm::encodeModule(w.module).size());
    Diagnostics ds = checkOptimization(
        w.module, wasm::encodeModule(r.module), r.claims);
    EXPECT_TRUE(ds.empty()) << toString(ds);
}

} // namespace
} // namespace wasabi::static_analysis::rewrite
