/**
 * @file
 * Unit tests of the static-analysis subsystem's graph layer: CFG
 * construction from the structured instruction stream (label
 * resolution per paper §2.4.4), the forward dataflow framework
 * (reachability, dominators, back edges) and the static call graph
 * with dead-function detection.
 */

#include <gtest/gtest.h>

#include "static/analyze.h"
#include "static/call_graph.h"
#include "static/cfg.h"
#include "static/dataflow.h"
#include "wasm/builder.h"
#include "wasm/validator.h"

namespace wasabi::static_analysis {
namespace {

using wasm::FuncType;
using wasm::FunctionBuilder;
using wasm::Module;
using wasm::ModuleBuilder;
using wasm::Opcode;
using wasm::ValType;

Module
singleFunction(const FuncType &type,
               const std::function<void(FunctionBuilder &)> &fill)
{
    ModuleBuilder mb;
    mb.addFunction(type, "f", fill);
    Module m = mb.build();
    validateModule(m);
    return m;
}

TEST(Cfg, StraightLineIsOneBlockPlusExit)
{
    Module m = singleFunction(FuncType({}, {ValType::I32}),
                              [](FunctionBuilder &f) { f.i32Const(1); });
    // Body: [i32.const, end].
    Cfg cfg(m, 0);
    ASSERT_EQ(cfg.numBlocks(), 2u); // one real block + synthetic exit
    EXPECT_EQ(cfg.blocks()[0].first, 0u);
    EXPECT_EQ(cfg.blocks()[0].last, 1u);
    EXPECT_EQ(cfg.blocks()[0].succs, std::vector<uint32_t>{cfg.exit()});
    EXPECT_TRUE(cfg.blocks()[cfg.exit()].empty());
    EXPECT_EQ(cfg.numEdges(), 1u);
    EXPECT_EQ(cfg.blockOf(0), 0u);
    EXPECT_EQ(cfg.blockOf(1), 0u);
}

/** Build the classic diamond:
 *   0 local.get 0 / 1 if / 2 const / 3 set / 4 else / 5 const /
 *   6 set / 7 end / 8 get / 9 end */
Module
diamond()
{
    ModuleBuilder mb;
    FunctionBuilder f =
        mb.startFunction(FuncType({ValType::I32}, {ValType::I32}), "f");
    uint32_t r = f.addLocal(ValType::I32);
    f.localGet(0).if_();
    f.i32Const(1).localSet(r);
    f.else_();
    f.i32Const(2).localSet(r);
    f.end();
    f.localGet(r);
    f.finish();
    Module m = mb.build();
    validateModule(m);
    return m;
}

TEST(Cfg, IfElseDiamondShape)
{
    Module m = diamond();
    Cfg cfg(m, 0);
    // B0=[0,1] B1=[2,4] B2=[5,6] B3=[7,9] B4=exit.
    ASSERT_EQ(cfg.numBlocks(), 5u);
    EXPECT_EQ(cfg.blocks()[0].succs, (std::vector<uint32_t>{1, 2}));
    EXPECT_EQ(cfg.blocks()[1].succs, (std::vector<uint32_t>{3}));
    EXPECT_EQ(cfg.blocks()[2].succs, (std::vector<uint32_t>{3}));
    EXPECT_EQ(cfg.blocks()[3].succs,
              (std::vector<uint32_t>{cfg.exit()}));
    EXPECT_EQ(cfg.numEdges(), 5u);

    // Entry dominates everything; the merge block's idom is the fork,
    // not either branch.
    std::vector<uint32_t> idom = immediateDominators(cfg);
    EXPECT_EQ(idom[0], kNoIdom);
    EXPECT_EQ(idom[1], 0u);
    EXPECT_EQ(idom[2], 0u);
    EXPECT_EQ(idom[3], 0u);
    EXPECT_EQ(idom[cfg.exit()], 3u);
    EXPECT_TRUE(backEdges(cfg).empty());

    std::vector<uint32_t> rpo = cfg.reversePostOrder();
    ASSERT_EQ(rpo.size(), 5u);
    EXPECT_EQ(rpo.front(), cfg.entry());
    EXPECT_EQ(rpo.back(), cfg.exit());
}

/** while-style loop:
 *   0 block / 1 loop / 2 get / 3 const / 4 add / 5 tee / 6 const /
 *   7 lt / 8 br_if 0 (loop) / 9 end / 10 end / 11 end */
Module
countedLoop()
{
    ModuleBuilder mb;
    FunctionBuilder f = mb.startFunction(FuncType({}, {}), "f");
    uint32_t i = f.addLocal(ValType::I32);
    f.block().loop();
    f.localGet(i).i32Const(1).op(Opcode::I32Add).localTee(i);
    f.i32Const(10).op(Opcode::I32LtS).brIf(0);
    f.end().end();
    f.finish();
    Module m = mb.build();
    validateModule(m);
    return m;
}

TEST(Cfg, LoopProducesOneBackEdge)
{
    Module m = countedLoop();
    Cfg cfg(m, 0);
    // B0=[0,1] B1=[2,8] (loop body) B2=[9,11] B3=exit.
    ASSERT_EQ(cfg.numBlocks(), 4u);
    // The br_if targets the loop header, i.e. block B1 itself.
    EXPECT_EQ(cfg.blocks()[1].succs, (std::vector<uint32_t>{1, 2}));

    std::vector<std::pair<uint32_t, uint32_t>> back = backEdges(cfg);
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0], (std::pair<uint32_t, uint32_t>{1, 1}));

    std::vector<uint32_t> idom = immediateDominators(cfg);
    EXPECT_EQ(idom[1], 0u);
    EXPECT_EQ(idom[2], 1u);

    std::vector<BitSet> doms = dominatorSets(cfg);
    EXPECT_TRUE(doms[2].test(0));
    EXPECT_TRUE(doms[2].test(1));
    EXPECT_TRUE(doms[2].test(2));
    EXPECT_FALSE(doms[1].test(2));
}

/** Three nested blocks dispatched by br_table:
 *   0 block / 1 block / 2 block / 3 get / 4 br_table 0 1, default 2 /
 *   5 end / 6 end / 7 end / 8 end */
Module
brTableNest()
{
    ModuleBuilder mb;
    FunctionBuilder f =
        mb.startFunction(FuncType({ValType::I32}, {}), "f");
    f.block().block().block();
    f.localGet(0).brTable({0, 1}, 2);
    f.end().end().end();
    f.finish();
    Module m = mb.build();
    validateModule(m);
    return m;
}

TEST(Cfg, BrTableEdgesResolvePerLabel)
{
    Module m = brTableNest();
    Cfg cfg(m, 0);
    // B0=[0,4] B1=[5,5] B2=[6,6] B3=[7,7] B4=[8,8] B5=exit.
    ASSERT_EQ(cfg.numBlocks(), 6u);
    // label 0 -> after inner end (6), label 1 -> 7, default -> 8.
    EXPECT_EQ(cfg.blocks()[0].succs, (std::vector<uint32_t>{2, 3, 4}));
    // The inner `end` itself is only reachable by fallthrough, which
    // the br_table cuts off.
    std::vector<bool> reach = reachableBlocks(cfg);
    EXPECT_FALSE(reach[1]);
    EXPECT_TRUE(reach[2]);
    EXPECT_TRUE(reach[3]);
    EXPECT_TRUE(reach[4]);
    EXPECT_TRUE(reach[cfg.exit()]);
}

TEST(Cfg, CodeAfterUnconditionalBrIsUnreachable)
{
    Module m = singleFunction(FuncType({}, {}), [](FunctionBuilder &f) {
        f.block();
        f.br(0);
        f.nop();
        f.end();
    });
    Cfg cfg(m, 0);
    std::vector<bool> reach = reachableBlocks(cfg);
    // The nop after the br is in an unreachable block.
    uint32_t nop_block = cfg.blockOf(2);
    EXPECT_FALSE(reach[nop_block]);
    EXPECT_TRUE(reach[cfg.entry()]);
    EXPECT_TRUE(reach[cfg.exit()]);
}

TEST(Cfg, ReturnAndUnreachableEdges)
{
    Module m = singleFunction(FuncType({ValType::I32}, {}),
                              [](FunctionBuilder &f) {
                                  f.localGet(0).if_();
                                  f.ret();
                                  f.end();
                                  f.unreachable();
                              });
    // 0 get / 1 if / 2 return / 3 end / 4 unreachable / 5 end.
    Cfg cfg(m, 0);
    uint32_t ret_block = cfg.blockOf(2);
    EXPECT_EQ(cfg.blocks()[ret_block].succs,
              (std::vector<uint32_t>{cfg.exit()}));
    // `unreachable` traps: no successors at all.
    uint32_t trap_block = cfg.blockOf(4);
    EXPECT_TRUE(cfg.blocks()[trap_block].succs.empty());
}

TEST(CallGraph, DirectIndirectEdgesAndDeadFunctions)
{
    ModuleBuilder mb;
    uint32_t sig = mb.type(FuncType({}, {}));
    mb.table(2);
    // f0 "main": calls f1 directly and [] -> [] through the table.
    mb.addFunction(FuncType({}, {}), "main", [&](FunctionBuilder &f) {
        f.call(1);
        f.i32Const(0).callIndirect(sig);
    });
    mb.addFunction(FuncType({}, {}), "", [](FunctionBuilder &) {});
    mb.addFunction(FuncType({}, {}), "", [](FunctionBuilder &) {});
    // f3: wrong signature for the indirect call, never referenced.
    mb.addFunction(FuncType({ValType::I32}, {}), "",
                   [](FunctionBuilder &) {});
    mb.elem(0, {2});
    Module m = mb.build();
    validateModule(m);

    StaticCallGraph cg(m);
    EXPECT_EQ(cg.callees(0), (std::vector<uint32_t>{1, 2}));
    EXPECT_EQ(cg.callers(2), (std::vector<uint32_t>{0}));
    EXPECT_EQ(cg.numEdges(), 2u);
    EXPECT_TRUE(cg.reachable(0));
    EXPECT_TRUE(cg.reachable(1));
    EXPECT_TRUE(cg.reachable(2));
    EXPECT_FALSE(cg.reachable(3));
    EXPECT_EQ(cg.deadFunctions(), (std::vector<uint32_t>{3}));
    EXPECT_EQ(cg.roots(), (std::vector<uint32_t>{0}));
}

TEST(Analyze, ModuleReportCountsAreConsistent)
{
    Module m = countedLoop();
    ModuleReport r = analyzeModule(m);
    ASSERT_EQ(r.functions.size(), 1u);
    const FunctionStats &s = r.functions[0];
    EXPECT_EQ(s.funcIdx, 0u);
    EXPECT_EQ(s.numInstrs, m.functions[0].body.size());
    EXPECT_EQ(s.numBlocks, 4u);
    EXPECT_EQ(s.numBackEdges, 1u);
    EXPECT_EQ(s.numUnreachable, 0u);
    EXPECT_FALSE(s.dead);
    EXPECT_TRUE(r.deadFunctions.empty());

    // Both renderings mention the function.
    EXPECT_NE(toString(r).find("functions"), std::string::npos);
    EXPECT_NE(toJson(r).find("\"backEdges\":1"), std::string::npos);

    // Dot outputs are well-formed digraphs.
    EXPECT_EQ(cfgDot(m, 0).rfind("digraph", 0), 0u);
    EXPECT_EQ(callGraphDot(m).rfind("digraph", 0), 0u);
}

TEST(Dataflow, BitSetOperations)
{
    BitSet a(100), b(100, true);
    a.set(3);
    a.set(77);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(b.count(), 100u);
    BitSet c = b;
    EXPECT_TRUE(c.intersectWith(a));
    EXPECT_EQ(c, a);
    EXPECT_FALSE(c.intersectWith(a)); // already equal: no change
    EXPECT_TRUE(b.test(99));
    BitSet d(100);
    EXPECT_TRUE(d.unionWith(a));
    EXPECT_EQ(d, a);
}

} // namespace
} // namespace wasabi::static_analysis
