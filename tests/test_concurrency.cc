/**
 * @file
 * Concurrent-runtime stress tests (DESIGN.md §14): many threads
 * attach/detach intrinsic hooks and invoke exports on pooled
 * instances of one shared, cached module — the serve daemon's
 * multi-tenant hot path. Run under ASan/UBSan in the default CI
 * config and under TSan in the dedicated thread-sanitizer job; the
 * assertions also pin determinism (every thread observes identical
 * results) and counter consistency.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "analyses/registry.h"
#include "interp/engine/code.h"
#include "interp/interpreter.h"
#include "runtime/runtime.h"
#include "serve/instance_pool.h"
#include "serve/module_cache.h"
#include "serve/server.h"
#include "support/file_io.h"

namespace wasabi::serve {
namespace {

const char *const kLoopWat = R"((module
  (memory 1)
  (global $g (mut i32) (i32.const 0))
  (func (export "main") (result i32)
    (local $i i32) (local $acc i32)
    (block $done
      (loop $top
        (br_if $done (i32.ge_u (local.get $i) (i32.const 50)))
        (local.set $acc
          (i32.add (local.get $acc) (local.get $i)))
        (i32.store (i32.const 16) (local.get $acc))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $top)))
    (global.set $g (local.get $acc))
    (local.get $acc))))";

std::vector<uint8_t>
watBytes(const char *wat)
{
    const std::string s(wat);
    return std::vector<uint8_t>(s.begin(), s.end());
}

/**
 * The low-level stress: N threads lease instances of one shared
 * CachedModule from one pool, attach a private runtime's intrinsic
 * hooks, invoke, detach (via release), repeat. Exercises the
 * cache/pool locks, the shared-module immutability split, and the
 * same-kind sink-swap re-attach under real parallelism.
 */
TEST(Concurrency, PooledIntrinsicAttachInvokeDetach)
{
    constexpr int kThreads = 8;
    constexpr int kIters = 25;

    ModuleCache cache;
    auto entry = cache.acquire(watBytes(kLoopWat), "loop.wat");
    InstancePool pool;
    std::atomic<uint64_t> failures{0};

    auto worker = [&]() {
        for (int i = 0; i < kIters; ++i) {
            auto analysis = analyses::makeAnalysis("mix");
            const core::HookSet hooks = analysis->hooks();
            runtime::WasabiRuntime rt(entry->intrinsicInfo(hooks));
            rt.addAnalysis(analysis.get());

            InstanceLease lease = pool.acquire(*entry);
            rt.attachIntrinsic(*lease.instance);
            auto results = interp::Interpreter().invokeExport(
                *lease.instance, "main", {});
            if (results.size() != 1 ||
                toString(results[0]) != "i32:1225")
                ++failures;
            if (rt.hookInvocations() == 0)
                ++failures;
            pool.release(std::move(lease));
        }
    };

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back(worker);
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(failures.load(), 0u);
    EXPECT_EQ(pool.hits() + pool.misses(),
              static_cast<uint64_t>(kThreads) * kIters);
    // One decode total; every other acquisition was a cache no-op.
    EXPECT_EQ(cache.size(), 1u);
}

/**
 * The full-stack stress: N threads issue the same request sequence to
 * one shared Server. Every response must be byte-identical across
 * threads and iterations (cache/pool provenance is verbose-only, so
 * default responses are deterministic), and no request may error.
 */
TEST(Concurrency, SharedServerDeterministicUnderParallelClients)
{
    constexpr int kThreads = 8;
    constexpr int kIters = 10;

    Server server;
    const std::string path =
        testing::TempDir() + "concurrency_loop.wat";
    support::writeTextFile(path, kLoopWat);
    const std::string request =
        "{\"op\": \"run\", \"module\": \"" + path + "\"}";

    // Sequential baseline.
    const std::string expected = server.handle(request).response;
    ASSERT_NE(expected.find("\"ok\": true"), std::string::npos)
        << expected;
    ASSERT_NE(expected.find("i32:1225"), std::string::npos);

    std::atomic<uint64_t> mismatches{0};
    auto client = [&]() {
        for (int i = 0; i < kIters; ++i) {
            if (server.handle(request).response != expected)
                ++mismatches;
        }
    };

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back(client);
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(mismatches.load(), 0u);
    EXPECT_EQ(server.cache().hits() + server.cache().misses(),
              static_cast<uint64_t>(kThreads) * kIters + 1);
    EXPECT_EQ(server.cache().misses(), 1u);
    EXPECT_EQ(server.quotaTrips(), 0u);

    // The metrics document is well-formed after the storm.
    std::string err;
    EXPECT_TRUE(obs::validateProfileJson(server.metricsJson(), &err))
        << err;
}

/**
 * Mixed success/failure storm: threads interleave good runs, quota
 * trips, traps, and malformed requests against one Server. No request
 * may take the daemon down, leak a dirty instance into the pool, or
 * corrupt another thread's result.
 */
TEST(Concurrency, ErrorStormIsolatesFailuresPerRequest)
{
    constexpr int kThreads = 6;
    constexpr int kIters = 8;

    Server server;
    const std::string good =
        testing::TempDir() + "concurrency_good.wat";
    support::writeTextFile(good, kLoopWat);
    const std::string trapping =
        testing::TempDir() + "concurrency_trap.wat";
    support::writeTextFile(
        trapping,
        "(module (func (export \"main\") unreachable))");

    const std::string good_req =
        "{\"op\": \"run\", \"module\": \"" + good + "\"}";
    const std::string expected = server.handle(good_req).response;

    std::atomic<uint64_t> bad{0};
    auto has = [](const std::string &s, const char *needle) {
        return s.find(needle) != std::string::npos;
    };

    auto worker = [&](int seed) {
        for (int i = 0; i < kIters; ++i) {
            switch ((seed + i) % 4) {
            case 0:
                if (server.handle(good_req).response != expected)
                    ++bad;
                break;
            case 1: {
                auto r = server.handle(
                    "{\"op\": \"run\", \"module\": \"" + good +
                    "\", \"fuel\": 2}");
                if (!has(r.response, "serve.quota-exceeded"))
                    ++bad;
                break;
            }
            case 2: {
                auto r = server.handle("{\"op\": \"run\", "
                                       "\"module\": \"" +
                                       trapping + "\"}");
                if (!has(r.response, "serve.trap"))
                    ++bad;
                break;
            }
            case 3: {
                auto r = server.handle("{not json");
                if (!has(r.response, "serve.bad-request"))
                    ++bad;
                break;
            }
            }
        }
    };

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back(worker, t);
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(bad.load(), 0u);
    // After the storm every pooled instance is clean: a fresh good
    // request still returns the baseline result.
    EXPECT_EQ(server.handle(good_req).response, expected);
}

} // namespace
} // namespace wasabi::serve
