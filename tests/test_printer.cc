/**
 * @file
 * Tests for the WAT-style printer.
 */

#include <gtest/gtest.h>

#include "wasm/builder.h"
#include "wasm/printer.h"

namespace wasabi::wasm {
namespace {

TEST(Printer, RendersInstructions)
{
    EXPECT_EQ(toString(Instr::i32Const(42)), "i32.const 42");
    EXPECT_EQ(toString(Instr::i32Const(static_cast<uint32_t>(-1))),
              "i32.const -1");
    EXPECT_EQ(toString(Instr::i64Const(1234567890123)),
              "i64.const 1234567890123");
    EXPECT_EQ(toString(Instr::f64Const(2.5)), "f64.const 2.5");
    EXPECT_EQ(toString(Instr::localGet(3)), "local.get 3");
    EXPECT_EQ(toString(Instr::call(7)), "call 7");
    EXPECT_EQ(toString(Instr::callIndirect(2)),
              "call_indirect (type 2)");
    EXPECT_EQ(toString(Instr::br(1)), "br 1");
    EXPECT_EQ(toString(Instr::brTable({0, 1}, 2)), "br_table 0 1 2");
    EXPECT_EQ(toString(Instr(Opcode::I32Add)), "i32.add");
    EXPECT_EQ(toString(Instr::memOp(Opcode::I32Load, 2, 8)),
              "i32.load offset=8 align=4");
    EXPECT_EQ(toString(Instr::memOp(Opcode::I32Load, 0, 0)), "i32.load");
    EXPECT_EQ(toString(Instr::blockStart(Opcode::Block, ValType::I32)),
              "block (result i32)");
    EXPECT_EQ(toString(Instr::blockStart(Opcode::Loop, std::nullopt)),
              "loop");
}

TEST(Printer, RendersModuleStructure)
{
    ModuleBuilder mb;
    mb.memory(2, 4);
    mb.global(ValType::I32, true, Value::makeI32(0));
    mb.addFunction(FuncType({ValType::I32}, {ValType::I32}), "double",
                   [](FunctionBuilder &f) {
                       f.localGet(0).i32Const(2).op(Opcode::I32Mul);
                   });
    std::string text = toString(mb.build());
    EXPECT_NE(text.find("(module"), std::string::npos);
    EXPECT_NE(text.find("(memory 2 4)"), std::string::npos);
    EXPECT_NE(text.find("(export \"double\")"), std::string::npos);
    EXPECT_NE(text.find("i32.mul"), std::string::npos);
    EXPECT_NE(text.find("[i32] -> [i32]"), std::string::npos);
}

TEST(Printer, IndentsNestedBlocks)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "f", [](FunctionBuilder &f) {
        f.block();
        f.loop();
        f.nop();
        f.end();
        f.end();
    });
    std::string text = toString(mb.build(), 0);
    // The nop sits two block levels deep -> indented further than the
    // block itself.
    size_t block_pos = text.find("block");
    size_t nop_pos = text.find("nop");
    ASSERT_NE(block_pos, std::string::npos);
    ASSERT_NE(nop_pos, std::string::npos);
    size_t block_col = block_pos - text.rfind('\n', block_pos) - 1;
    size_t nop_col = nop_pos - text.rfind('\n', nop_pos) - 1;
    EXPECT_GT(nop_col, block_col);
}

TEST(Printer, MarksImportedFunctions)
{
    ModuleBuilder mb;
    mb.importFunction("env", "ext", FuncType({}, {}));
    std::string text = toString(mb.build());
    EXPECT_NE(text.find("(import \"env\" \"ext\")"), std::string::npos);
}

TEST(Printer, ShowsInstructionIndices)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "f", [](FunctionBuilder &f) {
        f.nop();
        f.nop();
    });
    std::string text = toString(mb.build(), 0);
    EXPECT_NE(text.find(";; @0"), std::string::npos);
    EXPECT_NE(text.find(";; @1"), std::string::npos);
}

} // namespace
} // namespace wasabi::wasm
