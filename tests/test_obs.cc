/**
 * @file
 * Tests for the observability subsystem (src/obs/): the mini JSON
 * reader, the ProfileCollector and its three reporters, schema
 * validation, dispatch-count accounting against the runtime, the
 * determinism guarantee of `toJson(deterministic=true)` across
 * instrumentation thread counts, and the interpreter counters.
 */

#include <gtest/gtest.h>

#include "core/instrument.h"
#include "interp/interpreter.h"
#include "obs/json.h"
#include "obs/profile.h"
#include "runtime/runtime.h"
#include "wasm/builder.h"
#include "wasm/validator.h"

namespace wasabi::obs {
namespace {

using core::HookKind;
using core::HookSet;
using wasm::FuncType;
using wasm::ValType;

// --- JSON reader -----------------------------------------------------

TEST(Json, ParsesScalarsAndContainers)
{
    std::string err;
    auto v = json::parse(
        R"({"a": 1, "b": [true, null, "x\n"], "c": {"d": -2.5e1}})",
        &err);
    ASSERT_TRUE(v.has_value()) << err;
    ASSERT_TRUE(v->isObject());
    EXPECT_EQ(v->find("a")->asU64(), 1u);
    const json::Value *b = v->find("b");
    ASSERT_TRUE(b && b->isArray());
    ASSERT_EQ(b->array.size(), 3u);
    EXPECT_TRUE(b->array[0].boolean);
    EXPECT_TRUE(b->array[1].isNull());
    EXPECT_EQ(b->array[2].str, "x\n");
    EXPECT_DOUBLE_EQ(v->find("c")->find("d")->number, -25.0);
}

TEST(Json, RejectsMalformedInput)
{
    std::string err;
    EXPECT_FALSE(json::parse("", &err).has_value());
    EXPECT_FALSE(json::parse("{", &err).has_value());
    EXPECT_FALSE(json::parse("{\"a\": }", &err).has_value());
    EXPECT_FALSE(json::parse("[1,]", &err).has_value());
    EXPECT_FALSE(json::parse("01", &err).has_value());
    EXPECT_FALSE(json::parse("tru", &err).has_value());
    EXPECT_FALSE(json::parse("\"unterminated", &err).has_value());
    // Trailing garbage after a complete document.
    EXPECT_FALSE(json::parse("{} extra", &err).has_value());
    EXPECT_FALSE(err.empty());
}

TEST(Json, DecodesUnicodeEscapesIncludingSurrogatePairs)
{
    std::string err;
    // BMP code points: 1-, 2- and 3-byte UTF-8.
    auto bmp = json::parse(R"("\u0041\u00e9\u20ac")", &err);
    ASSERT_TRUE(bmp.has_value()) << err;
    EXPECT_EQ(bmp->str, "A\xC3\xA9\xE2\x82\xAC");
    // U+1F600 as a surrogate pair must decode to one 4-byte UTF-8
    // sequence, not two 3-byte WTF-8 surrogates.
    auto emoji = json::parse(R"("\ud83d\ude00")", &err);
    ASSERT_TRUE(emoji.has_value()) << err;
    EXPECT_EQ(emoji->str, "\xF0\x9F\x98\x80");
}

TEST(Json, RejectsLoneAndMalformedSurrogates)
{
    std::string err;
    // Lone high surrogate (end of string / non-escape follower).
    EXPECT_FALSE(json::parse(R"("\ud83d")", &err).has_value());
    EXPECT_FALSE(json::parse(R"("\ud83dx")", &err).has_value());
    EXPECT_FALSE(json::parse(R"("\ud83d\n")", &err).has_value());
    // High surrogate followed by a non-low-surrogate escape.
    EXPECT_FALSE(json::parse(R"("\ud83dA")", &err).has_value());
    EXPECT_FALSE(json::parse(R"("\ud83d\ud83d")", &err).has_value());
    // Lone low surrogate.
    EXPECT_FALSE(json::parse(R"("\ude00")", &err).has_value());
    EXPECT_FALSE(err.empty());
}

TEST(Json, RejectsExcessiveNesting)
{
    std::string deep(100, '[');
    deep += std::string(100, ']');
    std::string err;
    EXPECT_FALSE(json::parse(deep, &err).has_value());
    EXPECT_NE(err.find("nesting"), std::string::npos);
}

// --- profiled end-to-end run ----------------------------------------

/** Observes everything, does nothing. */
class NullAnalysis final : public runtime::Analysis {
  public:
    HookSet hooks() const override { return HookSet::all(); }
};

/** A small module exercising const/load/store/call/binary hooks:
 * main() stores 42, loads it back, adds helper()'s 5 -> 47. */
wasm::Module
makeTestModule()
{
    wasm::ModuleBuilder mb;
    mb.memory(1);
    mb.addFunction(FuncType({}, {ValType::I32}), "",
                   [](wasm::FunctionBuilder &f) { f.i32Const(5); });
    mb.addFunction(FuncType({}, {ValType::I32}), "main",
                   [](wasm::FunctionBuilder &f) {
                       f.i32Const(0).i32Const(42).i32Store();
                       f.i32Const(0).i32Load();
                       f.call(0);
                       f.op(wasm::Opcode::I32Add);
                   });
    return mb.build();
}

/** Instrument (with @p threads workers), run under a NullAnalysis
 * with @p collector attached; returns the runtime's invocation
 * count. */
uint64_t
runProfiled(const wasm::Module &m, unsigned threads,
            ProfileCollector &collector)
{
    core::InstrumentOptions opts;
    opts.numThreads = threads;
    core::InstrumentResult r = [&] {
        ProfileCollector::ScopedPhase p(&collector, "instrument");
        return core::instrument(m, HookSet::all(), opts);
    }();
    collector.recordInstrumentation(r.stats);
    runtime::WasabiRuntime rt(r.info);
    NullAnalysis a;
    rt.addAnalysis(&a, "null");
    rt.setProfiler(&collector);
    auto inst = rt.instantiate(r.module);
    interp::Interpreter interp;
    {
        ProfileCollector::ScopedPhase p(&collector, "execute");
        auto results = interp.invokeExport(*inst, "main", {});
        EXPECT_EQ(results.at(0).i32(), 47u);
    }
    const interp::ExecStats &es = interp.stats();
    collector.setInterpCounters(InterpCounters{
        es.instructions, es.calls, es.memoryOps, es.memoryOpsElided,
        es.traps});
    return rt.hookInvocations();
}

TEST(Profile, PerKindCountsSumExactlyToHookInvocations)
{
    ProfileCollector c;
    uint64_t invocations = runProfiled(makeTestModule(), 1, c);
    EXPECT_GT(invocations, 0u);
    EXPECT_EQ(c.totalDispatches(), invocations);
    // Exact per-kind counts: 4 consts (0, 42, 0, helper's 5), one
    // load, one store, one add; call fires pre and post.
    EXPECT_EQ(c.dispatchCount(HookKind::Const), 4u);
    EXPECT_EQ(c.dispatchCount(HookKind::Load), 1u);
    EXPECT_EQ(c.dispatchCount(HookKind::Store), 1u);
    EXPECT_EQ(c.dispatchCount(HookKind::Binary), 1u);
    EXPECT_EQ(c.dispatchCount(HookKind::Call), 2u);
}

TEST(Profile, JsonReportValidatesAgainstSchema)
{
    ProfileCollector c;
    runProfiled(makeTestModule(), 2, c);
    std::string err;
    EXPECT_TRUE(validateProfileJson(c.toJson(), &err)) << err;
    EXPECT_TRUE(validateProfileJson(c.toJson(true), &err)) << err;
    EXPECT_FALSE(c.toText().empty());

    // The parsed document mirrors the collector's counters.
    auto doc = json::parse(c.toJson(), &err);
    ASSERT_TRUE(doc.has_value()) << err;
    EXPECT_EQ(doc->find("runtime")->find("hookInvocations")->asU64(),
              c.totalDispatches());
    EXPECT_EQ(doc->find("instrumentation")->find("functions")->asU64(),
              2u);
    EXPECT_GT(doc->find("interp")->find("instructions")->asU64(), 0u);
    // In the instrumented run every hook dispatch is itself a call to
    // an imported function, on top of main's call to the helper.
    EXPECT_EQ(doc->find("interp")->find("calls")->asU64(),
              c.totalDispatches() + 1);
    EXPECT_EQ(doc->find("interp")->find("memoryOps")->asU64(), 2u);
    EXPECT_EQ(doc->find("interp")->find("traps")->asU64(), 0u);
}

TEST(Profile, ChromeTraceValidatesAndHasExpectedTracks)
{
    ProfileCollector c;
    runProfiled(makeTestModule(), 2, c);
    std::string trace = c.toChromeTrace();
    std::string err;
    EXPECT_TRUE(validateChromeTrace(trace, &err)) << err;
    EXPECT_NE(trace.find("instrument-worker-0"), std::string::npos);
    EXPECT_NE(trace.find("instrument-worker-1"), std::string::npos);
    EXPECT_NE(trace.find("runtime-hooks"), std::string::npos);
    EXPECT_NE(trace.find("\"analysis: null\""), std::string::npos);
    // Phase spans recorded by the ScopedPhase helpers.
    EXPECT_NE(trace.find("\"instrument\""), std::string::npos);
    EXPECT_NE(trace.find("\"execute\""), std::string::npos);
}

TEST(Profile, DeterministicJsonIdenticalAcrossThreadCounts)
{
    ProfileCollector c1, c8;
    runProfiled(makeTestModule(), 1, c1);
    runProfiled(makeTestModule(), 8, c8);
    // Timings and worker layout differ, but the deterministic report
    // must agree byte-for-byte.
    EXPECT_EQ(c1.toJson(true), c8.toJson(true));
    // The full reports still both validate (they differ in timings).
    std::string err;
    EXPECT_TRUE(validateProfileJson(c1.toJson(), &err)) << err;
    EXPECT_TRUE(validateProfileJson(c8.toJson(), &err)) << err;
}

TEST(Profile, InstrumentStatsAccountForWorkersAndHookMap)
{
    core::InstrumentOptions opts;
    opts.numThreads = 4;
    core::InstrumentResult r =
        core::instrument(makeTestModule(), HookSet::all(), opts);
    const core::InstrumentStats &s = r.stats;
    EXPECT_EQ(s.workers.size(), 4u);
    uint64_t sum = 0;
    for (const auto &w : s.workers)
        sum += w.functions;
    EXPECT_EQ(sum, s.functionsInstrumented);
    EXPECT_EQ(s.functionsInstrumented, 2u);
    EXPECT_EQ(s.hooksGenerated, r.info->hooks.size());
    // Every distinct hook was inserted into the shared map exactly
    // once; per-worker caches make hit/miss counts nondeterministic,
    // but inserts are not.
    EXPECT_EQ(s.hookMap.inserts, s.hooksGenerated);
    EXPECT_GT(s.wallNanos, 0u);
}

TEST(Profile, DisabledCollectorRecordsNothing)
{
    ProfileCollector c(/*enabled=*/false);
    runProfiled(makeTestModule(), 1, c);
    EXPECT_EQ(c.totalDispatches(), 0u);
}

// --- interpreter counters -------------------------------------------

TEST(InterpCountersTest, CountsCallsAndMemoryOps)
{
    wasm::Module m = makeTestModule();
    auto inst =
        interp::Instance::instantiate(m, interp::Linker());
    interp::Interpreter interp;
    interp.invokeExport(*inst, "main", {});
    const interp::ExecStats &es = interp.stats();
    EXPECT_EQ(es.calls, 1u);
    EXPECT_EQ(es.memoryOps, 2u); // one store + one load
    EXPECT_EQ(es.traps, 0u);
    EXPECT_GT(es.instructions, 0u);
    EXPECT_EQ(es.instructions, interp.instructionsExecuted());
}

TEST(InterpCountersTest, CountsTraps)
{
    wasm::ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "boom",
                   [](wasm::FunctionBuilder &f) { f.unreachable(); });
    wasm::Module m = mb.build();
    auto inst = interp::Instance::instantiate(m, interp::Linker());
    interp::Interpreter interp;
    EXPECT_THROW(interp.invokeExport(*inst, "boom", {}), interp::Trap);
    EXPECT_EQ(interp.stats().traps, 1u);
}

// --- schema validation negatives ------------------------------------

TEST(Schema, RejectsNonProfileDocuments)
{
    std::string err;
    EXPECT_FALSE(validateProfileJson("not json", &err));
    EXPECT_FALSE(validateProfileJson("[]", &err));
    EXPECT_FALSE(validateProfileJson("{}", &err));
    EXPECT_FALSE(validateProfileJson(
        R"({"schema": "other", "version": 1, "deterministic": false})",
        &err));
    EXPECT_FALSE(validateProfileJson(
        R"({"schema": "wasabi-profile", "version": 999,
            "deterministic": false})",
        &err));
}

TEST(Schema, RejectsUnknownTopLevelKeys)
{
    std::string err;
    EXPECT_FALSE(validateProfileJson(
        R"({"schema": "wasabi-profile", "version": 1,
            "deterministic": false,
            "runtime": {"hookInvocations": 0, "perKind": []},
            "surprise": 1})",
        &err));
    EXPECT_NE(err.find("surprise"), std::string::npos);
}

TEST(Schema, RejectsPerKindSumMismatch)
{
    std::string err;
    EXPECT_FALSE(validateProfileJson(
        R"({"schema": "wasabi-profile", "version": 1,
            "deterministic": false,
            "runtime": {"hookInvocations": 5, "perKind": [
              {"kind": "const", "count": 2, "nanos": 0},
              {"kind": "load", "count": 2, "nanos": 0}]}})",
        &err));
    EXPECT_NE(err.find("hookInvocations"), std::string::npos);
}

TEST(Schema, RejectsBadHookKindNames)
{
    std::string err;
    EXPECT_FALSE(validateProfileJson(
        R"({"schema": "wasabi-profile", "version": 1,
            "deterministic": false,
            "runtime": {"hookInvocations": 1, "perKind": [
              {"kind": "frobnicate", "count": 1, "nanos": 0}]}})",
        &err));
}

TEST(Schema, AcceptsBenchSection)
{
    std::string err;
    EXPECT_TRUE(validateProfileJson(
        R"({"schema": "wasabi-profile", "version": 1,
            "deterministic": false,
            "runtime": {"hookInvocations": 0, "perKind": []},
            "bench": {"name": "fig9", "all": {"polybench": 49.0}}})",
        &err))
        << err;
    // ...but a bench section without a name is malformed.
    EXPECT_FALSE(validateProfileJson(
        R"({"schema": "wasabi-profile", "version": 1,
            "deterministic": false,
            "runtime": {"hookInvocations": 0, "perKind": []},
            "bench": {"label": "fig9"}})",
        &err));
}

} // namespace
} // namespace wasabi::obs
