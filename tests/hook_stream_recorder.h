/**
 * @file
 * Test helper: an Analysis that serializes every hook invocation —
 * kind, location, and all dynamic arguments — into a flat string
 * stream. Two instrumentation modes are equivalent exactly when they
 * produce byte-identical streams.
 */

#ifndef WASABI_TESTS_HOOK_STREAM_RECORDER_H
#define WASABI_TESTS_HOOK_STREAM_RECORDER_H

#include <array>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/analysis.h"

namespace wasabi::tests {

using core::BlockKind;
using core::BranchTarget;
using core::Location;

class HookStreamRecorder : public runtime::Analysis {
  public:
    explicit HookStreamRecorder(core::HookSet kinds = core::HookSet::all())
        : kinds_(kinds)
    {
    }

    core::HookSet hooks() const override { return kinds_; }

    std::vector<std::string> stream;
    std::array<uint64_t, core::kNumHookKinds> perKind{};

    uint64_t
    total() const
    {
        uint64_t n = 0;
        for (uint64_t c : perKind)
            n += c;
        return n;
    }

    void
    onStart(Location loc) override
    {
        rec(core::HookKind::Start, loc, "");
    }

    void
    onNop(Location loc) override
    {
        rec(core::HookKind::Nop, loc, "");
    }

    void
    onUnreachable(Location loc) override
    {
        rec(core::HookKind::Unreachable, loc, "");
    }

    void
    onIf(Location loc, bool condition) override
    {
        rec(core::HookKind::If, loc, condition ? "true" : "false");
    }

    void
    onBr(Location loc, BranchTarget target) override
    {
        rec(core::HookKind::Br, loc, tgt(target));
    }

    void
    onBrIf(Location loc, BranchTarget target, bool condition) override
    {
        rec(core::HookKind::BrIf, loc,
            tgt(target) + (condition ? " true" : " false"));
    }

    void
    onBrTable(Location loc, std::span<const BranchTarget> table,
              BranchTarget default_target, uint32_t index) override
    {
        std::ostringstream os;
        for (const BranchTarget &t : table)
            os << tgt(t) << " ";
        os << "default=" << tgt(default_target) << " idx=" << index;
        rec(core::HookKind::BrTable, loc, os.str());
    }

    void
    onBegin(Location loc, BlockKind kind) override
    {
        rec(core::HookKind::Begin, loc, blk(kind));
    }

    void
    onEnd(Location loc, BlockKind kind, Location begin) override
    {
        rec(core::HookKind::End, loc, blk(kind) + " begin=" + fmt(begin));
    }

    void
    onConst(Location loc, wasm::Opcode op, wasm::Value value) override
    {
        rec(core::HookKind::Const, loc, opc(op) + " " + val(value));
    }

    void
    onUnary(Location loc, wasm::Opcode op, wasm::Value input,
            wasm::Value result) override
    {
        rec(core::HookKind::Unary, loc,
            opc(op) + " " + val(input) + " -> " + val(result));
    }

    void
    onBinary(Location loc, wasm::Opcode op, wasm::Value first,
             wasm::Value second, wasm::Value result) override
    {
        rec(core::HookKind::Binary, loc,
            opc(op) + " " + val(first) + " " + val(second) + " -> " +
                val(result));
    }

    void
    onDrop(Location loc, wasm::Value value) override
    {
        rec(core::HookKind::Drop, loc, val(value));
    }

    void
    onSelect(Location loc, bool condition, wasm::Value first,
             wasm::Value second) override
    {
        rec(core::HookKind::Select, loc,
            std::string(condition ? "true" : "false") + " " + val(first) +
                " " + val(second));
    }

    void
    onLocal(Location loc, wasm::Opcode op, uint32_t index,
            wasm::Value value) override
    {
        rec(core::HookKind::Local, loc,
            opc(op) + " [" + std::to_string(index) + "] " + val(value));
    }

    void
    onGlobal(Location loc, wasm::Opcode op, uint32_t index,
             wasm::Value value) override
    {
        rec(core::HookKind::Global, loc,
            opc(op) + " [" + std::to_string(index) + "] " + val(value));
    }

    void
    onLoad(Location loc, wasm::Opcode op, runtime::MemArg memarg,
           wasm::Value value) override
    {
        rec(core::HookKind::Load, loc,
            opc(op) + " @" + std::to_string(memarg.addr) + "+" +
                std::to_string(memarg.offset) + " " + val(value));
    }

    void
    onStore(Location loc, wasm::Opcode op, runtime::MemArg memarg,
            wasm::Value value) override
    {
        rec(core::HookKind::Store, loc,
            opc(op) + " @" + std::to_string(memarg.addr) + "+" +
                std::to_string(memarg.offset) + " " + val(value));
    }

    void
    onMemorySize(Location loc, uint32_t current_pages) override
    {
        rec(core::HookKind::MemorySize, loc,
            std::to_string(current_pages));
    }

    void
    onMemoryGrow(Location loc, uint32_t delta,
                 uint32_t previous_pages) override
    {
        rec(core::HookKind::MemoryGrow, loc,
            std::to_string(delta) + " prev=" +
                std::to_string(previous_pages));
    }

    void
    onCallPre(Location loc, uint32_t func,
              std::span<const wasm::Value> args,
              std::optional<uint32_t> table_index) override
    {
        std::ostringstream os;
        os << "pre f" << func;
        if (table_index)
            os << " tbl[" << *table_index << "]";
        for (const wasm::Value &a : args)
            os << " " << val(a);
        rec(core::HookKind::Call, loc, os.str());
    }

    void
    onCallPost(Location loc, std::span<const wasm::Value> results) override
    {
        std::ostringstream os;
        os << "post";
        for (const wasm::Value &r : results)
            os << " " << val(r);
        rec(core::HookKind::Call, loc, os.str());
    }

    void
    onReturn(Location loc, std::span<const wasm::Value> results) override
    {
        std::ostringstream os;
        for (const wasm::Value &r : results)
            os << val(r) << " ";
        rec(core::HookKind::Return, loc, os.str());
    }

  private:
    void
    rec(core::HookKind kind, Location loc, const std::string &args)
    {
        ++perKind[static_cast<size_t>(kind)];
        stream.push_back(std::string(core::name(kind)) + " " + fmt(loc) +
                         " " + args);
    }

    static std::string
    fmt(Location loc)
    {
        return "f" + std::to_string(loc.func) + ":" +
               (loc.instr == core::kFunctionEntry
                    ? std::string("entry")
                    : std::to_string(loc.instr));
    }

    static std::string
    val(wasm::Value v)
    {
        std::ostringstream os;
        os << "v" << static_cast<int>(v.type) << ":" << std::hex << v.bits;
        return os.str();
    }

    static std::string
    tgt(const BranchTarget &t)
    {
        return "L" + std::to_string(t.label) + "@" + fmt(t.location);
    }

    static std::string
    blk(BlockKind k)
    {
        return "b" + std::to_string(static_cast<int>(k));
    }

    static std::string
    opc(wasm::Opcode op)
    {
        return "op" + std::to_string(static_cast<int>(op));
    }

    core::HookSet kinds_;
};

} // namespace wasabi::tests

#endif // WASABI_TESTS_HOOK_STREAM_RECORDER_H
