/**
 * @file
 * Engine-intrinsic instrumentation mode (DESIGN.md §13): attachment
 * and invalidation semantics, counter visibility from inside hooks,
 * per-kind dispatch accounting, and the structured errors that keep
 * the two instrumentation modes from being combined.
 */

#include <gtest/gtest.h>

#include "core/instrument.h"
#include "core/intrinsic_info.h"
#include "hook_stream_recorder.h"
#include "interp/engine/code.h"
#include "interp/interpreter.h"
#include "runtime/runtime.h"
#include "wasm/builder.h"
#include "wasm/validator.h"
#include "workloads/polybench.h"

namespace wasabi {
namespace {

using core::HookKind;
using core::HookSet;
using interp::EngineKind;
using interp::Instance;
using interp::Interpreter;
using interp::Linker;
using tests::HookStreamRecorder;
using wasm::FuncType;
using wasm::FunctionBuilder;
using wasm::ModuleBuilder;
using wasm::Opcode;
using wasm::ValType;
using wasm::Value;
using workloads::Workload;

wasm::Module
threeNops()
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "f", [](FunctionBuilder &f) {
        f.nop().nop().nop();
    });
    return mb.build();
}

// ---------------------------------------------------------------------
// Counter visibility (the hook-dispatch correctness sweep): a hook
// must observe up-to-date execution counters — the engine's batched
// accounting has to flush before every dispatch.

/** Records interp.stats().instructions at every nop hook. */
class CounterProbe : public runtime::Analysis {
  public:
    const Interpreter *interp = nullptr;
    std::vector<uint64_t> observed;

    HookSet hooks() const override { return HookSet::only(HookKind::Nop); }

    void
    onNop(runtime::Location) override
    {
        observed.push_back(interp->stats().instructions);
    }
};

TEST(Intrinsic, HooksObserveFlushedInstructionCounter)
{
    wasm::Module m = threeNops();
    ASSERT_EQ(validationError(m), std::nullopt);
    runtime::WasabiRuntime rt(
        core::buildIntrinsicInfo(m, HookSet::only(HookKind::Nop)));
    CounterProbe probe;
    rt.addAnalysis(&probe);
    auto inst = rt.instantiateIntrinsic(m);
    Interpreter interp;
    interp.engine = EngineKind::Fast;
    probe.interp = &interp;
    interp.invokeExport(*inst, "f", {});
    // Each hook runs right after its nop retires; batched accounting
    // must already be flushed, or the probe would see stale values
    // (0, 0, 0 — or worse, whatever the previous batch held).
    EXPECT_EQ(probe.observed, (std::vector<uint64_t>{1, 2, 3}));
}

TEST(Intrinsic, RewriteModeCountersAgreeAcrossEngines)
{
    wasm::Module m = threeNops();
    core::InstrumentResult r =
        core::instrument(m, HookSet::only(HookKind::Nop));
    std::vector<uint64_t> seen[2];
    int i = 0;
    for (EngineKind engine : {EngineKind::Legacy, EngineKind::Fast}) {
        runtime::WasabiRuntime rt(r.info);
        CounterProbe probe;
        rt.addAnalysis(&probe);
        auto inst = rt.instantiate(r.module);
        Interpreter interp;
        interp.engine = engine;
        probe.interp = &interp;
        interp.invokeExport(*inst, "f", {});
        ASSERT_EQ(probe.observed.size(), 3u);
        seen[i++] = probe.observed;
    }
    // Same instrumented module, so the counter values visible inside
    // each hook must agree exactly between the walker and the VM.
    EXPECT_EQ(seen[0], seen[1]);
}

// ---------------------------------------------------------------------
// Accounting: hookInvocations() must equal the per-kind dispatch sum
// under strict-subset subscription.

TEST(Intrinsic, InvocationsEqualPerKindSumUnderSubsetSubscription)
{
    Workload w = workloads::polybench("gemm", 6);
    HookSet kinds{HookKind::Load, HookKind::Store, HookKind::Local,
                  HookKind::Binary};
    runtime::WasabiRuntime rt(core::buildIntrinsicInfo(w.module, kinds));
    HookStreamRecorder rec; // subscribes to all kinds
    rt.addAnalysis(&rec);
    auto inst = rt.instantiateIntrinsic(w.module);
    Interpreter interp;
    interp.engine = EngineKind::Fast;
    interp.invokeExport(*inst, w.entry, w.args);
    // Only the instrumented kinds may fire…
    for (int k = 0; k < core::kNumHookKinds; ++k) {
        if (!kinds.has(static_cast<HookKind>(k))) {
            EXPECT_EQ(rec.perKind[k], 0u)
                << core::name(static_cast<HookKind>(k));
        } else {
            EXPECT_GT(rec.perKind[k], 0u)
                << core::name(static_cast<HookKind>(k));
        }
    }
    // …and every dispatch is counted exactly once.
    EXPECT_EQ(rt.hookInvocations(), rec.total());
}

// ---------------------------------------------------------------------
// Combining the two instrumentation modes is a structured usage
// error, never silent double instrumentation.

TEST(Intrinsic, IntrinsicOnRewrittenModuleIsUsageError)
{
    wasm::Module m = threeNops();
    core::InstrumentResult r = core::instrument(m, HookSet::all());
    runtime::WasabiRuntime rt(
        core::buildIntrinsicInfo(m, HookSet::all()));
    EXPECT_THROW(rt.instantiateIntrinsic(r.module), std::invalid_argument);
}

TEST(Intrinsic, AttachWithRewriteStaticInfoIsUsageError)
{
    wasm::Module m = threeNops();
    core::InstrumentResult r = core::instrument(m, HookSet::all());
    runtime::WasabiRuntime rt(r.info); // rewrite-mode StaticInfo
    auto inst = Instance::instantiate(m, Linker());
    EXPECT_THROW(rt.attachIntrinsic(*inst), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Attach/detach after first execution must invalidate cached
// translations, exactly like setElisions.

TEST(Intrinsic, AttachAfterFirstExecutionTakesEffect)
{
    wasm::Module m = threeNops();
    auto inst = Instance::instantiate(m, Linker());
    Interpreter interp;
    interp.engine = EngineKind::Fast;
    // First run uninstrumented: translations are now cached.
    interp.invokeExport(*inst, "f", {});

    runtime::WasabiRuntime rt(
        core::buildIntrinsicInfo(m, HookSet::only(HookKind::Nop)));
    HookStreamRecorder rec;
    rt.addAnalysis(&rec);
    rt.attachIntrinsic(*inst);
    interp.invokeExport(*inst, "f", {});
    // A stale cached translation would silently drop every hook.
    EXPECT_EQ(rec.perKind[static_cast<size_t>(HookKind::Nop)], 3u);
}

TEST(Intrinsic, ChangingHookKindsInvalidatesTranslations)
{
    wasm::Module m = threeNops();
    auto inst = Instance::instantiate(m, Linker());
    Interpreter interp;
    interp.engine = EngineKind::Fast;

    runtime::WasabiRuntime nopRt(
        core::buildIntrinsicInfo(m, HookSet::only(HookKind::Nop)));
    HookStreamRecorder nopRec;
    nopRt.addAnalysis(&nopRec);
    nopRt.attachIntrinsic(*inst);
    interp.invokeExport(*inst, "f", {});
    EXPECT_EQ(nopRec.total(), 3u);

    // Re-attach with different kinds: old sites must be retranslated.
    runtime::WasabiRuntime beginRt(
        core::buildIntrinsicInfo(m, HookSet::only(HookKind::Begin)));
    HookStreamRecorder beginRec;
    beginRt.addAnalysis(&beginRec);
    beginRt.attachIntrinsic(*inst);
    interp.invokeExport(*inst, "f", {});
    EXPECT_EQ(nopRec.total(), 3u); // unchanged
    EXPECT_EQ(beginRec.perKind[static_cast<size_t>(HookKind::Begin)], 1u);
    EXPECT_EQ(beginRec.perKind[static_cast<size_t>(HookKind::Nop)], 0u);

    beginRt.detachIntrinsic(*inst);
    interp.invokeExport(*inst, "f", {});
    EXPECT_EQ(nopRec.total(), 3u);
    EXPECT_EQ(beginRec.total(), 1u); // detached: nothing new fired
}

// ---------------------------------------------------------------------
// The legacy walker cannot dispatch intrinsic hooks; running it on an
// instance with an attached sink must fail loudly, not silently
// drop the hook stream.

TEST(Intrinsic, LegacyEngineWithIntrinsicHooksThrows)
{
    wasm::Module m = threeNops();
    runtime::WasabiRuntime rt(
        core::buildIntrinsicInfo(m, HookSet::only(HookKind::Nop)));
    HookStreamRecorder rec;
    rt.addAnalysis(&rec);
    auto inst = rt.instantiateIntrinsic(m);
    Interpreter interp;
    interp.engine = EngineKind::Legacy;
    EXPECT_THROW(interp.invokeExport(*inst, "f", {}),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// The start function runs during instantiateIntrinsic — with hooks
// already attached, matching rewrite mode.

TEST(Intrinsic, StartFunctionIsInstrumented)
{
    ModuleBuilder mb;
    uint32_t g = mb.global(ValType::I32, true, Value::makeI32(0));
    uint32_t init =
        mb.addFunction(FuncType({}, {}), "", [&](FunctionBuilder &f) {
            f.i32Const(1).globalSet(g);
        });
    mb.addFunction(FuncType({}, {ValType::I32}), "f",
                   [&](FunctionBuilder &f) { f.globalGet(g); });
    mb.start(init);
    wasm::Module m = mb.build();
    ASSERT_EQ(validationError(m), std::nullopt);

    runtime::WasabiRuntime rt(core::buildIntrinsicInfo(
        m, HookSet{HookKind::Start, HookKind::Global}));
    HookStreamRecorder rec;
    rt.addAnalysis(&rec);
    auto inst = rt.instantiateIntrinsic(m);
    EXPECT_EQ(rec.perKind[static_cast<size_t>(HookKind::Start)], 1u);
    EXPECT_EQ(rec.perKind[static_cast<size_t>(HookKind::Global)], 1u);

    Interpreter interp;
    interp.engine = EngineKind::Fast;
    std::vector<Value> out = interp.invokeExport(*inst, "f", {});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].i32(), 1u);
    EXPECT_EQ(rec.perKind[static_cast<size_t>(HookKind::Global)], 2u);
    EXPECT_EQ(rec.perKind[static_cast<size_t>(HookKind::Start)], 1u);
}

} // namespace
} // namespace wasabi
