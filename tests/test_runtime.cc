/**
 * @file
 * WasabiRuntime tests: high-level hooks receive pre-computed,
 * correctly decoded information (joined i64s, resolved branch targets,
 * resolved indirect call targets in the original index space, memarg
 * offsets, block begin/end matching, br_table runtime end events).
 */

#include <gtest/gtest.h>

#include "core/instrument.h"
#include "runtime/runtime.h"
#include "wasm/builder.h"
#include "wasm/validator.h"

namespace wasabi::runtime {
namespace {

using core::HookSet;
using core::instrument;
using core::InstrumentResult;
using interp::Interpreter;
using wasm::FuncType;
using wasm::FunctionBuilder;
using wasm::ModuleBuilder;
using wasm::Opcode;
using wasm::Value;
using wasm::ValType;

/** Analysis that records every event as a readable string. */
class EventLog final : public Analysis {
  public:
    explicit EventLog(HookSet set = HookSet::all()) : set_(set) {}

    HookSet hooks() const override { return set_; }

    std::vector<std::string> events;

    void
    onConst(Location loc, wasm::Opcode op, wasm::Value v) override
    {
        add(loc, std::string(wasm::name(op)) + " " + toString(v));
    }
    void
    onBinary(Location loc, wasm::Opcode op, wasm::Value a, wasm::Value b,
             wasm::Value r) override
    {
        add(loc, std::string(wasm::name(op)) + " " + toString(a) + " " +
                     toString(b) + " -> " + toString(r));
    }
    void
    onBr(Location loc, BranchTarget t) override
    {
        add(loc, "br label=" + std::to_string(t.label) + " ->@" +
                     std::to_string(t.location.instr));
    }
    void
    onBrIf(Location loc, BranchTarget t, bool cond) override
    {
        add(loc, "br_if label=" + std::to_string(t.label) + " ->@" +
                     std::to_string(t.location.instr) +
                     (cond ? " taken" : " not-taken"));
    }
    void
    onBrTable(Location loc, std::span<const BranchTarget> table,
              BranchTarget def, uint32_t idx) override
    {
        add(loc, "br_table n=" + std::to_string(table.size()) +
                     " default->@" + std::to_string(def.location.instr) +
                     " idx=" + std::to_string(idx));
    }
    void
    onBegin(Location loc, BlockKind kind) override
    {
        add(loc, std::string("begin ") + name(kind));
    }
    void
    onEnd(Location loc, BlockKind kind, Location begin) override
    {
        add(loc, std::string("end ") + name(kind) + " begin@" +
                     (begin.instr == core::kFunctionEntry
                          ? std::string("entry")
                          : std::to_string(begin.instr)));
    }
    void
    onLoad(Location loc, wasm::Opcode op, MemArg m, wasm::Value v) override
    {
        add(loc, std::string(wasm::name(op)) + " addr=" +
                     std::to_string(m.addr) + "+" +
                     std::to_string(m.offset) + " = " + toString(v));
    }
    void
    onStore(Location loc, wasm::Opcode op, MemArg m, wasm::Value v) override
    {
        add(loc, std::string(wasm::name(op)) + " addr=" +
                     std::to_string(m.addr) + "+" +
                     std::to_string(m.offset) + " = " + toString(v));
    }
    void
    onLocal(Location loc, wasm::Opcode op, uint32_t idx,
            wasm::Value v) override
    {
        add(loc, std::string(wasm::name(op)) + " " + std::to_string(idx) +
                     " = " + toString(v));
    }
    void
    onCallPre(Location loc, uint32_t func,
              std::span<const wasm::Value> args,
              std::optional<uint32_t> table_index) override
    {
        std::string s = "call_pre f" + std::to_string(func);
        if (table_index)
            s += " tbl=" + std::to_string(*table_index);
        for (const wasm::Value &v : args)
            s += " " + toString(v);
        add(loc, s);
    }
    void
    onCallPost(Location loc, std::span<const wasm::Value> results) override
    {
        std::string s = "call_post";
        for (const wasm::Value &v : results)
            s += " " + toString(v);
        add(loc, s);
    }
    void
    onReturn(Location loc, std::span<const wasm::Value> results) override
    {
        std::string s = "return";
        for (const wasm::Value &v : results)
            s += " " + toString(v);
        add(loc, s);
    }

  private:
    void
    add(Location loc, const std::string &what)
    {
        events.push_back("@" +
                         (loc.instr == core::kFunctionEntry
                              ? std::string("entry")
                              : std::to_string(loc.instr)) +
                         " " + what);
    }

    HookSet set_;
};

/** Instrument, run under the runtime with the given analysis. */
std::vector<Value>
runWith(const wasm::Module &m, Analysis &analysis, const char *entry,
        std::vector<Value> args = {},
        std::shared_ptr<const core::StaticInfo> *info_out = nullptr)
{
    InstrumentResult r =
        instrument(m, WasabiRuntime::requiredHooks({&analysis}));
    EXPECT_EQ(validationError(r.module), std::nullopt);
    WasabiRuntime rt(r.info);
    rt.addAnalysis(&analysis);
    auto inst = rt.instantiate(r.module);
    if (info_out)
        *info_out = r.info;
    Interpreter interp;
    return interp.invokeExport(*inst, entry, args);
}

TEST(Runtime, I64ValuesAreJoinedAcrossTheSplitAbi)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::I64}), "f",
                   [](FunctionBuilder &f) {
                       f.i64Const(0x1122334455667788ll);
                       f.i64Const(1);
                       f.op(Opcode::I64Add);
                   });
    EventLog log(HookSet{core::HookKind::Binary});
    auto results = runWith(mb.build(), log, "f");
    EXPECT_EQ(results[0].i64(), 0x1122334455667789ull);
    ASSERT_EQ(log.events.size(), 1u);
    EXPECT_EQ(log.events[0],
              "@2 i64.add i64:1234605616436508552 i64:1 -> "
              "i64:1234605616436508553");
}

TEST(Runtime, BranchTargetsArePassedResolved)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "f", [](FunctionBuilder &f) {
        f.block();     // @0
        f.i32Const(1); // @1
        f.brIf(0);     // @2 -> resolves to @4 (after the end @3)
        f.end();       // @3
    });
    EventLog log(HookSet{core::HookKind::BrIf});
    runWith(mb.build(), log, "f");
    ASSERT_EQ(log.events.size(), 1u);
    EXPECT_EQ(log.events[0], "@2 br_if label=0 ->@4 taken");
}

TEST(Runtime, LoopBranchResolvesToLoopBody)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "f", [](FunctionBuilder &f) {
        uint32_t c = f.addLocal(ValType::I32);
        f.block();      // @0
        f.loop();       // @1
        f.localGet(c);  // @2
        f.i32Const(1);  // @3
        f.op(Opcode::I32Add); // @4
        f.localTee(c);  // @5
        f.i32Const(2);  // @6
        f.op(Opcode::I32GeS); // @7
        f.brIf(1);      // @8 -> @11 (exit)
        f.br(0);        // @9 -> @2 (loop body start)
        f.end();        // @10
        f.end();        // @11
    });
    EventLog log(HookSet{core::HookKind::Br, core::HookKind::BrIf});
    runWith(mb.build(), log, "f");
    ASSERT_EQ(log.events.size(), 3u);
    EXPECT_EQ(log.events[0], "@8 br_if label=1 ->@12 not-taken");
    EXPECT_EQ(log.events[1], "@9 br label=0 ->@2");
    EXPECT_EQ(log.events[2], "@8 br_if label=1 ->@12 taken");
}

TEST(Runtime, IndirectCallTargetResolvedToOriginalIndexSpace)
{
    ModuleBuilder mb;
    mb.table(2, 2);
    FuncType t({}, {ValType::I32});
    uint32_t f0 = mb.addFunction(t, "", [](FunctionBuilder &f) {
        f.i32Const(10);
    });
    uint32_t f1 = mb.addFunction(t, "", [](FunctionBuilder &f) {
        f.i32Const(20);
    });
    mb.elem(0, {f0, f1});
    mb.addFunction(FuncType({ValType::I32}, {ValType::I32}), "main",
                   [&](FunctionBuilder &f) {
                       f.localGet(0);
                       f.callIndirect(mb.type(t));
                   });
    EventLog log(HookSet{core::HookKind::Call});
    std::vector<Value> args{Value::makeI32(1)};
    auto results = runWith(mb.build(), log, "main", args);
    EXPECT_EQ(results[0].i32(), 20u);
    ASSERT_EQ(log.events.size(), 2u);
    // Callee must be reported as original function index 1 (f1), not
    // the shifted index in the instrumented module.
    EXPECT_EQ(log.events[0],
              "@1 call_pre f" + std::to_string(f1) + " tbl=1");
    EXPECT_EQ(log.events[1], "@1 call_post i32:20");
}

TEST(Runtime, MemargOffsetsComeFromStaticInfo)
{
    ModuleBuilder mb;
    mb.memory(1);
    mb.addFunction(FuncType({}, {ValType::I32}), "f",
                   [](FunctionBuilder &f) {
                       f.i32Const(16);
                       f.i32Const(99);
                       f.i32Store(8); // offset 8
                       f.i32Const(16);
                       f.i32Load(8);
                   });
    EventLog log(HookSet{core::HookKind::Load, core::HookKind::Store});
    runWith(mb.build(), log, "f");
    ASSERT_EQ(log.events.size(), 2u);
    EXPECT_EQ(log.events[0], "@2 i32.store addr=16+8 = i32:99");
    EXPECT_EQ(log.events[1], "@4 i32.load addr=16+8 = i32:99");
}

TEST(Runtime, EndHooksCarryMatchingBegin)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "f", [](FunctionBuilder &f) {
        f.block(); // @0
        f.nop();   // @1
        f.end();   // @2
        // function end @3
    });
    EventLog log(HookSet{core::HookKind::Begin, core::HookKind::End});
    runWith(mb.build(), log, "f");
    ASSERT_EQ(log.events.size(), 4u);
    EXPECT_EQ(log.events[0], "@entry begin function");
    EXPECT_EQ(log.events[1], "@0 begin block");
    EXPECT_EQ(log.events[2], "@2 end block begin@0");
    EXPECT_EQ(log.events[3], "@3 end function begin@entry");
}

TEST(Runtime, BrTableFiresRuntimeSelectedEndHooks)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({ValType::I32}, {}), "f",
                   [](FunctionBuilder &f) {
                       f.block();         // @0 (label 1)
                       f.block();         // @1 (label 0)
                       f.localGet(0);     // @2
                       f.brTable({0}, 1); // @3
                       f.end();           // @4
                       f.nop();           // @5
                       f.end();           // @6
                   });
    EventLog log(HookSet{core::HookKind::BrTable, core::HookKind::End});
    std::shared_ptr<const core::StaticInfo> info;

    // Case 0: leaves only the inner block.
    {
        InstrumentResult r = instrument(
            mb.module(), WasabiRuntime::requiredHooks({&log}));
        WasabiRuntime rt(r.info);
        rt.addAnalysis(&log);
        auto inst = rt.instantiate(r.module);
        Interpreter interp;
        std::vector<Value> zero{Value::makeI32(0)};
        interp.invokeExport(*inst, "f", zero);
        // br_table + end(inner, from br_table) + end(outer, static)
        // + end(function).
        ASSERT_EQ(log.events.size(), 4u);
        EXPECT_EQ(log.events[0], "@3 br_table n=1 default->@7 idx=0");
        EXPECT_EQ(log.events[1], "@4 end block begin@1");
        EXPECT_EQ(log.events[2], "@6 end block begin@0");
        EXPECT_EQ(log.events[3], "@7 end function begin@entry");

        // Default case: leaves both blocks at the branch.
        log.events.clear();
        std::vector<Value> five{Value::makeI32(5)};
        interp.invokeExport(*inst, "f", five);
        ASSERT_EQ(log.events.size(), 4u);
        EXPECT_EQ(log.events[0], "@3 br_table n=1 default->@7 idx=5");
        EXPECT_EQ(log.events[1], "@4 end block begin@1");
        EXPECT_EQ(log.events[2], "@6 end block begin@0");
        EXPECT_EQ(log.events[3], "@7 end function begin@entry");
    }
}

TEST(Runtime, MultipleAnalysesAreMultiplexedSelectively)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::I32}), "f",
                   [](FunctionBuilder &f) {
                       f.i32Const(1);
                       f.i32Const(2);
                       f.op(Opcode::I32Add);
                   });
    EventLog consts(HookSet{core::HookKind::Const});
    EventLog binaries(HookSet{core::HookKind::Binary});
    HookSet set = WasabiRuntime::requiredHooks({&consts, &binaries});
    InstrumentResult r = instrument(mb.build(), set);
    WasabiRuntime rt(r.info);
    rt.addAnalysis(&consts);
    rt.addAnalysis(&binaries);
    auto inst = rt.instantiate(r.module);
    Interpreter interp;
    interp.invokeExport(*inst, "f", {});
    EXPECT_EQ(consts.events.size(), 2u);  // two consts only
    EXPECT_EQ(binaries.events.size(), 1u); // the add only
    EXPECT_EQ(binaries.events[0], "@2 i32.add i32:1 i32:2 -> i32:3");
}

TEST(Runtime, ReturnHookSeesResults)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::F64}), "f",
                   [](FunctionBuilder &f) {
                       f.f64Const(6.25);
                       f.ret();
                   });
    EventLog log(HookSet{core::HookKind::Return});
    auto results = runWith(mb.build(), log, "f");
    EXPECT_EQ(results[0].f64(), 6.25);
    ASSERT_EQ(log.events.size(), 1u);
    EXPECT_EQ(log.events[0], "@1 return f64:6.25");
}

TEST(Runtime, HookInvocationCountMatches)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "f", [](FunctionBuilder &f) {
        f.nop();
        f.nop();
        f.nop();
    });
    EventLog log(HookSet{core::HookKind::Nop});
    InstrumentResult r =
        instrument(mb.build(), WasabiRuntime::requiredHooks({&log}));
    WasabiRuntime rt(r.info);
    rt.addAnalysis(&log);
    auto inst = rt.instantiate(r.module);
    Interpreter interp;
    interp.invokeExport(*inst, "f", {});
    EXPECT_EQ(rt.hookInvocations(), 3u);
}

} // namespace
} // namespace wasabi::runtime
