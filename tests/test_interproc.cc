/**
 * @file
 * Tests of the interprocedural engine: Tarjan SCC condensation,
 * element-segment layout resolution with structured diagnostics,
 * per-site call_indirect refinement (constant-index narrowing, typed
 * target sets, host-visibility soundness gates), the parallel
 * bottom-up effect-summary solver and its determinism guarantee, the
 * lint.interproc.* codes, the plan's call-target claims end to end
 * (instrument -> check, manifest round trip, checker rejection of
 * tampered claims), and the runtime's static-target reporting at
 * narrowed sites.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/instrument.h"
#include "runtime/runtime.h"
#include "static/analyze.h"
#include "static/call_graph.h"
#include "static/check.h"
#include "static/interproc/refined_call_graph.h"
#include "static/interproc/scc.h"
#include "static/interproc/summaries.h"
#include "static/interproc/table_layout.h"
#include "static/passes/pipeline.h"
#include "wasm/builder.h"
#include "wasm/validator.h"
#include "workloads/polybench.h"
#include "workloads/random_program.h"

namespace wasabi::static_analysis::interproc {
namespace {

using core::HookKind;
using core::HookSet;
using wasm::FuncType;
using wasm::FunctionBuilder;
using wasm::Instr;
using wasm::Module;
using wasm::ModuleBuilder;
using wasm::Opcode;
using wasm::ValType;

const FuncType kTableType({ValType::I32}, {ValType::I32});

/** [i32]->[i32] function computing `arg + delta`. */
uint32_t
addConst(ModuleBuilder &mb, int32_t delta)
{
    return mb.addFunction(kTableType, "", [&](FunctionBuilder &f) {
        f.localGet(0).i32Const(delta).op(Opcode::I32Add);
    });
}

/**
 * The strict-superset fixture: two table functions, a non-exported
 * table, and an exported main whose only call is `call_indirect` with
 * the constant index 1. The whole-table seed graph keeps both table
 * functions alive; the refined graph proves slot 0 is never called.
 */
Module
constIndexFixture(bool export_table = false)
{
    ModuleBuilder mb;
    uint32_t f0 = addConst(mb, 10);
    uint32_t f1 = addConst(mb, 20);
    uint32_t type_idx = mb.type(kTableType);
    mb.addFunction(FuncType({}, {ValType::I32}), "main",
                   [&](FunctionBuilder &f) {
                       f.i32Const(7);
                       f.i32Const(1);
                       f.callIndirect(type_idx);
                   });
    mb.table(2, 2);
    mb.elem(0, {f0, f1});
    Module m = mb.build();
    if (export_table)
        m.tables[0].exportNames.push_back("table");
    wasm::validateModule(m);
    return m;
}

// ----- SCC condensation ----------------------------------------------

SccGraph
condenseAdjacency(const std::vector<std::vector<uint32_t>> &g)
{
    return condense(static_cast<uint32_t>(g.size()),
                    [&](uint32_t n) -> const std::vector<uint32_t> & {
                        return g[n];
                    });
}

TEST(Scc, MutualRecursionCollapsesIntoOneScc)
{
    // 0 <-> 1, both -> 2, 3 isolated.
    SccGraph s = condenseAdjacency({{1, 2}, {0, 2}, {}, {}});
    EXPECT_EQ(s.sccOf[0], s.sccOf[1]);
    EXPECT_NE(s.sccOf[0], s.sccOf[2]);
    ASSERT_EQ(s.numSccs(), 3u);
    EXPECT_EQ(s.members[s.sccOf[0]], (std::vector<uint32_t>{0, 1}));
    // Condensation edges exclude the intra-SCC 0<->1 pair.
    EXPECT_EQ(s.succs[s.sccOf[0]],
              (std::vector<uint32_t>{s.sccOf[2]}));
    EXPECT_EQ(s.preds[s.sccOf[2]],
              (std::vector<uint32_t>{s.sccOf[0]}));
}

TEST(Scc, AscendingIdsAreBottomUp)
{
    // A diamond plus a 3-cycle: every condensation edge must go from
    // a higher SCC id to a lower one, so ascending order is bottom-up.
    SccGraph s =
        condenseAdjacency({{1, 2}, {3}, {3}, {4}, {5}, {3}, {0}});
    for (uint32_t scc = 0; scc < s.numSccs(); ++scc) {
        for (uint32_t callee : s.succs[scc])
            EXPECT_LT(callee, scc);
    }
    // 3 -> 4 -> 5 -> 3 is one SCC.
    EXPECT_EQ(s.sccOf[3], s.sccOf[4]);
    EXPECT_EQ(s.sccOf[4], s.sccOf[5]);
}

TEST(Scc, SelfLoopIsItsOwnSccWithoutSelfEdge)
{
    SccGraph s = condenseAdjacency({{0, 1}, {}});
    ASSERT_EQ(s.numSccs(), 2u);
    EXPECT_EQ(s.members[s.sccOf[0]], (std::vector<uint32_t>{0}));
    // succs never contain the SCC itself, even for self-loops.
    EXPECT_EQ(s.succs[s.sccOf[0]],
              (std::vector<uint32_t>{s.sccOf[1]}));
}

TEST(Scc, EmptyGraph)
{
    SccGraph s = condenseAdjacency({});
    EXPECT_EQ(s.numSccs(), 0u);
}

// ----- table layout --------------------------------------------------

TEST(TableLayout, ExactLayoutOfWellFormedSegments)
{
    Module m = constIndexFixture();
    TableLayout t = computeTableLayout(m);
    EXPECT_TRUE(t.hasTable);
    EXPECT_FALSE(t.hostVisible);
    EXPECT_TRUE(t.exact);
    ASSERT_EQ(t.slots.size(), 2u);
    EXPECT_EQ(t.slots[0], std::optional<uint32_t>(0));
    EXPECT_EQ(t.slots[1], std::optional<uint32_t>(1));
    EXPECT_EQ(t.segmentFuncs, (std::vector<uint32_t>{0, 1}));
    EXPECT_TRUE(t.diags.empty());
}

TEST(TableLayout, OutOfRangeFunctionIndexIsDiagnosedAndDropped)
{
    // Regression: the seed StaticCallGraph silently folded any
    // segment content into the target set, including indices past the
    // function space (a hostile or truncated module).
    Module m = constIndexFixture();
    m.elements[0].funcIdxs.push_back(99);
    TableLayout t = computeTableLayout(m);
    EXPECT_TRUE(t.diags.hasCode(kLintTableFuncOutOfRange));
    EXPECT_EQ(t.segmentFuncs, (std::vector<uint32_t>{0, 1}));
    // The invalid entry also must not survive into the seed graph.
    StaticCallGraph cg(m);
    for (uint32_t f = 0; f < m.numFunctions(); ++f) {
        for (uint32_t c : cg.callees(f))
            EXPECT_LT(c, m.numFunctions());
    }
}

TEST(TableLayout, OverlappingSegmentsDiagnosedLaterWins)
{
    ModuleBuilder mb;
    uint32_t f0 = addConst(mb, 1);
    uint32_t f1 = addConst(mb, 2);
    mb.table(2, 2);
    mb.elem(0, {f0, f0});
    mb.elem(1, {f1}); // overwrites slot 1
    Module m = mb.build();
    TableLayout t = computeTableLayout(m);
    EXPECT_TRUE(t.diags.hasCode(kLintTableOverlap));
    // Later segments win at instantiation; the layout stays exact.
    EXPECT_TRUE(t.exact);
    ASSERT_EQ(t.slots.size(), 2u);
    EXPECT_EQ(t.slots[0], std::optional<uint32_t>(f0));
    EXPECT_EQ(t.slots[1], std::optional<uint32_t>(f1));
}

TEST(TableLayout, NonConstantOffsetDegradesToInexact)
{
    Module m = constIndexFixture();
    m.elements[0].offset = {Instr::globalGet(0),
                            Instr(Opcode::End)};
    TableLayout t = computeTableLayout(m);
    EXPECT_TRUE(t.diags.hasCode(kLintTableNonConstOffset));
    EXPECT_FALSE(t.exact);
    // The conservative union still includes the segment's functions.
    EXPECT_EQ(t.segmentFuncs, (std::vector<uint32_t>{0, 1}));
}

TEST(TableLayout, SegmentPastTableMinimumDiagnosed)
{
    Module m = constIndexFixture();
    m.elements[0].offset = {Instr::i32Const(1), Instr(Opcode::End)};
    TableLayout t = computeTableLayout(m); // offset 1 + 2 funcs > min 2
    EXPECT_TRUE(t.diags.hasCode(kLintTableSegmentOutOfRange));
    EXPECT_FALSE(t.exact);
}

TEST(TableLayout, ImportedTableIsHostVisibleAndInexact)
{
    Module m = constIndexFixture();
    m.tables[0].import = wasm::ImportRef{"env", "table"};
    TableLayout t = computeTableLayout(m);
    EXPECT_TRUE(t.hostVisible);
    EXPECT_FALSE(t.exact);
}

// ----- refined call graph --------------------------------------------

TEST(RefinedCallGraph, ConstantIndexResolvesToUniqueTarget)
{
    Module m = constIndexFixture();
    RefinedCallGraph rcg(m);
    // main: 0 i32.const 7 / 1 i32.const 1 / 2 call_indirect
    const CallSite *site = rcg.siteAt(2, 2);
    ASSERT_NE(site, nullptr);
    EXPECT_EQ(site->kind, SiteKind::IndirectConst);
    EXPECT_EQ(site->constIndex, std::optional<uint32_t>(1));
    EXPECT_EQ(site->targets, (std::vector<uint32_t>{1}));
}

TEST(RefinedCallGraph, DeadFunctionsAreStrictSupersetOfSeed)
{
    // The acceptance fixture: seed whole-table reachability keeps both
    // table functions alive; refinement proves slot 0 dead.
    Module m = constIndexFixture();
    std::vector<uint32_t> seed_dead = StaticCallGraph(m).deadFunctions();
    std::vector<uint32_t> refined_dead =
        RefinedCallGraph(m).deadFunctions();
    EXPECT_TRUE(seed_dead.empty());
    EXPECT_EQ(refined_dead, (std::vector<uint32_t>{0}));
    EXPECT_TRUE(std::includes(refined_dead.begin(), refined_dead.end(),
                              seed_dead.begin(), seed_dead.end()));
}

TEST(RefinedCallGraph, HostVisibleTableBlocksNarrowing)
{
    // Exporting the table lets the host rewrite any slot; the same
    // constant-index site must degrade to an open target set.
    Module m = constIndexFixture(/*export_table=*/true);
    RefinedCallGraph rcg(m);
    const CallSite *site = rcg.siteAt(2, 2);
    ASSERT_NE(site, nullptr);
    EXPECT_EQ(site->kind, SiteKind::IndirectUnknown);
    // ... and every table function is reachable again (table = root).
    EXPECT_TRUE(rcg.deadFunctions().empty());
}

TEST(RefinedCallGraph, DynamicIndexYieldsTypedTargetSet)
{
    ModuleBuilder mb;
    uint32_t f0 = addConst(mb, 1);
    uint32_t f1 = addConst(mb, 2);
    uint32_t other = mb.addFunction(
        FuncType({}, {ValType::I32}), "",
        [&](FunctionBuilder &f) { f.i32Const(3); });
    uint32_t type_idx = mb.type(kTableType);
    mb.addFunction(FuncType({ValType::I32}, {ValType::I32}), "main",
                   [&](FunctionBuilder &f) {
                       f.i32Const(7);
                       f.localGet(0);
                       f.callIndirect(type_idx);
                   });
    mb.table(3, 3);
    mb.elem(0, {f0, f1, other});
    Module m = mb.build();
    wasm::validateModule(m);

    RefinedCallGraph rcg(m);
    const CallSite *site = rcg.siteAt(3, 2);
    ASSERT_NE(site, nullptr);
    // Only the signature-matching slot occupants, not `other`.
    EXPECT_EQ(site->kind, SiteKind::IndirectTyped);
    EXPECT_EQ(site->targets, (std::vector<uint32_t>{f0, f1}));
}

TEST(RefinedCallGraph, SignatureMismatchAtConstantIndexHasNoTargets)
{
    ModuleBuilder mb;
    uint32_t f0 = addConst(mb, 1);
    uint32_t wrong = mb.type(FuncType({}, {ValType::F64}));
    mb.addFunction(FuncType({}, {}), "main", [&](FunctionBuilder &f) {
        f.i32Const(0);
        f.callIndirect(wrong);
        f.drop();
    });
    mb.table(1, 1);
    mb.elem(0, {f0});
    Module m = mb.build();

    RefinedCallGraph rcg(m);
    // main: 0 i32.const 0 / 1 call_indirect / 2 drop
    const CallSite *site = rcg.siteAt(1, 1);
    ASSERT_NE(site, nullptr);
    EXPECT_EQ(site->kind, SiteKind::IndirectNone);
    EXPECT_TRUE(site->targets.empty());
}

TEST(RefinedCallGraph, RefinedDotRendersPerSiteEdges)
{
    Module m = constIndexFixture();
    std::string dot = refinedCallGraphDot(m);
    // The proven-unique edge is bold and labeled with site + index;
    // the dead slot-0 function renders dashed.
    EXPECT_NE(dot.find("f2 -> f1"), std::string::npos) << dot;
    EXPECT_NE(dot.find("style=bold"), std::string::npos) << dot;
    EXPECT_NE(dot.find("[1]"), std::string::npos) << dot;
    EXPECT_NE(dot.find("f0 [label=\"f0\", style=dashed]"),
              std::string::npos)
        << dot;
}

// ----- effect summaries ----------------------------------------------

TEST(Summaries, DirectEffectsOfLeafFunctions)
{
    ModuleBuilder mb;
    mb.memory(1, 1);
    mb.global(ValType::I32, true, wasm::Value::makeI32(0));
    mb.addFunction(FuncType({}, {}), "w", [&](FunctionBuilder &f) {
        f.i32Const(0).i32Const(5).store(Opcode::I32Store);
    });
    mb.addFunction(FuncType({}, {ValType::I32}), "r",
                   [&](FunctionBuilder &f) {
                       f.globalGet(0);
                   });
    Module m = mb.build();
    wasm::validateModule(m);

    std::vector<EffectSummary> s = functionSummaries(m);
    ASSERT_EQ(s.size(), 2u);
    EXPECT_TRUE(s[0].writesMemory);
    EXPECT_TRUE(s[0].mayTrap); // stores can go out of bounds
    EXPECT_FALSE(s[0].readsMemory);
    EXPECT_FALSE(s[1].mayTrap);
    EXPECT_EQ(s[1].globalsRead, (std::vector<uint32_t>{0}));
    EXPECT_TRUE(s[1].globalsWritten.empty());
    EXPECT_TRUE(s[1].effectFree());
    EXPECT_FALSE(s[0].effectFree());
}

TEST(Summaries, EffectsPropagateTransitively)
{
    ModuleBuilder mb;
    mb.memory(1, 1);
    uint32_t leaf =
        mb.addFunction(FuncType({}, {}), "", [&](FunctionBuilder &f) {
            f.i32Const(0).i32Const(5).store(Opcode::I32Store);
        });
    uint32_t mid =
        mb.addFunction(FuncType({}, {}), "", [&](FunctionBuilder &f) {
            f.call(leaf);
        });
    mb.addFunction(FuncType({}, {}), "main", [&](FunctionBuilder &f) {
        f.call(mid);
    });
    Module m = mb.build();
    wasm::validateModule(m);

    std::vector<EffectSummary> s = functionSummaries(m);
    EXPECT_TRUE(s[2].writesMemory);
    EXPECT_TRUE(s[2].mayTrap);
    // The callee closure is transitive.
    EXPECT_EQ(s[2].callees, (std::vector<uint32_t>{leaf, mid}));
    EXPECT_EQ(s[1].callees, (std::vector<uint32_t>{leaf}));
    EXPECT_TRUE(s[0].callees.empty());
}

TEST(Summaries, RecursiveFunctionsIncludeThemselvesInClosure)
{
    ModuleBuilder mb;
    // 0 <-> 1 mutual recursion (statically; never executed).
    uint32_t f0_idx = 0, f1_idx = 1;
    mb.addFunction(FuncType({}, {}), "a", [&](FunctionBuilder &f) {
        f.block();
        f.i32Const(0).brIf(0);
        f.call(f1_idx);
        f.end();
    });
    mb.addFunction(FuncType({}, {}), "b", [&](FunctionBuilder &f) {
        f.block();
        f.i32Const(0).brIf(0);
        f.call(f0_idx);
        f.end();
    });
    Module m = mb.build();
    wasm::validateModule(m);

    std::vector<EffectSummary> s = functionSummaries(m);
    EXPECT_EQ(s[0].callees, (std::vector<uint32_t>{0, 1}));
    EXPECT_EQ(s[1].callees, (std::vector<uint32_t>{0, 1}));
}

TEST(Summaries, ImportedCalleeSubsumesUnknownHostEffects)
{
    ModuleBuilder mb;
    uint32_t imp = mb.importFunction("env", "host", FuncType({}, {}));
    mb.addFunction(FuncType({}, {}), "main", [&](FunctionBuilder &f) {
        f.call(imp);
    });
    Module m = mb.build();
    wasm::validateModule(m);

    std::vector<EffectSummary> s = functionSummaries(m);
    EXPECT_TRUE(s[imp].callsImport);
    EXPECT_TRUE(s[1].callsImport);
    EXPECT_FALSE(s[1].effectFree());
}

TEST(Summaries, JsonIsByteIdenticalAcrossThreadCounts)
{
    // The determinism gate: the solver output is the unique least
    // fixpoint, so worker count and scheduling cannot change a byte.
    for (const auto &w : workloads::polybenchSuite(8)) {
        std::string one = summariesJson(w.module, 1);
        for (unsigned threads : {2u, 4u, 8u})
            EXPECT_EQ(one, summariesJson(w.module, threads))
                << w.name << " threads=" << threads;
    }
    for (uint64_t seed = 1; seed <= 4; ++seed) {
        workloads::RandomProgramOptions opts;
        opts.seed = seed;
        opts.indirectCallPct = 25;
        opts.constIndexIndirectPct = 50;
        Module m = workloads::randomProgram(opts).module;
        EXPECT_EQ(summariesJson(m, 1), summariesJson(m, 8))
            << "random seed " << seed;
    }
}

// ----- lint integration ----------------------------------------------

TEST(InterprocLint, RefinedOnlyDeadFunctionReported)
{
    Module m = constIndexFixture();
    Diagnostics d = passes::lintModule(m);
    EXPECT_TRUE(d.hasCode(passes::kLintInterprocDeadFunction))
        << toString(d);
}

TEST(InterprocLint, NoTargetSiteReported)
{
    ModuleBuilder mb;
    uint32_t f0 = addConst(mb, 1);
    uint32_t wrong = mb.type(FuncType({}, {ValType::F64}));
    mb.addFunction(FuncType({}, {}), "main", [&](FunctionBuilder &f) {
        f.i32Const(0);
        f.callIndirect(wrong);
        f.drop();
    });
    mb.table(1, 1);
    mb.elem(0, {f0});
    Module m = mb.build();
    Diagnostics d = passes::lintModule(m);
    EXPECT_TRUE(d.hasCode(passes::kLintInterprocNoTargets))
        << toString(d);
}

TEST(InterprocLint, UnresolvableSiteOnHostVisibleTableReported)
{
    Module m = constIndexFixture(/*export_table=*/true);
    Diagnostics d = passes::lintModule(m);
    EXPECT_TRUE(d.hasCode(passes::kLintInterprocUnresolvable))
        << toString(d);
}

TEST(InterprocLint, EffectFreeReachableFunctionReported)
{
    ModuleBuilder mb;
    uint32_t pure =
        mb.addFunction(FuncType({}, {}), "", [&](FunctionBuilder &f) {
            uint32_t l = f.addLocal(ValType::I32);
            f.i32Const(1).i32Const(2).op(Opcode::I32Add).localSet(l);
        });
    mb.addFunction(FuncType({}, {}), "main", [&](FunctionBuilder &f) {
        f.call(pure);
    });
    Module m = mb.build();
    wasm::validateModule(m);
    Diagnostics d = passes::lintModule(m);
    EXPECT_TRUE(d.hasCode(passes::kLintInterprocEffectFree))
        << toString(d);
}

TEST(InterprocLint, DeadParameterReported)
{
    ModuleBuilder mb;
    uint32_t callee = mb.addFunction(
        FuncType({ValType::I32, ValType::I32}, {ValType::I32}), "",
        [](FunctionBuilder &f) {
            // Parameter 1 is never read.
            f.localGet(0).i32Const(1).op(Opcode::I32Add);
        });
    mb.addFunction(FuncType({}, {ValType::I32}), "main",
                   [&](FunctionBuilder &f) {
                       f.i32Const(3).i32Const(4).call(callee);
                   });
    Module m = mb.build();
    wasm::validateModule(m);
    Diagnostics d = passes::lintModule(m);
    EXPECT_TRUE(d.hasCode(passes::kLintInterprocDeadParam))
        << toString(d);
}

TEST(InterprocLint, ConstantReturnOfPrivateFunctionReported)
{
    ModuleBuilder mb;
    uint32_t callee = mb.addFunction(
        FuncType({}, {ValType::I32}), "",
        [](FunctionBuilder &f) { f.i32Const(42); });
    mb.addFunction(FuncType({}, {ValType::I32}), "main",
                   [&](FunctionBuilder &f) { f.call(callee); });
    Module m = mb.build();
    wasm::validateModule(m);
    Diagnostics d = passes::lintModule(m);
    EXPECT_TRUE(d.hasCode(passes::kLintInterprocConstReturn))
        << toString(d);
    // The exported entry also trivially returns a call result, but
    // exports keep their ABI: no const-return finding for main.
    for (const auto &diag : d.all())
        if (diag.code == passes::kLintInterprocConstReturn)
            EXPECT_EQ(diag.func, callee) << toString(d);
}

TEST(InterprocLint, TableDiagnosticsSurfaceInLint)
{
    Module m = constIndexFixture();
    m.elements[0].funcIdxs.push_back(99);
    Diagnostics d = passes::lintModule(m);
    EXPECT_TRUE(d.hasCode(kLintTableFuncOutOfRange)) << toString(d);
}

// ----- plan integration + checker re-proof ---------------------------

TEST(InterprocPlan, NarrowsConstIndexSiteAndWidensDeadElision)
{
    Module m = constIndexFixture();
    core::HookOptimizationPlan plan = passes::computePlan(m);
    EXPECT_EQ(plan.deadFunctions,
              (std::unordered_set<uint32_t>{0}));
    ASSERT_EQ(plan.constCallTargets.size(), 1u);
    const auto &claim =
        plan.constCallTargets.at(core::packLoc({2, 2}));
    EXPECT_EQ(claim.tableIndex, 1u);
    EXPECT_EQ(claim.target, 1u);
}

TEST(InterprocPlan, HostVisibleTableYieldsNoCallClaims)
{
    Module m = constIndexFixture(/*export_table=*/true);
    core::HookOptimizationPlan plan = passes::computePlan(m);
    EXPECT_TRUE(plan.constCallTargets.empty());
    EXPECT_TRUE(plan.deadFunctions.empty());
}

TEST(InterprocPlan, NarrowedInstrumentationChecksClean)
{
    Module m = constIndexFixture();
    core::HookOptimizationPlan plan = passes::computePlan(m);
    core::InstrumentOptions iopts;
    iopts.plan = &plan;
    core::InstrumentResult r =
        core::instrument(m, HookSet::all(), iopts);
    Diagnostics d = checkInstrumentation(*r.info, r.module);
    EXPECT_TRUE(d.empty()) << toString(d);
}

TEST(InterprocPlan, ManifestRoundTripPreservesCallClaims)
{
    Module m = constIndexFixture();
    core::HookOptimizationPlan plan = passes::computePlan(m);
    std::string error;
    std::optional<core::HookOptimizationPlan> parsed =
        passes::planFromManifest(passes::planToManifest(plan), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->constCallTargets, plan.constCallTargets);
    EXPECT_EQ(parsed->deadFunctions, plan.deadFunctions);

    core::InstrumentOptions iopts;
    iopts.plan = &*parsed;
    core::InstrumentResult r =
        core::instrument(m, HookSet::all(), iopts);
    CheckOptions copts;
    copts.plan = *parsed;
    Diagnostics d = checkInstrumentation(m, r.module, copts);
    EXPECT_TRUE(d.empty()) << toString(d);
}

TEST(InterprocPlan, CheckerRejectsTamperedCallTarget)
{
    // An attacker (or a stale manifest) claiming the wrong callee must
    // be caught by the checker's re-proof, not trusted.
    Module m = constIndexFixture();
    core::HookOptimizationPlan plan = passes::computePlan(m);
    core::InstrumentOptions iopts;
    iopts.plan = &plan;
    core::InstrumentResult r =
        core::instrument(m, HookSet::all(), iopts);

    core::HookOptimizationPlan tampered = plan;
    tampered.constCallTargets.at(core::packLoc({2, 2})).target = 0;
    CheckOptions copts;
    copts.plan = tampered;
    Diagnostics d = checkInstrumentation(m, r.module, copts);
    EXPECT_TRUE(d.hasCode("check.manifest.bad-call-target"))
        << toString(d);
}

TEST(InterprocPlan, CheckerRejectsCallClaimOnNonCallSite)
{
    Module m = constIndexFixture();
    core::HookOptimizationPlan plan = passes::computePlan(m);
    core::InstrumentOptions iopts;
    iopts.plan = &plan;
    core::InstrumentResult r =
        core::instrument(m, HookSet::all(), iopts);

    core::HookOptimizationPlan tampered = plan;
    tampered.constCallTargets[core::packLoc({2, 0})] = {1, 1};
    CheckOptions copts;
    copts.plan = tampered;
    Diagnostics d = checkInstrumentation(m, r.module, copts);
    EXPECT_TRUE(d.hasCode("check.manifest.bad-call-target"))
        << toString(d);
}

TEST(InterprocPlan, CheckerRejectsUnprovableClaimOnHostVisibleTable)
{
    // Instrument the host-visible variant unoptimized, then claim the
    // narrowing anyway: the refined graph cannot prove it.
    Module m = constIndexFixture(/*export_table=*/true);
    core::InstrumentResult r = core::instrument(m, HookSet::all());

    core::HookOptimizationPlan tampered;
    tampered.constCallTargets[core::packLoc({2, 2})] = {1, 1};
    CheckOptions copts;
    copts.plan = tampered;
    Diagnostics d = checkInstrumentation(m, r.module, copts);
    EXPECT_TRUE(d.hasCode("check.manifest.bad-call-target"))
        << toString(d);
}

// ----- runtime behavior at narrowed sites ----------------------------

/** Records every onCallPre as (callee, table index or -1). */
class CallRecorder final : public runtime::Analysis {
  public:
    core::HookSet hooks() const override
    {
        return {HookKind::Call};
    }

    std::vector<std::pair<uint32_t, int64_t>> calls;

    void
    onCallPre(runtime::Location, uint32_t func,
              std::span<const wasm::Value>,
              std::optional<uint32_t> table_index) override
    {
        calls.emplace_back(func,
                           table_index ? static_cast<int64_t>(*table_index)
                                       : -1);
    }
};

TEST(InterprocRuntime, NarrowedSiteReportsStaticTargetAndIndex)
{
    // At a plan-narrowed call_indirect the direct call_pre hook has no
    // runtime table-index argument; the runtime must report the
    // statically proven callee and constant index instead of
    // misreading the type-index immediate.
    Module m = constIndexFixture();
    core::HookOptimizationPlan plan = passes::computePlan(m);
    ASSERT_FALSE(plan.constCallTargets.empty());
    core::InstrumentOptions iopts;
    iopts.plan = &plan;
    core::InstrumentResult r =
        core::instrument(m, HookSet::all(), iopts);

    CallRecorder rec;
    runtime::WasabiRuntime rt(r.info);
    rt.addAnalysis(&rec);
    auto inst = rt.instantiate(r.module);
    interp::Interpreter interp;
    std::vector<wasm::Value> out =
        interp.invokeExport(*inst, "main", {});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].i32(), 27u); // 7 + 20 through slot 1

    ASSERT_EQ(rec.calls.size(), 1u);
    EXPECT_EQ(rec.calls[0].first, 1u);  // original-space callee
    EXPECT_EQ(rec.calls[0].second, 1);  // the constant table index
}

} // namespace
} // namespace wasabi::static_analysis::interproc
