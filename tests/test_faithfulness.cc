/**
 * @file
 * RQ2 faithfulness (paper §4.3) as a property-based test suite:
 * for a corpus of random programs and PolyBench kernels, the fully
 * instrumented binary must (a) pass the validator and (b) produce
 * exactly the same results — and the same final memory — as the
 * original, under a full-coverage analysis runtime.
 */

#include <gtest/gtest.h>

#include "analyses/instruction_mix.h"
#include "core/instrument.h"
#include "interp/interpreter.h"
#include "runtime/runtime.h"
#include "wasm/builder.h"
#include "wasm/validator.h"
#include "workloads/polybench.h"
#include "workloads/random_program.h"

namespace wasabi {
namespace {

using analyses::InstructionMix;
using core::HookSet;
using core::instrument;
using core::InstrumentResult;
using interp::Instance;
using interp::Interpreter;
using interp::Linker;
using interp::Trap;
using runtime::WasabiRuntime;
using wasm::Value;
using workloads::Workload;

/** Execution outcome: results, or the trap kind. */
struct Outcome {
    std::vector<Value> results;
    std::optional<interp::TrapKind> trap;
    std::vector<uint8_t> memory;

    bool operator==(const Outcome &other) const = default;
};

Outcome
runOriginal(const Workload &w)
{
    Outcome out;
    auto inst = Instance::instantiate(w.module, Linker());
    Interpreter interp;
    try {
        out.results = interp.invokeExport(*inst, w.entry, w.args);
    } catch (const Trap &t) {
        out.trap = t.kind();
    }
    out.memory = inst->memory().raw();
    return out;
}

Outcome
runInstrumented(const Workload &w, HookSet hooks,
                runtime::Analysis *analysis = nullptr)
{
    InstrumentResult r = instrument(w.module, hooks);
    // (a) The instrumented module must validate (the paper's
    // wasm-validate check).
    EXPECT_EQ(validationError(r.module), std::nullopt) << w.name;

    WasabiRuntime rt(r.info);
    InstructionMix default_analysis;
    rt.addAnalysis(analysis != nullptr ? analysis : &default_analysis);
    auto inst = rt.instantiate(r.module);
    Outcome out;
    Interpreter interp;
    try {
        out.results = interp.invokeExport(*inst, w.entry, w.args);
    } catch (const Trap &t) {
        out.trap = t.kind();
    }
    out.memory = inst->memory().raw();
    return out;
}

class RandomFaithfulness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomFaithfulness, FullInstrumentationPreservesBehavior)
{
    workloads::RandomProgramOptions opts;
    opts.seed = GetParam();
    opts.numFunctions = 10;
    opts.stmtsPerFunction = 14;
    Workload w = workloads::randomProgram(opts);
    ASSERT_EQ(validationError(w.module), std::nullopt);
    Outcome expected = runOriginal(w);
    Outcome actual = runInstrumented(w, HookSet::all());
    EXPECT_EQ(expected, actual) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFaithfulness,
                         ::testing::Range<uint64_t>(100, 140));

class PolybenchFaithfulness
    : public ::testing::TestWithParam<std::string> {};

TEST_P(PolybenchFaithfulness, FullInstrumentationPreservesChecksum)
{
    Workload w = workloads::polybench(GetParam(), 8);
    Outcome expected = runOriginal(w);
    Outcome actual = runInstrumented(w, HookSet::all());
    EXPECT_EQ(expected, actual) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, PolybenchFaithfulness,
    ::testing::ValuesIn(workloads::polybenchNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (char &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(Faithfulness, EverySingleHookPreservesARandomProgram)
{
    workloads::RandomProgramOptions opts;
    opts.seed = 4242;
    Workload w = workloads::randomProgram(opts);
    Outcome expected = runOriginal(w);
    for (core::HookKind kind : core::figureOrderHookKinds()) {
        Outcome actual = runInstrumented(w, HookSet::only(kind));
        EXPECT_EQ(expected, actual) << "hook " << name(kind);
    }
}

TEST(Faithfulness, TrapsArePreservedIdentically)
{
    // A program that traps with divide-by-zero must trap identically
    // when instrumented.
    wasm::ModuleBuilder mb;
    mb.addFunction(wasm::FuncType({wasm::ValType::I32},
                                  {wasm::ValType::I32}),
                   "f", [](wasm::FunctionBuilder &f) {
                       f.i32Const(100);
                       f.localGet(0);
                       f.op(wasm::Opcode::I32DivU);
                   });
    Workload w;
    w.module = mb.build();
    w.entry = "f";
    w.args = {Value::makeI32(0)};
    Outcome expected = runOriginal(w);
    ASSERT_TRUE(expected.trap.has_value());
    EXPECT_EQ(*expected.trap, interp::TrapKind::DivByZero);
    Outcome actual = runInstrumented(w, HookSet::all());
    EXPECT_EQ(expected, actual);
}

TEST(Faithfulness, ParallelInstrumentationIsFaithfulToo)
{
    workloads::RandomProgramOptions opts;
    opts.seed = 777;
    opts.numFunctions = 16;
    Workload w = workloads::randomProgram(opts);
    Outcome expected = runOriginal(w);

    core::InstrumentOptions iopts;
    iopts.numThreads = 4;
    InstrumentResult r = instrument(w.module, HookSet::all(), iopts);
    ASSERT_EQ(validationError(r.module), std::nullopt);
    WasabiRuntime rt(r.info);
    InstructionMix mix;
    rt.addAnalysis(&mix);
    auto inst = rt.instantiate(r.module);
    Interpreter interp;
    Outcome actual;
    actual.results = interp.invokeExport(*inst, w.entry, w.args);
    actual.memory = inst->memory().raw();
    EXPECT_EQ(expected, actual);
}

TEST(Faithfulness, NativeI64AbiIsEquallyFaithful)
{
    workloads::RandomProgramOptions opts;
    opts.seed = 31337;
    Workload w = workloads::randomProgram(opts);
    Outcome expected = runOriginal(w);

    core::InstrumentOptions iopts;
    iopts.splitI64 = false;
    InstrumentResult r = instrument(w.module, HookSet::all(), iopts);
    ASSERT_EQ(validationError(r.module), std::nullopt);
    WasabiRuntime rt(r.info);
    InstructionMix mix;
    rt.addAnalysis(&mix);
    auto inst = rt.instantiate(r.module);
    Interpreter interp;
    Outcome actual;
    actual.results = interp.invokeExport(*inst, w.entry, w.args);
    actual.memory = inst->memory().raw();
    EXPECT_EQ(expected, actual);
}

TEST(Faithfulness, DoubleInstrumentationStillValidatesAndRuns)
{
    // Instrumenting an already-instrumented module is unusual but must
    // produce a valid module (idempotence of the rewriting machinery).
    workloads::RandomProgramOptions opts;
    opts.seed = 9;
    opts.numFunctions = 4;
    Workload w = workloads::randomProgram(opts);
    InstrumentResult once =
        instrument(w.module, HookSet{core::HookKind::Call});
    ASSERT_EQ(validationError(once.module), std::nullopt);
    InstrumentResult twice =
        instrument(once.module, HookSet{core::HookKind::Const});
    EXPECT_EQ(validationError(twice.module), std::nullopt);
}

} // namespace
} // namespace wasabi
