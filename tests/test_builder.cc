/**
 * @file
 * Tests for the ModuleBuilder / FunctionBuilder DSL.
 */

#include <gtest/gtest.h>

#include "wasm/builder.h"
#include "wasm/validator.h"

namespace wasabi::wasm {
namespace {

TEST(Builder, BuildsMinimalValidModule)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::I32}), "answer",
                   [](FunctionBuilder &f) { f.i32Const(42); });
    Module m = mb.build();
    EXPECT_EQ(m.functions.size(), 1u);
    EXPECT_EQ(m.functions[0].body.size(), 2u); // const + end
    EXPECT_EQ(m.functions[0].body.back().op, Opcode::End);
    EXPECT_EQ(validationError(m), std::nullopt);
    EXPECT_EQ(m.findFuncExport("answer"), 0u);
}

TEST(Builder, DeduplicatesTypes)
{
    ModuleBuilder mb;
    FuncType t({ValType::I32}, {ValType::I32});
    mb.addFunction(t, "a", [](FunctionBuilder &f) { f.localGet(0); });
    mb.addFunction(t, "b", [](FunctionBuilder &f) { f.localGet(0); });
    Module m = mb.build();
    EXPECT_EQ(m.types.size(), 1u);
}

TEST(Builder, LocalsAreNumberedAfterParams)
{
    ModuleBuilder mb;
    FunctionBuilder fb =
        mb.startFunction(FuncType({ValType::I32, ValType::F64}, {}));
    uint32_t l0 = fb.addLocal(ValType::I64);
    uint32_t l1 = fb.addLocal(ValType::F32);
    EXPECT_EQ(l0, 2u);
    EXPECT_EQ(l1, 3u);
    fb.finish();
}

TEST(Builder, UnbalancedBlocksThrow)
{
    ModuleBuilder mb;
    FunctionBuilder fb = mb.startFunction(FuncType({}, {}));
    fb.block();
    EXPECT_THROW(fb.finish(), std::logic_error);
}

TEST(Builder, ExtraEndThrows)
{
    ModuleBuilder mb;
    FunctionBuilder fb = mb.startFunction(FuncType({}, {}));
    EXPECT_THROW(fb.end(), std::logic_error);
    fb.finish();
}

TEST(Builder, ImportAfterDefinedFunctionThrows)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "f", [](FunctionBuilder &) {});
    EXPECT_THROW(mb.importFunction("env", "g", FuncType({}, {})),
                 std::logic_error);
}

TEST(Builder, ForLoopSumsCorrectStructure)
{
    ModuleBuilder mb;
    FunctionBuilder fb =
        mb.startFunction(FuncType({}, {ValType::I32}), "sum");
    uint32_t i = fb.addLocal(ValType::I32);
    uint32_t acc = fb.addLocal(ValType::I32);
    fb.forLoop(i, 0, 10, [&]() {
        fb.localGet(acc).localGet(i).op(Opcode::I32Add).localSet(acc);
    });
    fb.localGet(acc);
    fb.finish();
    Module m = mb.build();
    EXPECT_EQ(validationError(m), std::nullopt);
}

TEST(Builder, GlobalsTablesMemoriesValidate)
{
    ModuleBuilder mb;
    mb.memory(1, 2, "mem");
    mb.table(4, 4);
    mb.global(ValType::F64, true, Value::makeF64(1.5), "g");
    uint32_t f = mb.addFunction(FuncType({}, {}), "f",
                                [](FunctionBuilder &) {});
    mb.elem(0, {f, f});
    mb.data(16, {1, 2, 3});
    Module m = mb.build();
    EXPECT_EQ(validationError(m), std::nullopt);
    EXPECT_EQ(m.globals[0].init[0].op, Opcode::F64Const);
}

TEST(Builder, StartFunctionIsRecorded)
{
    ModuleBuilder mb;
    uint32_t f = mb.addFunction(FuncType({}, {}), "",
                                [](FunctionBuilder &) {});
    mb.start(f);
    Module m = mb.build();
    ASSERT_TRUE(m.start.has_value());
    EXPECT_EQ(*m.start, f);
    EXPECT_EQ(validationError(m), std::nullopt);
}

TEST(Builder, TwoOpenFunctionsThrow)
{
    ModuleBuilder mb;
    FunctionBuilder fb = mb.startFunction(FuncType({}, {}));
    EXPECT_THROW(mb.startFunction(FuncType({}, {})), std::logic_error);
    fb.finish();
}

} // namespace
} // namespace wasabi::wasm
