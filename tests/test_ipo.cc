/**
 * @file
 * Tests for the interprocedural optimization layer: the sparse
 * constant/range propagation solver (interproc/ipcp) — lattice facts,
 * pinning, purity/termination proofs, and thread-count invariance of
 * its JSON rendering — plus the three analysis-proven passes built on
 * it (`ipo-const`, `inline`, `table-compact`), their claim-manifest
 * round trip, the checker's per-kind tamper rejection, and the 4-way
 * engine-differential gate over the generated corpora.
 */

#include <gtest/gtest.h>

#include "analyses/instruction_mix.h"
#include "core/instrument.h"
#include "interp/interpreter.h"
#include "runtime/runtime.h"
#include "static/interproc/ipcp.h"
#include "static/rewrite/opt.h"
#include "static/rewrite/rewrite.h"
#include "wasm/builder.h"
#include "wasm/encoder.h"
#include "wasm/validator.h"
#include "workloads/polybench.h"
#include "workloads/random_program.h"
#include "workloads/synthetic_app.h"

namespace wasabi::static_analysis::rewrite {
namespace {

using wasm::FuncType;
using wasm::FunctionBuilder;
using wasm::Instr;
using wasm::Module;
using wasm::ModuleBuilder;
using wasm::Opcode;
using wasm::ValType;
using wasm::Value;

/** Invoke exported @p entry on @p engine: (results, trap). */
std::pair<std::vector<Value>, std::optional<interp::TrapKind>>
run(const Module &m, const std::string &entry,
    const std::vector<Value> &args = {},
    interp::EngineKind engine = interp::EngineKind::Fast)
{
    auto inst = interp::Instance::instantiate(m, interp::Linker());
    interp::Interpreter interp;
    interp.engine = engine;
    std::pair<std::vector<Value>, std::optional<interp::TrapKind>> out;
    try {
        out.first = interp.invokeExport(*inst, entry, args);
    } catch (const interp::Trap &t) {
        out.second = t.kind();
    }
    return out;
}

int32_t
runI32(const Module &m, const std::string &entry,
       const std::vector<Value> &args = {})
{
    auto [results, trap] = run(m, entry, args);
    EXPECT_FALSE(trap.has_value());
    EXPECT_EQ(results.size(), 1u);
    return results.empty() ? 0 : results[0].i32();
}

// ---------------------------------------------------------------------
// The ipcp solver: argument lattices, pinning, return lattices.

TEST(Ipcp, ConstantArgumentsReachPrivateCallee)
{
    // main passes (7, 3) and (7, 4): param 0 is the constant 7, param
    // 1 is the non-constant hull [3, 4].
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::I32}), "main",
                   [](FunctionBuilder &f) {
                       f.i32Const(7).i32Const(3).call(1);
                       f.i32Const(7).i32Const(4).call(1);
                       f.op(Opcode::I32Add);
                   });
    mb.addFunction(FuncType({ValType::I32, ValType::I32},
                            {ValType::I32}),
                   "", [](FunctionBuilder &f) {
                       f.localGet(0).localGet(1).op(Opcode::I32Add);
                   });
    Module m = mb.build();
    ASSERT_EQ(wasm::validationError(m), std::nullopt);

    interproc::ModuleIpcp ipcp = interproc::ipcpSolve(m);
    ASSERT_EQ(ipcp.functions.size(), 2u);
    EXPECT_TRUE(ipcp.functions[0].pinned); // exported root
    const interproc::FunctionIpcp &callee = ipcp.functions[1];
    EXPECT_FALSE(callee.pinned);
    ASSERT_EQ(callee.args.size(), 2u);
    EXPECT_TRUE(callee.args[0].isConst());
    EXPECT_EQ(callee.args[0].lo, 7u);
    EXPECT_FALSE(callee.args[1].isConst());
    EXPECT_EQ(callee.args[1].lo, 3u);
    EXPECT_EQ(callee.args[1].hi, 4u);
}

TEST(Ipcp, IndirectTargetsAndRecursiveFunctionsArePinned)
{
    ModuleBuilder mb;
    uint32_t t = mb.table(1);
    (void)t;
    mb.addFunction(FuncType({}, {ValType::I32}), "main",
                   [](FunctionBuilder &f) {
                       f.i32Const(9).call(1);
                       f.i32Const(5).i32Const(0).callIndirect(1);
                       f.op(Opcode::I32Add);
                       f.i32Const(2).call(2).op(Opcode::I32Add);
                   });
    // Element-segment target: pinned even though also called with a
    // constant argument.
    mb.addFunction(FuncType({ValType::I32}, {ValType::I32}), "",
                   [](FunctionBuilder &f) { f.localGet(0); });
    // Direct self recursion: pinned, not terminating.
    mb.addFunction(FuncType({ValType::I32}, {ValType::I32}), "",
                   [](FunctionBuilder &f) {
                       f.localGet(0).if_(ValType::I32);
                       f.localGet(0).i32Const(1).op(Opcode::I32Sub);
                       f.call(2);
                       f.else_().i32Const(0).end();
                   });
    mb.elem(0, {1});
    Module m = mb.build();
    // Fix the call_indirect type immediate to f1's actual type.
    for (Instr &ins : m.functions[0].body) {
        if (ins.op == Opcode::CallIndirect)
            ins.imm.idx = m.functions[1].typeIdx;
    }
    ASSERT_EQ(wasm::validationError(m), std::nullopt);

    interproc::ModuleIpcp ipcp = interproc::ipcpSolve(m);
    EXPECT_TRUE(ipcp.functions[1].pinned) << "indirect target";
    ASSERT_EQ(ipcp.functions[1].args.size(), 1u);
    EXPECT_FALSE(ipcp.functions[1].args[0].isConst());
    EXPECT_TRUE(ipcp.functions[2].pinned) << "self recursion";
    EXPECT_FALSE(ipcp.functions[2].terminates);
}

TEST(Ipcp, PurityAndTerminationProofs)
{
    ModuleBuilder mb;
    mb.memory(1);
    mb.addFunction(FuncType({}, {ValType::I32}), "main",
                   [](FunctionBuilder &f) {
                       f.call(1).call(2).op(Opcode::I32Add);
                       f.call(3).op(Opcode::I32Add);
                   });
    // Pure, loop-free, constant return.
    mb.addFunction(FuncType({}, {ValType::I32}), "",
                   [](FunctionBuilder &f) { f.i32Const(42); });
    // A store: not pure (still terminates).
    mb.addFunction(FuncType({}, {ValType::I32}), "",
                   [](FunctionBuilder &f) {
                       f.i32Const(0).i32Const(1).i32Store();
                       f.i32Const(5);
                   });
    // A loop: termination not provable (still pure).
    mb.addFunction(FuncType({}, {ValType::I32}), "",
                   [](FunctionBuilder &f) {
                       uint32_t i = f.addLocal(ValType::I32);
                       f.forLoop(i, 0, 3, [&] {});
                       f.i32Const(6);
                   });
    Module m = mb.build();
    ASSERT_EQ(wasm::validationError(m), std::nullopt);

    interproc::ModuleIpcp ipcp = interproc::ipcpSolve(m);
    EXPECT_TRUE(ipcp.functions[1].pure);
    EXPECT_TRUE(ipcp.functions[1].terminates);
    ASSERT_TRUE(ipcp.functions[1].retKnown);
    EXPECT_TRUE(ipcp.functions[1].ret.isConst());
    EXPECT_EQ(ipcp.functions[1].ret.lo, 42u);

    EXPECT_FALSE(ipcp.functions[2].pure);
    EXPECT_TRUE(ipcp.functions[2].terminates);

    EXPECT_TRUE(ipcp.functions[3].pure);
    EXPECT_FALSE(ipcp.functions[3].terminates);
}

TEST(Ipcp, JsonIsByteIdenticalAcrossThreadCounts)
{
    std::vector<workloads::Workload> corpus;
    corpus.push_back(workloads::syntheticApp(workloads::AppSize::Small));
    for (const auto &w : workloads::polybenchSuite(4))
        corpus.push_back(w);
    for (uint64_t seed = 50; seed < 54; ++seed) {
        workloads::RandomProgramOptions opts;
        opts.seed = seed;
        opts.numFunctions = 10;
        opts.indirectCallPct = 25;
        corpus.push_back(workloads::randomProgram(opts));
    }
    for (const auto &w : corpus) {
        std::string one = interproc::ipcpToJson(
            w.module, interproc::ipcpSolve(w.module, 1));
        for (unsigned threads : {2u, 8u}) {
            std::string other = interproc::ipcpToJson(
                w.module, interproc::ipcpSolve(w.module, threads));
            EXPECT_EQ(one, other)
                << w.name << " at " << threads << " threads";
        }
    }
}

// ---------------------------------------------------------------------
// ipo-const: constant arguments and constant returns.

TEST(IpoConst, PropagatesConstantArgumentIntoCallee)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::I32}), "main",
                   [](FunctionBuilder &f) {
                       f.i32Const(7).call(1);
                       f.i32Const(7).call(1).op(Opcode::I32Add);
                   });
    mb.addFunction(FuncType({ValType::I32}, {ValType::I32}), "",
                   [](FunctionBuilder &f) {
                       f.localGet(0).localGet(0).op(Opcode::I32Mul);
                   });
    Module m = mb.build();

    OptResult r = optimize(m, {"ipo-const"});
    ASSERT_EQ(r.claims.ipoConstArgs.size(), 2u);
    EXPECT_EQ(r.claims.ipoConstArgs[0].func, 1u);
    EXPECT_EQ(r.claims.ipoConstArgs[0].value, 7u);
    // Both local.gets in the callee became the constant.
    EXPECT_EQ(r.module.functions[1].body[0].op, Opcode::I32Const);
    EXPECT_EQ(r.module.functions[1].body[1].op, Opcode::I32Const);
    EXPECT_EQ(runI32(r.module, "main"), 98);
    EXPECT_TRUE(checkOptimization(m, wasm::encodeModule(r.module),
                                  r.claims)
                    .empty());
}

TEST(IpoConst, FoldsCallToConstantReturningPureCallee)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::I32}), "main",
                   [](FunctionBuilder &f) {
                       f.i32Const(1).i32Const(9).call(1);
                       f.op(Opcode::I32Add);
                   });
    mb.addFunction(FuncType({ValType::I32}, {ValType::I32}), "",
                   [](FunctionBuilder &f) {
                       f.i32Const(41);
                   });
    Module m = mb.build();
    ASSERT_EQ(wasm::validationError(m), std::nullopt);

    OptResult r = optimize(m, {"ipo-const"});
    ASSERT_EQ(r.claims.ipoConstReturns.size(), 1u);
    EXPECT_EQ(r.claims.ipoConstReturns[0].callee, 1u);
    EXPECT_EQ(r.claims.ipoConstReturns[0].value, 41u);
    // call (1 param) -> drop + i32.const 41.
    EXPECT_EQ(runI32(r.module, "main"), 42);
    EXPECT_TRUE(checkOptimization(m, wasm::encodeModule(r.module),
                                  r.claims)
                    .empty());
}

TEST(IpoConst, ImpureOrPossiblyNonTerminatingCalleesAreNotFolded)
{
    ModuleBuilder mb;
    mb.memory(1);
    mb.addFunction(FuncType({}, {ValType::I32}), "main",
                   [](FunctionBuilder &f) {
                       f.call(1).call(2).op(Opcode::I32Add);
                   });
    // Constant return but writes memory: folding would lose the write.
    mb.addFunction(FuncType({}, {ValType::I32}), "",
                   [](FunctionBuilder &f) {
                       f.i32Const(0).i32Const(1).i32Store();
                       f.i32Const(10);
                   });
    // Constant return but loops: folding assumes termination.
    mb.addFunction(FuncType({}, {ValType::I32}), "",
                   [](FunctionBuilder &f) {
                       uint32_t i = f.addLocal(ValType::I32);
                       f.forLoop(i, 0, 2, [&] {});
                       f.i32Const(20);
                   });
    Module m = mb.build();

    OptResult r = optimize(m, {"ipo-const"});
    EXPECT_TRUE(r.claims.ipoConstReturns.empty());
    EXPECT_EQ(runI32(r.module, "main"), 30);
}

TEST(IpoConst, WrittenParameterIsNotPropagated)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::I32}), "main",
                   [](FunctionBuilder &f) { f.i32Const(7).call(1); });
    mb.addFunction(FuncType({ValType::I32}, {ValType::I32}), "",
                   [](FunctionBuilder &f) {
                       f.localGet(0).i32Const(1).op(Opcode::I32Add);
                       f.localSet(0);
                       f.localGet(0);
                   });
    Module m = mb.build();

    OptResult r = optimize(m, {"ipo-const"});
    EXPECT_TRUE(r.claims.ipoConstArgs.empty());
    EXPECT_EQ(runI32(r.module, "main"), 8);
}

// ---------------------------------------------------------------------
// inline: splicing, local re-zeroing, return rewriting, stripping.

TEST(Inline, SplicesCalleeAndStripsIt)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::I32}), "main",
                   [](FunctionBuilder &f) {
                       f.i32Const(20).i32Const(22).call(1);
                   });
    mb.addFunction(FuncType({ValType::I32, ValType::I32},
                            {ValType::I32}),
                   "", [](FunctionBuilder &f) {
                       f.localGet(0).localGet(1).op(Opcode::I32Add);
                   });
    Module m = mb.build();

    OptResult r = optimize(m, {"inline"});
    ASSERT_EQ(r.claims.inlinedCalls.size(), 1u);
    EXPECT_EQ(r.claims.inlinedCalls[0].callee, 1u);
    ASSERT_EQ(r.claims.inlineStripped.size(), 1u);
    EXPECT_EQ(r.claims.inlineStripped[0], 1u);
    EXPECT_EQ(r.module.numFunctions(), 1u);
    EXPECT_EQ(runI32(r.module, "main"), 42);
    EXPECT_TRUE(checkOptimization(m, wasm::encodeModule(r.module),
                                  r.claims)
                    .empty());
}

TEST(Inline, CalleeLocalsAreReZeroedInCallerLoop)
{
    // The callee accumulates into a declared local: t += x; return t.
    // Through a call, t starts at zero on every invocation, so three
    // calls with x = 5 from a caller loop sum to 15. After inlining, t
    // lives in the caller — without the explicit re-zeroing the splice
    // emits, it would keep its value across iterations (5 + 10 + 15).
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::I32}), "main",
                   [](FunctionBuilder &f) {
                       uint32_t sum = f.addLocal(ValType::I32);
                       uint32_t i = f.addLocal(ValType::I32);
                       f.forLoop(i, 0, 3, [&] {
                           f.localGet(sum).i32Const(5).call(1);
                           f.op(Opcode::I32Add).localSet(sum);
                       });
                       f.localGet(sum);
                   });
    mb.addFunction(FuncType({ValType::I32}, {ValType::I32}), "",
                   [](FunctionBuilder &f) {
                       uint32_t t = f.addLocal(ValType::I32);
                       f.localGet(t).localGet(0).op(Opcode::I32Add);
                       f.localTee(t);
                   });
    Module m = mb.build();
    ASSERT_EQ(runI32(m, "main"), 15);

    OptResult r = optimize(m, {"inline"});
    ASSERT_EQ(r.claims.inlinedCalls.size(), 1u);
    ASSERT_EQ(wasm::validationError(r.module), std::nullopt);
    EXPECT_EQ(runI32(r.module, "main"), 15);
}

TEST(Inline, RewritesEarlyReturnToWrapperBranch)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::I32}), "main",
                   [](FunctionBuilder &f) {
                       f.i32Const(7).call(1);
                       f.i32Const(0).call(1).op(Opcode::I32Add);
                   });
    mb.addFunction(FuncType({ValType::I32}, {ValType::I32}), "",
                   [](FunctionBuilder &f) {
                       f.localGet(0).if_();
                       f.i32Const(1).ret();
                       f.end();
                       f.i32Const(2);
                   });
    Module m = mb.build();
    ASSERT_EQ(wasm::validationError(m), std::nullopt);
    ASSERT_EQ(runI32(m, "main"), 3);

    OptResult r = optimize(m, {"inline"});
    ASSERT_EQ(r.claims.inlinedCalls.size(), 2u);
    ASSERT_EQ(wasm::validationError(r.module), std::nullopt);
    EXPECT_EQ(runI32(r.module, "main"), 3);
}

TEST(Inline, RecursiveCalleeKeepsItsRecursion)
{
    // fact(5) through an inlined top call: the spliced body still
    // *contains* `call fact`, so the callee survives and recursion is
    // preserved, not unrolled.
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::I32}), "main",
                   [](FunctionBuilder &f) { f.i32Const(5).call(1); });
    mb.addFunction(FuncType({ValType::I32}, {ValType::I32}), "",
                   [](FunctionBuilder &f) {
                       f.localGet(0).i32Const(1).op(Opcode::I32LtU);
                       f.if_(ValType::I32);
                       f.i32Const(1);
                       f.else_();
                       f.localGet(0);
                       f.localGet(0).i32Const(1).op(Opcode::I32Sub);
                       f.call(1).op(Opcode::I32Mul);
                       f.end();
                   });
    Module m = mb.build();
    ASSERT_EQ(runI32(m, "main"), 120);

    OptResult r = optimize(m, {"inline"});
    ASSERT_EQ(r.claims.inlinedCalls.size(), 1u);
    EXPECT_EQ(r.claims.inlinedCalls[0].func, 0u);
    EXPECT_TRUE(r.claims.inlineStripped.empty());
    EXPECT_EQ(r.module.numFunctions(), 2u);
    EXPECT_EQ(runI32(r.module, "main"), 120);
    EXPECT_TRUE(checkOptimization(m, wasm::encodeModule(r.module),
                                  r.claims)
                    .empty());
}

// ---------------------------------------------------------------------
// table-compact: slot compaction, index patching, trap preservation.

/** Table [a, b, c, <empty>]; main uses only constant index 2. */
Module
tableModule(int32_t index)
{
    ModuleBuilder mb;
    mb.table(4);
    uint32_t ty = mb.type(FuncType({}, {ValType::I32}));
    mb.addFunction(FuncType({}, {ValType::I32}), "main",
                   [&](FunctionBuilder &f) {
                       f.i32Const(index).callIndirect(ty);
                   });
    mb.addFunction(FuncType({}, {ValType::I32}), "",
                   [](FunctionBuilder &f) { f.i32Const(10); });
    mb.addFunction(FuncType({}, {ValType::I32}), "",
                   [](FunctionBuilder &f) { f.i32Const(20); });
    mb.addFunction(FuncType({}, {ValType::I32}), "",
                   [](FunctionBuilder &f) { f.i32Const(30); });
    mb.elem(0, {1, 2, 3});
    Module m = mb.build();
    return m;
}

TEST(TableCompact, CompactsToReferencedSlotsAndStripsTheRest)
{
    Module m = tableModule(2);
    ASSERT_EQ(wasm::validationError(m), std::nullopt);
    ASSERT_EQ(runI32(m, "main"), 30);

    OptResult r = optimize(m, {"table-compact"});
    ASSERT_EQ(r.claims.tableSlots.size(), 1u);
    EXPECT_EQ(r.claims.tableSlots[0].oldSlot, 2u);
    EXPECT_EQ(r.claims.tableSlots[0].funcIdx, 3u);
    ASSERT_EQ(r.claims.tableIndexRewrites.size(), 1u);
    EXPECT_EQ(r.claims.tableIndexRewrites[0].oldIndex, 2u);
    EXPECT_EQ(r.claims.tableIndexRewrites[0].newIndex, 0u);
    // The two never-referenced former element targets are stripped.
    EXPECT_EQ(r.claims.tableStripped.size(), 2u);
    ASSERT_EQ(wasm::validationError(r.module), std::nullopt);
    EXPECT_EQ(r.module.tables[0].limits.min, 1u);
    EXPECT_EQ(runI32(r.module, "main"), 30);
    EXPECT_TRUE(checkOptimization(m, wasm::encodeModule(r.module),
                                  r.claims)
                    .empty());
}

TEST(TableCompact, DynamicIndexVetoesTheWholePass)
{
    Module m = tableModule(2);
    // Turn the constant index into a dynamic one: 1 + 1.
    m.functions[0].body.insert(
        m.functions[0].body.begin(),
        {Instr::i32Const(1), Instr::i32Const(1)});
    m.functions[0].body[2] = Instr(Opcode::I32Add);
    ASSERT_EQ(wasm::validationError(m), std::nullopt);

    OptResult r = optimize(m, {"table-compact"});
    EXPECT_TRUE(r.claims.tableSlots.empty());
    EXPECT_TRUE(r.claims.tableIndexRewrites.empty());
    EXPECT_TRUE(r.claims.tableStripped.empty());
    EXPECT_EQ(r.module.tables[0].limits.min, 4u);
    EXPECT_EQ(runI32(r.module, "main"), 30);
}

TEST(TableCompact, EmptySlotHitVetoesAndPreservesTheTrap)
{
    // Index 3 is declared but never initialized: the call traps, and
    // the pass must leave the module alone so it still traps.
    Module m = tableModule(3);
    ASSERT_EQ(wasm::validationError(m), std::nullopt);
    OptResult r = optimize(m, {"table-compact"});
    EXPECT_EQ(r.claims.totalClaims(), 0u);
    auto [results, trap] = run(r.module, "main");
    EXPECT_TRUE(trap.has_value());
}

// ---------------------------------------------------------------------
// Pass-spec parsing (the `--passes=` CLI contract).

TEST(Opt, ParsePassSpecAcceptsSubsetsAndRejectsUnknownNames)
{
    EXPECT_EQ(parsePassSpec("all"), allOptPasses());
    EXPECT_EQ(parsePassSpec(""), allOptPasses());
    EXPECT_EQ(parsePassSpec("inline,table-compact"),
              (std::vector<std::string>{"inline", "table-compact"}));
    EXPECT_EQ(allOptPasses().size(), 8u);

    try {
        parsePassSpec("dead-functions,inline-everything");
        FAIL() << "expected RewriteError";
    } catch (const RewriteError &e) {
        EXPECT_EQ(e.code(), "opt.unknown-pass");
        // The usage error names the offender and lists every valid
        // pass so the CLI message is self-describing.
        EXPECT_NE(std::string(e.what()).find("inline-everything"),
                  std::string::npos);
        for (const std::string &p : allOptPasses())
            EXPECT_NE(std::string(e.what()).find(p),
                      std::string::npos)
                << p;
    }
    EXPECT_THROW(parsePassSpec("dead-functions,,inline"), RewriteError);
}

// ---------------------------------------------------------------------
// Manifest round trip and per-kind tamper rejection.

TEST(OptManifest, RoundTripsIpoClaimKinds)
{
    OptClaims claims;
    claims.passes = allOptPasses();
    claims.ipoConstArgs = {{1, 2, 0, 7}};
    claims.ipoConstReturns = {{0, 4, 3, 42}};
    claims.inlinedCalls = {{0, 9, 5}};
    claims.inlineStripped = {5};
    claims.tableSlots = {{2, 3}, {5, 1}};
    claims.tableIndexRewrites = {{0, 1, 2, 0}};
    claims.tableStripped = {4, 6};

    std::string text = claimsToManifest(claims);
    EXPECT_TRUE(isOptManifest(text));
    OptClaims parsed;
    std::string error;
    ASSERT_TRUE(claimsFromManifest(text, parsed, &error)) << error;
    EXPECT_EQ(parsed.ipoConstArgs, claims.ipoConstArgs);
    EXPECT_EQ(parsed.ipoConstReturns, claims.ipoConstReturns);
    EXPECT_EQ(parsed.inlinedCalls, claims.inlinedCalls);
    EXPECT_EQ(parsed.inlineStripped, claims.inlineStripped);
    EXPECT_EQ(parsed.tableSlots, claims.tableSlots);
    EXPECT_EQ(parsed.tableIndexRewrites, claims.tableIndexRewrites);
    EXPECT_EQ(parsed.tableStripped, claims.tableStripped);
    EXPECT_EQ(parsed.totalClaims(), claims.totalClaims());
}

TEST(OptCheck, RejectsForgedIpoConstClaims)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::I32}), "main",
                   [](FunctionBuilder &f) {
                       f.i32Const(7).call(1);
                       f.call(2).op(Opcode::I32Add);
                   });
    mb.addFunction(FuncType({ValType::I32}, {ValType::I32}), "",
                   [](FunctionBuilder &f) { f.localGet(0); });
    mb.addFunction(FuncType({}, {ValType::I32}), "",
                   [](FunctionBuilder &f) { f.i32Const(5); });
    Module m = mb.build();
    OptResult r = optimize(m, {"ipo-const"});
    std::vector<uint8_t> bytes = wasm::encodeModule(r.module);
    ASSERT_TRUE(checkOptimization(m, bytes, r.claims).empty());

    {
        // Wrong constant for a provable site.
        OptClaims forged = r.claims;
        ASSERT_FALSE(forged.ipoConstArgs.empty());
        forged.ipoConstArgs[0].value ^= 1;
        Diagnostics ds = checkOptimization(m, bytes, forged);
        EXPECT_TRUE(ds.hasCode("check.opt.bad-ipo-const-arg"))
            << toString(ds);
    }
    {
        // A fold claim for a non-constant callee return.
        OptClaims forged = r.claims;
        ASSERT_FALSE(forged.ipoConstReturns.empty());
        forged.ipoConstReturns[0].value += 1;
        Diagnostics ds = checkOptimization(m, bytes, forged);
        EXPECT_TRUE(ds.hasCode("check.opt.bad-ipo-const-return"))
            << toString(ds);
    }
    {
        // Claims for a pass the manifest does not list.
        OptClaims forged = r.claims;
        forged.passes = {"dead-functions"};
        Diagnostics ds = checkOptimization(m, bytes, forged);
        EXPECT_TRUE(ds.hasCode("check.opt.orphan-claims"))
            << toString(ds);
    }
}

TEST(OptCheck, RejectsForgedInlineClaims)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::I32}), "main",
                   [](FunctionBuilder &f) {
                       f.i32Const(1).i32Const(2).call(1);
                   });
    mb.addFunction(FuncType({ValType::I32, ValType::I32},
                            {ValType::I32}),
                   "", [](FunctionBuilder &f) {
                       f.localGet(0).localGet(1).op(Opcode::I32Add);
                   });
    Module m = mb.build();
    OptResult r = optimize(m, {"inline"});
    std::vector<uint8_t> bytes = wasm::encodeModule(r.module);
    ASSERT_TRUE(checkOptimization(m, bytes, r.claims).empty());

    {
        // An inline claim for an instruction that is not a call.
        OptClaims forged = r.claims;
        forged.inlinedCalls.push_back({0, 0, 1});
        Diagnostics ds = checkOptimization(m, bytes, forged);
        EXPECT_TRUE(ds.hasCode("check.opt.bad-ipo-inline"))
            << toString(ds);
    }
    {
        // Stripping the exported entry.
        OptClaims forged = r.claims;
        forged.inlineStripped.insert(forged.inlineStripped.begin(), 0);
        Diagnostics ds = checkOptimization(m, bytes, forged);
        EXPECT_TRUE(ds.hasCode("check.opt.bad-ipo-inline"))
            << toString(ds);
    }
    {
        OptClaims forged = r.claims;
        forged.passes = {"dead-functions"};
        Diagnostics ds = checkOptimization(m, bytes, forged);
        EXPECT_TRUE(ds.hasCode("check.opt.orphan-claims"))
            << toString(ds);
    }
}

TEST(OptCheck, RejectsTamperedTableCompactClaims)
{
    Module m = tableModule(2);
    OptResult r = optimize(m, {"table-compact"});
    std::vector<uint8_t> bytes = wasm::encodeModule(r.module);
    ASSERT_TRUE(checkOptimization(m, bytes, r.claims).empty());

    {
        // A different function in the surviving slot.
        OptClaims forged = r.claims;
        ASSERT_FALSE(forged.tableSlots.empty());
        forged.tableSlots[0].funcIdx = 1;
        Diagnostics ds = checkOptimization(m, bytes, forged);
        EXPECT_TRUE(ds.hasCode("check.opt.bad-table-compact"))
            << toString(ds);
    }
    {
        // A redirected index rewrite.
        OptClaims forged = r.claims;
        ASSERT_FALSE(forged.tableIndexRewrites.empty());
        forged.tableIndexRewrites[0].newIndex = 7;
        Diagnostics ds = checkOptimization(m, bytes, forged);
        EXPECT_TRUE(ds.hasCode("check.opt.bad-table-compact"))
            << toString(ds);
    }
    {
        // Dropping a stripped function from the claim list.
        OptClaims forged = r.claims;
        ASSERT_FALSE(forged.tableStripped.empty());
        forged.tableStripped.pop_back();
        Diagnostics ds = checkOptimization(m, bytes, forged);
        EXPECT_TRUE(ds.hasCode("check.opt.bad-table-compact"))
            << toString(ds);
    }
    {
        OptClaims forged = r.claims;
        forged.passes = {"dead-functions"};
        Diagnostics ds = checkOptimization(m, bytes, forged);
        EXPECT_TRUE(ds.hasCode("check.opt.orphan-claims"))
            << toString(ds);
    }
}

// ---------------------------------------------------------------------
// 4-way engine differential + instrumented hook parity over the
// generated corpora, full pass list.

struct Outcome {
    std::vector<Value> results;
    std::optional<interp::TrapKind> trap;
    std::vector<uint8_t> memory;

    bool operator==(const Outcome &other) const = default;
};

Outcome
runWorkload(const Module &m, const workloads::Workload &w,
            interp::EngineKind engine)
{
    Outcome out;
    auto inst = interp::Instance::instantiate(m, interp::Linker());
    interp::Interpreter interp;
    interp.engine = engine;
    try {
        out.results = interp.invokeExport(*inst, w.entry, w.args);
    } catch (const interp::Trap &t) {
        out.trap = t.kind();
    }
    out.memory = inst->memory().raw();
    return out;
}

void
expectOptimizationFaithful(const workloads::Workload &w)
{
    ASSERT_EQ(wasm::validationError(w.module), std::nullopt) << w.name;
    OptResult r = optimize(w.module, allOptPasses());
    ASSERT_EQ(wasm::validationError(r.module), std::nullopt) << w.name;

    OptClaims parsed;
    std::string error;
    ASSERT_TRUE(
        claimsFromManifest(claimsToManifest(r.claims), parsed, &error))
        << w.name << ": " << error;
    Diagnostics ds = checkOptimization(
        w.module, wasm::encodeModule(r.module), parsed);
    EXPECT_TRUE(ds.empty()) << w.name << "\n" << toString(ds);

    Outcome ol = runWorkload(w.module, w, interp::EngineKind::Legacy);
    Outcome of = runWorkload(w.module, w, interp::EngineKind::Fast);
    Outcome pl = runWorkload(r.module, w, interp::EngineKind::Legacy);
    Outcome pf = runWorkload(r.module, w, interp::EngineKind::Fast);
    EXPECT_TRUE(ol == of) << w.name << ": engines disagree (original)";
    EXPECT_TRUE(ol == pl) << w.name << ": optimization changed behavior";
    EXPECT_TRUE(ol == pf) << w.name << ": optimization changed behavior";

    core::InstrumentResult ir =
        core::instrument(r.module, core::HookSet::all());
    uint64_t hooks[2];
    Outcome outs[2];
    for (int e = 0; e < 2; ++e) {
        runtime::WasabiRuntime rt(ir.info);
        analyses::InstructionMix mix;
        rt.addAnalysis(&mix);
        auto inst = rt.instantiate(ir.module);
        interp::Interpreter interp;
        interp.engine = e == 0 ? interp::EngineKind::Legacy
                               : interp::EngineKind::Fast;
        try {
            outs[e].results = interp.invokeExport(*inst, w.entry, w.args);
        } catch (const interp::Trap &t) {
            outs[e].trap = t.kind();
        }
        outs[e].memory = inst->memory().raw();
        hooks[e] = rt.hookInvocations();
    }
    EXPECT_TRUE(outs[0] == outs[1])
        << w.name << ": instrumented engines disagree";
    EXPECT_EQ(hooks[0], hooks[1]) << w.name;
    EXPECT_GT(hooks[0], 0u) << w.name;
}

TEST(IpoDifferential, AllPolybenchKernels)
{
    for (const workloads::Workload &w : workloads::polybenchSuite(6))
        expectOptimizationFaithful(w);
}

TEST(IpoDifferential, SyntheticApps)
{
    expectOptimizationFaithful(
        workloads::syntheticApp(workloads::AppSize::Small));
    // The larger applications are too slow to execute four ways here;
    // optimizing and re-proving every claim still covers the static
    // side (the CI smoke job runs them through the CLI gate).
    workloads::Workload w =
        workloads::syntheticApp(workloads::AppSize::PdfkitLike);
    OptResult r = optimize(w.module, allOptPasses());
    EXPECT_LT(wasm::encodeModule(r.module).size(),
              wasm::encodeModule(w.module).size());
    EXPECT_TRUE(checkOptimization(w.module,
                                  wasm::encodeModule(r.module),
                                  r.claims)
                    .empty());
}

TEST(IpoDifferential, FortySeedRandomCorpus)
{
    for (uint64_t seed = 300; seed < 340; ++seed) {
        workloads::RandomProgramOptions opts;
        opts.seed = seed;
        opts.numFunctions = 8;
        opts.stmtsPerFunction = 10;
        opts.indirectCallPct = 25;
        opts.constIndexIndirectPct = 50;
        expectOptimizationFaithful(workloads::randomProgram(opts));
    }
}

// The full pass list must never lose to the PR-6 subset on the
// synthetic application (the new passes only add provable shrink).
TEST(IpoDifferential, FullPassListShrinksAtLeastAsMuchAsOldList)
{
    workloads::Workload w =
        workloads::syntheticApp(workloads::AppSize::Small);
    OptResult old_r = optimize(
        w.module, {"dead-functions", "call-indirect", "const-fold",
                   "dead-stores", "empty-blocks"});
    OptResult new_r = optimize(w.module, allOptPasses());
    EXPECT_LE(wasm::encodeModule(new_r.module).size(),
              wasm::encodeModule(old_r.module).size());
}

} // namespace
} // namespace wasabi::static_analysis::rewrite
