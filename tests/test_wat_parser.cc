/**
 * @file
 * Tests for the WAT text-format parser: modules, functions with named
 * params/locals, flat and folded instruction forms, labels, imports,
 * exports, memories/tables/globals/segments, numbers, and errors.
 * Parsed modules must validate and execute correctly.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "interp/interpreter.h"
#include "wasm/validator.h"
#include "wasm/wat_parser.h"

namespace wasabi::wasm {
namespace {

using interp::Instance;
using interp::Interpreter;
using interp::Linker;

Module
parseValid(const std::string &text)
{
    Module m = parseWat(text);
    EXPECT_EQ(validationError(m), std::nullopt) << text;
    return m;
}

Value
run1(const std::string &text, const std::string &entry,
     std::vector<Value> args = {})
{
    Module m = parseValid(text);
    auto inst = Instance::instantiate(std::move(m), Linker());
    Interpreter interp;
    auto results = interp.invokeExport(*inst, entry, args);
    EXPECT_EQ(results.size(), 1u);
    return results[0];
}

TEST(WatParser, EmptyModule)
{
    Module m = parseValid("(module)");
    EXPECT_TRUE(m.functions.empty());
}

TEST(WatParser, MinimalFunction)
{
    Value v = run1(R"((module
        (func (export "f") (result i32)
            i32.const 42)))",
                   "f");
    EXPECT_EQ(v.i32(), 42u);
}

TEST(WatParser, NamedParamsAndLocals)
{
    Value v = run1(R"((module
        (func $add (export "add") (param $a i32) (param $b i32)
                   (result i32)
            (local $tmp i32)
            local.get $a
            local.get $b
            i32.add
            local.set $tmp
            local.get $tmp)))",
                   "add",
                   {Value::makeI32(30), Value::makeI32(12)});
    EXPECT_EQ(v.i32(), 42u);
}

TEST(WatParser, FoldedExpressions)
{
    Value v = run1(R"((module
        (func (export "f") (result i32)
            (i32.mul (i32.add (i32.const 2) (i32.const 3))
                     (i32.const 8)))))",
                   "f");
    EXPECT_EQ(v.i32(), 40u);
}

TEST(WatParser, FlatBlocksAndLabels)
{
    Value v = run1(R"((module
        (func (export "count") (result i32)
            (local $i i32)
            block $exit
                loop $top
                    local.get $i
                    i32.const 1
                    i32.add
                    local.set $i
                    local.get $i
                    i32.const 10
                    i32.ge_s
                    br_if $exit
                    br $top
                end
            end
            local.get $i)))",
                   "count");
    EXPECT_EQ(v.i32(), 10u);
}

TEST(WatParser, FoldedIfThenElse)
{
    const char *text = R"((module
        (func (export "sign") (param i32) (result i32)
            (if (result i32) (i32.lt_s (local.get 0) (i32.const 0))
                (then (i32.const -1))
                (else (i32.const 1))))))";
    EXPECT_EQ(run1(text, "sign", {Value::makeI32(5)}).i32s(), 1);
    EXPECT_EQ(
        run1(text, "sign", {Value::makeI32(static_cast<uint32_t>(-5))})
            .i32s(),
        -1);
}

TEST(WatParser, FlatIfElse)
{
    const char *text = R"((module
        (func (export "pick") (param i32) (result i32)
            local.get 0
            if (result i32)
                i32.const 11
            else
                i32.const 22
            end)))";
    EXPECT_EQ(run1(text, "pick", {Value::makeI32(1)}).i32(), 11u);
    EXPECT_EQ(run1(text, "pick", {Value::makeI32(0)}).i32(), 22u);
}

TEST(WatParser, MemoryLoadsStoresWithOffsets)
{
    Value v = run1(R"((module
        (memory 1)
        (func (export "f") (result i32)
            i32.const 16
            i32.const 7
            i32.store offset=4
            i32.const 16
            i32.load offset=4 align=4)))",
                   "f");
    EXPECT_EQ(v.i32(), 7u);
}

TEST(WatParser, GlobalsWithMut)
{
    Value v = run1(R"((module
        (global $g (mut i64) (i64.const 5))
        (func (export "bump") (result i64)
            global.get $g
            i64.const 2
            i64.add
            global.set $g
            global.get $g)))",
                   "bump");
    EXPECT_EQ(v.i64(), 7u);
}

TEST(WatParser, CallsAndTypeDeclarations)
{
    Value v = run1(R"((module
        (type $unary (func (param i32) (result i32)))
        (func $inc (type $unary)
            local.get 0
            i32.const 1
            i32.add)
        (func (export "f") (result i32)
            (call $inc (i32.const 41)))))",
                   "f");
    EXPECT_EQ(v.i32(), 42u);
}

TEST(WatParser, TableAndCallIndirect)
{
    Value v = run1(R"((module
        (type $nullary (func (result i32)))
        (table 2 2 funcref)
        (func $ten (result i32) i32.const 10)
        (func $twenty (result i32) i32.const 20)
        (elem (i32.const 0) $ten $twenty)
        (func (export "f") (param i32) (result i32)
            local.get 0
            call_indirect (type $nullary))))",
                   "f", {Value::makeI32(1)});
    EXPECT_EQ(v.i32(), 20u);
}

TEST(WatParser, BrTableWithNamedLabels)
{
    const char *text = R"((module
        (func (export "f") (param i32) (result i32)
            block $b2
            block $b1
            block $b0
                local.get 0
                br_table $b0 $b1 $b2
            end
            i32.const 100
            return
            end
            i32.const 200
            return
            end
            i32.const 300)))";
    EXPECT_EQ(run1(text, "f", {Value::makeI32(0)}).i32(), 100u);
    EXPECT_EQ(run1(text, "f", {Value::makeI32(1)}).i32(), 200u);
    EXPECT_EQ(run1(text, "f", {Value::makeI32(2)}).i32(), 300u);
    EXPECT_EQ(run1(text, "f", {Value::makeI32(9)}).i32(), 300u);
}

TEST(WatParser, ImportsInlineAndStandalone)
{
    Module m = parseValid(R"((module
        (import "env" "log" (func $log (param i32)))
        (func $helper (import "env" "helper") (result i32))
        (func (export "f") (result i32)
            (call $log (i32.const 1))
            call $helper)))");
    ASSERT_EQ(m.numImportedFunctions(), 2u);
    EXPECT_EQ(m.functions[0].import->name, "log");
    EXPECT_EQ(m.functions[1].import->name, "helper");

    Linker linker;
    int logged = 0;
    linker.func("env", "log",
                [&](Instance &, std::span<const Value>,
                    std::vector<Value> &) { ++logged; });
    linker.func("env", "helper",
                [](Instance &, std::span<const Value>,
                   std::vector<Value> &out) {
                    out.push_back(Value::makeI32(5));
                });
    auto inst = Instance::instantiate(std::move(m), linker);
    Interpreter interp;
    EXPECT_EQ(interp.invokeExport(*inst, "f", {})[0].i32(), 5u);
    EXPECT_EQ(logged, 1);
}

TEST(WatParser, DataSegmentsAndStringEscapes)
{
    Module m = parseValid(R"((module
        (memory 1)
        (data (i32.const 8) "ab\n\00\ff")))");
    ASSERT_EQ(m.data.size(), 1u);
    EXPECT_EQ(m.data[0].bytes,
              (std::vector<uint8_t>{'a', 'b', '\n', 0x00, 0xFF}));
}

TEST(WatParser, StartSectionAndExportsForms)
{
    Module m = parseValid(R"((module
        (global $flag (mut i32) (i32.const 0))
        (func $init i32.const 1 global.set $flag)
        (start $init)
        (export "flag" (global $flag))))");
    ASSERT_TRUE(m.start.has_value());
    EXPECT_EQ(m.globals[0].exportNames,
              std::vector<std::string>{"flag"});
}

TEST(WatParser, NumberFormats)
{
    Module m = parseValid(R"((module
        (func (export "f") (result f64)
            i32.const 0xFF drop
            i32.const -0x10 drop
            i64.const 1_000_000 drop
            f32.const -2.5 drop
            f64.const inf drop
            f64.const -inf drop
            f64.const nan drop
            f64.const 6.25)))");
    const auto &body = m.functions[0].body;
    EXPECT_EQ(body[0].imm.i32v, 0xFFu);
    EXPECT_EQ(static_cast<int32_t>(body[2].imm.i32v), -16);
    EXPECT_EQ(body[4].imm.i64v, 1000000u);
    EXPECT_EQ(body[6].imm.f32v, -2.5f);
    EXPECT_TRUE(std::isinf(body[8].imm.f64v));
    EXPECT_TRUE(std::isnan(body[12].imm.f64v));
}

TEST(WatParser, LegacyMnemonicsAccepted)
{
    // The paper's listings use the pre-1.0 names (get_local etc.).
    Value v = run1(R"((module
        (func (export "f") (param i32) (result i32)
            get_local 0
            i32.const 2
            i32.mul)))",
                   "f", {Value::makeI32(21)});
    EXPECT_EQ(v.i32(), 42u);
}

TEST(WatParser, CommentsAreIgnored)
{
    Value v = run1(R"((module
        ;; line comment
        (func (export "f") (result i32)
            (; block
               comment ;)
            i32.const 3)))",
                   "f");
    EXPECT_EQ(v.i32(), 3u);
}

TEST(WatParser, ErrorsCarryPositions)
{
    try {
        parseWat("(module\n  (func (result i32)\n    i32.bogus))");
        FAIL() << "expected ParseError";
    } catch (const ParseError &e) {
        EXPECT_EQ(e.line, 3);
        EXPECT_NE(std::string(e.what()).find("i32.bogus"),
                  std::string::npos);
    }
}

TEST(WatParser, RejectsMalformedInput)
{
    EXPECT_THROW(parseWat("(module"), ParseError);
    EXPECT_THROW(parseWat("(module))"), ParseError);
    EXPECT_THROW(parseWat("(func)"), ParseError);
    EXPECT_THROW(parseWat("(module (func (local $x)))"), ParseError);
    EXPECT_THROW(parseWat("(module (func br $nowhere))"), ParseError);
    EXPECT_THROW(parseWat("(module (func call $missing))"), ParseError);
    EXPECT_THROW(parseWat("(module (data (i32.const 0) notastring))"),
                 ParseError);
}

TEST(WatParser, UnreachableAndDropAndSelect)
{
    Value v = run1(R"((module
        (func (export "f") (param i32) (result i32)
            i32.const 7
            i32.const 8
            local.get 0
            select)))",
                   "f", {Value::makeI32(1)});
    EXPECT_EQ(v.i32(), 7u);
}

} // namespace
} // namespace wasabi::wasm
