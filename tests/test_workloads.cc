/**
 * @file
 * Workload tests: every PolyBench kernel validates, runs and returns a
 * finite, deterministic checksum; random programs are valid and
 * deterministic across seeds; synthetic apps validate; binaries
 * roundtrip through the encoder/decoder without behavior change.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "interp/interpreter.h"
#include "wasm/decoder.h"
#include "wasm/encoder.h"
#include "wasm/validator.h"
#include "workloads/polybench.h"
#include "workloads/random_program.h"
#include "workloads/synthetic_app.h"

namespace wasabi::workloads {
namespace {

using interp::Instance;
using interp::Interpreter;
using interp::Linker;
using wasm::Value;

std::vector<Value>
runWorkload(const Workload &w)
{
    auto inst = Instance::instantiate(w.module, Linker());
    Interpreter interp;
    return interp.invokeExport(*inst, w.entry, w.args);
}

class PolybenchKernel : public ::testing::TestWithParam<std::string> {};

TEST_P(PolybenchKernel, ValidatesAndRunsToFiniteChecksum)
{
    Workload w = polybench(GetParam(), 14);
    ASSERT_EQ(validationError(w.module), std::nullopt);
    auto results = runWorkload(w);
    ASSERT_EQ(results.size(), 1u);
    double checksum = results[0].f64();
    EXPECT_TRUE(std::isfinite(checksum)) << GetParam() << ": " << checksum;
}

TEST_P(PolybenchKernel, ChecksumIsDeterministic)
{
    Workload w1 = polybench(GetParam(), 10);
    Workload w2 = polybench(GetParam(), 10);
    EXPECT_EQ(runWorkload(w1), runWorkload(w2));
}

TEST_P(PolybenchKernel, ChecksumDependsOnProblemSize)
{
    Workload small = polybench(GetParam(), 8);
    Workload big = polybench(GetParam(), 12);
    // Not a hard guarantee for every kernel, but all our initializers
    // scale with n; identical checksums would indicate a kernel that
    // ignores its data.
    EXPECT_NE(runWorkload(small)[0].f64(), runWorkload(big)[0].f64())
        << GetParam();
}

TEST_P(PolybenchKernel, SurvivesEncodeDecodeRoundtrip)
{
    Workload w = polybench(GetParam(), 8);
    auto expected = runWorkload(w);
    std::vector<uint8_t> bytes = wasm::encodeModule(w.module);
    wasm::Module decoded = wasm::decodeModule(bytes);
    ASSERT_EQ(validationError(decoded), std::nullopt);
    auto inst = Instance::instantiate(std::move(decoded), Linker());
    Interpreter interp;
    EXPECT_EQ(interp.invokeExport(*inst, w.entry, w.args), expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, PolybenchKernel, ::testing::ValuesIn(polybenchNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (char &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(Polybench, SuiteHasThirtyKernels)
{
    EXPECT_EQ(polybenchNames().size(), 30u);
    EXPECT_EQ(polybenchSuite(6).size(), 30u);
}

TEST(Polybench, UnknownKernelThrows)
{
    EXPECT_THROW(polybench("no-such-kernel"), std::invalid_argument);
}

class RandomPrograms : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomPrograms, ValidatesAndRunsDeterministically)
{
    RandomProgramOptions opts;
    opts.seed = GetParam();
    Workload w = randomProgram(opts);
    ASSERT_EQ(validationError(w.module), std::nullopt)
        << "seed " << GetParam();
    auto r1 = runWorkload(w);
    ASSERT_EQ(r1.size(), 1u);
    Workload w2 = randomProgram(opts);
    EXPECT_EQ(runWorkload(w2), r1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Range<uint64_t>(1, 26));

TEST(RandomPrograms, DifferentSeedsGiveDifferentPrograms)
{
    RandomProgramOptions a, b;
    a.seed = 1;
    b.seed = 2;
    Workload wa = randomProgram(a);
    Workload wb = randomProgram(b);
    EXPECT_NE(wasm::encodeModule(wa.module),
              wasm::encodeModule(wb.module));
}

TEST(RandomPrograms, RespectsFeatureToggles)
{
    RandomProgramOptions opts;
    opts.seed = 3;
    opts.useMemory = false;
    opts.useTable = false;
    opts.useGlobals = false;
    opts.useI64 = true;
    Workload w = randomProgram(opts);
    EXPECT_TRUE(w.module.tables.empty());
    EXPECT_TRUE(w.module.memories.empty());
    EXPECT_TRUE(w.module.globals.empty());
    EXPECT_EQ(validationError(w.module), std::nullopt);
    runWorkload(w); // must not trap
}

TEST(SyntheticApp, SmallAppValidatesAndRuns)
{
    Workload w = syntheticApp(AppSize::Small);
    ASSERT_EQ(validationError(w.module), std::nullopt);
    auto r = runWorkload(w);
    ASSERT_EQ(r.size(), 1u);
}

TEST(SyntheticApp, PdfkitLikeIsSubstantial)
{
    Workload w = syntheticApp(AppSize::PdfkitLike);
    ASSERT_EQ(validationError(w.module), std::nullopt);
    EXPECT_GT(w.module.numFunctions(), 400u);
    EXPECT_GT(wasm::encodeModule(w.module).size(), 100000u);
}

TEST(SyntheticApp, SizesAreOrdered)
{
    size_t small = wasm::encodeModule(syntheticApp(AppSize::Small).module)
                       .size();
    size_t medium =
        wasm::encodeModule(syntheticApp(AppSize::PdfkitLike).module).size();
    EXPECT_LT(small, medium);
}

} // namespace
} // namespace wasabi::workloads
