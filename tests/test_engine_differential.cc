/**
 * @file
 * Differential gate between the two execution engines: the pre-decoded
 * fast engine must be observationally identical to the legacy
 * structured walker — same results, same trap kinds, same final
 * memory, same fuel consumption, and same ExecStats — across the
 * random-program corpus, PolyBench kernels, fuel-budget sweeps,
 * instrumented runs, and the interpreter-hardening regressions.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "analyses/instruction_mix.h"
#include "core/instrument.h"
#include "core/intrinsic_info.h"
#include "core/static_info.h"
#include "hook_stream_recorder.h"
#include "interp/engine/code.h"
#include "interp/interpreter.h"
#include "runtime/runtime.h"
#include "static/passes/range.h"
#include "wasm/builder.h"
#include "wasm/validator.h"
#include "workloads/polybench.h"
#include "workloads/random_program.h"

namespace wasabi {
namespace {

using core::HookSet;
using interp::EngineKind;
using interp::ExecStats;
using interp::Instance;
using interp::Interpreter;
using interp::Linker;
using interp::Trap;
using interp::TrapKind;
using wasm::FuncType;
using wasm::FunctionBuilder;
using wasm::ModuleBuilder;
using wasm::Opcode;
using wasm::ValType;
using wasm::Value;
using workloads::Workload;

/** Everything observable about one execution. */
struct Outcome {
    std::vector<Value> results;
    std::optional<TrapKind> trap;
    std::vector<uint8_t> memory;
    uint64_t instructions = 0;
    uint64_t calls = 0;
    uint64_t memoryOps = 0;
    uint64_t traps = 0;
    std::optional<uint64_t> fuelLeft;

    bool operator==(const Outcome &other) const = default;
};

Outcome
runEngine(const Workload &w, EngineKind engine,
          std::optional<uint64_t> fuel = std::nullopt)
{
    Outcome out;
    auto inst = Instance::instantiate(w.module, Linker());
    inst->setFuel(fuel);
    Interpreter interp;
    interp.engine = engine;
    try {
        out.results = interp.invokeExport(*inst, w.entry, w.args);
    } catch (const Trap &t) {
        out.trap = t.kind();
    }
    out.memory = inst->memory().raw();
    const ExecStats &s = interp.stats();
    out.instructions = s.instructions;
    out.calls = s.calls;
    out.memoryOps = s.memoryOps;
    out.traps = s.traps;
    out.fuelLeft = inst->fuel();
    return out;
}

void
expectSame(const Outcome &legacy, const Outcome &fast,
           const std::string &what)
{
    EXPECT_EQ(legacy.results, fast.results) << what;
    EXPECT_EQ(legacy.trap, fast.trap) << what;
    EXPECT_EQ(legacy.memory == fast.memory, true)
        << what << ": final memories differ";
    EXPECT_EQ(legacy.instructions, fast.instructions) << what;
    EXPECT_EQ(legacy.calls, fast.calls) << what;
    EXPECT_EQ(legacy.memoryOps, fast.memoryOps) << what;
    EXPECT_EQ(legacy.traps, fast.traps) << what;
    EXPECT_EQ(legacy.fuelLeft, fast.fuelLeft) << what;
}

// ---------------------------------------------------------------------
// Random-program corpus, several generator shapes per seed.

class EngineDifferentialRandom
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineDifferentialRandom, UninstrumentedRunsAgree)
{
    workloads::RandomProgramOptions opts;
    opts.seed = GetParam();
    opts.numFunctions = 10;
    opts.stmtsPerFunction = 14;
    opts.indirectCallPct = 25;
    opts.constIndexIndirectPct = 50;
    Workload w = workloads::randomProgram(opts);
    ASSERT_EQ(validationError(w.module), std::nullopt);
    expectSame(runEngine(w, EngineKind::Legacy),
               runEngine(w, EngineKind::Fast),
               "seed " + std::to_string(GetParam()));
}

TEST_P(EngineDifferentialRandom, FuelSweepAgreesExactly)
{
    workloads::RandomProgramOptions opts;
    opts.seed = GetParam();
    opts.numFunctions = 6;
    opts.stmtsPerFunction = 10;
    Workload w = workloads::randomProgram(opts);
    // Total instruction count of the unlimited run calibrates the
    // sweep so it brackets the exhaustion point.
    uint64_t total = runEngine(w, EngineKind::Legacy).instructions;
    ASSERT_GT(total, 0u);
    std::vector<uint64_t> budgets = {0,         1,         7,
                                     total / 2, total - 1, total,
                                     total + 5};
    for (uint64_t fuel : budgets) {
        Outcome legacy = runEngine(w, EngineKind::Legacy, fuel);
        Outcome fast = runEngine(w, EngineKind::Fast, fuel);
        expectSame(legacy, fast,
                   "seed " + std::to_string(GetParam()) + " fuel " +
                       std::to_string(fuel));
        // The batched accounting must also preserve the legacy
        // invariant: at exhaustion, instructions retired == budget.
        if (fuel < total) {
            EXPECT_EQ(legacy.trap, TrapKind::FuelExhausted);
            EXPECT_EQ(fast.instructions, fuel);
            EXPECT_EQ(fast.fuelLeft, 0u);
        } else {
            EXPECT_EQ(legacy.trap, std::nullopt);
            EXPECT_EQ(fast.instructions, total);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineDifferentialRandom,
                         ::testing::Range<uint64_t>(300, 340));

// ---------------------------------------------------------------------
// PolyBench kernels (small n keeps the gate fast).

class EngineDifferentialPolybench
    : public ::testing::TestWithParam<std::string> {};

TEST_P(EngineDifferentialPolybench, KernelRunsAgree)
{
    Workload w = workloads::polybench(GetParam(), 8);
    expectSame(runEngine(w, EngineKind::Legacy),
               runEngine(w, EngineKind::Fast), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Kernels, EngineDifferentialPolybench,
                         ::testing::ValuesIn(workloads::polybenchNames()));

// ---------------------------------------------------------------------
// Instrumented runs: the engines must agree while dispatching hooks
// through the Wasabi runtime (host calls from inside the VM loop).

struct InstrumentedOutcome {
    Outcome outcome;
    uint64_t hookInvocations = 0;
};

InstrumentedOutcome
runInstrumented(const Workload &w, EngineKind engine)
{
    core::InstrumentResult r = core::instrument(w.module, HookSet::all());
    runtime::WasabiRuntime rt(r.info);
    analyses::InstructionMix mix;
    rt.addAnalysis(&mix);
    auto inst = rt.instantiate(r.module);
    InstrumentedOutcome out;
    Interpreter interp;
    interp.engine = engine;
    try {
        out.outcome.results = interp.invokeExport(*inst, w.entry, w.args);
    } catch (const Trap &t) {
        out.outcome.trap = t.kind();
    }
    out.outcome.memory = inst->memory().raw();
    const ExecStats &s = interp.stats();
    out.outcome.instructions = s.instructions;
    out.outcome.calls = s.calls;
    out.outcome.memoryOps = s.memoryOps;
    out.outcome.traps = s.traps;
    out.hookInvocations = rt.hookInvocations();
    return out;
}

TEST(EngineDifferential, InstrumentedRunsAgree)
{
    for (uint64_t seed : {401u, 402u, 403u, 404u}) {
        workloads::RandomProgramOptions opts;
        opts.seed = seed;
        opts.numFunctions = 8;
        opts.stmtsPerFunction = 10;
        Workload w = workloads::randomProgram(opts);
        InstrumentedOutcome legacy =
            runInstrumented(w, EngineKind::Legacy);
        InstrumentedOutcome fast = runInstrumented(w, EngineKind::Fast);
        expectSame(legacy.outcome, fast.outcome,
                   "instrumented seed " + std::to_string(seed));
        EXPECT_EQ(legacy.hookInvocations, fast.hookInvocations)
            << "seed " << seed;
    }
}

// ---------------------------------------------------------------------
// Bounds-check elision: with every statically proven access running
// unchecked, the fast engine must stay observationally identical to
// the legacy walker. Claims are derived from the very module being
// executed, exactly like `wasabi run --elide-bounds-checks`.

std::unordered_set<uint64_t>
elisionLocs(const wasm::Module &m)
{
    using namespace static_analysis::passes;
    RangeClaims claims = provableRangeClaims(moduleRanges(m, 1));
    std::unordered_set<uint64_t> locs;
    for (const RangeClaim &c : claims.claims)
        locs.insert(core::packLoc({c.func, c.instr}));
    return locs;
}

/** Like runEngine() on the fast engine, but with all provable bounds
 * checks elided; also reports how many accesses ran unchecked. */
Outcome
runEngineElided(const Workload &w, uint64_t *elided_ops = nullptr,
                std::optional<uint64_t> fuel = std::nullopt)
{
    Outcome out;
    auto inst = Instance::instantiate(w.module, Linker());
    inst->engineCode().setElisions(elisionLocs(w.module));
    inst->setFuel(fuel);
    Interpreter interp;
    interp.engine = EngineKind::Fast;
    try {
        out.results = interp.invokeExport(*inst, w.entry, w.args);
    } catch (const Trap &t) {
        out.trap = t.kind();
    }
    out.memory = inst->memory().raw();
    const ExecStats &s = interp.stats();
    out.instructions = s.instructions;
    out.calls = s.calls;
    out.memoryOps = s.memoryOps;
    out.traps = s.traps;
    out.fuelLeft = inst->fuel();
    if (elided_ops)
        *elided_ops = s.memoryOpsElided;
    return out;
}

TEST_P(EngineDifferentialRandom, ElidedRunsAgree)
{
    workloads::RandomProgramOptions opts;
    opts.seed = GetParam();
    opts.numFunctions = 10;
    opts.stmtsPerFunction = 14;
    opts.indirectCallPct = 25;
    opts.constIndexIndirectPct = 50;
    Workload w = workloads::randomProgram(opts);
    ASSERT_EQ(validationError(w.module), std::nullopt);
    expectSame(runEngine(w, EngineKind::Legacy), runEngineElided(w),
               "elided seed " + std::to_string(GetParam()));
}

TEST_P(EngineDifferentialPolybench, ElidedKernelRunsAgree)
{
    Workload w = workloads::polybench(GetParam(), 8);
    uint64_t elided = 0;
    Outcome legacy = runEngine(w, EngineKind::Legacy);
    expectSame(legacy, runEngineElided(w, &elided),
               "elided " + GetParam());
    // The counted-loop kernels are exactly what the analysis targets:
    // some accesses must actually run unchecked.
    EXPECT_GT(elided, 0u) << GetParam();
    EXPECT_LE(elided, legacy.memoryOps) << GetParam();
}

TEST(EngineDifferential, InstrumentedElidedRunsAgree)
{
    // Memory-tracing instrumentation (the paper's memory-profiling
    // analysis) keeps address chains inside one basic block, so the
    // claims survive instrumentation; the instrumented module must
    // still run identically with those claims elided.
    for (const std::string &name : {std::string("gemm"),
                                    std::string("atax")}) {
        Workload w = workloads::polybench(name, 8);
        core::InstrumentResult r = core::instrument(
            w.module,
            HookSet{core::HookKind::Load, core::HookKind::Store});
        std::unordered_set<uint64_t> locs = elisionLocs(r.module);
        EXPECT_FALSE(locs.empty()) << name;

        InstrumentedOutcome results[2];
        int i = 0;
        for (bool elide : {false, true}) {
            runtime::WasabiRuntime rt(r.info);
            analyses::InstructionMix mix;
            rt.addAnalysis(&mix);
            auto inst = rt.instantiate(r.module);
            if (elide)
                inst->engineCode().setElisions(locs);
            Interpreter interp;
            interp.engine = elide ? EngineKind::Fast
                                  : EngineKind::Legacy;
            InstrumentedOutcome out;
            try {
                out.outcome.results =
                    interp.invokeExport(*inst, w.entry, w.args);
            } catch (const Trap &t) {
                out.outcome.trap = t.kind();
            }
            out.outcome.memory = inst->memory().raw();
            const ExecStats &s = interp.stats();
            out.outcome.instructions = s.instructions;
            out.outcome.calls = s.calls;
            out.outcome.memoryOps = s.memoryOps;
            out.outcome.traps = s.traps;
            out.hookInvocations = rt.hookInvocations();
            results[i++] = out;
        }
        expectSame(results[0].outcome, results[1].outcome,
                   "instrumented elided " + name);
        EXPECT_EQ(results[0].hookInvocations, results[1].hookInvocations)
            << name;
    }
}

// ---------------------------------------------------------------------
// Intrinsic-vs-rewrite hook-stream parity: engine-intrinsified
// instrumentation must produce a byte-identical hook stream — same
// kinds, same counts, same argument values, same ordering — as the
// binary-rewriting instrumenter, on every workload.

struct HookStream {
    std::vector<std::string> stream;
    std::array<uint64_t, core::kNumHookKinds> perKind{};
    std::optional<TrapKind> trap;
    uint64_t invocations = 0;
};

HookStream
runRewriteStream(const Workload &w, EngineKind engine,
                 HookSet kinds = HookSet::all())
{
    core::InstrumentResult r = core::instrument(w.module, kinds);
    runtime::WasabiRuntime rt(r.info);
    tests::HookStreamRecorder rec;
    rt.addAnalysis(&rec);
    auto inst = rt.instantiate(r.module);
    Interpreter interp;
    interp.engine = engine;
    HookStream out;
    try {
        interp.invokeExport(*inst, w.entry, w.args);
    } catch (const Trap &t) {
        out.trap = t.kind();
    }
    out.stream = std::move(rec.stream);
    out.perKind = rec.perKind;
    out.invocations = rt.hookInvocations();
    return out;
}

HookStream
runIntrinsicStream(const Workload &w, HookSet kinds = HookSet::all())
{
    runtime::WasabiRuntime rt(core::buildIntrinsicInfo(w.module, kinds));
    tests::HookStreamRecorder rec;
    rt.addAnalysis(&rec);
    auto inst = rt.instantiateIntrinsic(w.module);
    Interpreter interp;
    interp.engine = EngineKind::Fast;
    HookStream out;
    try {
        interp.invokeExport(*inst, w.entry, w.args);
    } catch (const Trap &t) {
        out.trap = t.kind();
    }
    out.stream = std::move(rec.stream);
    out.perKind = rec.perKind;
    out.invocations = rt.hookInvocations();
    return out;
}

void
expectSameStream(const HookStream &rewrite, const HookStream &intrinsic,
                 const std::string &what)
{
    ASSERT_EQ(rewrite.trap, intrinsic.trap) << what;
    for (int k = 0; k < core::kNumHookKinds; ++k) {
        EXPECT_EQ(rewrite.perKind[k], intrinsic.perKind[k])
            << what << ": count mismatch for hook kind "
            << core::name(static_cast<core::HookKind>(k));
    }
    ASSERT_EQ(rewrite.stream.size(), intrinsic.stream.size()) << what;
    for (size_t i = 0; i < rewrite.stream.size(); ++i) {
        ASSERT_EQ(rewrite.stream[i], intrinsic.stream[i])
            << what << ": hook stream diverges at invocation " << i;
    }
    EXPECT_EQ(rewrite.invocations, intrinsic.invocations) << what;
}

TEST_P(EngineDifferentialPolybench, IntrinsicHookStreamParity)
{
    Workload w = workloads::polybench(GetParam(), 6);
    HookStream legacy = runRewriteStream(w, EngineKind::Legacy);
    HookStream fast = runRewriteStream(w, EngineKind::Fast);
    HookStream intrinsic = runIntrinsicStream(w);
    expectSameStream(legacy, fast, GetParam() + " (rewrite L vs F)");
    expectSameStream(fast, intrinsic, GetParam() + " (rewrite vs intrinsic)");
}

TEST_P(EngineDifferentialRandom, IntrinsicHookStreamParity)
{
    workloads::RandomProgramOptions opts;
    opts.seed = GetParam();
    opts.numFunctions = 8;
    opts.stmtsPerFunction = 12;
    opts.indirectCallPct = 25;
    opts.constIndexIndirectPct = 50;
    Workload w = workloads::randomProgram(opts);
    ASSERT_EQ(validationError(w.module), std::nullopt);
    expectSameStream(runRewriteStream(w, EngineKind::Fast),
                     runIntrinsicStream(w),
                     "seed " + std::to_string(GetParam()));
}

TEST(EngineDifferential, IntrinsicHookStreamParityUnderSubsetHookSets)
{
    Workload w = workloads::polybench("gemm", 6);
    const HookSet subsets[] = {
        {core::HookKind::Load, core::HookKind::Store},
        {core::HookKind::Call, core::HookKind::Return},
        {core::HookKind::Begin, core::HookKind::End},
        {core::HookKind::Br, core::HookKind::BrIf, core::HookKind::BrTable},
        {core::HookKind::Binary, core::HookKind::Unary,
         core::HookKind::Const},
        {core::HookKind::Local, core::HookKind::Global,
         core::HookKind::Select, core::HookKind::Drop},
        {core::HookKind::End}, // branch-site ends without Br hooks
    };
    for (const HookSet &kinds : subsets) {
        expectSameStream(runRewriteStream(w, EngineKind::Fast, kinds),
                         runIntrinsicStream(w, kinds), "gemm subset");
    }
}

/** A workload that traps mid-execution must yield identical hook
 * streams up to (and including) the last hook before the trap. */
TEST(EngineDifferential, IntrinsicTrapMidStreamPrefixParity)
{
    ModuleBuilder mb;
    mb.memory(1);
    mb.addFunction(
        FuncType({}, {ValType::I32}), "f", [](FunctionBuilder &f) {
            f.i32Const(7);
            f.i32Const(5);
            f.op(Opcode::I32Add);
            f.drop();
            // In-bounds store, then an out-of-bounds load: the trap
            // cuts the stream after the store hook fired.
            f.i32Const(16);
            f.i32Const(42);
            f.store(Opcode::I32Store, 0);
            f.i32Const(-8);
            f.load(Opcode::I32Load, 0);
        });
    Workload w;
    w.module = mb.build();
    w.entry = "f";
    ASSERT_EQ(validationError(w.module), std::nullopt);
    HookStream rewrite = runRewriteStream(w, EngineKind::Fast);
    HookStream intrinsic = runIntrinsicStream(w);
    ASSERT_EQ(rewrite.trap, TrapKind::MemoryOutOfBounds);
    expectSameStream(rewrite, intrinsic, "trap mid-stream");
    EXPECT_GT(intrinsic.perKind[static_cast<size_t>(core::HookKind::Store)],
              0u);
}

// ---------------------------------------------------------------------
// Hardening regressions (must hold in Release builds too — these were
// previously debug-only asserts that NDEBUG compiled away).

/** A structurally broken body leaving two values for a one-result
 * function must trap InternalError, not return garbage. */
TEST(EngineDifferential, FrameExitArityMismatchTrapsInBothEngines)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {ValType::I32}), "f",
                   [](FunctionBuilder &f) {
                       f.i32Const(1);
                       f.i32Const(2);
                   });
    wasm::Module m = mb.build();
    // (Deliberately not validated: this models a buggy producer.)
    for (EngineKind engine : {EngineKind::Legacy, EngineKind::Fast}) {
        auto inst = Instance::instantiate(m, Linker());
        Interpreter interp;
        interp.engine = engine;
        try {
            interp.invokeExport(*inst, "f", {});
            FAIL() << "expected InternalError trap";
        } catch (const Trap &t) {
            EXPECT_EQ(t.kind(), TrapKind::InternalError);
        }
        // Both engines charge the whole body before detecting the
        // mismatch at the frame exit.
        EXPECT_EQ(interp.stats().instructions, 3u);
        EXPECT_EQ(interp.stats().traps, 1u);
    }
}

/** A host function returning the wrong result arity must trap
 * InternalError instead of corrupting the operand stack. */
TEST(EngineDifferential, HostResultArityMismatchTrapsInBothEngines)
{
    ModuleBuilder mb;
    uint32_t imp = mb.importFunction("env", "bad",
                                     FuncType({}, {ValType::I32}));
    mb.addFunction(FuncType({}, {ValType::I32}), "f",
                   [&](FunctionBuilder &f) { f.call(imp); });
    wasm::Module m = mb.build();
    Linker linker;
    linker.func("env", "bad",
                [](Instance &, std::span<const Value>,
                   std::vector<Value> &) { /* returns nothing */ });
    for (EngineKind engine : {EngineKind::Legacy, EngineKind::Fast}) {
        auto inst = Instance::instantiate(m, linker);
        Interpreter interp;
        interp.engine = engine;
        try {
            interp.invokeExport(*inst, "f", {});
            FAIL() << "expected InternalError trap";
        } catch (const Trap &t) {
            EXPECT_EQ(t.kind(), TrapKind::InternalError);
        }
    }
}

/** Unbounded recursion must exhaust the call stack identically. */
TEST(EngineDifferential, DeepRecursionParity)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "f",
                   [](FunctionBuilder &f) { f.call(0); });
    wasm::Module m = mb.build();
    ASSERT_EQ(validationError(m), std::nullopt);
    ExecStats stats[2];
    int i = 0;
    for (EngineKind engine : {EngineKind::Legacy, EngineKind::Fast}) {
        auto inst = Instance::instantiate(m, Linker());
        Interpreter interp;
        interp.engine = engine;
        // Modest limit: the legacy walker recurses on the host stack,
        // and sanitizer builds inflate its frames considerably.
        interp.maxCallDepth = 200;
        try {
            interp.invokeExport(*inst, "f", {});
            FAIL() << "expected CallStackExhausted";
        } catch (const Trap &t) {
            EXPECT_EQ(t.kind(), TrapKind::CallStackExhausted);
        }
        stats[i++] = interp.stats();
    }
    EXPECT_EQ(stats[0].instructions, stats[1].instructions);
    EXPECT_EQ(stats[0].calls, stats[1].calls);
}

} // namespace
} // namespace wasabi
