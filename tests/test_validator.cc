/**
 * @file
 * Validator tests: type checking, control flow, unreachable-code
 * polymorphism, and module-level invariants.
 */

#include <gtest/gtest.h>

#include "wasm/builder.h"
#include "wasm/validator.h"

namespace wasabi::wasm {
namespace {

Module
funcModule(const FuncType &type,
           const std::function<void(FunctionBuilder &)> &fill,
           bool with_memory = false)
{
    ModuleBuilder mb;
    if (with_memory)
        mb.memory(1);
    mb.addFunction(type, "f", fill);
    return mb.build();
}

TEST(Validator, AcceptsSimpleArithmetic)
{
    Module m = funcModule(FuncType({ValType::I32, ValType::I32},
                                   {ValType::I32}),
                          [](FunctionBuilder &f) {
                              f.localGet(0).localGet(1).op(Opcode::I32Add);
                          });
    EXPECT_EQ(validationError(m), std::nullopt);
}

TEST(Validator, RejectsTypeMismatch)
{
    Module m = funcModule(FuncType({}, {ValType::I32}),
                          [](FunctionBuilder &f) {
                              f.f32Const(1.0f);
                              f.i32Const(1);
                              f.op(Opcode::I32Add);
                          });
    EXPECT_NE(validationError(m), std::nullopt);
}

TEST(Validator, RejectsStackUnderflow)
{
    Module m = funcModule(FuncType({}, {ValType::I32}),
                          [](FunctionBuilder &f) {
                              f.i32Const(1);
                              f.op(Opcode::I32Add);
                          });
    EXPECT_NE(validationError(m), std::nullopt);
}

TEST(Validator, RejectsMissingResult)
{
    Module m = funcModule(FuncType({}, {ValType::I32}),
                          [](FunctionBuilder &) {});
    EXPECT_NE(validationError(m), std::nullopt);
}

TEST(Validator, RejectsExtraResult)
{
    Module m = funcModule(FuncType({}, {}), [](FunctionBuilder &f) {
        f.i32Const(1);
    });
    EXPECT_NE(validationError(m), std::nullopt);
}

TEST(Validator, BlockWithResult)
{
    Module m = funcModule(FuncType({}, {ValType::F64}),
                          [](FunctionBuilder &f) {
                              f.block(ValType::F64);
                              f.f64Const(2.5);
                              f.end();
                          });
    EXPECT_EQ(validationError(m), std::nullopt);
}

TEST(Validator, BranchToBlockChecksResultTypes)
{
    // br 0 must provide the block's result type.
    Module good = funcModule(FuncType({}, {ValType::I32}),
                             [](FunctionBuilder &f) {
                                 f.block(ValType::I32);
                                 f.i32Const(1);
                                 f.br(0);
                                 f.end();
                             });
    EXPECT_EQ(validationError(good), std::nullopt);

    Module bad = funcModule(FuncType({}, {ValType::I32}),
                            [](FunctionBuilder &f) {
                                f.block(ValType::I32);
                                f.f64Const(1.0);
                                f.br(0);
                                f.end();
                            });
    EXPECT_NE(validationError(bad), std::nullopt);
}

TEST(Validator, LoopLabelHasStartTypes)
{
    // A branch to a loop jumps to its beginning and therefore needs
    // no result value even if the loop has one.
    Module m = funcModule(FuncType({}, {ValType::I32}),
                          [](FunctionBuilder &f) {
                              f.loop(ValType::I32);
                              f.i32Const(0);
                              f.brIf(0); // pops the i32 condition only
                              f.i32Const(7);
                              f.end();
                          });
    // The br_if condition consumes the const; then 7 is the result.
    EXPECT_EQ(validationError(m), std::nullopt);
}

TEST(Validator, UnreachableCodeIsPolymorphic)
{
    Module m = funcModule(FuncType({}, {ValType::I32}),
                          [](FunctionBuilder &f) {
                              f.unreachable();
                              // Stack-polymorphic: this drop and add
                              // consume "unknown" values.
                              f.drop();
                              f.op(Opcode::I32Add);
                          });
    EXPECT_EQ(validationError(m), std::nullopt);
}

TEST(Validator, CodeAfterBrIsUnreachable)
{
    Module m = funcModule(FuncType({}, {ValType::I32}),
                          [](FunctionBuilder &f) {
                              f.block();
                              f.br(0);
                              f.op(Opcode::F64Mul); // unreachable, ok
                              f.drop();
                              f.end();
                              f.i32Const(1);
                          });
    EXPECT_EQ(validationError(m), std::nullopt);
}

TEST(Validator, IfRequiresCondition)
{
    Module m = funcModule(FuncType({}, {}), [](FunctionBuilder &f) {
        f.if_();
        f.end();
    });
    EXPECT_NE(validationError(m), std::nullopt);
}

TEST(Validator, IfElseWithResult)
{
    Module m = funcModule(FuncType({ValType::I32}, {ValType::I32}),
                          [](FunctionBuilder &f) {
                              f.localGet(0);
                              f.if_(ValType::I32);
                              f.i32Const(1);
                              f.else_();
                              f.i32Const(2);
                              f.end();
                          });
    EXPECT_EQ(validationError(m), std::nullopt);
}

TEST(Validator, IfWithResultWithoutElseRejected)
{
    Module m = funcModule(FuncType({ValType::I32}, {ValType::I32}),
                          [](FunctionBuilder &f) {
                              f.localGet(0);
                              f.if_(ValType::I32);
                              f.i32Const(1);
                              f.end();
                          });
    EXPECT_NE(validationError(m), std::nullopt);
}

TEST(Validator, ElseWithoutIfRejected)
{
    ModuleBuilder mb;
    FunctionBuilder fb = mb.startFunction(FuncType({}, {}), "f");
    fb.emit(Instr(Opcode::Else));
    fb.finish();
    EXPECT_NE(validationError(mb.build()), std::nullopt);
}

TEST(Validator, BrLabelOutOfRangeRejected)
{
    Module m = funcModule(FuncType({}, {}), [](FunctionBuilder &f) {
        f.block();
        f.br(5);
        f.end();
    });
    EXPECT_NE(validationError(m), std::nullopt);
}

TEST(Validator, BrTableInconsistentTypesRejected)
{
    Module m = funcModule(FuncType({}, {}), [](FunctionBuilder &f) {
        f.block(ValType::I32); // label 1 expects i32
        f.block();             // label 0 expects nothing
        f.i32Const(0);
        f.brTable({0}, 1);
        f.end();
        f.i32Const(1);
        f.end();
        f.drop();
    });
    EXPECT_NE(validationError(m), std::nullopt);
}

TEST(Validator, SelectRequiresMatchingTypes)
{
    Module bad = funcModule(FuncType({}, {}), [](FunctionBuilder &f) {
        f.i32Const(1);
        f.f64Const(2.0);
        f.i32Const(0);
        f.select();
        f.drop();
    });
    EXPECT_NE(validationError(bad), std::nullopt);

    Module good = funcModule(FuncType({}, {ValType::F64}),
                             [](FunctionBuilder &f) {
                                 f.f64Const(1.0);
                                 f.f64Const(2.0);
                                 f.i32Const(0);
                                 f.select();
                             });
    EXPECT_EQ(validationError(good), std::nullopt);
}

TEST(Validator, LocalIndexOutOfRangeRejected)
{
    Module m = funcModule(FuncType({}, {}), [](FunctionBuilder &f) {
        f.localGet(3);
        f.drop();
    });
    EXPECT_NE(validationError(m), std::nullopt);
}

TEST(Validator, GlobalSetOfImmutableRejected)
{
    ModuleBuilder mb;
    mb.global(ValType::I32, false, Value::makeI32(0));
    mb.addFunction(FuncType({}, {}), "f", [](FunctionBuilder &f) {
        f.i32Const(1);
        f.globalSet(0);
    });
    EXPECT_NE(validationError(mb.build()), std::nullopt);
}

TEST(Validator, MemoryOpsRequireMemory)
{
    Module m = funcModule(FuncType({}, {ValType::I32}),
                          [](FunctionBuilder &f) {
                              f.i32Const(0);
                              f.i32Load();
                          });
    EXPECT_NE(validationError(m), std::nullopt);

    Module with_mem = funcModule(FuncType({}, {ValType::I32}),
                                 [](FunctionBuilder &f) {
                                     f.i32Const(0);
                                     f.i32Load();
                                 },
                                 /*with_memory=*/true);
    EXPECT_EQ(validationError(with_mem), std::nullopt);
}

TEST(Validator, OverAlignedAccessRejected)
{
    Module m = funcModule(FuncType({}, {ValType::I32}),
                          [](FunctionBuilder &f) {
                              f.i32Const(0);
                              f.load(Opcode::I32Load, 0, 3); // 2^3 > 4
                          },
                          true);
    EXPECT_NE(validationError(m), std::nullopt);

    Module narrow = funcModule(FuncType({}, {ValType::I32}),
                               [](FunctionBuilder &f) {
                                   f.i32Const(0);
                                   f.load(Opcode::I32Load8U, 0, 1);
                               },
                               true);
    EXPECT_NE(validationError(narrow), std::nullopt);
}

TEST(Validator, CallArgumentMismatchRejected)
{
    ModuleBuilder mb;
    uint32_t callee = mb.addFunction(FuncType({ValType::I64}, {}), "",
                                     [](FunctionBuilder &f) {
                                         f.localGet(0);
                                         f.drop();
                                     });
    mb.addFunction(FuncType({}, {}), "f", [&](FunctionBuilder &f) {
        f.i32Const(1); // wrong: callee wants i64
        f.call(callee);
    });
    EXPECT_NE(validationError(mb.build()), std::nullopt);
}

TEST(Validator, CallIndirectRequiresTable)
{
    ModuleBuilder mb;
    FuncType t({}, {});
    uint32_t ti = mb.type(t);
    mb.addFunction(t, "f", [&](FunctionBuilder &f) {
        f.i32Const(0);
        f.callIndirect(ti);
    });
    EXPECT_NE(validationError(mb.build()), std::nullopt);
}

TEST(Validator, StartFunctionMustBeNullary)
{
    ModuleBuilder mb;
    uint32_t f = mb.addFunction(FuncType({ValType::I32}, {}), "",
                                [](FunctionBuilder &) {});
    mb.start(f);
    EXPECT_NE(validationError(mb.build()), std::nullopt);
}

TEST(Validator, MultipleMemoriesRejected)
{
    ModuleBuilder mb;
    mb.memory(1);
    mb.memory(1);
    EXPECT_NE(validationError(mb.build()), std::nullopt);
}

TEST(Validator, ElementSegmentFunctionOutOfRange)
{
    ModuleBuilder mb;
    mb.table(2);
    mb.elem(0, {42});
    EXPECT_NE(validationError(mb.build()), std::nullopt);
}

TEST(Validator, ReturnInsideBlock)
{
    Module m = funcModule(FuncType({}, {ValType::I32}),
                          [](FunctionBuilder &f) {
                              f.block();
                              f.i32Const(3);
                              f.ret();
                              f.end();
                              f.i32Const(4);
                          });
    EXPECT_EQ(validationError(m), std::nullopt);
}

TEST(Validator, TeeKeepsValueOnStack)
{
    ModuleBuilder mb;
    FunctionBuilder fb =
        mb.startFunction(FuncType({}, {ValType::I32}), "f");
    uint32_t l = fb.addLocal(ValType::I32);
    fb.i32Const(9);
    fb.localTee(l);
    fb.finish();
    EXPECT_EQ(validationError(mb.build()), std::nullopt);
}

} // namespace
} // namespace wasabi::wasm
