/**
 * @file
 * Unit tests of the static pass suite behind `wasabi lint` and the
 * `--optimize-hooks` instrumentation optimizer: constant propagation
 * over locals + operand stack, reachability (unreachable ranges and
 * dead functions), dead-store detection, branch-target refinement,
 * the lint driver's stable codes, plan computation (including the
 * else-soundness guard), the JSON optimization manifest round trip,
 * the checker's manifest claim re-verification, the backward dataflow
 * solver on looping CFGs, and DOT label escaping.
 */

#include <gtest/gtest.h>

#include "core/instrument.h"
#include "static/analyze.h"
#include "static/call_graph.h"
#include "static/cfg.h"
#include "static/check.h"
#include "static/dataflow.h"
#include "static/dot_util.h"
#include "static/passes/branch_refine.h"
#include "static/passes/constprop.h"
#include "static/passes/deadstore.h"
#include "static/passes/pipeline.h"
#include "static/passes/reachability.h"
#include "wasm/builder.h"
#include "wasm/validator.h"

namespace wasabi::static_analysis::passes {
namespace {

using core::HookKind;
using core::HookSet;
using core::Location;
using core::packLoc;
using wasm::FuncType;
using wasm::FunctionBuilder;
using wasm::Module;
using wasm::ModuleBuilder;
using wasm::Opcode;
using wasm::ValType;

Module
singleFunction(const FuncType &type,
               const std::function<void(FunctionBuilder &)> &fill)
{
    ModuleBuilder mb;
    mb.addFunction(type, "f", fill);
    Module m = mb.build();
    validateModule(m);
    return m;
}

// ----- constant propagation ------------------------------------------

TEST(ConstProp, FoldsArithmeticIntoBrIfCondition)
{
    // 0 block / 1 const 2 / 2 const 3 / 3 mul / 4 const 6 / 5 eq /
    // 6 br_if 0 / 7 nop / 8 end / 9 end
    Module m = singleFunction(FuncType({}, {}), [](FunctionBuilder &f) {
        f.block();
        f.i32Const(2).i32Const(3).op(Opcode::I32Mul);
        f.i32Const(6).op(Opcode::I32Eq);
        f.brIf(0);
        f.nop();
        f.end();
    });
    ConstFacts facts = constantFacts(m, 0);
    ASSERT_EQ(facts.brIfCond.size(), 1u);
    EXPECT_EQ(facts.brIfCond.at(packLoc({0, 6})), 1u);
    EXPECT_TRUE(facts.ifCond.empty());
    EXPECT_TRUE(facts.brTableIndex.empty());
}

TEST(ConstProp, ZeroInitializedLocalIsConstant)
{
    // Non-param locals are zero-initialized by wasm semantics, so an
    // unwritten local read as an `if` condition is the constant 0.
    // 0 local.get / 1 if / 2 nop / 3 end / 4 end
    Module m = singleFunction(FuncType({}, {}), [](FunctionBuilder &f) {
        uint32_t l = f.addLocal(ValType::I32);
        f.localGet(l).if_();
        f.nop();
        f.end();
    });
    ConstFacts facts = constantFacts(m, 0);
    ASSERT_EQ(facts.ifCond.size(), 1u);
    EXPECT_EQ(facts.ifCond.at(packLoc({0, 1})), 0u);
}

TEST(ConstProp, ParameterIsNotConstant)
{
    Module m = singleFunction(FuncType({ValType::I32}, {}),
                              [](FunctionBuilder &f) {
                                  f.localGet(0).if_();
                                  f.nop();
                                  f.end();
                              });
    EXPECT_TRUE(constantFacts(m, 0).empty());
}

TEST(ConstProp, LocalSetPropagatesAcrossBlocks)
{
    // The constant flows through a local.set into a later block:
    // 0 const 7 / 1 local.set / 2 block / 3 local.get / 4 br_if 0 /
    // 5 end / 6 end
    Module m = singleFunction(FuncType({}, {}), [](FunctionBuilder &f) {
        uint32_t l = f.addLocal(ValType::I32);
        f.i32Const(7).localSet(l);
        f.block();
        f.localGet(l).brIf(0);
        f.end();
    });
    ConstFacts facts = constantFacts(m, 0);
    ASSERT_EQ(facts.brIfCond.size(), 1u);
    EXPECT_EQ(facts.brIfCond.at(packLoc({0, 4})), 7u);
}

TEST(ConstProp, MergePointLosesDisagreeingConstants)
{
    // The local is 1 on one path and 2 on the other: at the merge the
    // value is no longer constant.
    Module m = singleFunction(
        FuncType({ValType::I32}, {}), [](FunctionBuilder &f) {
            uint32_t l = f.addLocal(ValType::I32);
            f.localGet(0).if_();
            f.i32Const(1).localSet(l);
            f.else_();
            f.i32Const(2).localSet(l);
            f.end();
            f.localGet(l).if_();
            f.nop();
            f.end();
        });
    EXPECT_TRUE(constantFacts(m, 0).ifCond.empty());
}

// ----- reachability ---------------------------------------------------

TEST(Reachability, ReportsUnreachableRangeAndDeadFunction)
{
    ModuleBuilder mb;
    // f0 "main" (a root): block / br 0 / nop / nop / end / end — the
    // nops and the inner end can never execute.
    mb.addFunction(FuncType({}, {}), "main", [](FunctionBuilder &f) {
        f.block();
        f.br(0);
        f.nop().nop();
        f.end();
    });
    // f1: never called, not exported -> call-graph dead.
    mb.addFunction(FuncType({}, {}), "", [](FunctionBuilder &f) {
        f.nop();
    });
    Module m = mb.build();
    validateModule(m);

    ReachabilityFacts facts = reachabilityFacts(m);
    EXPECT_EQ(facts.deadFunctions, (std::vector<uint32_t>{1}));
    ASSERT_EQ(facts.unreachableBlocks.size(), 1u);
    EXPECT_EQ(facts.unreachableBlocks[0].func, 0u);
    EXPECT_EQ(facts.unreachableBlocks[0].first, 2u);
    EXPECT_EQ(facts.unreachableBlocks[0].last, 4u);
}

TEST(Reachability, CleanFunctionHasNoFindings)
{
    Module m = singleFunction(FuncType({}, {ValType::I32}),
                              [](FunctionBuilder &f) { f.i32Const(1); });
    ReachabilityFacts facts = reachabilityFacts(m);
    EXPECT_TRUE(facts.unreachableBlocks.empty());
    EXPECT_TRUE(facts.deadFunctions.empty());
}

// ----- dead stores ----------------------------------------------------

TEST(DeadStore, OverwrittenStoreIsDead)
{
    // 0 const 1 / 1 local.set (dead) / 2 const 2 / 3 local.set /
    // 4 local.get / 5 end
    Module m = singleFunction(
        FuncType({}, {ValType::I32}), [](FunctionBuilder &f) {
            uint32_t l = f.addLocal(ValType::I32);
            f.i32Const(1).localSet(l);
            f.i32Const(2).localSet(l);
            f.localGet(l);
        });
    std::vector<DeadStore> stores = deadStores(m, 0);
    ASSERT_EQ(stores.size(), 1u);
    EXPECT_EQ(stores[0].instr, 1u);
    EXPECT_EQ(stores[0].local, 0u);
}

TEST(DeadStore, LoopCarriedStoreIsLive)
{
    // The store feeds the next iteration's read through the back
    // edge; backward liveness must propagate around the loop.
    Module m = singleFunction(FuncType({}, {}), [](FunctionBuilder &f) {
        uint32_t i = f.addLocal(ValType::I32);
        f.block().loop();
        f.localGet(i).i32Const(1).op(Opcode::I32Add).localSet(i);
        f.localGet(i).i32Const(10).op(Opcode::I32LtS).brIf(0);
        f.end().end();
    });
    EXPECT_TRUE(deadStores(m, 0).empty());
}

TEST(DeadStore, FinalStoreWithNoReaderIsDead)
{
    Module m = singleFunction(FuncType({ValType::I32}, {}),
                              [](FunctionBuilder &f) {
                                  uint32_t l = f.addLocal(ValType::I32);
                                  f.localGet(0).localSet(l);
                              });
    std::vector<DeadStore> stores = deadStores(m, 0);
    ASSERT_EQ(stores.size(), 1u);
    EXPECT_EQ(stores[0].instr, 1u);
}

// ----- dataflow solvers on looping CFGs (fixpoint + dominators) ------

/** Doubly nested loop with two back edges:
 *  0 block / 1 loop / 2 block / 3 loop / 4 get / 5 br_if 0 (inner) /
 *  6 end / 7 end / 8 get / 9 br_if 0 (outer) / 10 end / 11 end /
 *  12 end */
Module
nestedLoops()
{
    ModuleBuilder mb;
    FunctionBuilder f =
        mb.startFunction(FuncType({ValType::I32}, {}), "f");
    f.block().loop().block().loop();
    f.localGet(0).brIf(0);
    f.end().end();
    f.localGet(0).brIf(0);
    f.end().end();
    f.finish();
    Module m = mb.build();
    validateModule(m);
    return m;
}

TEST(Dataflow, NestedLoopsHaveTwoBackEdgesAndNestedDominators)
{
    Module m = nestedLoops();
    Cfg cfg(m, 0);
    std::vector<std::pair<uint32_t, uint32_t>> back = backEdges(cfg);
    ASSERT_EQ(back.size(), 2u);

    // Both loop headers dominate their back-edge tails, and the inner
    // header is dominated by the outer header.
    std::vector<BitSet> doms = dominatorSets(cfg);
    uint32_t inner_header = cfg.blockOf(4); // first instr inside inner
    uint32_t outer_header = cfg.blockOf(2); // first instr inside outer
    for (auto [tail, head] : back)
        EXPECT_TRUE(doms[tail].test(head));
    EXPECT_TRUE(doms[inner_header].test(outer_header));
    EXPECT_FALSE(doms[outer_header].test(inner_header));

    std::vector<uint32_t> idom = immediateDominators(cfg);
    EXPECT_EQ(idom[cfg.entry()], kNoIdom);
    for (uint32_t b = 0; b < cfg.numBlocks(); ++b) {
        if (b != cfg.entry()) {
            EXPECT_NE(idom[b], b) << "self-idom at block " << b;
        }
    }

    // The backward solver reaches its fixpoint on the same CFG (the
    // liveness instance inside deadStores exercises solveBackward
    // across both back edges).
    EXPECT_TRUE(deadStores(m, 0).empty());
}

TEST(Dataflow, IrregularBrTableLoopTerminates)
{
    // A loop whose body also dispatches through a br_table targeting
    // the loop header, the enclosing block, and the function frame —
    // many edges into the same headers must still converge.
    Module m = singleFunction(
        FuncType({ValType::I32}, {}), [](FunctionBuilder &f) {
            f.block().loop();
            f.localGet(0).brTable({0, 1, 2}, 0);
            f.end().end();
        });
    Cfg cfg(m, 0);
    std::vector<bool> reach = reachableBlocks(cfg);
    EXPECT_TRUE(reach[cfg.entry()]);
    EXPECT_TRUE(reach[cfg.exit()]);
    EXPECT_FALSE(backEdges(cfg).empty());
    ReachabilityFacts facts = reachabilityFacts(m);
    EXPECT_TRUE(facts.deadFunctions.empty());
}

// ----- branch refinement ---------------------------------------------

TEST(BranchRefine, ConstantBrTableCollapsesToOneLabel)
{
    // 0 block / 1 block / 2 block / 3 const 1 / 4 br_table 0 1 d2 /
    // 5 end / 6 end / 7 end / 8 end. Index 1 selects label 1, which
    // resolves past the middle block's end to instruction 7.
    Module m = singleFunction(FuncType({}, {}), [](FunctionBuilder &f) {
        f.block().block().block();
        f.i32Const(1).brTable({0, 1}, 2);
        f.end().end().end();
    });
    ConstFacts facts = constantFacts(m, 0);
    ASSERT_EQ(facts.brTableIndex.size(), 1u);
    EXPECT_EQ(facts.brTableIndex.at(packLoc({0, 4})), 1u);

    BranchRefinements r = refineBranches(m, 0, facts);
    ASSERT_EQ(r.constBrTables.size(), 1u);
    EXPECT_EQ(r.constBrTables[0].instr, 4u);
    EXPECT_EQ(r.constBrTables[0].index, 1u);
    EXPECT_EQ(r.constBrTables[0].label, 1u);
    EXPECT_EQ(r.constBrTables[0].target, 7u);
    EXPECT_FALSE(r.constBrTables[0].isDefault);
}

TEST(BranchRefine, OutOfRangeIndexSelectsDefault)
{
    Module m = singleFunction(FuncType({}, {}), [](FunctionBuilder &f) {
        f.block();
        f.i32Const(99).brTable({0}, 0);
        f.end();
    });
    ConstFacts facts = constantFacts(m, 0);
    BranchRefinements r = refineBranches(m, 0, facts);
    ASSERT_EQ(r.constBrTables.size(), 1u);
    EXPECT_TRUE(r.constBrTables[0].isDefault);
    EXPECT_EQ(r.constBrTables[0].index, 99u);
}

TEST(BranchRefine, ConstantConditionsAreClassified)
{
    Module m = singleFunction(FuncType({}, {}), [](FunctionBuilder &f) {
        f.i32Const(0).if_();
        f.nop();
        f.end();
        f.block();
        f.i32Const(1).brIf(0);
        f.end();
    });
    ConstFacts facts = constantFacts(m, 0);
    BranchRefinements r = refineBranches(m, 0, facts);
    ASSERT_EQ(r.constConditions.size(), 2u);
    EXPECT_TRUE(r.constConditions[0].isIf);
    EXPECT_EQ(r.constConditions[0].cond, 0u);
    EXPECT_FALSE(r.constConditions[1].isIf);
    EXPECT_EQ(r.constConditions[1].cond, 1u);
}

// ----- lint driver ----------------------------------------------------

TEST(Lint, ReportsEveryFindingKindWithStableCodes)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "main", [](FunctionBuilder &f) {
        uint32_t l = f.addLocal(ValType::I32);
        f.block().end();               // empty block
        f.i32Const(5).localSet(l);     // dead store
        f.block();
        f.i32Const(1).brIf(0);         // constant condition
        f.nop();
        f.end();
        f.block();
        f.i32Const(0).brTable({0}, 0); // constant index
        f.nop();                       // unreachable
        f.end();
    });
    mb.addFunction(FuncType({}, {}), "",
                   [](FunctionBuilder &f) { f.nop(); }); // dead
    Module m = mb.build();
    validateModule(m);

    Diagnostics d = lintModule(m);
    EXPECT_TRUE(d.hasCode(kLintEmptyBlock)) << toString(d);
    EXPECT_TRUE(d.hasCode(kLintDeadStore)) << toString(d);
    EXPECT_TRUE(d.hasCode(kLintConstCondition)) << toString(d);
    EXPECT_TRUE(d.hasCode(kLintConstIndex)) << toString(d);
    EXPECT_TRUE(d.hasCode(kLintUnreachableCode)) << toString(d);
    EXPECT_TRUE(d.hasCode(kLintDeadFunction)) << toString(d);
}

TEST(Lint, CleanModuleHasNoFindings)
{
    Module m = singleFunction(
        FuncType({ValType::I32}, {ValType::I32}),
        [](FunctionBuilder &f) {
            f.localGet(0).i32Const(1).op(Opcode::I32Add);
        });
    Diagnostics d = lintModule(m);
    EXPECT_TRUE(d.empty()) << toString(d);
}

// ----- plan computation ----------------------------------------------

TEST(Plan, SkipsCoverUnreachableCodeButNeverElse)
{
    // 0 local.get / 1 if / 2 br 0 / 3 else / 4 nop / 5 end / 6 end.
    // The `else` instruction is CFG-unreachable (the then-region
    // branches away), but its begin_else hook guards the live
    // else-region, so the plan must not skip it.
    Module m = singleFunction(FuncType({ValType::I32}, {}),
                              [](FunctionBuilder &f) {
                                  f.localGet(0).if_();
                                  f.br(0);
                                  f.else_();
                                  f.nop();
                                  f.end();
                              });
    core::HookOptimizationPlan plan = computePlan(m);
    EXPECT_EQ(plan.skips.count(packLoc({0, 3})), 0u)
        << "the else instruction must never be skipped";

    // Optimized instrumentation still checks clean: the begin_else
    // hook survives.
    core::InstrumentOptions iopts;
    iopts.plan = &plan;
    core::InstrumentResult r =
        core::instrument(m, HookSet::all(), iopts);
    Diagnostics d = checkInstrumentation(*r.info, r.module);
    EXPECT_TRUE(d.empty()) << toString(d);
}

TEST(Plan, DeadFunctionSubsumesItsSites)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "main",
                   [](FunctionBuilder &f) { f.nop(); });
    mb.addFunction(FuncType({}, {}), "", [](FunctionBuilder &f) {
        f.block();
        f.br(0);
        f.nop();
        f.end();
    });
    Module m = mb.build();
    validateModule(m);

    core::HookOptimizationPlan plan = computePlan(m);
    EXPECT_EQ(plan.deadFunctions,
              (std::unordered_set<uint32_t>{1}));
    // Per-site claims inside the dead function are subsumed.
    for (uint64_t packed : plan.skips)
        EXPECT_NE(static_cast<uint32_t>(packed >> 32), 1u);

    core::InstrumentOptions iopts;
    iopts.plan = &plan;
    core::InstrumentResult r =
        core::instrument(m, HookSet::all(), iopts);
    Diagnostics d = checkInstrumentation(*r.info, r.module);
    EXPECT_TRUE(d.empty()) << toString(d);
}

TEST(Plan, EmptyBlockPairsAreElided)
{
    Module m = singleFunction(FuncType({}, {}), [](FunctionBuilder &f) {
        f.block().end(); // 0,1
        f.loop().end();  // 2,3
        f.nop();
    });
    EXPECT_EQ(emptyBlockPairs(m, 0),
              (std::vector<std::pair<uint32_t, uint32_t>>{{0, 1},
                                                          {2, 3}}));
    core::HookOptimizationPlan plan = computePlan(m);
    EXPECT_EQ(plan.elidedBegins.count(packLoc({0, 0})), 1u);
    EXPECT_EQ(plan.elidedEnds.count(packLoc({0, 1})), 1u);
    EXPECT_EQ(plan.elidedBegins.count(packLoc({0, 2})), 1u);

    core::InstrumentOptions iopts;
    iopts.plan = &plan;
    core::InstrumentResult r = core::instrument(
        m, HookSet{HookKind::Begin, HookKind::End}, iopts);
    Diagnostics d = checkInstrumentation(*r.info, r.module);
    EXPECT_TRUE(d.empty()) << toString(d);
}

// ----- manifest round trip -------------------------------------------

TEST(Manifest, RoundTripPreservesEveryClaim)
{
    core::HookOptimizationPlan plan;
    plan.skips = {packLoc({0, 7}), packLoc({3, 1})};
    plan.deadFunctions = {5};
    plan.constBrTableIndex[packLoc({2, 9})] = 4;
    plan.elidedBegins = {packLoc({1, 0})};
    plan.elidedEnds = {packLoc({1, 1})};

    std::string text = planToManifest(plan);
    std::string error;
    std::optional<core::HookOptimizationPlan> parsed =
        planFromManifest(text, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->skips, plan.skips);
    EXPECT_EQ(parsed->deadFunctions, plan.deadFunctions);
    EXPECT_EQ(parsed->constBrTableIndex, plan.constBrTableIndex);
    EXPECT_EQ(parsed->elidedBegins, plan.elidedBegins);
    EXPECT_EQ(parsed->elidedEnds, plan.elidedEnds);
}

TEST(Manifest, EmptyPlanRoundTrips)
{
    core::HookOptimizationPlan plan;
    std::string error;
    std::optional<core::HookOptimizationPlan> parsed =
        planFromManifest(planToManifest(plan), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_TRUE(parsed->empty());
}

TEST(Manifest, MalformedInputIsRejectedWithAnError)
{
    const char *bad[] = {
        "",
        "{",
        "[]",
        "{\"version\": 2, \"skips\": []}",          // wrong version
        "{\"version\": 1, \"bogus\": []}",          // unknown field
        "{\"version\": 1, \"skips\": [[1]]}",       // wrong row width
        "{\"version\": 1, \"skips\": [[1, -2]]}",   // negative
        "{\"version\": 1, \"elidedBlocks\": [[0, 4, 9]]}", // not begin+1
    };
    for (const char *text : bad) {
        std::string error;
        EXPECT_FALSE(planFromManifest(text, &error).has_value())
            << text;
        EXPECT_FALSE(error.empty()) << text;
    }
}

// ----- checker re-verification of manifest claims --------------------

Module
planVictim()
{
    // 0 local.get / 1 if / 2 br 0 / 3 else / 4 nop / 5 end /
    // 6 block / 7 const 0 / 8 br_table 0 d0 / 9 nop / 10 end / 11 end
    return singleFunction(FuncType({ValType::I32}, {}),
                          [](FunctionBuilder &f) {
                              f.localGet(0).if_();
                              f.br(0);
                              f.else_();
                              f.nop();
                              f.end();
                              f.block();
                              f.i32Const(0).brTable({0}, 0);
                              f.nop();
                              f.end();
                          });
}

Diagnostics
checkWithPlan(const Module &m, const core::HookOptimizationPlan &plan)
{
    core::InstrumentOptions iopts;
    iopts.plan = &plan;
    core::InstrumentResult r =
        core::instrument(m, HookSet::all(), iopts);
    return checkInstrumentation(*r.info, r.module);
}

TEST(ManifestCheck, BogusSkipClaimsAreRejected)
{
    Module m = planVictim();
    core::HookOptimizationPlan plan;
    plan.skips.insert(packLoc({0, 4})); // the live nop
    EXPECT_TRUE(checkWithPlan(m, plan).hasCode(
        "check.manifest.bad-skip"));

    core::HookOptimizationPlan else_plan;
    else_plan.skips.insert(packLoc({0, 3})); // the else: unsound
    EXPECT_TRUE(checkWithPlan(m, else_plan)
                    .hasCode("check.manifest.bad-skip"));
}

TEST(ManifestCheck, BogusDeadFunctionClaimIsRejected)
{
    Module m = planVictim(); // exported -> a call-graph root
    core::HookOptimizationPlan plan;
    plan.deadFunctions.insert(0);
    EXPECT_TRUE(checkWithPlan(m, plan).hasCode(
        "check.manifest.bad-dead-function"));
}

TEST(ManifestCheck, BogusConstIndexClaimIsRejected)
{
    Module m = planVictim();
    core::HookOptimizationPlan plan;
    plan.constBrTableIndex[packLoc({0, 8})] = 1; // actual index is 0
    EXPECT_TRUE(checkWithPlan(m, plan).hasCode(
        "check.manifest.bad-const-index"));

    core::HookOptimizationPlan misplaced;
    misplaced.constBrTableIndex[packLoc({0, 4})] = 0; // a nop
    EXPECT_TRUE(checkWithPlan(m, misplaced)
                    .hasCode("check.manifest.bad-const-index"));
}

TEST(ManifestCheck, BogusElideClaimIsRejected)
{
    Module m = planVictim();
    core::HookOptimizationPlan plan;
    plan.elidedBegins.insert(packLoc({0, 6})); // block is not empty
    plan.elidedEnds.insert(packLoc({0, 7}));
    EXPECT_TRUE(checkWithPlan(m, plan).hasCode(
        "check.manifest.bad-elide"));

    core::HookOptimizationPlan unpaired;
    unpaired.elidedEnds.insert(packLoc({0, 10}));
    EXPECT_TRUE(checkWithPlan(m, unpaired)
                    .hasCode("check.manifest.bad-elide"));
}

TEST(ManifestCheck, ValidClaimsAcceptedViaCheckOptions)
{
    Module m = planVictim();
    core::HookOptimizationPlan plan = computePlan(m);
    EXPECT_FALSE(plan.empty());

    core::InstrumentOptions iopts;
    iopts.plan = &plan;
    core::InstrumentResult r =
        core::instrument(m, HookSet::all(), iopts);

    // Two-binary path, plan via CheckOptions (the --manifest= flow).
    CheckOptions copts;
    copts.plan = plan;
    Diagnostics d = checkInstrumentation(m, r.module, copts);
    EXPECT_TRUE(d.empty()) << toString(d);

    // Without the manifest, the same binary fails completeness: the
    // omissions are only licensed when the plan says so.
    Diagnostics without = checkInstrumentation(m, r.module);
    EXPECT_TRUE(without.hasCode("check.selective.missing-hook"))
        << toString(without);
}

// ----- DOT label escaping --------------------------------------------

TEST(DotEscape, QuotesBackslashesAndBytesAreEscaped)
{
    EXPECT_EQ(escapeDotLabel("plain_name"), "plain_name");
    EXPECT_EQ(escapeDotLabel("a\"b"), "a\\\"b");
    EXPECT_EQ(escapeDotLabel("a\\b"), "a\\\\b");
    EXPECT_EQ(escapeDotLabel("a\nb"), "a\\nb");
    EXPECT_EQ(escapeDotLabel("\x01"), "\\\\x01");
    EXPECT_EQ(escapeDotLabel("\xC3\xA9"), "\\\\xC3\\\\xA9");
}

TEST(DotEscape, HostileDebugNamesCannotBreakCallGraphDot)
{
    ModuleBuilder mb;
    mb.addFunction(FuncType({}, {}), "main",
                   [](FunctionBuilder &f) { f.nop(); });
    Module m = mb.build();
    validateModule(m);
    m.functions[0].debugName = "evil\"]; bad [label=\"\\";

    std::string dot = StaticCallGraph(m).toDot(m);
    // The raw quote must not survive unescaped: every quote in the
    // label is preceded by a backslash.
    EXPECT_EQ(dot.find("evil\""), std::string::npos);
    EXPECT_NE(dot.find("evil\\\""), std::string::npos);
    // Structural quotes (preceded by an even number of backslashes)
    // must pair up; otherwise the injected name broke out of its
    // label attribute.
    size_t structural = 0;
    for (size_t i = 0; i < dot.size(); ++i) {
        if (dot[i] != '"')
            continue;
        size_t backslashes = 0;
        while (backslashes < i && dot[i - 1 - backslashes] == '\\')
            ++backslashes;
        if (backslashes % 2 == 0)
            ++structural;
    }
    EXPECT_EQ(structural % 2, 0u);
}

} // namespace
} // namespace wasabi::static_analysis::passes
