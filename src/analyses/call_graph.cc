#include "analyses/call_graph.h"

#include <sstream>

namespace wasabi::analyses {

std::set<uint32_t>
CallGraph::reachedFunctions() const
{
    std::set<uint32_t> reached;
    for (const auto &[edge, count] : edges_)
        reached.insert(edge.second);
    return reached;
}

std::set<uint32_t>
CallGraph::dynamicallyDead(const wasm::Module &m, uint32_t entry) const
{
    std::set<uint32_t> reached = reachedFunctions();
    std::set<uint32_t> dead;
    for (uint32_t f = 0; f < m.numFunctions(); ++f) {
        if (m.functions[f].imported())
            continue;
        if (f != entry && reached.count(f) == 0)
            dead.insert(f);
    }
    return dead;
}

std::string
CallGraph::toDot(const wasm::Module &m) const
{
    auto label = [&m](uint32_t f) {
        if (f == runtime::Analysis::kUnresolvedFunc)
            return std::string("unresolved");
        if (f < m.numFunctions()) {
            const wasm::Function &fn = m.functions[f];
            if (!fn.exportNames.empty())
                return fn.exportNames.front();
            if (!fn.debugName.empty())
                return fn.debugName;
        }
        return "f" + std::to_string(f);
    };
    std::ostringstream os;
    os << "digraph callgraph {\n";
    for (const auto &[edge, count] : edges_) {
        os << "  \"" << label(edge.first) << "\" -> \""
           << label(edge.second) << "\" [label=\"" << count << "\"";
        if (indirectEdges_.count(edge))
            os << ", style=dashed";
        os << "];\n";
    }
    os << "}\n";
    return os.str();
}

} // namespace wasabi::analyses
