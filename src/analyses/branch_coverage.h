/**
 * @file
 * Branch coverage (paper Table 4 and Figure 7): records, for every
 * branching instruction (if, br_if, br_table, select), which decisions
 * were taken. The paper's JS version is 14 LOC; Figure 7 shows it.
 */

#ifndef WASABI_ANALYSES_BRANCH_COVERAGE_H
#define WASABI_ANALYSES_BRANCH_COVERAGE_H

#include <map>
#include <set>
#include <string>

#include "runtime/analysis.h"

namespace wasabi::analyses {

/** Per-location set of observed branch decisions. */
class BranchCoverage final : public runtime::Analysis {
  public:
    runtime::HookSet
    hooks() const override
    {
        using runtime::HookKind;
        return runtime::HookSet{HookKind::If, HookKind::BrIf,
                                HookKind::BrTable, HookKind::Select};
    }

    void
    onIf(runtime::Location loc, bool condition) override
    {
        addBranch(loc, condition ? 1 : 0);
    }

    void
    onBrIf(runtime::Location loc, runtime::BranchTarget,
           bool condition) override
    {
        addBranch(loc, condition ? 1 : 0);
    }

    void
    onBrTable(runtime::Location loc,
              std::span<const runtime::BranchTarget>,
              runtime::BranchTarget, uint32_t index) override
    {
        addBranch(loc, static_cast<int>(index));
    }

    void
    onSelect(runtime::Location loc, bool condition, wasm::Value,
             wasm::Value) override
    {
        addBranch(loc, condition ? 1 : 0);
    }

    /** Decisions observed at @p loc (empty set if never executed). */
    const std::set<int> &
    branches(runtime::Location loc) const
    {
        static const std::set<int> empty;
        auto it = coverage_.find(core::packLoc(loc));
        return it == coverage_.end() ? empty : it->second;
    }

    /** Number of branch sites executed at least once. */
    size_t sites() const { return coverage_.size(); }

    /** Sites where only one of both two-way outcomes was seen. */
    size_t partiallyCoveredTwoWaySites() const;

    std::string report() const;

  private:
    void
    addBranch(runtime::Location loc, int decision)
    {
        coverage_[core::packLoc(loc)].insert(decision);
    }

    std::map<uint64_t, std::set<int>> coverage_;
};

} // namespace wasabi::analyses

#endif // WASABI_ANALYSES_BRANCH_COVERAGE_H
