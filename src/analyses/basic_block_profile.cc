#include "analyses/basic_block_profile.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace wasabi::analyses {

std::string
BasicBlockProfile::report(size_t top_n) const
{
    using Entry = std::pair<std::pair<uint64_t, runtime::BlockKind>,
                            uint64_t>;
    std::vector<Entry> sorted(counts_.begin(), counts_.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const Entry &a, const Entry &b) {
                  return a.second > b.second;
              });
    std::ostringstream os;
    os << "distinct blocks entered: " << counts_.size() << "\n";
    for (size_t i = 0; i < sorted.size() && i < top_n; ++i) {
        uint64_t packed = sorted[i].first.first;
        os << "  func " << (packed >> 32) << " @"
           << static_cast<int32_t>(packed & 0xFFFFFFFF) << " ("
           << name(sorted[i].first.second) << "): " << sorted[i].second
           << "\n";
    }
    return os.str();
}

} // namespace wasabi::analyses
