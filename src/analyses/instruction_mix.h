/**
 * @file
 * Instruction mix analysis (paper Table 4): counts how often each kind
 * of instruction is executed — a basis for performance and security
 * analyses.
 */

#ifndef WASABI_ANALYSES_INSTRUCTION_MIX_H
#define WASABI_ANALYSES_INSTRUCTION_MIX_H

#include <cstdint>
#include <map>
#include <string>

#include "runtime/analysis.h"

namespace wasabi::analyses {

/** Counts executed instructions, by opcode mnemonic and by hook kind. */
class InstructionMix final : public runtime::Analysis {
  public:
    runtime::HookSet hooks() const override;

    void onStart(runtime::Location) override;
    void onNop(runtime::Location) override;
    void onUnreachable(runtime::Location) override;
    void onIf(runtime::Location, bool) override;
    void onBr(runtime::Location, runtime::BranchTarget) override;
    void onBrIf(runtime::Location, runtime::BranchTarget, bool) override;
    void onBrTable(runtime::Location,
                   std::span<const runtime::BranchTarget>,
                   runtime::BranchTarget, uint32_t) override;
    void onBegin(runtime::Location, runtime::BlockKind) override;
    void onConst(runtime::Location, wasm::Opcode, wasm::Value) override;
    void onUnary(runtime::Location, wasm::Opcode, wasm::Value,
                 wasm::Value) override;
    void onBinary(runtime::Location, wasm::Opcode, wasm::Value,
                  wasm::Value, wasm::Value) override;
    void onDrop(runtime::Location, wasm::Value) override;
    void onSelect(runtime::Location, bool, wasm::Value,
                  wasm::Value) override;
    void onLocal(runtime::Location, wasm::Opcode, uint32_t,
                 wasm::Value) override;
    void onGlobal(runtime::Location, wasm::Opcode, uint32_t,
                  wasm::Value) override;
    void onLoad(runtime::Location, wasm::Opcode, runtime::MemArg,
                wasm::Value) override;
    void onStore(runtime::Location, wasm::Opcode, runtime::MemArg,
                 wasm::Value) override;
    void onMemorySize(runtime::Location, uint32_t) override;
    void onMemoryGrow(runtime::Location, uint32_t, uint32_t) override;
    void onCallPre(runtime::Location, uint32_t,
                   std::span<const wasm::Value>,
                   std::optional<uint32_t>) override;
    void onReturn(runtime::Location,
                  std::span<const wasm::Value>) override;

    /** Executed-count per instruction mnemonic. */
    const std::map<std::string, uint64_t> &counts() const
    {
        return counts_;
    }

    /** Total dynamic instruction count observed. */
    uint64_t total() const { return total_; }

    uint64_t
    count(const std::string &mnemonic) const
    {
        auto it = counts_.find(mnemonic);
        return it == counts_.end() ? 0 : it->second;
    }

    /** Human-readable report, most frequent first. */
    std::string report(size_t top_n = 20) const;

  private:
    void
    bump(const std::string &key)
    {
        ++counts_[key];
        ++total_;
    }

    std::map<std::string, uint64_t> counts_;
    uint64_t total_ = 0;
};

} // namespace wasabi::analyses

#endif // WASABI_ANALYSES_INSTRUCTION_MIX_H
