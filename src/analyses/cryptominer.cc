#include "analyses/cryptominer.h"
