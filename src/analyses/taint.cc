#include "analyses/taint.h"

namespace wasabi::analyses {

using runtime::BlockKind;
using runtime::Location;

TaintAnalysis::Frame &
TaintAnalysis::top()
{
    if (frames_.empty())
        frames_.emplace_back(); // tolerate host-initiated calls
    return frames_.back();
}

void
TaintAnalysis::push(bool t)
{
    top().stack.push_back(t);
}

bool
TaintAnalysis::pop()
{
    Frame &f = top();
    if (f.stack.empty())
        return false; // drift tolerance: treat missing values as clean
    bool t = f.stack.back();
    f.stack.pop_back();
    return t;
}

void
TaintAnalysis::setLocal(uint32_t idx, bool t)
{
    Frame &f = top();
    if (f.locals.size() <= idx)
        f.locals.resize(idx + 1, false);
    f.locals[idx] = t;
}

bool
TaintAnalysis::getLocal(uint32_t idx)
{
    Frame &f = top();
    return idx < f.locals.size() && f.locals[idx];
}

void
TaintAnalysis::onBegin(Location loc, BlockKind kind)
{
    if (kind == BlockKind::Function) {
        Frame f;
        f.locals = pendingArgs_;
        pendingArgs_.clear();
        frames_.push_back(std::move(f));
        return;
    }
    Frame &f = top();
    uint64_t packed = core::packLoc(loc);
    // A loop's begin hook fires once per iteration; only the first
    // entry opens the block.
    if (kind == BlockKind::Loop && !f.blocks.empty() &&
        f.blocks.back().beginLoc == packed) {
        return;
    }
    f.blocks.push_back({packed, f.stack.size()});
}

void
TaintAnalysis::onEnd(Location, BlockKind kind, Location)
{
    if (kind == BlockKind::Function) {
        // Implicit return: the remaining stack values are the results.
        // After an explicit `return`, onReturn already captured them
        // (and popped them), so don't clobber that capture.
        if (!returnCaptured_)
            pendingResults_ = top().stack;
        returnCaptured_ = false;
        if (!frames_.empty())
            frames_.pop_back();
        return;
    }
    Frame &f = top();
    if (f.blocks.empty())
        return;
    BlockEntry entry = f.blocks.back();
    f.blocks.pop_back();
    // Values above the entry height are carried out of the block; in
    // valid code that is the (at most one) block result.
    bool result_taint = false;
    bool has_result = f.stack.size() > entry.height;
    if (has_result)
        result_taint = f.stack.back();
    f.stack.resize(entry.height);
    if (has_result)
        f.stack.push_back(result_taint);
}

void
TaintAnalysis::onIf(Location, bool)
{
    pop(); // condition
}

void
TaintAnalysis::onBr(Location, runtime::BranchTarget)
{
    // Stack unwinding is handled by the end hooks the branch fires.
}

void
TaintAnalysis::onBrIf(Location, runtime::BranchTarget, bool)
{
    pop(); // condition
}

void
TaintAnalysis::onBrTable(Location, std::span<const runtime::BranchTarget>,
                         runtime::BranchTarget, uint32_t)
{
    pop(); // index
}

void
TaintAnalysis::onConst(Location, wasm::Opcode, wasm::Value)
{
    push(false);
}

void
TaintAnalysis::onUnary(Location, wasm::Opcode, wasm::Value, wasm::Value)
{
    push(pop());
}

void
TaintAnalysis::onBinary(Location, wasm::Opcode, wasm::Value, wasm::Value,
                        wasm::Value)
{
    bool b = pop();
    bool a = pop();
    push(a || b);
}

void
TaintAnalysis::onDrop(Location, wasm::Value)
{
    pop();
}

void
TaintAnalysis::onSelect(Location, bool, wasm::Value, wasm::Value)
{
    bool cond = pop();
    bool second = pop();
    bool first = pop();
    push(cond || first || second);
}

void
TaintAnalysis::onLocal(Location, wasm::Opcode op, uint32_t idx, wasm::Value)
{
    switch (op) {
      case wasm::Opcode::LocalGet:
        push(getLocal(idx));
        break;
      case wasm::Opcode::LocalSet:
        setLocal(idx, pop());
        break;
      case wasm::Opcode::LocalTee:
        setLocal(idx, top().stack.empty() ? false : top().stack.back());
        break;
      default:
        break;
    }
}

void
TaintAnalysis::onGlobal(Location, wasm::Opcode op, uint32_t idx,
                        wasm::Value)
{
    if (op == wasm::Opcode::GlobalGet) {
        push(globalTaint_.count(idx) != 0);
    } else {
        if (pop())
            globalTaint_.insert(idx);
        else
            globalTaint_.erase(idx);
    }
}

void
TaintAnalysis::onLoad(Location, wasm::Opcode op, runtime::MemArg memarg,
                      wasm::Value)
{
    pop(); // address operand
    size_t width = wasm::memAccessBytes(op);
    push(memoryTainted(memarg.effective(), width));
}

void
TaintAnalysis::onStore(Location, wasm::Opcode op, runtime::MemArg memarg,
                       wasm::Value)
{
    bool value_taint = pop();
    pop(); // address operand
    size_t width = wasm::memAccessBytes(op);
    uint64_t ea = memarg.effective();
    for (size_t i = 0; i < width; ++i) {
        if (value_taint)
            memTaint_.insert(ea + i);
        else
            memTaint_.erase(ea + i);
    }
}

void
TaintAnalysis::onMemorySize(Location, uint32_t)
{
    push(false);
}

void
TaintAnalysis::onMemoryGrow(Location, uint32_t, uint32_t)
{
    pop();
    push(false);
}

void
TaintAnalysis::onCallPre(Location loc, uint32_t func,
                         std::span<const wasm::Value> args,
                         std::optional<uint32_t> table_index)
{
    if (table_index)
        pop(); // the runtime table index operand
    pendingArgs_.assign(args.size(), false);
    for (size_t i = args.size(); i-- > 0;)
        pendingArgs_[i] = pop(); // top of stack is the last argument
    pendingSourceCall_ = sources_.count(func) != 0;
    pendingResults_.clear();
    if (sinks_.count(func)) {
        for (size_t i = 0; i < pendingArgs_.size(); ++i) {
            if (pendingArgs_[i])
                flows_.push_back({loc, func, i});
        }
    }
}

void
TaintAnalysis::onCallPost(Location, std::span<const wasm::Value> results)
{
    for (size_t i = 0; i < results.size(); ++i) {
        bool t = pendingSourceCall_ ||
            (i < pendingResults_.size() && pendingResults_[i]);
        push(t);
    }
    pendingSourceCall_ = false;
    pendingResults_.clear();
    pendingArgs_.clear(); // host callees never consumed them
}

void
TaintAnalysis::onReturn(Location, std::span<const wasm::Value> results)
{
    pendingResults_.assign(results.size(), false);
    for (size_t i = results.size(); i-- > 0;)
        pendingResults_[i] = pop();
    returnCaptured_ = true;
}

} // namespace wasabi::analyses
