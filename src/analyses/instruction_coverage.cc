#include "analyses/instruction_coverage.h"
