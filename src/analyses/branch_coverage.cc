#include "analyses/branch_coverage.h"

#include <sstream>

namespace wasabi::analyses {

size_t
BranchCoverage::partiallyCoveredTwoWaySites() const
{
    size_t n = 0;
    for (const auto &[loc, decisions] : coverage_) {
        if (decisions.size() == 1 &&
            (*decisions.begin() == 0 || *decisions.begin() == 1)) {
            ++n;
        }
    }
    return n;
}

std::string
BranchCoverage::report() const
{
    std::ostringstream os;
    os << "branch sites executed: " << coverage_.size()
       << ", partially covered two-way sites: "
       << partiallyCoveredTwoWaySites() << "\n";
    for (const auto &[packed, decisions] : coverage_) {
        os << "  func " << (packed >> 32) << " @" << (packed & 0xFFFFFFFF)
           << ":";
        for (int d : decisions)
            os << " " << d;
        os << "\n";
    }
    return os.str();
}

} // namespace wasabi::analyses
