/**
 * @file
 * Memory access tracing (paper Table 4): records every load and store
 * (location, opcode, effective address, value) for later offline
 * analysis, e.g. detecting cache-unfriendly access patterns. The
 * paper's JS version is 11 LOC using the load and store hooks.
 */

#ifndef WASABI_ANALYSES_MEMORY_TRACE_H
#define WASABI_ANALYSES_MEMORY_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/analysis.h"

namespace wasabi::analyses {

/** One traced memory access. */
struct MemoryAccess {
    runtime::Location loc;
    wasm::Opcode op = wasm::Opcode::I32Load;
    bool isStore = false;
    uint64_t address = 0; ///< effective address (addr + offset)
    wasm::Value value;
};

/** Append-only trace of all loads and stores. */
class MemoryTrace final : public runtime::Analysis {
  public:
    runtime::HookSet
    hooks() const override
    {
        return runtime::HookSet{runtime::HookKind::Load,
                                runtime::HookKind::Store};
    }

    void
    onLoad(runtime::Location loc, wasm::Opcode op, runtime::MemArg memarg,
           wasm::Value value) override
    {
        trace_.push_back({loc, op, false, memarg.effective(), value});
    }

    void
    onStore(runtime::Location loc, wasm::Opcode op, runtime::MemArg memarg,
            wasm::Value value) override
    {
        trace_.push_back({loc, op, true, memarg.effective(), value});
    }

    const std::vector<MemoryAccess> &trace() const { return trace_; }

    size_t loads() const;
    size_t stores() const;

    /**
     * Offline metric: fraction of consecutive accesses within
     * @p line_bytes of the previous one — a simple locality score for
     * spotting cache-unfriendly patterns.
     */
    double localityScore(uint64_t line_bytes = 64) const;

    std::string report(size_t max_entries = 10) const;

  private:
    std::vector<MemoryAccess> trace_;
};

} // namespace wasabi::analyses

#endif // WASABI_ANALYSES_MEMORY_TRACE_H
