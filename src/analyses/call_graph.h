/**
 * @file
 * Dynamic call graph extraction (paper Table 4): records caller ->
 * callee edges, including indirect calls (resolved through the table
 * by the runtime) and calls between internal functions. Call graphs
 * underpin dynamically-dead-code detection and malware reverse
 * engineering; the paper's JS version is 18 LOC using call_pre.
 */

#ifndef WASABI_ANALYSES_CALL_GRAPH_H
#define WASABI_ANALYSES_CALL_GRAPH_H

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "runtime/analysis.h"

namespace wasabi::analyses {

/** Dynamic call graph over original-module function indices. */
class CallGraph final : public runtime::Analysis {
  public:
    runtime::HookSet
    hooks() const override
    {
        return runtime::HookSet::only(runtime::HookKind::Call);
    }

    void
    onCallPre(runtime::Location loc, uint32_t func,
              std::span<const wasm::Value>,
              std::optional<uint32_t> table_index) override
    {
        // The caller is the function containing the call site.
        edges_[{loc.func, func}] += 1;
        if (table_index)
            indirectEdges_.insert({loc.func, func});
    }

    /** Distinct (caller, callee) edges. */
    size_t numEdges() const { return edges_.size(); }

    /** Number of times @p caller called @p callee. */
    uint64_t
    callCount(uint32_t caller, uint32_t callee) const
    {
        auto it = edges_.find({caller, callee});
        return it == edges_.end() ? 0 : it->second;
    }

    bool
    hasEdge(uint32_t caller, uint32_t callee) const
    {
        return edges_.count({caller, callee}) != 0;
    }

    bool
    hasIndirectEdge(uint32_t caller, uint32_t callee) const
    {
        return indirectEdges_.count({caller, callee}) != 0;
    }

    /** Functions that appear as callee of at least one edge. */
    std::set<uint32_t> reachedFunctions() const;

    /** Defined functions of @p m never observed as callees (nor as
     * exported entry @p entry) — dynamically dead code. */
    std::set<uint32_t> dynamicallyDead(const wasm::Module &m,
                                       uint32_t entry) const;

    /** DOT-format rendering of the graph. */
    std::string toDot(const wasm::Module &m) const;

    const std::map<std::pair<uint32_t, uint32_t>, uint64_t> &
    edges() const
    {
        return edges_;
    }

  private:
    std::map<std::pair<uint32_t, uint32_t>, uint64_t> edges_;
    std::set<std::pair<uint32_t, uint32_t>> indirectEdges_;
};

} // namespace wasabi::analyses

#endif // WASABI_ANALYSES_CALL_GRAPH_H
