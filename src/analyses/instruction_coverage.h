/**
 * @file
 * Instruction coverage (paper Table 4): records which instructions
 * executed at least once — useful for assessing test quality. The
 * paper's version implements all hooks in 11 LOC of JS; here every
 * hook funnels into one covered-location set.
 */

#ifndef WASABI_ANALYSES_INSTRUCTION_COVERAGE_H
#define WASABI_ANALYSES_INSTRUCTION_COVERAGE_H

#include <unordered_set>

#include "runtime/analysis.h"

namespace wasabi::analyses {

/** Set of executed instruction locations. */
class InstructionCoverage final : public runtime::Analysis {
  public:
    runtime::HookSet
    hooks() const override
    {
        return runtime::HookSet::all();
    }

    void onStart(runtime::Location loc) override { mark(loc); }
    void onNop(runtime::Location loc) override { mark(loc); }
    void onUnreachable(runtime::Location loc) override { mark(loc); }
    void onIf(runtime::Location loc, bool) override { mark(loc); }
    void
    onBr(runtime::Location loc, runtime::BranchTarget) override
    {
        mark(loc);
    }
    void
    onBrIf(runtime::Location loc, runtime::BranchTarget, bool) override
    {
        mark(loc);
    }
    void
    onBrTable(runtime::Location loc,
              std::span<const runtime::BranchTarget>,
              runtime::BranchTarget, uint32_t) override
    {
        mark(loc);
    }
    void
    onBegin(runtime::Location loc, runtime::BlockKind kind) override
    {
        if (kind != runtime::BlockKind::Function)
            mark(loc);
    }
    void
    onEnd(runtime::Location loc, runtime::BlockKind, runtime::Location)
        override
    {
        mark(loc);
    }
    void
    onConst(runtime::Location loc, wasm::Opcode, wasm::Value) override
    {
        mark(loc);
    }
    void
    onUnary(runtime::Location loc, wasm::Opcode, wasm::Value,
            wasm::Value) override
    {
        mark(loc);
    }
    void
    onBinary(runtime::Location loc, wasm::Opcode, wasm::Value, wasm::Value,
             wasm::Value) override
    {
        mark(loc);
    }
    void onDrop(runtime::Location loc, wasm::Value) override { mark(loc); }
    void
    onSelect(runtime::Location loc, bool, wasm::Value, wasm::Value) override
    {
        mark(loc);
    }
    void
    onLocal(runtime::Location loc, wasm::Opcode, uint32_t,
            wasm::Value) override
    {
        mark(loc);
    }
    void
    onGlobal(runtime::Location loc, wasm::Opcode, uint32_t,
             wasm::Value) override
    {
        mark(loc);
    }
    void
    onLoad(runtime::Location loc, wasm::Opcode, runtime::MemArg,
           wasm::Value) override
    {
        mark(loc);
    }
    void
    onStore(runtime::Location loc, wasm::Opcode, runtime::MemArg,
            wasm::Value) override
    {
        mark(loc);
    }
    void onMemorySize(runtime::Location loc, uint32_t) override
    {
        mark(loc);
    }
    void
    onMemoryGrow(runtime::Location loc, uint32_t, uint32_t) override
    {
        mark(loc);
    }
    void
    onCallPre(runtime::Location loc, uint32_t,
              std::span<const wasm::Value>,
              std::optional<uint32_t>) override
    {
        mark(loc);
    }
    void
    onReturn(runtime::Location loc, std::span<const wasm::Value>) override
    {
        mark(loc);
    }

    bool
    covered(runtime::Location loc) const
    {
        return covered_.count(core::packLoc(loc)) != 0;
    }

    size_t coveredCount() const { return covered_.size(); }

    /** Covered fraction relative to a module's instruction count. */
    double
    ratio(const wasm::Module &m) const
    {
        size_t total = m.numInstructions();
        return total == 0 ? 0.0
                          : static_cast<double>(covered_.size()) / total;
    }

  private:
    void
    mark(runtime::Location loc)
    {
        if (loc.instr != core::kFunctionEntry)
            covered_.insert(core::packLoc(loc));
    }

    std::unordered_set<uint64_t> covered_;
};

} // namespace wasabi::analyses

#endif // WASABI_ANALYSES_INSTRUCTION_COVERAGE_H
