#include "analyses/memory_trace.h"

#include <cstdlib>
#include <sstream>

namespace wasabi::analyses {

size_t
MemoryTrace::loads() const
{
    size_t n = 0;
    for (const MemoryAccess &a : trace_)
        n += a.isStore ? 0 : 1;
    return n;
}

size_t
MemoryTrace::stores() const
{
    return trace_.size() - loads();
}

double
MemoryTrace::localityScore(uint64_t line_bytes) const
{
    if (trace_.size() < 2)
        return 1.0;
    size_t near = 0;
    for (size_t i = 1; i < trace_.size(); ++i) {
        uint64_t a = trace_[i - 1].address;
        uint64_t b = trace_[i].address;
        uint64_t dist = a > b ? a - b : b - a;
        if (dist <= line_bytes)
            ++near;
    }
    return static_cast<double>(near) / (trace_.size() - 1);
}

std::string
MemoryTrace::report(size_t max_entries) const
{
    std::ostringstream os;
    os << "memory accesses: " << trace_.size() << " (" << loads()
       << " loads, " << stores() << " stores), locality "
       << localityScore() << "\n";
    for (size_t i = 0; i < trace_.size() && i < max_entries; ++i) {
        const MemoryAccess &a = trace_[i];
        os << "  " << (a.isStore ? "store" : "load ") << " "
           << wasm::name(a.op) << " @" << a.address << " = "
           << toString(a.value) << "\n";
    }
    return os.str();
}

} // namespace wasabi::analyses
