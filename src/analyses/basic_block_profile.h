/**
 * @file
 * Basic block profiling (paper Table 4): counts how often each
 * function, block, and loop is entered — useful for finding hot code.
 * The paper implements this with the `begin` hook alone (9 LOC of JS).
 */

#ifndef WASABI_ANALYSES_BASIC_BLOCK_PROFILE_H
#define WASABI_ANALYSES_BASIC_BLOCK_PROFILE_H

#include <cstdint>
#include <map>
#include <string>

#include "runtime/analysis.h"

namespace wasabi::analyses {

/** Per-block execution counter keyed by (location, block kind). */
class BasicBlockProfile final : public runtime::Analysis {
  public:
    runtime::HookSet
    hooks() const override
    {
        return runtime::HookSet::only(runtime::HookKind::Begin);
    }

    void
    onBegin(runtime::Location loc, runtime::BlockKind kind) override
    {
        ++counts_[{core::packLoc(loc), kind}];
    }

    /** Execution count of the block beginning at @p loc. */
    uint64_t
    count(runtime::Location loc, runtime::BlockKind kind) const
    {
        auto it = counts_.find({core::packLoc(loc), kind});
        return it == counts_.end() ? 0 : it->second;
    }

    /** Number of distinct blocks entered. */
    size_t distinctBlocks() const { return counts_.size(); }

    /** The hottest blocks, formatted one per line. */
    std::string report(size_t top_n = 10) const;

    const std::map<std::pair<uint64_t, runtime::BlockKind>, uint64_t> &
    counts() const
    {
        return counts_;
    }

  private:
    std::map<std::pair<uint64_t, runtime::BlockKind>, uint64_t> counts_;
};

} // namespace wasabi::analyses

#endif // WASABI_ANALYSES_BASIC_BLOCK_PROFILE_H
