#include "analyses/instruction_mix.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace wasabi::analyses {

using runtime::HookKind;
using runtime::HookSet;
using runtime::Location;

HookSet
InstructionMix::hooks() const
{
    return HookSet::all();
}

void InstructionMix::onStart(Location) { bump("start"); }
void InstructionMix::onNop(Location) { bump("nop"); }
void InstructionMix::onUnreachable(Location) { bump("unreachable"); }
void InstructionMix::onIf(Location, bool) { bump("if"); }
void InstructionMix::onBr(Location, runtime::BranchTarget) { bump("br"); }
void
InstructionMix::onBrIf(Location, runtime::BranchTarget, bool)
{
    bump("br_if");
}
void
InstructionMix::onBrTable(Location, std::span<const runtime::BranchTarget>,
                          runtime::BranchTarget, uint32_t)
{
    bump("br_table");
}
void
InstructionMix::onBegin(Location, runtime::BlockKind kind)
{
    // Block entries stand in for the block/loop instructions.
    if (kind == runtime::BlockKind::Block)
        bump("block");
    else if (kind == runtime::BlockKind::Loop)
        bump("loop");
}
void
InstructionMix::onConst(Location, wasm::Opcode op, wasm::Value)
{
    bump(wasm::name(op));
}
void
InstructionMix::onUnary(Location, wasm::Opcode op, wasm::Value, wasm::Value)
{
    bump(wasm::name(op));
}
void
InstructionMix::onBinary(Location, wasm::Opcode op, wasm::Value,
                         wasm::Value, wasm::Value)
{
    bump(wasm::name(op));
}
void InstructionMix::onDrop(Location, wasm::Value) { bump("drop"); }
void
InstructionMix::onSelect(Location, bool, wasm::Value, wasm::Value)
{
    bump("select");
}
void
InstructionMix::onLocal(Location, wasm::Opcode op, uint32_t, wasm::Value)
{
    bump(wasm::name(op));
}
void
InstructionMix::onGlobal(Location, wasm::Opcode op, uint32_t, wasm::Value)
{
    bump(wasm::name(op));
}
void
InstructionMix::onLoad(Location, wasm::Opcode op, runtime::MemArg,
                       wasm::Value)
{
    bump(wasm::name(op));
}
void
InstructionMix::onStore(Location, wasm::Opcode op, runtime::MemArg,
                        wasm::Value)
{
    bump(wasm::name(op));
}
void InstructionMix::onMemorySize(Location, uint32_t)
{
    bump("memory.size");
}
void
InstructionMix::onMemoryGrow(Location, uint32_t, uint32_t)
{
    bump("memory.grow");
}
void
InstructionMix::onCallPre(Location, uint32_t, std::span<const wasm::Value>,
                          std::optional<uint32_t> table_index)
{
    bump(table_index ? "call_indirect" : "call");
}
void
InstructionMix::onReturn(Location, std::span<const wasm::Value>)
{
    bump("return");
}

std::string
InstructionMix::report(size_t top_n) const
{
    std::vector<std::pair<std::string, uint64_t>> sorted(counts_.begin(),
                                                         counts_.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    std::ostringstream os;
    os << "total dynamic instructions observed: " << total_ << "\n";
    for (size_t i = 0; i < sorted.size() && i < top_n; ++i)
        os << "  " << sorted[i].first << ": " << sorted[i].second << "\n";
    return os.str();
}

} // namespace wasabi::analyses
