/**
 * @file
 * Name-keyed registry of the bundled analyses (paper Table 4): one
 * factory and one report renderer shared by every front end (the CLI
 * `run`/`profile` commands and the serve daemon), so adding an
 * analysis is a single-file change and the two front ends can never
 * drift apart in which names they accept.
 */

#ifndef WASABI_ANALYSES_REGISTRY_H
#define WASABI_ANALYSES_REGISTRY_H

#include <memory>
#include <string>
#include <vector>

#include "runtime/analysis.h"
#include "wasm/module.h"

namespace wasabi::analyses {

/** Names accepted by makeAnalysis, in presentation order. */
const std::vector<std::string> &analysisNames();

/** Instantiate the analysis registered under @p name.
 * @throws std::runtime_error (listing the known names) otherwise. */
std::unique_ptr<runtime::Analysis> makeAnalysis(const std::string &name);

/**
 * Render the post-run report of @p a (created by makeAnalysis under
 * the same @p name) against the module @p m it observed. Returns a
 * human-readable, newline-terminated string.
 */
std::string analysisReport(const std::string &name, runtime::Analysis &a,
                           const wasm::Module &m);

} // namespace wasabi::analyses

#endif // WASABI_ANALYSES_REGISTRY_H
