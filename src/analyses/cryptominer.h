/**
 * @file
 * Cryptominer detection (paper Figure 1, re-implementing the profiling
 * part of SEISMIC [47]): gathers a frequency signature of the binary
 * instructions characteristic of mining kernels (i32.add, i32.and,
 * i32.shl, i32.shr_u, i32.xor) and flags executions dominated by them.
 */

#ifndef WASABI_ANALYSES_CRYPTOMINER_H
#define WASABI_ANALYSES_CRYPTOMINER_H

#include <cstdint>
#include <map>
#include <string>

#include "runtime/analysis.h"

namespace wasabi::analyses {

/** Instruction-signature based cryptomining detector. */
class CryptominerDetector final : public runtime::Analysis {
  public:
    runtime::HookSet
    hooks() const override
    {
        return runtime::HookSet::only(runtime::HookKind::Binary);
    }

    void
    onBinary(runtime::Location, wasm::Opcode op, wasm::Value, wasm::Value,
             wasm::Value) override
    {
        ++total_;
        switch (op) {
          case wasm::Opcode::I32Add:
          case wasm::Opcode::I32And:
          case wasm::Opcode::I32Shl:
          case wasm::Opcode::I32ShrU:
          case wasm::Opcode::I32Xor:
          case wasm::Opcode::I32Rotl:
          case wasm::Opcode::I32Rotr:
            ++signature_[wasm::name(op)];
            ++signatureTotal_;
            break;
          default:
            break;
        }
    }

    /** Per-mnemonic signature counts (cf. Figure 1's `signature`). */
    const std::map<std::string, uint64_t> &signature() const
    {
        return signature_;
    }

    uint64_t totalBinaryOps() const { return total_; }

    /** Fraction of binary operations matching the mining signature. */
    double
    signatureRatio() const
    {
        return total_ == 0
                   ? 0.0
                   : static_cast<double>(signatureTotal_) / total_;
    }

    /**
     * Heuristic verdict: hash kernels are dominated by 32-bit
     * bitwise/rotate/add mixing with substantial xor traffic.
     */
    bool
    suspicious() const
    {
        if (total_ < 1000)
            return false; // too little evidence
        auto count = [this](const char *n) {
            auto it = signature_.find(n);
            return it == signature_.end() ? uint64_t(0) : it->second;
        };
        double xor_ratio =
            static_cast<double>(count("i32.xor")) / total_;
        return signatureRatio() > 0.8 && xor_ratio > 0.15;
    }

  private:
    std::map<std::string, uint64_t> signature_;
    uint64_t signatureTotal_ = 0;
    uint64_t total_ = 0;
};

} // namespace wasabi::analyses

#endif // WASABI_ANALYSES_CRYPTOMINER_H
