/**
 * @file
 * Dynamic taint analysis (paper Table 4, 208 LOC of JS in the paper's
 * implementation). Associates a taint bit with every value and tracks
 * propagation through the operand stack, locals, globals, function
 * calls, and linear memory (memory shadowing, paper §2.3): the shadow
 * state lives entirely on the analysis side and never touches the
 * program's own memory.
 *
 * Sources: values returned by configured source functions, or memory /
 * globals tainted explicitly. Sinks: configured sink functions; a
 * tainted argument reaching a sink is recorded as an illegal flow.
 */

#ifndef WASABI_ANALYSES_TAINT_H
#define WASABI_ANALYSES_TAINT_H

#include <set>
#include <unordered_set>
#include <vector>

#include "runtime/analysis.h"

namespace wasabi::analyses {

/** A detected source-to-sink flow. */
struct TaintFlow {
    runtime::Location loc; ///< call site of the sink
    uint32_t sinkFunc = 0;
    size_t argIndex = 0;
};

/** Shadow-state taint tracker over all 23 hooks. */
class TaintAnalysis final : public runtime::Analysis {
  public:
    runtime::HookSet
    hooks() const override
    {
        return runtime::HookSet::all();
    }

    /** Mark a function whose results are taint sources. */
    void addSource(uint32_t func) { sources_.insert(func); }

    /** Mark a function whose arguments are checked as sinks. */
    void addSink(uint32_t func) { sinks_.insert(func); }

    /** Taint a byte range of linear memory. */
    void
    taintMemory(uint64_t addr, size_t len)
    {
        for (size_t i = 0; i < len; ++i)
            memTaint_.insert(addr + i);
    }

    /** Taint a global variable. */
    void taintGlobal(uint32_t idx) { globalTaint_.insert(idx); }

    bool
    memoryTainted(uint64_t addr, size_t len = 1) const
    {
        for (size_t i = 0; i < len; ++i) {
            if (memTaint_.count(addr + i))
                return true;
        }
        return false;
    }

    bool
    globalTainted(uint32_t idx) const
    {
        return globalTaint_.count(idx) != 0;
    }

    const std::vector<TaintFlow> &flows() const { return flows_; }

    // ----- hook implementations (shadow-stack mirroring) -----------

    void onBegin(runtime::Location loc, runtime::BlockKind kind) override;
    void onEnd(runtime::Location loc, runtime::BlockKind kind,
               runtime::Location begin) override;
    void onIf(runtime::Location, bool) override;
    void onBr(runtime::Location, runtime::BranchTarget) override;
    void onBrIf(runtime::Location, runtime::BranchTarget, bool) override;
    void onBrTable(runtime::Location,
                   std::span<const runtime::BranchTarget>,
                   runtime::BranchTarget, uint32_t) override;
    void onConst(runtime::Location, wasm::Opcode, wasm::Value) override;
    void onUnary(runtime::Location, wasm::Opcode, wasm::Value,
                 wasm::Value) override;
    void onBinary(runtime::Location, wasm::Opcode, wasm::Value,
                  wasm::Value, wasm::Value) override;
    void onDrop(runtime::Location, wasm::Value) override;
    void onSelect(runtime::Location, bool, wasm::Value,
                  wasm::Value) override;
    void onLocal(runtime::Location, wasm::Opcode, uint32_t,
                 wasm::Value) override;
    void onGlobal(runtime::Location, wasm::Opcode, uint32_t,
                  wasm::Value) override;
    void onLoad(runtime::Location, wasm::Opcode, runtime::MemArg,
                wasm::Value) override;
    void onStore(runtime::Location, wasm::Opcode, runtime::MemArg,
                 wasm::Value) override;
    void onMemorySize(runtime::Location, uint32_t) override;
    void onMemoryGrow(runtime::Location, uint32_t, uint32_t) override;
    void onCallPre(runtime::Location, uint32_t,
                   std::span<const wasm::Value>,
                   std::optional<uint32_t>) override;
    void onCallPost(runtime::Location,
                    std::span<const wasm::Value>) override;
    void onReturn(runtime::Location,
                  std::span<const wasm::Value>) override;

  private:
    /** One block-entry record (for stack unwinding at block ends). */
    struct BlockEntry {
        uint64_t beginLoc = 0;
        size_t height = 0;
    };

    /** Shadow state of one function activation. */
    struct Frame {
        std::vector<bool> stack;  ///< taint of operand-stack values
        std::vector<bool> locals; ///< taint of locals (grown lazily)
        std::vector<BlockEntry> blocks;
    };

    Frame &top();
    void push(bool t);
    bool pop();
    void setLocal(uint32_t idx, bool t);
    bool getLocal(uint32_t idx);

    std::vector<Frame> frames_;
    std::unordered_set<uint64_t> memTaint_; ///< tainted memory bytes
    std::set<uint32_t> globalTaint_;
    std::set<uint32_t> sources_;
    std::set<uint32_t> sinks_;
    std::vector<TaintFlow> flows_;

    /** Call-linkage state between call_pre / begin(function) /
     * return / call_post. */
    std::vector<bool> pendingArgs_;
    bool pendingSourceCall_ = false;
    std::vector<bool> pendingResults_;
    bool returnCaptured_ = false;
};

} // namespace wasabi::analyses

#endif // WASABI_ANALYSES_TAINT_H
