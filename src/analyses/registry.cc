#include "analyses/registry.h"

#include <cstdarg>
#include <cstdio>

#include "analyses/basic_block_profile.h"
#include "analyses/branch_coverage.h"
#include "analyses/call_graph.h"
#include "analyses/cryptominer.h"
#include "analyses/instruction_coverage.h"
#include "analyses/instruction_mix.h"
#include "analyses/memory_trace.h"
#include "analyses/taint.h"

namespace wasabi::analyses {

namespace {

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    char buf[256];
    std::vsnprintf(buf, sizeof buf, fmt, args);
    va_end(args);
    return buf;
}

} // namespace

const std::vector<std::string> &
analysisNames()
{
    static const std::vector<std::string> names = {
        "mix",  "blocks", "icov",  "branch",
        "callgraph", "taint",  "miner", "mem"};
    return names;
}

std::unique_ptr<runtime::Analysis>
makeAnalysis(const std::string &name)
{
    if (name == "mix")
        return std::make_unique<InstructionMix>();
    if (name == "blocks")
        return std::make_unique<BasicBlockProfile>();
    if (name == "icov")
        return std::make_unique<InstructionCoverage>();
    if (name == "branch")
        return std::make_unique<BranchCoverage>();
    if (name == "callgraph")
        return std::make_unique<CallGraph>();
    if (name == "taint")
        return std::make_unique<TaintAnalysis>();
    if (name == "miner")
        return std::make_unique<CryptominerDetector>();
    if (name == "mem")
        return std::make_unique<MemoryTrace>();
    std::string known;
    for (const std::string &n : analysisNames())
        known += (known.empty() ? "" : ", ") + n;
    throw std::runtime_error("unknown analysis: " + name +
                             " (known: " + known + ")");
}

std::string
analysisReport(const std::string &name, runtime::Analysis &a,
               const wasm::Module &m)
{
    if (name == "mix")
        return static_cast<InstructionMix &>(a).report();
    if (name == "blocks")
        return static_cast<BasicBlockProfile &>(a).report();
    if (name == "icov") {
        auto &cov = static_cast<InstructionCoverage &>(a);
        return format("instruction coverage: %.1f%% (%zu locations)\n",
                      100.0 * cov.ratio(m), cov.coveredCount());
    }
    if (name == "branch")
        return static_cast<BranchCoverage &>(a).report();
    if (name == "callgraph")
        return static_cast<CallGraph &>(a).toDot(m);
    if (name == "taint") {
        auto &taint = static_cast<TaintAnalysis &>(a);
        return format("taint flows: %zu (configure sources/sinks "
                      "programmatically)\n",
                      taint.flows().size());
    }
    if (name == "miner") {
        auto &det = static_cast<CryptominerDetector &>(a);
        return format("binary ops: %llu, signature ratio %.2f -> %s\n",
                      static_cast<unsigned long long>(
                          det.totalBinaryOps()),
                      det.signatureRatio(),
                      det.suspicious() ? "SUSPICIOUS" : "benign");
    }
    if (name == "mem")
        return static_cast<MemoryTrace &>(a).report();
    throw std::runtime_error("unknown analysis: " + name);
}

} // namespace wasabi::analyses
