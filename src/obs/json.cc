#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace wasabi::obs::json {

const Value *
Value::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : object) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

uint64_t
Value::asU64() const
{
    if (kind != Kind::Number || number < 0)
        return 0;
    return static_cast<uint64_t>(std::llround(number));
}

namespace {

class Parser {
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    std::optional<Value>
    run()
    {
        Value v;
        if (!parseValue(v, 0))
            return std::nullopt;
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing characters after document");
            return std::nullopt;
        }
        return v;
    }

  private:
    /** Nesting beyond this is rejected (stack-overflow guard). */
    static constexpr int kMaxDepth = 64;

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    fail(const std::string &what)
    {
        if (error_ && error_->empty())
            *error_ = what + " at offset " + std::to_string(pos_);
        return false;
    }

    bool
    expect(char c)
    {
        if (peek() != c)
            return fail(std::string("expected '") + c + "'");
        ++pos_;
        return true;
    }

    bool
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (peek() != *p)
                return fail(std::string("bad literal (expected ") +
                            word + ")");
            ++pos_;
        }
        return true;
    }

    /** Read exactly four hex digits into @p cp. */
    bool
    hex4(unsigned &cp)
    {
        cp = 0;
        for (int i = 0; i < 4; ++i) {
            char h = peek();
            if (!std::isxdigit(static_cast<unsigned char>(h)))
                return fail("bad \\u escape");
            cp = cp * 16 +
                 static_cast<unsigned>(h <= '9' ? h - '0'
                                               : (h | 0x20) - 'a' + 10);
            ++pos_;
        }
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        while (true) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                unsigned cp = 0;
                if (!hex4(cp))
                    return false;
                if (cp >= 0xDC00 && cp <= 0xDFFF)
                    return fail("lone low surrogate in \\u escape");
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // A high surrogate must be immediately followed by
                    // a \uDC00-\uDFFF low surrogate; together they
                    // encode one supplementary-plane code point.
                    if (peek() != '\\' || pos_ + 1 >= text_.size() ||
                        text_[pos_ + 1] != 'u')
                        return fail("lone high surrogate in \\u escape");
                    pos_ += 2;
                    unsigned lo = 0;
                    if (!hex4(lo))
                        return false;
                    if (lo < 0xDC00 || lo > 0xDFFF)
                        return fail("high surrogate not followed by a "
                                    "low surrogate");
                    cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                }
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xC0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                } else if (cp < 0x10000) {
                    out += static_cast<char>(0xE0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                } else {
                    out += static_cast<char>(0xF0 | (cp >> 18));
                    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
    }

    bool
    parseNumber(Value &out)
    {
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            return fail("expected a digit");
        // JSON forbids leading zeros: the integer part is either a
        // lone "0" or starts with 1-9.
        bool leading_zero = peek() == '0';
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (leading_zero && pos_ - start > (text_[start] == '-' ? 2u : 1u))
            return fail("leading zero in number");
        if (peek() == '.') {
            ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("expected a fraction digit");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("expected an exponent digit");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        out.kind = Value::Kind::Number;
        out.number = std::strtod(text_.c_str() + start, nullptr);
        return true;
    }

    bool
    parseValue(Value &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        switch (peek()) {
          case '{': {
            ++pos_;
            out.kind = Value::Kind::Object;
            skipWs();
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (!expect(':'))
                    return false;
                Value v;
                if (!parseValue(v, depth + 1))
                    return false;
                out.object.emplace_back(std::move(key), std::move(v));
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                return expect('}');
            }
          }
          case '[': {
            ++pos_;
            out.kind = Value::Kind::Array;
            skipWs();
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            while (true) {
                Value v;
                if (!parseValue(v, depth + 1))
                    return false;
                out.array.push_back(std::move(v));
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                return expect(']');
            }
          }
          case '"':
            out.kind = Value::Kind::String;
            return parseString(out.str);
          case 't':
            out.kind = Value::Kind::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.kind = Value::Kind::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.kind = Value::Kind::Null;
            return literal("null");
          default:
            return parseNumber(out);
        }
    }

    const std::string &text_;
    std::string *error_;
    size_t pos_ = 0;
};

} // namespace

std::optional<Value>
parse(const std::string &text, std::string *error)
{
    if (error)
        error->clear();
    return Parser(text, error).run();
}

} // namespace wasabi::obs::json
