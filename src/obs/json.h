/**
 * @file
 * A minimal recursive-descent JSON reader for the observability
 * layer: schema validation of profile JSON (`wasabi profile
 * --check=`) and structural checks on Chrome trace-event output in
 * tests. Parse-only — the profile writers emit JSON by hand, this
 * reader verifies it. Not a general-purpose JSON library: numbers are
 * doubles, and input size is bounded by the caller. \uXXXX escapes
 * decode to UTF-8, including surrogate pairs; lone or malformed
 * surrogates are rejected.
 */

#ifndef WASABI_OBS_JSON_H
#define WASABI_OBS_JSON_H

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace wasabi::obs::json {

/** One parsed JSON value (a small tagged tree). */
struct Value {
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string str;
    std::vector<Value> array;
    /** Insertion-ordered key/value pairs. */
    std::vector<std::pair<std::string, Value>> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Member of an object by key; nullptr if absent (or not an
     * object). */
    const Value *find(const std::string &key) const;

    /** Number rounded to uint64 (0 if not a number). */
    uint64_t asU64() const;
};

/**
 * Parse @p text as one JSON document (trailing whitespace allowed,
 * trailing garbage rejected). Returns nullopt and fills @p error
 * (if non-null) on malformed input.
 */
std::optional<Value> parse(const std::string &text, std::string *error);

} // namespace wasabi::obs::json

#endif // WASABI_OBS_JSON_H
