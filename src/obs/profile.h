/**
 * @file
 * The observability subsystem (DESIGN.md §7): a ProfileCollector that
 * aggregates, across all three layers of the system,
 *
 *  - instrumentation-phase metrics from `core::instrument` (wall
 *    time, per-worker-thread function counts, hook-map lock
 *    hit/miss/insert counts) plus caller-timed phase spans
 *    (decode/instrument/encode/execute),
 *  - runtime hook-dispatch metrics from `WasabiRuntime::dispatch`
 *    (per-hook-kind counts and cumulative nanoseconds, attributed
 *    per registered analysis),
 *  - interpreter counters (instructions retired, calls, memory
 *    operations, traps),
 *
 * and renders them as a human text table, a stable versioned JSON
 * document (schema "wasabi-profile" version 1), or Chrome trace-event
 * JSON loadable in Perfetto/about:tracing (one track per
 * instrumentation worker thread plus one runtime hook track per
 * analysis).
 *
 * Cost model: the collector is attached behind nullable pointers and
 * an `enabled()` toggle; with profiling off the only per-dispatch
 * cost is one pointer test, and the interpreter counters are plain
 * increments on paths that already maintain `instructionsExecuted`.
 */

#ifndef WASABI_OBS_PROFILE_H
#define WASABI_OBS_PROFILE_H

#include <array>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/hook_kind.h"
#include "core/instrument.h"

namespace wasabi::obs {

/** Schema identity of the profile JSON (bump the version on any
 * incompatible change; additive optional fields do not bump it). */
inline constexpr const char *kProfileSchemaName = "wasabi-profile";
inline constexpr int kProfileSchemaVersion = 1;

/** Interpreter counters, fed from interp::Interpreter::stats(). */
struct InterpCounters {
    uint64_t instructions = 0; ///< instructions retired
    uint64_t calls = 0;        ///< call + call_indirect executed
    uint64_t memoryOps = 0;    ///< load/store/memory.size/memory.grow
    uint64_t memoryOpsElided = 0; ///< subset run without bounds check
    uint64_t traps = 0;        ///< traps propagated out of invoke()
};

/** One caller-timed wall-clock span (decode/instrument/encode/...). */
struct PhaseSpan {
    std::string name;
    uint64_t startNanos = 0; ///< relative to the collector's epoch
    uint64_t nanos = 0;
};

/**
 * Aggregating collector for one profiling session. Dispatch-side
 * mutators (addDispatch/addAnalysisHook) are called from the single
 * execution thread and are unsynchronized; phase/instrumentation
 * mutators take an internal mutex and may be called from any thread.
 */
class ProfileCollector {
  public:
    explicit ProfileCollector(bool enabled = true);

    bool enabled() const { return enabled_; }
    void setEnabled(bool on) { enabled_ = on; }

    /** Monotonic nanoseconds since this collector was constructed. */
    uint64_t now() const;

    // ----- phase spans (timed by the caller, e.g. the CLI) -----------

    void recordPhase(const std::string &name, uint64_t start_nanos,
                     uint64_t nanos);

    /** RAII helper: times a scope and records it as a phase span. */
    class ScopedPhase {
      public:
        ScopedPhase(ProfileCollector *c, std::string name)
            : c_(c), name_(std::move(name)),
              start_(c && c->enabled() ? c->now() : 0)
        {
        }
        ~ScopedPhase()
        {
            if (c_ && c_->enabled())
                c_->recordPhase(name_, start_, c_->now() - start_);
        }
        ScopedPhase(const ScopedPhase &) = delete;
        ScopedPhase &operator=(const ScopedPhase &) = delete;

      private:
        ProfileCollector *c_;
        std::string name_;
        uint64_t start_;
    };

    // ----- instrumentation phase (core) ------------------------------

    void recordInstrumentation(const core::InstrumentStats &stats);

    /** How hooks reached the runtime: "rewrite" (binary-rewriting
     * instrumenter) or "intrinsic" (engine-intrinsified, DESIGN.md
     * §13). Optional in the schema; empty means unreported. */
    void setInstrumentMode(std::string mode);

    // ----- runtime dispatch ------------------------------------------

    /** Names of the registered analyses, index-aligned with the
     * runtime's analysis list (for per-analysis attribution). */
    void setAnalysisNames(std::vector<std::string> names);

    /** One low-level hook dispatch of @p kind took @p nanos total. */
    void addDispatch(core::HookKind kind, uint64_t nanos);

    /** One high-level hook callback of analysis @p analysis. */
    void addAnalysisHook(size_t analysis, core::HookKind kind,
                         uint64_t nanos);

    // ----- interpreter ------------------------------------------------

    void setInterpCounters(const InterpCounters &counters);

    // ----- queries (tests, assertions) --------------------------------

    uint64_t dispatchCount(core::HookKind kind) const;
    /** Σ over all kinds; equals WasabiRuntime::hookInvocations() when
     * the collector observed every dispatch. */
    uint64_t totalDispatches() const;

    // ----- reporters ---------------------------------------------------

    /** Human-readable text table. */
    std::string toText() const;

    /**
     * Versioned JSON document (schema "wasabi-profile" v1). With
     * @p deterministic, every timing is zeroed and the
     * thread-schedule-dependent subsections (phase spans, per-worker
     * spans, hook-map lock counters) are omitted, so two runs of the
     * same module + analysis agree byte-for-byte regardless of
     * instrumentation thread count.
     */
    std::string toJson(bool deterministic = false) const;

    /** Chrome trace-event JSON (ts/dur in microseconds): phase spans,
     * one track per instrumentation worker thread, and one aggregated
     * hook track for the runtime plus one per analysis. */
    std::string toChromeTrace() const;

  private:
    struct KindCounter {
        uint64_t count = 0;
        uint64_t nanos = 0;
    };
    using PerKind = std::array<KindCounter, core::kNumHookKinds>;

    struct AnalysisCounters {
        std::string name;
        PerKind perKind{};
    };

    bool enabled_;
    std::chrono::steady_clock::time_point epoch_;

    mutable std::mutex mutex_; ///< guards phases_ and instr_
    std::vector<PhaseSpan> phases_;
    std::optional<core::InstrumentStats> instr_;
    std::string instrumentMode_; ///< "" = unreported

    PerKind dispatch_{};
    std::vector<AnalysisCounters> analyses_;
    std::optional<InterpCounters> interp_;
};

/**
 * Validate @p json against the "wasabi-profile" v1 schema: required
 * schema/version header, known top-level sections only, correctly
 * shaped sections, valid hook-kind names, and per-kind dispatch
 * counts summing exactly to `runtime.hookInvocations`. Returns false
 * and fills @p error (if non-null) on the first violation.
 */
bool validateProfileJson(const std::string &json, std::string *error);

/** Structural validation of Chrome trace-event JSON: a top-level
 * object with a `traceEvents` array whose entries carry the required
 * `ph`/`name`/`pid` fields (and `ts` for non-metadata events). */
bool validateChromeTrace(const std::string &json, std::string *error);

} // namespace wasabi::obs

#endif // WASABI_OBS_PROFILE_H
