#include "obs/profile.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "obs/json.h"

namespace wasabi::obs {

namespace {

/** Escape a string for embedding in a JSON document. All names we
 * emit are ASCII identifiers, but analysis names come from the CLI
 * user, so escape defensively. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Nanoseconds as a human-friendly "1.234 ms" style string. */
std::string
humanNanos(uint64_t nanos)
{
    char buf[32];
    if (nanos >= 1000000000)
        std::snprintf(buf, sizeof buf, "%.3f s", nanos / 1e9);
    else if (nanos >= 1000000)
        std::snprintf(buf, sizeof buf, "%.3f ms", nanos / 1e6);
    else if (nanos >= 1000)
        std::snprintf(buf, sizeof buf, "%.3f us", nanos / 1e3);
    else
        std::snprintf(buf, sizeof buf, "%" PRIu64 " ns", nanos);
    return buf;
}

/** Microsecond timestamp field for trace events (3 decimals). */
std::string
micros(uint64_t nanos)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", nanos / 1e3);
    return buf;
}

} // namespace

ProfileCollector::ProfileCollector(bool enabled)
    : enabled_(enabled), epoch_(std::chrono::steady_clock::now())
{
}

uint64_t
ProfileCollector::now() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

void
ProfileCollector::recordPhase(const std::string &name,
                              uint64_t start_nanos, uint64_t nanos)
{
    std::lock_guard<std::mutex> lock(mutex_);
    phases_.push_back(PhaseSpan{name, start_nanos, nanos});
}

void
ProfileCollector::recordInstrumentation(const core::InstrumentStats &stats)
{
    std::lock_guard<std::mutex> lock(mutex_);
    instr_ = stats;
}

void
ProfileCollector::setInstrumentMode(std::string mode)
{
    std::lock_guard<std::mutex> lock(mutex_);
    instrumentMode_ = std::move(mode);
}

void
ProfileCollector::setAnalysisNames(std::vector<std::string> names)
{
    analyses_.resize(std::max(analyses_.size(), names.size()));
    for (size_t i = 0; i < names.size(); ++i)
        analyses_[i].name = std::move(names[i]);
}

void
ProfileCollector::addDispatch(core::HookKind kind, uint64_t nanos)
{
    auto &c = dispatch_[static_cast<size_t>(kind)];
    c.count += 1;
    c.nanos += nanos;
}

void
ProfileCollector::addAnalysisHook(size_t analysis, core::HookKind kind,
                                  uint64_t nanos)
{
    if (analysis >= analyses_.size())
        analyses_.resize(analysis + 1);
    auto &c = analyses_[analysis].perKind[static_cast<size_t>(kind)];
    c.count += 1;
    c.nanos += nanos;
}

void
ProfileCollector::setInterpCounters(const InterpCounters &counters)
{
    interp_ = counters;
}

uint64_t
ProfileCollector::dispatchCount(core::HookKind kind) const
{
    return dispatch_[static_cast<size_t>(kind)].count;
}

uint64_t
ProfileCollector::totalDispatches() const
{
    uint64_t total = 0;
    for (const auto &c : dispatch_)
        total += c.count;
    return total;
}

std::string
ProfileCollector::toText() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream out;
    char line[160];

    out << "== wasabi profile ==\n";

    if (!instrumentMode_.empty())
        out << "\ninstrument mode: " << instrumentMode_ << "\n";

    if (!phases_.empty()) {
        out << "\nphases:\n";
        for (const auto &p : phases_) {
            std::snprintf(line, sizeof line, "  %-12s %12s\n",
                          p.name.c_str(), humanNanos(p.nanos).c_str());
            out << line;
        }
    }

    if (instr_) {
        out << "\ninstrumentation: "
            << instr_->functionsInstrumented << " functions, "
            << instr_->hooksGenerated << " hooks generated, "
            << humanNanos(instr_->wallNanos) << "\n";
        for (size_t i = 0; i < instr_->workers.size(); ++i) {
            const auto &w = instr_->workers[i];
            std::snprintf(line, sizeof line,
                          "  worker %-2zu    %6" PRIu64
                          " functions  %12s\n",
                          i, w.functions, humanNanos(w.nanos).c_str());
            out << line;
        }
        const auto &hm = instr_->hookMap;
        out << "  hook map:    " << hm.hits << " hits, " << hm.misses
            << " misses, " << hm.inserts << " inserts\n";
    }

    uint64_t total_count = 0, total_nanos = 0;
    for (const auto &c : dispatch_) {
        total_count += c.count;
        total_nanos += c.nanos;
    }
    out << "\nruntime dispatch: " << total_count << " hook invocations, "
        << humanNanos(total_nanos) << "\n";
    if (total_count > 0) {
        std::snprintf(line, sizeof line, "  %-12s %10s %14s %10s\n",
                      "kind", "count", "total", "avg");
        out << line;
        for (size_t k = 0; k < dispatch_.size(); ++k) {
            const auto &c = dispatch_[k];
            if (c.count == 0)
                continue;
            std::snprintf(
                line, sizeof line,
                "  %-12s %10" PRIu64 " %14s %10s\n",
                core::name(static_cast<core::HookKind>(k)), c.count,
                humanNanos(c.nanos).c_str(),
                humanNanos(c.nanos / c.count).c_str());
            out << line;
        }
    }
    for (size_t a = 0; a < analyses_.size(); ++a) {
        const auto &an = analyses_[a];
        uint64_t an_count = 0, an_nanos = 0;
        for (const auto &c : an.perKind) {
            an_count += c.count;
            an_nanos += c.nanos;
        }
        std::string label =
            an.name.empty() ? "analysis " + std::to_string(a) : an.name;
        out << "  [" << label << "] " << an_count << " hooks, "
            << humanNanos(an_nanos) << "\n";
    }

    if (interp_) {
        out << "\ninterpreter: " << interp_->instructions
            << " instructions, " << interp_->calls << " calls, "
            << interp_->memoryOps << " memory ops ("
            << interp_->memoryOpsElided << " unchecked), "
            << interp_->traps << " traps\n";
    }
    return out.str();
}

std::string
ProfileCollector::toJson(bool deterministic) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream out;
    auto ns = [&](uint64_t nanos) { return deterministic ? 0 : nanos; };

    out << "{\n";
    out << "  \"schema\": \"" << kProfileSchemaName << "\",\n";
    out << "  \"version\": " << kProfileSchemaVersion << ",\n";
    out << "  \"deterministic\": " << (deterministic ? "true" : "false")
        << ",\n";
    if (!instrumentMode_.empty()) {
        out << "  \"instrumentMode\": \"" << jsonEscape(instrumentMode_)
            << "\",\n";
    }

    if (!deterministic && !phases_.empty()) {
        out << "  \"phases\": [";
        for (size_t i = 0; i < phases_.size(); ++i) {
            const auto &p = phases_[i];
            out << (i ? "," : "") << "\n    {\"name\": \""
                << jsonEscape(p.name) << "\", \"startNanos\": "
                << p.startNanos << ", \"nanos\": " << p.nanos << "}";
        }
        out << "\n  ],\n";
    }

    if (instr_) {
        out << "  \"instrumentation\": {\n";
        out << "    \"functions\": " << instr_->functionsInstrumented
            << ",\n";
        out << "    \"hooksGenerated\": " << instr_->hooksGenerated
            << ",\n";
        out << "    \"nanos\": " << ns(instr_->wallNanos);
        if (!deterministic) {
            out << ",\n    \"workers\": [";
            for (size_t i = 0; i < instr_->workers.size(); ++i) {
                const auto &w = instr_->workers[i];
                out << (i ? "," : "") << "\n      {\"worker\": " << i
                    << ", \"functions\": " << w.functions
                    << ", \"startNanos\": " << w.startNanos
                    << ", \"nanos\": " << w.nanos << "}";
            }
            out << "\n    ],\n";
            const auto &hm = instr_->hookMap;
            out << "    \"hookMap\": {\"hits\": " << hm.hits
                << ", \"misses\": " << hm.misses
                << ", \"inserts\": " << hm.inserts << "}";
        }
        out << "\n  },\n";
    }

    uint64_t total_count = 0;
    for (const auto &c : dispatch_)
        total_count += c.count;
    out << "  \"runtime\": {\n";
    out << "    \"hookInvocations\": " << total_count << ",\n";
    out << "    \"perKind\": [";
    bool first = true;
    for (size_t k = 0; k < dispatch_.size(); ++k) {
        const auto &c = dispatch_[k];
        if (c.count == 0)
            continue;
        out << (first ? "" : ",") << "\n      {\"kind\": \""
            << core::name(static_cast<core::HookKind>(k))
            << "\", \"count\": " << c.count
            << ", \"nanos\": " << ns(c.nanos) << "}";
        first = false;
    }
    out << "\n    ]";
    if (!analyses_.empty()) {
        out << ",\n    \"perAnalysis\": [";
        for (size_t a = 0; a < analyses_.size(); ++a) {
            const auto &an = analyses_[a];
            std::string label = an.name.empty()
                                    ? "analysis " + std::to_string(a)
                                    : an.name;
            out << (a ? "," : "") << "\n      {\"analysis\": \""
                << jsonEscape(label) << "\", \"perKind\": [";
            bool f2 = true;
            for (size_t k = 0; k < an.perKind.size(); ++k) {
                const auto &c = an.perKind[k];
                if (c.count == 0)
                    continue;
                out << (f2 ? "" : ",") << "\n        {\"kind\": \""
                    << core::name(static_cast<core::HookKind>(k))
                    << "\", \"count\": " << c.count
                    << ", \"nanos\": " << ns(c.nanos) << "}";
                f2 = false;
            }
            out << "\n      ]}";
        }
        out << "\n    ]";
    }
    out << "\n  }";

    if (interp_) {
        out << ",\n  \"interp\": {\"instructions\": "
            << interp_->instructions << ", \"calls\": " << interp_->calls
            << ", \"memoryOps\": " << interp_->memoryOps
            << ", \"memoryOpsElided\": " << interp_->memoryOpsElided
            << ", \"traps\": " << interp_->traps << "}";
    }
    out << "\n}\n";
    return out.str();
}

std::string
ProfileCollector::toChromeTrace() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream out;
    bool first = true;
    auto sep = [&]() -> std::ostringstream & {
        out << (first ? "\n    " : ",\n    ");
        first = false;
        return out;
    };
    auto meta = [&](int tid, const std::string &name) {
        sep() << "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, "
                 "\"tid\": "
              << tid << ", \"args\": {\"name\": \"" << jsonEscape(name)
              << "\"}}";
    };

    out << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
    sep() << "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, "
             "\"tid\": 0, \"args\": {\"name\": \"wasabi\"}}";

    // Track 0: caller-timed phase spans (decode/instrument/...).
    meta(0, "phases");
    uint64_t instrument_start = 0;
    uint64_t execute_start = 0;
    for (const auto &p : phases_) {
        if (p.name == "instrument")
            instrument_start = p.startNanos;
        if (p.name == "execute")
            execute_start = p.startNanos;
        sep() << "{\"ph\": \"X\", \"name\": \"" << jsonEscape(p.name)
              << "\", \"cat\": \"phase\", \"pid\": 1, \"tid\": 0, "
                 "\"ts\": "
              << micros(p.startNanos) << ", \"dur\": " << micros(p.nanos)
              << "}";
    }

    // Tracks 10..: one per instrumentation worker thread. Worker spans
    // are relative to instrument() entry, so anchor them at the
    // "instrument" phase start when the caller recorded one.
    if (instr_) {
        for (size_t i = 0; i < instr_->workers.size(); ++i) {
            const auto &w = instr_->workers[i];
            int tid = static_cast<int>(10 + i);
            meta(tid, "instrument-worker-" + std::to_string(i));
            sep() << "{\"ph\": \"X\", \"name\": \"instrument\", "
                     "\"cat\": \"instrument\", \"pid\": 1, \"tid\": "
                  << tid << ", \"ts\": "
                  << micros(instrument_start + w.startNanos)
                  << ", \"dur\": " << micros(w.nanos)
                  << ", \"args\": {\"functions\": " << w.functions
                  << "}}";
        }
    }

    // Track 100 (+101.. per analysis): aggregated hook dispatch. Per-
    // dispatch events would be unbounded, so each kind becomes one
    // complete event whose duration is that kind's cumulative time,
    // laid out sequentially from the execute-phase start.
    auto hook_track = [&](int tid, const PerKind &per) {
        uint64_t cursor = execute_start;
        for (size_t k = 0; k < per.size(); ++k) {
            const auto &c = per[k];
            if (c.count == 0)
                continue;
            sep() << "{\"ph\": \"X\", \"name\": \""
                  << core::name(static_cast<core::HookKind>(k))
                  << "\", \"cat\": \"hook\", \"pid\": 1, \"tid\": "
                  << tid << ", \"ts\": " << micros(cursor)
                  << ", \"dur\": " << micros(c.nanos)
                  << ", \"args\": {\"count\": " << c.count << "}}";
            cursor += c.nanos;
        }
    };
    meta(100, "runtime-hooks");
    hook_track(100, dispatch_);
    for (size_t a = 0; a < analyses_.size(); ++a) {
        const auto &an = analyses_[a];
        std::string label =
            an.name.empty() ? "analysis " + std::to_string(a) : an.name;
        int tid = static_cast<int>(101 + a);
        meta(tid, "analysis: " + label);
        hook_track(tid, an.perKind);
    }

    out << "\n  ]\n}\n";
    return out.str();
}

namespace {

bool
failv(std::string *error, const std::string &what)
{
    if (error)
        *error = what;
    return false;
}

bool
checkU64Field(const json::Value &obj, const char *key,
              const std::string &where, std::string *error)
{
    const json::Value *v = obj.find(key);
    if (!v || !v->isNumber())
        return failv(error, where + ": missing numeric \"" +
                                std::string(key) + "\"");
    return true;
}

/** Validate a perKind array; adds each entry's count to @p sum. */
bool
checkPerKind(const json::Value &arr, const std::string &where,
             uint64_t *sum, std::string *error)
{
    if (!arr.isArray())
        return failv(error, where + ": \"perKind\" must be an array");
    for (const auto &e : arr.array) {
        if (!e.isObject())
            return failv(error, where + ": perKind entry not an object");
        const json::Value *kind = e.find("kind");
        if (!kind || !kind->isString() ||
            !core::hookKindByName(kind->str))
            return failv(error,
                         where + ": bad hook kind name in perKind");
        if (!checkU64Field(e, "count", where, error) ||
            !checkU64Field(e, "nanos", where, error))
            return false;
        if (sum)
            *sum += e.find("count")->asU64();
    }
    return true;
}

} // namespace

bool
validateProfileJson(const std::string &text, std::string *error)
{
    std::string parse_err;
    auto doc = json::parse(text, &parse_err);
    if (!doc)
        return failv(error, "not valid JSON: " + parse_err);
    if (!doc->isObject())
        return failv(error, "top level must be an object");

    const json::Value *schema = doc->find("schema");
    if (!schema || !schema->isString() ||
        schema->str != kProfileSchemaName)
        return failv(error, "missing or wrong \"schema\" (expected \"" +
                                std::string(kProfileSchemaName) + "\")");
    const json::Value *version = doc->find("version");
    if (!version || !version->isNumber() ||
        version->asU64() !=
            static_cast<uint64_t>(kProfileSchemaVersion))
        return failv(error, "missing or unsupported \"version\"");
    const json::Value *det = doc->find("deterministic");
    if (!det || !det->isBool())
        return failv(error, "missing boolean \"deterministic\"");

    // The schema is closed: readers may rely on every key they see.
    for (const auto &[key, value] : doc->object) {
        if (key != "schema" && key != "version" &&
            key != "deterministic" && key != "instrumentMode" &&
            key != "phases" && key != "instrumentation" &&
            key != "runtime" && key != "interp" && key != "bench" &&
            key != "serve")
            return failv(error, "unknown top-level key \"" + key + "\"");
        (void)value;
    }

    // Optional (additive, no version bump): how hooks reached the
    // runtime. Only the two supported modes are valid.
    if (const json::Value *mode = doc->find("instrumentMode")) {
        if (!mode->isString() ||
            (mode->str != "rewrite" && mode->str != "intrinsic"))
            return failv(error, "\"instrumentMode\" must be \"rewrite\" "
                                "or \"intrinsic\"");
    }

    if (const json::Value *phases = doc->find("phases")) {
        if (!phases->isArray())
            return failv(error, "\"phases\" must be an array");
        for (const auto &p : phases->array) {
            if (!p.isObject())
                return failv(error, "phase entry not an object");
            const json::Value *name = p.find("name");
            if (!name || !name->isString())
                return failv(error, "phase: missing string \"name\"");
            if (!checkU64Field(p, "startNanos", "phase", error) ||
                !checkU64Field(p, "nanos", "phase", error))
                return false;
        }
    }

    if (const json::Value *instr = doc->find("instrumentation")) {
        if (!instr->isObject())
            return failv(error, "\"instrumentation\" must be an object");
        if (!checkU64Field(*instr, "functions", "instrumentation",
                           error) ||
            !checkU64Field(*instr, "hooksGenerated", "instrumentation",
                           error) ||
            !checkU64Field(*instr, "nanos", "instrumentation", error))
            return false;
        if (const json::Value *workers = instr->find("workers")) {
            if (!workers->isArray())
                return failv(error, "\"workers\" must be an array");
            for (const auto &w : workers->array) {
                if (!w.isObject() ||
                    !checkU64Field(w, "worker", "worker", error) ||
                    !checkU64Field(w, "functions", "worker", error) ||
                    !checkU64Field(w, "startNanos", "worker", error) ||
                    !checkU64Field(w, "nanos", "worker", error))
                    return false;
            }
        }
        if (const json::Value *hm = instr->find("hookMap")) {
            if (!hm->isObject() ||
                !checkU64Field(*hm, "hits", "hookMap", error) ||
                !checkU64Field(*hm, "misses", "hookMap", error) ||
                !checkU64Field(*hm, "inserts", "hookMap", error))
                return false;
        }
    }

    const json::Value *runtime = doc->find("runtime");
    if (!runtime || !runtime->isObject())
        return failv(error, "missing \"runtime\" object");
    if (!checkU64Field(*runtime, "hookInvocations", "runtime", error))
        return false;
    const json::Value *per_kind = runtime->find("perKind");
    if (!per_kind)
        return failv(error, "runtime: missing \"perKind\"");
    uint64_t kind_sum = 0;
    if (!checkPerKind(*per_kind, "runtime", &kind_sum, error))
        return false;
    uint64_t invocations = runtime->find("hookInvocations")->asU64();
    if (kind_sum != invocations)
        return failv(error,
                     "runtime: perKind counts sum to " +
                         std::to_string(kind_sum) +
                         " but hookInvocations is " +
                         std::to_string(invocations));
    if (const json::Value *per_analysis = runtime->find("perAnalysis")) {
        if (!per_analysis->isArray())
            return failv(error, "\"perAnalysis\" must be an array");
        for (const auto &a : per_analysis->array) {
            if (!a.isObject())
                return failv(error, "perAnalysis entry not an object");
            const json::Value *name = a.find("analysis");
            if (!name || !name->isString())
                return failv(error,
                             "perAnalysis: missing string \"analysis\"");
            const json::Value *apk = a.find("perKind");
            if (!apk ||
                !checkPerKind(*apk, "perAnalysis", nullptr, error))
                return false;
        }
    }

    if (const json::Value *interp = doc->find("interp")) {
        if (!interp->isObject() ||
            !checkU64Field(*interp, "instructions", "interp", error) ||
            !checkU64Field(*interp, "calls", "interp", error) ||
            !checkU64Field(*interp, "memoryOps", "interp", error) ||
            !checkU64Field(*interp, "memoryOpsElided", "interp",
                           error) ||
            !checkU64Field(*interp, "traps", "interp", error))
            return false;
    }

    if (const json::Value *bench = doc->find("bench")) {
        if (!bench->isObject())
            return failv(error, "\"bench\" must be an object");
        const json::Value *name = bench->find("name");
        if (!name || !name->isString())
            return failv(error, "bench: missing string \"name\"");
    }

    // Optional (additive, no version bump): the serve daemon's
    // endpoint metrics — cache/pool/translation/quota counters plus
    // per-endpoint request totals (DESIGN.md §14).
    if (const json::Value *serve = doc->find("serve")) {
        if (!serve->isObject())
            return failv(error, "\"serve\" must be an object");
        for (const char *key :
             {"cacheHits", "cacheMisses", "poolHits", "poolMisses",
              "translations", "quotaTrips"}) {
            if (!checkU64Field(*serve, key, "serve", error))
                return false;
        }
        const json::Value *eps = serve->find("endpoints");
        if (!eps || !eps->isArray())
            return failv(error, "serve: missing \"endpoints\" array");
        for (const auto &e : eps->array) {
            if (!e.isObject())
                return failv(error,
                             "serve: endpoint entry not an object");
            const json::Value *op = e.find("op");
            if (!op || !op->isString())
                return failv(error,
                             "serve: endpoint missing string \"op\"");
            if (!checkU64Field(e, "requests", "serve endpoint",
                               error) ||
                !checkU64Field(e, "errors", "serve endpoint", error))
                return false;
        }
    }
    return true;
}

bool
validateChromeTrace(const std::string &text, std::string *error)
{
    std::string parse_err;
    auto doc = json::parse(text, &parse_err);
    if (!doc)
        return failv(error, "not valid JSON: " + parse_err);
    if (!doc->isObject())
        return failv(error, "top level must be an object");
    const json::Value *events = doc->find("traceEvents");
    if (!events || !events->isArray())
        return failv(error, "missing \"traceEvents\" array");
    for (const auto &e : events->array) {
        if (!e.isObject())
            return failv(error, "trace event not an object");
        const json::Value *ph = e.find("ph");
        if (!ph || !ph->isString() || ph->str.size() != 1)
            return failv(error, "trace event: bad \"ph\"");
        const json::Value *name = e.find("name");
        if (!name || !name->isString())
            return failv(error, "trace event: missing \"name\"");
        const json::Value *pid = e.find("pid");
        if (!pid || !pid->isNumber())
            return failv(error, "trace event: missing \"pid\"");
        if (ph->str != "M") {
            const json::Value *ts = e.find("ts");
            if (!ts || !ts->isNumber())
                return failv(error, "trace event: missing \"ts\"");
        }
    }
    return true;
}

} // namespace wasabi::obs
