/**
 * @file
 * Internal registry interface between polybench.cc and the kernel
 * emitter translation units.
 */

#ifndef WASABI_WORKLOADS_POLYBENCH_INTERNAL_H
#define WASABI_WORKLOADS_POLYBENCH_INTERNAL_H

#include "workloads/kernel_util.h"

namespace wasabi::workloads {

/** Emits the complete body of one kernel: initialization, the
 * computation loops, and finally pushes the f64 checksum. */
using KernelEmitter = void (*)(KB &);

/** Linear algebra / BLAS-style kernels (polybench_kernels_a.cc). @{ */
void emitGemm(KB &kb);
void emit2mm(KB &kb);
void emit3mm(KB &kb);
void emitAtax(KB &kb);
void emitBicg(KB &kb);
void emitMvt(KB &kb);
void emitGemver(KB &kb);
void emitGesummv(KB &kb);
void emitSymm(KB &kb);
void emitSyrk(KB &kb);
void emitSyr2k(KB &kb);
void emitTrmm(KB &kb);
/** @} */

/** Solvers and data mining (polybench_kernels_b.cc). @{ */
void emitCholesky(KB &kb);
void emitDurbin(KB &kb);
void emitGramschmidt(KB &kb);
void emitLu(KB &kb);
void emitLudcmp(KB &kb);
void emitTrisolv(KB &kb);
void emitCorrelation(KB &kb);
void emitCovariance(KB &kb);
void emitDoitgen(KB &kb);
void emitDeriche(KB &kb);
/** @} */

/** Stencils and medley (polybench_kernels_c.cc). @{ */
void emitFloydWarshall(KB &kb);
void emitNussinov(KB &kb);
void emitAdi(KB &kb);
void emitFdtd2d(KB &kb);
void emitHeat3d(KB &kb);
void emitJacobi1d(KB &kb);
void emitJacobi2d(KB &kb);
void emitSeidel2d(KB &kb);
/** @} */

} // namespace wasabi::workloads

#endif // WASABI_WORKLOADS_POLYBENCH_INTERNAL_H
