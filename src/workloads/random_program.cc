#include "workloads/random_program.h"

#include <vector>

#include "wasm/builder.h"

namespace wasabi::workloads {

using wasm::FuncType;
using wasm::FunctionBuilder;
using wasm::ModuleBuilder;
using wasm::Opcode;
using wasm::OpClass;
using wasm::Value;
using wasm::ValType;

namespace {

/** SplitMix64: small, fast, deterministic PRNG. */
class Rng {
  public:
    explicit Rng(uint64_t seed) : state_(seed) {}

    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }

    uint32_t pick(uint32_t n) { return n == 0 ? 0 : next() % n; }
    bool chance(int pct) { return pick(100) < static_cast<uint32_t>(pct); }

  private:
    uint64_t state_;
};

constexpr uint32_t kTableSize = 4;
constexpr int32_t kAddrMask = 0xFF8; // keep accesses in the first page

class Generator {
  public:
    explicit Generator(const RandomProgramOptions &opts)
        : opts_(opts), rng_(opts.seed ^ 0xC0FFEE)
    {
    }

    Workload
    run()
    {
        if (opts_.useMemory)
            mb_.memory(1, 1, "memory");
        if (opts_.useGlobals) {
            mb_.global(ValType::I32, true, Value::makeI32(11));
            mb_.global(ValType::I64, true, Value::makeI64(22));
            mb_.global(ValType::F32, true, Value::makeF32(1.5f));
            mb_.global(ValType::F64, true, Value::makeF64(2.5));
        }

        // A few homogeneous [i32]->[i32] functions to populate the
        // indirect-call table.
        FuncType table_type({ValType::I32}, {ValType::I32});
        std::vector<uint32_t> table_funcs;
        if (opts_.useTable) {
            allowIndirect_ = false;
            for (uint32_t i = 0; i < kTableSize; ++i) {
                uint32_t idx = genFunction(table_type, "");
                table_funcs.push_back(idx);
            }
            allowIndirect_ = true;
            mb_.table(kTableSize, kTableSize);
            mb_.elem(0, table_funcs);
        }

        for (uint32_t i = 0; i < opts_.numFunctions; ++i)
            genFunction(randomSignature(), "");

        genMain();

        Workload w;
        w.name = "random-" + std::to_string(opts_.seed);
        w.module = mb_.build();
        w.entry = "main";
        w.args = {Value::makeI32(static_cast<uint32_t>(opts_.seed * 31))};
        return w;
    }

  private:
    ValType
    randType()
    {
        switch (rng_.pick(opts_.useI64 ? 4 : 3)) {
          case 0: return ValType::I32;
          case 1: return ValType::F64;
          case 2: return ValType::F32;
          default: return ValType::I64;
        }
    }

    FuncType
    randomSignature()
    {
        std::vector<ValType> params;
        uint32_t n = rng_.pick(opts_.maxParams + 1);
        for (uint32_t i = 0; i < n; ++i)
            params.push_back(randType());
        return FuncType(std::move(params), {randType()});
    }

    // ----- expressions -------------------------------------------------

    void
    constExpr(ValType t)
    {
        switch (t) {
          case ValType::I32:
            f_->i32Const(static_cast<int32_t>(rng_.next()));
            break;
          case ValType::I64:
            f_->i64Const(static_cast<int64_t>(rng_.next()));
            break;
          case ValType::F32:
            f_->f32Const(
                static_cast<float>(static_cast<int32_t>(rng_.pick(2000)) -
                                   1000) /
                8.0f);
            break;
          case ValType::F64:
            f_->f64Const(
                static_cast<double>(static_cast<int32_t>(rng_.pick(2000)) -
                                    1000) /
                8.0);
            break;
        }
    }

    /** Index of some local with type @p t, or nullopt. */
    std::optional<uint32_t>
    someLocal(ValType t)
    {
        std::vector<uint32_t> cands;
        for (uint32_t i = 0; i < locals_.size(); ++i) {
            if (locals_[i] == t)
                cands.push_back(i);
        }
        if (cands.empty())
            return std::nullopt;
        return cands[rng_.pick(static_cast<uint32_t>(cands.size()))];
    }

    void
    leafExpr(ValType t)
    {
        if (auto l = someLocal(t); l && rng_.chance(60)) {
            f_->localGet(*l);
            return;
        }
        if (opts_.useGlobals && rng_.chance(20)) {
            f_->globalGet(static_cast<uint32_t>(t));
            return;
        }
        constExpr(t);
    }

    /** Push a masked in-bounds address. */
    void
    addrExpr(int depth)
    {
        expr(ValType::I32, depth - 1);
        f_->i32Const(kAddrMask);
        f_->op(Opcode::I32And);
    }

    /** A non-trapping unary opcode producing @p t, if any. */
    std::optional<Opcode>
    randUnary(ValType t)
    {
        std::vector<Opcode> cands;
        for (Opcode op : wasm::allOpcodes()) {
            const wasm::OpInfo &info = wasm::opInfo(op);
            if (info.cls != OpClass::Unary || info.out != t)
                continue;
            // Exclude trapping float-to-int truncations.
            switch (op) {
              case Opcode::I32TruncF32S:
              case Opcode::I32TruncF32U:
              case Opcode::I32TruncF64S:
              case Opcode::I32TruncF64U:
              case Opcode::I64TruncF32S:
              case Opcode::I64TruncF32U:
              case Opcode::I64TruncF64S:
              case Opcode::I64TruncF64U:
                continue;
              default:
                break;
            }
            if (!opts_.useI64 &&
                (info.in[0] == ValType::I64 || info.out == ValType::I64))
                continue;
            cands.push_back(op);
        }
        if (cands.empty())
            return std::nullopt;
        return cands[rng_.pick(static_cast<uint32_t>(cands.size()))];
    }

    /** A binary opcode producing @p t; signed div/rem excluded. */
    std::optional<Opcode>
    randBinary(ValType t)
    {
        std::vector<Opcode> cands;
        for (Opcode op : wasm::allOpcodes()) {
            const wasm::OpInfo &info = wasm::opInfo(op);
            if (info.cls != OpClass::Binary || info.out != t)
                continue;
            if (op == Opcode::I32DivS || op == Opcode::I32RemS ||
                op == Opcode::I64DivS || op == Opcode::I64RemS) {
                continue; // INT_MIN / -1 still traps even with |1
            }
            if (!opts_.useI64 &&
                (info.in[0] == ValType::I64 || info.out == ValType::I64))
                continue;
            cands.push_back(op);
        }
        if (cands.empty())
            return std::nullopt;
        return cands[rng_.pick(static_cast<uint32_t>(cands.size()))];
    }

    Opcode
    loadOpFor(ValType t)
    {
        switch (t) {
          case ValType::I32: return Opcode::I32Load;
          case ValType::I64: return Opcode::I64Load;
          case ValType::F32: return Opcode::F32Load;
          case ValType::F64: return Opcode::F64Load;
        }
        return Opcode::I32Load;
    }

    Opcode
    storeOpFor(ValType t)
    {
        switch (t) {
          case ValType::I32: return Opcode::I32Store;
          case ValType::I64: return Opcode::I64Store;
          case ValType::F32: return Opcode::F32Store;
          case ValType::F64: return Opcode::F64Store;
        }
        return Opcode::I32Store;
    }

    void
    expr(ValType t, int depth)
    {
        if (depth <= 0) {
            leafExpr(t);
            return;
        }
        switch (rng_.pick(10)) {
          case 0:
            leafExpr(t);
            break;
          case 1: { // unary
            if (auto op = randUnary(t)) {
                expr(wasm::opInfo(*op).in[0], depth - 1);
                f_->op(*op);
            } else {
                leafExpr(t);
            }
            break;
          }
          case 2:
          case 3: { // binary (with division guards)
            if (auto op = randBinary(t)) {
                ValType in = wasm::opInfo(*op).in[0];
                expr(in, depth - 1);
                expr(in, depth - 1);
                if (*op == Opcode::I32DivU || *op == Opcode::I32RemU) {
                    f_->i32Const(1);
                    f_->op(Opcode::I32Or);
                } else if (*op == Opcode::I64DivU ||
                           *op == Opcode::I64RemU) {
                    f_->i64Const(1);
                    f_->op(Opcode::I64Or);
                }
                f_->op(*op);
            } else {
                leafExpr(t);
            }
            break;
          }
          case 4: { // load
            if (opts_.useMemory) {
                addrExpr(depth);
                f_->load(loadOpFor(t));
            } else {
                leafExpr(t);
            }
            break;
          }
          case 5: { // select
            expr(t, depth - 1);
            expr(t, depth - 1);
            expr(ValType::I32, depth - 1);
            f_->select();
            break;
          }
          case 6: { // if/else expression
            expr(ValType::I32, depth - 1);
            f_->if_(t);
            expr(t, depth - 1);
            f_->else_();
            expr(t, depth - 1);
            f_->end();
            break;
          }
          case 7: { // direct call to a callable function returning t
            // Calls never appear inside loop bodies and are budgeted
            // per function, bounding the dynamic call tree.
            if (inLoop_ || callBudget_ == 0) {
                leafExpr(t);
                break;
            }
            std::vector<uint32_t> cands;
            for (uint32_t i = 0; i < curFunc_; ++i) {
                const FuncType &ft = funcTypes_[i];
                if (callable(i) && ft.results.size() == 1 &&
                    ft.results[0] == t) {
                    cands.push_back(i);
                }
            }
            if (cands.empty()) {
                leafExpr(t);
                break;
            }
            --callBudget_;
            uint32_t callee =
                cands[rng_.pick(static_cast<uint32_t>(cands.size()))];
            for (ValType p : funcTypes_[callee].params)
                expr(p, depth - 1);
            f_->call(callee);
            break;
          }
          case 8: { // indirect call (only for i32 results)
            // Functions that are themselves table entries must not
            // call indirectly, or the call graph could recurse
            // unboundedly through the table.
            if (!opts_.useTable || !allowIndirect_ || inLoop_ ||
                callBudget_ == 0 || t != ValType::I32) {
                leafExpr(t);
                break;
            }
            --callBudget_;
            emitIndirectCall(depth);
            break;
          }
          default: { // block expression
            f_->block(t);
            expr(t, depth - 1);
            if (rng_.chance(30)) {
                // Optionally turn it into an early exit carrying the
                // value.
                f_->br(0);
            }
            f_->end();
            break;
          }
        }
    }

    /**
     * Emit `call_indirect` through the homogeneous [i32]->[i32] table
     * slice, leaving the i32 result on the stack. The index is either
     * a masked dynamic expression or — with constIndexIndirectPct —
     * a plain in-range constant, the shape the interprocedural
     * refinement resolves to a unique target. Both knob checks
     * short-circuit before consuming randomness so the legacy streams
     * (knobs at 0) are byte-exact.
     */
    void
    emitIndirectCall(int depth)
    {
        expr(ValType::I32, depth - 1); // argument
        if (opts_.constIndexIndirectPct > 0 &&
            rng_.chance(static_cast<int>(opts_.constIndexIndirectPct))) {
            f_->i32Const(static_cast<int32_t>(rng_.pick(kTableSize)));
        } else {
            expr(ValType::I32, depth - 1); // index
            f_->i32Const(kTableSize - 1);
            f_->op(Opcode::I32And);
        }
        f_->callIndirect(
            mb_.type(FuncType({ValType::I32}, {ValType::I32})));
    }

    // ----- statements ---------------------------------------------------

    void
    stmt(int depth)
    {
        if (opts_.indirectCallPct > 0 && opts_.useTable &&
            allowIndirect_ && !inLoop_ && callBudget_ > 0 &&
            rng_.chance(static_cast<int>(opts_.indirectCallPct))) {
            --callBudget_;
            emitIndirectCall(depth);
            f_->drop();
            return;
        }
        switch (rng_.pick(10)) {
          case 0: { // local.set
            ValType t = randType();
            if (auto l = someLocal(t)) {
                expr(t, depth);
                f_->localSet(*l);
            } else {
                f_->nop();
            }
            break;
          }
          case 1: { // store
            if (!opts_.useMemory) {
                f_->nop();
                break;
            }
            ValType t = randType();
            addrExpr(depth);
            expr(t, depth - 1);
            f_->store(storeOpFor(t));
            break;
          }
          case 2: { // if/else statement
            expr(ValType::I32, depth - 1);
            f_->if_();
            stmt(depth - 1);
            if (rng_.chance(60)) {
                f_->else_();
                stmt(depth - 1);
            }
            f_->end();
            break;
          }
          case 3: { // bounded loop
            // The counter local is deliberately NOT registered in
            // locals_: nested statements must never clobber it, or the
            // loop bound would no longer be guaranteed.
            uint32_t var = f_->addLocal(ValType::I32);
            uint32_t iters = 1 + rng_.pick(4);
            bool was_in_loop = inLoop_;
            inLoop_ = true;
            f_->forLoop(var, 0, static_cast<int32_t>(iters), [&] {
                stmt(depth - 1);
            });
            inLoop_ = was_in_loop;
            break;
          }
          case 4: { // block with conditional early exit
            f_->block();
            stmt(depth - 1);
            expr(ValType::I32, depth - 1);
            f_->brIf(0);
            stmt(depth - 1);
            f_->end();
            break;
          }
          case 5: { // br_table over three nested blocks
            f_->block();
            f_->block();
            f_->block();
            expr(ValType::I32, depth - 1);
            f_->brTable({0, 1}, 2);
            f_->end();
            stmt(depth - 1);
            f_->end();
            stmt(depth - 1);
            f_->end();
            break;
          }
          case 6: { // drop an arbitrary value
            ValType t = randType();
            expr(t, depth);
            f_->drop();
            break;
          }
          case 7: { // global.set
            if (opts_.useGlobals) {
                ValType t = randType();
                expr(t, depth - 1);
                f_->globalSet(static_cast<uint32_t>(t));
            } else {
                f_->nop();
            }
            break;
          }
          case 8: { // memory.size / memory.grow (by 0, to stay at 1pg)
            if (opts_.useMemory) {
                if (rng_.chance(50)) {
                    f_->op(Opcode::MemorySize);
                } else {
                    f_->i32Const(0);
                    f_->op(Opcode::MemoryGrow);
                }
                f_->drop();
            } else {
                f_->nop();
            }
            break;
          }
          default:
            f_->nop();
            break;
        }
    }

    // ----- functions ------------------------------------------------------

    uint32_t
    genFunction(const FuncType &type, const std::string &export_name)
    {
        FunctionBuilder fb = mb_.startFunction(type, export_name);
        f_ = &fb;
        curFunc_ = static_cast<uint32_t>(funcTypes_.size());
        curLevel_ = levelOf(curFunc_);
        callBudget_ = 6;
        inLoop_ = false;
        locals_ = type.params;
        // A few extra locals of each used type.
        for (int i = 0; i < 3; ++i) {
            ValType t = randType();
            fb.addLocal(t);
            locals_.push_back(t);
        }
        for (uint32_t s = 0; s < opts_.stmtsPerFunction; ++s)
            stmt(static_cast<int>(opts_.exprDepth));
        expr(type.results[0], static_cast<int>(opts_.exprDepth));
        fb.finish();
        funcTypes_.push_back(type);
        f_ = nullptr;
        return curFunc_;
    }

    void
    genMain()
    {
        FuncType main_type({ValType::I32}, {ValType::I64});
        FunctionBuilder fb = mb_.startFunction(main_type, "main");
        f_ = &fb;
        uint32_t acc = fb.addLocal(ValType::I64);
        // Fold the parameter in.
        fb.localGet(0);
        fb.op(Opcode::I64ExtendI32U);
        fb.localSet(acc);
        // Call every function with deterministic arguments and fold
        // each result (bit-exactly) into the accumulator.
        for (uint32_t i = 0; i < funcTypes_.size(); ++i) {
            const FuncType &ft = funcTypes_[i];
            for (size_t p = 0; p < ft.params.size(); ++p) {
                switch (ft.params[p]) {
                  case ValType::I32:
                    fb.i32Const(static_cast<int32_t>(i * 17 + p));
                    break;
                  case ValType::I64:
                    fb.i64Const(static_cast<int64_t>(i * 31 + p));
                    break;
                  case ValType::F32:
                    fb.f32Const(static_cast<float>(i) + 0.25f);
                    break;
                  case ValType::F64:
                    fb.f64Const(static_cast<double>(i) + 0.5);
                    break;
                }
            }
            fb.call(i);
            switch (ft.results[0]) {
              case ValType::I32:
                fb.op(Opcode::I64ExtendI32U);
                break;
              case ValType::I64:
                break;
              case ValType::F32:
                fb.op(Opcode::I32ReinterpretF32);
                fb.op(Opcode::I64ExtendI32U);
                break;
              case ValType::F64:
                fb.op(Opcode::I64ReinterpretF64);
                break;
            }
            fb.localGet(acc);
            fb.op(Opcode::I64Add);
            fb.i64Const(0x9E3779B97F4A7C15ll);
            fb.op(Opcode::I64Mul);
            fb.localSet(acc);
        }
        // Fold a memory checksum.
        if (opts_.useMemory) {
            uint32_t i = fb.addLocal(ValType::I32);
            fb.forLoop(i, 0, 512, [&] {
                fb.localGet(acc);
                fb.localGet(i);
                fb.i32Const(8);
                fb.op(Opcode::I32Mul);
                fb.i64Load();
                fb.op(Opcode::I64Add);
                fb.localSet(acc);
            });
        }
        fb.localGet(acc);
        fb.finish();
        f_ = nullptr;
    }

    /**
     * Call-depth discipline: every function gets a level; calls only
     * target functions exactly one level below the caller. This keeps
     * the dynamic call tree polynomial — without it, an average
     * out-degree above one makes total work exponential in the number
     * of functions (a ~400-function module would never finish).
     */
    static constexpr uint32_t kCallLevels = 4;

    uint32_t
    levelOf(uint32_t func) const
    {
        return func % kCallLevels;
    }

    /** May the function currently being generated call @p callee? */
    bool
    callable(uint32_t callee) const
    {
        uint32_t my_level = curLevel_;
        return my_level > 0 && levelOf(callee) == my_level - 1;
    }

    RandomProgramOptions opts_;
    Rng rng_;
    ModuleBuilder mb_;
    std::vector<FuncType> funcTypes_;
    uint32_t curLevel_ = 0;
    FunctionBuilder *f_ = nullptr;
    std::vector<ValType> locals_;
    uint32_t curFunc_ = 0;
    bool allowIndirect_ = true;
    bool inLoop_ = false;
    uint32_t callBudget_ = 6;
};

} // namespace

Workload
randomProgram(const RandomProgramOptions &opts)
{
    return Generator(opts).run();
}

} // namespace wasabi::workloads
