/**
 * @file
 * PolyBench kernel emitters, part A: linear-algebra (BLAS-style)
 * kernels. Loop structures follow PolyBench/C 4.2; scalar parameters
 * alpha/beta are fixed constants as in the PolyBench defaults.
 */

#include "workloads/polybench_internal.h"

namespace wasabi::workloads {

using wasm::Opcode;

namespace {
constexpr double kAlpha = 1.5;
constexpr double kBeta = 1.2;
} // namespace

void
emitGemm(KB &kb)
{
    auto &f = kb.f;
    uint32_t i = kb.ilocal(), j = kb.ilocal(), k = kb.ilocal();
    uint32_t acc = kb.flocal();
    uint32_t A = kb.arr2(), B = kb.arr2(), C = kb.arr2();
    kb.init2(A, i, j, 1, 1, 1);
    kb.init2(B, i, j, 1, 2, 2);
    kb.init2(C, i, j, 2, 1, 3);
    // C = alpha*A*B + beta*C
    kb.loop(i, 0, kb.n, [&] {
        kb.loop(j, 0, kb.n, [&] {
            kb.addr2(C, i, j);
            kb.load2(C, i, j);
            kb.c(kBeta);
            f.op(Opcode::F64Mul);
            kb.store();
            kb.loop(k, 0, kb.n, [&] {
                kb.addr2(C, i, j);
                kb.load2(C, i, j);
                kb.c(kAlpha);
                kb.load2(A, i, k);
                f.op(Opcode::F64Mul);
                kb.load2(B, k, j);
                f.op(Opcode::F64Mul);
                f.op(Opcode::F64Add);
                kb.store();
            });
        });
    });
    kb.sum2(C, i, j, acc);
    f.localGet(acc);
}

void
emit2mm(KB &kb)
{
    auto &f = kb.f;
    uint32_t i = kb.ilocal(), j = kb.ilocal(), k = kb.ilocal();
    uint32_t acc = kb.flocal();
    uint32_t A = kb.arr2(), B = kb.arr2(), C = kb.arr2(), D = kb.arr2();
    uint32_t tmp = kb.arr2();
    kb.init2(A, i, j, 1, 1, 1);
    kb.init2(B, i, j, 1, 3, 2);
    kb.init2(C, i, j, 3, 1, 1);
    kb.init2(D, i, j, 2, 2, 2);
    // tmp = alpha * A * B
    kb.loop(i, 0, kb.n, [&] {
        kb.loop(j, 0, kb.n, [&] {
            kb.addr2(tmp, i, j);
            kb.c(0.0);
            kb.store();
            kb.loop(k, 0, kb.n, [&] {
                kb.addr2(tmp, i, j);
                kb.load2(tmp, i, j);
                kb.c(kAlpha);
                kb.load2(A, i, k);
                f.op(Opcode::F64Mul);
                kb.load2(B, k, j);
                f.op(Opcode::F64Mul);
                f.op(Opcode::F64Add);
                kb.store();
            });
        });
    });
    // D = tmp * C + beta * D
    kb.loop(i, 0, kb.n, [&] {
        kb.loop(j, 0, kb.n, [&] {
            kb.addr2(D, i, j);
            kb.load2(D, i, j);
            kb.c(kBeta);
            f.op(Opcode::F64Mul);
            kb.store();
            kb.loop(k, 0, kb.n, [&] {
                kb.addr2(D, i, j);
                kb.load2(D, i, j);
                kb.load2(tmp, i, k);
                kb.load2(C, k, j);
                f.op(Opcode::F64Mul);
                f.op(Opcode::F64Add);
                kb.store();
            });
        });
    });
    kb.sum2(D, i, j, acc);
    f.localGet(acc);
}

void
emit3mm(KB &kb)
{
    auto &f = kb.f;
    uint32_t i = kb.ilocal(), j = kb.ilocal(), k = kb.ilocal();
    uint32_t acc = kb.flocal();
    uint32_t A = kb.arr2(), B = kb.arr2(), C = kb.arr2(), D = kb.arr2();
    uint32_t E = kb.arr2(), F = kb.arr2(), G = kb.arr2();
    kb.init2(A, i, j, 1, 1, 1);
    kb.init2(B, i, j, 1, 2, 2);
    kb.init2(C, i, j, 3, 1, 3);
    kb.init2(D, i, j, 2, 3, 4);
    auto matmul = [&](uint32_t dst, uint32_t lhs, uint32_t rhs) {
        kb.loop(i, 0, kb.n, [&] {
            kb.loop(j, 0, kb.n, [&] {
                kb.addr2(dst, i, j);
                kb.c(0.0);
                kb.store();
                kb.loop(k, 0, kb.n, [&] {
                    kb.addr2(dst, i, j);
                    kb.load2(dst, i, j);
                    kb.load2(lhs, i, k);
                    kb.load2(rhs, k, j);
                    f.op(Opcode::F64Mul);
                    f.op(Opcode::F64Add);
                    kb.store();
                });
            });
        });
    };
    matmul(E, A, B);
    matmul(F, C, D);
    matmul(G, E, F);
    kb.sum2(G, i, j, acc);
    f.localGet(acc);
}

void
emitAtax(KB &kb)
{
    auto &f = kb.f;
    uint32_t i = kb.ilocal(), j = kb.ilocal();
    uint32_t acc = kb.flocal();
    uint32_t A = kb.arr2(), x = kb.arr1(), y = kb.arr1(), tmp = kb.arr1();
    kb.init2(A, i, j, 1, 1, 1);
    kb.init1(x, i, 1, 1);
    kb.loop(i, 0, kb.n, [&] {
        kb.addr1(y, i);
        kb.c(0.0);
        kb.store();
    });
    kb.loop(i, 0, kb.n, [&] {
        kb.addr1(tmp, i);
        kb.c(0.0);
        kb.store();
        kb.loop(j, 0, kb.n, [&] {
            kb.addr1(tmp, i);
            kb.load1(tmp, i);
            kb.load2(A, i, j);
            kb.load1(x, j);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Add);
            kb.store();
        });
        kb.loop(j, 0, kb.n, [&] {
            kb.addr1(y, j);
            kb.load1(y, j);
            kb.load2(A, i, j);
            kb.load1(tmp, i);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Add);
            kb.store();
        });
    });
    kb.sum1(y, i, acc);
    f.localGet(acc);
}

void
emitBicg(KB &kb)
{
    auto &f = kb.f;
    uint32_t i = kb.ilocal(), j = kb.ilocal();
    uint32_t acc = kb.flocal();
    uint32_t A = kb.arr2(), s = kb.arr1(), q = kb.arr1();
    uint32_t p = kb.arr1(), r = kb.arr1();
    kb.init2(A, i, j, 1, 1, 1);
    kb.init1(p, i, 1, 1);
    kb.init1(r, i, 2, 1);
    kb.loop(j, 0, kb.n, [&] {
        kb.addr1(s, j);
        kb.c(0.0);
        kb.store();
    });
    kb.loop(i, 0, kb.n, [&] {
        kb.addr1(q, i);
        kb.c(0.0);
        kb.store();
        kb.loop(j, 0, kb.n, [&] {
            kb.addr1(s, j);
            kb.load1(s, j);
            kb.load1(r, i);
            kb.load2(A, i, j);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Add);
            kb.store();
            kb.addr1(q, i);
            kb.load1(q, i);
            kb.load2(A, i, j);
            kb.load1(p, j);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Add);
            kb.store();
        });
    });
    kb.sum1(s, i, acc);
    kb.sum1(q, i, acc);
    f.localGet(acc);
}

void
emitMvt(KB &kb)
{
    auto &f = kb.f;
    uint32_t i = kb.ilocal(), j = kb.ilocal();
    uint32_t acc = kb.flocal();
    uint32_t A = kb.arr2(), x1 = kb.arr1(), x2 = kb.arr1();
    uint32_t y1 = kb.arr1(), y2 = kb.arr1();
    kb.init2(A, i, j, 1, 1, 1);
    kb.init1(x1, i, 1, 1);
    kb.init1(x2, i, 2, 2);
    kb.init1(y1, i, 3, 1);
    kb.init1(y2, i, 4, 2);
    kb.loop(i, 0, kb.n, [&] {
        kb.loop(j, 0, kb.n, [&] {
            kb.addr1(x1, i);
            kb.load1(x1, i);
            kb.load2(A, i, j);
            kb.load1(y1, j);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Add);
            kb.store();
        });
    });
    kb.loop(i, 0, kb.n, [&] {
        kb.loop(j, 0, kb.n, [&] {
            kb.addr1(x2, i);
            kb.load1(x2, i);
            kb.load2(A, j, i);
            kb.load1(y2, j);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Add);
            kb.store();
        });
    });
    kb.sum1(x1, i, acc);
    kb.sum1(x2, i, acc);
    f.localGet(acc);
}

void
emitGemver(KB &kb)
{
    auto &f = kb.f;
    uint32_t i = kb.ilocal(), j = kb.ilocal();
    uint32_t acc = kb.flocal();
    uint32_t A = kb.arr2();
    uint32_t u1 = kb.arr1(), v1 = kb.arr1(), u2 = kb.arr1(),
             v2 = kb.arr1();
    uint32_t w = kb.arr1(), x = kb.arr1(), y = kb.arr1(), z = kb.arr1();
    kb.init2(A, i, j, 1, 1, 1);
    kb.init1(u1, i, 1, 1);
    kb.init1(v1, i, 2, 1);
    kb.init1(u2, i, 3, 2);
    kb.init1(v2, i, 4, 3);
    kb.init1(y, i, 5, 1);
    kb.init1(z, i, 6, 2);
    kb.loop(i, 0, kb.n, [&] {
        kb.addr1(w, i);
        kb.c(0.0);
        kb.store();
        kb.addr1(x, i);
        kb.c(0.0);
        kb.store();
    });
    // A += u1 v1^T + u2 v2^T
    kb.loop(i, 0, kb.n, [&] {
        kb.loop(j, 0, kb.n, [&] {
            kb.addr2(A, i, j);
            kb.load2(A, i, j);
            kb.load1(u1, i);
            kb.load1(v1, j);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Add);
            kb.load1(u2, i);
            kb.load1(v2, j);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Add);
            kb.store();
        });
    });
    // x = beta * A^T y + z
    kb.loop(i, 0, kb.n, [&] {
        kb.loop(j, 0, kb.n, [&] {
            kb.addr1(x, i);
            kb.load1(x, i);
            kb.c(kBeta);
            kb.load2(A, j, i);
            f.op(Opcode::F64Mul);
            kb.load1(y, j);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Add);
            kb.store();
        });
        kb.addr1(x, i);
        kb.load1(x, i);
        kb.load1(z, i);
        f.op(Opcode::F64Add);
        kb.store();
    });
    // w = alpha * A x
    kb.loop(i, 0, kb.n, [&] {
        kb.loop(j, 0, kb.n, [&] {
            kb.addr1(w, i);
            kb.load1(w, i);
            kb.c(kAlpha);
            kb.load2(A, i, j);
            f.op(Opcode::F64Mul);
            kb.load1(x, j);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Add);
            kb.store();
        });
    });
    kb.sum1(w, i, acc);
    f.localGet(acc);
}

void
emitGesummv(KB &kb)
{
    auto &f = kb.f;
    uint32_t i = kb.ilocal(), j = kb.ilocal();
    uint32_t acc = kb.flocal();
    uint32_t A = kb.arr2(), B = kb.arr2();
    uint32_t x = kb.arr1(), y = kb.arr1(), tmp = kb.arr1();
    kb.init2(A, i, j, 1, 1, 1);
    kb.init2(B, i, j, 2, 1, 2);
    kb.init1(x, i, 1, 1);
    kb.loop(i, 0, kb.n, [&] {
        kb.addr1(tmp, i);
        kb.c(0.0);
        kb.store();
        kb.addr1(y, i);
        kb.c(0.0);
        kb.store();
        kb.loop(j, 0, kb.n, [&] {
            kb.addr1(tmp, i);
            kb.load1(tmp, i);
            kb.load2(A, i, j);
            kb.load1(x, j);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Add);
            kb.store();
            kb.addr1(y, i);
            kb.load1(y, i);
            kb.load2(B, i, j);
            kb.load1(x, j);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Add);
            kb.store();
        });
        kb.addr1(y, i);
        kb.c(kAlpha);
        kb.load1(tmp, i);
        f.op(Opcode::F64Mul);
        kb.c(kBeta);
        kb.load1(y, i);
        f.op(Opcode::F64Mul);
        f.op(Opcode::F64Add);
        kb.store();
    });
    kb.sum1(y, i, acc);
    f.localGet(acc);
}

void
emitSymm(KB &kb)
{
    auto &f = kb.f;
    uint32_t i = kb.ilocal(), j = kb.ilocal(), k = kb.ilocal();
    uint32_t acc = kb.flocal(), temp2 = kb.flocal();
    uint32_t A = kb.arr2(), B = kb.arr2(), C = kb.arr2();
    kb.init2(A, i, j, 1, 1, 1);
    kb.init2(B, i, j, 1, 2, 2);
    kb.init2(C, i, j, 2, 1, 3);
    kb.loop(i, 0, kb.n, [&] {
        kb.loop(j, 0, kb.n, [&] {
            f.f64Const(0.0);
            f.localSet(temp2);
            kb.loopTo(k, i, [&] {
                kb.addr2(C, k, j);
                kb.load2(C, k, j);
                kb.c(kAlpha);
                kb.load2(B, i, j);
                f.op(Opcode::F64Mul);
                kb.load2(A, i, k);
                f.op(Opcode::F64Mul);
                f.op(Opcode::F64Add);
                kb.store();
                f.localGet(temp2);
                kb.load2(B, k, j);
                kb.load2(A, i, k);
                f.op(Opcode::F64Mul);
                f.op(Opcode::F64Add);
                f.localSet(temp2);
            });
            kb.addr2(C, i, j);
            kb.c(kBeta);
            kb.load2(C, i, j);
            f.op(Opcode::F64Mul);
            kb.c(kAlpha);
            kb.load2(B, i, j);
            f.op(Opcode::F64Mul);
            kb.load2(A, i, i);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Add);
            kb.c(kAlpha);
            f.localGet(temp2);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Add);
            kb.store();
        });
    });
    kb.sum2(C, i, j, acc);
    f.localGet(acc);
}

void
emitSyrk(KB &kb)
{
    auto &f = kb.f;
    uint32_t i = kb.ilocal(), j = kb.ilocal(), k = kb.ilocal();
    uint32_t acc = kb.flocal();
    uint32_t A = kb.arr2(), C = kb.arr2();
    kb.init2(A, i, j, 1, 1, 1);
    kb.init2(C, i, j, 2, 1, 2);
    auto upto_i_incl = [&](uint32_t var, const std::function<void()> &body) {
        kb.loopDyn(
            var, [&] { f.i32Const(0); },
            [&] {
                f.localGet(i);
                f.i32Const(1);
                f.op(Opcode::I32Add);
            },
            body);
    };
    kb.loop(i, 0, kb.n, [&] {
        upto_i_incl(j, [&] {
            kb.addr2(C, i, j);
            kb.load2(C, i, j);
            kb.c(kBeta);
            f.op(Opcode::F64Mul);
            kb.store();
        });
        kb.loop(k, 0, kb.n, [&] {
            upto_i_incl(j, [&] {
                kb.addr2(C, i, j);
                kb.load2(C, i, j);
                kb.c(kAlpha);
                kb.load2(A, i, k);
                f.op(Opcode::F64Mul);
                kb.load2(A, j, k);
                f.op(Opcode::F64Mul);
                f.op(Opcode::F64Add);
                kb.store();
            });
        });
    });
    kb.sum2(C, i, j, acc);
    f.localGet(acc);
}

void
emitSyr2k(KB &kb)
{
    auto &f = kb.f;
    uint32_t i = kb.ilocal(), j = kb.ilocal(), k = kb.ilocal();
    uint32_t acc = kb.flocal();
    uint32_t A = kb.arr2(), B = kb.arr2(), C = kb.arr2();
    kb.init2(A, i, j, 1, 1, 1);
    kb.init2(B, i, j, 1, 2, 2);
    kb.init2(C, i, j, 2, 1, 3);
    auto upto_i_incl = [&](uint32_t var, const std::function<void()> &body) {
        kb.loopDyn(
            var, [&] { f.i32Const(0); },
            [&] {
                f.localGet(i);
                f.i32Const(1);
                f.op(Opcode::I32Add);
            },
            body);
    };
    kb.loop(i, 0, kb.n, [&] {
        upto_i_incl(j, [&] {
            kb.addr2(C, i, j);
            kb.load2(C, i, j);
            kb.c(kBeta);
            f.op(Opcode::F64Mul);
            kb.store();
        });
        kb.loop(k, 0, kb.n, [&] {
            upto_i_incl(j, [&] {
                kb.addr2(C, i, j);
                kb.load2(C, i, j);
                kb.load2(A, j, k);
                kb.c(kAlpha);
                f.op(Opcode::F64Mul);
                kb.load2(B, i, k);
                f.op(Opcode::F64Mul);
                f.op(Opcode::F64Add);
                kb.load2(B, j, k);
                kb.c(kAlpha);
                f.op(Opcode::F64Mul);
                kb.load2(A, i, k);
                f.op(Opcode::F64Mul);
                f.op(Opcode::F64Add);
                kb.store();
            });
        });
    });
    kb.sum2(C, i, j, acc);
    f.localGet(acc);
}

void
emitTrmm(KB &kb)
{
    auto &f = kb.f;
    uint32_t i = kb.ilocal(), j = kb.ilocal(), k = kb.ilocal();
    uint32_t acc = kb.flocal();
    uint32_t A = kb.arr2(), B = kb.arr2();
    kb.init2(A, i, j, 1, 1, 1);
    kb.init2(B, i, j, 1, 2, 2);
    kb.loop(i, 0, kb.n, [&] {
        kb.loop(j, 0, kb.n, [&] {
            // for k = i+1 .. n
            kb.loopDyn(
                k,
                [&] {
                    f.localGet(i);
                    f.i32Const(1);
                    f.op(Opcode::I32Add);
                },
                [&] { f.i32Const(kb.n); },
                [&] {
                    kb.addr2(B, i, j);
                    kb.load2(B, i, j);
                    kb.load2(A, k, i);
                    kb.load2(B, k, j);
                    f.op(Opcode::F64Mul);
                    f.op(Opcode::F64Add);
                    kb.store();
                });
            kb.addr2(B, i, j);
            kb.c(kAlpha);
            kb.load2(B, i, j);
            f.op(Opcode::F64Mul);
            kb.store();
        });
    });
    kb.sum2(B, i, j, acc);
    f.localGet(acc);
}

} // namespace wasabi::workloads
