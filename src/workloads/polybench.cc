#include "workloads/polybench.h"

#include <stdexcept>

#include "workloads/polybench_internal.h"

namespace wasabi::workloads {

namespace {

struct KernelEntry {
    const char *name;
    KernelEmitter emit;
};

const KernelEntry kKernels[] = {
    {"correlation", emitCorrelation},
    {"covariance", emitCovariance},
    {"gemm", emitGemm},
    {"gemver", emitGemver},
    {"gesummv", emitGesummv},
    {"symm", emitSymm},
    {"syr2k", emitSyr2k},
    {"syrk", emitSyrk},
    {"trmm", emitTrmm},
    {"2mm", emit2mm},
    {"3mm", emit3mm},
    {"atax", emitAtax},
    {"bicg", emitBicg},
    {"doitgen", emitDoitgen},
    {"mvt", emitMvt},
    {"cholesky", emitCholesky},
    {"durbin", emitDurbin},
    {"gramschmidt", emitGramschmidt},
    {"lu", emitLu},
    {"ludcmp", emitLudcmp},
    {"trisolv", emitTrisolv},
    {"deriche", emitDeriche},
    {"floyd-warshall", emitFloydWarshall},
    {"nussinov", emitNussinov},
    {"adi", emitAdi},
    {"fdtd-2d", emitFdtd2d},
    {"heat-3d", emitHeat3d},
    {"jacobi-1d", emitJacobi1d},
    {"jacobi-2d", emitJacobi2d},
    {"seidel-2d", emitSeidel2d},
};

} // namespace

const std::vector<std::string> &
polybenchNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const KernelEntry &e : kKernels)
            v.push_back(e.name);
        return v;
    }();
    return names;
}

Workload
polybench(const std::string &name, int n)
{
    const KernelEntry *entry = nullptr;
    for (const KernelEntry &e : kKernels) {
        if (name == e.name) {
            entry = &e;
            break;
        }
    }
    if (entry == nullptr)
        throw std::invalid_argument("unknown PolyBench kernel: " + name);

    wasm::ModuleBuilder mb;
    wasm::FunctionBuilder fb = mb.startFunction(
        wasm::FuncType({}, {wasm::ValType::F64}), "kernel", name);
    KB kb(fb, n);
    entry->emit(kb);
    fb.finish();
    uint32_t pages = (kb.nextOffset + wasm::kPageSize - 1) / wasm::kPageSize;
    mb.memory(pages, pages, "memory");

    Workload w;
    w.name = name;
    w.module = mb.build();
    w.entry = "kernel";
    return w;
}

std::vector<Workload>
polybenchSuite(int n)
{
    std::vector<Workload> suite;
    for (const std::string &name : polybenchNames())
        suite.push_back(polybench(name, n));
    return suite;
}

} // namespace wasabi::workloads
