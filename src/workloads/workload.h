/**
 * @file
 * Common workload descriptor: a module plus the entry point to drive
 * it. Stands in for the paper's benchmark programs (PolyBench/C
 * compiled with emscripten, plus two large real-world applications).
 */

#ifndef WASABI_WORKLOADS_WORKLOAD_H
#define WASABI_WORKLOADS_WORKLOAD_H

#include <string>
#include <vector>

#include "wasm/module.h"

namespace wasabi::workloads {

/** A runnable benchmark program. */
struct Workload {
    std::string name;
    wasm::Module module;
    /** Name of the exported entry function. */
    std::string entry = "kernel";
    /** Arguments to pass to the entry function. */
    std::vector<wasm::Value> args;
};

} // namespace wasabi::workloads

#endif // WASABI_WORKLOADS_WORKLOAD_H
