/**
 * @file
 * The 30 PolyBench/C benchmarks re-implemented as WebAssembly module
 * builders (see DESIGN.md: the paper compiles PolyBench with
 * emscripten; offline we emit equivalent loop nests directly).
 *
 * Every workload exports `kernel: [] -> [f64]` which initializes its
 * arrays deterministically in linear memory, runs the kernel, and
 * returns a checksum over the outputs — the analogue of the paper's
 * "output intermediate results" faithfulness check (RQ2).
 */

#ifndef WASABI_WORKLOADS_POLYBENCH_H
#define WASABI_WORKLOADS_POLYBENCH_H

#include <vector>

#include "workloads/workload.h"

namespace wasabi::workloads {

/** Names of all 30 PolyBench benchmarks. */
const std::vector<std::string> &polybenchNames();

/**
 * Build one PolyBench benchmark at problem size @p n (arrays are n,
 * n*n or n*n*n elements).
 * @throws std::invalid_argument for unknown names.
 */
Workload polybench(const std::string &name, int n = 20);

/** Build the whole suite. */
std::vector<Workload> polybenchSuite(int n = 20);

} // namespace wasabi::workloads

#endif // WASABI_WORKLOADS_POLYBENCH_H
