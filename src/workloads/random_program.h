/**
 * @file
 * Seeded random WebAssembly program generator. Produces valid,
 * deterministic, terminating modules covering the full instruction
 * set: typed expression trees, nested control flow, direct and
 * indirect calls, memory traffic, globals, i64 values, br_table, etc.
 *
 * Used for (a) the differential original-vs-instrumented faithfulness
 * corpus (the repository's stand-in for the paper's use of the Wasm
 * spec test suite, RQ2) and (b) as a building block of the synthetic
 * large applications.
 */

#ifndef WASABI_WORKLOADS_RANDOM_PROGRAM_H
#define WASABI_WORKLOADS_RANDOM_PROGRAM_H

#include "workloads/workload.h"

namespace wasabi::workloads {

/** Generation parameters. */
struct RandomProgramOptions {
    uint64_t seed = 1;
    uint32_t numFunctions = 8;
    /** Maximum function parameter count (the paper's real-world app
     * has calls with up to 22 arguments, which is what makes eager
     * monomorphization of call hooks infeasible). */
    uint32_t maxParams = 4;
    /** Statements emitted per function body. */
    uint32_t stmtsPerFunction = 12;
    /** Maximum expression tree depth. */
    uint32_t exprDepth = 3;
    bool useMemory = true;
    bool useTable = true;
    bool useGlobals = true;
    bool useI64 = true;
    /** Percent chance per statement to emit an extra `call_indirect`
     * (result dropped). 0 keeps the legacy random stream byte-exact
     * for existing seeds. */
    uint32_t indirectCallPct = 0;
    /** Of the emitted indirect calls, percent whose table index is a
     * plain in-range `i32.const` — the shape the interprocedural
     * refinement narrows to a direct-call hook. 0 = always dynamic
     * (masked expression), preserving the legacy stream. */
    uint32_t constIndexIndirectPct = 0;
};

/**
 * Generate a module. Exports "main: [i32] -> [i64]" which calls every
 * generated function with seed-derived arguments and folds all results
 * and a memory checksum into one i64. Deterministic for a given
 * options value. Calls only target lower-indexed functions and loops
 * are bounded, so every run terminates (no recursion, no unbounded
 * backward branches).
 */
Workload randomProgram(const RandomProgramOptions &opts);

} // namespace wasabi::workloads

#endif // WASABI_WORKLOADS_RANDOM_PROGRAM_H
