#include "workloads/synthetic_app.h"

#include "workloads/random_program.h"

namespace wasabi::workloads {

Workload
syntheticApp(AppSize size, uint64_t seed)
{
    RandomProgramOptions opts;
    opts.seed = seed;
    switch (size) {
      case AppSize::Small:
        opts.numFunctions = 20;
        opts.stmtsPerFunction = 10;
        opts.exprDepth = 3;
        break;
      case AppSize::PdfkitLike:
        opts.numFunctions = 400;
        opts.stmtsPerFunction = 24;
        opts.exprDepth = 4;
        opts.maxParams = 9;
        break;
      case AppSize::UnrealLike:
        opts.numFunctions = 1600;
        opts.stmtsPerFunction = 28;
        opts.exprDepth = 4;
        // The paper observes a 22-argument call in the Unreal binary.
        opts.maxParams = 22;
        break;
    }
    Workload w = randomProgram(opts);
    switch (size) {
      case AppSize::Small: w.name = "app-small"; break;
      case AppSize::PdfkitLike: w.name = "pspdfkit-like"; break;
      case AppSize::UnrealLike: w.name = "unreal-like"; break;
    }
    return w;
}

} // namespace wasabi::workloads
