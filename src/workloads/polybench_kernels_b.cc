/**
 * @file
 * PolyBench kernel emitters, part B: solvers (cholesky, durbin,
 * gramschmidt, lu, ludcmp, trisolv), data mining (correlation,
 * covariance) and doitgen/deriche. Solver inputs are made diagonally
 * dominant so factorizations stay numerically well-behaved.
 */

#include <cmath>

#include "workloads/polybench_internal.h"

namespace wasabi::workloads {

using wasm::Opcode;

namespace {

/** for (var = hi-1; var >= 0; --var) body(). */
void
loopDown(KB &kb, uint32_t var, int hi, const std::function<void()> &body)
{
    auto &f = kb.f;
    f.i32Const(hi - 1);
    f.localSet(var);
    f.block();
    f.loop();
    f.localGet(var);
    f.i32Const(0);
    f.op(Opcode::I32LtS);
    f.brIf(1);
    body();
    f.localGet(var);
    f.i32Const(1);
    f.op(Opcode::I32Sub);
    f.localSet(var);
    f.br(0);
    f.end();
    f.end();
}

/** Push the address of a 1-D f64 element with a computed index. */
void
addr1e(KB &kb, uint32_t base, const std::function<void()> &push_idx)
{
    push_idx();
    kb.f.i32Const(8);
    kb.f.op(Opcode::I32Mul);
    kb.f.i32Const(static_cast<int32_t>(base));
    kb.f.op(Opcode::I32Add);
}

void
load1e(KB &kb, uint32_t base, const std::function<void()> &push_idx)
{
    addr1e(kb, base, push_idx);
    kb.f.f64Load();
}

/** Symmetric, diagonally-dominant matrix init (for factorizations). */
void
initSpd(KB &kb, uint32_t A, uint32_t i, uint32_t j)
{
    kb.init2(A, i, j, 1, 1, 1); // (i+j+1)%n / n, symmetric
    kb.dominantDiag(A, i, 2.0 * kb.n);
}

} // namespace

void
emitCholesky(KB &kb)
{
    auto &f = kb.f;
    uint32_t i = kb.ilocal(), j = kb.ilocal(), k = kb.ilocal();
    uint32_t acc = kb.flocal();
    uint32_t A = kb.arr2();
    initSpd(kb, A, i, j);
    kb.loop(i, 0, kb.n, [&] {
        kb.loopTo(j, i, [&] {
            kb.loopTo(k, j, [&] {
                kb.addr2(A, i, j);
                kb.load2(A, i, j);
                kb.load2(A, i, k);
                kb.load2(A, j, k);
                f.op(Opcode::F64Mul);
                f.op(Opcode::F64Sub);
                kb.store();
            });
            kb.addr2(A, i, j);
            kb.load2(A, i, j);
            kb.load2(A, j, j);
            f.op(Opcode::F64Div);
            kb.store();
        });
        kb.loopTo(k, i, [&] {
            kb.addr2(A, i, i);
            kb.load2(A, i, i);
            kb.load2(A, i, k);
            kb.load2(A, i, k);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Sub);
            kb.store();
        });
        kb.addr2(A, i, i);
        kb.load2(A, i, i);
        f.op(Opcode::F64Sqrt);
        kb.store();
    });
    kb.sum2(A, i, j, acc);
    f.localGet(acc);
}

void
emitDurbin(KB &kb)
{
    auto &f = kb.f;
    uint32_t k = kb.ilocal(), i = kb.ilocal();
    uint32_t acc = kb.flocal();
    uint32_t alpha = kb.flocal(), beta = kb.flocal(), sum = kb.flocal();
    uint32_t r = kb.arr1(), y = kb.arr1(), z = kb.arr1();
    kb.init1(r, i, 1, 1);
    // y[0] = -r[0]; beta = 1; alpha = -r[0];
    f.i32Const(0);
    f.localSet(i);
    kb.addr1(y, i);
    kb.load1(r, i);
    f.op(Opcode::F64Neg);
    kb.store();
    f.f64Const(1.0);
    f.localSet(beta);
    kb.load1(r, i);
    f.op(Opcode::F64Neg);
    f.localSet(alpha);
    kb.loop(k, 1, kb.n, [&] {
        // beta = (1 - alpha^2) * beta
        kb.c(1.0);
        f.localGet(alpha);
        f.localGet(alpha);
        f.op(Opcode::F64Mul);
        f.op(Opcode::F64Sub);
        f.localGet(beta);
        f.op(Opcode::F64Mul);
        f.localSet(beta);
        // sum = sum_{i<k} r[k-i-1] * y[i]
        kb.c(0.0);
        f.localSet(sum);
        kb.loopTo(i, k, [&] {
            f.localGet(sum);
            load1e(kb, r, [&] {
                f.localGet(k);
                f.localGet(i);
                f.op(Opcode::I32Sub);
                f.i32Const(1);
                f.op(Opcode::I32Sub);
            });
            kb.load1(y, i);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Add);
            f.localSet(sum);
        });
        // alpha = -(r[k] + sum) / beta
        kb.load1(r, k);
        f.localGet(sum);
        f.op(Opcode::F64Add);
        f.op(Opcode::F64Neg);
        f.localGet(beta);
        f.op(Opcode::F64Div);
        f.localSet(alpha);
        // z[i] = y[i] + alpha * y[k-i-1]
        kb.loopTo(i, k, [&] {
            kb.addr1(z, i);
            kb.load1(y, i);
            f.localGet(alpha);
            load1e(kb, y, [&] {
                f.localGet(k);
                f.localGet(i);
                f.op(Opcode::I32Sub);
                f.i32Const(1);
                f.op(Opcode::I32Sub);
            });
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Add);
            kb.store();
        });
        kb.loopTo(i, k, [&] {
            kb.addr1(y, i);
            kb.load1(z, i);
            kb.store();
        });
        kb.addr1(y, k);
        f.localGet(alpha);
        kb.store();
    });
    kb.sum1(y, i, acc);
    f.localGet(acc);
}

void
emitGramschmidt(KB &kb)
{
    auto &f = kb.f;
    uint32_t i = kb.ilocal(), j = kb.ilocal(), k = kb.ilocal();
    uint32_t acc = kb.flocal(), nrm = kb.flocal();
    uint32_t A = kb.arr2(), R = kb.arr2(), Q = kb.arr2();
    kb.init2(A, i, j, 1, 1, 1);
    kb.dominantDiag(A, i, 1.0); // keep column norms well away from 0
    kb.loop(k, 0, kb.n, [&] {
        kb.c(0.0);
        f.localSet(nrm);
        kb.loop(i, 0, kb.n, [&] {
            f.localGet(nrm);
            kb.load2(A, i, k);
            kb.load2(A, i, k);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Add);
            f.localSet(nrm);
        });
        kb.addr2(R, k, k);
        f.localGet(nrm);
        f.op(Opcode::F64Sqrt);
        kb.store();
        kb.loop(i, 0, kb.n, [&] {
            kb.addr2(Q, i, k);
            kb.load2(A, i, k);
            kb.load2(R, k, k);
            f.op(Opcode::F64Div);
            kb.store();
        });
        kb.loopFrom(j, k, [&] {
            // skip j == k by starting at k and guarding:
            f.localGet(j);
            f.localGet(k);
            f.op(Opcode::I32Ne);
            f.if_();
            kb.addr2(R, k, j);
            kb.c(0.0);
            kb.store();
            kb.loop(i, 0, kb.n, [&] {
                kb.addr2(R, k, j);
                kb.load2(R, k, j);
                kb.load2(Q, i, k);
                kb.load2(A, i, j);
                f.op(Opcode::F64Mul);
                f.op(Opcode::F64Add);
                kb.store();
            });
            kb.loop(i, 0, kb.n, [&] {
                kb.addr2(A, i, j);
                kb.load2(A, i, j);
                kb.load2(Q, i, k);
                kb.load2(R, k, j);
                f.op(Opcode::F64Mul);
                f.op(Opcode::F64Sub);
                kb.store();
            });
            f.end();
        });
    });
    kb.sum2(R, i, j, acc);
    kb.sum2(Q, i, j, acc);
    f.localGet(acc);
}

namespace {

/** Shared LU factorization loops (used by lu and ludcmp). */
void
emitLuLoops(KB &kb, uint32_t A, uint32_t i, uint32_t j, uint32_t k)
{
    auto &f = kb.f;
    kb.loop(i, 0, kb.n, [&] {
        kb.loopTo(j, i, [&] {
            kb.loopTo(k, j, [&] {
                kb.addr2(A, i, j);
                kb.load2(A, i, j);
                kb.load2(A, i, k);
                kb.load2(A, k, j);
                f.op(Opcode::F64Mul);
                f.op(Opcode::F64Sub);
                kb.store();
            });
            kb.addr2(A, i, j);
            kb.load2(A, i, j);
            kb.load2(A, j, j);
            f.op(Opcode::F64Div);
            kb.store();
        });
        kb.loopFrom(j, i, [&] {
            kb.loopTo(k, i, [&] {
                kb.addr2(A, i, j);
                kb.load2(A, i, j);
                kb.load2(A, i, k);
                kb.load2(A, k, j);
                f.op(Opcode::F64Mul);
                f.op(Opcode::F64Sub);
                kb.store();
            });
        });
    });
}

} // namespace

void
emitLu(KB &kb)
{
    auto &f = kb.f;
    uint32_t i = kb.ilocal(), j = kb.ilocal(), k = kb.ilocal();
    uint32_t acc = kb.flocal();
    uint32_t A = kb.arr2();
    initSpd(kb, A, i, j);
    emitLuLoops(kb, A, i, j, k);
    kb.sum2(A, i, j, acc);
    f.localGet(acc);
}

void
emitLudcmp(KB &kb)
{
    auto &f = kb.f;
    uint32_t i = kb.ilocal(), j = kb.ilocal(), k = kb.ilocal();
    uint32_t acc = kb.flocal(), w = kb.flocal();
    uint32_t A = kb.arr2(), b = kb.arr1(), x = kb.arr1(), y = kb.arr1();
    initSpd(kb, A, i, j);
    kb.init1(b, i, 1, 1);
    emitLuLoops(kb, A, i, j, k);
    // Forward substitution: Ly = b.
    kb.loop(i, 0, kb.n, [&] {
        kb.load1(b, i);
        f.localSet(w);
        kb.loopTo(j, i, [&] {
            f.localGet(w);
            kb.load2(A, i, j);
            kb.load1(y, j);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Sub);
            f.localSet(w);
        });
        kb.addr1(y, i);
        f.localGet(w);
        kb.store();
    });
    // Back substitution: Ux = y.
    loopDown(kb, i, kb.n, [&] {
        kb.load1(y, i);
        f.localSet(w);
        kb.loopFrom(j, i, [&] {
            f.localGet(j);
            f.localGet(i);
            f.op(Opcode::I32Ne);
            f.if_();
            f.localGet(w);
            kb.load2(A, i, j);
            kb.load1(x, j);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Sub);
            f.localSet(w);
            f.end();
        });
        kb.addr1(x, i);
        f.localGet(w);
        kb.load2(A, i, i);
        f.op(Opcode::F64Div);
        kb.store();
    });
    kb.sum1(x, i, acc);
    f.localGet(acc);
}

void
emitTrisolv(KB &kb)
{
    auto &f = kb.f;
    uint32_t i = kb.ilocal(), j = kb.ilocal();
    uint32_t acc = kb.flocal();
    uint32_t L = kb.arr2(), x = kb.arr1(), b = kb.arr1();
    initSpd(kb, L, i, j);
    kb.init1(b, i, 1, 1);
    kb.loop(i, 0, kb.n, [&] {
        kb.addr1(x, i);
        kb.load1(b, i);
        kb.store();
        kb.loopTo(j, i, [&] {
            kb.addr1(x, i);
            kb.load1(x, i);
            kb.load2(L, i, j);
            kb.load1(x, j);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Sub);
            kb.store();
        });
        kb.addr1(x, i);
        kb.load1(x, i);
        kb.load2(L, i, i);
        f.op(Opcode::F64Div);
        kb.store();
    });
    kb.sum1(x, i, acc);
    f.localGet(acc);
}

void
emitCorrelation(KB &kb)
{
    auto &f = kb.f;
    uint32_t i = kb.ilocal(), j = kb.ilocal(), k = kb.ilocal();
    uint32_t acc = kb.flocal();
    uint32_t data = kb.arr2(), corr = kb.arr2();
    uint32_t mean = kb.arr1(), stddev = kb.arr1();
    double fn = static_cast<double>(kb.n);
    kb.init2(data, i, j, 1, 2, 1);
    // Means.
    kb.loop(j, 0, kb.n, [&] {
        kb.addr1(mean, j);
        kb.c(0.0);
        kb.store();
        kb.loop(i, 0, kb.n, [&] {
            kb.addr1(mean, j);
            kb.load1(mean, j);
            kb.load2(data, i, j);
            f.op(Opcode::F64Add);
            kb.store();
        });
        kb.addr1(mean, j);
        kb.load1(mean, j);
        kb.c(fn);
        f.op(Opcode::F64Div);
        kb.store();
    });
    // Standard deviations (with the PolyBench epsilon guard).
    kb.loop(j, 0, kb.n, [&] {
        kb.addr1(stddev, j);
        kb.c(0.0);
        kb.store();
        kb.loop(i, 0, kb.n, [&] {
            kb.addr1(stddev, j);
            kb.load1(stddev, j);
            kb.load2(data, i, j);
            kb.load1(mean, j);
            f.op(Opcode::F64Sub);
            kb.load2(data, i, j);
            kb.load1(mean, j);
            f.op(Opcode::F64Sub);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Add);
            kb.store();
        });
        kb.addr1(stddev, j);
        kb.load1(stddev, j);
        kb.c(fn);
        f.op(Opcode::F64Div);
        f.op(Opcode::F64Sqrt);
        kb.store();
        // stddev[j] = stddev[j] <= eps ? 1.0 : stddev[j]
        kb.addr1(stddev, j);
        kb.c(1.0);
        kb.load1(stddev, j);
        kb.load1(stddev, j);
        kb.c(0.1);
        f.op(Opcode::F64Le);
        f.select();
        kb.store();
    });
    // Center and scale.
    kb.loop(i, 0, kb.n, [&] {
        kb.loop(j, 0, kb.n, [&] {
            kb.addr2(data, i, j);
            kb.load2(data, i, j);
            kb.load1(mean, j);
            f.op(Opcode::F64Sub);
            kb.c(std::sqrt(fn));
            kb.load1(stddev, j);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Div);
            kb.store();
        });
    });
    // Correlation matrix.
    kb.loop(i, 0, kb.n, [&] {
        kb.addr2(corr, i, i);
        kb.c(1.0);
        kb.store();
    });
    kb.loop(i, 0, kb.n, [&] {
        kb.loopFrom(j, i, [&] {
            f.localGet(j);
            f.localGet(i);
            f.op(Opcode::I32Ne);
            f.if_();
            kb.addr2(corr, i, j);
            kb.c(0.0);
            kb.store();
            kb.loop(k, 0, kb.n, [&] {
                kb.addr2(corr, i, j);
                kb.load2(corr, i, j);
                kb.load2(data, k, i);
                kb.load2(data, k, j);
                f.op(Opcode::F64Mul);
                f.op(Opcode::F64Add);
                kb.store();
            });
            kb.addr2(corr, j, i);
            kb.load2(corr, i, j);
            kb.store();
            f.end();
        });
    });
    kb.sum2(corr, i, j, acc);
    f.localGet(acc);
}

void
emitCovariance(KB &kb)
{
    auto &f = kb.f;
    uint32_t i = kb.ilocal(), j = kb.ilocal(), k = kb.ilocal();
    uint32_t acc = kb.flocal();
    uint32_t data = kb.arr2(), cov = kb.arr2(), mean = kb.arr1();
    double fn = static_cast<double>(kb.n);
    kb.init2(data, i, j, 2, 1, 1);
    kb.loop(j, 0, kb.n, [&] {
        kb.addr1(mean, j);
        kb.c(0.0);
        kb.store();
        kb.loop(i, 0, kb.n, [&] {
            kb.addr1(mean, j);
            kb.load1(mean, j);
            kb.load2(data, i, j);
            f.op(Opcode::F64Add);
            kb.store();
        });
        kb.addr1(mean, j);
        kb.load1(mean, j);
        kb.c(fn);
        f.op(Opcode::F64Div);
        kb.store();
    });
    kb.loop(i, 0, kb.n, [&] {
        kb.loop(j, 0, kb.n, [&] {
            kb.addr2(data, i, j);
            kb.load2(data, i, j);
            kb.load1(mean, j);
            f.op(Opcode::F64Sub);
            kb.store();
        });
    });
    kb.loop(i, 0, kb.n, [&] {
        kb.loopFrom(j, i, [&] {
            kb.addr2(cov, i, j);
            kb.c(0.0);
            kb.store();
            kb.loop(k, 0, kb.n, [&] {
                kb.addr2(cov, i, j);
                kb.load2(cov, i, j);
                kb.load2(data, k, i);
                kb.load2(data, k, j);
                f.op(Opcode::F64Mul);
                f.op(Opcode::F64Add);
                kb.store();
            });
            kb.addr2(cov, i, j);
            kb.load2(cov, i, j);
            kb.c(fn - 1.0);
            f.op(Opcode::F64Div);
            kb.store();
            kb.addr2(cov, j, i);
            kb.load2(cov, i, j);
            kb.store();
        });
    });
    kb.sum2(cov, i, j, acc);
    f.localGet(acc);
}

void
emitDoitgen(KB &kb)
{
    auto &f = kb.f;
    uint32_t r = kb.ilocal(), q = kb.ilocal(), p = kb.ilocal(),
             s = kb.ilocal();
    uint32_t acc = kb.flocal();
    uint32_t A = kb.arr3(), C4 = kb.arr2(), sum = kb.arr1();
    // init A[r][q][s] = ((r*q + s + 1) % n) / n
    kb.loop(r, 0, kb.n, [&] {
        kb.loop(q, 0, kb.n, [&] {
            kb.loop(s, 0, kb.n, [&] {
                kb.addr3(A, r, q, s);
                f.localGet(r);
                f.localGet(q);
                f.op(Opcode::I32Mul);
                f.localGet(s);
                f.op(Opcode::I32Add);
                f.i32Const(1);
                f.op(Opcode::I32Add);
                f.i32Const(kb.n);
                f.op(Opcode::I32RemS);
                kb.toF64();
                kb.c(static_cast<double>(kb.n));
                f.op(Opcode::F64Div);
                kb.store();
            });
        });
    });
    kb.init2(C4, p, s, 1, 1, 1);
    kb.loop(r, 0, kb.n, [&] {
        kb.loop(q, 0, kb.n, [&] {
            kb.loop(p, 0, kb.n, [&] {
                kb.addr1(sum, p);
                kb.c(0.0);
                kb.store();
                kb.loop(s, 0, kb.n, [&] {
                    kb.addr1(sum, p);
                    kb.load1(sum, p);
                    kb.load3(A, r, q, s);
                    kb.load2(C4, s, p);
                    f.op(Opcode::F64Mul);
                    f.op(Opcode::F64Add);
                    kb.store();
                });
            });
            kb.loop(p, 0, kb.n, [&] {
                kb.addr3(A, r, q, p);
                kb.load1(sum, p);
                kb.store();
            });
        });
    });
    // Checksum over the updated tensor's first slice.
    kb.loop(q, 0, kb.n, [&] {
        kb.loop(p, 0, kb.n, [&] {
            f.localGet(acc);
            f.i32Const(0);
            f.localSet(r);
            kb.load3(A, r, q, p);
            f.op(Opcode::F64Add);
            f.localSet(acc);
        });
    });
    f.localGet(acc);
}

void
emitDeriche(KB &kb)
{
    auto &f = kb.f;
    uint32_t i = kb.ilocal(), j = kb.ilocal();
    uint32_t acc = kb.flocal();
    uint32_t ym1 = kb.flocal(), ym2 = kb.flocal(), xm1 = kb.flocal();
    uint32_t yp1 = kb.flocal(), yp2 = kb.flocal(), xp1 = kb.flocal(),
             xp2 = kb.flocal();
    uint32_t tm1 = kb.flocal(), tp1 = kb.flocal(), tp2 = kb.flocal();
    uint32_t imgIn = kb.arr2(), imgOut = kb.arr2();
    uint32_t y1 = kb.arr2(), y2 = kb.arr2();

    // Coefficients derived from alpha at generation time (the paper's
    // workloads compute them with expf; we precompute since alpha is a
    // static benchmark parameter).
    const double alpha = 0.25;
    const double ea = std::exp(-alpha);
    const double e2a = std::exp(-2.0 * alpha);
    const double k0 = (1.0 - ea) * (1.0 - ea) /
        (1.0 + 2.0 * alpha * ea - e2a);
    const double a1 = k0, a5 = k0;
    const double a2 = k0 * ea * (alpha - 1.0), a6 = a2;
    const double a3 = k0 * ea * (alpha + 1.0), a7 = a3;
    const double a4 = -k0 * e2a, a8 = a4;
    const double b1 = std::pow(2.0, -alpha);
    const double b2 = -e2a;
    const double c1 = 1.0, c2 = 1.0;

    kb.init2(imgIn, i, j, 3, 1, 1);

    // Horizontal forward pass.
    kb.loop(i, 0, kb.n, [&] {
        kb.c(0.0);
        f.localSet(ym1);
        kb.c(0.0);
        f.localSet(ym2);
        kb.c(0.0);
        f.localSet(xm1);
        kb.loop(j, 0, kb.n, [&] {
            kb.addr2(y1, i, j);
            kb.c(a1);
            kb.load2(imgIn, i, j);
            f.op(Opcode::F64Mul);
            kb.c(a2);
            f.localGet(xm1);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Add);
            kb.c(b1);
            f.localGet(ym1);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Add);
            kb.c(b2);
            f.localGet(ym2);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Add);
            kb.store();
            kb.load2(imgIn, i, j);
            f.localSet(xm1);
            f.localGet(ym1);
            f.localSet(ym2);
            kb.load2(y1, i, j);
            f.localSet(ym1);
        });
    });
    // Horizontal backward pass.
    kb.loop(i, 0, kb.n, [&] {
        kb.c(0.0);
        f.localSet(yp1);
        kb.c(0.0);
        f.localSet(yp2);
        kb.c(0.0);
        f.localSet(xp1);
        kb.c(0.0);
        f.localSet(xp2);
        loopDown(kb, j, kb.n, [&] {
            kb.addr2(y2, i, j);
            kb.c(a3);
            f.localGet(xp1);
            f.op(Opcode::F64Mul);
            kb.c(a4);
            f.localGet(xp2);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Add);
            kb.c(b1);
            f.localGet(yp1);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Add);
            kb.c(b2);
            f.localGet(yp2);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Add);
            kb.store();
            f.localGet(xp1);
            f.localSet(xp2);
            kb.load2(imgIn, i, j);
            f.localSet(xp1);
            f.localGet(yp1);
            f.localSet(yp2);
            kb.load2(y2, i, j);
            f.localSet(yp1);
        });
    });
    kb.loop(i, 0, kb.n, [&] {
        kb.loop(j, 0, kb.n, [&] {
            kb.addr2(imgOut, i, j);
            kb.c(c1);
            kb.load2(y1, i, j);
            kb.load2(y2, i, j);
            f.op(Opcode::F64Add);
            f.op(Opcode::F64Mul);
            kb.store();
        });
    });
    // Vertical forward pass.
    kb.loop(j, 0, kb.n, [&] {
        kb.c(0.0);
        f.localSet(tm1);
        kb.c(0.0);
        f.localSet(ym1);
        kb.c(0.0);
        f.localSet(ym2);
        kb.loop(i, 0, kb.n, [&] {
            kb.addr2(y1, i, j);
            kb.c(a5);
            kb.load2(imgOut, i, j);
            f.op(Opcode::F64Mul);
            kb.c(a6);
            f.localGet(tm1);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Add);
            kb.c(b1);
            f.localGet(ym1);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Add);
            kb.c(b2);
            f.localGet(ym2);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Add);
            kb.store();
            kb.load2(imgOut, i, j);
            f.localSet(tm1);
            f.localGet(ym1);
            f.localSet(ym2);
            kb.load2(y1, i, j);
            f.localSet(ym1);
        });
    });
    // Vertical backward pass.
    kb.loop(j, 0, kb.n, [&] {
        kb.c(0.0);
        f.localSet(tp1);
        kb.c(0.0);
        f.localSet(tp2);
        kb.c(0.0);
        f.localSet(yp1);
        kb.c(0.0);
        f.localSet(yp2);
        loopDown(kb, i, kb.n, [&] {
            kb.addr2(y2, i, j);
            kb.c(a7);
            f.localGet(tp1);
            f.op(Opcode::F64Mul);
            kb.c(a8);
            f.localGet(tp2);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Add);
            kb.c(b1);
            f.localGet(yp1);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Add);
            kb.c(b2);
            f.localGet(yp2);
            f.op(Opcode::F64Mul);
            f.op(Opcode::F64Add);
            kb.store();
            f.localGet(tp1);
            f.localSet(tp2);
            kb.load2(imgOut, i, j);
            f.localSet(tp1);
            f.localGet(yp1);
            f.localSet(yp2);
            kb.load2(y2, i, j);
            f.localSet(yp1);
        });
    });
    kb.loop(i, 0, kb.n, [&] {
        kb.loop(j, 0, kb.n, [&] {
            kb.addr2(imgOut, i, j);
            kb.c(c2);
            kb.load2(y1, i, j);
            kb.load2(y2, i, j);
            f.op(Opcode::F64Add);
            f.op(Opcode::F64Mul);
            kb.store();
        });
    });
    kb.sum2(imgOut, i, j, acc);
    f.localGet(acc);
}

} // namespace wasabi::workloads
