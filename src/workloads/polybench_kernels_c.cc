/**
 * @file
 * PolyBench kernel emitters, part C: stencils (adi, fdtd-2d, heat-3d,
 * jacobi-1d/2d, seidel-2d) and the medley kernels (floyd-warshall,
 * nussinov), the latter two on i32 arrays as in PolyBench.
 */

#include "workloads/polybench_internal.h"

namespace wasabi::workloads {

using wasm::Opcode;

namespace {

int
tsteps(const KB &kb)
{
    return kb.n / 8 < 2 ? 2 : kb.n / 8;
}

/** dst_local = src_local + delta (i32). */
void
offsetLocal(KB &kb, uint32_t dst, uint32_t src, int delta)
{
    auto &f = kb.f;
    f.localGet(src);
    f.i32Const(delta);
    f.op(Opcode::I32Add);
    f.localSet(dst);
}

/** for (var = hi-1; var >= lo; --var) body(). */
void
loopDownFrom(KB &kb, uint32_t var, int hi, int lo,
             const std::function<void()> &body)
{
    auto &f = kb.f;
    f.i32Const(hi - 1);
    f.localSet(var);
    f.block();
    f.loop();
    f.localGet(var);
    f.i32Const(lo);
    f.op(Opcode::I32LtS);
    f.brIf(1);
    body();
    f.localGet(var);
    f.i32Const(1);
    f.op(Opcode::I32Sub);
    f.localSet(var);
    f.br(0);
    f.end();
    f.end();
}

} // namespace

void
emitFloydWarshall(KB &kb)
{
    auto &f = kb.f;
    uint32_t i = kb.ilocal(), j = kb.ilocal(), k = kb.ilocal();
    uint32_t pa = kb.ilocal(), pb = kb.ilocal();
    uint32_t acc = kb.flocal();
    uint32_t path = kb.arr2i();
    // path[i][j] = (i*j % 7 + 1), with some "infinite" edges = 999.
    kb.loop(i, 0, kb.n, [&] {
        kb.loop(j, 0, kb.n, [&] {
            kb.addr2(path, i, j, 4);
            // ((i + j) % 13 == 0) ? 999 : i*j%7 + 1
            f.i32Const(999);
            f.localGet(i);
            f.localGet(j);
            f.op(Opcode::I32Mul);
            f.i32Const(7);
            f.op(Opcode::I32RemS);
            f.i32Const(1);
            f.op(Opcode::I32Add);
            f.localGet(i);
            f.localGet(j);
            f.op(Opcode::I32Add);
            f.i32Const(13);
            f.op(Opcode::I32RemS);
            f.op(Opcode::I32Eqz);
            f.select();
            kb.storei();
        });
    });
    kb.loop(k, 0, kb.n, [&] {
        kb.loop(i, 0, kb.n, [&] {
            kb.loop(j, 0, kb.n, [&] {
                kb.load2i(path, i, j);
                f.localSet(pa);
                kb.load2i(path, i, k);
                kb.load2i(path, k, j);
                f.op(Opcode::I32Add);
                f.localSet(pb);
                kb.addr2(path, i, j, 4);
                f.localGet(pa);
                f.localGet(pb);
                f.localGet(pa);
                f.localGet(pb);
                f.op(Opcode::I32LeS);
                f.select();
                kb.storei();
            });
        });
    });
    kb.sum2i(path, i, j, acc);
    f.localGet(acc);
}

void
emitNussinov(KB &kb)
{
    auto &f = kb.f;
    uint32_t i = kb.ilocal(), j = kb.ilocal(), k = kb.ilocal();
    uint32_t ip = kb.ilocal(), jm = kb.ilocal(), kp = kb.ilocal();
    uint32_t tx = kb.ilocal();
    uint32_t acc = kb.flocal();
    uint32_t table = kb.arr2i(), seq = kb.arr1i();
    // seq[i] = (i + 1) % 4; table zero-initialized.
    kb.loop(i, 0, kb.n, [&] {
        kb.addr1(seq, i, 4);
        f.localGet(i);
        f.i32Const(1);
        f.op(Opcode::I32Add);
        f.i32Const(4);
        f.op(Opcode::I32RemS);
        kb.storei();
    });
    kb.loop(i, 0, kb.n, [&] {
        kb.loop(j, 0, kb.n, [&] {
            kb.addr2(table, i, j, 4);
            f.i32Const(0);
            kb.storei();
        });
    });
    // table[i][j] = max(...) over the standard Nussinov recurrences.
    auto maxInto = [&](const std::function<void()> &push_candidate) {
        push_candidate();
        f.localSet(tx);
        kb.addr2(table, i, j, 4);
        kb.load2i(table, i, j);
        f.localGet(tx);
        kb.load2i(table, i, j);
        f.localGet(tx);
        f.op(Opcode::I32GeS);
        f.select();
        kb.storei();
    };
    loopDownFrom(kb, i, kb.n, 0, [&] {
        kb.loopDyn(
            j,
            [&] {
                f.localGet(i);
                f.i32Const(1);
                f.op(Opcode::I32Add);
            },
            [&] { f.i32Const(kb.n); },
            [&] {
                offsetLocal(kb, ip, i, 1);
                offsetLocal(kb, jm, j, -1);
                // table[i][j-1]
                maxInto([&] { kb.load2i(table, i, jm); });
                // table[i+1][j] (if i+1 < n; j >= i+1 >= 1 so safe)
                f.localGet(ip);
                f.i32Const(kb.n);
                f.op(Opcode::I32LtS);
                f.if_();
                maxInto([&] { kb.load2i(table, ip, j); });
                // table[i+1][j-1] (+ match(seq[i], seq[j]) if i<j-1)
                maxInto([&] {
                    kb.load2i(table, ip, jm);
                    // match = (seq[i] + seq[j] == 3) ? 1 : 0
                    kb.load1i(seq, i);
                    kb.load1i(seq, j);
                    f.op(Opcode::I32Add);
                    f.i32Const(3);
                    f.op(Opcode::I32Eq);
                    // add match only when i < j-1
                    f.i32Const(0);
                    f.localGet(i);
                    f.localGet(jm);
                    f.op(Opcode::I32GeS);
                    f.select();
                    f.op(Opcode::I32Add);
                });
                f.end();
                // split choices: table[i][k] + table[k+1][j]
                kb.loopDyn(
                    k,
                    [&] {
                        f.localGet(i);
                        f.i32Const(1);
                        f.op(Opcode::I32Add);
                    },
                    [&] { f.localGet(j); },
                    [&] {
                        offsetLocal(kb, kp, k, 1);
                        maxInto([&] {
                            kb.load2i(table, i, k);
                            kb.load2i(table, kp, j);
                            f.op(Opcode::I32Add);
                        });
                    });
            });
    });
    kb.sum2i(table, i, j, acc);
    f.localGet(acc);
}

void
emitAdi(KB &kb)
{
    auto &f = kb.f;
    const int n = kb.n;
    const int steps = tsteps(kb);
    uint32_t t = kb.ilocal(), i = kb.ilocal(), j = kb.ilocal();
    uint32_t jm = kb.ilocal(), jp = kb.ilocal(), im = kb.ilocal(),
             ip = kb.ilocal();
    uint32_t acc = kb.flocal();
    uint32_t u = kb.arr2(), v = kb.arr2(), p = kb.arr2(), q = kb.arr2();

    const double dx = 1.0 / n, dy = 1.0 / n, dt = 1.0 / steps;
    const double b1 = 2.0, b2 = 1.0;
    const double mul1 = b1 * dt / (dx * dx);
    const double mul2 = b2 * dt / (dy * dy);
    const double ca = -mul1 / 2.0, cb = 1.0 + mul1, cc = ca;
    const double cd = -mul2 / 2.0, ce = 1.0 + mul2, cf = cd;

    kb.init2(u, i, j, 1, 2, 1);

    kb.loop(t, 0, steps, [&] {
        // Column sweep.
        kb.loop(i, 1, n - 1, [&] {
            f.i32Const(0);
            f.localSet(j);
            kb.addr2(v, j, i);
            kb.c(1.0);
            kb.store();
            kb.addr2(p, i, j);
            kb.c(0.0);
            kb.store();
            kb.addr2(q, i, j);
            kb.c(1.0);
            kb.store();
            kb.loop(j, 1, n - 1, [&] {
                offsetLocal(kb, jm, j, -1);
                offsetLocal(kb, im, i, -1);
                offsetLocal(kb, ip, i, 1);
                // p[i][j] = -cc / (ca*p[i][j-1] + cb)
                kb.addr2(p, i, j);
                kb.c(-cc);
                kb.c(ca);
                kb.load2(p, i, jm);
                f.op(Opcode::F64Mul);
                kb.c(cb);
                f.op(Opcode::F64Add);
                f.op(Opcode::F64Div);
                kb.store();
                // q[i][j] = (-cd*u[j][i-1] + (1+2cd)*u[j][i]
                //            - cf*u[j][i+1] - ca*q[i][j-1])
                //           / (ca*p[i][j-1] + cb)
                kb.addr2(q, i, j);
                kb.c(-cd);
                kb.load2(u, j, im);
                f.op(Opcode::F64Mul);
                kb.c(1.0 + 2.0 * cd);
                kb.load2(u, j, i);
                f.op(Opcode::F64Mul);
                f.op(Opcode::F64Add);
                kb.c(cf);
                kb.load2(u, j, ip);
                f.op(Opcode::F64Mul);
                f.op(Opcode::F64Sub);
                kb.c(ca);
                kb.load2(q, i, jm);
                f.op(Opcode::F64Mul);
                f.op(Opcode::F64Sub);
                kb.c(ca);
                kb.load2(p, i, jm);
                f.op(Opcode::F64Mul);
                kb.c(cb);
                f.op(Opcode::F64Add);
                f.op(Opcode::F64Div);
                kb.store();
            });
            f.i32Const(n - 1);
            f.localSet(j);
            kb.addr2(v, j, i);
            kb.c(1.0);
            kb.store();
            loopDownFrom(kb, j, n - 1, 1, [&] {
                offsetLocal(kb, jp, j, 1);
                kb.addr2(v, j, i);
                kb.load2(p, i, j);
                kb.load2(v, jp, i);
                f.op(Opcode::F64Mul);
                kb.load2(q, i, j);
                f.op(Opcode::F64Add);
                kb.store();
            });
        });
        // Row sweep.
        kb.loop(i, 1, n - 1, [&] {
            f.i32Const(0);
            f.localSet(j);
            kb.addr2(u, i, j);
            kb.c(1.0);
            kb.store();
            kb.addr2(p, i, j);
            kb.c(0.0);
            kb.store();
            kb.addr2(q, i, j);
            kb.c(1.0);
            kb.store();
            kb.loop(j, 1, n - 1, [&] {
                offsetLocal(kb, jm, j, -1);
                offsetLocal(kb, im, i, -1);
                offsetLocal(kb, ip, i, 1);
                kb.addr2(p, i, j);
                kb.c(-cf);
                kb.c(cd);
                kb.load2(p, i, jm);
                f.op(Opcode::F64Mul);
                kb.c(ce);
                f.op(Opcode::F64Add);
                f.op(Opcode::F64Div);
                kb.store();
                kb.addr2(q, i, j);
                kb.c(-ca);
                kb.load2(v, im, j);
                f.op(Opcode::F64Mul);
                kb.c(1.0 + 2.0 * ca);
                kb.load2(v, i, j);
                f.op(Opcode::F64Mul);
                f.op(Opcode::F64Add);
                kb.c(cc);
                kb.load2(v, ip, j);
                f.op(Opcode::F64Mul);
                f.op(Opcode::F64Sub);
                kb.c(cd);
                kb.load2(q, i, jm);
                f.op(Opcode::F64Mul);
                f.op(Opcode::F64Sub);
                kb.c(cd);
                kb.load2(p, i, jm);
                f.op(Opcode::F64Mul);
                kb.c(ce);
                f.op(Opcode::F64Add);
                f.op(Opcode::F64Div);
                kb.store();
            });
            f.i32Const(n - 1);
            f.localSet(j);
            kb.addr2(u, i, j);
            kb.c(1.0);
            kb.store();
            loopDownFrom(kb, j, n - 1, 1, [&] {
                offsetLocal(kb, jp, j, 1);
                kb.addr2(u, i, j);
                kb.load2(p, i, j);
                kb.load2(u, i, jp);
                f.op(Opcode::F64Mul);
                kb.load2(q, i, j);
                f.op(Opcode::F64Add);
                kb.store();
            });
        });
    });
    kb.sum2(u, i, j, acc);
    f.localGet(acc);
}

void
emitFdtd2d(KB &kb)
{
    auto &f = kb.f;
    const int n = kb.n;
    uint32_t t = kb.ilocal(), i = kb.ilocal(), j = kb.ilocal();
    uint32_t im = kb.ilocal(), jm = kb.ilocal(), ip = kb.ilocal(),
             jp = kb.ilocal();
    uint32_t acc = kb.flocal();
    uint32_t ex = kb.arr2(), ey = kb.arr2(), hz = kb.arr2();
    kb.init2(ex, i, j, 1, 1, 1);
    kb.init2(ey, i, j, 1, 2, 2);
    kb.init2(hz, i, j, 2, 1, 3);
    kb.loop(t, 0, tsteps(kb), [&] {
        kb.loop(j, 0, n, [&] {
            f.i32Const(0);
            f.localSet(i);
            kb.addr2(ey, i, j);
            f.localGet(t);
            kb.toF64();
            kb.store();
        });
        kb.loop(i, 1, n, [&] {
            kb.loop(j, 0, n, [&] {
                offsetLocal(kb, im, i, -1);
                kb.addr2(ey, i, j);
                kb.load2(ey, i, j);
                kb.c(0.5);
                kb.load2(hz, i, j);
                kb.load2(hz, im, j);
                f.op(Opcode::F64Sub);
                f.op(Opcode::F64Mul);
                f.op(Opcode::F64Sub);
                kb.store();
            });
        });
        kb.loop(i, 0, n, [&] {
            kb.loop(j, 1, n, [&] {
                offsetLocal(kb, jm, j, -1);
                kb.addr2(ex, i, j);
                kb.load2(ex, i, j);
                kb.c(0.5);
                kb.load2(hz, i, j);
                kb.load2(hz, i, jm);
                f.op(Opcode::F64Sub);
                f.op(Opcode::F64Mul);
                f.op(Opcode::F64Sub);
                kb.store();
            });
        });
        kb.loop(i, 0, n - 1, [&] {
            kb.loop(j, 0, n - 1, [&] {
                offsetLocal(kb, ip, i, 1);
                offsetLocal(kb, jp, j, 1);
                kb.addr2(hz, i, j);
                kb.load2(hz, i, j);
                kb.c(0.7);
                kb.load2(ex, i, jp);
                kb.load2(ex, i, j);
                f.op(Opcode::F64Sub);
                kb.load2(ey, ip, j);
                f.op(Opcode::F64Add);
                kb.load2(ey, i, j);
                f.op(Opcode::F64Sub);
                f.op(Opcode::F64Mul);
                f.op(Opcode::F64Sub);
                kb.store();
            });
        });
    });
    kb.sum2(hz, i, j, acc);
    f.localGet(acc);
}

void
emitHeat3d(KB &kb)
{
    auto &f = kb.f;
    const int n = kb.n;
    uint32_t t = kb.ilocal(), i = kb.ilocal(), j = kb.ilocal(),
             k = kb.ilocal();
    uint32_t im = kb.ilocal(), ip = kb.ilocal(), jm = kb.ilocal(),
             jp = kb.ilocal(), km = kb.ilocal(), kp = kb.ilocal();
    uint32_t acc = kb.flocal();
    uint32_t A = kb.arr3(), B = kb.arr3();
    // init A[i][j][k] = (i + j + (n - k)) * 10.0 / n; B likewise.
    kb.loop(i, 0, n, [&] {
        kb.loop(j, 0, n, [&] {
            kb.loop(k, 0, n, [&] {
                for (uint32_t arr : {A, B}) {
                    kb.addr3(arr, i, j, k);
                    f.localGet(i);
                    f.localGet(j);
                    f.op(Opcode::I32Add);
                    f.i32Const(n);
                    f.localGet(k);
                    f.op(Opcode::I32Sub);
                    f.op(Opcode::I32Add);
                    kb.toF64();
                    kb.c(10.0 / n);
                    f.op(Opcode::F64Mul);
                    kb.store();
                }
            });
        });
    });
    auto stencil = [&](uint32_t dst, uint32_t src) {
        kb.loop(i, 1, n - 1, [&] {
            kb.loop(j, 1, n - 1, [&] {
                kb.loop(k, 1, n - 1, [&] {
                    offsetLocal(kb, im, i, -1);
                    offsetLocal(kb, ip, i, 1);
                    offsetLocal(kb, jm, j, -1);
                    offsetLocal(kb, jp, j, 1);
                    offsetLocal(kb, km, k, -1);
                    offsetLocal(kb, kp, k, 1);
                    kb.addr3(dst, i, j, k);
                    // 0.125 * (src[ip]-2src+src[im]) over each axis,
                    // plus src itself.
                    auto axis = [&](uint32_t a, uint32_t b) {
                        kb.c(0.125);
                        kb.load3(src, a, j, k);
                        (void)b;
                        kb.c(2.0);
                        kb.load3(src, i, j, k);
                        f.op(Opcode::F64Mul);
                        f.op(Opcode::F64Sub);
                        kb.load3(src, b, j, k);
                        f.op(Opcode::F64Add);
                        f.op(Opcode::F64Mul);
                    };
                    axis(ip, im);
                    // j axis
                    kb.c(0.125);
                    kb.load3(src, i, jp, k);
                    kb.c(2.0);
                    kb.load3(src, i, j, k);
                    f.op(Opcode::F64Mul);
                    f.op(Opcode::F64Sub);
                    kb.load3(src, i, jm, k);
                    f.op(Opcode::F64Add);
                    f.op(Opcode::F64Mul);
                    f.op(Opcode::F64Add);
                    // k axis
                    kb.c(0.125);
                    kb.load3(src, i, j, kp);
                    kb.c(2.0);
                    kb.load3(src, i, j, k);
                    f.op(Opcode::F64Mul);
                    f.op(Opcode::F64Sub);
                    kb.load3(src, i, j, km);
                    f.op(Opcode::F64Add);
                    f.op(Opcode::F64Mul);
                    f.op(Opcode::F64Add);
                    kb.load3(src, i, j, k);
                    f.op(Opcode::F64Add);
                    kb.store();
                });
            });
        });
    };
    kb.loop(t, 0, tsteps(kb), [&] {
        stencil(B, A);
        stencil(A, B);
    });
    // Checksum over the middle slice of A.
    kb.loop(j, 0, n, [&] {
        kb.loop(k, 0, n, [&] {
            f.localGet(acc);
            f.i32Const(n / 2);
            f.localSet(i);
            kb.load3(A, i, j, k);
            f.op(Opcode::F64Add);
            f.localSet(acc);
        });
    });
    f.localGet(acc);
}

void
emitJacobi1d(KB &kb)
{
    auto &f = kb.f;
    const int n = kb.n;
    uint32_t t = kb.ilocal(), i = kb.ilocal();
    uint32_t im = kb.ilocal(), ip = kb.ilocal();
    uint32_t acc = kb.flocal();
    uint32_t A = kb.arr1(), B = kb.arr1();
    kb.init1(A, i, 1, 2);
    kb.init1(B, i, 2, 3);
    auto sweep = [&](uint32_t dst, uint32_t src) {
        kb.loop(i, 1, n - 1, [&] {
            offsetLocal(kb, im, i, -1);
            offsetLocal(kb, ip, i, 1);
            kb.addr1(dst, i);
            kb.c(1.0 / 3.0);
            kb.load1(src, im);
            kb.load1(src, i);
            f.op(Opcode::F64Add);
            kb.load1(src, ip);
            f.op(Opcode::F64Add);
            f.op(Opcode::F64Mul);
            kb.store();
        });
    };
    kb.loop(t, 0, tsteps(kb), [&] {
        sweep(B, A);
        sweep(A, B);
    });
    kb.sum1(A, i, acc);
    f.localGet(acc);
}

void
emitJacobi2d(KB &kb)
{
    auto &f = kb.f;
    const int n = kb.n;
    uint32_t t = kb.ilocal(), i = kb.ilocal(), j = kb.ilocal();
    uint32_t im = kb.ilocal(), ip = kb.ilocal(), jm = kb.ilocal(),
             jp = kb.ilocal();
    uint32_t acc = kb.flocal();
    uint32_t A = kb.arr2(), B = kb.arr2();
    kb.init2(A, i, j, 1, 1, 1);
    kb.init2(B, i, j, 1, 2, 2);
    auto sweep = [&](uint32_t dst, uint32_t src) {
        kb.loop(i, 1, n - 1, [&] {
            kb.loop(j, 1, n - 1, [&] {
                offsetLocal(kb, im, i, -1);
                offsetLocal(kb, ip, i, 1);
                offsetLocal(kb, jm, j, -1);
                offsetLocal(kb, jp, j, 1);
                kb.addr2(dst, i, j);
                kb.c(0.2);
                kb.load2(src, i, j);
                kb.load2(src, i, jm);
                f.op(Opcode::F64Add);
                kb.load2(src, i, jp);
                f.op(Opcode::F64Add);
                kb.load2(src, ip, j);
                f.op(Opcode::F64Add);
                kb.load2(src, im, j);
                f.op(Opcode::F64Add);
                f.op(Opcode::F64Mul);
                kb.store();
            });
        });
    };
    kb.loop(t, 0, tsteps(kb), [&] {
        sweep(B, A);
        sweep(A, B);
    });
    kb.sum2(A, i, j, acc);
    f.localGet(acc);
}

void
emitSeidel2d(KB &kb)
{
    auto &f = kb.f;
    const int n = kb.n;
    uint32_t t = kb.ilocal(), i = kb.ilocal(), j = kb.ilocal();
    uint32_t im = kb.ilocal(), ip = kb.ilocal(), jm = kb.ilocal(),
             jp = kb.ilocal();
    uint32_t acc = kb.flocal();
    uint32_t A = kb.arr2();
    kb.init2(A, i, j, 1, 1, 2);
    kb.loop(t, 0, tsteps(kb), [&] {
        kb.loop(i, 1, n - 1, [&] {
            kb.loop(j, 1, n - 1, [&] {
                offsetLocal(kb, im, i, -1);
                offsetLocal(kb, ip, i, 1);
                offsetLocal(kb, jm, j, -1);
                offsetLocal(kb, jp, j, 1);
                kb.addr2(A, i, j);
                kb.load2(A, im, jm);
                kb.load2(A, im, j);
                f.op(Opcode::F64Add);
                kb.load2(A, im, jp);
                f.op(Opcode::F64Add);
                kb.load2(A, i, jm);
                f.op(Opcode::F64Add);
                kb.load2(A, i, j);
                f.op(Opcode::F64Add);
                kb.load2(A, i, jp);
                f.op(Opcode::F64Add);
                kb.load2(A, ip, jm);
                f.op(Opcode::F64Add);
                kb.load2(A, ip, j);
                f.op(Opcode::F64Add);
                kb.load2(A, ip, jp);
                f.op(Opcode::F64Add);
                kb.c(9.0);
                f.op(Opcode::F64Div);
                kb.store();
            });
        });
    });
    kb.sum2(A, i, j, acc);
    f.localGet(acc);
}

} // namespace wasabi::workloads
