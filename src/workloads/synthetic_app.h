/**
 * @file
 * Synthetic large-application workloads — the repository's stand-ins
 * for the paper's two real-world programs (the Unreal Engine 4 Zen
 * Garden demo, 39.5 MB, and the PSPDFKit benchmark, 9.5 MB), which are
 * proprietary binaries we cannot ship. Per DESIGN.md the substitution
 * preserves what matters for the experiments: large function counts
 * and *diverse* code (calls, indirect calls, branchy control flow,
 * mixed types) rather than the numeric-kernel profile of PolyBench.
 */

#ifndef WASABI_WORKLOADS_SYNTHETIC_APP_H
#define WASABI_WORKLOADS_SYNTHETIC_APP_H

#include "workloads/workload.h"

namespace wasabi::workloads {

/** Size classes mirroring the paper's two applications. */
enum class AppSize {
    Small,       ///< quick tests
    PdfkitLike,  ///< medium, ~hundreds of functions
    UnrealLike,  ///< large, ~thousands of functions
};

/** Build a synthetic application of the given size class. Exports
 * "main: [i32] -> [i64]". Deterministic. */
Workload syntheticApp(AppSize size, uint64_t seed = 7);

} // namespace wasabi::workloads

#endif // WASABI_WORKLOADS_SYNTHETIC_APP_H
