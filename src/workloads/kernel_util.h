/**
 * @file
 * Shared emission helpers for the PolyBench kernel builders: array
 * layout in linear memory, address computation, counted and dynamic
 * loops, deterministic initializers and checksums. All arrays are f64
 * unless the i32 variants are used (floyd-warshall, nussinov).
 */

#ifndef WASABI_WORKLOADS_KERNEL_UTIL_H
#define WASABI_WORKLOADS_KERNEL_UTIL_H

#include <functional>

#include "wasm/builder.h"

namespace wasabi::workloads {

/**
 * Kernel builder: wraps a FunctionBuilder with PolyBench-style
 * helpers. One KB instance drives the whole `kernel` function of one
 * benchmark. Loop variables are i32 locals; floating state is f64.
 */
struct KB {
    wasm::FunctionBuilder &f;
    /** Problem size N (arrays are N, NxN or NxNxN). */
    int n;
    /** Next free byte offset in linear memory. */
    uint32_t nextOffset = 64;

    KB(wasm::FunctionBuilder &fb, int size) : f(fb), n(size) {}

    // ----- array allocation (byte offsets) ---------------------------

    uint32_t
    alloc(uint32_t elems, uint32_t elem_size = 8)
    {
        uint32_t base = nextOffset;
        nextOffset += elems * elem_size;
        return base;
    }

    uint32_t arr1() { return alloc(n); }
    uint32_t arr2() { return alloc(n * n); }
    uint32_t arr3() { return alloc(n * n * n); }
    uint32_t arr1i() { return alloc(n, 4); }
    uint32_t arr2i() { return alloc(n * n, 4); }

    // ----- locals -----------------------------------------------------

    uint32_t ilocal() { return f.addLocal(wasm::ValType::I32); }
    uint32_t flocal() { return f.addLocal(wasm::ValType::F64); }

    // ----- loops -------------------------------------------------------

    /** for (var = from; var < to; ++var) body(); */
    void
    loop(uint32_t var, int from, int to, const std::function<void()> &body)
    {
        f.forLoop(var, from, to, body);
    }

    /**
     * Fully dynamic loop: for (var = <push_from()>; var < <push_to()>;
     * ++var) body(). push_from/push_to must each push one i32.
     */
    void
    loopDyn(uint32_t var, const std::function<void()> &push_from,
            const std::function<void()> &push_to,
            const std::function<void()> &body)
    {
        push_from();
        f.localSet(var);
        f.block();
        f.loop();
        f.localGet(var);
        push_to();
        f.op(wasm::Opcode::I32GeS);
        f.brIf(1);
        body();
        f.localGet(var);
        f.i32Const(1);
        f.op(wasm::Opcode::I32Add);
        f.localSet(var);
        f.br(0);
        f.end();
        f.end();
    }

    /** for (var = from_local; var < n; ...) — common triangular form. */
    void
    loopFrom(uint32_t var, uint32_t from_local,
             const std::function<void()> &body)
    {
        loopDyn(
            var, [&] { f.localGet(from_local); },
            [&] { f.i32Const(n); }, body);
    }

    /** for (var = 0; var < to_local; ...) */
    void
    loopTo(uint32_t var, uint32_t to_local,
           const std::function<void()> &body)
    {
        loopDyn(
            var, [&] { f.i32Const(0); },
            [&] { f.localGet(to_local); }, body);
    }

    // ----- addresses (push an i32 address) -----------------------------

    void
    addr1(uint32_t base, uint32_t iv, uint32_t elem_size = 8)
    {
        f.localGet(iv);
        f.i32Const(static_cast<int32_t>(elem_size));
        f.op(wasm::Opcode::I32Mul);
        f.i32Const(static_cast<int32_t>(base));
        f.op(wasm::Opcode::I32Add);
    }

    void
    addr2(uint32_t base, uint32_t iv, uint32_t jv, uint32_t elem_size = 8)
    {
        f.localGet(iv);
        f.i32Const(n);
        f.op(wasm::Opcode::I32Mul);
        f.localGet(jv);
        f.op(wasm::Opcode::I32Add);
        f.i32Const(static_cast<int32_t>(elem_size));
        f.op(wasm::Opcode::I32Mul);
        f.i32Const(static_cast<int32_t>(base));
        f.op(wasm::Opcode::I32Add);
    }

    void
    addr3(uint32_t base, uint32_t iv, uint32_t jv, uint32_t kv)
    {
        f.localGet(iv);
        f.i32Const(n);
        f.op(wasm::Opcode::I32Mul);
        f.localGet(jv);
        f.op(wasm::Opcode::I32Add);
        f.i32Const(n);
        f.op(wasm::Opcode::I32Mul);
        f.localGet(kv);
        f.op(wasm::Opcode::I32Add);
        f.i32Const(8);
        f.op(wasm::Opcode::I32Mul);
        f.i32Const(static_cast<int32_t>(base));
        f.op(wasm::Opcode::I32Add);
    }

    // ----- loads (push an f64/i32 value) --------------------------------

    void load1(uint32_t base, uint32_t iv) { addr1(base, iv); f.f64Load(); }
    void
    load2(uint32_t base, uint32_t iv, uint32_t jv)
    {
        addr2(base, iv, jv);
        f.f64Load();
    }
    void
    load3(uint32_t base, uint32_t iv, uint32_t jv, uint32_t kv)
    {
        addr3(base, iv, jv, kv);
        f.f64Load();
    }
    void
    load2i(uint32_t base, uint32_t iv, uint32_t jv)
    {
        addr2(base, iv, jv, 4);
        f.i32Load();
    }
    void
    load1i(uint32_t base, uint32_t iv)
    {
        addr1(base, iv, 4);
        f.i32Load();
    }

    // Stores: push the address with addrN, push the value, then:
    void store() { f.f64Store(); }
    void storei() { f.i32Store(); }

    // ----- constants and conversions ------------------------------------

    void c(double v) { f.f64Const(v); }

    /** Convert the i32 on the stack top to f64. */
    void toF64() { f.op(wasm::Opcode::F64ConvertI32S); }

    // ----- deterministic initializers ------------------------------------

    /** Push ((i*mi + j*mj + add) % n) / n as f64 (uses locals iv, jv). */
    void
    valIJ(uint32_t iv, uint32_t jv, int mi = 1, int mj = 1, int add = 1)
    {
        f.localGet(iv);
        f.i32Const(mi);
        f.op(wasm::Opcode::I32Mul);
        f.localGet(jv);
        f.i32Const(mj);
        f.op(wasm::Opcode::I32Mul);
        f.op(wasm::Opcode::I32Add);
        f.i32Const(add);
        f.op(wasm::Opcode::I32Add);
        f.i32Const(n);
        f.op(wasm::Opcode::I32RemS);
        toF64();
        c(static_cast<double>(n));
        f.op(wasm::Opcode::F64Div);
    }

    /** A[i][j] = ((i*mi + j*mj + add) % n) / n for all i, j. */
    void
    init2(uint32_t base, uint32_t iv, uint32_t jv, int mi = 1, int mj = 1,
          int add = 1)
    {
        loop(iv, 0, n, [&] {
            loop(jv, 0, n, [&] {
                addr2(base, iv, jv);
                valIJ(iv, jv, mi, mj, add);
                store();
            });
        });
    }

    /** x[i] = ((i*mi + add) % n) / n for all i. */
    void
    init1(uint32_t base, uint32_t iv, int mi = 1, int add = 1)
    {
        loop(iv, 0, n, [&] {
            addr1(base, iv);
            f.localGet(iv);
            f.i32Const(mi);
            f.op(wasm::Opcode::I32Mul);
            f.i32Const(add);
            f.op(wasm::Opcode::I32Add);
            f.i32Const(n);
            f.op(wasm::Opcode::I32RemS);
            toF64();
            c(static_cast<double>(n));
            f.op(wasm::Opcode::F64Div);
            store();
        });
    }

    /** Make the diagonal of A dominant: A[i][i] += bump (for solvers). */
    void
    dominantDiag(uint32_t base, uint32_t iv, double bump)
    {
        loop(iv, 0, n, [&] {
            addr2(base, iv, iv);
            load2(base, iv, iv);
            c(bump);
            f.op(wasm::Opcode::F64Add);
            store();
        });
    }

    // ----- checksums -----------------------------------------------------

    /** acc += sum of 1-D array. */
    void
    sum1(uint32_t base, uint32_t iv, uint32_t acc)
    {
        loop(iv, 0, n, [&] {
            f.localGet(acc);
            load1(base, iv);
            f.op(wasm::Opcode::F64Add);
            f.localSet(acc);
        });
    }

    /** acc += sum of 2-D array. */
    void
    sum2(uint32_t base, uint32_t iv, uint32_t jv, uint32_t acc)
    {
        loop(iv, 0, n, [&] {
            loop(jv, 0, n, [&] {
                f.localGet(acc);
                load2(base, iv, jv);
                f.op(wasm::Opcode::F64Add);
                f.localSet(acc);
            });
        });
    }

    /** acc += sum of 2-D i32 array (converted). */
    void
    sum2i(uint32_t base, uint32_t iv, uint32_t jv, uint32_t acc)
    {
        loop(iv, 0, n, [&] {
            loop(jv, 0, n, [&] {
                f.localGet(acc);
                load2i(base, iv, jv);
                toF64();
                f.op(wasm::Opcode::F64Add);
                f.localSet(acc);
            });
        });
    }
};

} // namespace wasabi::workloads

#endif // WASABI_WORKLOADS_KERNEL_UTIL_H
