/**
 * @file
 * WebAssembly traps, modeled as a C++ exception carrying a trap kind.
 * The differential (original vs. instrumented) tests compare execution
 * outcomes as "result values or trap kind", so kinds must be stable.
 */

#ifndef WASABI_INTERP_TRAP_H
#define WASABI_INTERP_TRAP_H

#include <stdexcept>
#include <string>

namespace wasabi::interp {

/** Reasons a WebAssembly computation can trap. */
enum class TrapKind {
    Unreachable,
    MemoryOutOfBounds,
    DivByZero,
    IntegerOverflow,
    InvalidConversion,   ///< float-to-int truncation of NaN
    IndirectCallTypeMismatch,
    UninitializedTableElement,
    TableOutOfBounds,
    CallStackExhausted,
    FuelExhausted,       ///< engine-imposed instruction budget
    HostError,           ///< raised by a host function
    /** The engine detected a broken internal invariant (corrupt frame
     * height at function exit, a host function returning the wrong
     * result arity, untranslatable code). Unlike the other kinds this
     * never occurs for valid modules and well-behaved hosts; it
     * replaces what used to be a debug-only assert so that Release
     * builds trap instead of silently returning garbage. */
    InternalError,
};

/** Short name of a trap kind, e.g. "divide by zero". */
const char *name(TrapKind kind);

/** Exception thrown when execution traps. */
class Trap : public std::runtime_error {
  public:
    explicit Trap(TrapKind kind)
        : std::runtime_error(std::string("trap: ") + name(kind)),
          kind_(kind)
    {
    }

    Trap(TrapKind kind, const std::string &detail)
        : std::runtime_error(std::string("trap: ") + name(kind) + ": " +
                             detail),
          kind_(kind)
    {
    }

    TrapKind kind() const { return kind_; }

  private:
    TrapKind kind_;
};

} // namespace wasabi::interp

#endif // WASABI_INTERP_TRAP_H
