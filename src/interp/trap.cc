#include "interp/trap.h"

namespace wasabi::interp {

const char *
name(TrapKind kind)
{
    switch (kind) {
      case TrapKind::Unreachable: return "unreachable executed";
      case TrapKind::MemoryOutOfBounds:
        return "out of bounds memory access";
      case TrapKind::DivByZero: return "integer divide by zero";
      case TrapKind::IntegerOverflow: return "integer overflow";
      case TrapKind::InvalidConversion:
        return "invalid conversion to integer";
      case TrapKind::IndirectCallTypeMismatch:
        return "indirect call type mismatch";
      case TrapKind::UninitializedTableElement:
        return "uninitialized table element";
      case TrapKind::TableOutOfBounds:
        return "undefined table element";
      case TrapKind::CallStackExhausted: return "call stack exhausted";
      case TrapKind::FuelExhausted: return "fuel exhausted";
      case TrapKind::HostError: return "host function error";
      case TrapKind::InternalError: return "internal engine error";
    }
    return "?";
}

} // namespace wasabi::interp
