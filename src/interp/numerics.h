/**
 * @file
 * Evaluation of all WebAssembly numeric instructions (unary, binary,
 * and conversions), with spec-conformant trapping behavior for
 * division and float-to-integer truncation.
 */

#ifndef WASABI_INTERP_NUMERICS_H
#define WASABI_INTERP_NUMERICS_H

#include <bit>
#include <cmath>
#include <cstdint>

#include "wasm/opcode.h"
#include "wasm/types.h"

namespace wasabi::interp {

/**
 * Map any NaN produced by a float arithmetic instruction to the
 * canonical quiet NaN (positive sign, MSB-only payload). The Wasm
 * spec leaves NaN payloads nondeterministic, and with two NaN inputs
 * x86 returns whichever operand the compiler placed in the
 * destination register — so two compilations of the same `l + r`
 * expression can legally disagree. Both engines canonicalize instead
 * (always a permitted result), which keeps the engine-differential
 * gate byte-exact. Bit-preserving instructions (abs/neg/copysign,
 * reinterpret, load/store, const) must NOT go through this.
 */
inline float
canonNaN(float x)
{
    return std::isnan(x) ? std::bit_cast<float>(UINT32_C(0x7fc00000)) : x;
}

/** double overload; canonical bits 0x7ff8000000000000. */
inline double
canonNaN(double x)
{
    return std::isnan(x)
        ? std::bit_cast<double>(UINT64_C(0x7ff8000000000000))
        : x;
}

/** Evaluate a unary operation (including eqz and all conversions). */
wasm::Value evalUnary(wasm::Opcode op, wasm::Value input);

/** Evaluate a binary operation (arithmetic and comparisons). */
wasm::Value evalBinary(wasm::Opcode op, wasm::Value lhs, wasm::Value rhs);

/** True for the unary opcodes that can trap (float-to-int
 * truncations); every other unary is a pure value computation. */
bool unaryCanTrap(wasm::Opcode op);

/** True for the binary opcodes that can trap (integer div/rem). */
bool binaryCanTrap(wasm::Opcode op);

/** Assemble the raw little-endian bytes fetched by a load opcode into
 * the typed value it pushes (shared by both execution engines). */
wasm::Value loadedValue(wasm::Opcode op, uint64_t raw);

} // namespace wasabi::interp

#endif // WASABI_INTERP_NUMERICS_H
