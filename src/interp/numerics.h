/**
 * @file
 * Evaluation of all WebAssembly numeric instructions (unary, binary,
 * and conversions), with spec-conformant trapping behavior for
 * division and float-to-integer truncation.
 */

#ifndef WASABI_INTERP_NUMERICS_H
#define WASABI_INTERP_NUMERICS_H

#include "wasm/opcode.h"
#include "wasm/types.h"

namespace wasabi::interp {

/** Evaluate a unary operation (including eqz and all conversions). */
wasm::Value evalUnary(wasm::Opcode op, wasm::Value input);

/** Evaluate a binary operation (arithmetic and comparisons). */
wasm::Value evalBinary(wasm::Opcode op, wasm::Value lhs, wasm::Value rhs);

/** True for the unary opcodes that can trap (float-to-int
 * truncations); every other unary is a pure value computation. */
bool unaryCanTrap(wasm::Opcode op);

/** True for the binary opcodes that can trap (integer div/rem). */
bool binaryCanTrap(wasm::Opcode op);

/** Assemble the raw little-endian bytes fetched by a load opcode into
 * the typed value it pushes (shared by both execution engines). */
wasm::Value loadedValue(wasm::Opcode op, uint64_t raw);

} // namespace wasabi::interp

#endif // WASABI_INTERP_NUMERICS_H
