/**
 * @file
 * Module instances: runtime state (linear memory, table, globals) of
 * an instantiated module, plus the Linker used to resolve imports to
 * host functions.
 *
 * This is the execution-platform substrate of the reproduction: where
 * the paper runs instrumented binaries in a browser engine with hooks
 * imported from JavaScript, we run them on this engine with hooks
 * imported as C++ host functions.
 */

#ifndef WASABI_INTERP_INSTANCE_H
#define WASABI_INTERP_INSTANCE_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "interp/trap.h"
#include "wasm/module.h"

namespace wasabi::interp {

namespace engine {
class CompiledModule;
}

class Instance;

/**
 * A host (imported) function. Receives the calling instance, its
 * arguments, and appends its results to @p results.
 */
using HostFunc = std::function<void(Instance &, std::span<const wasm::Value>,
                                    std::vector<wasm::Value> &)>;

/** Error thrown when instantiation cannot resolve an import. */
class LinkError : public std::runtime_error {
  public:
    explicit LinkError(const std::string &what)
        : std::runtime_error("link error: " + what)
    {
    }
};

/** Resolves (module, name) import pairs to host functions. */
class Linker {
  public:
    /** Register a host function under (module, name). */
    void
    func(const std::string &module, const std::string &name, HostFunc f)
    {
        funcs_[{module, name}] = std::move(f);
    }

    /** Look up a host function; nullptr if absent. */
    const HostFunc *
    find(const std::string &module, const std::string &name) const
    {
        auto it = funcs_.find({module, name});
        return it == funcs_.end() ? nullptr : &it->second;
    }

    /** Copy all registrations of @p other into this linker. */
    void
    merge(const Linker &other)
    {
        for (const auto &[key, fn] : other.funcs_)
            funcs_[key] = fn;
    }

  private:
    std::map<std::pair<std::string, std::string>, HostFunc> funcs_;
};

/** Bounds-checked little-endian linear memory. */
class LinearMemory {
  public:
    LinearMemory() = default;

    explicit LinearMemory(const wasm::Limits &limits)
        : limits_(limits),
          bytes_(static_cast<size_t>(limits.min) * wasm::kPageSize)
    {
    }

    /** Current size in pages. */
    uint32_t
    sizePages() const
    {
        return static_cast<uint32_t>(bytes_.size() / wasm::kPageSize);
    }

    size_t sizeBytes() const { return bytes_.size(); }

    /**
     * Grow by @p delta pages; returns the previous size in pages, or
     * 0xFFFFFFFF on failure — exactly the memory.grow semantics.
     * A grow beyond the page quota (below) fails the same way and is
     * counted in quotaDenials().
     */
    uint32_t grow(uint32_t delta);

    /**
     * Per-request page quota (multi-tenant serving): when set, grow
     * fails (spec-conformant -1, never a trap) once the new size would
     * exceed @p pages, even if the module's declared max allows it.
     * nullopt = no quota. Denials are counted so a later
     * MemoryOutOfBounds trap can be attributed to the quota.
     */
    void
    setPageQuota(std::optional<uint32_t> pages)
    {
        pageQuota_ = pages;
    }
    std::optional<uint32_t> pageQuota() const { return pageQuota_; }

    /** Number of grow attempts denied by the page quota. */
    uint64_t quotaDenials() const { return quotaDenials_; }
    void resetQuotaDenials() { quotaDenials_ = 0; }

    /** Read @p n bytes at effective address @p addr (+ @p offset). */
    const uint8_t *readPtr(uint32_t addr, uint32_t offset, size_t n) const;

    /** Writable pointer with the same bounds checking. */
    uint8_t *writePtr(uint32_t addr, uint32_t offset, size_t n);

    /** Fixed-width little-endian accessors. @{ */
    uint64_t readLE(uint32_t addr, uint32_t offset, size_t n) const;
    void writeLE(uint32_t addr, uint32_t offset, size_t n, uint64_t v);
    /** @} */

    std::vector<uint8_t> &raw() { return bytes_; }
    const std::vector<uint8_t> &raw() const { return bytes_; }

  private:
    wasm::Limits limits_;
    std::vector<uint8_t> bytes_;
    std::optional<uint32_t> pageQuota_;
    uint64_t quotaDenials_ = 0;
};

/** A table of function indices (nullopt = uninitialized element). */
class FuncTable {
  public:
    FuncTable() = default;

    explicit FuncTable(const wasm::Limits &limits)
        : limits_(limits), entries_(limits.min)
    {
    }

    size_t size() const { return entries_.size(); }

    std::optional<uint32_t>
    get(uint32_t idx) const
    {
        if (idx >= entries_.size())
            throw Trap(TrapKind::TableOutOfBounds);
        return entries_[idx];
    }

    void
    set(uint32_t idx, uint32_t func_idx)
    {
        if (idx >= entries_.size())
            throw Trap(TrapKind::TableOutOfBounds);
        entries_[idx] = func_idx;
    }

    /** Raw entries, for snapshot/restore (instance pooling). */
    const std::vector<std::optional<uint32_t>> &
    entries() const
    {
        return entries_;
    }
    void
    setEntries(std::vector<std::optional<uint32_t>> entries)
    {
        entries_ = std::move(entries);
    }

  private:
    wasm::Limits limits_;
    std::vector<std::optional<uint32_t>> entries_;
};

/**
 * Per-function control side table: for each block-opening instruction,
 * the index of its matching `end` (and `else`, if any). Computed once
 * per function on first execution.
 */
struct ControlSideTable {
    struct Entry {
        uint32_t endIdx = 0;
        std::optional<uint32_t> elseIdx;
    };
    /** Keyed by instruction index of the block/loop/if. */
    std::vector<Entry> byInstr; // sparse: valid where opcode opens block
    bool computed = false;
};

/**
 * Post-start runtime state of an instance, captured for instance
 * pooling (DESIGN.md §14): everything instantiation computes that a
 * later request can mutate. Restoring a snapshot onto a pooled
 * instance is byte-equivalent to re-instantiating — segments applied,
 * start function run — without re-doing any of that work.
 */
struct InstanceSnapshot {
    std::vector<uint8_t> memory;
    std::vector<wasm::Value> globals;
    std::vector<std::optional<uint32_t>> table;
};

/**
 * An instantiated module: a shared immutable module AST plus all
 * per-instance mutable runtime state. The module is shared (not
 * copied) so a multi-tenant server can run many instances — and a
 * content-hash cache can hold one decoded copy — of the same module;
 * everything request-mutable (memory, globals, table, fuel, the
 * translation cache) lives per instance.
 * Instantiation applies data/element segments and runs the start
 * function (via the Interpreter).
 */
class Instance {
  public:
    /**
     * Instantiate @p module, resolving imports through @p linker.
     * The shared_ptr overload shares the module; the by-value
     * overload copies it into a fresh shared owner (the historical
     * behavior, kept for the many single-instance callers).
     * @p pre_start, if given, runs after all state is set up but
     * before the start function executes — the attachment point for
     * engine-intrinsic instrumentation, which must observe the start
     * function's hooks (rewrite mode gets this for free because its
     * hooks are imports, resolved before the start runs).
     * @throws LinkError on unresolvable imports, Trap on failing
     * segment bounds or a trapping start function.
     */
    static std::unique_ptr<Instance>
    instantiate(std::shared_ptr<const wasm::Module> module,
                const Linker &linker,
                const std::function<void(Instance &)> &pre_start = {});

    static std::unique_ptr<Instance>
    instantiate(wasm::Module module, const Linker &linker,
                const std::function<void(Instance &)> &pre_start = {})
    {
        return instantiate(std::make_shared<const wasm::Module>(
                               std::move(module)),
                           linker, pre_start);
    }

    ~Instance(); // out of line: engine::CompiledModule is incomplete here

    const wasm::Module &module() const { return *module_; }

    /** The shared immutable module this instance runs (never null). */
    const std::shared_ptr<const wasm::Module> &
    sharedModule() const
    {
        return module_;
    }

    LinearMemory &memory() { return memory_; }
    const LinearMemory &memory() const { return memory_; }

    FuncTable &table() { return table_; }
    const FuncTable &table() const { return table_; }

    wasm::Value
    globalGet(uint32_t idx) const
    {
        return globals_.at(idx);
    }

    void
    globalSet(uint32_t idx, wasm::Value v)
    {
        globals_.at(idx) = v;
    }

    /** Host function bound to imported function @p func_idx. */
    const HostFunc &hostFunc(uint32_t func_idx) const;

    /** Lazily computed control side table for a defined function. */
    const ControlSideTable &sideTable(uint32_t func_idx);

    /** Raw globals storage (for the fast engine's hoisted pointer). */
    wasm::Value *globalsData() { return globals_.data(); }

    /** Lazily built fast-engine code cache for this instance. */
    engine::CompiledModule &engineCode();

    /**
     * Execution fuel: every executed instruction costs 1; when the
     * budget reaches zero execution traps with FuelExhausted.
     * Default: no limit.
     */
    void setFuel(std::optional<uint64_t> fuel) { fuel_ = fuel; }
    std::optional<uint64_t> &fuel() { return fuel_; }

    /**
     * Capture the mutable post-start state (memory, globals, table)
     * for instance pooling. The fuel budget and quota counters are
     * per-request configuration, not program state, and are excluded.
     */
    InstanceSnapshot snapshot() const;

    /**
     * Restore a snapshot taken from an instance of the *same* module:
     * memory is resized back (undoing any memory.grow), globals and
     * table entries are overwritten, fuel and the memory quota are
     * cleared. Cached translations and side tables are keyed to the
     * immutable module and stay valid — that retention is exactly the
     * warm-instance win of the serve pool.
     */
    void restore(const InstanceSnapshot &snap);

  private:
    friend class Interpreter;

    Instance() = default;

    std::shared_ptr<const wasm::Module> module_;
    std::vector<HostFunc> hostFuncs_; ///< indexed by imported func idx
    LinearMemory memory_;
    FuncTable table_;
    std::vector<wasm::Value> globals_;
    std::vector<ControlSideTable> sideTables_;
    std::unique_ptr<engine::CompiledModule> engineCode_;
    std::optional<uint64_t> fuel_;
};

} // namespace wasabi::interp

#endif // WASABI_INTERP_INSTANCE_H
