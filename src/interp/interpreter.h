/**
 * @file
 * The execution engine: a structured-control-flow interpreter over the
 * flat instruction representation, using per-function control side
 * tables to resolve block ends and else branches.
 */

#ifndef WASABI_INTERP_INTERPRETER_H
#define WASABI_INTERP_INTERPRETER_H

#include <span>
#include <string>
#include <vector>

#include "interp/instance.h"

namespace wasabi::interp {

/** Cheap execution counters, maintained on paths that already touch
 * adjacent state (fuel, the instruction counter); the observability
 * layer snapshots them after a run. */
struct ExecStats {
    uint64_t instructions = 0; ///< instructions retired
    uint64_t calls = 0;        ///< call + call_indirect executed
    uint64_t memoryOps = 0;    ///< load/store/memory.size/memory.grow
    /** Loads/stores executed through an unchecked (bounds-check
     * elided) fast-engine op; always 0 on the legacy engine and
     * without a licensed claim set. Subset of memoryOps. */
    uint64_t memoryOpsElided = 0;
    uint64_t traps = 0;        ///< traps propagated out of invoke()
};

/** Selects which execution engine an Interpreter runs on. */
enum class EngineKind : uint8_t {
    /** Pre-decoded engine: flat internal code with fused side table,
     * contiguous value stack, batched accounting (the default). */
    Fast,
    /** The original structured tree walker, kept as the differential
     * oracle (`--engine=legacy`). */
    Legacy,
};

/**
 * Executes functions of an Instance. Stateless between invocations
 * apart from configuration, so one Interpreter can be reused.
 */
class Interpreter {
  public:
    /** Maximum nested call depth before CallStackExhausted. */
    size_t maxCallDepth = 1000;

    /** Execution engine; both are observationally identical (results,
     * trap kinds, fuel, ExecStats), enforced by the differential
     * tests. */
    EngineKind engine = EngineKind::Fast;

    /** Invoke function @p func_idx with @p args; returns its results.
     * @throws Trap on any trapping execution. */
    std::vector<wasm::Value> invoke(Instance &inst, uint32_t func_idx,
                                    std::span<const wasm::Value> args);

    /** Invoke an exported function by name. */
    std::vector<wasm::Value> invokeExport(Instance &inst,
                                          const std::string &name,
                                          std::span<const wasm::Value> args);

    /** Total instructions executed by this interpreter (statistics). */
    uint64_t instructionsExecuted() const { return stats_.instructions; }

    /** All execution counters accumulated by this interpreter. */
    const ExecStats &stats() const { return stats_; }

  private:
    std::vector<wasm::Value> callFunction(Instance &inst, uint32_t func_idx,
                                          std::span<const wasm::Value> args,
                                          size_t depth);

    ExecStats stats_;
};

} // namespace wasabi::interp

#endif // WASABI_INTERP_INTERPRETER_H
