#include "interp/numerics.h"

#include <bit>
#include <cmath>
#include <limits>

#include "interp/trap.h"

namespace wasabi::interp {

using wasm::Opcode;
using wasm::Value;

namespace {

/** i32/i64 boolean result. */
Value
b(bool v)
{
    return Value::makeI32(v ? 1 : 0);
}

/** Wasm float min: NaN-propagating, -0 < +0. */
template <typename F>
F
wasmMin(F a, F b)
{
    if (std::isnan(a) || std::isnan(b))
        return std::numeric_limits<F>::quiet_NaN();
    if (a == b) // handles +-0: return the negative one
        return std::signbit(a) ? a : b;
    return a < b ? a : b;
}

/** Wasm float max: NaN-propagating, +0 > -0. */
template <typename F>
F
wasmMax(F a, F b)
{
    if (std::isnan(a) || std::isnan(b))
        return std::numeric_limits<F>::quiet_NaN();
    if (a == b)
        return std::signbit(a) ? b : a;
    return a > b ? a : b;
}

/** Round to nearest, ties to even (Wasm `nearest`). */
template <typename F>
F
wasmNearest(F x)
{
    // nearbyint honors the current rounding mode, which defaults to
    // round-to-nearest-even; rint would be equivalent here.
    return std::nearbyint(x);
}

/**
 * Checked float -> signed integer truncation. Traps on NaN and on
 * values outside the representable range after truncation.
 */
template <typename Int, typename F>
Int
truncS(F x)
{
    if (std::isnan(x))
        throw Trap(TrapKind::InvalidConversion);
    F t = std::trunc(x);
    // Exact bounds: t must be >= Int::min and <= Int::max. The upper
    // bound Int::max is not exactly representable, so compare against
    // 2^(bits-1) exclusive.
    constexpr F lo = static_cast<F>(std::numeric_limits<Int>::min());
    constexpr F hi =
        -static_cast<F>(std::numeric_limits<Int>::min()); // 2^(bits-1)
    if (t < lo || t >= hi)
        throw Trap(TrapKind::IntegerOverflow);
    return static_cast<Int>(t);
}

/** Checked float -> unsigned integer truncation. */
template <typename Int, typename F>
Int
truncU(F x)
{
    if (std::isnan(x))
        throw Trap(TrapKind::InvalidConversion);
    F t = std::trunc(x);
    constexpr F hi = static_cast<F>(std::numeric_limits<Int>::max() / 2 + 1) *
        2.0; // 2^bits, exactly representable
    if (t <= static_cast<F>(-1.0) || t >= hi)
        throw Trap(TrapKind::IntegerOverflow);
    return static_cast<Int>(t);
}

template <typename Int>
Int
divS(Int a, Int b)
{
    if (b == 0)
        throw Trap(TrapKind::DivByZero);
    if (a == std::numeric_limits<Int>::min() && b == -1)
        throw Trap(TrapKind::IntegerOverflow);
    return a / b;
}

template <typename Int>
Int
remS(Int a, Int b)
{
    if (b == 0)
        throw Trap(TrapKind::DivByZero);
    if (a == std::numeric_limits<Int>::min() && b == -1)
        return 0;
    return a % b;
}

template <typename UInt>
UInt
divU(UInt a, UInt b)
{
    if (b == 0)
        throw Trap(TrapKind::DivByZero);
    return a / b;
}

template <typename UInt>
UInt
remU(UInt a, UInt b)
{
    if (b == 0)
        throw Trap(TrapKind::DivByZero);
    return a % b;
}

} // namespace

Value
evalUnary(Opcode op, Value in)
{
    switch (op) {
      case Opcode::I32Eqz: return b(in.i32() == 0);
      case Opcode::I64Eqz: return b(in.i64() == 0);

      case Opcode::I32Clz:
        return Value::makeI32(std::countl_zero(in.i32()));
      case Opcode::I32Ctz:
        return Value::makeI32(std::countr_zero(in.i32()));
      case Opcode::I32Popcnt:
        return Value::makeI32(std::popcount(in.i32()));
      case Opcode::I64Clz:
        return Value::makeI64(std::countl_zero(in.i64()));
      case Opcode::I64Ctz:
        return Value::makeI64(std::countr_zero(in.i64()));
      case Opcode::I64Popcnt:
        return Value::makeI64(std::popcount(in.i64()));

      case Opcode::F32Abs: return Value::makeF32(std::fabs(in.f32()));
      case Opcode::F32Neg: return Value::makeF32(-in.f32());
      case Opcode::F32Ceil:
        return Value::makeF32(canonNaN(std::ceil(in.f32())));
      case Opcode::F32Floor:
        return Value::makeF32(canonNaN(std::floor(in.f32())));
      case Opcode::F32Trunc:
        return Value::makeF32(canonNaN(std::trunc(in.f32())));
      case Opcode::F32Nearest:
        return Value::makeF32(canonNaN(wasmNearest(in.f32())));
      case Opcode::F32Sqrt:
        return Value::makeF32(canonNaN(std::sqrt(in.f32())));
      case Opcode::F64Abs: return Value::makeF64(std::fabs(in.f64()));
      case Opcode::F64Neg: return Value::makeF64(-in.f64());
      case Opcode::F64Ceil:
        return Value::makeF64(canonNaN(std::ceil(in.f64())));
      case Opcode::F64Floor:
        return Value::makeF64(canonNaN(std::floor(in.f64())));
      case Opcode::F64Trunc:
        return Value::makeF64(canonNaN(std::trunc(in.f64())));
      case Opcode::F64Nearest:
        return Value::makeF64(canonNaN(wasmNearest(in.f64())));
      case Opcode::F64Sqrt:
        return Value::makeF64(canonNaN(std::sqrt(in.f64())));

      case Opcode::I32WrapI64:
        return Value::makeI32(static_cast<uint32_t>(in.i64()));
      case Opcode::I32TruncF32S:
        return Value::makeI32(
            static_cast<uint32_t>(truncS<int32_t>(in.f32())));
      case Opcode::I32TruncF32U:
        return Value::makeI32(truncU<uint32_t>(in.f32()));
      case Opcode::I32TruncF64S:
        return Value::makeI32(
            static_cast<uint32_t>(truncS<int32_t>(in.f64())));
      case Opcode::I32TruncF64U:
        return Value::makeI32(truncU<uint32_t>(in.f64()));
      case Opcode::I64ExtendI32S:
        return Value::makeI64(
            static_cast<uint64_t>(static_cast<int64_t>(in.i32s())));
      case Opcode::I64ExtendI32U:
        return Value::makeI64(in.i32());
      case Opcode::I64TruncF32S:
        return Value::makeI64(
            static_cast<uint64_t>(truncS<int64_t>(in.f32())));
      case Opcode::I64TruncF32U:
        return Value::makeI64(truncU<uint64_t>(in.f32()));
      case Opcode::I64TruncF64S:
        return Value::makeI64(
            static_cast<uint64_t>(truncS<int64_t>(in.f64())));
      case Opcode::I64TruncF64U:
        return Value::makeI64(truncU<uint64_t>(in.f64()));
      case Opcode::F32ConvertI32S:
        return Value::makeF32(static_cast<float>(in.i32s()));
      case Opcode::F32ConvertI32U:
        return Value::makeF32(static_cast<float>(in.i32()));
      case Opcode::F32ConvertI64S:
        return Value::makeF32(static_cast<float>(in.i64s()));
      case Opcode::F32ConvertI64U:
        return Value::makeF32(static_cast<float>(in.i64()));
      case Opcode::F32DemoteF64:
        return Value::makeF32(canonNaN(static_cast<float>(in.f64())));
      case Opcode::F64ConvertI32S:
        return Value::makeF64(static_cast<double>(in.i32s()));
      case Opcode::F64ConvertI32U:
        return Value::makeF64(static_cast<double>(in.i32()));
      case Opcode::F64ConvertI64S:
        return Value::makeF64(static_cast<double>(in.i64s()));
      case Opcode::F64ConvertI64U:
        return Value::makeF64(static_cast<double>(in.i64()));
      case Opcode::F64PromoteF32:
        return Value::makeF64(canonNaN(static_cast<double>(in.f32())));
      case Opcode::I32ReinterpretF32:
        return Value::makeI32(in.i32()); // same bits, new type
      case Opcode::I64ReinterpretF64:
        return Value::makeI64(in.i64());
      case Opcode::F32ReinterpretI32:
        return Value(wasm::ValType::F32, in.i32());
      case Opcode::F64ReinterpretI64:
        return Value(wasm::ValType::F64, in.i64());

      default:
        throw std::logic_error(std::string("evalUnary: not unary: ") +
                               wasm::name(op));
    }
}

Value
evalBinary(Opcode op, Value l, Value r)
{
    switch (op) {
      // --- i32 comparisons.
      case Opcode::I32Eq: return b(l.i32() == r.i32());
      case Opcode::I32Ne: return b(l.i32() != r.i32());
      case Opcode::I32LtS: return b(l.i32s() < r.i32s());
      case Opcode::I32LtU: return b(l.i32() < r.i32());
      case Opcode::I32GtS: return b(l.i32s() > r.i32s());
      case Opcode::I32GtU: return b(l.i32() > r.i32());
      case Opcode::I32LeS: return b(l.i32s() <= r.i32s());
      case Opcode::I32LeU: return b(l.i32() <= r.i32());
      case Opcode::I32GeS: return b(l.i32s() >= r.i32s());
      case Opcode::I32GeU: return b(l.i32() >= r.i32());
      // --- i64 comparisons.
      case Opcode::I64Eq: return b(l.i64() == r.i64());
      case Opcode::I64Ne: return b(l.i64() != r.i64());
      case Opcode::I64LtS: return b(l.i64s() < r.i64s());
      case Opcode::I64LtU: return b(l.i64() < r.i64());
      case Opcode::I64GtS: return b(l.i64s() > r.i64s());
      case Opcode::I64GtU: return b(l.i64() > r.i64());
      case Opcode::I64LeS: return b(l.i64s() <= r.i64s());
      case Opcode::I64LeU: return b(l.i64() <= r.i64());
      case Opcode::I64GeS: return b(l.i64s() >= r.i64s());
      case Opcode::I64GeU: return b(l.i64() >= r.i64());
      // --- float comparisons.
      case Opcode::F32Eq: return b(l.f32() == r.f32());
      case Opcode::F32Ne: return b(l.f32() != r.f32());
      case Opcode::F32Lt: return b(l.f32() < r.f32());
      case Opcode::F32Gt: return b(l.f32() > r.f32());
      case Opcode::F32Le: return b(l.f32() <= r.f32());
      case Opcode::F32Ge: return b(l.f32() >= r.f32());
      case Opcode::F64Eq: return b(l.f64() == r.f64());
      case Opcode::F64Ne: return b(l.f64() != r.f64());
      case Opcode::F64Lt: return b(l.f64() < r.f64());
      case Opcode::F64Gt: return b(l.f64() > r.f64());
      case Opcode::F64Le: return b(l.f64() <= r.f64());
      case Opcode::F64Ge: return b(l.f64() >= r.f64());

      // --- i32 arithmetic.
      case Opcode::I32Add: return Value::makeI32(l.i32() + r.i32());
      case Opcode::I32Sub: return Value::makeI32(l.i32() - r.i32());
      case Opcode::I32Mul: return Value::makeI32(l.i32() * r.i32());
      case Opcode::I32DivS:
        return Value::makeI32(
            static_cast<uint32_t>(divS<int32_t>(l.i32s(), r.i32s())));
      case Opcode::I32DivU:
        return Value::makeI32(divU<uint32_t>(l.i32(), r.i32()));
      case Opcode::I32RemS:
        return Value::makeI32(
            static_cast<uint32_t>(remS<int32_t>(l.i32s(), r.i32s())));
      case Opcode::I32RemU:
        return Value::makeI32(remU<uint32_t>(l.i32(), r.i32()));
      case Opcode::I32And: return Value::makeI32(l.i32() & r.i32());
      case Opcode::I32Or: return Value::makeI32(l.i32() | r.i32());
      case Opcode::I32Xor: return Value::makeI32(l.i32() ^ r.i32());
      case Opcode::I32Shl:
        return Value::makeI32(l.i32() << (r.i32() & 31));
      case Opcode::I32ShrS:
        return Value::makeI32(
            static_cast<uint32_t>(l.i32s() >> (r.i32() & 31)));
      case Opcode::I32ShrU:
        return Value::makeI32(l.i32() >> (r.i32() & 31));
      case Opcode::I32Rotl:
        return Value::makeI32(std::rotl(l.i32(), r.i32() & 31));
      case Opcode::I32Rotr:
        return Value::makeI32(std::rotr(l.i32(), r.i32() & 31));
      // --- i64 arithmetic.
      case Opcode::I64Add: return Value::makeI64(l.i64() + r.i64());
      case Opcode::I64Sub: return Value::makeI64(l.i64() - r.i64());
      case Opcode::I64Mul: return Value::makeI64(l.i64() * r.i64());
      case Opcode::I64DivS:
        return Value::makeI64(
            static_cast<uint64_t>(divS<int64_t>(l.i64s(), r.i64s())));
      case Opcode::I64DivU:
        return Value::makeI64(divU<uint64_t>(l.i64(), r.i64()));
      case Opcode::I64RemS:
        return Value::makeI64(
            static_cast<uint64_t>(remS<int64_t>(l.i64s(), r.i64s())));
      case Opcode::I64RemU:
        return Value::makeI64(remU<uint64_t>(l.i64(), r.i64()));
      case Opcode::I64And: return Value::makeI64(l.i64() & r.i64());
      case Opcode::I64Or: return Value::makeI64(l.i64() | r.i64());
      case Opcode::I64Xor: return Value::makeI64(l.i64() ^ r.i64());
      case Opcode::I64Shl:
        return Value::makeI64(l.i64() << (r.i64() & 63));
      case Opcode::I64ShrS:
        return Value::makeI64(
            static_cast<uint64_t>(l.i64s() >> (r.i64() & 63)));
      case Opcode::I64ShrU:
        return Value::makeI64(l.i64() >> (r.i64() & 63));
      case Opcode::I64Rotl:
        return Value::makeI64(std::rotl(l.i64(), r.i64() & 63));
      case Opcode::I64Rotr:
        return Value::makeI64(std::rotr(l.i64(), r.i64() & 63));
      // --- f32 arithmetic.
      case Opcode::F32Add:
        return Value::makeF32(canonNaN(l.f32() + r.f32()));
      case Opcode::F32Sub:
        return Value::makeF32(canonNaN(l.f32() - r.f32()));
      case Opcode::F32Mul:
        return Value::makeF32(canonNaN(l.f32() * r.f32()));
      case Opcode::F32Div:
        return Value::makeF32(canonNaN(l.f32() / r.f32()));
      case Opcode::F32Min:
        return Value::makeF32(wasmMin(l.f32(), r.f32()));
      case Opcode::F32Max:
        return Value::makeF32(wasmMax(l.f32(), r.f32()));
      case Opcode::F32Copysign:
        return Value::makeF32(std::copysign(l.f32(), r.f32()));
      // --- f64 arithmetic.
      case Opcode::F64Add:
        return Value::makeF64(canonNaN(l.f64() + r.f64()));
      case Opcode::F64Sub:
        return Value::makeF64(canonNaN(l.f64() - r.f64()));
      case Opcode::F64Mul:
        return Value::makeF64(canonNaN(l.f64() * r.f64()));
      case Opcode::F64Div:
        return Value::makeF64(canonNaN(l.f64() / r.f64()));
      case Opcode::F64Min:
        return Value::makeF64(wasmMin(l.f64(), r.f64()));
      case Opcode::F64Max:
        return Value::makeF64(wasmMax(l.f64(), r.f64()));
      case Opcode::F64Copysign:
        return Value::makeF64(std::copysign(l.f64(), r.f64()));

      default:
        throw std::logic_error(std::string("evalBinary: not binary: ") +
                               wasm::name(op));
    }
}

bool
unaryCanTrap(Opcode op)
{
    switch (op) {
      case Opcode::I32TruncF32S:
      case Opcode::I32TruncF32U:
      case Opcode::I32TruncF64S:
      case Opcode::I32TruncF64U:
      case Opcode::I64TruncF32S:
      case Opcode::I64TruncF32U:
      case Opcode::I64TruncF64S:
      case Opcode::I64TruncF64U:
        return true;
      default:
        return false;
    }
}

bool
binaryCanTrap(Opcode op)
{
    switch (op) {
      case Opcode::I32DivS:
      case Opcode::I32DivU:
      case Opcode::I32RemS:
      case Opcode::I32RemU:
      case Opcode::I64DivS:
      case Opcode::I64DivU:
      case Opcode::I64RemS:
      case Opcode::I64RemU:
        return true;
      default:
        return false;
    }
}

Value
loadedValue(Opcode op, uint64_t raw)
{
    using wasm::ValType;
    switch (op) {
      case Opcode::I32Load:
        return Value::makeI32(static_cast<uint32_t>(raw));
      case Opcode::I64Load:
        return Value::makeI64(raw);
      case Opcode::F32Load:
        return Value(ValType::F32, static_cast<uint32_t>(raw));
      case Opcode::F64Load:
        return Value(ValType::F64, raw);
      case Opcode::I32Load8S:
        return Value::makeI32(static_cast<uint32_t>(
            static_cast<int32_t>(static_cast<int8_t>(raw))));
      case Opcode::I32Load8U:
        return Value::makeI32(static_cast<uint32_t>(raw & 0xFF));
      case Opcode::I32Load16S:
        return Value::makeI32(static_cast<uint32_t>(
            static_cast<int32_t>(static_cast<int16_t>(raw))));
      case Opcode::I32Load16U:
        return Value::makeI32(static_cast<uint32_t>(raw & 0xFFFF));
      case Opcode::I64Load8S:
        return Value::makeI64(static_cast<uint64_t>(
            static_cast<int64_t>(static_cast<int8_t>(raw))));
      case Opcode::I64Load8U:
        return Value::makeI64(raw & 0xFF);
      case Opcode::I64Load16S:
        return Value::makeI64(static_cast<uint64_t>(
            static_cast<int64_t>(static_cast<int16_t>(raw))));
      case Opcode::I64Load16U:
        return Value::makeI64(raw & 0xFFFF);
      case Opcode::I64Load32S:
        return Value::makeI64(static_cast<uint64_t>(
            static_cast<int64_t>(static_cast<int32_t>(raw))));
      case Opcode::I64Load32U:
        return Value::makeI64(raw & 0xFFFFFFFF);
      default:
        throw std::logic_error(std::string("loadedValue: not a load: ") +
                               wasm::name(op));
    }
}

} // namespace wasabi::interp
