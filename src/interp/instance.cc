#include "interp/instance.h"

#include <cstring>

#include "interp/engine/code.h"
#include "interp/interpreter.h"

namespace wasabi::interp {

using wasm::Module;
using wasm::Value;

Instance::~Instance() = default;

engine::CompiledModule &
Instance::engineCode()
{
    if (!engineCode_)
        engineCode_ = std::make_unique<engine::CompiledModule>(*module_);
    return *engineCode_;
}

uint32_t
LinearMemory::grow(uint32_t delta)
{
    uint32_t prev = sizePages();
    uint64_t new_pages = static_cast<uint64_t>(prev) + delta;
    uint32_t max = limits_.max.value_or(65536);
    if (new_pages > max || new_pages > 65536)
        return 0xFFFFFFFF;
    if (pageQuota_ && new_pages > *pageQuota_) {
        // Per-request quota (multi-tenant serving): deny the grow the
        // spec-conformant way and record the trip so the server can
        // attribute a subsequent out-of-bounds trap to the quota.
        ++quotaDenials_;
        return 0xFFFFFFFF;
    }
    bytes_.resize(static_cast<size_t>(new_pages) * wasm::kPageSize);
    return prev;
}

const uint8_t *
LinearMemory::readPtr(uint32_t addr, uint32_t offset, size_t n) const
{
    uint64_t ea = static_cast<uint64_t>(addr) + offset;
    if (ea + n > bytes_.size())
        throw Trap(TrapKind::MemoryOutOfBounds);
    return bytes_.data() + ea;
}

uint8_t *
LinearMemory::writePtr(uint32_t addr, uint32_t offset, size_t n)
{
    uint64_t ea = static_cast<uint64_t>(addr) + offset;
    if (ea + n > bytes_.size())
        throw Trap(TrapKind::MemoryOutOfBounds);
    return bytes_.data() + ea;
}

uint64_t
LinearMemory::readLE(uint32_t addr, uint32_t offset, size_t n) const
{
    const uint8_t *p = readPtr(addr, offset, n);
    uint64_t v = 0;
    for (size_t i = 0; i < n; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

void
LinearMemory::writeLE(uint32_t addr, uint32_t offset, size_t n, uint64_t v)
{
    uint8_t *p = writePtr(addr, offset, n);
    for (size_t i = 0; i < n; ++i)
        p[i] = static_cast<uint8_t>(v >> (8 * i));
}

const HostFunc &
Instance::hostFunc(uint32_t func_idx) const
{
    return hostFuncs_.at(func_idx);
}

const ControlSideTable &
Instance::sideTable(uint32_t func_idx)
{
    ControlSideTable &t = sideTables_.at(func_idx);
    if (t.computed)
        return t;
    const std::vector<wasm::Instr> &body =
        module_->functions.at(func_idx).body;
    t.byInstr.resize(body.size());
    std::vector<uint32_t> opens; // instr indices of open blocks
    for (uint32_t i = 0; i < body.size(); ++i) {
        wasm::Opcode op = body[i].op;
        if (wasm::isBlockStart(op)) {
            opens.push_back(i);
        } else if (op == wasm::Opcode::Else) {
            t.byInstr.at(opens.back()).elseIdx = i;
        } else if (op == wasm::Opcode::End) {
            if (!opens.empty()) {
                t.byInstr.at(opens.back()).endIdx = i;
                opens.pop_back();
            }
            // The function's final end has no matching open.
        }
    }
    t.computed = true;
    return t;
}

namespace {

/** Evaluate a constant initializer expression. */
Value
evalConstExpr(const Instance &inst, const std::vector<wasm::Instr> &expr)
{
    const wasm::Instr &i = expr.at(0);
    switch (i.op) {
      case wasm::Opcode::I32Const:
      case wasm::Opcode::I64Const:
      case wasm::Opcode::F32Const:
      case wasm::Opcode::F64Const:
        return i.constValue();
      case wasm::Opcode::GlobalGet:
        return inst.globalGet(i.imm.idx);
      default:
        throw LinkError("unsupported constant expression");
    }
}

} // namespace

InstanceSnapshot
Instance::snapshot() const
{
    InstanceSnapshot snap;
    snap.memory = memory_.raw();
    snap.globals = globals_;
    snap.table = table_.entries();
    return snap;
}

void
Instance::restore(const InstanceSnapshot &snap)
{
    memory_.raw() = snap.memory; // assignment shrinks back after grow
    memory_.setPageQuota(std::nullopt);
    memory_.resetQuotaDenials();
    globals_ = snap.globals;
    table_.setEntries(snap.table);
    fuel_ = std::nullopt;
}

std::unique_ptr<Instance>
Instance::instantiate(std::shared_ptr<const Module> module,
                      const Linker &linker,
                      const std::function<void(Instance &)> &pre_start)
{
    std::unique_ptr<Instance> inst(new Instance());
    inst->module_ = std::move(module);
    const Module &m = *inst->module_;

    // Resolve function imports.
    inst->hostFuncs_.resize(m.numImportedFunctions());
    for (uint32_t i = 0; i < m.numImportedFunctions(); ++i) {
        const wasm::ImportRef &ref = *m.functions[i].import;
        const HostFunc *f = linker.find(ref.module, ref.name);
        if (f == nullptr) {
            throw LinkError("unresolved function import " + ref.module +
                            "." + ref.name);
        }
        inst->hostFuncs_[i] = *f;
    }
    // Imported tables/memories/globals are not supported by this
    // engine (the workloads define their own).
    for (const wasm::Table &t : m.tables) {
        if (t.imported())
            throw LinkError("imported tables are not supported");
    }
    for (const wasm::Memory &mem : m.memories) {
        if (mem.imported())
            throw LinkError("imported memories are not supported");
    }
    for (const wasm::Global &g : m.globals) {
        if (g.imported())
            throw LinkError("imported globals are not supported");
    }

    // Allocate memory and table.
    if (!m.memories.empty())
        inst->memory_ = LinearMemory(m.memories[0].limits);
    if (!m.tables.empty())
        inst->table_ = FuncTable(m.tables[0].limits);

    // Initialize globals.
    for (const wasm::Global &g : m.globals)
        inst->globals_.push_back(evalConstExpr(*inst, g.init));

    // Apply element segments.
    for (const wasm::ElementSegment &seg : m.elements) {
        uint32_t offset = evalConstExpr(*inst, seg.offset).i32();
        for (size_t i = 0; i < seg.funcIdxs.size(); ++i)
            inst->table_.set(offset + static_cast<uint32_t>(i),
                             seg.funcIdxs[i]);
    }

    // Apply data segments.
    for (const wasm::DataSegment &seg : m.data) {
        uint32_t offset = evalConstExpr(*inst, seg.offset).i32();
        if (!seg.bytes.empty()) {
            uint8_t *dst =
                inst->memory_.writePtr(offset, 0, seg.bytes.size());
            std::memcpy(dst, seg.bytes.data(), seg.bytes.size());
        }
    }

    inst->sideTables_.resize(m.functions.size());

    // All state is live; let the caller attach instrumentation (or
    // other observers) before the start function can execute.
    if (pre_start)
        pre_start(*inst);

    // Run the start function.
    if (m.start) {
        Interpreter interp;
        interp.invoke(*inst, *m.start, {});
    }

    return inst;
}

} // namespace wasabi::interp
