/**
 * @file
 * Translation of flat wasm function bodies into the fast engine's
 * pre-decoded FInstr format (see code.h for the format itself).
 *
 * The translator is a single forward pass that mirrors a validator:
 * it tracks the static operand-stack height, a control-frame stack,
 * and reachability, resolving every branch to an absolute code index,
 * a carried-value count and an absolute unwind slot. Alongside, it
 * computes the batched accounting (`charge`) of every charge point so
 * that fuel and ExecStats behave exactly like the legacy walker's
 * per-dispatch accounting on every path — including the paths the
 * legacy walker takes implicitly (an `if` with a false condition
 * dispatches the `end`; falling out of a then-branch dispatches both
 * `else` and `end`; a branch to the function label exits without
 * dispatching anything else).
 *
 * Invariant: the pending (not yet charged) instruction count is zero
 * on every edge into a join point, so a charge can never depend on
 * which path reached it. Fallthrough edges flush through synthetic
 * Charge ops that branch edges jump over.
 *
 * Structurally invalid bodies (operand underflow, out-of-range
 * indices, unbalanced blocks) fail translation with an InternalError
 * trap; the legacy engine would hit undefined behavior on them.
 */

#include <string>
#include <utility>

#include "core/control_stack.h"
#include "core/static_info.h"
#include "interp/engine/code.h"
#include "interp/numerics.h"
#include "interp/trap.h"

namespace wasabi::interp::engine {

using wasm::Instr;
using wasm::OpClass;
using wasm::Opcode;
using wasm::Value;
using wasm::ValType;

namespace {

/** Fixups may patch either a code slot or a br_table pool entry. */
constexpr uint32_t kPoolFixupBit = 0x80000000u;

/** Flush batched charges before they can overflow the u16 field. */
constexpr uint32_t kChargeFlushLimit = 0xFFF0;

/** One open control construct during translation. */
struct CtrlFrame {
    enum Kind : uint8_t { Func, Block, Loop, If } kind = Block;
    uint32_t brArity = 0;     ///< values a branch to this label carries
    uint32_t resultArity = 0; ///< values left on the stack after `end`
    uint32_t entryHeight = 0; ///< operand height at entry (cond popped)
    uint32_t loopTarget = 0;  ///< Loop: absolute back-edge target
    bool enteredReachable = true;
    bool hasElse = false;
    bool thenJumped = false;  ///< If: then-path emitted a Jump at `else`
    uint32_t falseFixup = UINT32_MAX; ///< If: BrIfNot awaiting a target
    uint32_t thenJumpPos = UINT32_MAX;
    /** Forward branches to this label (bit 31 set: pool index). */
    std::vector<uint32_t> fixups;
    /** Source-block identity, tracked only in intrinsic-hook mode so
     * branch sites can report the blocks they end (DESIGN.md §13).
     * Mirrors the instrumenter's ControlFrame fields: srcKind flips
     * If -> Else at `else`, srcElse records the else index. */
    core::BlockKind srcKind = core::BlockKind::Function;
    uint32_t srcBegin = core::kFunctionEntry;
    uint32_t srcEnd = 0;
    uint32_t srcElse = UINT32_MAX;
};

class Translator {
  public:
    Translator(const wasm::Module &module, uint32_t func_idx,
               const CompiledModule &cm)
        : m_(module), funcIdx_(func_idx), cm_(cm),
          hooks_(cm.intrinsicHooks()), intr_(!hooks_.empty())
    {
    }

    CompiledFunction
    run()
    {
        const wasm::Function &func = m_.functions.at(funcIdx_);
        if (func.imported())
            fail("imported function has no body to translate");
        const wasm::FuncType &type = m_.funcType(funcIdx_);

        out_.numParams = static_cast<uint32_t>(type.params.size());
        out_.numLocals =
            out_.numParams + static_cast<uint32_t>(func.locals.size());
        out_.resultArity = static_cast<uint32_t>(type.results.size());
        for (ValType t : func.locals)
            out_.localInit.push_back(Value::zero(t));

        CtrlFrame root;
        root.kind = CtrlFrame::Func;
        root.brArity = out_.resultArity;
        root.resultArity = out_.resultArity;
        if (intr_) {
            matches_ = core::matchBlocks(func.body);
            root.srcKind = core::BlockKind::Function;
            root.srcBegin = core::kFunctionEntry;
            root.srcEnd = func.body.empty()
                              ? 0
                              : static_cast<uint32_t>(func.body.size() - 1);
        }
        frames_.push_back(std::move(root));

        // Function-entry hooks (rewrite mode injects them as the first
        // calls of the body; same position, same locations here).
        if (intr_) {
            if (hk(core::HookKind::Start) && m_.start &&
                *m_.start == funcIdx_) {
                HookSite s;
                s.kind = core::HookKind::Start;
                s.loc = {funcIdx_, core::kFunctionEntry};
                hookSite(std::move(s), 0);
            }
            if (hk(core::HookKind::Begin)) {
                HookSite s;
                s.kind = core::HookKind::Begin;
                s.block = core::BlockKind::Function;
                s.loc = {funcIdx_, core::kFunctionEntry};
                hookSite(std::move(s), 0);
            }
        }

        // Translate until the body ends or the function frame closes
        // (the legacy walker returns at the final `end`; trailing
        // instructions, which a decoder never produces, are equally
        // never executed).
        for (uint32_t i = 0; i < func.body.size(); ++i) {
            if (frames_.empty())
                break;
            instrIdx_ = i; // doLoad/doStore key elision claims on it
            translateOne(func.body[i]);
        }
        if (!frames_.empty()) {
            // Builder-made body without a terminating `end`: the
            // legacy walker falls out of its loop, charging nothing
            // for the implicit exit.
            if (frames_.size() != 1)
                fail("unclosed blocks at end of body");
            closeFunction(/*end_charged=*/false);
        }
        out_.compiled = true;
        return std::move(out_);
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        throw Trap(TrapKind::InternalError,
                   "cannot translate function " +
                       std::to_string(funcIdx_) + ": " + what);
    }

    // --- static operand-stack tracking -----------------------------

    void
    push(uint32_t n = 1)
    {
        height_ += n;
        if (height_ > out_.maxOperand)
            out_.maxOperand = height_;
    }

    void
    pop(uint32_t n = 1)
    {
        if (height_ < n)
            fail("operand stack underflow");
        height_ -= n;
    }

    // --- code emission and charge accounting -----------------------

    uint32_t
    emit(FOp op, uint8_t aux = 0, uint16_t charge = 0, uint32_t a = 0,
         uint64_t b = 0)
    {
        out_.code.push_back(FInstr{op, aux, charge, a, b});
        return static_cast<uint32_t>(out_.code.size() - 1);
    }

    /** A batched instruction retires: charged at the next charge
     * point. Flushes early so the u16 charge field cannot overflow. */
    void
    batch()
    {
        if (++pending_ >= kChargeFlushLimit)
            flushPending();
    }

    /** Emit a synthetic Charge for the accumulated batch, if any. */
    void
    flushPending()
    {
        if (pending_ != 0) {
            emit(FOp::Charge, 0, static_cast<uint16_t>(pending_));
            pending_ = 0;
        }
    }

    /** Charge of a real charge-point instruction: the batch plus the
     * instruction itself. */
    uint16_t
    takeCharge()
    {
        uint32_t c = pending_ + 1;
        pending_ = 0;
        return static_cast<uint16_t>(c);
    }

    /** Charge of a synthetic op standing in for already-counted
     * instructions (the Jump emitted at `else`). */
    uint16_t
    takeFlush()
    {
        uint32_t c = pending_;
        pending_ = 0;
        return static_cast<uint16_t>(c);
    }

    void
    bind(std::vector<uint32_t> &fixups, uint32_t target)
    {
        for (uint32_t f : fixups) {
            if (f & kPoolFixupBit)
                out_.tablePool[f & ~kPoolFixupBit].pc = target;
            else
                out_.code[f].a = target;
        }
        fixups.clear();
    }

    // --- intrinsic hook emission (DESIGN.md §13) --------------------

    bool hk(core::HookKind k) const { return intr_ && hooks_.has(k); }

    /** Append a hook site and its FOp::Hook dispatch slot. The charge
     * flushes the batch accumulated *before* the hooked instruction,
     * so a sink reading counters observes exact retired counts. */
    void
    hookSite(HookSite site, uint16_t charge)
    {
        uint32_t idx = static_cast<uint32_t>(out_.hookSites.size());
        out_.hookSites.push_back(std::move(site));
        emit(FOp::Hook, 0, charge, idx);
    }

    /** Capture the top @p n operand values into the VM's stash (for
     * hooks that must observe values the instruction consumes). */
    void
    stashTop(uint8_t n)
    {
        emit(FOp::HookStash, n);
    }

    /** Record the source identity of a block being opened at the
     * current instruction (intrinsic mode only). */
    void
    setSrcBlock(CtrlFrame &f, core::BlockKind kind)
    {
        if (!intr_)
            return;
        f.srcKind = kind;
        f.srcBegin = instrIdx_;
        f.srcEnd = matches_[instrIdx_].endIdx;
        f.srcElse = matches_[instrIdx_].elseIdx
                        ? *matches_[instrIdx_].elseIdx
                        : UINT32_MAX;
    }

    /** The source block one traversed frame ends, mirroring the
     * instrumenter's frameEndIdx/frameBeginIdx: the then-region of an
     * if/else ends at the `else`; an else-region begins there. */
    core::EndedBlock
    srcEnded(const CtrlFrame &f) const
    {
        uint32_t end = (f.srcKind == core::BlockKind::If &&
                        f.srcElse != UINT32_MAX)
                           ? f.srcElse
                           : f.srcEnd;
        uint32_t begin = (f.srcKind == core::BlockKind::Else &&
                          f.srcElse != UINT32_MAX)
                             ? f.srcElse
                             : f.srcBegin;
        return core::EndedBlock{f.srcKind, {funcIdx_, end},
                                {funcIdx_, begin}};
    }

    /** Blocks a branch to @p label traverses, innermost first, both
     * endpoints inclusive (paper §2.4.5). */
    std::vector<core::EndedBlock>
    traversedSrc(uint32_t label) const
    {
        std::vector<core::EndedBlock> ended;
        for (uint32_t i = 0; i <= label && i < frames_.size(); ++i)
            ended.push_back(srcEnded(frames_[frames_.size() - 1 - i]));
        return ended;
    }

    /** End hook of frame @p f at the current `end` instruction; fires
     * on the fallthrough path only (branch edges land past it, having
     * fired their end hooks at the branch site). */
    void
    emitEndHook(const CtrlFrame &f)
    {
        HookSite s;
        s.kind = core::HookKind::End;
        s.block = f.srcKind;
        s.loc = {funcIdx_, instrIdx_};
        s.index = (f.srcKind == core::BlockKind::Else &&
                   f.srcElse != UINT32_MAX)
                      ? f.srcElse
                      : f.srcBegin;
        hookSite(std::move(s), takeFlush());
    }

    // --- control constructs ----------------------------------------

    static uint32_t
    blockArity(const Instr &ins)
    {
        return ins.block ? 1u : 0u;
    }

    void
    doBlock(const Instr &ins)
    {
        CtrlFrame f;
        f.kind = CtrlFrame::Block;
        f.brArity = f.resultArity = blockArity(ins);
        f.entryHeight = height_;
        f.enteredReachable = reachable_;
        setSrcBlock(f, core::BlockKind::Block);
        if (reachable_) {
            batch(); // the `block` opcode is dispatched
            if (hk(core::HookKind::Begin)) {
                HookSite s;
                s.kind = core::HookKind::Begin;
                s.block = core::BlockKind::Block;
                s.loc = {funcIdx_, instrIdx_};
                hookSite(std::move(s), takeFlush());
            }
        }
        frames_.push_back(std::move(f));
    }

    void
    doLoop(const Instr &ins)
    {
        CtrlFrame f;
        f.kind = CtrlFrame::Loop;
        f.brArity = 0;
        f.resultArity = blockArity(ins);
        f.entryHeight = height_;
        f.enteredReachable = reachable_;
        setSrcBlock(f, core::BlockKind::Loop);
        if (reachable_) {
            batch();        // the `loop` opcode is dispatched on entry
            flushPending(); // back edges must not re-charge it
            f.loopTarget = static_cast<uint32_t>(out_.code.size());
            if (hk(core::HookKind::Begin)) {
                // Inside the loop target: the begin hook re-fires on
                // every back edge, as rewrite mode's injected call
                // (placed after the `loop` opcode) does.
                HookSite s;
                s.kind = core::HookKind::Begin;
                s.block = core::BlockKind::Loop;
                s.loc = {funcIdx_, instrIdx_};
                hookSite(std::move(s), 0);
            }
        }
        frames_.push_back(std::move(f));
    }

    void
    doIf(const Instr &ins)
    {
        CtrlFrame f;
        f.kind = CtrlFrame::If;
        f.brArity = f.resultArity = blockArity(ins);
        f.enteredReachable = reachable_;
        setSrcBlock(f, core::BlockKind::If);
        if (reachable_) {
            if (hk(core::HookKind::If)) {
                // Observes the condition before the `if` consumes it.
                HookSite s;
                s.kind = core::HookKind::If;
                s.peek = 1;
                s.loc = {funcIdx_, instrIdx_};
                hookSite(std::move(s), takeFlush());
            }
            pop(1); // condition
            f.entryHeight = height_;
            // False edge target patched at `else` or `end`.
            f.falseFixup = emit(FOp::BrIfNot, 0, takeCharge());
            if (hk(core::HookKind::Begin)) {
                // True path only; the false edge jumps past it.
                HookSite s;
                s.kind = core::HookKind::Begin;
                s.block = core::BlockKind::If;
                s.loc = {funcIdx_, instrIdx_};
                hookSite(std::move(s), 0);
            }
        } else {
            f.entryHeight = height_;
        }
        frames_.push_back(std::move(f));
    }

    void
    doElse()
    {
        if (frames_.size() < 2 || frames_.back().kind != CtrlFrame::If)
            fail("else outside if");
        CtrlFrame &f = frames_.back();
        if (f.hasElse)
            fail("duplicate else");
        f.hasElse = true;
        if (reachable_ && f.enteredReachable) {
            // Falling out of the then-branch, the legacy walker
            // dispatches the `else` (one charge) and then re-dispatches
            // the matching `end` (another). The Jump carries the then
            // body + `else`; it lands on the shared end Charge(1).
            if (height_ != f.entryHeight + f.resultArity)
                fail("then branch height mismatch at else");
            if (hk(core::HookKind::End)) {
                // Exiting the then-region: its end hook fires before
                // the `else`, on the fallthrough path only.
                HookSite s;
                s.kind = core::HookKind::End;
                s.block = core::BlockKind::If;
                s.loc = {funcIdx_, instrIdx_};
                s.index = f.srcBegin;
                hookSite(std::move(s), takeFlush());
            }
            batch(); // the `else` instruction
            f.thenJumped = true;
            f.thenJumpPos = emit(FOp::Jump, 0, takeFlush());
        }
        reachable_ = f.enteredReachable;
        height_ = f.entryHeight;
        pending_ = 0;
        if (intr_)
            f.srcKind = core::BlockKind::Else;
        if (f.enteredReachable) {
            // False edge of the lowered `if` enters the else body
            // directly (the `else` opcode is not dispatched on it).
            out_.code[f.falseFixup].a =
                static_cast<uint32_t>(out_.code.size());
            f.falseFixup = UINT32_MAX;
            if (hk(core::HookKind::Begin)) {
                // Begin(Else) fires on the false edge, which lands
                // here; the then-path Jump skips past it to the end.
                HookSite s;
                s.kind = core::HookKind::Begin;
                s.block = core::BlockKind::Else;
                s.loc = {funcIdx_, instrIdx_};
                hookSite(std::move(s), 0);
            }
        }
    }

    void
    closeFunction(bool end_charged)
    {
        CtrlFrame f = std::move(frames_.back());
        frames_.pop_back();
        if (reachable_) {
            if (end_charged && hk(core::HookKind::End)) {
                // Function-frame end hook, fallthrough path only
                // (branches to the function label fired theirs at the
                // branch site and land on the FrameExit pad below).
                HookSite s;
                s.kind = core::HookKind::End;
                s.block = core::BlockKind::Function;
                s.loc = {funcIdx_, instrIdx_};
                s.index = core::kFunctionEntry;
                hookSite(std::move(s), takeFlush());
            }
            // The final `end` is dispatched (and charged) only when
            // execution falls into it; the height check replaces the
            // old debug-only assert.
            uint32_t c = pending_ + (end_charged ? 1u : 0u);
            pending_ = 0;
            emit(FOp::End, static_cast<uint8_t>(out_.resultArity),
                 static_cast<uint16_t>(c));
        }
        if (!f.fixups.empty()) {
            // Branches to the function label exit without dispatching
            // anything further — a charge-free landing pad.
            uint32_t pad =
                emit(FOp::FrameExit,
                     static_cast<uint8_t>(out_.resultArity), 0);
            bind(f.fixups, pad);
        }
        reachable_ = false;
    }

    void
    doEnd()
    {
        if (frames_.size() == 1) {
            closeFunction(/*end_charged=*/true);
            return;
        }
        CtrlFrame f = std::move(frames_.back());
        frames_.pop_back();
        bool fell = reachable_ && f.enteredReachable;
        if (fell && height_ != f.entryHeight + f.resultArity)
            fail("block height mismatch at end");

        if (fell && hk(core::HookKind::End) && f.kind != CtrlFrame::If)
            emitEndHook(f);

        switch (f.kind) {
          case CtrlFrame::Loop:
            // Forward fixups cannot target a loop label; the `end` is
            // dispatched only on fallthrough, so batching continues.
            if (fell)
                batch();
            reachable_ = fell;
            break;
          case CtrlFrame::Block:
            if (fell)
                batch(); // the `end`, dispatched on fallthrough only
            if (!f.fixups.empty()) {
                // Branch edges land *after* the end (legacy cont =
                // endIdx + 1), so flush the fallthrough batch first.
                flushPending();
                bind(f.fixups, static_cast<uint32_t>(out_.code.size()));
                reachable_ = true;
            } else {
                reachable_ = fell;
            }
            break;
          case CtrlFrame::If:
            doIfEnd(f, fell);
            break;
          case CtrlFrame::Func:
            fail("unbalanced end");
        }
        height_ = f.entryHeight + f.resultArity;
    }

    void
    doIfEnd(CtrlFrame &f, bool fell)
    {
        if (!f.enteredReachable) {
            reachable_ = false;
            return;
        }
        if (!f.hasElse) {
            // The false edge of the lowered `if` jumps straight to the
            // `end`, which the legacy walker dispatches on both paths.
            // The fallthrough-only end hook sits before the shared
            // Charge; the false edge (and branches) skip it, exactly
            // like the injected call rewrite mode places before `end`.
            if (fell) {
                if (hk(core::HookKind::End))
                    emitEndHook(f);
                flushPending();
            }
            uint32_t end_pos = emit(FOp::Charge, 0, 1);
            out_.code[f.falseFixup].a = end_pos;
            bind(f.fixups, static_cast<uint32_t>(out_.code.size()));
            reachable_ = true;
            return;
        }
        if (f.thenJumped) {
            // Then-path arrives via its Jump (which already covered
            // the `else`); the false path falls through the else body.
            // Both still dispatch the `end`: one shared Charge(1).
            if (fell) {
                if (hk(core::HookKind::End))
                    emitEndHook(f); // ends the else-region only
                flushPending();
            }
            uint32_t end_pos = emit(FOp::Charge, 0, 1);
            out_.code[f.thenJumpPos].a = end_pos;
            bind(f.fixups, static_cast<uint32_t>(out_.code.size()));
            reachable_ = true;
            return;
        }
        // Then-path never reaches the end; only the else fallthrough
        // (and explicit branches) do.
        if (fell) {
            if (hk(core::HookKind::End))
                emitEndHook(f);
            batch(); // the `end`
            if (!f.fixups.empty()) {
                flushPending();
                bind(f.fixups, static_cast<uint32_t>(out_.code.size()));
            }
            reachable_ = true;
        } else if (!f.fixups.empty()) {
            bind(f.fixups, static_cast<uint32_t>(out_.code.size()));
            reachable_ = true;
        } else {
            reachable_ = false;
        }
    }

    // --- branches --------------------------------------------------

    CtrlFrame &
    frameOf(uint32_t label)
    {
        if (label >= frames_.size())
            fail("branch label out of range");
        return frames_[frames_.size() - 1 - label];
    }

    void
    emitBranch(FOp op, uint32_t label)
    {
        CtrlFrame &f = frameOf(label);
        uint32_t keep = f.brArity;
        if (height_ < f.entryHeight + keep)
            fail("branch below label height");
        uint64_t slot = out_.numLocals + f.entryHeight;
        uint32_t pos = emit(op, static_cast<uint8_t>(keep), takeCharge(),
                            0, slot);
        if (f.kind == CtrlFrame::Loop)
            out_.code[pos].a = f.loopTarget;
        else
            f.fixups.push_back(pos);
    }

    void
    doBrTable(const Instr &ins)
    {
        pop(1); // selector
        if (ins.table.empty())
            fail("br_table without targets");
        uint32_t start = static_cast<uint32_t>(out_.tablePool.size());
        for (uint32_t label : ins.table) {
            CtrlFrame &f = frameOf(label);
            uint32_t keep = f.brArity;
            if (height_ < f.entryHeight + keep)
                fail("branch below label height");
            BrTarget t;
            t.keep = keep;
            t.slot = out_.numLocals + f.entryHeight;
            uint32_t pool_idx =
                static_cast<uint32_t>(out_.tablePool.size());
            if (f.kind == CtrlFrame::Loop)
                t.pc = f.loopTarget;
            else
                f.fixups.push_back(pool_idx | kPoolFixupBit);
            out_.tablePool.push_back(t);
        }
        emit(FOp::BrTable, 0, takeCharge(), start, ins.table.size());
    }

    // --- calls -----------------------------------------------------

    void
    doCall(uint32_t callee)
    {
        if (callee >= m_.functions.size())
            fail("call to out-of-range function");
        const wasm::FuncType &t = m_.funcType(callee);
        emitCallPreHook(t, /*indirect=*/false);
        pop(static_cast<uint32_t>(t.params.size()));
        if (m_.functions[callee].imported()) {
            emit(FOp::CallHost, static_cast<uint8_t>(t.results.size()),
                 takeCharge(), callee, t.params.size());
        } else {
            emit(FOp::Call, 0, takeCharge(), callee);
        }
        push(static_cast<uint32_t>(t.results.size()));
        emitCallPostHook(t);
    }

    void
    doCallIndirect(uint32_t type_idx)
    {
        if (type_idx >= m_.types.size())
            fail("call_indirect to out-of-range type");
        const wasm::FuncType &t = m_.types[type_idx];
        emitCallPreHook(t, /*indirect=*/true);
        pop(1); // table index
        pop(static_cast<uint32_t>(t.params.size()));
        emit(FOp::CallIndirect, static_cast<uint8_t>(t.results.size()),
             takeCharge(), cm_.canonicalType(type_idx), t.params.size());
        push(static_cast<uint32_t>(t.results.size()));
        emitCallPostHook(t);
    }

    /** call_pre: observes the arguments (and the table index for an
     * indirect call) in place on the stack, before the transfer. */
    void
    emitCallPreHook(const wasm::FuncType &t, bool indirect)
    {
        if (!hk(core::HookKind::Call))
            return;
        HookSite s;
        s.kind = core::HookKind::Call;
        s.indirect = indirect;
        s.peek = static_cast<uint8_t>(t.params.size() +
                                      (indirect ? 1 : 0));
        s.loc = {funcIdx_, instrIdx_};
        hookSite(std::move(s), takeFlush());
    }

    /** call_post: observes the results, after the callee returned. */
    void
    emitCallPostHook(const wasm::FuncType &t)
    {
        if (!hk(core::HookKind::Call))
            return;
        HookSite s;
        s.kind = core::HookKind::Call;
        s.post = true;
        s.peek = static_cast<uint8_t>(t.results.size());
        s.loc = {funcIdx_, instrIdx_};
        hookSite(std::move(s), 0);
    }

    // --- memory ----------------------------------------------------

    /** Whether a verified range claim licenses dropping the bounds
     * check of the access currently being translated. Unchecked
     * variants keep identical charge/stat behavior, so elision is
     * unobservable except through ExecStats' elided counter. */
    bool
    elide() const
    {
        return cm_.hasElisions() &&
               cm_.elides(core::packLoc({funcIdx_, instrIdx_}));
    }

    void
    doLoad(const Instr &ins)
    {
        const bool hooked = hk(core::HookKind::Load);
        if (hooked)
            stashTop(1); // the address the load consumes
        pop(1);
        uint32_t off = ins.imm.mem.offset;
        const bool u = elide();
        switch (ins.op) {
          case Opcode::I32Load:
            emit(u ? FOp::I32LoadU : FOp::I32Load, 0, takeCharge(),
                 off);
            break;
          case Opcode::I64Load:
            emit(u ? FOp::I64LoadU : FOp::I64Load, 0, takeCharge(),
                 off);
            break;
          case Opcode::F32Load:
            emit(u ? FOp::F32LoadU : FOp::F32Load, 0, takeCharge(),
                 off);
            break;
          case Opcode::F64Load:
            emit(u ? FOp::F64LoadU : FOp::F64Load, 0, takeCharge(),
                 off);
            break;
          default:
            emit(u ? FOp::LoadExtU : FOp::LoadExt,
                 static_cast<uint8_t>(ins.op), takeCharge(), off,
                 wasm::memAccessBytes(ins.op));
            break;
        }
        push(1);
        if (hooked) {
            // After the access, as in rewrite mode: dyn=(addr, value).
            HookSite s;
            s.kind = core::HookKind::Load;
            s.op = ins.op;
            s.peek = 1;  // loaded value
            s.stash = 1; // address
            s.loc = {funcIdx_, instrIdx_};
            hookSite(std::move(s), 0);
        }
    }

    void
    doStore(const Instr &ins)
    {
        const bool hooked = hk(core::HookKind::Store);
        if (hooked)
            stashTop(2); // [addr, value], both consumed
        pop(2);
        uint32_t off = ins.imm.mem.offset;
        const bool u = elide();
        switch (ins.op) {
          case Opcode::I32Store:
            emit(u ? FOp::I32StoreU : FOp::I32Store, 0, takeCharge(),
                 off);
            break;
          case Opcode::I64Store:
            emit(u ? FOp::I64StoreU : FOp::I64Store, 0, takeCharge(),
                 off);
            break;
          case Opcode::F32Store:
            emit(u ? FOp::F32StoreU : FOp::F32Store, 0, takeCharge(),
                 off);
            break;
          case Opcode::F64Store:
            emit(u ? FOp::F64StoreU : FOp::F64Store, 0, takeCharge(),
                 off);
            break;
          default:
            emit(u ? FOp::StoreNarrowU : FOp::StoreNarrow,
                 static_cast<uint8_t>(wasm::memAccessBytes(ins.op)),
                 takeCharge(), off);
            break;
        }
        if (hooked) {
            HookSite s;
            s.kind = core::HookKind::Store;
            s.op = ins.op;
            s.stash = 2;
            s.loc = {funcIdx_, instrIdx_};
            hookSite(std::move(s), 0);
        }
    }

    // --- numerics --------------------------------------------------

    void
    doUnary(Opcode op)
    {
        const bool hooked = hk(core::HookKind::Unary);
        if (hooked)
            stashTop(1); // the input, consumed by the op
        pop(1);
        push(1);
        if (op == Opcode::I32Eqz) {
            emit(FOp::I32Eqz);
            batch();
        } else if (unaryCanTrap(op)) {
            emit(FOp::UnaryTrap, static_cast<uint8_t>(op), takeCharge());
        } else {
            emit(FOp::UnaryPure, static_cast<uint8_t>(op));
            batch();
        }
        if (hooked) {
            // dyn=(input, result), after the op (so not on the trap
            // path of a float->int truncation — same as rewrite).
            HookSite s;
            s.kind = core::HookKind::Unary;
            s.op = op;
            s.peek = 1;
            s.stash = 1;
            s.loc = {funcIdx_, instrIdx_};
            hookSite(std::move(s), takeFlush());
        }
    }

    /** Specialized FOp of a hot pure binary; nullopt = generic. */
    static std::optional<FOp>
    specializedBinary(Opcode op)
    {
        switch (op) {
          case Opcode::I32Add: return FOp::I32Add;
          case Opcode::I32Sub: return FOp::I32Sub;
          case Opcode::I32Mul: return FOp::I32Mul;
          case Opcode::I32And: return FOp::I32And;
          case Opcode::I32Or: return FOp::I32Or;
          case Opcode::I32Xor: return FOp::I32Xor;
          case Opcode::I32Shl: return FOp::I32Shl;
          case Opcode::I32ShrS: return FOp::I32ShrS;
          case Opcode::I32ShrU: return FOp::I32ShrU;
          case Opcode::I32Eq: return FOp::I32Eq;
          case Opcode::I32Ne: return FOp::I32Ne;
          case Opcode::I32LtS: return FOp::I32LtS;
          case Opcode::I32LtU: return FOp::I32LtU;
          case Opcode::I32GtS: return FOp::I32GtS;
          case Opcode::I32GtU: return FOp::I32GtU;
          case Opcode::I32LeS: return FOp::I32LeS;
          case Opcode::I32LeU: return FOp::I32LeU;
          case Opcode::I32GeS: return FOp::I32GeS;
          case Opcode::I32GeU: return FOp::I32GeU;
          case Opcode::I64Add: return FOp::I64Add;
          case Opcode::F32Add: return FOp::F32Add;
          case Opcode::F32Mul: return FOp::F32Mul;
          case Opcode::F64Add: return FOp::F64Add;
          case Opcode::F64Sub: return FOp::F64Sub;
          case Opcode::F64Mul: return FOp::F64Mul;
          case Opcode::F64Div: return FOp::F64Div;
          default: return std::nullopt;
        }
    }

    void
    doBinary(Opcode op)
    {
        const bool hooked = hk(core::HookKind::Binary);
        if (hooked)
            stashTop(2); // [a, b], both consumed
        pop(2);
        push(1);
        if (std::optional<FOp> spec = specializedBinary(op)) {
            emit(*spec);
            batch();
        } else if (binaryCanTrap(op)) {
            emit(FOp::BinaryTrap, static_cast<uint8_t>(op),
                 takeCharge());
        } else {
            emit(FOp::BinaryPure, static_cast<uint8_t>(op));
            batch();
        }
        if (hooked) {
            // dyn=(a, b, result), after the op (not on div-trap paths).
            HookSite s;
            s.kind = core::HookKind::Binary;
            s.op = op;
            s.peek = 1;
            s.stash = 2;
            s.loc = {funcIdx_, instrIdx_};
            hookSite(std::move(s), takeFlush());
        }
    }

    // --- main dispatch ---------------------------------------------

    void
    translateOne(const Instr &ins)
    {
        const wasm::OpInfo &info = wasm::opInfo(ins.op);
        // Structural opcodes are tracked even in unreachable code so
        // frames stay balanced; everything else is skipped there.
        switch (info.cls) {
          case OpClass::Block: doBlock(ins); return;
          case OpClass::Loop: doLoop(ins); return;
          case OpClass::If: doIf(ins); return;
          case OpClass::Else: doElse(); return;
          case OpClass::End: doEnd(); return;
          default: break;
        }
        if (!reachable_)
            return;

        switch (info.cls) {
          case OpClass::Nop:
            batch();
            if (hk(core::HookKind::Nop)) {
                HookSite s;
                s.kind = core::HookKind::Nop;
                s.loc = {funcIdx_, instrIdx_};
                hookSite(std::move(s), takeFlush());
            }
            break;
          case OpClass::Unreachable:
            if (hk(core::HookKind::Unreachable)) {
                // Before the trapping instruction, as in rewrite mode.
                HookSite s;
                s.kind = core::HookKind::Unreachable;
                s.loc = {funcIdx_, instrIdx_};
                hookSite(std::move(s), takeFlush());
            }
            emit(FOp::Unreachable, 0, takeCharge());
            reachable_ = false;
            break;
          case OpClass::Br:
            if (hk(core::HookKind::Br) || hk(core::HookKind::End)) {
                HookSite s;
                s.kind = core::HookKind::Br;
                s.loc = {funcIdx_, instrIdx_};
                if (hk(core::HookKind::End))
                    s.ended = traversedSrc(ins.imm.idx);
                hookSite(std::move(s), takeFlush());
            }
            emitBranch(FOp::Br, ins.imm.idx);
            reachable_ = false;
            break;
          case OpClass::BrIf:
            if (hk(core::HookKind::BrIf) || hk(core::HookKind::End)) {
                // Observes the condition; the sink fires the end
                // hooks only when it is true (the branch is taken).
                HookSite s;
                s.kind = core::HookKind::BrIf;
                s.peek = 1;
                s.loc = {funcIdx_, instrIdx_};
                if (hk(core::HookKind::End))
                    s.ended = traversedSrc(ins.imm.idx);
                hookSite(std::move(s), takeFlush());
            }
            pop(1); // condition
            emitBranch(FOp::BrIf, ins.imm.idx);
            break;
          case OpClass::BrTable:
            if (hk(core::HookKind::BrTable) ||
                hk(core::HookKind::End)) {
                // Which label is taken — and thus which blocks end —
                // is only known at runtime; the sink dispatches off
                // the StaticInfo br_table side table (paper §2.4.5).
                HookSite s;
                s.kind = core::HookKind::BrTable;
                s.peek = 1;
                s.loc = {funcIdx_, instrIdx_};
                hookSite(std::move(s), takeFlush());
            }
            doBrTable(ins);
            reachable_ = false;
            break;
          case OpClass::Return:
            if (hk(core::HookKind::Return) ||
                hk(core::HookKind::End)) {
                HookSite s;
                s.kind = core::HookKind::Return;
                s.peek = static_cast<uint8_t>(out_.resultArity);
                s.loc = {funcIdx_, instrIdx_};
                if (hk(core::HookKind::End)) {
                    s.ended = traversedSrc(
                        static_cast<uint32_t>(frames_.size() - 1));
                }
                hookSite(std::move(s), takeFlush());
            }
            pop(out_.resultArity);
            emit(FOp::Return, static_cast<uint8_t>(out_.resultArity),
                 takeCharge());
            reachable_ = false;
            break;
          case OpClass::Call:
            doCall(ins.imm.idx);
            break;
          case OpClass::CallIndirect:
            doCallIndirect(ins.imm.idx);
            break;
          case OpClass::Drop:
            if (hk(core::HookKind::Drop)) {
                // The hook observes the value the drop discards.
                HookSite s;
                s.kind = core::HookKind::Drop;
                s.peek = 1;
                s.loc = {funcIdx_, instrIdx_};
                hookSite(std::move(s), takeFlush());
            }
            pop(1);
            emit(FOp::Drop);
            batch();
            break;
          case OpClass::Select:
            if (hk(core::HookKind::Select)) {
                // dyn order is (cond, first, second); all three are
                // consumed, so capture them before the select runs
                // (the hook itself fires after, as in rewrite mode).
                stashTop(3); // [first, second, cond]
                pop(3);
                push(1);
                emit(FOp::Select);
                batch();
                HookSite s;
                s.kind = core::HookKind::Select;
                s.stash = 3;
                s.loc = {funcIdx_, instrIdx_};
                hookSite(std::move(s), takeFlush());
                break;
            }
            pop(3);
            push(1);
            emit(FOp::Select);
            batch();
            break;
          case OpClass::LocalGet:
          case OpClass::LocalTee:
            checkLocal(ins.imm.idx);
            if (info.cls == OpClass::LocalTee)
                pop(1);
            emit(info.cls == OpClass::LocalGet ? FOp::LocalGet
                                               : FOp::LocalTee,
                 0, 0, ins.imm.idx);
            push(1);
            batch();
            if (hk(core::HookKind::Local)) {
                // Value observed after the instruction: on the top.
                HookSite s;
                s.kind = core::HookKind::Local;
                s.op = ins.op;
                s.peek = 1;
                s.loc = {funcIdx_, instrIdx_};
                hookSite(std::move(s), takeFlush());
            }
            break;
          case OpClass::LocalSet:
            checkLocal(ins.imm.idx);
            if (hk(core::HookKind::Local))
                stashTop(1); // the value the set consumes
            pop(1);
            emit(FOp::LocalSet, 0, 0, ins.imm.idx);
            batch();
            if (hk(core::HookKind::Local)) {
                HookSite s;
                s.kind = core::HookKind::Local;
                s.op = ins.op;
                s.stash = 1;
                s.loc = {funcIdx_, instrIdx_};
                hookSite(std::move(s), takeFlush());
            }
            break;
          case OpClass::GlobalGet:
            checkGlobal(ins.imm.idx);
            emit(FOp::GlobalGet, 0, 0, ins.imm.idx);
            push(1);
            batch();
            if (hk(core::HookKind::Global)) {
                HookSite s;
                s.kind = core::HookKind::Global;
                s.op = ins.op;
                s.peek = 1;
                s.loc = {funcIdx_, instrIdx_};
                hookSite(std::move(s), takeFlush());
            }
            break;
          case OpClass::GlobalSet:
            checkGlobal(ins.imm.idx);
            if (hk(core::HookKind::Global))
                stashTop(1);
            pop(1);
            emit(FOp::GlobalSet, 0, takeCharge(), ins.imm.idx);
            if (hk(core::HookKind::Global)) {
                HookSite s;
                s.kind = core::HookKind::Global;
                s.op = ins.op;
                s.stash = 1;
                s.loc = {funcIdx_, instrIdx_};
                hookSite(std::move(s), 0);
            }
            break;
          case OpClass::Load:
            doLoad(ins);
            break;
          case OpClass::Store:
            doStore(ins);
            break;
          case OpClass::MemorySize:
            emit(FOp::MemorySize, 0, takeCharge());
            push(1);
            if (hk(core::HookKind::MemorySize)) {
                HookSite s;
                s.kind = core::HookKind::MemorySize;
                s.peek = 1; // the queried size
                s.loc = {funcIdx_, instrIdx_};
                hookSite(std::move(s), 0);
            }
            break;
          case OpClass::MemoryGrow:
            if (hk(core::HookKind::MemoryGrow))
                stashTop(1); // the delta the grow consumes
            pop(1);
            push(1);
            emit(FOp::MemoryGrow, 0, takeCharge());
            if (hk(core::HookKind::MemoryGrow)) {
                HookSite s;
                s.kind = core::HookKind::MemoryGrow;
                s.peek = 1;  // previous size (the result)
                s.stash = 1; // delta
                s.loc = {funcIdx_, instrIdx_};
                hookSite(std::move(s), 0);
            }
            break;
          case OpClass::Const: {
            Value v = ins.constValue();
            emit(FOp::Const, static_cast<uint8_t>(v.type), 0, 0, v.bits);
            push(1);
            batch();
            if (hk(core::HookKind::Const)) {
                HookSite s;
                s.kind = core::HookKind::Const;
                s.op = ins.op;
                s.peek = 1;
                s.loc = {funcIdx_, instrIdx_};
                hookSite(std::move(s), takeFlush());
            }
            break;
          }
          case OpClass::Unary:
            doUnary(ins.op);
            break;
          case OpClass::Binary:
            doBinary(ins.op);
            break;
          default:
            fail(std::string("untranslatable opcode ") +
                 wasm::name(ins.op));
        }
    }

    void
    checkLocal(uint32_t idx)
    {
        if (idx >= out_.numLocals)
            fail("local index out of range");
    }

    void
    checkGlobal(uint32_t idx)
    {
        if (idx >= m_.globals.size())
            fail("global index out of range");
    }

    const wasm::Module &m_;
    uint32_t funcIdx_;
    uint32_t instrIdx_ = 0; ///< source index of the instr in flight
    const CompiledModule &cm_;
    core::HookSet hooks_; ///< intrinsic hook selection (empty = off)
    bool intr_ = false;   ///< intrinsic instrumentation attached
    std::vector<core::BlockMatch> matches_; ///< block matching (intr_)
    CompiledFunction out_;
    std::vector<CtrlFrame> frames_;
    uint32_t height_ = 0;
    uint32_t pending_ = 0;
    bool reachable_ = true;
};

} // namespace

CompiledFunction
translateFunction(const wasm::Module &module, uint32_t func_idx,
                  const CompiledModule &cm)
{
    return Translator(module, func_idx, cm).run();
}

CompiledModule::CompiledModule(const wasm::Module &module)
    : module_(module)
{
    // Pre-size so lazily translated slots never move while pointers
    // into them are live on the execution frame stack.
    funcs_.resize(module.functions.size());

    // Structural type canonicalization: the id of a type is the index
    // of the first structurally equal type. call_indirect checks then
    // reduce to one integer compare even for modules with duplicate
    // type entries.
    typeCanon_.resize(module.types.size());
    for (uint32_t i = 0; i < module.types.size(); ++i) {
        typeCanon_[i] = i;
        for (uint32_t j = 0; j < i; ++j) {
            if (module.types[j] == module.types[i]) {
                typeCanon_[i] = j;
                break;
            }
        }
    }
    funcTypeCanon_.resize(module.functions.size());
    for (uint32_t i = 0; i < module.functions.size(); ++i) {
        uint32_t t = module.functions[i].typeIdx;
        funcTypeCanon_[i] =
            t < typeCanon_.size() ? typeCanon_[t] : UINT32_MAX;
    }
}

const CompiledFunction &
CompiledModule::function(uint32_t func_idx)
{
    CompiledFunction &f = funcs_.at(func_idx);
    if (!f.compiled) {
        f = translateFunction(module_, func_idx, *this);
        ++translations_;
    }
    return f;
}

} // namespace wasabi::interp::engine
