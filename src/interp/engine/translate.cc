/**
 * @file
 * Translation of flat wasm function bodies into the fast engine's
 * pre-decoded FInstr format (see code.h for the format itself).
 *
 * The translator is a single forward pass that mirrors a validator:
 * it tracks the static operand-stack height, a control-frame stack,
 * and reachability, resolving every branch to an absolute code index,
 * a carried-value count and an absolute unwind slot. Alongside, it
 * computes the batched accounting (`charge`) of every charge point so
 * that fuel and ExecStats behave exactly like the legacy walker's
 * per-dispatch accounting on every path — including the paths the
 * legacy walker takes implicitly (an `if` with a false condition
 * dispatches the `end`; falling out of a then-branch dispatches both
 * `else` and `end`; a branch to the function label exits without
 * dispatching anything else).
 *
 * Invariant: the pending (not yet charged) instruction count is zero
 * on every edge into a join point, so a charge can never depend on
 * which path reached it. Fallthrough edges flush through synthetic
 * Charge ops that branch edges jump over.
 *
 * Structurally invalid bodies (operand underflow, out-of-range
 * indices, unbalanced blocks) fail translation with an InternalError
 * trap; the legacy engine would hit undefined behavior on them.
 */

#include <string>
#include <utility>

#include "core/static_info.h"
#include "interp/engine/code.h"
#include "interp/numerics.h"
#include "interp/trap.h"

namespace wasabi::interp::engine {

using wasm::Instr;
using wasm::OpClass;
using wasm::Opcode;
using wasm::Value;
using wasm::ValType;

namespace {

/** Fixups may patch either a code slot or a br_table pool entry. */
constexpr uint32_t kPoolFixupBit = 0x80000000u;

/** Flush batched charges before they can overflow the u16 field. */
constexpr uint32_t kChargeFlushLimit = 0xFFF0;

/** One open control construct during translation. */
struct CtrlFrame {
    enum Kind : uint8_t { Func, Block, Loop, If } kind = Block;
    uint32_t brArity = 0;     ///< values a branch to this label carries
    uint32_t resultArity = 0; ///< values left on the stack after `end`
    uint32_t entryHeight = 0; ///< operand height at entry (cond popped)
    uint32_t loopTarget = 0;  ///< Loop: absolute back-edge target
    bool enteredReachable = true;
    bool hasElse = false;
    bool thenJumped = false;  ///< If: then-path emitted a Jump at `else`
    uint32_t falseFixup = UINT32_MAX; ///< If: BrIfNot awaiting a target
    uint32_t thenJumpPos = UINT32_MAX;
    /** Forward branches to this label (bit 31 set: pool index). */
    std::vector<uint32_t> fixups;
};

class Translator {
  public:
    Translator(const wasm::Module &module, uint32_t func_idx,
               const CompiledModule &cm)
        : m_(module), funcIdx_(func_idx), cm_(cm)
    {
    }

    CompiledFunction
    run()
    {
        const wasm::Function &func = m_.functions.at(funcIdx_);
        if (func.imported())
            fail("imported function has no body to translate");
        const wasm::FuncType &type = m_.funcType(funcIdx_);

        out_.numParams = static_cast<uint32_t>(type.params.size());
        out_.numLocals =
            out_.numParams + static_cast<uint32_t>(func.locals.size());
        out_.resultArity = static_cast<uint32_t>(type.results.size());
        for (ValType t : func.locals)
            out_.localInit.push_back(Value::zero(t));

        CtrlFrame root;
        root.kind = CtrlFrame::Func;
        root.brArity = out_.resultArity;
        root.resultArity = out_.resultArity;
        frames_.push_back(std::move(root));

        // Translate until the body ends or the function frame closes
        // (the legacy walker returns at the final `end`; trailing
        // instructions, which a decoder never produces, are equally
        // never executed).
        for (uint32_t i = 0; i < func.body.size(); ++i) {
            if (frames_.empty())
                break;
            instrIdx_ = i; // doLoad/doStore key elision claims on it
            translateOne(func.body[i]);
        }
        if (!frames_.empty()) {
            // Builder-made body without a terminating `end`: the
            // legacy walker falls out of its loop, charging nothing
            // for the implicit exit.
            if (frames_.size() != 1)
                fail("unclosed blocks at end of body");
            closeFunction(/*end_charged=*/false);
        }
        out_.compiled = true;
        return std::move(out_);
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        throw Trap(TrapKind::InternalError,
                   "cannot translate function " +
                       std::to_string(funcIdx_) + ": " + what);
    }

    // --- static operand-stack tracking -----------------------------

    void
    push(uint32_t n = 1)
    {
        height_ += n;
        if (height_ > out_.maxOperand)
            out_.maxOperand = height_;
    }

    void
    pop(uint32_t n = 1)
    {
        if (height_ < n)
            fail("operand stack underflow");
        height_ -= n;
    }

    // --- code emission and charge accounting -----------------------

    uint32_t
    emit(FOp op, uint8_t aux = 0, uint16_t charge = 0, uint32_t a = 0,
         uint64_t b = 0)
    {
        out_.code.push_back(FInstr{op, aux, charge, a, b});
        return static_cast<uint32_t>(out_.code.size() - 1);
    }

    /** A batched instruction retires: charged at the next charge
     * point. Flushes early so the u16 charge field cannot overflow. */
    void
    batch()
    {
        if (++pending_ >= kChargeFlushLimit)
            flushPending();
    }

    /** Emit a synthetic Charge for the accumulated batch, if any. */
    void
    flushPending()
    {
        if (pending_ != 0) {
            emit(FOp::Charge, 0, static_cast<uint16_t>(pending_));
            pending_ = 0;
        }
    }

    /** Charge of a real charge-point instruction: the batch plus the
     * instruction itself. */
    uint16_t
    takeCharge()
    {
        uint32_t c = pending_ + 1;
        pending_ = 0;
        return static_cast<uint16_t>(c);
    }

    /** Charge of a synthetic op standing in for already-counted
     * instructions (the Jump emitted at `else`). */
    uint16_t
    takeFlush()
    {
        uint32_t c = pending_;
        pending_ = 0;
        return static_cast<uint16_t>(c);
    }

    void
    bind(std::vector<uint32_t> &fixups, uint32_t target)
    {
        for (uint32_t f : fixups) {
            if (f & kPoolFixupBit)
                out_.tablePool[f & ~kPoolFixupBit].pc = target;
            else
                out_.code[f].a = target;
        }
        fixups.clear();
    }

    // --- control constructs ----------------------------------------

    static uint32_t
    blockArity(const Instr &ins)
    {
        return ins.block ? 1u : 0u;
    }

    void
    doBlock(const Instr &ins)
    {
        CtrlFrame f;
        f.kind = CtrlFrame::Block;
        f.brArity = f.resultArity = blockArity(ins);
        f.entryHeight = height_;
        f.enteredReachable = reachable_;
        if (reachable_)
            batch(); // the `block` opcode is dispatched
        frames_.push_back(std::move(f));
    }

    void
    doLoop(const Instr &ins)
    {
        CtrlFrame f;
        f.kind = CtrlFrame::Loop;
        f.brArity = 0;
        f.resultArity = blockArity(ins);
        f.entryHeight = height_;
        f.enteredReachable = reachable_;
        if (reachable_) {
            batch();        // the `loop` opcode is dispatched on entry
            flushPending(); // back edges must not re-charge it
            f.loopTarget = static_cast<uint32_t>(out_.code.size());
        }
        frames_.push_back(std::move(f));
    }

    void
    doIf(const Instr &ins)
    {
        CtrlFrame f;
        f.kind = CtrlFrame::If;
        f.brArity = f.resultArity = blockArity(ins);
        f.enteredReachable = reachable_;
        if (reachable_) {
            pop(1); // condition
            f.entryHeight = height_;
            // False edge target patched at `else` or `end`.
            f.falseFixup = emit(FOp::BrIfNot, 0, takeCharge());
        } else {
            f.entryHeight = height_;
        }
        frames_.push_back(std::move(f));
    }

    void
    doElse()
    {
        if (frames_.size() < 2 || frames_.back().kind != CtrlFrame::If)
            fail("else outside if");
        CtrlFrame &f = frames_.back();
        if (f.hasElse)
            fail("duplicate else");
        f.hasElse = true;
        if (reachable_ && f.enteredReachable) {
            // Falling out of the then-branch, the legacy walker
            // dispatches the `else` (one charge) and then re-dispatches
            // the matching `end` (another). The Jump carries the then
            // body + `else`; it lands on the shared end Charge(1).
            if (height_ != f.entryHeight + f.resultArity)
                fail("then branch height mismatch at else");
            batch(); // the `else` instruction
            f.thenJumped = true;
            f.thenJumpPos = emit(FOp::Jump, 0, takeFlush());
        }
        reachable_ = f.enteredReachable;
        height_ = f.entryHeight;
        pending_ = 0;
        if (f.enteredReachable) {
            // False edge of the lowered `if` enters the else body
            // directly (the `else` opcode is not dispatched on it).
            out_.code[f.falseFixup].a =
                static_cast<uint32_t>(out_.code.size());
            f.falseFixup = UINT32_MAX;
        }
    }

    void
    closeFunction(bool end_charged)
    {
        CtrlFrame f = std::move(frames_.back());
        frames_.pop_back();
        if (reachable_) {
            // The final `end` is dispatched (and charged) only when
            // execution falls into it; the height check replaces the
            // old debug-only assert.
            uint32_t c = pending_ + (end_charged ? 1u : 0u);
            pending_ = 0;
            emit(FOp::End, static_cast<uint8_t>(out_.resultArity),
                 static_cast<uint16_t>(c));
        }
        if (!f.fixups.empty()) {
            // Branches to the function label exit without dispatching
            // anything further — a charge-free landing pad.
            uint32_t pad =
                emit(FOp::FrameExit,
                     static_cast<uint8_t>(out_.resultArity), 0);
            bind(f.fixups, pad);
        }
        reachable_ = false;
    }

    void
    doEnd()
    {
        if (frames_.size() == 1) {
            closeFunction(/*end_charged=*/true);
            return;
        }
        CtrlFrame f = std::move(frames_.back());
        frames_.pop_back();
        bool fell = reachable_ && f.enteredReachable;
        if (fell && height_ != f.entryHeight + f.resultArity)
            fail("block height mismatch at end");

        switch (f.kind) {
          case CtrlFrame::Loop:
            // Forward fixups cannot target a loop label; the `end` is
            // dispatched only on fallthrough, so batching continues.
            if (fell)
                batch();
            reachable_ = fell;
            break;
          case CtrlFrame::Block:
            if (fell)
                batch(); // the `end`, dispatched on fallthrough only
            if (!f.fixups.empty()) {
                // Branch edges land *after* the end (legacy cont =
                // endIdx + 1), so flush the fallthrough batch first.
                flushPending();
                bind(f.fixups, static_cast<uint32_t>(out_.code.size()));
                reachable_ = true;
            } else {
                reachable_ = fell;
            }
            break;
          case CtrlFrame::If:
            doIfEnd(f, fell);
            break;
          case CtrlFrame::Func:
            fail("unbalanced end");
        }
        height_ = f.entryHeight + f.resultArity;
    }

    void
    doIfEnd(CtrlFrame &f, bool fell)
    {
        if (!f.enteredReachable) {
            reachable_ = false;
            return;
        }
        if (!f.hasElse) {
            // The false edge of the lowered `if` jumps straight to the
            // `end`, which the legacy walker dispatches on both paths.
            if (fell)
                flushPending();
            uint32_t end_pos = emit(FOp::Charge, 0, 1);
            out_.code[f.falseFixup].a = end_pos;
            bind(f.fixups, static_cast<uint32_t>(out_.code.size()));
            reachable_ = true;
            return;
        }
        if (f.thenJumped) {
            // Then-path arrives via its Jump (which already covered
            // the `else`); the false path falls through the else body.
            // Both still dispatch the `end`: one shared Charge(1).
            if (fell)
                flushPending();
            uint32_t end_pos = emit(FOp::Charge, 0, 1);
            out_.code[f.thenJumpPos].a = end_pos;
            bind(f.fixups, static_cast<uint32_t>(out_.code.size()));
            reachable_ = true;
            return;
        }
        // Then-path never reaches the end; only the else fallthrough
        // (and explicit branches) do.
        if (fell) {
            batch(); // the `end`
            if (!f.fixups.empty()) {
                flushPending();
                bind(f.fixups, static_cast<uint32_t>(out_.code.size()));
            }
            reachable_ = true;
        } else if (!f.fixups.empty()) {
            bind(f.fixups, static_cast<uint32_t>(out_.code.size()));
            reachable_ = true;
        } else {
            reachable_ = false;
        }
    }

    // --- branches --------------------------------------------------

    CtrlFrame &
    frameOf(uint32_t label)
    {
        if (label >= frames_.size())
            fail("branch label out of range");
        return frames_[frames_.size() - 1 - label];
    }

    void
    emitBranch(FOp op, uint32_t label)
    {
        CtrlFrame &f = frameOf(label);
        uint32_t keep = f.brArity;
        if (height_ < f.entryHeight + keep)
            fail("branch below label height");
        uint64_t slot = out_.numLocals + f.entryHeight;
        uint32_t pos = emit(op, static_cast<uint8_t>(keep), takeCharge(),
                            0, slot);
        if (f.kind == CtrlFrame::Loop)
            out_.code[pos].a = f.loopTarget;
        else
            f.fixups.push_back(pos);
    }

    void
    doBrTable(const Instr &ins)
    {
        pop(1); // selector
        if (ins.table.empty())
            fail("br_table without targets");
        uint32_t start = static_cast<uint32_t>(out_.tablePool.size());
        for (uint32_t label : ins.table) {
            CtrlFrame &f = frameOf(label);
            uint32_t keep = f.brArity;
            if (height_ < f.entryHeight + keep)
                fail("branch below label height");
            BrTarget t;
            t.keep = keep;
            t.slot = out_.numLocals + f.entryHeight;
            uint32_t pool_idx =
                static_cast<uint32_t>(out_.tablePool.size());
            if (f.kind == CtrlFrame::Loop)
                t.pc = f.loopTarget;
            else
                f.fixups.push_back(pool_idx | kPoolFixupBit);
            out_.tablePool.push_back(t);
        }
        emit(FOp::BrTable, 0, takeCharge(), start, ins.table.size());
    }

    // --- calls -----------------------------------------------------

    void
    doCall(uint32_t callee)
    {
        if (callee >= m_.functions.size())
            fail("call to out-of-range function");
        const wasm::FuncType &t = m_.funcType(callee);
        pop(static_cast<uint32_t>(t.params.size()));
        if (m_.functions[callee].imported()) {
            emit(FOp::CallHost, static_cast<uint8_t>(t.results.size()),
                 takeCharge(), callee, t.params.size());
        } else {
            emit(FOp::Call, 0, takeCharge(), callee);
        }
        push(static_cast<uint32_t>(t.results.size()));
    }

    void
    doCallIndirect(uint32_t type_idx)
    {
        if (type_idx >= m_.types.size())
            fail("call_indirect to out-of-range type");
        const wasm::FuncType &t = m_.types[type_idx];
        pop(1); // table index
        pop(static_cast<uint32_t>(t.params.size()));
        emit(FOp::CallIndirect, static_cast<uint8_t>(t.results.size()),
             takeCharge(), cm_.canonicalType(type_idx), t.params.size());
        push(static_cast<uint32_t>(t.results.size()));
    }

    // --- memory ----------------------------------------------------

    /** Whether a verified range claim licenses dropping the bounds
     * check of the access currently being translated. Unchecked
     * variants keep identical charge/stat behavior, so elision is
     * unobservable except through ExecStats' elided counter. */
    bool
    elide() const
    {
        return cm_.hasElisions() &&
               cm_.elides(core::packLoc({funcIdx_, instrIdx_}));
    }

    void
    doLoad(const Instr &ins)
    {
        pop(1);
        uint32_t off = ins.imm.mem.offset;
        const bool u = elide();
        switch (ins.op) {
          case Opcode::I32Load:
            emit(u ? FOp::I32LoadU : FOp::I32Load, 0, takeCharge(),
                 off);
            break;
          case Opcode::I64Load:
            emit(u ? FOp::I64LoadU : FOp::I64Load, 0, takeCharge(),
                 off);
            break;
          case Opcode::F32Load:
            emit(u ? FOp::F32LoadU : FOp::F32Load, 0, takeCharge(),
                 off);
            break;
          case Opcode::F64Load:
            emit(u ? FOp::F64LoadU : FOp::F64Load, 0, takeCharge(),
                 off);
            break;
          default:
            emit(u ? FOp::LoadExtU : FOp::LoadExt,
                 static_cast<uint8_t>(ins.op), takeCharge(), off,
                 wasm::memAccessBytes(ins.op));
            break;
        }
        push(1);
    }

    void
    doStore(const Instr &ins)
    {
        pop(2);
        uint32_t off = ins.imm.mem.offset;
        const bool u = elide();
        switch (ins.op) {
          case Opcode::I32Store:
            emit(u ? FOp::I32StoreU : FOp::I32Store, 0, takeCharge(),
                 off);
            break;
          case Opcode::I64Store:
            emit(u ? FOp::I64StoreU : FOp::I64Store, 0, takeCharge(),
                 off);
            break;
          case Opcode::F32Store:
            emit(u ? FOp::F32StoreU : FOp::F32Store, 0, takeCharge(),
                 off);
            break;
          case Opcode::F64Store:
            emit(u ? FOp::F64StoreU : FOp::F64Store, 0, takeCharge(),
                 off);
            break;
          default:
            emit(u ? FOp::StoreNarrowU : FOp::StoreNarrow,
                 static_cast<uint8_t>(wasm::memAccessBytes(ins.op)),
                 takeCharge(), off);
            break;
        }
    }

    // --- numerics --------------------------------------------------

    void
    doUnary(Opcode op)
    {
        pop(1);
        push(1);
        if (op == Opcode::I32Eqz) {
            emit(FOp::I32Eqz);
            batch();
        } else if (unaryCanTrap(op)) {
            emit(FOp::UnaryTrap, static_cast<uint8_t>(op), takeCharge());
        } else {
            emit(FOp::UnaryPure, static_cast<uint8_t>(op));
            batch();
        }
    }

    /** Specialized FOp of a hot pure binary; nullopt = generic. */
    static std::optional<FOp>
    specializedBinary(Opcode op)
    {
        switch (op) {
          case Opcode::I32Add: return FOp::I32Add;
          case Opcode::I32Sub: return FOp::I32Sub;
          case Opcode::I32Mul: return FOp::I32Mul;
          case Opcode::I32And: return FOp::I32And;
          case Opcode::I32Or: return FOp::I32Or;
          case Opcode::I32Xor: return FOp::I32Xor;
          case Opcode::I32Shl: return FOp::I32Shl;
          case Opcode::I32ShrS: return FOp::I32ShrS;
          case Opcode::I32ShrU: return FOp::I32ShrU;
          case Opcode::I32Eq: return FOp::I32Eq;
          case Opcode::I32Ne: return FOp::I32Ne;
          case Opcode::I32LtS: return FOp::I32LtS;
          case Opcode::I32LtU: return FOp::I32LtU;
          case Opcode::I32GtS: return FOp::I32GtS;
          case Opcode::I32GtU: return FOp::I32GtU;
          case Opcode::I32LeS: return FOp::I32LeS;
          case Opcode::I32LeU: return FOp::I32LeU;
          case Opcode::I32GeS: return FOp::I32GeS;
          case Opcode::I32GeU: return FOp::I32GeU;
          case Opcode::I64Add: return FOp::I64Add;
          case Opcode::F32Add: return FOp::F32Add;
          case Opcode::F32Mul: return FOp::F32Mul;
          case Opcode::F64Add: return FOp::F64Add;
          case Opcode::F64Sub: return FOp::F64Sub;
          case Opcode::F64Mul: return FOp::F64Mul;
          case Opcode::F64Div: return FOp::F64Div;
          default: return std::nullopt;
        }
    }

    void
    doBinary(Opcode op)
    {
        pop(2);
        push(1);
        if (std::optional<FOp> spec = specializedBinary(op)) {
            emit(*spec);
            batch();
        } else if (binaryCanTrap(op)) {
            emit(FOp::BinaryTrap, static_cast<uint8_t>(op),
                 takeCharge());
        } else {
            emit(FOp::BinaryPure, static_cast<uint8_t>(op));
            batch();
        }
    }

    // --- main dispatch ---------------------------------------------

    void
    translateOne(const Instr &ins)
    {
        const wasm::OpInfo &info = wasm::opInfo(ins.op);
        // Structural opcodes are tracked even in unreachable code so
        // frames stay balanced; everything else is skipped there.
        switch (info.cls) {
          case OpClass::Block: doBlock(ins); return;
          case OpClass::Loop: doLoop(ins); return;
          case OpClass::If: doIf(ins); return;
          case OpClass::Else: doElse(); return;
          case OpClass::End: doEnd(); return;
          default: break;
        }
        if (!reachable_)
            return;

        switch (info.cls) {
          case OpClass::Nop:
            batch();
            break;
          case OpClass::Unreachable:
            emit(FOp::Unreachable, 0, takeCharge());
            reachable_ = false;
            break;
          case OpClass::Br:
            emitBranch(FOp::Br, ins.imm.idx);
            reachable_ = false;
            break;
          case OpClass::BrIf:
            pop(1); // condition
            emitBranch(FOp::BrIf, ins.imm.idx);
            break;
          case OpClass::BrTable:
            doBrTable(ins);
            reachable_ = false;
            break;
          case OpClass::Return:
            pop(out_.resultArity);
            emit(FOp::Return, static_cast<uint8_t>(out_.resultArity),
                 takeCharge());
            reachable_ = false;
            break;
          case OpClass::Call:
            doCall(ins.imm.idx);
            break;
          case OpClass::CallIndirect:
            doCallIndirect(ins.imm.idx);
            break;
          case OpClass::Drop:
            pop(1);
            emit(FOp::Drop);
            batch();
            break;
          case OpClass::Select:
            pop(3);
            push(1);
            emit(FOp::Select);
            batch();
            break;
          case OpClass::LocalGet:
            checkLocal(ins.imm.idx);
            emit(FOp::LocalGet, 0, 0, ins.imm.idx);
            push(1);
            batch();
            break;
          case OpClass::LocalSet:
            checkLocal(ins.imm.idx);
            pop(1);
            emit(FOp::LocalSet, 0, 0, ins.imm.idx);
            batch();
            break;
          case OpClass::LocalTee:
            checkLocal(ins.imm.idx);
            pop(1);
            push(1);
            emit(FOp::LocalTee, 0, 0, ins.imm.idx);
            batch();
            break;
          case OpClass::GlobalGet:
            checkGlobal(ins.imm.idx);
            emit(FOp::GlobalGet, 0, 0, ins.imm.idx);
            push(1);
            batch();
            break;
          case OpClass::GlobalSet:
            checkGlobal(ins.imm.idx);
            pop(1);
            emit(FOp::GlobalSet, 0, takeCharge(), ins.imm.idx);
            break;
          case OpClass::Load:
            doLoad(ins);
            break;
          case OpClass::Store:
            doStore(ins);
            break;
          case OpClass::MemorySize:
            emit(FOp::MemorySize, 0, takeCharge());
            push(1);
            break;
          case OpClass::MemoryGrow:
            pop(1);
            push(1);
            emit(FOp::MemoryGrow, 0, takeCharge());
            break;
          case OpClass::Const: {
            Value v = ins.constValue();
            emit(FOp::Const, static_cast<uint8_t>(v.type), 0, 0, v.bits);
            push(1);
            batch();
            break;
          }
          case OpClass::Unary:
            doUnary(ins.op);
            break;
          case OpClass::Binary:
            doBinary(ins.op);
            break;
          default:
            fail(std::string("untranslatable opcode ") +
                 wasm::name(ins.op));
        }
    }

    void
    checkLocal(uint32_t idx)
    {
        if (idx >= out_.numLocals)
            fail("local index out of range");
    }

    void
    checkGlobal(uint32_t idx)
    {
        if (idx >= m_.globals.size())
            fail("global index out of range");
    }

    const wasm::Module &m_;
    uint32_t funcIdx_;
    uint32_t instrIdx_ = 0; ///< source index of the instr in flight
    const CompiledModule &cm_;
    CompiledFunction out_;
    std::vector<CtrlFrame> frames_;
    uint32_t height_ = 0;
    uint32_t pending_ = 0;
    bool reachable_ = true;
};

} // namespace

CompiledFunction
translateFunction(const wasm::Module &module, uint32_t func_idx,
                  const CompiledModule &cm)
{
    return Translator(module, func_idx, cm).run();
}

CompiledModule::CompiledModule(const wasm::Module &module)
    : module_(module)
{
    // Pre-size so lazily translated slots never move while pointers
    // into them are live on the execution frame stack.
    funcs_.resize(module.functions.size());

    // Structural type canonicalization: the id of a type is the index
    // of the first structurally equal type. call_indirect checks then
    // reduce to one integer compare even for modules with duplicate
    // type entries.
    typeCanon_.resize(module.types.size());
    for (uint32_t i = 0; i < module.types.size(); ++i) {
        typeCanon_[i] = i;
        for (uint32_t j = 0; j < i; ++j) {
            if (module.types[j] == module.types[i]) {
                typeCanon_[i] = j;
                break;
            }
        }
    }
    funcTypeCanon_.resize(module.functions.size());
    for (uint32_t i = 0; i < module.functions.size(); ++i) {
        uint32_t t = module.functions[i].typeIdx;
        funcTypeCanon_[i] =
            t < typeCanon_.size() ? typeCanon_[t] : UINT32_MAX;
    }
}

const CompiledFunction &
CompiledModule::function(uint32_t func_idx)
{
    CompiledFunction &f = funcs_.at(func_idx);
    if (!f.compiled)
        f = translateFunction(module_, func_idx, *this);
    return f;
}

} // namespace wasabi::interp::engine
