/**
 * @file
 * Engine-intrinsic instrumentation (DESIGN.md §13): the hook side
 * table the translator emits when a HookSet is attached to a
 * CompiledModule, and the sink interface the VM dispatches into.
 *
 * In intrinsic mode no binary rewriting happens at all. The
 * translator interleaves FOp::Hook slots (each pointing at one
 * HookSite) with the ordinary pre-decoded code, for exactly the hook
 * kinds the attached HookSet subscribes to — unhooked instruction
 * classes translate to the same code as an uninstrumented run and pay
 * zero cost. Values a hook must observe but that the instruction
 * consumes (store operands, binary-op inputs, ...) are captured by a
 * preceding FOp::HookStash slot into a small per-invocation stash.
 */

#ifndef WASABI_INTERP_ENGINE_INTRINSIC_H
#define WASABI_INTERP_ENGINE_INTRINSIC_H

#include <cstdint>
#include <span>
#include <vector>

#include "core/hook_kind.h"
#include "core/static_info.h"
#include "wasm/module.h"

namespace wasabi::interp {

class Instance;

namespace engine {

/**
 * One intrinsic hook site: everything the sink needs to reconstruct
 * the exact high-level hook invocation the rewriting instrumenter
 * would have produced at this source location. `peek` operand-stack
 * values are read in place below the stack top at dispatch time;
 * `stash` values were captured earlier by a HookStash slot.
 */
struct HookSite {
    core::HookKind kind = core::HookKind::Nop;
    core::BlockKind block = core::BlockKind::Function; ///< Begin/End
    wasm::Opcode op = wasm::Opcode::Nop; ///< Const/Unary/Binary/Local/Global
    bool post = false;     ///< call_post (vs call_pre)
    bool indirect = false; ///< call_indirect (vs direct call)
    core::Location loc{};
    /** End sites: instruction index of the matching block begin. */
    uint32_t index = 0;
    uint8_t peek = 0;  ///< live values read below the stack top
    uint8_t stash = 0; ///< values captured by the paired HookStash
    /** Br/BrIf/Return: blocks the taken branch ends, innermost first
     * (the sink fires one End hook per entry when End is hooked). */
    std::vector<core::EndedBlock> ended;
};

/**
 * Receiver of intrinsic hook dispatches. The VM calls onHook() with
 * batched accounting already flushed, so a sink reading ExecStats (or
 * fuel) from inside a hook observes exact per-instruction counts —
 * the same guarantee rewrite mode gets from the host-call boundary.
 */
class IntrinsicSink {
  public:
    virtual ~IntrinsicSink() = default;

    /**
     * One hook fired at @p site. @p top is the live operand-stack
     * window (`site.peek` values ending at the stack top); @p stash is
     * the capture buffer (`site.stash` values, oldest first).
     */
    virtual void onHook(Instance &inst, const HookSite &site,
                        std::span<const wasm::Value> top,
                        std::span<const wasm::Value> stash) = 0;
};

} // namespace engine
} // namespace wasabi::interp

#endif // WASABI_INTERP_ENGINE_INTRINSIC_H
