/**
 * @file
 * The fast engine's inner loop: a computed-goto (switch fallback)
 * dispatcher over pre-decoded FInstr code running on one contiguous
 * value stack with an explicit frame stack. Locals live in the value
 * stack (a call's arguments become the callee's first locals in
 * place), so calls allocate nothing.
 *
 * Hot state — instruction pointer, stack pointer, locals base, memory
 * base/size, globals base, fuel, stat counters — is held in locals
 * and synced back to the Instance/ExecStats at the points where it
 * can be observed: host calls, memory growth, and unwind.
 */

#include <bit>
#include <cassert>
#include <cstring>

#include "interp/engine/code.h"
#include "interp/engine/engine.h"
#include "interp/numerics.h"

namespace wasabi::interp::engine {

using wasm::Opcode;
using wasm::Value;
using wasm::ValType;

// All narrow loads/stores assemble values bytewise little-endian via
// memcpy of the low bytes; that shortcut is only correct on LE hosts.
static_assert(std::endian::native == std::endian::little,
              "fast engine assumes a little-endian host");

namespace {

/** A suspended caller: where to resume, and its frame base. */
struct Frame {
    const CompiledFunction *fn;
    const FInstr *retIp;
    size_t baseOff; ///< offset into the value stack (it can move)
};

} // namespace

#if defined(__GNUC__) || defined(__clang__)
#define WASABI_VM_GOTO 1
#else
#define WASABI_VM_GOTO 0
#endif

#if WASABI_VM_GOTO
#define VM_CASE(name) lbl_##name
#define VM_NEXT()                                                       \
    do {                                                                \
        in = ip++;                                                      \
        goto *kJump[static_cast<size_t>(in->op)];                       \
    } while (0)
#else
#define VM_CASE(name) case FOp::name
#define VM_NEXT() goto vm_top
#endif

/**
 * Batched fuel + instruction accounting. Matches the legacy
 * per-dispatch scheme exactly: with f fuel remaining and a batch of c
 * instructions, the legacy walker executes f of them (each counted)
 * and traps dispatching the next — everything it executed was pure
 * and frame-local, so retiring the whole batch up front and reporting
 * `instructions += f` on exhaustion is observationally identical.
 */
#define VM_CHARGE(cexpr)                                                \
    do {                                                                \
        uint32_t c__ = (cexpr);                                         \
        if (c__ != 0) {                                                 \
            if (hasFuel) {                                              \
                if (fuel < c__) {                                       \
                    statInstr += fuel;                                  \
                    fuel = 0;                                           \
                    throw Trap(TrapKind::FuelExhausted);                \
                }                                                       \
                fuel -= c__;                                            \
            }                                                           \
            statInstr += c__;                                           \
        }                                                               \
    } while (0)

#define VM_BIN_U32(name, expr)                                          \
    VM_CASE(name) : {                                                   \
        uint32_t r = (--sp)->i32();                                     \
        uint32_t l = (sp - 1)->i32();                                   \
        (void)l;                                                        \
        *(sp - 1) = Value::makeI32(expr);                               \
        VM_NEXT();                                                      \
    }

#define VM_BIN_F64(name, op_)                                           \
    VM_CASE(name) : {                                                   \
        double r = (--sp)->f64();                                       \
        double l = (sp - 1)->f64();                                     \
        *(sp - 1) = Value::makeF64(canonNaN(l op_ r));                  \
        VM_NEXT();                                                      \
    }

std::vector<Value>
execute(Instance &inst, uint32_t func_idx, std::span<const Value> args,
        ExecStats &stats, size_t max_call_depth)
{
    CompiledModule &cm = inst.engineCode();
    const wasm::Module &m = cm.module();
    const CompiledFunction &entry = cm.function(func_idx);

    // --- value + frame stacks --------------------------------------
    std::vector<Value> stack;
    size_t entry_locals = args.size() + entry.localInit.size();
    stack.resize(std::max<size_t>(
        std::max(entry_locals, static_cast<size_t>(entry.numLocals)) +
            entry.maxOperand,
        512));
    Value *stackData = stack.data();
    std::copy(args.begin(), args.end(), stackData);
    std::copy(entry.localInit.begin(), entry.localInit.end(),
              stackData + args.size());

    std::vector<Frame> frames;
    frames.reserve(64);

    // --- hot state, hoisted out of the Instance --------------------
    const CompiledFunction *fn = &entry;
    const FInstr *ip = entry.code.data();
    const FInstr *in = ip;
    size_t curBase = 0;
    Value *lb = stackData;              ///< locals base of current frame
    Value *sp = stackData + entry_locals; ///< one past top of stack
    std::optional<uint64_t> &fuelSlot = inst.fuel();
    bool hasFuel = fuelSlot.has_value();
    uint64_t fuel = hasFuel ? *fuelSlot : 0;
    uint64_t statInstr = 0, statCalls = 0, statMem = 0;
    uint64_t statMemElided = 0;
    uint8_t *mb = inst.memory().raw().data();
    size_t msz = inst.memory().raw().size();
    Value *gl = inst.globalsData();

    // Scratch shared by the common call/return blocks below.
    uint32_t retArity = 0;
    uint32_t calleeIdx = 0;
    uint32_t hostParams = 0;
    uint32_t hostRet = 0;
    std::vector<Value> hostResults;

    // Intrinsic instrumentation (DESIGN.md §13): the dispatch sink
    // and the small capture buffer HookStash fills for hooks whose
    // instruction consumes the values they observe (at most 3: the
    // select hook's cond/first/second).
    IntrinsicSink *const sink = cm.intrinsicSink();
    Value hookStash[3];

    auto flushCounters = [&] {
        stats.instructions += statInstr;
        stats.calls += statCalls;
        stats.memoryOps += statMem;
        stats.memoryOpsElided += statMemElided;
        statInstr = statCalls = statMem = statMemElided = 0;
        if (hasFuel)
            fuelSlot = fuel;
    };
    auto reloadAfterHost = [&] {
        hasFuel = fuelSlot.has_value();
        fuel = hasFuel ? *fuelSlot : 0;
        mb = inst.memory().raw().data();
        msz = inst.memory().raw().size();
        gl = inst.globalsData();
    };

#if WASABI_VM_GOTO
    static const void *const kJump[] = {
#define WASABI_VM_LBL(name) &&lbl_##name,
        WASABI_ENGINE_FOPS(WASABI_VM_LBL)
#undef WASABI_VM_LBL
    };
#endif

    try {
#if WASABI_VM_GOTO
        VM_NEXT();
#else
      vm_top:
        in = ip++;
        switch (in->op) {
#endif

        VM_CASE(Charge) : {
            VM_CHARGE(in->charge);
            VM_NEXT();
        }
        VM_CASE(Jump) : {
            VM_CHARGE(in->charge);
            ip = fn->code.data() + in->a;
            VM_NEXT();
        }
        VM_CASE(Br) : {
            VM_CHARGE(in->charge);
            uint32_t keep = in->aux;
            Value *dst = lb + in->b;
            for (uint32_t k = 0; k < keep; ++k)
                dst[k] = *(sp - keep + k);
            sp = dst + keep;
            ip = fn->code.data() + in->a;
            VM_NEXT();
        }
        VM_CASE(BrIf) : {
            VM_CHARGE(in->charge);
            if ((--sp)->i32() != 0) {
                uint32_t keep = in->aux;
                Value *dst = lb + in->b;
                for (uint32_t k = 0; k < keep; ++k)
                    dst[k] = *(sp - keep + k);
                sp = dst + keep;
                ip = fn->code.data() + in->a;
            }
            VM_NEXT();
        }
        VM_CASE(BrIfNot) : {
            VM_CHARGE(in->charge);
            if ((--sp)->i32() == 0)
                ip = fn->code.data() + in->a;
            VM_NEXT();
        }
        VM_CASE(BrTable) : {
            VM_CHARGE(in->charge);
            uint32_t idx = (--sp)->i32();
            uint32_t n = static_cast<uint32_t>(in->b);
            const BrTarget &t =
                fn->tablePool[in->a + (idx < n - 1 ? idx : n - 1)];
            Value *dst = lb + t.slot;
            for (uint32_t k = 0; k < t.keep; ++k)
                dst[k] = *(sp - t.keep + k);
            sp = dst + t.keep;
            ip = fn->code.data() + t.pc;
            VM_NEXT();
        }
        VM_CASE(Return) : {
            VM_CHARGE(in->charge);
            retArity = in->aux;
            goto do_return;
        }
        VM_CASE(End) : {
            VM_CHARGE(in->charge);
            if (static_cast<size_t>(sp - lb) != fn->numLocals + in->aux) {
                // Replaces the old debug-only assert: a structurally
                // broken body leaves the wrong number of results.
                throw Trap(TrapKind::InternalError,
                           "operand stack height at function exit does "
                           "not match the result arity");
            }
            retArity = in->aux;
            goto do_return;
        }
        VM_CASE(FrameExit) : {
            // Landing pad of branches to the function label; the
            // legacy walker exits without charging anything more.
            retArity = in->aux;
            goto do_return;
        }
        VM_CASE(Call) : {
            VM_CHARGE(in->charge);
            ++statCalls;
            calleeIdx = in->a;
            goto do_wasm_call;
        }
        VM_CASE(CallHost) : {
            VM_CHARGE(in->charge);
            ++statCalls;
            calleeIdx = in->a;
            hostParams = static_cast<uint32_t>(in->b);
            hostRet = in->aux;
            goto do_host_call;
        }
        VM_CASE(CallIndirect) : {
            VM_CHARGE(in->charge);
            ++statCalls;
            std::optional<uint32_t> callee =
                inst.table().get((--sp)->i32());
            if (!callee)
                throw Trap(TrapKind::UninitializedTableElement);
            if (cm.funcCanonicalType(*callee) != in->a)
                throw Trap(TrapKind::IndirectCallTypeMismatch);
            calleeIdx = *callee;
            if (m.functions[calleeIdx].imported()) {
                hostParams = static_cast<uint32_t>(in->b);
                hostRet = in->aux;
                goto do_host_call;
            }
            goto do_wasm_call;
        }
        VM_CASE(Unreachable) : {
            VM_CHARGE(in->charge);
            throw Trap(TrapKind::Unreachable);
        }
        VM_CASE(Hook) : {
            // Engine-intrinsic instrumentation dispatch (DESIGN.md
            // §13). Counters are flushed first so the analysis
            // observes exact retired counts — the same guarantee the
            // host-call boundary gives rewrite mode — and reloaded
            // after, since an analysis may legitimately inspect (or a
            // profiler grow) instance state.
            VM_CHARGE(in->charge);
            if (sink != nullptr) {
                const HookSite &site = fn->hookSites[in->a];
                flushCounters();
                sink->onHook(
                    inst, site,
                    std::span<const Value>(sp - site.peek, site.peek),
                    std::span<const Value>(hookStash, site.stash));
                reloadAfterHost();
            }
            VM_NEXT();
        }
        VM_CASE(HookStash) : {
            // Capture operands a hooked instruction is about to
            // consume; the following Hook slot passes them on.
            for (uint32_t k = 0; k < in->aux; ++k)
                hookStash[k] = *(sp - in->aux + k);
            VM_NEXT();
        }
        VM_CASE(Drop) : {
            --sp;
            VM_NEXT();
        }
        VM_CASE(Select) : {
            uint32_t cond = (--sp)->i32();
            Value second = *--sp;
            if (cond == 0)
                *(sp - 1) = second;
            VM_NEXT();
        }
        VM_CASE(LocalGet) : {
            *sp++ = lb[in->a];
            VM_NEXT();
        }
        VM_CASE(LocalSet) : {
            lb[in->a] = *--sp;
            VM_NEXT();
        }
        VM_CASE(LocalTee) : {
            lb[in->a] = *(sp - 1);
            VM_NEXT();
        }
        VM_CASE(GlobalGet) : {
            *sp++ = gl[in->a];
            VM_NEXT();
        }
        VM_CASE(GlobalSet) : {
            VM_CHARGE(in->charge);
            gl[in->a] = *--sp;
            VM_NEXT();
        }
        VM_CASE(I32Load) : {
            VM_CHARGE(in->charge);
            ++statMem;
            uint64_t ea =
                static_cast<uint64_t>((sp - 1)->i32()) + in->a;
            if (ea + 4 > msz)
                throw Trap(TrapKind::MemoryOutOfBounds);
            uint32_t v;
            std::memcpy(&v, mb + ea, 4);
            *(sp - 1) = Value::makeI32(v);
            VM_NEXT();
        }
        VM_CASE(I64Load) : {
            VM_CHARGE(in->charge);
            ++statMem;
            uint64_t ea =
                static_cast<uint64_t>((sp - 1)->i32()) + in->a;
            if (ea + 8 > msz)
                throw Trap(TrapKind::MemoryOutOfBounds);
            uint64_t v;
            std::memcpy(&v, mb + ea, 8);
            *(sp - 1) = Value::makeI64(v);
            VM_NEXT();
        }
        VM_CASE(F32Load) : {
            VM_CHARGE(in->charge);
            ++statMem;
            uint64_t ea =
                static_cast<uint64_t>((sp - 1)->i32()) + in->a;
            if (ea + 4 > msz)
                throw Trap(TrapKind::MemoryOutOfBounds);
            uint32_t v;
            std::memcpy(&v, mb + ea, 4);
            *(sp - 1) = Value(ValType::F32, v);
            VM_NEXT();
        }
        VM_CASE(F64Load) : {
            VM_CHARGE(in->charge);
            ++statMem;
            uint64_t ea =
                static_cast<uint64_t>((sp - 1)->i32()) + in->a;
            if (ea + 8 > msz)
                throw Trap(TrapKind::MemoryOutOfBounds);
            uint64_t v;
            std::memcpy(&v, mb + ea, 8);
            *(sp - 1) = Value(ValType::F64, v);
            VM_NEXT();
        }
        VM_CASE(LoadExt) : {
            VM_CHARGE(in->charge);
            ++statMem;
            uint64_t w = in->b;
            uint64_t ea =
                static_cast<uint64_t>((sp - 1)->i32()) + in->a;
            if (ea + w > msz)
                throw Trap(TrapKind::MemoryOutOfBounds);
            uint64_t raw = 0;
            std::memcpy(&raw, mb + ea, w);
            *(sp - 1) =
                loadedValue(static_cast<Opcode>(in->aux), raw);
            VM_NEXT();
        }
        VM_CASE(I32Store) : {
            VM_CHARGE(in->charge);
            ++statMem;
            Value v = *--sp;
            uint64_t ea =
                static_cast<uint64_t>((--sp)->i32()) + in->a;
            if (ea + 4 > msz)
                throw Trap(TrapKind::MemoryOutOfBounds);
            uint32_t bits = static_cast<uint32_t>(v.bits);
            std::memcpy(mb + ea, &bits, 4);
            VM_NEXT();
        }
        VM_CASE(I64Store) : {
            VM_CHARGE(in->charge);
            ++statMem;
            Value v = *--sp;
            uint64_t ea =
                static_cast<uint64_t>((--sp)->i32()) + in->a;
            if (ea + 8 > msz)
                throw Trap(TrapKind::MemoryOutOfBounds);
            std::memcpy(mb + ea, &v.bits, 8);
            VM_NEXT();
        }
        VM_CASE(F32Store) : {
            VM_CHARGE(in->charge);
            ++statMem;
            Value v = *--sp;
            uint64_t ea =
                static_cast<uint64_t>((--sp)->i32()) + in->a;
            if (ea + 4 > msz)
                throw Trap(TrapKind::MemoryOutOfBounds);
            uint32_t bits = static_cast<uint32_t>(v.bits);
            std::memcpy(mb + ea, &bits, 4);
            VM_NEXT();
        }
        VM_CASE(F64Store) : {
            VM_CHARGE(in->charge);
            ++statMem;
            Value v = *--sp;
            uint64_t ea =
                static_cast<uint64_t>((--sp)->i32()) + in->a;
            if (ea + 8 > msz)
                throw Trap(TrapKind::MemoryOutOfBounds);
            std::memcpy(mb + ea, &v.bits, 8);
            VM_NEXT();
        }
        VM_CASE(StoreNarrow) : {
            VM_CHARGE(in->charge);
            ++statMem;
            Value v = *--sp;
            uint64_t w = in->aux;
            uint64_t ea =
                static_cast<uint64_t>((--sp)->i32()) + in->a;
            if (ea + w > msz)
                throw Trap(TrapKind::MemoryOutOfBounds);
            std::memcpy(mb + ea, &v.bits, w);
            VM_NEXT();
        }
        // Unchecked variants: identical to their checked twins minus
        // the bounds test, which a verified RangeClaim proved
        // redundant. Debug builds keep an assert as the safety gate
        // the differential tests lean on; the claim checker plus the
        // memory-never-shrinks invariant make it unreachable.
        VM_CASE(I32LoadU) : {
            VM_CHARGE(in->charge);
            ++statMem;
            ++statMemElided;
            uint64_t ea =
                static_cast<uint64_t>((sp - 1)->i32()) + in->a;
            assert(ea + 4 <= msz && "elided bounds check violated");
            uint32_t v;
            std::memcpy(&v, mb + ea, 4);
            *(sp - 1) = Value::makeI32(v);
            VM_NEXT();
        }
        VM_CASE(I64LoadU) : {
            VM_CHARGE(in->charge);
            ++statMem;
            ++statMemElided;
            uint64_t ea =
                static_cast<uint64_t>((sp - 1)->i32()) + in->a;
            assert(ea + 8 <= msz && "elided bounds check violated");
            uint64_t v;
            std::memcpy(&v, mb + ea, 8);
            *(sp - 1) = Value::makeI64(v);
            VM_NEXT();
        }
        VM_CASE(F32LoadU) : {
            VM_CHARGE(in->charge);
            ++statMem;
            ++statMemElided;
            uint64_t ea =
                static_cast<uint64_t>((sp - 1)->i32()) + in->a;
            assert(ea + 4 <= msz && "elided bounds check violated");
            uint32_t v;
            std::memcpy(&v, mb + ea, 4);
            *(sp - 1) = Value(ValType::F32, v);
            VM_NEXT();
        }
        VM_CASE(F64LoadU) : {
            VM_CHARGE(in->charge);
            ++statMem;
            ++statMemElided;
            uint64_t ea =
                static_cast<uint64_t>((sp - 1)->i32()) + in->a;
            assert(ea + 8 <= msz && "elided bounds check violated");
            uint64_t v;
            std::memcpy(&v, mb + ea, 8);
            *(sp - 1) = Value(ValType::F64, v);
            VM_NEXT();
        }
        VM_CASE(LoadExtU) : {
            VM_CHARGE(in->charge);
            ++statMem;
            ++statMemElided;
            uint64_t w = in->b;
            uint64_t ea =
                static_cast<uint64_t>((sp - 1)->i32()) + in->a;
            assert(ea + w <= msz && "elided bounds check violated");
            uint64_t raw = 0;
            std::memcpy(&raw, mb + ea, w);
            *(sp - 1) =
                loadedValue(static_cast<Opcode>(in->aux), raw);
            VM_NEXT();
        }
        VM_CASE(I32StoreU) : {
            VM_CHARGE(in->charge);
            ++statMem;
            ++statMemElided;
            Value v = *--sp;
            uint64_t ea =
                static_cast<uint64_t>((--sp)->i32()) + in->a;
            assert(ea + 4 <= msz && "elided bounds check violated");
            uint32_t bits = static_cast<uint32_t>(v.bits);
            std::memcpy(mb + ea, &bits, 4);
            VM_NEXT();
        }
        VM_CASE(I64StoreU) : {
            VM_CHARGE(in->charge);
            ++statMem;
            ++statMemElided;
            Value v = *--sp;
            uint64_t ea =
                static_cast<uint64_t>((--sp)->i32()) + in->a;
            assert(ea + 8 <= msz && "elided bounds check violated");
            std::memcpy(mb + ea, &v.bits, 8);
            VM_NEXT();
        }
        VM_CASE(F32StoreU) : {
            VM_CHARGE(in->charge);
            ++statMem;
            ++statMemElided;
            Value v = *--sp;
            uint64_t ea =
                static_cast<uint64_t>((--sp)->i32()) + in->a;
            assert(ea + 4 <= msz && "elided bounds check violated");
            uint32_t bits = static_cast<uint32_t>(v.bits);
            std::memcpy(mb + ea, &bits, 4);
            VM_NEXT();
        }
        VM_CASE(F64StoreU) : {
            VM_CHARGE(in->charge);
            ++statMem;
            ++statMemElided;
            Value v = *--sp;
            uint64_t ea =
                static_cast<uint64_t>((--sp)->i32()) + in->a;
            assert(ea + 8 <= msz && "elided bounds check violated");
            std::memcpy(mb + ea, &v.bits, 8);
            VM_NEXT();
        }
        VM_CASE(StoreNarrowU) : {
            VM_CHARGE(in->charge);
            ++statMem;
            ++statMemElided;
            Value v = *--sp;
            uint64_t w = in->aux;
            uint64_t ea =
                static_cast<uint64_t>((--sp)->i32()) + in->a;
            assert(ea + w <= msz && "elided bounds check violated");
            std::memcpy(mb + ea, &v.bits, w);
            VM_NEXT();
        }
        VM_CASE(MemorySize) : {
            VM_CHARGE(in->charge);
            ++statMem;
            *sp++ = Value::makeI32(
                static_cast<uint32_t>(msz / wasm::kPageSize));
            VM_NEXT();
        }
        VM_CASE(MemoryGrow) : {
            VM_CHARGE(in->charge);
            ++statMem;
            uint32_t delta = (sp - 1)->i32();
            *(sp - 1) = Value::makeI32(inst.memory().grow(delta));
            mb = inst.memory().raw().data();
            msz = inst.memory().raw().size();
            VM_NEXT();
        }
        VM_CASE(Const) : {
            *sp++ = Value(static_cast<ValType>(in->aux), in->b);
            VM_NEXT();
        }
        VM_CASE(UnaryPure) : {
            *(sp - 1) =
                evalUnary(static_cast<Opcode>(in->aux), *(sp - 1));
            VM_NEXT();
        }
        VM_CASE(UnaryTrap) : {
            VM_CHARGE(in->charge);
            *(sp - 1) =
                evalUnary(static_cast<Opcode>(in->aux), *(sp - 1));
            VM_NEXT();
        }
        VM_CASE(BinaryPure) : {
            Value r = *--sp;
            *(sp - 1) =
                evalBinary(static_cast<Opcode>(in->aux), *(sp - 1), r);
            VM_NEXT();
        }
        VM_CASE(BinaryTrap) : {
            VM_CHARGE(in->charge);
            Value r = *--sp;
            *(sp - 1) =
                evalBinary(static_cast<Opcode>(in->aux), *(sp - 1), r);
            VM_NEXT();
        }

        // Specialized batched numerics; each expression mirrors the
        // corresponding evalUnary/evalBinary case bit for bit.
        VM_BIN_U32(I32Add, l + r)
        VM_BIN_U32(I32Sub, l - r)
        VM_BIN_U32(I32Mul, l *r)
        VM_BIN_U32(I32And, l &r)
        VM_BIN_U32(I32Or, l | r)
        VM_BIN_U32(I32Xor, l ^ r)
        VM_BIN_U32(I32Shl, l << (r & 31))
        VM_BIN_U32(I32ShrS, static_cast<uint32_t>(
                                static_cast<int32_t>(l) >> (r & 31)))
        VM_BIN_U32(I32ShrU, l >> (r & 31))
        VM_CASE(I32Eqz) : {
            *(sp - 1) = Value::makeI32((sp - 1)->i32() == 0 ? 1 : 0);
            VM_NEXT();
        }
        VM_BIN_U32(I32Eq, l == r ? 1 : 0)
        VM_BIN_U32(I32Ne, l != r ? 1 : 0)
        VM_BIN_U32(I32LtS, static_cast<int32_t>(l) <
                                   static_cast<int32_t>(r)
                               ? 1
                               : 0)
        VM_BIN_U32(I32LtU, l < r ? 1 : 0)
        VM_BIN_U32(I32GtS, static_cast<int32_t>(l) >
                                   static_cast<int32_t>(r)
                               ? 1
                               : 0)
        VM_BIN_U32(I32GtU, l > r ? 1 : 0)
        VM_BIN_U32(I32LeS, static_cast<int32_t>(l) <=
                                   static_cast<int32_t>(r)
                               ? 1
                               : 0)
        VM_BIN_U32(I32LeU, l <= r ? 1 : 0)
        VM_BIN_U32(I32GeS, static_cast<int32_t>(l) >=
                                   static_cast<int32_t>(r)
                               ? 1
                               : 0)
        VM_BIN_U32(I32GeU, l >= r ? 1 : 0)
        VM_CASE(I64Add) : {
            uint64_t r = (--sp)->i64();
            *(sp - 1) = Value::makeI64((sp - 1)->i64() + r);
            VM_NEXT();
        }
        VM_CASE(F32Add) : {
            float r = (--sp)->f32();
            *(sp - 1) = Value::makeF32(canonNaN((sp - 1)->f32() + r));
            VM_NEXT();
        }
        VM_CASE(F32Mul) : {
            float r = (--sp)->f32();
            *(sp - 1) = Value::makeF32(canonNaN((sp - 1)->f32() * r));
            VM_NEXT();
        }
        VM_BIN_F64(F64Add, +)
        VM_BIN_F64(F64Sub, -)
        VM_BIN_F64(F64Mul, *)
        VM_BIN_F64(F64Div, /)

#if !WASABI_VM_GOTO
        } // switch
        throw std::logic_error("fast engine: invalid opcode");
#endif

      do_wasm_call : {
        if (frames.size() + 1 > max_call_depth)
            throw Trap(TrapKind::CallStackExhausted);
        const CompiledFunction &callee = cm.function(calleeIdx);
        size_t sp_off = static_cast<size_t>(sp - stackData);
        size_t new_base = sp_off - callee.numParams;
        size_t need = new_base + callee.frameSlots();
        if (need > stack.size()) {
            stack.resize(std::max(need, stack.size() * 2));
            stackData = stack.data();
            sp = stackData + sp_off;
        }
        frames.push_back(Frame{fn, ip, curBase});
        if (!callee.localInit.empty()) {
            std::memcpy(sp, callee.localInit.data(),
                        callee.localInit.size() * sizeof(Value));
            sp += callee.localInit.size();
        }
        fn = &callee;
        curBase = new_base;
        lb = stackData + new_base;
        ip = callee.code.data();
        VM_NEXT();
      }

      do_host_call : {
        if (frames.size() + 1 > max_call_depth)
            throw Trap(TrapKind::CallStackExhausted);
        flushCounters(); // the host can observe stats and fuel
        hostResults.clear();
        inst.hostFunc(calleeIdx)(
            inst, std::span<const Value>(sp - hostParams, hostParams),
            hostResults);
        reloadAfterHost();
        if (hostResults.size() != hostRet) {
            // Hardening: a buggy host silently corrupted the legacy
            // walker's stack; both engines now trap instead.
            throw Trap(TrapKind::InternalError,
                       "host function returned " +
                           std::to_string(hostResults.size()) +
                           " results, expected " +
                           std::to_string(hostRet));
        }
        sp -= hostParams;
        for (const Value &v : hostResults)
            *sp++ = v;
        VM_NEXT();
      }

      do_return : {
        Value *dst = stackData + curBase;
        std::memmove(dst, sp - retArity, retArity * sizeof(Value));
        sp = dst + retArity;
        if (frames.empty())
            goto vm_done;
        Frame f = frames.back();
        frames.pop_back();
        fn = f.fn;
        ip = f.retIp;
        curBase = f.baseOff;
        lb = stackData + curBase;
        VM_NEXT();
      }

      vm_done:
        flushCounters();
        return std::vector<Value>(stackData, stackData + retArity);
    } catch (...) {
        flushCounters();
        throw;
    }
}

#undef VM_BIN_F64
#undef VM_BIN_U32
#undef VM_CHARGE
#undef VM_NEXT
#undef VM_CASE

} // namespace wasabi::interp::engine
