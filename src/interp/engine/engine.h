/**
 * @file
 * Entry point of the fast pre-decoded execution engine. Drop-in
 * equivalent of the legacy tree walker: same results, same trap
 * kinds, same fuel consumption, same ExecStats — verified by the
 * differential test gate (tests/test_engine_differential.cc).
 */

#ifndef WASABI_INTERP_ENGINE_ENGINE_H
#define WASABI_INTERP_ENGINE_ENGINE_H

#include <span>
#include <vector>

#include "interp/interpreter.h"

namespace wasabi::interp::engine {

/**
 * Execute defined function @p func_idx of @p inst on the fast engine.
 * Translated code is cached on the instance. @p stats is updated
 * incrementally (flushed before host calls and on unwind), and
 * Instance fuel is honored with legacy-identical accounting.
 * @throws Trap exactly where the legacy engine would.
 */
std::vector<wasm::Value> execute(Instance &inst, uint32_t func_idx,
                                 std::span<const wasm::Value> args,
                                 ExecStats &stats, size_t max_call_depth);

} // namespace wasabi::interp::engine

#endif // WASABI_INTERP_ENGINE_ENGINE_H
