/**
 * @file
 * The pre-decoded internal code format of the fast execution engine.
 *
 * Each defined function is translated once per instance into a flat
 * array of fixed-size FInstr slots with the control side table fused
 * in: branch targets are absolute code indices, branch arities and
 * operand-stack unwind heights are immediate operands, locals are
 * frame-relative slots, and call_indirect type checks compare
 * pre-canonicalized type ids. No `opInfo()` lookups, label stacks or
 * `byInstr` side-table reads remain at runtime.
 *
 * Fuel and ExecStats accounting is batched: only "charge point" ops
 * (control transfers, calls, and anything that can trap or has
 * effects observable after a trap) carry a non-zero `charge` — the
 * number of source instructions retired since the previous charge
 * point, inclusive. Pure stack ops between charge points execute with
 * zero bookkeeping, yet the accounting stays exactly equivalent to
 * the legacy per-instruction scheme on every path, including
 * mid-block fuel exhaustion (see DESIGN.md §9).
 */

#ifndef WASABI_INTERP_ENGINE_CODE_H
#define WASABI_INTERP_ENGINE_CODE_H

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/hook_kind.h"
#include "interp/engine/intrinsic.h"
#include "wasm/module.h"

namespace wasabi::interp::engine {

/**
 * Internal opcodes, X-macro'd so the computed-goto jump table in
 * engine.cc is generated in lockstep with the enum. Grouped by
 * dispatch shape, not by source opcode.
 */
#define WASABI_ENGINE_FOPS(X)                                           \
    /* accounting & control */                                          \
    X(Charge)      /* flush batched accounting at a join point */       \
    X(Jump)        /* a=target (else -> end) */                         \
    X(Br)          /* a=target, aux=keep, b=unwind slot */              \
    X(BrIf)        /* pop cond; branch if true */                       \
    X(BrIfNot)     /* pop cond; branch if false (lowered `if`) */       \
    X(BrTable)     /* pop idx; a=pool start, b=entry count */           \
    X(Return)      /* aux=result arity */                               \
    X(End)         /* function end: aux=arity, checked frame exit */    \
    X(FrameExit)   /* branch-to-function-label landing pad, no charge */\
    X(Call)        /* a=callee func idx */                              \
    X(CallHost)    /* a=callee func idx, b=param count */               \
    X(CallIndirect) /* a=canonical type id */                           \
    X(Unreachable)                                                      \
    /* engine-intrinsic instrumentation (DESIGN.md §13) */              \
    X(Hook)        /* a=hookSites index; dispatch to the sink */        \
    X(HookStash)   /* aux=count; capture top values into the stash */   \
    /* parametric & variables */                                        \
    X(Drop)                                                             \
    X(Select)                                                           \
    X(LocalGet)    /* a=slot */                                         \
    X(LocalSet)                                                         \
    X(LocalTee)                                                         \
    X(GlobalGet)   /* a=global idx */                                   \
    X(GlobalSet)                                                        \
    /* memory (all charge points; a=static offset) */                   \
    X(I32Load)                                                          \
    X(I64Load)                                                          \
    X(F32Load)                                                          \
    X(F64Load)                                                          \
    X(LoadExt)     /* narrow/extending loads; aux=source opcode */      \
    X(I32Store)                                                         \
    X(I64Store)                                                         \
    X(F32Store)                                                         \
    X(F64Store)                                                         \
    X(StoreNarrow) /* aux=access width in bytes */                      \
    /* unchecked memory (statically proven in-bounds; emitted only   */ \
    /* for accesses licensed by a verified RangeClaim set)           */ \
    X(I32LoadU)                                                         \
    X(I64LoadU)                                                         \
    X(F32LoadU)                                                         \
    X(F64LoadU)                                                         \
    X(LoadExtU)    /* aux=source opcode */                              \
    X(I32StoreU)                                                        \
    X(I64StoreU)                                                        \
    X(F32StoreU)                                                        \
    X(F64StoreU)                                                        \
    X(StoreNarrowU) /* aux=access width in bytes */                     \
    X(MemorySize)                                                       \
    X(MemoryGrow)                                                       \
    /* constants */                                                     \
    X(Const)       /* b=bits, aux=ValType */                            \
    /* generic numerics (aux=source opcode) */                          \
    X(UnaryPure)                                                        \
    X(UnaryTrap)   /* float->int truncations (charge point) */          \
    X(BinaryPure)                                                       \
    X(BinaryTrap)  /* integer div/rem (charge point) */                 \
    /* specialized hot numerics (batched) */                            \
    X(I32Add)                                                           \
    X(I32Sub)                                                           \
    X(I32Mul)                                                           \
    X(I32And)                                                           \
    X(I32Or)                                                            \
    X(I32Xor)                                                           \
    X(I32Shl)                                                           \
    X(I32ShrS)                                                          \
    X(I32ShrU)                                                          \
    X(I32Eqz)                                                           \
    X(I32Eq)                                                            \
    X(I32Ne)                                                            \
    X(I32LtS)                                                           \
    X(I32LtU)                                                           \
    X(I32GtS)                                                           \
    X(I32GtU)                                                           \
    X(I32LeS)                                                           \
    X(I32LeU)                                                           \
    X(I32GeS)                                                           \
    X(I32GeU)                                                           \
    X(I64Add)                                                           \
    X(F32Add)                                                           \
    X(F32Mul)                                                           \
    X(F64Add)                                                           \
    X(F64Sub)                                                           \
    X(F64Mul)                                                           \
    X(F64Div)

enum class FOp : uint8_t {
#define WASABI_ENGINE_ENUM(name) name,
    WASABI_ENGINE_FOPS(WASABI_ENGINE_ENUM)
#undef WASABI_ENGINE_ENUM
};

/** One pre-decoded instruction slot (16 bytes). */
struct FInstr {
    FOp op = FOp::Charge;
    uint8_t aux = 0;     ///< small operand: keep arity, opcode, type
    uint16_t charge = 0; ///< batched source instructions to account
    uint32_t a = 0;      ///< target pc / slot / index / mem offset
    uint64_t b = 0;      ///< const bits / unwind slot / param count
};

static_assert(sizeof(FInstr) == 16, "FInstr packs into one 16-byte slot");

/** One br_table target (pool entry). */
struct BrTarget {
    uint32_t pc = 0;     ///< absolute code index
    uint32_t keep = 0;   ///< values the branch carries
    uint32_t slot = 0;   ///< frame-relative unwind destination slot
};

/** A translated function body plus its frame layout. */
struct CompiledFunction {
    std::vector<FInstr> code;
    std::vector<BrTarget> tablePool; ///< br_table targets, by segment
    /** Intrinsic hook sites referenced by FOp::Hook slots (empty when
     * the module was translated without an attached HookSet). */
    std::vector<HookSite> hookSites;
    /** Zero values of the non-parameter locals, copied on entry. */
    std::vector<wasm::Value> localInit;
    uint32_t numParams = 0;
    uint32_t numLocals = 0;   ///< params + declared locals
    uint32_t maxOperand = 0;  ///< static peak operand-stack height
    uint32_t resultArity = 0;
    bool compiled = false;

    /** Value-stack slots one frame of this function needs. */
    size_t frameSlots() const { return numLocals + maxOperand; }
};

/**
 * Per-instance translation cache: one CompiledFunction slot per
 * function (translated lazily, on first call), plus structural type
 * canonicalization so call_indirect checks are integer compares.
 * Slots are pre-sized so FInstr arrays and CompiledFunction pointers
 * stay stable while execution is in progress.
 */
class CompiledModule {
  public:
    explicit CompiledModule(const wasm::Module &module);

    const wasm::Module &module() const { return module_; }

    /** Translated code of defined function @p func_idx; translates on
     * first use. @throws Trap(InternalError) for untranslatable
     * (invalid) bodies. */
    const CompiledFunction &function(uint32_t func_idx);

    /** Canonical (structure-deduplicated) id of a type index. */
    uint32_t canonicalType(uint32_t type_idx) const
    {
        return typeCanon_[type_idx];
    }

    /** Canonical type id of a function's signature. */
    uint32_t funcCanonicalType(uint32_t func_idx) const
    {
        return funcTypeCanon_[func_idx];
    }

    /**
     * License bounds-check elision for the load/store locations in
     * @p locs (core::packLoc-packed (func, instr) pairs). The caller
     * is responsible for having *verified* the set (claimed ⊆
     * provable); the translator then emits the unchecked FOp variant
     * at exactly these locations. Already-translated functions are
     * reset so stale checked code cannot linger. Must not be called
     * while execution is in progress.
     */
    void
    setElisions(std::unordered_set<uint64_t> locs)
    {
        elisions_ = std::move(locs);
        for (CompiledFunction &f : funcs_)
            f = CompiledFunction{};
    }

    /** Whether (func, instr) is licensed for an unchecked access. */
    bool
    elides(uint64_t packed_loc) const
    {
        return !elisions_.empty() &&
               elisions_.count(packed_loc) != 0;
    }

    bool hasElisions() const { return !elisions_.empty(); }

    /**
     * Attach (or detach, with an empty set / null sink) engine-
     * intrinsic instrumentation: subsequent translations interleave
     * FOp::Hook dispatch slots for exactly @p kinds. Like
     * setElisions, already-translated functions are reset so stale
     * code (with the old hook selection) cannot linger — except when
     * @p kinds equals the currently attached set: the translated code
     * is then already correct (FOp::Hook placement depends only on
     * the kind set, the sink is read per dispatch), so only the sink
     * pointer swaps. That cheap re-attach is what lets a serve pool
     * hand one warmed, pre-translated instance to a sequence of
     * requests, each with its own runtime, without re-translating
     * (DESIGN.md §14). Must not be called while execution is in
     * progress.
     */
    void
    setIntrinsicHooks(core::HookSet kinds, IntrinsicSink *sink)
    {
        bool same = kinds == intrinsicHooks_;
        intrinsicHooks_ = kinds;
        intrinsicSink_ = sink;
        if (same)
            return;
        for (CompiledFunction &f : funcs_)
            f = CompiledFunction{};
    }

    /**
     * Swap only the dispatch sink, keeping the attached kind set and
     * every cached translation. A null sink parks the instance (the
     * engine skips Hook slots); a pool uses this on release/acquire.
     * Must not be called while execution is in progress.
     */
    void setIntrinsicSink(IntrinsicSink *sink) { intrinsicSink_ = sink; }

    core::HookSet intrinsicHooks() const { return intrinsicHooks_; }
    IntrinsicSink *intrinsicSink() const { return intrinsicSink_; }

    /**
     * Number of function-body translations performed over this
     * cache's lifetime (monotonic; re-translations after an
     * invalidation count again). The serve metrics pin warm-request
     * claims on this: a pooled warm request must leave it unchanged.
     */
    uint64_t translationsPerformed() const { return translations_; }

  private:
    const wasm::Module &module_;
    std::vector<CompiledFunction> funcs_;
    std::vector<uint32_t> typeCanon_;
    std::vector<uint32_t> funcTypeCanon_;
    std::unordered_set<uint64_t> elisions_;
    core::HookSet intrinsicHooks_{};
    IntrinsicSink *intrinsicSink_ = nullptr;
    uint64_t translations_ = 0;
};

/** Translate one defined function (exposed for tests). */
CompiledFunction translateFunction(const wasm::Module &module,
                                   uint32_t func_idx,
                                   const CompiledModule &cm);

} // namespace wasabi::interp::engine

#endif // WASABI_INTERP_ENGINE_CODE_H
