#include "interp/interpreter.h"

#include "interp/engine/code.h"
#include "interp/engine/engine.h"
#include "interp/numerics.h"

namespace wasabi::interp {

using wasm::Instr;
using wasm::Opcode;
using wasm::OpClass;
using wasm::OpInfo;
using wasm::Value;
using wasm::ValType;

namespace {

/** One entry of the label stack during execution. */
struct Label {
    uint32_t brArity;   ///< values a branch to this label carries
    size_t height;      ///< operand stack height at label entry
    size_t cont;        ///< pc to continue at when branched to
    bool isLoop;
};

/** Access width in bytes of a load/store opcode. */
size_t
accessWidth(Opcode op)
{
    return wasm::memAccessBytes(op);
}

} // namespace

std::vector<Value>
Interpreter::invoke(Instance &inst, uint32_t func_idx,
                    std::span<const Value> args)
{
    // An argument list that does not match the signature would make
    // the engines read below the value stack (garbage locals, frame
    // teardown under-popping into heap corruption) — reject it before
    // either engine touches the stack.
    const wasm::FuncType &type = inst.module().funcType(func_idx);
    if (args.size() != type.params.size())
        throw std::invalid_argument(
            "function expects " + std::to_string(type.params.size()) +
            " argument(s), got " + std::to_string(args.size()));
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i].type != type.params[i])
            throw std::invalid_argument(
                "argument " + std::to_string(i) + " has type " +
                wasm::name(args[i].type) + ", function expects " +
                wasm::name(type.params[i]));
    }
    try {
        // Host entry points take the shared legacy path in both
        // engines (it only forwards to the host function).
        if (engine == EngineKind::Fast &&
            !inst.module().functions.at(func_idx).imported()) {
            return engine::execute(inst, func_idx, args, stats_,
                                   maxCallDepth);
        }
        // Engine-intrinsic hooks live in the fast engine's translated
        // code; silently running uninstrumented on the legacy walker
        // would drop the whole hook stream.
        if (engine == EngineKind::Legacy && inst.engineCode_ &&
            inst.engineCode_->intrinsicSink() != nullptr) {
            throw std::invalid_argument(
                "engine-intrinsic instrumentation requires the fast "
                "engine (--engine=fast); the legacy interpreter cannot "
                "dispatch intrinsic hooks");
        }
        return callFunction(inst, func_idx, args, 0);
    } catch (const Trap &) {
        ++stats_.traps;
        throw;
    }
}

std::vector<Value>
Interpreter::invokeExport(Instance &inst, const std::string &name,
                          std::span<const Value> args)
{
    std::optional<uint32_t> idx = inst.module().findFuncExport(name);
    if (!idx)
        throw std::invalid_argument("no exported function named " + name);
    return invoke(inst, *idx, args);
}

std::vector<Value>
Interpreter::callFunction(Instance &inst, uint32_t func_idx,
                          std::span<const Value> args, size_t depth)
{
    if (depth > maxCallDepth)
        throw Trap(TrapKind::CallStackExhausted);

    const wasm::Module &m = inst.module();
    const wasm::Function &func = m.functions.at(func_idx);
    const wasm::FuncType &type = m.funcType(func_idx);

    if (func.imported()) {
        std::vector<Value> results;
        inst.hostFunc(func_idx)(inst, args, results);
        if (results.size() != type.results.size()) {
            // A misbehaving host would silently corrupt the caller's
            // operand stack; trap instead (both engines check this).
            throw Trap(TrapKind::InternalError,
                       "host function returned " +
                           std::to_string(results.size()) +
                           " results, expected " +
                           std::to_string(type.results.size()));
        }
        return results;
    }

    // Set up locals: parameters followed by zero-initialized locals.
    std::vector<Value> locals(args.begin(), args.end());
    for (ValType t : func.locals)
        locals.push_back(Value::zero(t));

    const std::vector<Instr> &body = func.body;
    const ControlSideTable &sides = inst.sideTable(func_idx);
    const uint32_t result_arity =
        static_cast<uint32_t>(type.results.size());

    std::vector<Value> stack;
    std::vector<Label> labels;
    labels.push_back({result_arity, 0, body.size(), false});

    auto pop = [&stack]() {
        Value v = stack.back();
        stack.pop_back();
        return v;
    };

    size_t pc = 0;

    // Branch to relative label n: carries brArity values, unwinds the
    // operand stack, and adjusts pc and the label stack.
    auto branchTo = [&](uint32_t n) {
        size_t target = labels.size() - 1 - n;
        const Label &l = labels[target];
        size_t keep = l.brArity;
        // Move the carried values down to the label's base height.
        for (size_t i = 0; i < keep; ++i)
            stack[l.height + i] = stack[stack.size() - keep + i];
        stack.resize(l.height + keep);
        pc = l.cont;
        labels.resize(l.isLoop ? target + 1 : target);
    };

    while (pc < body.size()) {
        if (inst.fuel()) {
            if (*inst.fuel() == 0)
                throw Trap(TrapKind::FuelExhausted);
            --*inst.fuel();
        }
        ++stats_.instructions;

        const Instr &instr = body[pc];
        const OpInfo &info = wasm::opInfo(instr.op);
        switch (info.cls) {
          case OpClass::Nop:
            break;
          case OpClass::Unreachable:
            throw Trap(TrapKind::Unreachable);
          case OpClass::Block:
            labels.push_back({instr.block ? 1u : 0u, stack.size(),
                              sides.byInstr[pc].endIdx + 1, false});
            break;
          case OpClass::Loop:
            labels.push_back({0, stack.size(), pc + 1, true});
            break;
          case OpClass::If: {
            uint32_t cond = pop().i32();
            const ControlSideTable::Entry &e = sides.byInstr[pc];
            labels.push_back({instr.block ? 1u : 0u, stack.size(),
                              e.endIdx + 1, false});
            if (!cond) {
                if (e.elseIdx) {
                    // Enter the else branch (skip the else opcode).
                    pc = *e.elseIdx + 1;
                } else {
                    // Dispatch the end, which pops the label.
                    pc = e.endIdx;
                }
                continue;
            }
            break;
          }
          case OpClass::Else: {
            // Reached by falling out of the then-branch: skip to the
            // matching end (= innermost label's cont - 1), which pops
            // the if label.
            pc = labels.back().cont - 1;
            continue; // re-dispatch at `end`
          }
          case OpClass::End: {
            labels.pop_back();
            if (labels.empty()) {
                // Function end: results are on the stack. A mismatch
                // means a structurally broken body; the old debug-only
                // assert let Release builds return garbage.
                if (stack.size() != result_arity)
                    throw Trap(TrapKind::InternalError,
                               "operand stack height at function exit "
                               "does not match the result arity");
                return stack;
            }
            break;
          }
          case OpClass::Br:
            branchTo(instr.imm.idx);
            continue;
          case OpClass::BrIf: {
            uint32_t cond = pop().i32();
            if (cond) {
                branchTo(instr.imm.idx);
                continue;
            }
            break;
          }
          case OpClass::BrTable: {
            uint32_t idx = pop().i32();
            uint32_t n = idx < instr.table.size() - 1
                             ? instr.table[idx]
                             : instr.table.back();
            branchTo(n);
            continue;
          }
          case OpClass::Return: {
            std::vector<Value> results(result_arity);
            for (size_t i = result_arity; i-- > 0;)
                results[i] = pop();
            return results;
          }
          case OpClass::Call: {
            ++stats_.calls;
            uint32_t callee = instr.imm.idx;
            const wasm::FuncType &ct = m.funcType(callee);
            std::vector<Value> call_args(ct.params.size());
            for (size_t i = ct.params.size(); i-- > 0;)
                call_args[i] = pop();
            std::vector<Value> results =
                callFunction(inst, callee, call_args, depth + 1);
            for (const Value &v : results)
                stack.push_back(v);
            break;
          }
          case OpClass::CallIndirect: {
            ++stats_.calls;
            uint32_t table_idx = pop().i32();
            std::optional<uint32_t> callee = inst.table().get(table_idx);
            if (!callee)
                throw Trap(TrapKind::UninitializedTableElement);
            const wasm::FuncType &expect = m.types.at(instr.imm.idx);
            if (m.funcType(*callee) != expect)
                throw Trap(TrapKind::IndirectCallTypeMismatch);
            std::vector<Value> call_args(expect.params.size());
            for (size_t i = expect.params.size(); i-- > 0;)
                call_args[i] = pop();
            std::vector<Value> results =
                callFunction(inst, *callee, call_args, depth + 1);
            for (const Value &v : results)
                stack.push_back(v);
            break;
          }
          case OpClass::Drop:
            stack.pop_back();
            break;
          case OpClass::Select: {
            uint32_t cond = pop().i32();
            Value second = pop();
            Value first = pop();
            stack.push_back(cond ? first : second);
            break;
          }
          case OpClass::LocalGet:
            stack.push_back(locals[instr.imm.idx]);
            break;
          case OpClass::LocalSet:
            locals[instr.imm.idx] = pop();
            break;
          case OpClass::LocalTee:
            locals[instr.imm.idx] = stack.back();
            break;
          case OpClass::GlobalGet:
            stack.push_back(inst.globalGet(instr.imm.idx));
            break;
          case OpClass::GlobalSet:
            inst.globalSet(instr.imm.idx, pop());
            break;
          case OpClass::Load: {
            ++stats_.memoryOps;
            uint32_t addr = pop().i32();
            size_t width = accessWidth(instr.op);
            uint64_t raw =
                inst.memory().readLE(addr, instr.imm.mem.offset, width);
            stack.push_back(loadedValue(instr.op, raw));
            break;
          }
          case OpClass::Store: {
            ++stats_.memoryOps;
            Value v = pop();
            uint32_t addr = pop().i32();
            size_t width = accessWidth(instr.op);
            inst.memory().writeLE(addr, instr.imm.mem.offset, width,
                                  v.bits);
            break;
          }
          case OpClass::MemorySize:
            ++stats_.memoryOps;
            stack.push_back(Value::makeI32(inst.memory().sizePages()));
            break;
          case OpClass::MemoryGrow: {
            ++stats_.memoryOps;
            uint32_t delta = pop().i32();
            stack.push_back(Value::makeI32(inst.memory().grow(delta)));
            break;
          }
          case OpClass::Const:
            stack.push_back(instr.constValue());
            break;
          case OpClass::Unary: {
            Value in = pop();
            stack.push_back(evalUnary(instr.op, in));
            break;
          }
          case OpClass::Binary: {
            Value r = pop();
            Value l = pop();
            stack.push_back(evalBinary(instr.op, l, r));
            break;
          }
        }
        ++pc;
    }
    // Only reachable for builder-made bodies without a final `end`.
    if (stack.size() != result_arity)
        throw Trap(TrapKind::InternalError,
                   "operand stack height at function exit does not "
                   "match the result arity");
    return stack;
}

} // namespace wasabi::interp
