/**
 * @file
 * The Wasabi binary instrumenter (paper §2.4): rewrites a module so
 * that every instruction covered by the requested hook set is
 * interleaved with calls to imported low-level analysis hooks.
 *
 * Properties, mirroring the paper:
 *  - selective: only instruction kinds in the HookSet are instrumented
 *    (§2.4.2); instrumentations of different kinds are independent;
 *  - on-demand monomorphization of polymorphic hooks (§2.4.3);
 *  - relative branch labels resolved to absolute locations (§2.4.4);
 *  - explicit end-hook calls for blocks traversed by br/br_if/return,
 *    and runtime-selected side tables for br_table (§2.4.5);
 *  - i64 values split into two i32s at the hook boundary (§2.4.6);
 *  - functions can be instrumented in parallel; the shared hook map is
 *    guarded by a readers/writer lock (§3);
 *  - the original memory behavior is untouched: inserted code uses
 *    fresh locals only, never the program's linear memory.
 */

#ifndef WASABI_CORE_INSTRUMENT_H
#define WASABI_CORE_INSTRUMENT_H

#include <memory>

#include "core/opt_plan.h"
#include "core/static_info.h"

namespace wasabi::core {

/** Configuration of one instrumentation run. */
struct InstrumentOptions {
    /** Split i64 hook arguments into (low, high) i32 pairs, as the
     * paper must for JavaScript hooks. Turning this off is the
     * "native i64 ABI" ablation. */
    bool splitI64 = true;

    /** Number of worker threads instrumenting functions in parallel
     * (1 = sequential). */
    unsigned numThreads = 1;

    /** Module name under which hook imports are declared. */
    std::string importModule = "wasabi";

    /** Optional hook-optimization plan computed by the static pass
     * pipeline (`--optimize-hooks`): per-site licenses to skip, elide
     * or narrow hook calls. Null means full instrumentation. The plan
     * must have been computed for exactly this module; it is copied
     * into the resulting StaticInfo so `wasabi check` can re-verify
     * every deviation. */
    const HookOptimizationPlan *plan = nullptr;
};

/**
 * Instrumentation-phase metrics, always collected (the counters are
 * per-worker and the clock is read only a handful of times per run,
 * so the overhead is unmeasurable). The observability layer
 * (`src/obs/`) ingests this verbatim for `wasabi profile`.
 */
struct InstrumentStats {
    /** Wall time of the whole instrument() call. */
    uint64_t wallNanos = 0;

    /** One entry per worker thread of the parallel phase. */
    struct Worker {
        /** Functions this worker instrumented. */
        uint64_t functions = 0;
        /** Start of the worker's span, ns relative to instrument()
         * entry (for trace-event rendering). */
        uint64_t startNanos = 0;
        /** Wall time of the worker's span. */
        uint64_t nanos = 0;
    };
    std::vector<Worker> workers;

    /** Shared hook-map lock statistics (readers/writer lock, §3). */
    HookMap::Stats hookMap;

    /** Total defined functions instrumented (= Σ workers[i].functions,
     * deterministic for any thread count). */
    uint64_t functionsInstrumented = 0;

    /** Low-level hooks generated (on-demand monomorphization). */
    uint64_t hooksGenerated = 0;
};

/** Result: the instrumented module plus the static info that the
 * runtime needs to drive high-level hooks. */
struct InstrumentResult {
    wasm::Module module;
    std::shared_ptr<StaticInfo> info;
    InstrumentStats stats;
};

/**
 * Instrument @p module for the hook kinds in @p hooks.
 * The input module must be valid (validateModule); the output module
 * validates and behaves identically apart from the inserted hook
 * calls. The input is not modified.
 */
InstrumentResult instrument(const wasm::Module &module, HookSet hooks,
                            const InstrumentOptions &opts = {});

} // namespace wasabi::core

#endif // WASABI_CORE_INSTRUMENT_H
