/**
 * @file
 * StaticInfo construction for the engine-intrinsic instrumentation
 * mode (DESIGN.md §13): the same branch-target / br_table / block-end
 * side tables the instrumenter records while rewriting, but computed
 * by a plain abstract-interpretation walk with no code emission — the
 * module is left untouched and `hooks` stays empty (there are no
 * low-level hook imports in intrinsic mode).
 */

#ifndef WASABI_CORE_INTRINSIC_INFO_H
#define WASABI_CORE_INTRINSIC_INFO_H

#include <memory>

#include "core/hook_kind.h"
#include "core/static_info.h"
#include "wasm/module.h"

namespace wasabi::core {

/**
 * Build the static info an intrinsic-mode run of @p m with hook set
 * @p kinds needs: brTargets/brTables/blockEnds keyed by original
 * locations (recorded at the same sites, under the same liveness
 * rules, as `instrument()` records them), `instrumentedHooks` set to
 * @p kinds, and an unmodified copy of the module. @p m must validate.
 */
std::shared_ptr<StaticInfo> buildIntrinsicInfo(const wasm::Module &m,
                                               HookSet kinds);

} // namespace wasabi::core

#endif // WASABI_CORE_INTRINSIC_INFO_H
