/**
 * @file
 * The abstract control stack and abstract operand-type stack that the
 * instrumenter maintains while walking a function (paper §2.4.3 and
 * §2.4.4, Figure 6).
 *
 * The control stack resolves relative branch labels to absolute
 * instruction locations at instrumentation time and provides the list
 * of blocks "traversed" by a branch (for the dynamic block-nesting end
 * hooks, §2.4.5). The operand-type stack provides the concrete types
 * of the polymorphic drop and select instructions, which depend on all
 * preceding code (§2.4.3, Table 3 row 4).
 */

#ifndef WASABI_CORE_CONTROL_STACK_H
#define WASABI_CORE_CONTROL_STACK_H

#include <optional>
#include <vector>

#include "core/hook_kind.h"
#include "wasm/module.h"

namespace wasabi::core {

/** Sentinel instruction index denoting "function entry" (the paper's
 * Figure 6 uses -1 for the function frame's begin). */
inline constexpr uint32_t kFunctionEntry = 0xFFFFFFFF;

/** Matching structural indices of one block-opening instruction. */
struct BlockMatch {
    uint32_t endIdx = 0;
    std::optional<uint32_t> elseIdx;
};

/**
 * Matching `end` (and `else`) indices for every block/loop/if in a
 * function body; entries are meaningful only at indices whose opcode
 * opens a block. The body must include the final function-level end.
 */
std::vector<BlockMatch> matchBlocks(const std::vector<wasm::Instr> &body);

/** One frame of the abstract control stack (paper Figure 6). */
struct ControlFrame {
    BlockKind kind = BlockKind::Function;
    /** Instruction index of the block begin (kFunctionEntry for the
     * function frame; for the else-region of an if, the if's index —
     * the `elseIdx` records where the region actually started). */
    uint32_t beginIdx = kFunctionEntry;
    /** Index of the matching end (function frame: the final end). */
    uint32_t endIdx = 0;
    /** Index of the else, if this frame is an if/else. */
    std::optional<uint32_t> elseIdx;
    /** Block result type (nullopt = no result). */
    std::optional<wasm::ValType> result;
    /** Operand-type stack height at frame entry. */
    size_t height = 0;
    /** True once a br/return/unreachable ended this frame's code. */
    bool unreachable = false;
    /** True if the frame was opened inside dead code (the whole block
     * can never execute). */
    bool deadEntry = false;
};

/**
 * Tracks operand types and control frames across one function body.
 * The module must already validate; this class asserts instead of
 * reporting type errors.
 *
 * Usage: query (top(), reachable(), frames(), resolve helpers) for
 * instruction i *before* calling apply(instr, i).
 */
class AbstractState {
  public:
    AbstractState(const wasm::Module &m, uint32_t func_idx);

    /** Type of the k-th operand from the top; nullopt if unknown
     * (possible only in unreachable code). */
    std::optional<wasm::ValType> top(size_t k = 0) const;

    /** False while inside dead code (after br/unreachable/...). */
    bool reachable() const { return !frames_.back().unreachable; }

    const std::vector<ControlFrame> &frames() const { return frames_; }

    /** Frame targeted by relative label @p n (0 = innermost). */
    const ControlFrame &frameForLabel(uint32_t n) const;

    /**
     * Absolute instruction index of the next instruction executed if
     * a branch to label @p n is taken: the first instruction inside a
     * loop, or the instruction after the matching end otherwise
     * (paper §2.4.4).
     */
    uint32_t resolveLabel(uint32_t n) const;

    /**
     * The frames left ("traversed") by a branch to label @p n, from
     * the innermost outward, both endpoints inclusive (§2.4.5).
     */
    std::vector<ControlFrame> traversedFrames(uint32_t n) const;

    /** All open frames, innermost first (for `return`). */
    std::vector<ControlFrame> allFramesInnermostFirst() const;

    /** Advance the abstract state over instruction @p instr, which is
     * at index @p instr_idx in the body. */
    void apply(const wasm::Instr &instr, uint32_t instr_idx);

  private:
    void push(std::optional<wasm::ValType> t) { stack_.push_back(t); }
    std::optional<wasm::ValType> pop();
    void pushResults(const wasm::FuncType &type);
    void popParams(const wasm::FuncType &type);
    void setUnreachable();

    const wasm::Module &m_;
    const wasm::Function &func_;
    std::vector<wasm::ValType> locals_; ///< params + locals
    std::vector<BlockMatch> matches_;
    std::vector<std::optional<wasm::ValType>> stack_;
    std::vector<ControlFrame> frames_;
};

} // namespace wasabi::core

#endif // WASABI_CORE_CONTROL_STACK_H
