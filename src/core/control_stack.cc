#include "core/control_stack.h"

#include <cassert>

namespace wasabi::core {

using wasm::Instr;
using wasm::Opcode;
using wasm::OpClass;
using wasm::ValType;

std::vector<BlockMatch>
matchBlocks(const std::vector<Instr> &body)
{
    std::vector<BlockMatch> matches(body.size());
    std::vector<uint32_t> opens;
    for (uint32_t i = 0; i < body.size(); ++i) {
        Opcode op = body[i].op;
        if (wasm::isBlockStart(op)) {
            opens.push_back(i);
        } else if (op == Opcode::Else) {
            assert(!opens.empty());
            matches[opens.back()].elseIdx = i;
        } else if (op == Opcode::End) {
            if (!opens.empty()) {
                matches[opens.back()].endIdx = i;
                opens.pop_back();
            }
        }
    }
    assert(opens.empty());
    return matches;
}

AbstractState::AbstractState(const wasm::Module &m, uint32_t func_idx)
    : m_(m), func_(m.functions.at(func_idx)),
      matches_(matchBlocks(func_.body))
{
    const wasm::FuncType &type = m.funcType(func_idx);
    locals_ = type.params;
    locals_.insert(locals_.end(), func_.locals.begin(), func_.locals.end());

    ControlFrame fn;
    fn.kind = BlockKind::Function;
    fn.beginIdx = kFunctionEntry;
    fn.endIdx = static_cast<uint32_t>(func_.body.size()) - 1;
    fn.result = type.results.empty()
                    ? std::nullopt
                    : std::optional<ValType>(type.results[0]);
    fn.height = 0;
    frames_.push_back(fn);
}

std::optional<ValType>
AbstractState::top(size_t k) const
{
    const ControlFrame &frame = frames_.back();
    if (stack_.size() < frame.height + k + 1) {
        assert(frame.unreachable);
        return std::nullopt;
    }
    return stack_[stack_.size() - 1 - k];
}

const ControlFrame &
AbstractState::frameForLabel(uint32_t n) const
{
    assert(n < frames_.size());
    return frames_[frames_.size() - 1 - n];
}

uint32_t
AbstractState::resolveLabel(uint32_t n) const
{
    const ControlFrame &frame = frameForLabel(n);
    if (frame.kind == BlockKind::Loop)
        return frame.beginIdx + 1; // first instruction inside the loop
    return frame.endIdx + 1;       // instruction after the matching end
}

std::vector<ControlFrame>
AbstractState::traversedFrames(uint32_t n) const
{
    std::vector<ControlFrame> out;
    for (uint32_t i = 0; i <= n; ++i)
        out.push_back(frames_[frames_.size() - 1 - i]);
    return out;
}

std::vector<ControlFrame>
AbstractState::allFramesInnermostFirst() const
{
    return traversedFrames(static_cast<uint32_t>(frames_.size()) - 1);
}

std::optional<ValType>
AbstractState::pop()
{
    ControlFrame &frame = frames_.back();
    if (stack_.size() == frame.height) {
        assert(frame.unreachable);
        return std::nullopt;
    }
    std::optional<ValType> t = stack_.back();
    stack_.pop_back();
    return t;
}

void
AbstractState::pushResults(const wasm::FuncType &type)
{
    for (ValType t : type.results)
        push(t);
}

void
AbstractState::popParams(const wasm::FuncType &type)
{
    for (size_t i = 0; i < type.params.size(); ++i)
        pop();
}

void
AbstractState::setUnreachable()
{
    ControlFrame &frame = frames_.back();
    stack_.resize(frame.height);
    frame.unreachable = true;
}

void
AbstractState::apply(const Instr &instr, uint32_t instr_idx)
{
    const wasm::OpInfo &info = wasm::opInfo(instr.op);
    switch (info.cls) {
      case OpClass::Nop:
        break;
      case OpClass::Unreachable:
        setUnreachable();
        break;
      case OpClass::Block:
      case OpClass::Loop:
      case OpClass::If: {
        if (info.cls == OpClass::If)
            pop(); // condition
        ControlFrame f;
        f.kind = info.cls == OpClass::Block  ? BlockKind::Block
                 : info.cls == OpClass::Loop ? BlockKind::Loop
                                             : BlockKind::If;
        f.beginIdx = instr_idx;
        f.endIdx = matches_[instr_idx].endIdx;
        f.elseIdx = matches_[instr_idx].elseIdx;
        f.result = instr.block;
        f.height = stack_.size();
        f.deadEntry = frames_.back().unreachable;
        f.unreachable = f.deadEntry;
        frames_.push_back(f);
        break;
      }
      case OpClass::Else: {
        ControlFrame &f = frames_.back();
        assert(f.kind == BlockKind::If);
        f.kind = BlockKind::Else;
        stack_.resize(f.height);
        // The else-region is reachable iff the if was entered live.
        f.unreachable = f.deadEntry;
        break;
      }
      case OpClass::End: {
        ControlFrame f = frames_.back();
        frames_.pop_back();
        if (!frames_.empty()) {
            stack_.resize(f.height);
            if (f.result)
                push(*f.result);
        }
        break;
      }
      case OpClass::Br:
        setUnreachable();
        break;
      case OpClass::BrIf:
        pop(); // condition; label types unchanged on fallthrough
        break;
      case OpClass::BrTable:
        pop();
        setUnreachable();
        break;
      case OpClass::Return:
        setUnreachable();
        break;
      case OpClass::Call: {
        const wasm::FuncType &t = m_.funcType(instr.imm.idx);
        popParams(t);
        pushResults(t);
        break;
      }
      case OpClass::CallIndirect: {
        pop(); // table index
        const wasm::FuncType &t = m_.types.at(instr.imm.idx);
        popParams(t);
        pushResults(t);
        break;
      }
      case OpClass::Drop:
        pop();
        break;
      case OpClass::Select: {
        pop(); // condition
        std::optional<ValType> t1 = pop();
        std::optional<ValType> t2 = pop();
        push(t1 ? t1 : t2);
        break;
      }
      case OpClass::LocalGet:
        push(locals_.at(instr.imm.idx));
        break;
      case OpClass::LocalSet:
        pop();
        break;
      case OpClass::LocalTee:
        break; // value stays
      case OpClass::GlobalGet:
        push(m_.globals.at(instr.imm.idx).type);
        break;
      case OpClass::GlobalSet:
        pop();
        break;
      case OpClass::Load:
        pop();
        push(info.out);
        break;
      case OpClass::Store:
        pop();
        pop();
        break;
      case OpClass::MemorySize:
        push(ValType::I32);
        break;
      case OpClass::MemoryGrow:
        pop();
        push(ValType::I32);
        break;
      case OpClass::Const:
        push(info.out);
        break;
      case OpClass::Unary:
        pop();
        push(info.out);
        break;
      case OpClass::Binary:
        pop();
        pop();
        push(info.out);
        break;
    }
}

} // namespace wasabi::core
