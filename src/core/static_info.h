/**
 * @file
 * Static information produced during instrumentation and consumed by
 * the Wasabi runtime — the C++ equivalent of the `info` object the
 * paper's instrumenter generates alongside the instrumented binary
 * (Figure 2): resolved branch targets, br_table side tables with the
 * blocks ended by each entry, block begin/end matchings, the original
 * module, and the list of generated low-level hooks.
 */

#ifndef WASABI_CORE_STATIC_INFO_H
#define WASABI_CORE_STATIC_INFO_H

#include <optional>
#include <unordered_map>
#include <vector>

#include "core/control_stack.h"
#include "core/hook_map.h"
#include "core/opt_plan.h"
#include "wasm/module.h"

namespace wasabi::core {

/** A code location in the *original* module: (function, instruction).
 * The instruction index kFunctionEntry denotes function entry. */
struct Location {
    uint32_t func = 0;
    uint32_t instr = 0;

    bool operator==(const Location &other) const = default;
};

/** Pack a location into a map key. */
inline uint64_t
packLoc(Location loc)
{
    return (static_cast<uint64_t>(loc.func) << 32) | loc.instr;
}

/** A statically resolved branch destination (paper §2.4.4): the raw
 * relative label plus the absolute location of the next instruction
 * executed if the branch is taken. */
struct BranchTarget {
    uint32_t label = 0;
    Location location;

    bool operator==(const BranchTarget &other) const = default;
};

/** One block "traversed" (left) by a branch (paper §2.4.5). */
struct EndedBlock {
    BlockKind kind = BlockKind::Block;
    Location end;   ///< location of the block's end instruction
    Location begin; ///< location of the block's begin
};

/** One resolved br_table entry with the blocks its jump ends. */
struct BrTableEntry {
    BranchTarget target;
    std::vector<EndedBlock> ended;
};

/** Side table of one br_table instruction: per-case entries plus the
 * default; the low-level hook selects among them at runtime. */
struct BrTableInfo {
    std::vector<BrTableEntry> cases;
    BrTableEntry defaultCase;
};

/** Begin/kind of the block closed at some end (or else) location. */
struct BlockEndInfo {
    BlockKind kind = BlockKind::Block;
    Location begin;
};

/** All static information about one instrumentation run. */
class StaticInfo {
  public:
    /** The original, uninstrumented module (locations refer to it). */
    wasm::Module original;

    /** Import-module name used for hook imports (default "wasabi"). */
    std::string importModule;

    /** Number of functions the original module imports; hook imports
     * occupy indices [numOrigImports, numOrigImports + hooks.size()). */
    uint32_t numOrigImports = 0;

    /** Whether i64 hook arguments travel as (low, high) i32 pairs. */
    bool splitI64 = true;

    /** Generated low-level hooks, indexed by hook id. */
    std::vector<HookSpec> hooks;

    /** The hook kinds this run instrumented. */
    HookSet instrumentedHooks;

    /** Resolved targets of br and br_if instructions. */
    std::unordered_map<uint64_t, BranchTarget> brTargets;

    /** Side tables of br_table instructions. */
    std::unordered_map<uint64_t, BrTableInfo> brTables;

    /** Block info keyed by end (and else) locations. */
    std::unordered_map<uint64_t, BlockEndInfo> blockEnds;

    /** The hook-optimization plan applied during instrumentation (set
     * iff `--optimize-hooks` was used); the checker verifies every
     * per-site deviation it licenses against the original module. */
    std::optional<HookOptimizationPlan> optimization;

    /** Function index of a hook id in the instrumented module. */
    uint32_t
    hookFuncIdx(uint32_t hook_id) const
    {
        return numOrigImports + hook_id;
    }

    /** Map a function index of the *instrumented* module back to the
     * original index space (hook imports have no original index and
     * must not be passed here). */
    uint32_t
    unmapFuncIdx(uint32_t instrumented_idx) const
    {
        if (instrumented_idx < numOrigImports)
            return instrumented_idx;
        return instrumented_idx - static_cast<uint32_t>(hooks.size());
    }

    /** Instruction at a location in the original module. */
    const wasm::Instr &
    instrAt(Location loc) const
    {
        return original.functions.at(loc.func).body.at(loc.instr);
    }

    /** Lookup helpers for the static checker (`wasabi check`); return
     * nullptr when no metadata was recorded at the location. @{ */
    const BranchTarget *
    findBrTarget(Location loc) const
    {
        auto it = brTargets.find(packLoc(loc));
        return it == brTargets.end() ? nullptr : &it->second;
    }

    const BrTableInfo *
    findBrTable(Location loc) const
    {
        auto it = brTables.find(packLoc(loc));
        return it == brTables.end() ? nullptr : &it->second;
    }

    const BlockEndInfo *
    findBlockEnd(Location loc) const
    {
        auto it = blockEnds.find(packLoc(loc));
        return it == blockEnds.end() ? nullptr : &it->second;
    }
    /** @} */
};

} // namespace wasabi::core

#endif // WASABI_CORE_STATIC_INFO_H
