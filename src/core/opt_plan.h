/**
 * @file
 * Hook-optimization plan: the contract between the static pass
 * pipeline (src/static/passes/) and the instrumenter.
 *
 * The plan is plain data on purpose. `wasabi_static` links against
 * `wasabi_core`, so the instrumenter cannot call the passes; instead
 * the passes *compute* a plan and the instrumenter *consumes* it via
 * InstrumentOptions. Each entry is a per-site license to deviate from
 * the default "complete and exclusive" instrumentation:
 *
 *  - skips: (func, instr) locations that are statically unreachable
 *    on the CFG; no hook calls are emitted for them (the instruction
 *    itself is copied unchanged).
 *  - deadFunctions: functions unreachable from any export/start/table
 *    root; no hooks at all are emitted in their bodies, including the
 *    function-entry begin/start hooks.
 *  - constBrTableIndex: br_table locations whose index operand is a
 *    compile-time constant; the monomorphized br_table hook (runtime
 *    side-table dispatch) is narrowed to a plain br hook with the
 *    statically selected target, and the traversed blocks' end hooks
 *    are emitted statically as for a plain br (paper §2.4.5).
 *  - elidedBegins/elidedEnds: begin/end locations of statically-empty
 *    blocks and loops (`block end` with no instruction in between);
 *    their begin/end hook pair is elided. Empty blocks execute no
 *    instructions and their labels cannot be referenced by any branch,
 *    so no other hook can observe the difference.
 *  - constCallTargets: call_indirect locations whose table index is a
 *    compile-time constant resolving (through an exact, non-host-
 *    visible element layout) to one unique target; the indirect
 *    call_pre hook (extra runtime table-index argument) is narrowed
 *    to the direct variant and the runtime reports the statically
 *    known callee.
 *
 * All locations are packLoc-packed keys into the *original* module.
 */

#ifndef WASABI_CORE_OPT_PLAN_H
#define WASABI_CORE_OPT_PLAN_H

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace wasabi::core {

/** A set of per-site hook-emission optimizations, computed by the
 * static pass pipeline and consumed by core::instrument. */
struct HookOptimizationPlan {
    /** Packed locations whose hooks are skipped (CFG-unreachable). */
    std::unordered_set<uint64_t> skips;

    /** Functions with no emitted hooks at all (call-graph dead). */
    std::unordered_set<uint32_t> deadFunctions;

    /** br_table locations with a constant index operand, mapped to
     * that index (clamped to the default case by the consumer). */
    std::unordered_map<uint64_t, uint32_t> constBrTableIndex;

    /** Begin locations of elided statically-empty blocks. */
    std::unordered_set<uint64_t> elidedBegins;

    /** End locations matching elidedBegins (same blocks). */
    std::unordered_set<uint64_t> elidedEnds;

    /** A call_indirect narrowed to a direct-call hook: the constant
     * table index and the unique function it resolves to (original
     * index space). */
    struct CallTargetClaim {
        uint32_t tableIndex = 0;
        uint32_t target = 0;

        bool operator==(const CallTargetClaim &other) const = default;
    };

    /** call_indirect locations with a statically known target. */
    std::unordered_map<uint64_t, CallTargetClaim> constCallTargets;

    bool
    empty() const
    {
        return skips.empty() && deadFunctions.empty() &&
               constBrTableIndex.empty() && elidedBegins.empty() &&
               elidedEnds.empty() && constCallTargets.empty();
    }

    /** Total number of per-site claims (for reporting). */
    size_t
    size() const
    {
        return skips.size() + deadFunctions.size() +
               constBrTableIndex.size() + elidedBegins.size() +
               constCallTargets.size();
    }
};

} // namespace wasabi::core

#endif // WASABI_CORE_OPT_PLAN_H
