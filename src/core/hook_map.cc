#include "core/hook_map.h"

#include <mutex>

namespace wasabi::core {

using wasm::FuncType;
using wasm::ValType;

std::string
mangledName(const HookSpec &spec)
{
    auto withTypes = [&spec](std::string base) {
        for (ValType t : spec.types) {
            base += "_";
            base += wasm::name(t);
        }
        return base;
    };
    switch (spec.kind) {
      case HookKind::Nop: return "nop";
      case HookKind::Unreachable: return "unreachable";
      case HookKind::MemorySize: return "memory.size";
      case HookKind::MemoryGrow: return "memory.grow";
      case HookKind::Select: return withTypes("select");
      case HookKind::Drop: return withTypes("drop");
      // Per-opcode hooks use the instruction mnemonic directly, as in
      // the paper ("one low-level hook per instruction", Table 3).
      case HookKind::Load:
      case HookKind::Store:
      case HookKind::Const:
      case HookKind::Unary:
      case HookKind::Binary:
        return wasm::name(spec.op);
      // The mnemonic alone ("local.get") does not determine the
      // variable's type, so these are additionally monomorphized by
      // the referenced variable's type.
      case HookKind::Global:
      case HookKind::Local:
        return withTypes(wasm::name(spec.op));
      case HookKind::Call:
        if (spec.post)
            return withTypes("call_post");
        return withTypes(spec.indirect ? "call_pre_indirect" : "call_pre");
      case HookKind::Return: return withTypes("return");
      case HookKind::Begin:
        return std::string("begin_") + name(spec.block);
      case HookKind::End:
        return std::string("end_") + name(spec.block);
      case HookKind::If: return "if_cond";
      case HookKind::Br: return "br";
      case HookKind::BrIf: return "br_if";
      case HookKind::BrTable: return "br_table";
      case HookKind::Start: return "start";
    }
    return "?";
}

wasm::FuncType
lowLevelType(const HookSpec &spec, bool split_i64)
{
    std::vector<ValType> params{ValType::I32, ValType::I32}; // location

    auto push = [&params, split_i64](ValType t) {
        if (t == ValType::I64 && split_i64) {
            params.push_back(ValType::I32); // low half
            params.push_back(ValType::I32); // high half
        } else {
            params.push_back(t);
        }
    };

    const wasm::OpInfo &info = wasm::opInfo(spec.op);
    switch (spec.kind) {
      case HookKind::Nop:
      case HookKind::Unreachable:
      case HookKind::Br:
      case HookKind::Begin:
      case HookKind::Start:
        break;
      case HookKind::End:
        // End hooks additionally receive the instruction index of the
        // matching block begin (paper Table 3: "end hooks receive
        // location of the end and of the matching block begin").
        push(ValType::I32);
        break;
      case HookKind::MemorySize:
        push(ValType::I32); // current size
        break;
      case HookKind::MemoryGrow:
        push(ValType::I32); // delta
        push(ValType::I32); // previous size
        break;
      case HookKind::Select:
        push(ValType::I32); // condition
        push(spec.types.at(0));
        push(spec.types.at(0));
        break;
      case HookKind::Drop:
        push(spec.types.at(0));
        break;
      case HookKind::Load:
        push(ValType::I32);  // address operand
        push(info.out);      // loaded value
        break;
      case HookKind::Store:
        push(ValType::I32);  // address operand
        push(info.in[1]);    // stored value
        break;
      case HookKind::Const:
        push(info.out);
        break;
      case HookKind::Unary:
        push(info.in[0]);
        push(info.out);
        break;
      case HookKind::Binary:
        push(info.in[0]);
        push(info.in[1]);
        push(info.out);
        break;
      case HookKind::Global:
      case HookKind::Local:
        // The variable index is static; only the value is dynamic.
        push(spec.types.at(0));
        break;
      case HookKind::Call:
        if (!spec.post && spec.indirect)
            push(ValType::I32); // runtime table index
        for (ValType t : spec.types)
            push(t);
        break;
      case HookKind::Return:
        for (ValType t : spec.types)
            push(t);
        break;
      case HookKind::If:
      case HookKind::BrIf:
        push(ValType::I32); // condition
        break;
      case HookKind::BrTable:
        push(ValType::I32); // runtime table index
        break;
    }
    return FuncType(std::move(params), {});
}

uint32_t
HookMap::getOrAdd(const HookSpec &spec)
{
    std::string key = mangledName(spec);
    {
        std::shared_lock lock(mutex_);
        auto it = byName_.find(key);
        if (it != byName_.end())
            return it->second;
    }
    std::unique_lock lock(mutex_);
    // Re-check: another thread may have inserted meanwhile.
    auto it = byName_.find(key);
    if (it != byName_.end())
        return it->second;
    uint32_t id = static_cast<uint32_t>(specs_.size());
    specs_.push_back(spec);
    byName_.emplace(std::move(key), id);
    return id;
}

uint32_t
HookMap::size() const
{
    std::shared_lock lock(mutex_);
    return static_cast<uint32_t>(specs_.size());
}

std::vector<HookSpec>
HookMap::specs() const
{
    std::shared_lock lock(mutex_);
    return specs_;
}

} // namespace wasabi::core
