#include "core/hook_map.h"

#include <mutex>

namespace wasabi::core {

using wasm::FuncType;
using wasm::ValType;

std::string
mangledName(const HookSpec &spec)
{
    auto withTypes = [&spec](std::string base) {
        for (ValType t : spec.types) {
            base += "_";
            base += wasm::name(t);
        }
        return base;
    };
    switch (spec.kind) {
      case HookKind::Nop: return "nop";
      case HookKind::Unreachable: return "unreachable";
      case HookKind::MemorySize: return "memory.size";
      case HookKind::MemoryGrow: return "memory.grow";
      case HookKind::Select: return withTypes("select");
      case HookKind::Drop: return withTypes("drop");
      // Per-opcode hooks use the instruction mnemonic directly, as in
      // the paper ("one low-level hook per instruction", Table 3).
      case HookKind::Load:
      case HookKind::Store:
      case HookKind::Const:
      case HookKind::Unary:
      case HookKind::Binary:
        return wasm::name(spec.op);
      // The mnemonic alone ("local.get") does not determine the
      // variable's type, so these are additionally monomorphized by
      // the referenced variable's type.
      case HookKind::Global:
      case HookKind::Local:
        return withTypes(wasm::name(spec.op));
      case HookKind::Call:
        if (spec.post)
            return withTypes("call_post");
        return withTypes(spec.indirect ? "call_pre_indirect" : "call_pre");
      case HookKind::Return: return withTypes("return");
      case HookKind::Begin:
        return std::string("begin_") + name(spec.block);
      case HookKind::End:
        return std::string("end_") + name(spec.block);
      case HookKind::If: return "if_cond";
      case HookKind::Br: return "br";
      case HookKind::BrIf: return "br_if";
      case HookKind::BrTable: return "br_table";
      case HookKind::Start: return "start";
    }
    return "?";
}

namespace {

std::optional<ValType>
valTypeByName(const std::string &s)
{
    for (int i = 0; i < wasm::kNumValTypes; ++i) {
        ValType t = static_cast<ValType>(i);
        if (s == wasm::name(t))
            return t;
    }
    return std::nullopt;
}

std::optional<BlockKind>
blockKindByName(const std::string &s)
{
    for (BlockKind k :
         {BlockKind::Function, BlockKind::Block, BlockKind::Loop,
          BlockKind::If, BlockKind::Else}) {
        if (s == name(k))
            return k;
    }
    return std::nullopt;
}

/** Parse the "_i32_f64"-style type suffix starting at @p pos. */
std::optional<std::vector<ValType>>
parseTypeList(const std::string &s, size_t pos)
{
    std::vector<ValType> out;
    while (pos < s.size()) {
        if (s[pos] != '_')
            return std::nullopt;
        size_t next = s.find('_', pos + 1);
        std::string tok =
            s.substr(pos + 1, next == std::string::npos
                                  ? std::string::npos
                                  : next - pos - 1);
        std::optional<ValType> t = valTypeByName(tok);
        if (!t)
            return std::nullopt;
        out.push_back(*t);
        pos = next == std::string::npos ? s.size() : next;
    }
    return out;
}

/** True if @p s equals @p prefix or continues it with '_'. */
bool
hasPrefix(const std::string &s, const std::string &prefix)
{
    if (s.size() < prefix.size() ||
        s.compare(0, prefix.size(), prefix) != 0)
        return false;
    return s.size() == prefix.size() || s[prefix.size()] == '_';
}

const std::unordered_map<std::string, wasm::Opcode> &
opcodeByMnemonic()
{
    static const auto *map = [] {
        auto *m = new std::unordered_map<std::string, wasm::Opcode>;
        for (wasm::Opcode op : wasm::allOpcodes())
            m->emplace(wasm::name(op), op);
        return m;
    }();
    return *map;
}

} // namespace

std::optional<HookSpec>
parseHookName(const std::string &name)
{
    // Fixed names of the monomorphic hooks.
    static const std::unordered_map<std::string, HookKind> fixed = {
        {"nop", HookKind::Nop},
        {"unreachable", HookKind::Unreachable},
        {"memory.size", HookKind::MemorySize},
        {"memory.grow", HookKind::MemoryGrow},
        {"if_cond", HookKind::If},
        {"br", HookKind::Br},
        {"br_if", HookKind::BrIf},
        {"br_table", HookKind::BrTable},
        {"start", HookKind::Start},
    };
    if (auto it = fixed.find(name); it != fixed.end())
        return HookSpec{.kind = it->second};

    auto typed = [&name](size_t prefix_len)
        -> std::optional<std::vector<ValType>> {
        return parseTypeList(name, prefix_len);
    };

    // Begin/end hooks, keyed by block kind.
    for (auto [prefix, kind] :
         {std::pair{"begin_", HookKind::Begin},
          std::pair{"end_", HookKind::End}}) {
        size_t len = std::string(prefix).size();
        if (name.compare(0, len, prefix) == 0) {
            if (auto b = blockKindByName(name.substr(len)))
                return HookSpec{.kind = kind, .block = *b};
            return std::nullopt;
        }
    }

    // Polymorphic hooks monomorphized by value types.
    if (hasPrefix(name, "select")) {
        auto types = typed(6);
        if (types && types->size() == 1)
            return HookSpec{.kind = HookKind::Select, .types = *types};
        return std::nullopt;
    }
    if (hasPrefix(name, "drop")) {
        auto types = typed(4);
        if (types && types->size() == 1)
            return HookSpec{.kind = HookKind::Drop, .types = *types};
        return std::nullopt;
    }
    if (hasPrefix(name, "call_pre_indirect")) {
        auto types = typed(17);
        if (types)
            return HookSpec{.kind = HookKind::Call,
                            .types = *types,
                            .indirect = true};
        return std::nullopt;
    }
    if (hasPrefix(name, "call_pre")) {
        auto types = typed(8);
        if (types)
            return HookSpec{.kind = HookKind::Call, .types = *types};
        return std::nullopt;
    }
    if (hasPrefix(name, "call_post")) {
        auto types = typed(9);
        if (types)
            return HookSpec{.kind = HookKind::Call,
                            .types = *types,
                            .post = true};
        return std::nullopt;
    }
    if (hasPrefix(name, "return")) {
        auto types = typed(6);
        if (types)
            return HookSpec{.kind = HookKind::Return, .types = *types};
        return std::nullopt;
    }

    // Variable hooks: "<mnemonic>_<type>" (mnemonic has no '_').
    if (name.rfind("local.", 0) == 0 || name.rfind("global.", 0) == 0) {
        size_t us = name.find('_');
        if (us == std::string::npos)
            return std::nullopt;
        auto it = opcodeByMnemonic().find(name.substr(0, us));
        auto types = typed(us);
        if (it == opcodeByMnemonic().end() || !types ||
            types->size() != 1)
            return std::nullopt;
        wasm::OpClass cls = wasm::opInfo(it->second).cls;
        bool is_local = cls == wasm::OpClass::LocalGet ||
                        cls == wasm::OpClass::LocalSet ||
                        cls == wasm::OpClass::LocalTee;
        bool is_global = cls == wasm::OpClass::GlobalGet ||
                         cls == wasm::OpClass::GlobalSet;
        if (!is_local && !is_global)
            return std::nullopt;
        return HookSpec{.kind = is_local ? HookKind::Local
                                         : HookKind::Global,
                        .op = it->second,
                        .types = *types};
    }

    // Per-opcode hooks: the instruction mnemonic itself.
    if (auto it = opcodeByMnemonic().find(name);
        it != opcodeByMnemonic().end()) {
        std::optional<HookKind> kind;
        switch (wasm::opInfo(it->second).cls) {
          case wasm::OpClass::Load: kind = HookKind::Load; break;
          case wasm::OpClass::Store: kind = HookKind::Store; break;
          case wasm::OpClass::Const: kind = HookKind::Const; break;
          case wasm::OpClass::Unary: kind = HookKind::Unary; break;
          case wasm::OpClass::Binary: kind = HookKind::Binary; break;
          default: break;
        }
        if (kind)
            return HookSpec{.kind = *kind, .op = it->second};
    }
    return std::nullopt;
}

wasm::FuncType
lowLevelType(const HookSpec &spec, bool split_i64)
{
    std::vector<ValType> params{ValType::I32, ValType::I32}; // location

    auto push = [&params, split_i64](ValType t) {
        if (t == ValType::I64 && split_i64) {
            params.push_back(ValType::I32); // low half
            params.push_back(ValType::I32); // high half
        } else {
            params.push_back(t);
        }
    };

    const wasm::OpInfo &info = wasm::opInfo(spec.op);
    switch (spec.kind) {
      case HookKind::Nop:
      case HookKind::Unreachable:
      case HookKind::Br:
      case HookKind::Begin:
      case HookKind::Start:
        break;
      case HookKind::End:
        // End hooks additionally receive the instruction index of the
        // matching block begin (paper Table 3: "end hooks receive
        // location of the end and of the matching block begin").
        push(ValType::I32);
        break;
      case HookKind::MemorySize:
        push(ValType::I32); // current size
        break;
      case HookKind::MemoryGrow:
        push(ValType::I32); // delta
        push(ValType::I32); // previous size
        break;
      case HookKind::Select:
        push(ValType::I32); // condition
        push(spec.types.at(0));
        push(spec.types.at(0));
        break;
      case HookKind::Drop:
        push(spec.types.at(0));
        break;
      case HookKind::Load:
        push(ValType::I32);  // address operand
        push(info.out);      // loaded value
        break;
      case HookKind::Store:
        push(ValType::I32);  // address operand
        push(info.in[1]);    // stored value
        break;
      case HookKind::Const:
        push(info.out);
        break;
      case HookKind::Unary:
        push(info.in[0]);
        push(info.out);
        break;
      case HookKind::Binary:
        push(info.in[0]);
        push(info.in[1]);
        push(info.out);
        break;
      case HookKind::Global:
      case HookKind::Local:
        // The variable index is static; only the value is dynamic.
        push(spec.types.at(0));
        break;
      case HookKind::Call:
        if (!spec.post && spec.indirect)
            push(ValType::I32); // runtime table index
        for (ValType t : spec.types)
            push(t);
        break;
      case HookKind::Return:
        for (ValType t : spec.types)
            push(t);
        break;
      case HookKind::If:
      case HookKind::BrIf:
        push(ValType::I32); // condition
        break;
      case HookKind::BrTable:
        push(ValType::I32); // runtime table index
        break;
    }
    return FuncType(std::move(params), {});
}

uint32_t
HookMap::getOrAdd(const HookSpec &spec)
{
    std::string key = mangledName(spec);
    {
        std::shared_lock lock(mutex_);
        auto it = byName_.find(key);
        if (it != byName_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock lock(mutex_);
    // Re-check: another thread may have inserted meanwhile.
    auto it = byName_.find(key);
    if (it != byName_.end())
        return it->second;
    inserts_.fetch_add(1, std::memory_order_relaxed);
    uint32_t id = static_cast<uint32_t>(specs_.size());
    specs_.push_back(spec);
    byName_.emplace(std::move(key), id);
    return id;
}

HookMap::Stats
HookMap::stats() const
{
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.inserts = inserts_.load(std::memory_order_relaxed);
    return s;
}

uint32_t
HookMap::size() const
{
    std::shared_lock lock(mutex_);
    return static_cast<uint32_t>(specs_.size());
}

std::vector<HookSpec>
HookMap::specs() const
{
    std::shared_lock lock(mutex_);
    return specs_;
}

} // namespace wasabi::core
