#include "core/instrument.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <map>
#include <thread>

#include "core/control_stack.h"
#include "core/hook_map.h"
#include "wasm/name_section.h"

namespace wasabi::core {

using wasm::FuncType;
using wasm::Function;
using wasm::Instr;
using wasm::Module;
using wasm::Opcode;
using wasm::OpClass;
using wasm::OpInfo;
using wasm::ValType;

namespace {

/** Placeholder base for hook call indices, patched in a final pass.
 * Keeping hook targets symbolic makes per-function instrumentation
 * independent and hence parallelizable. */
constexpr uint32_t kHookBase = 0x80000000u;

/** Per-function instrumentation output. */
struct FuncOut {
    std::vector<Instr> body;
    std::vector<ValType> extraLocals;
    std::unordered_map<uint64_t, BranchTarget> brTargets;
    std::unordered_map<uint64_t, BrTableInfo> brTables;
    std::unordered_map<uint64_t, BlockEndInfo> blockEnds;
};

/** Instruments a single function (runs on a worker thread). */
class FuncInstrumenter {
  public:
    /** @p local_hook_ids is a per-worker cache shared across the
     * functions one thread instruments. */
    FuncInstrumenter(const Module &m, uint32_t func_idx, HookSet hooks,
                     const InstrumentOptions &opts, HookMap &hook_map,
                     std::unordered_map<std::string, uint32_t>
                         &local_hook_ids)
        : m_(m), funcIdx_(func_idx), hooks_(hooks), opts_(opts),
          hookMap_(hook_map), localHookIds_(local_hook_ids),
          func_(m.functions.at(func_idx)), state_(m, func_idx),
          plan_(opts.plan),
          funcDead_(plan_ && plan_->deadFunctions.count(func_idx) != 0)
    {
        firstScratch_ =
            static_cast<uint32_t>(m.funcType(func_idx).params.size() +
                                  func_.locals.size());
    }

    FuncOut
    run()
    {
        // A call-graph-dead function never runs: no entry hooks.
        if (funcDead_) {
            for (uint32_t i = 0; i < func_.body.size(); ++i) {
                instrumentInstr(func_.body[i], i);
                state_.apply(func_.body[i], i);
            }
            return std::move(out_);
        }
        // Function-entry hooks.
        if (hooks_.has(HookKind::Start) && m_.start &&
            *m_.start == funcIdx_) {
            emitLoc(kFunctionEntry);
            emitHookCall(HookSpec{.kind = HookKind::Start});
        }
        if (hooks_.has(HookKind::Begin)) {
            emitLoc(kFunctionEntry);
            emitHookCall(HookSpec{.kind = HookKind::Begin,
                                  .block = BlockKind::Function});
        }

        for (uint32_t i = 0; i < func_.body.size(); ++i) {
            instrumentInstr(func_.body[i], i);
            state_.apply(func_.body[i], i);
        }
        return std::move(out_);
    }

  private:
    // ----- emission helpers ------------------------------------------

    void emit(Instr instr) { out_.body.push_back(std::move(instr)); }

    /** Push the two location arguments (function, instruction). */
    void
    emitLoc(uint32_t instr_idx)
    {
        emit(Instr::i32Const(funcIdx_));
        emit(Instr::i32Const(instr_idx));
    }

    /** Call into the (deduplicated) low-level hook for @p spec.
     * A per-worker cache keeps the hot path off the shared map's
     * readers/writer lock (important for parallel instrumentation —
     * every instrumented instruction resolves a hook id). */
    void
    emitHookCall(const HookSpec &spec)
    {
        std::string key = mangledName(spec);
        auto it = localHookIds_.find(key);
        uint32_t id;
        if (it != localHookIds_.end()) {
            id = it->second;
        } else {
            id = hookMap_.getOrAdd(spec);
            localHookIds_.emplace(std::move(key), id);
        }
        emit(Instr::call(kHookBase + id));
    }

    /** Scratch local of type @p t for slot @p slot; slots separate
     * concurrently-live temporaries within one instrumentation unit. */
    uint32_t
    scratch(ValType t, int slot)
    {
        auto key = std::pair(t, slot);
        auto it = scratch_.find(key);
        if (it != scratch_.end())
            return it->second;
        uint32_t idx =
            firstScratch_ + static_cast<uint32_t>(out_.extraLocals.size());
        out_.extraLocals.push_back(t);
        scratch_.emplace(key, idx);
        return idx;
    }

    /** Push the value of a local as hook argument(s): i64 values are
     * split into (low, high) i32 halves when the split ABI is on
     * (paper §2.4.6, Table 3 row 6). */
    void
    emitLocalArg(uint32_t local, ValType t)
    {
        emit(Instr::localGet(local));
        if (t == ValType::I64 && opts_.splitI64) {
            emit(Instr(Opcode::I32WrapI64)); // low half
            emit(Instr::localGet(local));
            emit(Instr::i64Const(32));
            emit(Instr(Opcode::I64ShrU));
            emit(Instr(Opcode::I32WrapI64)); // high half
        }
    }

    /** Push a global's value as hook argument(s). */
    void
    emitGlobalArg(uint32_t global, ValType t)
    {
        if (t == ValType::I64 && opts_.splitI64) {
            uint32_t tmp = scratch(t, 0);
            emit(Instr::globalGet(global));
            emit(Instr::localSet(tmp));
            emitLocalArg(tmp, t);
        } else {
            emit(Instr::globalGet(global));
        }
    }

    // ----- control-stack derived info --------------------------------

    /** End location of a frame; for the then-region of an if/else the
     * region ends at the `else` instruction. */
    uint32_t
    frameEndIdx(const ControlFrame &f) const
    {
        if (f.kind == BlockKind::If && f.elseIdx)
            return *f.elseIdx;
        return f.endIdx;
    }

    /** Begin location of a frame (the `else` for else-regions). */
    uint32_t
    frameBeginIdx(const ControlFrame &f) const
    {
        if (f.kind == BlockKind::Else && f.elseIdx)
            return *f.elseIdx;
        return f.beginIdx;
    }

    EndedBlock
    endedBlock(const ControlFrame &f) const
    {
        return EndedBlock{f.kind, Location{funcIdx_, frameEndIdx(f)},
                          Location{funcIdx_, frameBeginIdx(f)}};
    }

    /** Emit the end-hook call for one traversed frame (§2.4.5). */
    void
    emitEndHookFor(const ControlFrame &f)
    {
        emitLoc(frameEndIdx(f));
        emit(Instr::i32Const(frameBeginIdx(f)));
        emitHookCall(HookSpec{.kind = HookKind::End, .block = f.kind});
    }

    BranchTarget
    resolvedTarget(uint32_t label) const
    {
        return BranchTarget{label,
                            Location{funcIdx_, state_.resolveLabel(label)}};
    }

    // ----- optimization-plan queries ----------------------------------

    /** Hooks at instruction @p i are skipped by the plan (the site is
     * CFG-unreachable, or the whole function is call-graph dead). */
    bool
    planSkips(uint32_t i) const
    {
        return funcDead_ ||
               (plan_ &&
                plan_->skips.count(packLoc({funcIdx_, i})) != 0);
    }

    bool
    planElidesBegin(uint32_t i) const
    {
        return plan_ &&
               plan_->elidedBegins.count(packLoc({funcIdx_, i})) != 0;
    }

    bool
    planElidesEnd(uint32_t i) const
    {
        return plan_ &&
               plan_->elidedEnds.count(packLoc({funcIdx_, i})) != 0;
    }

    /** The plan's unique call_indirect target claim at @p i, if any. */
    const HookOptimizationPlan::CallTargetClaim *
    planCallTarget(uint32_t i) const
    {
        if (!plan_)
            return nullptr;
        auto it = plan_->constCallTargets.find(packLoc({funcIdx_, i}));
        return it == plan_->constCallTargets.end() ? nullptr
                                                   : &it->second;
    }

    /** Constant br_table index proven by the plan, or nullptr. */
    const uint32_t *
    planConstIndex(uint32_t i) const
    {
        if (!plan_)
            return nullptr;
        auto it = plan_->constBrTableIndex.find(packLoc({funcIdx_, i}));
        return it == plan_->constBrTableIndex.end() ? nullptr
                                                    : &it->second;
    }

    /** Record the branch metadata for a skipped (uninstrumented)
     * branch: the runtime and checker key side tables off live sites
     * whether or not hooks were emitted there. */
    void
    recordBranchMetadata(const Instr &instr, OpClass cls, uint32_t i)
    {
        if (cls == OpClass::Br || cls == OpClass::BrIf) {
            out_.brTargets[packLoc({funcIdx_, i})] =
                resolvedTarget(instr.imm.idx);
        } else if (cls == OpClass::BrTable) {
            recordBrTable(instr, i);
        }
    }

    void
    recordBrTable(const Instr &instr, uint32_t i)
    {
        BrTableInfo table_info;
        for (size_t k = 0; k + 1 < instr.table.size(); ++k)
            table_info.cases.push_back(makeBrTableEntry(instr.table[k]));
        table_info.defaultCase = makeBrTableEntry(instr.table.back());
        out_.brTables[packLoc({funcIdx_, i})] = std::move(table_info);
    }

    // ----- per-instruction instrumentation ----------------------------

    void
    instrumentInstr(const Instr &instr, uint32_t i)
    {
        const OpInfo &info = wasm::opInfo(instr.op);
        const bool live = state_.reachable();

        // Structural bookkeeping that happens regardless of liveness.
        if (info.cls == OpClass::End || info.cls == OpClass::Else) {
            const ControlFrame &f = state_.frames().back();
            BlockKind kind =
                info.cls == OpClass::Else ? BlockKind::If : f.kind;
            uint32_t begin = info.cls == OpClass::Else
                                 ? f.beginIdx
                                 : frameBeginIdx(f);
            out_.blockEnds[packLoc({funcIdx_, i})] =
                BlockEndInfo{kind, Location{funcIdx_, begin}};
        }

        if (planSkips(i)) {
            // The pass pipeline proved this site can never execute;
            // copy it unchanged, but keep recording branch metadata
            // at structurally-live sites — the metadata invariant is
            // independent of hook emission.
            if (live)
                recordBranchMetadata(instr, info.cls, i);
            emit(instr);
            return;
        }

        if (!live) {
            // Dead code never executes: copy it unchanged. (Its types
            // may be unknowable anyway, cf. drop in unreachable code.)
            // Exception: an `else` whose *then*-branch ended dead still
            // guards a reachable else-region and needs its begin hook,
            // provided the `if` itself was entered live.
            if (info.cls == OpClass::Else &&
                !state_.frames().back().deadEntry) {
                emit(instr);
                if (hooks_.has(HookKind::Begin)) {
                    emitLoc(i);
                    emitHookCall(HookSpec{.kind = HookKind::Begin,
                                          .block = BlockKind::Else});
                }
                return;
            }
            emit(instr);
            return;
        }

        switch (info.cls) {
          case OpClass::Nop:
            emit(instr);
            if (hooks_.has(HookKind::Nop)) {
                emitLoc(i);
                emitHookCall(HookSpec{.kind = HookKind::Nop});
            }
            break;

          case OpClass::Unreachable:
            // The hook must run *before* the trapping instruction.
            if (hooks_.has(HookKind::Unreachable)) {
                emitLoc(i);
                emitHookCall(HookSpec{.kind = HookKind::Unreachable});
            }
            emit(instr);
            break;

          case OpClass::Block:
          case OpClass::Loop: {
            emit(instr);
            if (hooks_.has(HookKind::Begin) && !planElidesBegin(i)) {
                emitLoc(i);
                emitHookCall(HookSpec{
                    .kind = HookKind::Begin,
                    .block = info.cls == OpClass::Block ? BlockKind::Block
                                                        : BlockKind::Loop});
            }
            break;
          }

          case OpClass::If: {
            if (hooks_.has(HookKind::If)) {
                uint32_t c = scratch(ValType::I32, 0);
                emit(Instr::localTee(c));
                emitLoc(i);
                emit(Instr::localGet(c));
                emitHookCall(HookSpec{.kind = HookKind::If});
            }
            emit(instr);
            if (hooks_.has(HookKind::Begin)) {
                emitLoc(i);
                emitHookCall(HookSpec{.kind = HookKind::Begin,
                                      .block = BlockKind::If});
            }
            break;
          }

          case OpClass::Else: {
            // Exiting the then-region: fire its end hook first.
            if (hooks_.has(HookKind::End)) {
                const ControlFrame &f = state_.frames().back();
                emitLoc(i);
                emit(Instr::i32Const(f.beginIdx));
                emitHookCall(HookSpec{.kind = HookKind::End,
                                      .block = BlockKind::If});
            }
            emit(instr);
            if (hooks_.has(HookKind::Begin)) {
                emitLoc(i);
                emitHookCall(HookSpec{.kind = HookKind::Begin,
                                      .block = BlockKind::Else});
            }
            break;
          }

          case OpClass::End: {
            if (hooks_.has(HookKind::End) && !planElidesEnd(i)) {
                const ControlFrame &f = state_.frames().back();
                emitLoc(i);
                emit(Instr::i32Const(frameBeginIdx(f)));
                emitHookCall(
                    HookSpec{.kind = HookKind::End, .block = f.kind});
            }
            emit(instr);
            break;
          }

          case OpClass::Br: {
            uint32_t label = instr.imm.idx;
            out_.brTargets[packLoc({funcIdx_, i})] = resolvedTarget(label);
            if (hooks_.has(HookKind::Br)) {
                emitLoc(i);
                emitHookCall(HookSpec{.kind = HookKind::Br});
            }
            if (hooks_.has(HookKind::End)) {
                for (const ControlFrame &f : state_.traversedFrames(label))
                    emitEndHookFor(f);
            }
            emit(instr);
            break;
          }

          case OpClass::BrIf: {
            uint32_t label = instr.imm.idx;
            out_.brTargets[packLoc({funcIdx_, i})] = resolvedTarget(label);
            bool want_hook = hooks_.has(HookKind::BrIf);
            bool want_ends = hooks_.has(HookKind::End);
            if (want_hook || want_ends) {
                uint32_t c = scratch(ValType::I32, 0);
                emit(Instr::localTee(c));
                if (want_hook) {
                    emitLoc(i);
                    emit(Instr::localGet(c));
                    emitHookCall(HookSpec{.kind = HookKind::BrIf});
                }
                if (want_ends) {
                    // End hooks fire only if the branch is taken.
                    emit(Instr::localGet(c));
                    emit(Instr::blockStart(Opcode::If, std::nullopt));
                    for (const ControlFrame &f :
                         state_.traversedFrames(label)) {
                        emitEndHookFor(f);
                    }
                    emit(Instr(Opcode::End));
                }
            }
            emit(instr);
            break;
          }

          case OpClass::BrTable: {
            // Which branch is taken — and thus which blocks are left —
            // is only known at runtime; store a side table and let the
            // low-level hook dispatch (paper §2.4.5).
            recordBrTable(instr, i);

            if (const uint32_t *cidx = planConstIndex(i)) {
                // The index operand is a compile-time constant: the
                // taken label — and the frames it exits — are known
                // statically, so the runtime side-table dispatch
                // narrows to a plain br hook plus static end hooks.
                size_t sel = std::min<size_t>(
                    *cidx, instr.table.size() - 1);
                uint32_t label = instr.table[sel];
                out_.brTargets[packLoc({funcIdx_, i})] =
                    resolvedTarget(label);
                if (hooks_.has(HookKind::BrTable)) {
                    emitLoc(i);
                    emitHookCall(HookSpec{.kind = HookKind::Br});
                }
                if (hooks_.has(HookKind::End)) {
                    for (const ControlFrame &f :
                         state_.traversedFrames(label))
                        emitEndHookFor(f);
                }
                emit(instr);
                break;
            }

            if (hooks_.has(HookKind::BrTable) ||
                hooks_.has(HookKind::End)) {
                uint32_t idx = scratch(ValType::I32, 0);
                emit(Instr::localTee(idx));
                emitLoc(i);
                emit(Instr::localGet(idx));
                emitHookCall(HookSpec{.kind = HookKind::BrTable});
            }
            emit(instr);
            break;
          }

          case OpClass::Return: {
            const std::vector<ValType> &results =
                m_.funcType(funcIdx_).results;
            if (hooks_.has(HookKind::Return)) {
                HookSpec spec{.kind = HookKind::Return, .types = results};
                if (results.empty()) {
                    emitLoc(i);
                    emitHookCall(spec);
                } else {
                    uint32_t r = scratch(results[0], 0);
                    emit(Instr::localTee(r));
                    emitLoc(i);
                    emitLocalArg(r, results[0]);
                    emitHookCall(spec);
                }
            }
            if (hooks_.has(HookKind::End)) {
                for (const ControlFrame &f :
                     state_.allFramesInnermostFirst()) {
                    emitEndHookFor(f);
                }
            }
            emit(instr);
            break;
          }

          case OpClass::Call:
          case OpClass::CallIndirect: {
            bool indirect = info.cls == OpClass::CallIndirect;
            const FuncType &type = indirect
                                       ? m_.types.at(instr.imm.idx)
                                       : m_.funcType(instr.imm.idx);
            if (!hooks_.has(HookKind::Call)) {
                emit(instr);
                break;
            }
            // A plan-claimed constant-index call_indirect narrows to
            // the direct call_pre variant: the table-index hook
            // argument is dropped (the runtime reports the statically
            // known target instead), but the index value itself is
            // still saved/restored for the actual call.
            bool narrowed = indirect && planCallTarget(i) != nullptr;
            int nargs = static_cast<int>(type.params.size());
            uint32_t tbl = 0;
            if (indirect) {
                tbl = scratch(ValType::I32, nargs);
                emit(Instr::localSet(tbl));
            }
            // Save arguments into fresh locals (top of stack first).
            for (int j = nargs - 1; j >= 0; --j)
                emit(Instr::localSet(scratch(type.params[j], j)));
            // call_pre hook: loc, (table index,) args.
            emitLoc(i);
            if (indirect && !narrowed)
                emit(Instr::localGet(tbl));
            for (int j = 0; j < nargs; ++j)
                emitLocalArg(scratch(type.params[j], j), type.params[j]);
            emitHookCall(HookSpec{.kind = HookKind::Call,
                                  .types = type.params,
                                  .indirect = indirect && !narrowed});
            // Restore arguments and perform the call.
            for (int j = 0; j < nargs; ++j)
                emit(Instr::localGet(scratch(type.params[j], j)));
            if (indirect)
                emit(Instr::localGet(tbl));
            emit(instr);
            // call_post hook: loc, results.
            HookSpec post{.kind = HookKind::Call,
                          .types = type.results,
                          .post = true};
            if (type.results.empty()) {
                emitLoc(i);
                emitHookCall(post);
            } else {
                uint32_t r = scratch(type.results[0], nargs + 1);
                emit(Instr::localTee(r));
                emitLoc(i);
                emitLocalArg(r, type.results[0]);
                emitHookCall(post);
            }
            break;
          }

          case OpClass::Drop: {
            std::optional<ValType> t = state_.top(0);
            assert(t && "drop input type must be known in live code");
            if (!hooks_.has(HookKind::Drop)) {
                emit(instr);
                break;
            }
            // The hook call consumes the value in place of the drop
            // (Table 3 row 4).
            uint32_t v = scratch(*t, 0);
            emit(Instr::localSet(v));
            emitLoc(i);
            emitLocalArg(v, *t);
            emitHookCall(HookSpec{.kind = HookKind::Drop, .types = {*t}});
            break;
          }

          case OpClass::Select: {
            std::optional<ValType> t = state_.top(1);
            assert(t && "select input type must be known in live code");
            if (!hooks_.has(HookKind::Select)) {
                emit(instr);
                break;
            }
            uint32_t c = scratch(ValType::I32, 0);
            uint32_t a = scratch(*t, 1);
            uint32_t b = scratch(*t, 2);
            emit(Instr::localSet(c));
            emit(Instr::localSet(b));
            emit(Instr::localTee(a));
            emit(Instr::localGet(b));
            emit(Instr::localGet(c));
            emit(instr); // the select itself
            emitLoc(i);
            emit(Instr::localGet(c));
            emitLocalArg(a, *t);
            emitLocalArg(b, *t);
            emitHookCall(
                HookSpec{.kind = HookKind::Select, .types = {*t}});
            break;
          }

          case OpClass::LocalGet:
          case OpClass::LocalSet:
          case OpClass::LocalTee: {
            emit(instr);
            if (hooks_.has(HookKind::Local)) {
                ValType t = localType(instr.imm.idx);
                emitLoc(i);
                emitLocalArg(instr.imm.idx, t);
                emitHookCall(HookSpec{.kind = HookKind::Local,
                                      .op = instr.op,
                                      .types = {t}});
            }
            break;
          }

          case OpClass::GlobalGet:
          case OpClass::GlobalSet: {
            emit(instr);
            if (hooks_.has(HookKind::Global)) {
                ValType t = m_.globals.at(instr.imm.idx).type;
                emitLoc(i);
                emitGlobalArg(instr.imm.idx, t);
                emitHookCall(HookSpec{.kind = HookKind::Global,
                                      .op = instr.op,
                                      .types = {t}});
            }
            break;
          }

          case OpClass::Load: {
            if (!hooks_.has(HookKind::Load)) {
                emit(instr);
                break;
            }
            uint32_t addr = scratch(ValType::I32, 0);
            uint32_t v = scratch(info.out, 1);
            emit(Instr::localTee(addr));
            emit(instr);
            emit(Instr::localTee(v));
            emitLoc(i);
            emit(Instr::localGet(addr));
            emitLocalArg(v, info.out);
            emitHookCall(
                HookSpec{.kind = HookKind::Load, .op = instr.op});
            break;
          }

          case OpClass::Store: {
            if (!hooks_.has(HookKind::Store)) {
                emit(instr);
                break;
            }
            ValType vt = info.in[1];
            uint32_t addr = scratch(ValType::I32, 0);
            uint32_t v = scratch(vt, 1);
            emit(Instr::localSet(v));
            emit(Instr::localTee(addr));
            emit(Instr::localGet(v));
            emit(instr);
            emitLoc(i);
            emit(Instr::localGet(addr));
            emitLocalArg(v, vt);
            emitHookCall(
                HookSpec{.kind = HookKind::Store, .op = instr.op});
            break;
          }

          case OpClass::MemorySize: {
            emit(instr);
            if (hooks_.has(HookKind::MemorySize)) {
                uint32_t s = scratch(ValType::I32, 0);
                emit(Instr::localTee(s));
                emitLoc(i);
                emit(Instr::localGet(s));
                emitHookCall(HookSpec{.kind = HookKind::MemorySize});
            }
            break;
          }

          case OpClass::MemoryGrow: {
            if (!hooks_.has(HookKind::MemoryGrow)) {
                emit(instr);
                break;
            }
            uint32_t d = scratch(ValType::I32, 0);
            uint32_t p = scratch(ValType::I32, 1);
            emit(Instr::localTee(d));
            emit(instr);
            emit(Instr::localTee(p));
            emitLoc(i);
            emit(Instr::localGet(d));
            emit(Instr::localGet(p));
            emitHookCall(HookSpec{.kind = HookKind::MemoryGrow});
            break;
          }

          case OpClass::Const: {
            emit(instr);
            if (hooks_.has(HookKind::Const)) {
                emitLoc(i);
                if (instr.op == Opcode::I64Const && opts_.splitI64) {
                    // The halves are known statically.
                    emit(Instr::i32Const(
                        static_cast<uint32_t>(instr.imm.i64v)));
                    emit(Instr::i32Const(
                        static_cast<uint32_t>(instr.imm.i64v >> 32)));
                } else {
                    emit(instr); // re-push the constant for the hook
                }
                emitHookCall(
                    HookSpec{.kind = HookKind::Const, .op = instr.op});
            }
            break;
          }

          case OpClass::Unary: {
            if (!hooks_.has(HookKind::Unary)) {
                emit(instr);
                break;
            }
            uint32_t in = scratch(info.in[0], 0);
            uint32_t r = scratch(info.out, 1);
            emit(Instr::localTee(in));
            emit(instr);
            emit(Instr::localTee(r));
            emitLoc(i);
            emitLocalArg(in, info.in[0]);
            emitLocalArg(r, info.out);
            emitHookCall(
                HookSpec{.kind = HookKind::Unary, .op = instr.op});
            break;
          }

          case OpClass::Binary: {
            if (!hooks_.has(HookKind::Binary)) {
                emit(instr);
                break;
            }
            uint32_t a = scratch(info.in[0], 0);
            uint32_t b = scratch(info.in[1], 1);
            uint32_t r = scratch(info.out, 2);
            emit(Instr::localSet(b));
            emit(Instr::localTee(a));
            emit(Instr::localGet(b));
            emit(instr);
            emit(Instr::localTee(r));
            emitLoc(i);
            emitLocalArg(a, info.in[0]);
            emitLocalArg(b, info.in[1]);
            emitLocalArg(r, info.out);
            emitHookCall(
                HookSpec{.kind = HookKind::Binary, .op = instr.op});
            break;
          }
        }
    }

    BrTableEntry
    makeBrTableEntry(uint32_t label) const
    {
        BrTableEntry e;
        e.target = resolvedTarget(label);
        for (const ControlFrame &f : state_.traversedFrames(label))
            e.ended.push_back(endedBlock(f));
        return e;
    }

    ValType
    localType(uint32_t idx) const
    {
        const std::vector<ValType> &params =
            m_.funcType(funcIdx_).params;
        if (idx < params.size())
            return params[idx];
        return func_.locals.at(idx - params.size());
    }

    const Module &m_;
    uint32_t funcIdx_;
    HookSet hooks_;
    const InstrumentOptions &opts_;
    HookMap &hookMap_;
    std::unordered_map<std::string, uint32_t> &localHookIds_;
    const Function &func_;
    AbstractState state_;
    const HookOptimizationPlan *plan_;
    bool funcDead_;
    FuncOut out_;
    uint32_t firstScratch_;
    std::map<std::pair<ValType, int>, uint32_t> scratch_;
};

/** Patch a function index after hook imports were inserted. */
uint32_t
remapFuncIdx(uint32_t idx, uint32_t num_orig_imports, uint32_t num_hooks)
{
    if (idx >= kHookBase)
        return num_orig_imports + (idx - kHookBase);
    if (idx < num_orig_imports)
        return idx;
    return idx + num_hooks;
}

} // namespace

InstrumentResult
instrument(const Module &m, HookSet hooks, const InstrumentOptions &opts)
{
    using Clock = std::chrono::steady_clock;
    const auto t_begin = Clock::now();
    auto since_begin = [&t_begin]() {
        return static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - t_begin)
                .count());
    };

    const uint32_t num_funcs = m.numFunctions();
    HookMap hook_map;
    std::vector<FuncOut> outs(num_funcs);
    InstrumentStats stats;

    // `cache` is per worker: it keeps the hot hook-id lookups off the
    // shared map's lock (paper §3: the monomorphization map is the
    // only synchronization point of the parallel instrumentation).
    auto work = [&](uint32_t f,
                    std::unordered_map<std::string, uint32_t> &cache,
                    InstrumentStats::Worker &wstats) {
        if (!m.functions[f].imported()) {
            outs[f] =
                FuncInstrumenter(m, f, hooks, opts, hook_map, cache)
                    .run();
            ++wstats.functions;
        }
    };

    if (opts.numThreads <= 1) {
        InstrumentStats::Worker wstats;
        wstats.startNanos = since_begin();
        std::unordered_map<std::string, uint32_t> cache;
        for (uint32_t f = 0; f < num_funcs; ++f)
            work(f, cache, wstats);
        wstats.nanos = since_begin() - wstats.startNanos;
        stats.workers.push_back(wstats);
    } else {
        std::atomic<uint32_t> next{0};
        std::vector<std::thread> threads;
        stats.workers.resize(opts.numThreads);
        for (unsigned t = 0; t < opts.numThreads; ++t) {
            threads.emplace_back([&, t]() {
                InstrumentStats::Worker &wstats = stats.workers[t];
                wstats.startNanos = since_begin();
                std::unordered_map<std::string, uint32_t> cache;
                while (true) {
                    uint32_t f = next.fetch_add(1);
                    if (f >= num_funcs)
                        break;
                    work(f, cache, wstats);
                }
                wstats.nanos = since_begin() - wstats.startNanos;
            });
        }
        for (std::thread &t : threads)
            t.join();
    }
    for (const InstrumentStats::Worker &w : stats.workers)
        stats.functionsInstrumented += w.functions;
    stats.hookMap = hook_map.stats();

    auto info = std::make_shared<StaticInfo>();
    info->original = m;
    info->importModule = opts.importModule;
    info->numOrigImports = m.numImportedFunctions();
    info->splitI64 = opts.splitI64;
    info->instrumentedHooks = hooks;
    info->hooks = hook_map.specs();
    if (opts.plan)
        info->optimization = *opts.plan;

    const uint32_t num_hooks = static_cast<uint32_t>(info->hooks.size());
    const uint32_t base = info->numOrigImports;

    Module out = m;

    // Lift any "name" custom section into debugNames now: its function
    // indices refer to the pre-instrumentation index space and would be
    // stale after hook imports shift them; the section is rebuilt from
    // debugNames at the end. The structured parse additionally keeps
    // the local-name subsection so it can be remapped instead of lost.
    wasm::NameSectionData names = wasm::parseNameSection(out);
    wasm::applyNameSection(out);

    // Create the hook import functions and splice them in right after
    // the original imports, so hook id h gets function index base + h.
    std::vector<Function> hook_funcs;
    hook_funcs.reserve(num_hooks);
    for (const HookSpec &spec : info->hooks) {
        Function hf;
        hf.typeIdx = out.addType(lowLevelType(spec, opts.splitI64));
        hf.import = wasm::ImportRef{opts.importModule, mangledName(spec)};
        hf.debugName = mangledName(spec);
        hook_funcs.push_back(std::move(hf));
    }
    out.functions.insert(out.functions.begin() + base, hook_funcs.begin(),
                         hook_funcs.end());

    // Install the instrumented bodies and extra locals.
    for (uint32_t f = 0; f < num_funcs; ++f) {
        if (m.functions[f].imported())
            continue;
        Function &g = out.functions.at(f + num_hooks);
        g.locals.insert(g.locals.end(), outs[f].extraLocals.begin(),
                        outs[f].extraLocals.end());
        g.body = std::move(outs[f].body);
        // Merge this function's static-info contributions.
        info->brTargets.merge(outs[f].brTargets);
        info->brTables.merge(outs[f].brTables);
        info->blockEnds.merge(outs[f].blockEnds);
    }

    // Final pass: patch all function references for the shifted index
    // space (call immediates, element segments, start).
    for (Function &g : out.functions) {
        for (Instr &instr : g.body) {
            if (instr.op == Opcode::Call)
                instr.imm.idx =
                    remapFuncIdx(instr.imm.idx, base, num_hooks);
        }
    }
    for (wasm::ElementSegment &seg : out.elements) {
        for (uint32_t &f : seg.funcIdxs)
            f = remapFuncIdx(f, base, num_hooks);
    }
    if (out.start)
        out.start = remapFuncIdx(*out.start, base, num_hooks);

    // Re-emit the name section against the new index space (hook
    // imports carry their mangled names as debug names). Local-name
    // subsections survive instrumentation: extra locals are appended
    // after the original ones, so per-function local indices stay
    // valid and only the function index shifts. Label names are
    // dropped — instrumented bodies are rewritten, so label positions
    // would be stale.
    std::vector<uint32_t> name_func_map(num_funcs);
    for (uint32_t f = 0; f < num_funcs; ++f)
        name_func_map[f] = remapFuncIdx(f, base, num_hooks);
    wasm::remapNameData(names, name_func_map);
    names.labelNames.clear();
    names.funcNames.clear();
    for (uint32_t i = 0; i < out.functions.size(); ++i) {
        if (!out.functions[i].debugName.empty())
            names.funcNames.push_back(
                {static_cast<uint32_t>(i), out.functions[i].debugName});
    }
    wasm::setNameSection(out, names);

    stats.hooksGenerated = num_hooks;
    stats.wallNanos = since_begin();
    return InstrumentResult{std::move(out), std::move(info),
                            std::move(stats)};
}

} // namespace wasabi::core
