/**
 * @file
 * High-level hook kinds (the 23 hooks of the paper's Table 2, grouped
 * into the 21 selective-instrumentation categories of Figures 8/9 plus
 * `start`), and HookSet, the bitmask used for selective
 * instrumentation (paper §2.4.2).
 */

#ifndef WASABI_CORE_HOOK_KIND_H
#define WASABI_CORE_HOOK_KIND_H

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "wasm/opcode.h"

namespace wasabi::core {

/**
 * The selective-instrumentation categories. The declaration order is
 * exactly the x-axis order of Figures 8 and 9 in the paper, so the
 * benches can iterate over it directly.
 *
 * `Call` covers both the call_pre and call_post high-level hooks (and
 * both direct and indirect calls); `Begin`/`End` cover all block
 * kinds; `If` is the condition-observing hook of the `if` instruction
 * (its block entry/exit is covered by Begin/End).
 */
enum class HookKind : uint8_t {
    Nop = 0,
    Unreachable,
    MemorySize,
    MemoryGrow,
    Select,
    Drop,
    Load,
    Store,
    Call,
    Return,
    Const,
    Unary,
    Binary,
    Global,
    Local,
    Begin,
    End,
    If,
    Br,
    BrIf,
    BrTable,
    Start,
};

inline constexpr int kNumHookKinds = 22;

/** Figure-style name, e.g. "memory_size" or "br_table". */
const char *name(HookKind kind);

/** Hook kind by figure-style name; nullopt if unknown. */
std::optional<HookKind> hookKindByName(const std::string &name);

/** The kinds in Figure 8/9 x-axis order (excludes `start`). */
const std::vector<HookKind> &figureOrderHookKinds();

/**
 * The selective-instrumentation category of an instruction class:
 * which HookKind's presence in the HookSet makes the instrumenter
 * touch instructions of this class (paper §2.4.2). Structural classes
 * map to their primary hook: block/loop map to Begin, end to End, if
 * to If (its Begin/End instrumentation is additionally governed by
 * those kinds), else to End.
 */
std::optional<HookKind> hookKindForClass(wasm::OpClass cls);

/** A set of hook kinds; drives selective instrumentation. */
class HookSet {
  public:
    HookSet() = default;

    HookSet(std::initializer_list<HookKind> kinds)
    {
        for (HookKind k : kinds)
            add(k);
    }

    static HookSet
    all()
    {
        HookSet s;
        s.bits_ = (1u << kNumHookKinds) - 1;
        return s;
    }

    static HookSet none() { return HookSet(); }

    /** Singleton set. */
    static HookSet
    only(HookKind k)
    {
        HookSet s;
        s.add(k);
        return s;
    }

    void add(HookKind k) { bits_ |= bit(k); }
    void remove(HookKind k) { bits_ &= ~bit(k); }

    bool has(HookKind k) const { return (bits_ & bit(k)) != 0; }
    bool empty() const { return bits_ == 0; }

    HookSet
    operator|(const HookSet &other) const
    {
        HookSet s;
        s.bits_ = bits_ | other.bits_;
        return s;
    }

    HookSet &
    operator|=(const HookSet &other)
    {
        bits_ |= other.bits_;
        return *this;
    }

    bool operator==(const HookSet &other) const = default;

    /** Number of kinds in the set. */
    int count() const;

    /** Comma-separated kind names, for diagnostics. */
    std::string toString() const;

  private:
    static uint32_t
    bit(HookKind k)
    {
        return 1u << static_cast<uint8_t>(k);
    }

    uint32_t bits_ = 0;
};

/** The kinds of blocks begin/end hooks distinguish (paper Table 2). */
enum class BlockKind : uint8_t {
    Function = 0,
    Block,
    Loop,
    If,
    Else,
};

/** Name, e.g. "function" or "loop". */
const char *name(BlockKind kind);

} // namespace wasabi::core

#endif // WASABI_CORE_HOOK_KIND_H
