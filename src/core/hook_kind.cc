#include "core/hook_kind.h"

#include <bit>

namespace wasabi::core {

const char *
name(HookKind kind)
{
    switch (kind) {
      case HookKind::Nop: return "nop";
      case HookKind::Unreachable: return "unreachable";
      case HookKind::MemorySize: return "memory_size";
      case HookKind::MemoryGrow: return "memory_grow";
      case HookKind::Select: return "select";
      case HookKind::Drop: return "drop";
      case HookKind::Load: return "load";
      case HookKind::Store: return "store";
      case HookKind::Call: return "call";
      case HookKind::Return: return "return";
      case HookKind::Const: return "const";
      case HookKind::Unary: return "unary";
      case HookKind::Binary: return "binary";
      case HookKind::Global: return "global";
      case HookKind::Local: return "local";
      case HookKind::Begin: return "begin";
      case HookKind::End: return "end";
      case HookKind::If: return "if";
      case HookKind::Br: return "br";
      case HookKind::BrIf: return "br_if";
      case HookKind::BrTable: return "br_table";
      case HookKind::Start: return "start";
    }
    return "?";
}

std::optional<HookKind>
hookKindByName(const std::string &hook_name)
{
    for (int i = 0; i < kNumHookKinds; ++i) {
        HookKind k = static_cast<HookKind>(i);
        if (hook_name == name(k))
            return k;
    }
    return std::nullopt;
}

std::optional<HookKind>
hookKindForClass(wasm::OpClass cls)
{
    using wasm::OpClass;
    switch (cls) {
      case OpClass::Nop: return HookKind::Nop;
      case OpClass::Unreachable: return HookKind::Unreachable;
      case OpClass::Block:
      case OpClass::Loop:
        return HookKind::Begin;
      case OpClass::If: return HookKind::If;
      case OpClass::Else:
      case OpClass::End:
        return HookKind::End;
      case OpClass::Br: return HookKind::Br;
      case OpClass::BrIf: return HookKind::BrIf;
      case OpClass::BrTable: return HookKind::BrTable;
      case OpClass::Return: return HookKind::Return;
      case OpClass::Call:
      case OpClass::CallIndirect:
        return HookKind::Call;
      case OpClass::Drop: return HookKind::Drop;
      case OpClass::Select: return HookKind::Select;
      case OpClass::LocalGet:
      case OpClass::LocalSet:
      case OpClass::LocalTee:
        return HookKind::Local;
      case OpClass::GlobalGet:
      case OpClass::GlobalSet:
        return HookKind::Global;
      case OpClass::Load: return HookKind::Load;
      case OpClass::Store: return HookKind::Store;
      case OpClass::MemorySize: return HookKind::MemorySize;
      case OpClass::MemoryGrow: return HookKind::MemoryGrow;
      case OpClass::Const: return HookKind::Const;
      case OpClass::Unary: return HookKind::Unary;
      case OpClass::Binary: return HookKind::Binary;
    }
    return std::nullopt;
}

const std::vector<HookKind> &
figureOrderHookKinds()
{
    static const std::vector<HookKind> kinds = {
        HookKind::Nop,       HookKind::Unreachable, HookKind::MemorySize,
        HookKind::MemoryGrow, HookKind::Select,     HookKind::Drop,
        HookKind::Load,      HookKind::Store,       HookKind::Call,
        HookKind::Return,    HookKind::Const,       HookKind::Unary,
        HookKind::Binary,    HookKind::Global,      HookKind::Local,
        HookKind::Begin,     HookKind::End,         HookKind::If,
        HookKind::Br,        HookKind::BrIf,        HookKind::BrTable,
    };
    return kinds;
}

int
HookSet::count() const
{
    return std::popcount(bits_);
}

std::string
HookSet::toString() const
{
    std::string s;
    for (int i = 0; i < kNumHookKinds; ++i) {
        HookKind k = static_cast<HookKind>(i);
        if (has(k)) {
            if (!s.empty())
                s += ",";
            s += name(k);
        }
    }
    return s;
}

const char *
name(BlockKind kind)
{
    switch (kind) {
      case BlockKind::Function: return "function";
      case BlockKind::Block: return "block";
      case BlockKind::Loop: return "loop";
      case BlockKind::If: return "if";
      case BlockKind::Else: return "else";
    }
    return "?";
}

} // namespace wasabi::core
