#include "core/hook_kind.h"

#include <bit>

namespace wasabi::core {

const char *
name(HookKind kind)
{
    switch (kind) {
      case HookKind::Nop: return "nop";
      case HookKind::Unreachable: return "unreachable";
      case HookKind::MemorySize: return "memory_size";
      case HookKind::MemoryGrow: return "memory_grow";
      case HookKind::Select: return "select";
      case HookKind::Drop: return "drop";
      case HookKind::Load: return "load";
      case HookKind::Store: return "store";
      case HookKind::Call: return "call";
      case HookKind::Return: return "return";
      case HookKind::Const: return "const";
      case HookKind::Unary: return "unary";
      case HookKind::Binary: return "binary";
      case HookKind::Global: return "global";
      case HookKind::Local: return "local";
      case HookKind::Begin: return "begin";
      case HookKind::End: return "end";
      case HookKind::If: return "if";
      case HookKind::Br: return "br";
      case HookKind::BrIf: return "br_if";
      case HookKind::BrTable: return "br_table";
      case HookKind::Start: return "start";
    }
    return "?";
}

const std::vector<HookKind> &
figureOrderHookKinds()
{
    static const std::vector<HookKind> kinds = {
        HookKind::Nop,       HookKind::Unreachable, HookKind::MemorySize,
        HookKind::MemoryGrow, HookKind::Select,     HookKind::Drop,
        HookKind::Load,      HookKind::Store,       HookKind::Call,
        HookKind::Return,    HookKind::Const,       HookKind::Unary,
        HookKind::Binary,    HookKind::Global,      HookKind::Local,
        HookKind::Begin,     HookKind::End,         HookKind::If,
        HookKind::Br,        HookKind::BrIf,        HookKind::BrTable,
    };
    return kinds;
}

int
HookSet::count() const
{
    return std::popcount(bits_);
}

std::string
HookSet::toString() const
{
    std::string s;
    for (int i = 0; i < kNumHookKinds; ++i) {
        HookKind k = static_cast<HookKind>(i);
        if (has(k)) {
            if (!s.empty())
                s += ",";
            s += name(k);
        }
    }
    return s;
}

const char *
name(BlockKind kind)
{
    switch (kind) {
      case BlockKind::Function: return "function";
      case BlockKind::Block: return "block";
      case BlockKind::Loop: return "loop";
      case BlockKind::If: return "if";
      case BlockKind::Else: return "else";
    }
    return "?";
}

} // namespace wasabi::core
