#include "core/static_info.h"
