#include "core/intrinsic_info.h"

#include "core/control_stack.h"
#include "wasm/opcode.h"

namespace wasabi::core {

using wasm::Instr;
using wasm::Module;
using wasm::OpClass;

namespace {

/** End location of a frame; for the then-region of an if/else the
 * region ends at the `else` instruction (mirrors instrument.cc). */
uint32_t
frameEndIdx(const ControlFrame &f)
{
    if (f.kind == BlockKind::If && f.elseIdx)
        return *f.elseIdx;
    return f.endIdx;
}

/** Begin location of a frame (the `else` for else-regions). */
uint32_t
frameBeginIdx(const ControlFrame &f)
{
    if (f.kind == BlockKind::Else && f.elseIdx)
        return *f.elseIdx;
    return f.beginIdx;
}

EndedBlock
endedBlock(uint32_t func_idx, const ControlFrame &f)
{
    return EndedBlock{f.kind, Location{func_idx, frameEndIdx(f)},
                      Location{func_idx, frameBeginIdx(f)}};
}

BrTableEntry
makeBrTableEntry(const AbstractState &state, uint32_t func_idx,
                 uint32_t label)
{
    BrTableEntry e;
    e.target = BranchTarget{label,
                            Location{func_idx, state.resolveLabel(label)}};
    for (const ControlFrame &f : state.traversedFrames(label))
        e.ended.push_back(endedBlock(func_idx, f));
    return e;
}

void
walkFunction(const Module &m, uint32_t func_idx, StaticInfo &info)
{
    const std::vector<Instr> &body = m.functions.at(func_idx).body;
    AbstractState state(m, func_idx);

    for (uint32_t i = 0; i < body.size(); ++i) {
        const Instr &instr = body[i];
        OpClass cls = wasm::opInfo(instr.op).cls;
        const bool live = state.reachable();

        // Block-end metadata is structural and recorded regardless of
        // liveness, exactly as the instrumenter does.
        if (cls == OpClass::End || cls == OpClass::Else) {
            const ControlFrame &f = state.frames().back();
            BlockKind kind =
                cls == OpClass::Else ? BlockKind::If : f.kind;
            uint32_t begin = cls == OpClass::Else ? f.beginIdx
                                                  : frameBeginIdx(f);
            info.blockEnds[packLoc({func_idx, i})] =
                BlockEndInfo{kind, Location{func_idx, begin}};
        }

        if (live) {
            if (cls == OpClass::Br || cls == OpClass::BrIf) {
                uint32_t label = instr.imm.idx;
                info.brTargets[packLoc({func_idx, i})] = BranchTarget{
                    label, Location{func_idx, state.resolveLabel(label)}};
            } else if (cls == OpClass::BrTable) {
                BrTableInfo table_info;
                for (size_t k = 0; k + 1 < instr.table.size(); ++k)
                    table_info.cases.push_back(makeBrTableEntry(
                        state, func_idx, instr.table[k]));
                table_info.defaultCase = makeBrTableEntry(
                    state, func_idx, instr.table.back());
                info.brTables[packLoc({func_idx, i})] =
                    std::move(table_info);
            }
        }

        state.apply(instr, i);
    }
}

} // namespace

std::shared_ptr<StaticInfo>
buildIntrinsicInfo(const Module &m, HookSet kinds)
{
    auto info = std::make_shared<StaticInfo>();
    info->original = m;
    info->importModule = "wasabi";
    info->numOrigImports = m.numImportedFunctions();
    info->splitI64 = false; // engine values never cross an i32 ABI
    info->instrumentedHooks = kinds;

    for (uint32_t f = info->numOrigImports;
         f < static_cast<uint32_t>(m.functions.size()); ++f)
        walkFunction(m, f, *info);

    return info;
}

} // namespace wasabi::core
