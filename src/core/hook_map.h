/**
 * @file
 * Low-level hook specifications and the on-demand monomorphization
 * hook map (paper §2.4.3).
 *
 * WebAssembly functions must have fixed, monomorphic types, while
 * several instructions are polymorphic (drop, select, call, return,
 * locals/globals). Wasabi therefore generates one monomorphic
 * low-level hook per (instruction kind, concrete type) combination
 * that actually occurs in the program. The HookMap deduplicates
 * these specs and assigns dense hook ids; it is shared across the
 * per-function instrumentation threads and guarded by a
 * readers/writer lock, mirroring the paper's implementation (§3).
 */

#ifndef WASABI_CORE_HOOK_MAP_H
#define WASABI_CORE_HOOK_MAP_H

#include <atomic>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/hook_kind.h"
#include "wasm/opcode.h"
#include "wasm/types.h"

namespace wasabi::core {

/**
 * Identity of one monomorphic low-level hook. Per-opcode hooks
 * (const, unary, binary, load, store, local, global) are keyed by
 * their opcode; polymorphic hooks (drop/select/call/return) by their
 * concrete value types. Begin/end hooks are keyed by block kind.
 */
struct HookSpec {
    HookKind kind = HookKind::Nop;
    /** Opcode for per-opcode hooks; Opcode::Nop otherwise. */
    wasm::Opcode op = wasm::Opcode::Nop;
    /** Concrete types of the polymorphic hooks:
     *  drop/select: the value type; call (pre): parameter types;
     *  call post / return: result types. */
    std::vector<wasm::ValType> types;
    /** Call hooks: true for call_indirect (extra table-index param). */
    bool indirect = false;
    /** true for the call_post variant of HookKind::Call. */
    bool post = false;
    /** Block kind for begin/end hooks. */
    BlockKind block = BlockKind::Block;

    bool operator==(const HookSpec &other) const = default;
};

/**
 * Unique import name of the hook, e.g. "i32.add", "drop_i64",
 * "call_pre_i32_f64", "call_post_i32", "begin_loop". Doubles as the
 * deduplication key in the HookMap.
 */
std::string mangledName(const HookSpec &spec);

/**
 * Inverse of mangledName: reconstruct the HookSpec from a hook-import
 * name, or nullopt if the name is not a well-formed hook name. For
 * every spec the instrumenter can generate,
 * `parseHookName(mangledName(spec)) == spec`. Used by the static
 * checker (`wasabi check`) to recover hook identities from an
 * instrumented binary's import section.
 */
std::optional<HookSpec> parseHookName(const std::string &name);

/**
 * The low-level hook's function type. Every hook takes two leading
 * i32 parameters (the location: function and instruction index)
 * followed by its dynamic arguments; with @p split_i64, every i64
 * argument is passed as two i32s (low, high), since the paper's hooks
 * live in JavaScript which cannot receive i64 values (§2.4.6).
 * Hooks never return values.
 */
wasm::FuncType lowLevelType(const HookSpec &spec, bool split_i64);

/**
 * Thread-safe map from HookSpec to dense hook id. getOrAdd takes a
 * shared lock for the (common) hit case and upgrades to an exclusive
 * lock only to insert — the paper's "upgradeable multiple
 * readers/single writer lock" on the monomorphization map.
 */
class HookMap {
  public:
    /** Lock-contention counters of the shared map (observability):
     * a hit resolves under the shared lock, a miss upgrades to the
     * exclusive lock, an insert actually created a new hook there
     * (misses > inserts means another thread won the race). */
    struct Stats {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t inserts = 0;
    };

    /** Id of the hook for @p spec, creating it on demand. */
    uint32_t getOrAdd(const HookSpec &spec);

    /** Number of hooks created so far. */
    uint32_t size() const;

    /** Snapshot of all specs, indexed by hook id. */
    std::vector<HookSpec> specs() const;

    /** Snapshot of the hit/miss/insert counters. */
    Stats stats() const;

  private:
    mutable std::shared_mutex mutex_;
    std::unordered_map<std::string, uint32_t> byName_;
    std::vector<HookSpec> specs_;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> inserts_{0};
};

} // namespace wasabi::core

#endif // WASABI_CORE_HOOK_MAP_H
