/**
 * @file
 * Checked file I/O shared by the CLI, the benches, and the serve
 * daemon.
 *
 * Two failure classes historically went undetected here:
 *
 *  - Writers opened the stream, wrote, and never looked at the stream
 *    state again. On a full disk (ENOSPC) or an I/O error (EIO) the
 *    artifact — an instrumented binary, a manifest, a profile, a
 *    bench JSON — was silently truncated while the tool printed
 *    success and exited 0. Every writer below checks the stream after
 *    write *and* after close (close flushes the tail of the buffer,
 *    so a short write can surface only there) and throws IoError.
 *
 *  - Readers treated "opened" as "is a readable file". On Linux,
 *    opening a directory with std::ifstream succeeds and reads zero
 *    bytes, so `wasabi run some/dir` surfaced as a baffling WAT parse
 *    error on empty input. readBinaryFile stats the path first and
 *    reports "is a directory" / "not a regular file" precisely.
 *
 * IoError derives from std::runtime_error, so existing catch blocks
 * (the CLI's exit-1 handler) keep working; callers that want the
 * structured code can catch IoError explicitly.
 */

#ifndef WASABI_SUPPORT_FILE_IO_H
#define WASABI_SUPPORT_FILE_IO_H

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace wasabi::support {

/** A failed file read or write, with the path and a stable
 * machine-checkable code ("io.read" / "io.write" / "io.short-write"). */
class IoError : public std::runtime_error {
  public:
    IoError(std::string code, std::string path, const std::string &detail)
        : std::runtime_error(code + ": " + path + ": " + detail),
          code_(std::move(code)), path_(std::move(path))
    {
    }

    const std::string &code() const { return code_; }
    const std::string &path() const { return path_; }

  private:
    std::string code_;
    std::string path_;
};

/**
 * Read a whole regular file. Throws IoError("io.read") with a precise
 * diagnostic when the path does not exist, is a directory (which an
 * ifstream would happily "open" and read 0 bytes from), is not a
 * regular file, or the read fails mid-way.
 */
inline std::vector<uint8_t>
readBinaryFile(const std::string &path)
{
    struct ::stat st {};
    if (::stat(path.c_str(), &st) != 0)
        throw IoError("io.read", path, std::strerror(errno));
    if (S_ISDIR(st.st_mode))
        throw IoError("io.read", path,
                      "is a directory, not a file");
    if (!S_ISREG(st.st_mode))
        throw IoError("io.read", path,
                      "not a regular file");
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw IoError("io.read", path, "cannot open");
    std::vector<uint8_t> bytes{std::istreambuf_iterator<char>(in),
                               std::istreambuf_iterator<char>()};
    if (in.bad())
        throw IoError("io.read", path, "read error");
    return bytes;
}

namespace detail {

/** Write @p n bytes and verify the stream survived write + flush +
 * close; @p what names the failure mode in the diagnostic. */
inline void
writeAllChecked(const std::string &path, const char *data, size_t n)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw IoError("io.write", path, "cannot open for writing");
    out.write(data, static_cast<std::streamsize>(n));
    out.flush();
    bool ok = out.good();
    out.close(); // close can flush the buffer tail: re-check below
    ok = ok && !out.fail();
    if (!ok)
        throw IoError("io.short-write", path,
                      "write failed (disk full or I/O error) — file "
                      "is missing or incomplete");
}

} // namespace detail

/** Write @p bytes to @p path, failing loudly on any short write. */
inline void
writeBinaryFile(const std::string &path, const std::vector<uint8_t> &bytes)
{
    detail::writeAllChecked(
        path, reinterpret_cast<const char *>(bytes.data()), bytes.size());
}

/** Write @p text to @p path, failing loudly on any short write. */
inline void
writeTextFile(const std::string &path, const std::string &text)
{
    detail::writeAllChecked(path, text.data(), text.size());
}

/** How module bytes should be interpreted (see classifyModuleBytes). */
enum class ModuleBytesKind {
    WasmBinary, ///< starts with the full \\0asm magic
    WatText,    ///< plausible text — hand to the WAT parser
};

/**
 * Decide whether @p bytes are a wasm binary or WAT text, throwing
 * IoError("io.module") with a precise diagnostic for inputs that are
 * clearly neither: empty files, binaries truncated inside the magic
 * or the version word, and NUL-leading garbage. Historically all of
 * these fell through to the WAT parser and surfaced as a baffling
 * "parse error at byte 0" instead of naming the real problem.
 * @p origin labels the input (a path, or e.g. "<request>") in the
 * diagnostic.
 */
inline ModuleBytesKind
classifyModuleBytes(const std::vector<uint8_t> &bytes,
                    const std::string &origin)
{
    static constexpr uint8_t kMagic[4] = {0x00, 0x61, 0x73, 0x6D};
    if (bytes.empty())
        throw IoError("io.module", origin,
                      "empty file — not a WebAssembly module");
    size_t prefix = 0;
    while (prefix < bytes.size() && prefix < 4 &&
           bytes[prefix] == kMagic[prefix])
        ++prefix;
    if (prefix == 4) {
        if (bytes.size() < 8)
            throw IoError("io.module", origin,
                          "truncated WebAssembly binary (" +
                              std::to_string(bytes.size()) +
                              " bytes — magic present but version "
                              "missing)");
        return ModuleBytesKind::WasmBinary;
    }
    if (prefix == bytes.size()) // proper prefix of the magic
        throw IoError("io.module", origin,
                      "truncated WebAssembly binary (" +
                          std::to_string(bytes.size()) +
                          " bytes — file ends inside the \\0asm "
                          "magic)");
    if (bytes[0] == 0x00)
        throw IoError("io.module", origin,
                      "not a WebAssembly binary (bad magic) and not "
                      "WAT text (leading NUL byte)");
    return ModuleBytesKind::WatText;
}

} // namespace wasabi::support

#endif // WASABI_SUPPORT_FILE_IO_H
