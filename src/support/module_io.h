/**
 * @file
 * Module loading on top of the checked file I/O layer: bytes →
 * wasm::Module with content-based binary/WAT routing and precise
 * diagnostics for truncated or non-file inputs (file_io.h). Shared by
 * the CLI and the serve daemon so both report identical errors.
 */

#ifndef WASABI_SUPPORT_MODULE_IO_H
#define WASABI_SUPPORT_MODULE_IO_H

#include <string>
#include <vector>

#include "support/file_io.h"
#include "wasm/decoder.h"
#include "wasm/name_section.h"
#include "wasm/wat_parser.h"

namespace wasabi::support {

/**
 * Decode (binary) or parse (WAT) @p bytes into a Module, applying the
 * name section. @p origin labels diagnostics.
 * @throws IoError for empty/truncated/garbage inputs,
 * wasm::DecodeError / wat parse errors for malformed-but-classified
 * ones.
 */
inline wasm::Module
loadModuleFromBytes(const std::vector<uint8_t> &bytes,
                    const std::string &origin)
{
    wasm::Module m;
    if (classifyModuleBytes(bytes, origin) == ModuleBytesKind::WasmBinary)
        m = wasm::decodeModule(bytes);
    else
        m = wasm::parseWat(std::string(bytes.begin(), bytes.end()));
    wasm::applyNameSection(m);
    return m;
}

/** Load a module from a .wasm / .wat file (content-routed). */
inline wasm::Module
loadModuleFromFile(const std::string &path)
{
    return loadModuleFromBytes(readBinaryFile(path), path);
}

} // namespace wasabi::support

#endif // WASABI_SUPPORT_MODULE_IO_H
