#include "wasm/module.h"

#include <stdexcept>

namespace wasabi::wasm {

uint32_t
Module::addType(const FuncType &type)
{
    for (size_t i = 0; i < types.size(); ++i) {
        if (types[i] == type)
            return static_cast<uint32_t>(i);
    }
    types.push_back(type);
    return static_cast<uint32_t>(types.size() - 1);
}

const FuncType &
Module::funcType(uint32_t func_idx) const
{
    return types.at(functions.at(func_idx).typeIdx);
}

uint32_t
Module::numImportedFunctions() const
{
    uint32_t n = 0;
    for (const Function &f : functions) {
        if (f.imported())
            ++n;
        else
            break;
    }
    return n;
}

std::optional<uint32_t>
Module::findFuncExport(const std::string &name) const
{
    for (size_t i = 0; i < functions.size(); ++i) {
        for (const std::string &e : functions[i].exportNames) {
            if (e == name)
                return static_cast<uint32_t>(i);
        }
    }
    return std::nullopt;
}

size_t
Module::numInstructions() const
{
    size_t n = 0;
    for (const Function &f : functions)
        n += f.body.size();
    return n;
}

} // namespace wasabi::wasm
