/**
 * @file
 * Parser for the WebAssembly text format (WAT) — a practical subset
 * sufficient for hand-written test modules and for everything this
 * repository's printer emits:
 *
 *  - (module ...) with func/memory/table/global/type/import/export/
 *    start/elem/data fields,
 *  - inline (export "name") and (import "m" "n") abbreviations,
 *  - $identifiers for functions, types, locals, globals and block
 *    labels,
 *  - both the *flat* instruction form (block ... end) and the
 *    *folded* s-expression form ((i32.add (i32.const 1) (local.get 0))),
 *  - decimal and hex integers (with _ separators), decimal floats,
 *    inf/-inf/nan.
 *
 * Not supported (rejected with ParseError): multiple results per
 * block, quoted/binary modules, SIMD/reference-type syntax.
 */

#ifndef WASABI_WASM_WAT_PARSER_H
#define WASABI_WASM_WAT_PARSER_H

#include <stdexcept>
#include <string>

#include "wasm/module.h"

namespace wasabi::wasm {

/** Error thrown on malformed WAT input, with line/column. */
class ParseError : public std::runtime_error {
  public:
    ParseError(const std::string &what, int line, int col)
        : std::runtime_error("wat parse error at " + std::to_string(line) +
                             ":" + std::to_string(col) + ": " + what),
          line(line), col(col)
    {
    }

    int line;
    int col;
};

/** Parse a complete (module ...) from WAT text. */
Module parseWat(const std::string &text);

} // namespace wasabi::wasm

#endif // WASABI_WASM_WAT_PARSER_H
